// Evil counting (§10 extension): the paper's conclusion asks what its
// adversary models do to probabilistic counting algorithms. Answer: with
// the unkeyed MurmurHash typical libraries deploy, a chosen-insertion
// adversary steers a HyperLogLog sketch to any cardinality she likes — in
// constant time per item — while a SipHash key restores honesty.
//
//	go run ./examples/evilcounting
package main

import (
	"fmt"
	"log"

	"evilbloom/internal/hashes"
	"evilbloom/internal/probcount"
	"evilbloom/internal/urlgen"
)

func main() {
	log.SetFlags(0)
	const precision = 12
	const stream = 100000

	// Honest baseline.
	honest, err := probcount.NewHLL(precision, probcount.MurmurHash64{})
	if err != nil {
		log.Fatal(err)
	}
	gen := urlgen.New(1)
	for i := 0; i < stream; i++ {
		honest.Add(gen.Next())
	}
	fmt.Printf("honest stream: %d distinct URLs → estimate %.0f (σ = %.1f%%)\n",
		stream, honest.Estimate(), 100*honest.RelativeError())

	// Inflation: one crafted item per register claims the maximum rank.
	inflated, err := probcount.NewHLL(precision, probcount.MurmurHash64{})
	if err != nil {
		log.Fatal(err)
	}
	items, err := probcount.InflationAttack(inflated, []byte("http://evil.com/"), inflated.M())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inflation attack: %d crafted URLs → estimate %.3g (a DoS alarm from nothing)\n",
		len(items), inflated.Estimate())

	// Suppression: unbounded traffic that never moves the counter.
	suppressed, err := probcount.NewHLL(precision, probcount.MurmurHash64{})
	if err != nil {
		log.Fatal(err)
	}
	crafted, err := probcount.SuppressionAttack(suppressed, []byte("http://evil.com/"), stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suppression attack: %d distinct crafted URLs → estimate %.0f (the flood is invisible)\n",
		len(crafted), suppressed.Estimate())

	// Countermeasure: a keyed sketch sees the crafted stream as random.
	keyed, err := probcount.NewHLL(precision, probcount.SipHash64{
		Key: hashes.SipKey{K0: 0x0706050403020100, K1: 0x0f0e0d0c0b0a0908},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range crafted {
		keyed.Add(it)
	}
	fmt.Printf("same stream, SipHash-keyed sketch → estimate %.0f (≈ the true %d)\n",
		keyed.Estimate(), stream)
	fmt.Println("\nkeyed hashing (§8.2) is the countermeasure here too — exactly the")
	fmt.Println("superspreader-detector advice the paper quotes in §9")
}
