// Squid cache-digest pollution (§7): two sibling proxies exchange Bloom-
// filter digests of their caches; a malicious client fills the first proxy's
// cache with crafted URLs so its digest lies to the second proxy, wasting a
// round trip on every false hit.
//
//	go run ./examples/squiddigest
package main

import (
	"fmt"
	"log"
	"math"

	"evilbloom/internal/analysis"
	"evilbloom/internal/cachedigest"
	"evilbloom/internal/core"
)

func main() {
	log.SetFlags(0)
	cfg := cachedigest.DefaultExperimentConfig()

	fmt.Println("§7 — Squid cache digests: m = 5n+7 bits, k = 4, one MD5 split four ways")
	fmt.Printf("testbed: %d clean URLs + %d client-supplied URLs, then %d probe queries, RTT %v\n\n",
		cfg.CleanURLs, cfg.ExtraURLs, cfg.Probes, cfg.RTT)

	// Squid's sizing is sub-optimal before any attack (§7).
	const n = 200
	m := uint64(cachedigest.BitsPerEntry*n + cachedigest.DigestSlack)
	optimalM := uint64(math.Ceil(4 * n / math.Ln2)) // m = kn/ln2 ≈ 6n for k=4
	fmt.Printf("sizing check at n=%d: squid f=%.3f vs %.3f at the optimal ≈6n sizing\n\n",
		n, core.FPR(m, n, 4), core.FPR(optimalM, n, 4))

	res, err := analysis.RunSquid(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(analysis.FormatSquid(res, cfg.Probes))
	fmt.Println()
	fmt.Printf("pollution multiplied unnecessary sibling hits by %.1fx (paper: 79%% vs 40%%)\n",
		float64(res.Polluted.FalseHits)/float64(max(res.Clean.FalseHits, 1)))
	fmt.Printf("every false hit burns a %v round trip between the proxies\n", cfg.RTT)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
