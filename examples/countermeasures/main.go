// Countermeasures (§8): worst-case parameters contain the chosen-insertion
// adversary; keyed hashing defeats every adversary; digest recycling makes
// cryptographic hashing affordable; an HMAC-based XOF stands in for the
// keyed SHAKE the paper's conclusion wishes for.
//
//	go run ./examples/countermeasures
package main

import (
	"fmt"
	"log"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/countermeasure"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func main() {
	log.SetFlags(0)
	worstCase()
	fmt.Println()
	keyed()
	fmt.Println()
	recycling()
}

// worstCase compares the classic and hardened designs under the same
// pollution campaign (§8.1).
func worstCase() {
	const m, n = 3200, 600
	design, err := countermeasure.DesignWorstCase(m, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§8.1 worst-case parameters for m=%d, n=%d:\n", m, n)
	fmt.Printf("  k: %d → %d (ratio e·ln2 ≈ 1.88)\n", design.OptimalK, design.K)
	fmt.Printf("  honest FPR: %.4f → %.4f (the price)\n", design.OptimalFPR, design.HonestFPR)
	fmt.Printf("  polluted FPR: %.4f → %.4f (the win, eq 7 vs eq 10)\n",
		design.OptimalAdversarialFPR, design.AdversarialFPR)

	hardened, err := countermeasure.NewWorstCaseBloom(m, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	adv := attack.NewChosenInsertion(attack.NewBloomView(hardened), hardened, hardened, urlgen.New(2))
	if _, err := adv.PolluteN(n, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured after %d chosen insertions: %.4f\n", n, hardened.EstimatedFPR())
}

// keyed shows that an unpredictable index family reduces the forger to
// blind guessing (§8.2).
func keyed() {
	key, err := countermeasure.RandomKey(32)
	if err != nil {
		log.Fatal(err)
	}
	server, err := countermeasure.NewKeyedBloom(600, 0.077, hashes.HMACSHA256, key)
	if err != nil {
		log.Fatal(err)
	}
	gen := urlgen.New(3)
	for i := 0; i < 600; i++ {
		server.Add(gen.Next())
	}

	// The adversary sees the bit pattern but not the key: her best model
	// uses a guessed key. Forgeries against the model are just random
	// queries against the real filter.
	guessKey := []byte("the adversary guesses wrong....")
	model, err := countermeasure.NewKeyedBloom(600, 0.077, hashes.HMACSHA256, guessKey)
	if err != nil {
		log.Fatal(err)
	}
	for _, i := range server.Bits().Support() {
		model.AddIndexes([]uint64{i})
	}
	forger := attack.NewForger(attack.NewBloomView(model), urlgen.New(4))
	hits := 0
	const tries = 50
	for i := 0; i < tries; i++ {
		item, _, err := forger.ForgeFalsePositive(1 << 22)
		if err != nil {
			log.Fatal(err)
		}
		if server.Test(item) {
			hits++
		}
	}
	fmt.Printf("§8.2 keyed filter (HMAC-SHA-256, secret server key):\n")
	fmt.Printf("  %d/%d \"forged\" false positives actually hit — vs the baseline FPR %.3f\n",
		hits, tries, server.EstimatedFPR())
	fmt.Println("  the forger is reduced to blind guessing; all §4 adversaries are defeated")
}

// recycling derives all k indexes from one digest (§8.2, Fig 9, Table 2).
func recycling() {
	const capacity = 1000000
	f := 1.0 / 1024 // 2^-10
	m := core.OptimalM(capacity, f)
	plan, err := countermeasure.PlanRecycling(f, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§8.2 recycling for n=%d, f=2^-10 (m=%d bits):\n", capacity, m)
	fmt.Printf("  one item needs k·⌈log₂m⌉ = %d·%d = %d digest bits\n",
		plan.K, plan.BitsPerIndex, plan.BitsNeeded)
	for _, alg := range []hashes.Algorithm{hashes.SHA1, hashes.SHA256, hashes.SHA512} {
		fmt.Printf("  %-8v → %d call(s) instead of %d\n", alg, plan.Calls[alg], plan.K)
	}
	if alg, ok := countermeasure.CheapestSingleCall(f, m); ok {
		fmt.Printf("  cheapest single-call choice: %v\n", alg)
	}

	// The XOF (SHAKE stand-in) gives keyed output of any length.
	fam, err := countermeasure.NewXOFFamily(hashes.HMACSHA512, []byte("server secret"), plan.K, m)
	if err != nil {
		log.Fatal(err)
	}
	b := core.NewBloom(fam)
	b.Add([]byte("http://example.com/"))
	fmt.Printf("  XOF-backed filter works: member=%v, stranger=%v\n",
		b.Test([]byte("http://example.com/")), b.Test([]byte("http://other.com/")))
}
