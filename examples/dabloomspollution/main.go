// Dablooms attacks (§6): a Bitly-style URL shortener blacklists malicious
// URLs in a scaling counting Bloom filter. The adversary (a) pollutes it
// through the report feed, (b) whitelists her malware with a constant-time
// second pre-image deletion, and (c) wastes a whole stage via counter
// overflow — all because MurmurHash3 is invertible.
//
//	go run ./examples/dabloomspollution
package main

import (
	"errors"
	"fmt"
	"log"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/spamfilter"
	"evilbloom/internal/urlgen"
)

func main() {
	log.SetFlags(0)
	cfg := core.DefaultDabloomsConfig()
	cfg.StageCapacity = 2000
	cfg.MaxStages = 3
	pollution(cfg)
	fmt.Println()
	deletion(cfg)
	fmt.Println()
	overflow(cfg)
}

func lastStageForger(s *spamfilter.Shortener, seed int64) (*core.Counting, *attack.InstantForger) {
	stages := s.Blacklist().CountingStages()
	last := stages[len(stages)-1]
	fam, ok := last.Family().(*hashes.DoubleHashing)
	if !ok {
		log.Fatal("dablooms stage does not use double hashing")
	}
	forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), seed)
	if err != nil {
		log.Fatal(err)
	}
	return last, forger
}

// pollution fills every stage with crafted reports; honest shortening
// requests then bounce off false positives at the Fig 8 rate.
func pollution(cfg core.DabloomsConfig) {
	s, err := spamfilter.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	total := int(cfg.StageCapacity) * cfg.MaxStages
	for i := 0; i < total; i++ {
		stage, forger := lastStageForger(s, int64(i))
		item, err := forger.PollutingItem(attack.NewCountingView(stage), 1<<22)
		if err != nil {
			log.Fatal(err)
		}
		s.ReportMalicious(string(item))
	}
	honest := urlgen.New(1)
	for i := 0; i < 5000; i++ {
		s.Shorten(honest.URL()) //nolint:errcheck // rejections are the point
	}
	fmt.Printf("§6.2 pollution: %d crafted reports across %d stages\n", total, cfg.MaxStages)
	fmt.Printf("honest shortening requests rejected: %.1f%% (design target was ≈%.1f%%)\n",
		100*s.RejectionRate(), 100*core.AnalyticCompoundFPR(cfg.InitialFPR, cfg.TighteningRatio, cfg.MaxStages))
}

// deletion whitelists actual malware: the honest feed blacklists it, the
// adversary crafts a colliding URL (same index set, computed by inverting
// MurmurHash3) and appeals that one.
func deletion(cfg core.DabloomsConfig) {
	s, err := spamfilter.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reports := urlgen.New(5)
	for i := 0; i < 500; i++ {
		s.ReportMalicious(reports.URL())
	}
	malware := "http://actual-malware.example.com/dropper"
	s.ReportMalicious(malware)
	_, blockedErr := s.Shorten(malware)
	fmt.Printf("§6.2 deletion: malware blocked after honest report: %v\n",
		errors.Is(blockedErr, spamfilter.ErrBlacklisted))

	stage, forger := lastStageForger(s, 1)
	victimIdx := stage.Family().Clone().Indexes(nil, []byte(malware))
	doppel, err := forger.SecondPreimage(victimIdx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second pre-image computed in constant time: %q\n", doppel)
	if err := s.RemoveReport(string(doppel)); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Shorten(malware); err == nil {
		fmt.Println("after appealing the doppelganger, the malware shortens fine — whitelisted")
	}
}

// overflow empties a stage that believes itself full.
func overflow(cfg core.DabloomsConfig) {
	s, err := spamfilter.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stage, forger := lastStageForger(s, 2)
	items, err := forger.EmptyViaOverflow(stage, cfg.StageCapacity)
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		s.ReportMalicious(string(it))
	}
	fmt.Printf("§6.2 overflow: stage holds %d insertions, yet %d of %d counters are non-zero\n",
		stage.Count(), stage.Weight(), stage.M())
	fmt.Println("the stage is \"full\" and empty at once — wasted memory, useless filter")
}
