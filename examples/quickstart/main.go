// Quickstart: build a Bloom filter the way a developer would, then watch a
// chosen-insertion adversary (§4.1) force it into worst-case behaviour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func main() {
	log.SetFlags(0)

	// A developer plans for 600 items and accepts f ≈ 0.077: the classic
	// design picks m = 3200 bits and k = 4 hash functions (eq 2–3).
	const capacity = 600
	honest, err := core.NewBloomOptimal(capacity, 0.077, hashes.SHA256, nil)
	if err != nil {
		log.Fatal(err)
	}
	adversarial, err := core.NewBloomOptimal(capacity, 0.077, hashes.SHA256, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter: m=%d bits, k=%d, designed for n=%d at f=%.3f\n\n",
		honest.M(), honest.K(), capacity, core.OptimalFPR(honest.M(), capacity))

	// Honest world: 600 random URLs.
	gen := urlgen.New(1)
	for i := 0; i < capacity; i++ {
		honest.Add(gen.Next())
	}
	fmt.Printf("honest insertions:  weight=%4d  estimated FPR=%.4f (eq 1 predicts %.4f)\n",
		honest.Weight(), honest.EstimatedFPR(), core.FPR(honest.M(), capacity, honest.K()))

	// Evil world: the adversary crafts each URL so that it sets k
	// previously-unset bits (condition 6). Same filter, same insertion
	// count — radically different false-positive probability.
	adv := attack.NewChosenInsertion(
		attack.NewBloomView(adversarial), adversarial, adversarial, urlgen.New(2))
	if _, err := adv.PolluteN(capacity, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen insertions:  weight=%4d  estimated FPR=%.4f (eq 7 predicts %.4f)\n",
		adversarial.Weight(), adversarial.EstimatedFPR(),
		core.AdversarialFPR(adversarial.M(), capacity, adversarial.K()))
	fmt.Printf("the adversary tried %d candidate URLs to forge %d items\n\n",
		adv.Forger().Attempts, capacity)

	// Verify empirically with 100k fresh probes.
	probe := urlgen.New(3)
	hits := [2]int{}
	for i := 0; i < 100000; i++ {
		u := probe.Next()
		if honest.Test(u) {
			hits[0]++
		}
		if adversarial.Test(u) {
			hits[1]++
		}
	}
	fmt.Printf("measured on 100k probes: honest %.4f, polluted %.4f — a %.1fx amplification\n",
		float64(hits[0])/100000, float64(hits[1])/100000,
		float64(hits[1])/float64(hits[0]))
	fmt.Println("\nthe designer expected 0.077; the adversary delivers 0.316 (§4.1, Fig 3)")
}
