// Servedeletion runs the paper's §4.3 deletion attack as a full
// client-vs-server scenario: a counting-filter service is started on a
// loopback port, an honest operator fills a blocklist through the public
// API, and the adversary — armed only with HTTP access and the filter's
// public /v2 info — evicts a targeted victim URL by assembling false
// positives from her own insertions and asking the server to remove them.
// The run is repeated against a hardened (§8.2, keyed SipHash) server to
// show the countermeasure refusing the identical campaign.
//
//	go run ./examples/servedeletion
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"evilbloom/internal/analysis"
	"evilbloom/internal/attack"
	"evilbloom/internal/hashes"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

const filterName = "blocklist"

// campaign starts a live multi-filter server, creates a counting filter in
// mode, lets the honest operator populate it, and runs the eviction
// campaign against the victim over HTTP.
func campaign(mode service.Mode, victim []byte) (*attack.EvictReport, bool, error) {
	reg := service.NewRegistry()
	if _, err := reg.Create(filterName, service.Config{
		Variant:   service.VariantCounting,
		Shards:    1, // the paper's single Fig 3 filter, served
		ShardBits: 3200,
		HashCount: 4,
		Mode:      mode,
		Seed:      3,
	}); err != nil {
		return nil, false, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, false, err
	}
	srv := &http.Server{Handler: httpapi.NewRegistryServer(reg)}
	go srv.Serve(ln) //nolint:errcheck // shut down below
	defer srv.Close()

	client := attack.NewRemoteClient("http://"+ln.Addr().String(), nil).ForFilter(filterName)

	// The honest operator maintains a blocklist: 50 URLs plus the victim.
	honest := urlgen.New(400)
	blocklist := make([][]byte, 50)
	for i := range blocklist {
		blocklist[i] = honest.Next()
	}
	if err := client.AddBatch(blocklist); err != nil {
		return nil, false, err
	}
	if err := client.Add(victim); err != nil {
		return nil, false, err
	}

	// The adversary first tries to learn the index family from the public
	// info endpoint — the paper's "implementation is public" assumption.
	adv, err := attack.NewRemoteDeletionFromInfo(client, urlgen.New(11))
	if err != nil {
		// Hardened: no seed published. She falls back to guessing the
		// dablooms-style default and attacks anyway.
		fmt.Printf("  %v\n  adversary falls back to guessing the default seed\n", err)
		guess, gerr := hashes.NewDoubleHashing(4, 3200, 3)
		if gerr != nil {
			return nil, false, gerr
		}
		adv = attack.NewRemoteDeletion(client, guess, urlgen.New(11))
	} else {
		fmt.Println("  the info endpoint published the seed; adversary reconstructed the index family")
	}

	rep, err := adv.Evict(victim, 100000, 20)
	if err != nil {
		return nil, false, err
	}
	present, err := client.Test(victim)
	if err != nil {
		return nil, false, err
	}
	return rep, present, nil
}

func main() {
	log.SetFlags(0)
	victim := []byte("http://honest.example.com/blocked-page")
	fmt.Println("deletion over HTTP: evicting one honest blocklist entry from a live")
	fmt.Println("counting-filter service (m=3200, k=4, 4-bit counters) via the public")
	fmt.Println("add/test/remove endpoints — §4.3 run client-vs-server")
	fmt.Println()

	rows := make([][]string, 0, 2)
	for _, mode := range []service.Mode{service.ModeNaive, service.ModeHardened} {
		fmt.Printf("%s server:\n", mode)
		rep, present, err := campaign(mode, victim)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "victim EVICTED (false negative)"
		if present {
			verdict = "victim still present"
		}
		fmt.Printf("  %s after %d rounds: %d removals accepted, %d refused, %d cover items\n\n",
			verdict, rep.Rounds, rep.Accepted, rep.Refused, rep.CoverAdds)
		rows = append(rows, []string{
			mode.String(),
			fmt.Sprintf("%v", rep.Evicted),
			fmt.Sprintf("%d", rep.Accepted),
			fmt.Sprintf("%d", rep.Refused),
			fmt.Sprintf("%d", rep.CoverAdds),
		})
	}
	fmt.Print(analysis.FormatTable(
		[]string{"Server mode", "Victim evicted", "Removals accepted", "Removals refused", "Cover items"}, rows))
	fmt.Println("\nthe naive server believes the adversary's crafted items are present and")
	fmt.Println("removes them, draining the victim's counters; the hardened server's keyed")
	fmt.Println("family makes her false positives fiction, so every removal is refused (§8.2)")
}
