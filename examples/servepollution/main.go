// Servepollution runs the paper's chosen-insertion attack (§4.1, Fig 3) as
// a full client-vs-server scenario: a sharded filter service is started on
// a loopback port, and the adversary — armed only with HTTP access and the
// server's public /v1/info parameters — pollutes it through the public add
// endpoint. The run is repeated against a hardened (§8.2, keyed SipHash)
// server to show the countermeasure blunting the identical campaign.
//
//	go run ./examples/servepollution
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"evilbloom/internal/analysis"
	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// campaign starts a live server in mode, runs the 600-insertion pollution
// campaign against it over HTTP, and returns the server's own post-attack
// stats.
func campaign(mode service.Mode) (*attack.RemoteStats, error) {
	store, err := service.NewSharded(service.Config{
		Shards:    1, // the paper's single Fig 3 filter, served
		ShardBits: 3200,
		HashCount: 4,
		Mode:      mode,
		Seed:      3,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: httpapi.NewServer(store)}
	go srv.Serve(ln) //nolint:errcheck // shut down below
	defer srv.Close()

	client := attack.NewRemoteClient("http://"+ln.Addr().String(), nil)

	// The adversary first tries to learn the index family from the public
	// info endpoint — the paper's "implementation is public" assumption.
	view, err := attack.NewRemoteViewFromInfo(client)
	if err != nil {
		// Hardened: no seed published. She falls back to guessing the
		// dablooms-style default and attacks anyway.
		fmt.Printf("  %v\n  adversary falls back to guessing the default seed\n", err)
		guess, gerr := hashes.NewDoubleHashing(4, 3200, 3)
		if gerr != nil {
			return nil, gerr
		}
		view = attack.NewRemoteView(client, guess)
	} else {
		fmt.Println("  /v1/info published the seed; adversary reconstructed the index family")
	}

	adv := attack.NewChosenInsertion(view, view, view, urlgen.New(7))
	if _, err := adv.PolluteN(600, 0); err != nil {
		return nil, err
	}
	if err := view.Err(); err != nil {
		return nil, err
	}
	return client.Stats()
}

func main() {
	log.SetFlags(0)
	fmt.Println("pollution over HTTP: 600 chosen insertions against a live filter service")
	fmt.Printf("geometry: m=3200, k=4 — paper Fig 3 (random insertions reach FPR %.4f)\n\n",
		core.FPR(3200, 600, 4))

	rows := make([][]string, 0, 2)
	for _, mode := range []service.Mode{service.ModeNaive, service.ModeHardened} {
		fmt.Printf("%s server:\n", mode)
		st, err := campaign(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  server stats after the campaign: weight=%d fill=%.3f FPR=%.4f\n\n",
			st.Weight, st.Fill, st.FPR)
		rows = append(rows, []string{
			mode.String(),
			fmt.Sprintf("%d", st.Weight),
			fmt.Sprintf("%.4f", st.FPR),
		})
	}
	fmt.Print(analysis.FormatTable([]string{"Server mode", "Weight after attack", "Server FPR"}, rows))
	fmt.Println("\npaper: chosen insertions force 0.316 where random reach 0.077; the keyed")
	fmt.Println("filter (§8.2) reduces the adversary to exactly those random insertions")
}
