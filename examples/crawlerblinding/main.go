// Crawler blinding (§5): a Scrapy-like spider deduplicates URLs with a
// pyBloom filter. The adversary first blinds it with a link farm of
// polluting URLs, then hides a ghost page behind decoys (Fig 7).
//
//	go run ./examples/crawlerblinding
package main

import (
	"fmt"
	"log"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/crawler"
	"evilbloom/internal/urlgen"
	"evilbloom/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	blinding()
	fmt.Println()
	ghostHiding()
}

// blinding pollutes the dedup filter via a link farm; the spider then
// believes most of an honest site was already visited.
func blinding() {
	const capacity, fpr = 2000, 1.0 / 32
	filter, err := core.NewPyBloom(capacity, fpr)
	if err != nil {
		log.Fatal(err)
	}

	// The adversary models the public filter perfectly and crafts 2000
	// polluting URLs (each sets k fresh bits — condition 6).
	model, err := core.NewPyBloom(capacity, fpr)
	if err != nil {
		log.Fatal(err)
	}
	entry := "http://evil-entry.example.com/"
	crawler.NewBloomDeduper(model).Seen(entry) // the entry page is marked first
	forger := attack.NewForger(attack.NewPartitionedView(model), urlgen.New(99))
	crafted := make([]string, 0, capacity)
	for i := 0; i < capacity; i++ {
		item, _, err := forger.ForgePolluting(0)
		if err != nil {
			log.Fatal(err)
		}
		model.Add(item)
		crafted = append(crafted, string(item))
	}
	fmt.Printf("§5.2 blinding: forged %d polluting URLs in %d candidates\n",
		capacity, forger.Attempts)

	// The web: her link farm plus an honest 500-page site.
	web := webgraph.New()
	webgraph.BuildLinkFarm(web, entry, crafted)
	honestRoot := webgraph.BuildSite(web, urlgen.New(1), 500, 5)

	spider := crawler.New(web, crawler.NewBloomDeduper(filter))
	farm := spider.Crawl(entry, 0)
	fmt.Printf("crawled the link farm: %d pages fetched, filter weight grown to %d/%d\n",
		len(farm.Fetched), filter.Weight(), filter.M())

	honest := spider.Crawl(honestRoot, 0)
	fmt.Printf("then crawled an honest 500-page site: fetched %d, skipped %d as \"already seen\"\n",
		len(honest.Fetched), honest.SkippedSeen)

	clean, err := core.NewPyBloom(capacity, fpr)
	if err != nil {
		log.Fatal(err)
	}
	control := crawler.New(web, crawler.NewBloomDeduper(clean)).Crawl(honestRoot, 0)
	fmt.Printf("control with a clean filter: fetched %d — the spider was blinded\n",
		len(control.Fetched))
}

// ghostHiding hides a secret page (Fig 7): decoys cover the ghost URL's
// filter bits, so the spider marks it seen without ever fetching it.
func ghostHiding() {
	const capacity, fpr = 500, 1.0 / 32
	filter, err := core.NewPyBloom(capacity, fpr)
	if err != nil {
		log.Fatal(err)
	}
	ghost := "http://root-decoy.example.com/secret/ghost-page"

	model, err := core.NewPyBloom(capacity, fpr)
	if err != nil {
		log.Fatal(err)
	}
	ghostIdx := model.Indexes(nil, []byte(ghost))
	forger := attack.NewForger(attack.NewPartitionedView(model), urlgen.New(7))
	decoyItems, err := forger.ForgeDecoySet(ghostIdx, 0)
	if err != nil {
		log.Fatal(err)
	}
	decoys := make([]string, len(decoyItems))
	for i, d := range decoyItems {
		decoys[i] = string(d)
	}
	fmt.Printf("Fig 7 ghost hiding: %d decoy URLs cover the ghost's %d filter bits (%d candidates)\n",
		len(decoys), len(ghostIdx), forger.Attempts)

	root := "http://root-decoy.example.com/"
	web := webgraph.New()
	webgraph.BuildDecoyChain(web, root, decoys, ghost)

	report := crawler.New(web, crawler.NewBloomDeduper(filter)).Crawl(root, 0)
	fmt.Printf("spider fetched %d pages; ghost fetched: %v (skipped as seen: %d)\n",
		len(report.Fetched), report.DidFetch(ghost), report.SkippedSeen)
	exact := crawler.New(web, crawler.NewHashSetDeduper()).Crawl(root, 0)
	fmt.Printf("with an exact dedup filter the ghost is found: %v\n", exact.DidFetch(ghost))
}
