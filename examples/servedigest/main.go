// Servedigest runs the paper's §7 Squid experiment as a real two-server
// deployment: two evilbloom filter services on loopback ports, peered via
// the cache-digest exchange. A malicious client fills server A's filter
// with crafted URLs through the public add endpoint; server B periodically
// fetches A's digest and routes cache misses by it — so after the attack,
// B misdirects its miss traffic at A, one wasted round trip per false hit.
// The honest control run inserts the same number of unchosen URLs; the gap
// between the two false-hit rates is the paper's 79%-vs-40% result.
//
//	go run ./examples/servedigest
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"evilbloom/internal/analysis"
	"evilbloom/internal/attack"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// filterName is the filter both nodes hold; digests are exchanged between
// same-named filters.
const filterName = "cache"

// geometry sizes the digest like the test deployment: single shard, k=4
// like Squid, calibrated so the honest run's false-hit rate lands at the
// paper's ≈40% baseline after 151 cached URLs.
func geometry() service.Config {
	return service.Config{Shards: 1, ShardBits: 384, HashCount: 4, Seed: 7}
}

// node is one live evilbloom server plus its teardown.
type node struct {
	url   string
	reg   *service.Registry
	close func()
}

// startNode boots a registry server on a loopback port, optionally peered
// at a sibling, with the shared filter created.
func startNode(peer string) (*node, error) {
	reg := service.NewRegistry()
	if peer != "" {
		// A long interval: the demo forces the exchange explicitly (like
		// Squid's rebuild moment) so the run is deterministic.
		if err := reg.ConfigurePeers(service.PeerConfig{Peers: []string{peer}, Refresh: time.Hour}); err != nil {
			return nil, err
		}
	}
	if _, err := reg.Create(filterName, geometry()); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: httpapi.NewRegistryServer(reg)}
	go srv.Serve(ln) //nolint:errcheck // shut down via close
	return &node{
		url: "http://" + ln.Addr().String(),
		reg: reg,
		close: func() {
			reg.Close() //nolint:errcheck // memory-only registry
			srv.Close()
		},
	}, nil
}

// run stages one §7 run (paper phase sizes) on a fresh two-server pair.
func run(polluted bool) (*attack.RemoteDigestReport, error) {
	a, err := startNode("")
	if err != nil {
		return nil, err
	}
	defer a.close()
	b, err := startNode(a.url)
	if err != nil {
		return nil, err
	}
	defer b.close()

	campaign := &attack.RemoteDigestPollution{
		Proxy:        attack.NewRemoteClient(a.url, nil).ForFilter(filterName),
		Peer:         attack.NewRemoteClient(b.url, nil).ForFilter(filterName),
		CleanTraffic: urlgen.New(1),
		ExtraTraffic: urlgen.New(8),
		Probes:       urlgen.New(1000),
		CleanN:       51,
		ExtraN:       100,
		ProbeN:       100,
	}
	fmt.Printf("  server A (cache owner) on %s, server B (-peer %s) on %s\n", a.url, a.url, b.url)
	return campaign.Run(polluted)
}

func main() {
	log.SetFlags(0)
	fmt.Println("§7 as a deployment: two evilbloom servers exchanging cache digests")
	fmt.Println("51 clean + 100 client-supplied URLs cached on A, then 100 misses probed via B's route endpoint")
	fmt.Println()

	const rtt = 10 * time.Millisecond // the paper's measured per-false-hit cost
	rows := make([][]string, 0, 2)
	for _, polluted := range []bool{false, true} {
		label := "honest extras"
		if polluted {
			label = "polluted extras"
		}
		fmt.Printf("%s:\n", label)
		rep, err := run(polluted)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  digest B routes by: %d/%d bits set (generation %d); %d/%d probes misdirected to A\n",
			rep.DigestWeight, rep.DigestBits, rep.DigestGeneration, rep.FalseHits, rep.Probes)
		if polluted {
			fmt.Printf("  adversary: %d candidates examined for %d cached URLs\n", rep.ForgeAttempts, rep.Inserted)
		}
		fmt.Println()
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d/%d", rep.DigestWeight, rep.DigestBits),
			fmt.Sprintf("%d%%", rep.FalseHits*100/rep.Probes),
			fmt.Sprint(time.Duration(rep.FalseHits) * rtt),
		})
	}
	fmt.Print(analysis.FormatTable(
		[]string{"Run", "Digest weight", "False-hit rate", "Wasted RTT (10ms each)"}, rows))
	fmt.Println("\npaper §7: 79% false hits polluted vs 40% clean on the Squid testbed;")
	fmt.Println("here the digest saturates outright — every miss at B wastes a round trip on A")
}
