// Serveratelimit measures the paper's suggested operational defense against
// chosen-insertion pollution: throttle who may mutate the filter. Two
// evilbloom servers hold the same small naive filter; one serves its add
// endpoint unthrottled, the other runs a per-client mutation budget
// (`evilbloom serve -rate-mutations`, here configured in-process). The same
// adversary runs the same greedy chosen-insertion campaign with the same
// request budget against both. Unthrottled, the filter saturates — every
// membership query a false positive. Rate-limited, exactly the burst lands,
// the other requests bounce off 429s, and the server's per-client
// accounting names the attacker — the naive → rate-limited → hardened-keyed
// mitigation ladder's middle rung, measured.
//
//	go run ./examples/serveratelimit
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"evilbloom/internal/analysis"
	"evilbloom/internal/attack"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// filterName is the filter under attack on both servers.
const filterName = "cache"

// geometry is a digest-sized naive filter (m=640, k=4): small enough that
// an unthrottled campaign saturates it inside the request budget.
func geometry() service.Config {
	return service.Config{Shards: 1, ShardBits: 640, HashCount: 4, Seed: 7}
}

// requests is the adversary's mutation request budget per campaign; burst
// is the throttled server's per-client allowance.
const (
	requests = 600
	burst    = 100
)

// startNode boots a registry server, optionally behind a mutation rate
// limit, with the target filter created.
func startNode(rate *service.RateLimitConfig) (url string, closeFn func(), err error) {
	reg := service.NewRegistry()
	if rate != nil {
		if err := reg.ConfigureRateLimit(*rate); err != nil {
			return "", nil, err
		}
	}
	if _, err := reg.Create(filterName, geometry()); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: httpapi.NewRegistryServer(reg)}
	go srv.Serve(ln) //nolint:errcheck // shut down via close
	return "http://" + ln.Addr().String(), func() {
		reg.Close() //nolint:errcheck // memory-only registry
		srv.Close()
	}, nil
}

// campaign runs the greedy chosen-insertion campaign against one server
// and returns its report plus the server's accounting view.
func campaign(rate *service.RateLimitConfig) (*attack.ThrottledPollutionReport, *attack.RemoteClientsReport, error) {
	url, closeFn, err := startNode(rate)
	if err != nil {
		return nil, nil, err
	}
	defer closeFn()
	target := attack.NewRemoteClient(url, nil).ForFilter(filterName).WithIdentity("mallory")
	rep, err := (&attack.RemoteThrottledPollution{
		Target:   target,
		Traffic:  urlgen.New(2),
		Requests: requests,
	}).Run()
	if err != nil {
		return nil, nil, err
	}
	clients, err := target.Clients()
	if err != nil {
		return nil, nil, err
	}
	return rep, clients, nil
}

func main() {
	log.SetFlags(0)
	fmt.Println("rate limiting vs chosen-insertion pollution: one campaign, two servers")
	fmt.Printf("filter m=%d k=%d; adversary budget %d add requests, throttled server allows burst %d then ~0/s\n\n",
		geometry().ShardBits, geometry().HashCount, requests, burst)

	throttle := &service.RateLimitConfig{
		MutationsPerSec: 1.0 / 3600, // ≈ nothing refills during the run
		Burst:           burst,
		TrustProxy:      true, // honor the client's self-declared identity
	}
	rows := make([][]string, 0, 2)
	var throttledClients *attack.RemoteClientsReport
	for _, cfg := range []*service.RateLimitConfig{nil, throttle} {
		label := "unthrottled"
		if cfg != nil {
			label = "rate-limited"
		}
		rep, clients, err := campaign(cfg)
		if err != nil {
			log.Fatal(err)
		}
		saturated := "never"
		if rep.SaturatedAt > 0 {
			saturated = fmt.Sprintf("request %d", rep.SaturatedAt)
		}
		fmt.Printf("%s: %d requests sent, %d accepted, %d bounced (429); saturated: %s; server FPR %.4f\n",
			label, rep.Requests, rep.Accepted, rep.Throttled, saturated, rep.ServerFPR)
		rows = append(rows, []string{
			label,
			fmt.Sprint(rep.Requests),
			fmt.Sprint(rep.Accepted),
			fmt.Sprint(rep.Throttled),
			saturated,
			fmt.Sprintf("%.4f", rep.ServerFPR),
		})
		if cfg != nil {
			throttledClients = clients
		}
	}
	fmt.Println()
	fmt.Print(analysis.FormatTable(
		[]string{"Server", "Requests", "Accepted", "429s", "Saturated at", "Server FPR"}, rows))

	fmt.Println("\nthe rate-limited server's own accounting (GET /v2/filters/cache/clients):")
	for _, cs := range throttledClients.Clients {
		fmt.Printf("  client %-10s allowed %-4d throttled %d\n", cs.Client, cs.Allowed, cs.Throttled)
	}
	fmt.Println("\nmitigation ladder: naive (saturated) → rate-limited (damage ≤ burst, attacker named)")
	fmt.Println("→ hardened keyed (campaign degrades to random insertions; see examples/servepollution)")
}
