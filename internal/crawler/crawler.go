package crawler

import (
	"sync"

	"evilbloom/internal/core"
	"evilbloom/internal/webgraph"
)

// Deduper is the duplicate filter: Seen records url as visited and reports
// whether it had been recorded before. Bloom-backed implementations may err
// on the "seen" side (false positives) — never on the "new" side.
type Deduper interface {
	Seen(url string) bool
}

// HashSetDeduper is Scrapy's default exact filter: a hash set of URL
// fingerprints. 77 bytes per URL at web scale is what motivates swapping in
// a Bloom filter (§5.1).
type HashSetDeduper struct {
	seen map[string]struct{}
}

// NewHashSetDeduper returns an empty exact filter.
func NewHashSetDeduper() *HashSetDeduper {
	return &HashSetDeduper{seen: make(map[string]struct{})}
}

// Seen implements Deduper.
func (h *HashSetDeduper) Seen(url string) bool {
	_, ok := h.seen[url]
	if !ok {
		h.seen[url] = struct{}{}
	}
	return ok
}

// Len returns the number of distinct URLs recorded.
func (h *HashSetDeduper) Len() int { return len(h.seen) }

// BloomDeduper marks URLs in any core.Filter — the pyBloom-in-Scrapy setup
// the paper attacks.
type BloomDeduper struct {
	filter core.Filter
}

// NewBloomDeduper wraps filter.
func NewBloomDeduper(filter core.Filter) *BloomDeduper {
	return &BloomDeduper{filter: filter}
}

// Seen implements Deduper: a membership test followed by insertion.
func (b *BloomDeduper) Seen(url string) bool {
	item := []byte(url)
	if b.filter.Test(item) {
		return true
	}
	b.filter.Add(item)
	return false
}

// Filter exposes the wrapped filter (the adversary can model it perfectly:
// the implementation is public).
func (b *BloomDeduper) Filter() core.Filter { return b.filter }

// Report summarizes one crawl.
type Report struct {
	// Fetched lists successfully fetched URLs in crawl order.
	Fetched []string
	// SkippedSeen counts links not scheduled because the filter said
	// already-seen (true duplicates and false positives alike).
	SkippedSeen int
	// NotFound counts 404s.
	NotFound int
	// Truncated reports whether the crawl stopped at its page budget.
	Truncated bool
}

// DidFetch reports whether url was fetched during the crawl.
func (r *Report) DidFetch(url string) bool {
	for _, u := range r.Fetched {
		if u == url {
			return true
		}
	}
	return false
}

// Crawler executes breadth-first crawls over a web graph.
type Crawler struct {
	web   *webgraph.Web
	dedup Deduper
}

// New builds a crawler over web with the given duplicate filter.
func New(web *webgraph.Web, dedup Deduper) *Crawler {
	return &Crawler{web: web, dedup: dedup}
}

// CrawlConcurrent crawls with the given number of worker goroutines. Page
// fetching runs in parallel (the expensive part of a real spider);
// scheduling and the dedup filter are serialized under one mutex, so any
// Deduper — including a Bloom filter wrapped in core.NewSynced — stays
// consistent. The fetch order is nondeterministic but the fetched set
// equals the sequential crawl's for an exact deduper.
func (c *Crawler) CrawlConcurrent(start string, workers, maxPages int) *Report {
	if workers < 1 {
		workers = 1
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		frontier []string
		inflight int
		stopped  bool
		report   = &Report{}
	)
	mu.Lock()
	if !c.dedup.Seen(start) {
		frontier = append(frontier, start)
	} else {
		report.SkippedSeen++
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for !stopped && len(frontier) == 0 && inflight > 0 {
					cond.Wait()
				}
				if stopped || (len(frontier) == 0 && inflight == 0) {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				url := frontier[0]
				frontier = frontier[1:]
				inflight++
				mu.Unlock()

				page, err := c.web.Fetch(url) // parallel fetch

				mu.Lock()
				if err != nil {
					report.NotFound++
				} else if maxPages > 0 && len(report.Fetched) >= maxPages {
					report.Truncated = true
					stopped = true
				} else {
					report.Fetched = append(report.Fetched, url)
					for _, link := range page.Links {
						if c.dedup.Seen(link) {
							report.SkippedSeen++
							continue
						}
						frontier = append(frontier, link)
					}
				}
				inflight--
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return report
}

// Crawl starts at start and fetches at most maxPages pages (0 = unbounded).
func (c *Crawler) Crawl(start string, maxPages int) *Report {
	report := &Report{}
	var frontier []string
	// Step 4/5 for the seed: schedule unless the filter claims it was seen.
	if !c.dedup.Seen(start) {
		frontier = append(frontier, start)
	} else {
		report.SkippedSeen++
	}
	for len(frontier) > 0 {
		if maxPages > 0 && len(report.Fetched) >= maxPages {
			report.Truncated = true
			return report
		}
		// Step 1: select a URL from the scheduled list.
		url := frontier[0]
		frontier = frontier[1:]
		// Step 2: fetch it.
		page, err := c.web.Fetch(url)
		if err != nil {
			report.NotFound++
			continue
		}
		// Step 3: archive the result.
		report.Fetched = append(report.Fetched, url)
		// Step 4: schedule the interesting links, deduplicating at schedule
		// time (Scrapy's request_seen), which also marks them (step 5).
		for _, link := range page.Links {
			if c.dedup.Seen(link) {
				report.SkippedSeen++
				continue
			}
			frontier = append(frontier, link)
		}
	}
	return report
}
