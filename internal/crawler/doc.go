// Package crawler implements a Scrapy-like web spider (§5.1): a frontier of
// scheduled URLs, a fetcher, and a pluggable duplicate filter deciding
// which discovered links get scheduled. The five-step loop matches the
// paper: select a URL, fetch it, archive the result, schedule the
// interesting links, mark the URL visited. Scrapy performs the "seen" check
// at scheduling time (its dupefilter's request_seen), and so does this
// crawler — which is exactly what the blinding attack exploits: an
// adversary who can get ghost URLs into the dedup filter makes the crawler
// skip pages it has never visited.
//
// The crawler runs against webgraph's in-memory web and accepts any
// core.Filter as its dedup filter, so the same crawl can be repeated over
// an attackable filter and a keyed one; examples/crawlerblinding stages
// that comparison.
package crawler
