package crawler

import (
	"testing"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
	"evilbloom/internal/webgraph"
)

func buildHonestWeb(t testing.TB, pages int) (*webgraph.Web, string) {
	t.Helper()
	w := webgraph.New()
	root := webgraph.BuildSite(w, urlgen.New(1), pages, 5)
	return w, root
}

func TestHashSetDeduper(t *testing.T) {
	d := NewHashSetDeduper()
	if d.Seen("a") {
		t.Error("fresh URL reported seen")
	}
	if !d.Seen("a") {
		t.Error("repeated URL reported new")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestBloomDeduper(t *testing.T) {
	f, err := core.NewPyBloom(1000, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	d := NewBloomDeduper(f)
	if d.Seen("http://a.example/") {
		t.Error("fresh URL reported seen")
	}
	if !d.Seen("http://a.example/") {
		t.Error("repeated URL reported new")
	}
	if d.Filter() != core.Filter(f) {
		t.Error("Filter accessor lost the filter")
	}
}

func TestCrawlVisitsWholeSite(t *testing.T) {
	web, root := buildHonestWeb(t, 200)
	c := New(web, NewHashSetDeduper())
	report := c.Crawl(root, 0)
	if len(report.Fetched) != web.Len() {
		t.Errorf("fetched %d of %d pages", len(report.Fetched), web.Len())
	}
	if report.Truncated || report.NotFound != 0 {
		t.Errorf("unexpected report: %+v", report)
	}
	if !report.DidFetch(root) {
		t.Error("root not fetched")
	}
}

func TestCrawlWithCleanBloomMatchesHashSet(t *testing.T) {
	web, root := buildHonestWeb(t, 300)
	f, err := core.NewPyBloom(100000, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	bloomReport := New(web, NewBloomDeduper(f)).Crawl(root, 0)
	exactReport := New(web, NewHashSetDeduper()).Crawl(root, 0)
	// At f=1e-4 over 300 pages, a false positive is overwhelmingly unlikely;
	// the Bloom crawl must match the exact crawl.
	if len(bloomReport.Fetched) != len(exactReport.Fetched) {
		t.Errorf("bloom crawl fetched %d, exact crawl %d",
			len(bloomReport.Fetched), len(exactReport.Fetched))
	}
}

func TestCrawlConcurrentMatchesSequential(t *testing.T) {
	web, root := buildHonestWeb(t, 400)
	seq := New(web, NewHashSetDeduper()).Crawl(root, 0)
	for _, workers := range []int{1, 4, 16} {
		report := New(web, NewHashSetDeduper()).CrawlConcurrent(root, workers, 0)
		if len(report.Fetched) != len(seq.Fetched) {
			t.Errorf("%d workers fetched %d pages, sequential fetched %d",
				workers, len(report.Fetched), len(seq.Fetched))
		}
		fetched := map[string]bool{}
		for _, u := range report.Fetched {
			if fetched[u] {
				t.Fatalf("%d workers fetched %s twice", workers, u)
			}
			fetched[u] = true
		}
	}
}

func TestCrawlConcurrentWithSyncedBloom(t *testing.T) {
	web, root := buildHonestWeb(t, 400)
	f, err := core.NewPyBloom(100000, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	report := New(web, NewBloomDeduper(core.NewSynced(f))).CrawlConcurrent(root, 8, 0)
	if len(report.Fetched) != web.Len() {
		t.Errorf("fetched %d of %d pages", len(report.Fetched), web.Len())
	}
}

func TestCrawlConcurrentBudget(t *testing.T) {
	web, root := buildHonestWeb(t, 300)
	report := New(web, NewHashSetDeduper()).CrawlConcurrent(root, 4, 10)
	if len(report.Fetched) > 10 || !report.Truncated {
		t.Errorf("budget ignored: fetched %d, truncated %v", len(report.Fetched), report.Truncated)
	}
}

func TestCrawlConcurrentSeenStart(t *testing.T) {
	web, root := buildHonestWeb(t, 10)
	d := NewHashSetDeduper()
	d.Seen(root)
	report := New(web, d).CrawlConcurrent(root, 2, 0)
	if len(report.Fetched) != 0 || report.SkippedSeen != 1 {
		t.Errorf("crawl of pre-seen start: %+v", report)
	}
}

func TestCrawlRespectsPageBudget(t *testing.T) {
	web, root := buildHonestWeb(t, 200)
	report := New(web, NewHashSetDeduper()).Crawl(root, 10)
	if len(report.Fetched) != 10 || !report.Truncated {
		t.Errorf("budget ignored: %+v", report)
	}
}

func TestCrawl404Counting(t *testing.T) {
	web := webgraph.New()
	web.AddPage("http://root.test/", "http://gone.test/", "http://also-gone.test/")
	report := New(web, NewHashSetDeduper()).Crawl("http://root.test/", 0)
	if report.NotFound != 2 {
		t.Errorf("NotFound = %d, want 2", report.NotFound)
	}
}

// §5.2 blinding: the adversary's link farm pollutes the dedup filter; a
// subsequent crawl of an honest site is mostly skipped as "already seen".
func TestBlindingAttack(t *testing.T) {
	// Small filter: capacity 2000, f = 2^-5 — the under-provisioned setup
	// developers reach for when memory is tight.
	f, err := core.NewPyBloom(2000, 1.0/32)
	if err != nil {
		t.Fatal(err)
	}
	dedup := NewBloomDeduper(f)

	// The adversary forges polluting URLs against a perfect model of the
	// filter (public implementation, predictable operations). She accounts
	// for the entry page itself being marked first.
	model, err := core.NewPyBloom(2000, 1.0/32)
	if err != nil {
		t.Fatal(err)
	}
	entry := "http://evil-entry.example.com/"
	modelDedup := NewBloomDeduper(model)
	modelDedup.Seen(entry)
	forger := attack.NewForger(attack.NewPartitionedView(model), urlgen.New(99))
	crafted := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		item, _, err := forger.ForgePolluting(0)
		if err != nil {
			t.Fatal(err)
		}
		model.Add(item)
		crafted = append(crafted, string(item))
	}

	web := webgraph.New()
	webgraph.BuildLinkFarm(web, entry, crafted)
	honestRoot := webgraph.BuildSite(web, urlgen.New(1), 500, 5)

	c := New(web, dedup)
	farmReport := c.Crawl(entry, 0)
	if len(farmReport.Fetched) < 1900 {
		t.Fatalf("link farm crawl fetched only %d pages", len(farmReport.Fetched))
	}

	// The spider now believes huge swaths of the honest web are old news.
	honestReport := c.Crawl(honestRoot, 0)
	total := len(honestReport.Fetched) + honestReport.SkippedSeen
	skippedFrac := float64(honestReport.SkippedSeen) / float64(total)
	// f_adv = (nk/m)^k with n=2001, k=5, m=2000·ln32/ln2²·... ≈ 0.25; the
	// crawl is recursive so skipping compounds: expect a large skipped
	// fraction where a clean filter would skip almost nothing.
	if skippedFrac < 0.10 {
		t.Errorf("blinding had no effect: skipped fraction %.3f", skippedFrac)
	}

	// Control: the same honest site under a clean filter is fully crawled.
	clean, err := core.NewPyBloom(2000, 1.0/32)
	if err != nil {
		t.Fatal(err)
	}
	control := New(web, NewBloomDeduper(clean)).Crawl(honestRoot, 0)
	if len(control.Fetched) <= len(honestReport.Fetched) {
		t.Errorf("polluted crawl fetched %d pages, clean crawl %d — attack had no effect",
			len(honestReport.Fetched), len(control.Fetched))
	}
}

// Fig 7: ghost pages hidden behind decoys. The adversary fixes her secret
// (ghost) URL, then forges decoy URLs whose combined index sets cover the
// ghost's — once the spider has crawled the decoys, the ghost reads as
// already-visited and is never fetched.
func TestDecoyGhostAttack(t *testing.T) {
	const capacity, fpr = 500, 1.0 / 32
	f, err := core.NewPyBloom(capacity, fpr)
	if err != nil {
		t.Fatal(err)
	}

	ghost := "http://root-decoy.example.com/secret/ghost-page"
	// Adversary-side model of the (empty, predictable) filter, used only to
	// compute index sets — the implementation is public.
	model, err := core.NewPyBloom(capacity, fpr)
	if err != nil {
		t.Fatal(err)
	}
	ghostIdx := model.Indexes(nil, []byte(ghost))
	forger := attack.NewForger(attack.NewPartitionedView(model), urlgen.New(7777))
	decoyItems, err := forger.ForgeDecoySet(ghostIdx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Θ(k log k) expectation: with k=5, a handful of decoys suffice.
	if len(decoyItems) > 5 {
		t.Errorf("cover used %d decoys for k=5", len(decoyItems))
	}
	decoys := make([]string, len(decoyItems))
	for i, d := range decoyItems {
		decoys[i] = string(d)
	}

	root := "http://root-decoy.example.com/"
	web := webgraph.New()
	webgraph.BuildDecoyChain(web, root, decoys, ghost)

	report := New(web, NewBloomDeduper(f)).Crawl(root, 0)
	for _, d := range append([]string{root}, decoys...) {
		if !report.DidFetch(d) {
			t.Errorf("decoy %s not fetched", d)
		}
	}
	if report.DidFetch(ghost) {
		t.Error("ghost page was fetched — hiding failed")
	}
	if report.SkippedSeen == 0 {
		t.Error("ghost skip not recorded")
	}

	// Control: with an exact dedup filter the ghost is found.
	exact := New(web, NewHashSetDeduper()).Crawl(root, 0)
	if !exact.DidFetch(ghost) {
		t.Error("exact filter also missed the ghost — web graph broken")
	}
}
