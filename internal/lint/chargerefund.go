package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"evilbloom/internal/lint/analysis"
)

// ChargeRefund enforces the engine's budget symmetry (PR 8): once a
// command has successfully charged a principal's mutation bucket, every
// error return between the charge and the dispatch's success return must
// be an explicit decision — either the path refunds the bucket (the
// digest-push rule: a rejected push must not have cost the pusher
// anything) or it carries a //lint:allow annotation recording that the
// charge deliberately stands (the remove rule: the request was
// well-formed and the filter did the work of refusing it). Without the
// check, a new engine command that forgets the decision silently leaks
// budget on failure paths — an attacker who can trigger the failure
// drains a victim principal's budget at zero cost to the outcome.
//
// The analysis is a conservative walk of each function in
// internal/engine: a "charge" is a call to (*Engine).charge or to
// (*service.Limiter).Allow; the guard that checks the charge's own
// failure (err != nil, or !ok on Allow's boolean) is exempt; past the
// guard, any return whose final result is a non-nil error without a
// refund call (or deferred refund) on the path is reported.
var ChargeRefund = &analysis.Analyzer{
	Name: "chargerefund",
	Doc: "in internal/engine, every error return after a successful bucket charge " +
		"must refund the charge or carry an explicit charge-stands annotation",
	Run: runChargeRefund,
}

func runChargeRefund(pass *analysis.Pass) error {
	if pass.Pkg.Path != pkgEngine {
		return nil
	}
	eachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		w := &crWalker{pass: pass, info: pass.Pkg.Info}
		w.stmts(decl.Body.List, &crState{})
	})
	return nil
}

// crState is the abstract state of one control-flow path.
type crState struct {
	// charged is set once a charge has succeeded on this path.
	charged bool
	// refunded is set once a refund call has run on this path.
	refunded bool
	// terminated marks a path that ended in a return.
	terminated bool
	// chargeErr / chargeOK are the variables capturing the pending
	// charge's results; the guard testing them is the charge's own
	// failure path, exempt from the refund rule.
	chargeErr types.Object
	chargeOK  types.Object
}

func (s crState) clone() *crState { return &s }

type crWalker struct {
	pass *analysis.Pass
	info *types.Info
}

// isChargeCall matches (*Engine).charge-style internal charges and
// (*service.Limiter).Allow.
func (w *crWalker) isChargeCall(call *ast.CallExpr) bool {
	fn := calleeOf(w.info, call)
	if fn == nil {
		return false
	}
	if recvPkg, _ := recvOf(fn); recvPkg == pkgService && fn.Name() == "Allow" {
		_, typeName := recvOf(fn)
		return typeName == "Limiter"
	}
	return funcPkg(fn) == pkgEngine && fn.Name() == "charge"
}

// isRefundCall matches (*service.Limiter).Refund and engine-internal
// refund helpers.
func (w *crWalker) isRefundCall(call *ast.CallExpr) bool {
	fn := calleeOf(w.info, call)
	if fn == nil {
		return false
	}
	if recvPkg, typeName := recvOf(fn); recvPkg == pkgService && typeName == "Limiter" && fn.Name() == "Refund" {
		return true
	}
	return funcPkg(fn) == pkgEngine && (fn.Name() == "refund" || fn.Name() == "Refund")
}

// containsCall reports whether expr contains a call matched by pred, and
// returns the first match.
func (w *crWalker) findCall(n ast.Node, pred func(*ast.CallExpr) bool) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && pred(call) {
			found = call
			return false
		}
		return true
	})
	return found
}

// stmts walks a statement list, mutating st in sequence order.
func (w *crWalker) stmts(list []ast.Stmt, st *crState) {
	for _, s := range list {
		w.stmt(s, st)
	}
}

func (w *crWalker) stmt(s ast.Stmt, st *crState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if call := w.findCall(s, w.isChargeCall); call != nil {
			// Remember which variables capture the charge's outcome; the
			// guard that tests them is the charge's own failure path.
			st.chargeErr, st.chargeOK = nil, nil
			for _, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := w.info.ObjectOf(id)
				if obj == nil {
					continue
				}
				switch {
				case isErrorType(obj.Type()):
					st.chargeErr = obj
				case isBool(obj.Type()):
					st.chargeOK = obj
				}
			}
			if st.chargeErr == nil && st.chargeOK == nil {
				st.charged = true // outcome discarded: treat as charged
			}
			return
		}
		if w.findCall(s, w.isRefundCall) != nil {
			st.refunded = true
		}
	case *ast.ExprStmt:
		if w.findCall(s, w.isRefundCall) != nil {
			st.refunded = true
			return
		}
		if w.findCall(s, w.isChargeCall) != nil {
			st.charged = true
		}
	case *ast.DeferStmt:
		if w.isRefundCall(s.Call) || w.findCall(s.Call, w.isRefundCall) != nil {
			st.refunded = true
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		guard := w.isChargeGuard(s.Cond, st)
		bodySt := st.clone()
		if guard {
			// Inside the guard the charge failed; nothing to refund.
			bodySt.charged, bodySt.chargeErr, bodySt.chargeOK = st.charged, nil, nil
		}
		w.stmts(s.Body.List, bodySt)
		elseSt := st.clone()
		if s.Else != nil {
			w.stmt(s.Else, elseSt)
		}
		if guard {
			// Past the guard, the charge succeeded.
			st.charged, st.chargeErr, st.chargeOK = true, nil, nil
		}
		mergeBranches(st, bodySt, elseSt)
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.ForStmt:
		inner := st.clone()
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		w.stmts(s.Body.List, inner)
		st.charged = st.charged || inner.charged
	case *ast.RangeStmt:
		inner := st.clone()
		w.stmts(s.Body.List, inner)
		st.charged = st.charged || inner.charged
	case *ast.SwitchStmt:
		w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, st.clone())
			}
		}
	case *ast.ReturnStmt:
		if st.charged && !st.refunded && w.returnsError(s) {
			w.pass.Reportf(s.Pos(),
				"error return after a successful charge with no refund on this path: refund the bucket or annotate the charge-stands decision")
		}
		st.terminated = true
	}
}

func (w *crWalker) caseClauses(body *ast.BlockStmt, st *crState) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			w.stmts(cc.Body, st.clone())
		}
	}
}

// isChargeGuard matches `err != nil` over the pending charge error and
// `!ok` over the pending charge boolean.
func (w *crWalker) isChargeGuard(cond ast.Expr, st *crState) bool {
	switch cond := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if st.chargeErr == nil || cond.Op != token.NEQ {
			return false
		}
		for _, side := range []ast.Expr{cond.X, cond.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok && w.info.ObjectOf(id) == st.chargeErr {
				return true
			}
		}
	case *ast.UnaryExpr:
		if st.chargeOK == nil || cond.Op != token.NOT {
			return false
		}
		if id, ok := ast.Unparen(cond.X).(*ast.Ident); ok && w.info.ObjectOf(id) == st.chargeOK {
			return true
		}
	}
	return false
}

// returnsError reports whether the return's final result is a non-nil
// error expression.
func (w *crWalker) returnsError(s *ast.ReturnStmt) bool {
	if len(s.Results) == 0 {
		return false
	}
	last := s.Results[len(s.Results)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return isErrorType(w.info.TypeOf(last))
}

// mergeBranches folds the two arms of an if back into st: charged is
// sticky; refunded survives only when every non-terminated arm refunded.
func mergeBranches(st, bodySt, elseSt *crState) {
	st.charged = st.charged || bodySt.charged || elseSt.charged
	survivors := 0
	refunded := true
	for _, arm := range []*crState{bodySt, elseSt} {
		if arm.terminated {
			continue
		}
		survivors++
		refunded = refunded && arm.refunded
	}
	if survivors > 0 && refunded {
		st.refunded = true
	}
}

func isBool(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}
