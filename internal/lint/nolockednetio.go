package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"evilbloom/internal/lint/analysis"
)

// NoLockedNetIO guards the service's latency floor: shard and registry
// mutexes serialize every mutation and (on the locked fallback path)
// reads, so any syscall performed while one is held stretches the
// critical section from nanoseconds to milliseconds — and hands an
// adversary with a slow disk or a stalled peer connection a convoying
// primitive against every other principal on the shard. The analyzer
// walks each function in internal/service tracking mutex depth
// (including the lockAll/unlockAll helpers, which carry a net lock
// delta) and reports any call made while a lock is held that reaches —
// directly or transitively through module code — the network or file
// I/O surface (net.*, (*os.File) read/write/sync, os file ops).
//
// The WAL is the sanctioned exception: persist.flushLocked writes the
// journal inside the critical section *by design* (the durability
// ordering requires the append to be on disk before the mutation is
// visible), so its declaration carries //lint:allow nolockednetio and
// the analyzer treats the whole function as a sanctioned sink — calls
// to it, and to functions that only reach I/O through it, are clean.
// Any NEW I/O under a lock still fails the build.
var NoLockedNetIO = &analysis.Analyzer{
	Name: "nolockednetio",
	Doc: "no network or file I/O may be reachable while a shard or registry mutex " +
		"is held in internal/service (WAL flush is the annotated exception)",
	Run: runNoLockedNetIO,
}

// nlFacts is the program-wide I/O reachability computation.
type nlFacts struct {
	// doesIO marks module functions that transitively reach the I/O
	// surface (sanctioned functions and their exclusive callers excluded).
	doesIO map[*types.Func]bool
	// witness describes the concrete I/O call a doesIO function reaches.
	witness map[*types.Func]string
	// sanctioned marks functions whose declaration doc carries
	// //lint:allow nolockednetio — treated as clean sinks.
	sanctioned map[*types.Func]bool
	// lockDelta is the net mutex acquisitions a function leaves behind
	// (+1 for lockAll-style helpers, -1 for unlockAll-style).
	lockDelta map[*types.Func]int
}

// directIO classifies a callee as part of the I/O surface and names it.
func directIO(fn *types.Func) (string, bool) {
	pkg := funcPkg(fn)
	if pkg == "net" || strings.HasPrefix(pkg, "net/") {
		return pkg + "." + fn.Name(), true
	}
	if recvPkg, recvType := recvOf(fn); recvPkg == "os" && recvType == "File" {
		switch fn.Name() {
		case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Seek", "Truncate", "Close":
			return "(*os.File)." + fn.Name(), true
		}
	}
	if pkg == "os" {
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "CreateTemp", "Remove", "RemoveAll",
			"Rename", "Mkdir", "MkdirAll", "ReadFile", "WriteFile", "ReadDir", "Stat", "Truncate":
			return "os." + fn.Name(), true
		}
	}
	return "", false
}

func lockedIOFacts(prog *analysis.Program) *nlFacts {
	return prog.Memo("nolockednetio", func() any {
		facts := &nlFacts{
			doesIO:     make(map[*types.Func]bool),
			witness:    make(map[*types.Func]string),
			sanctioned: make(map[*types.Func]bool),
			lockDelta:  make(map[*types.Func]int),
		}
		direct := make(map[*types.Func]string)
		calls := make(map[*types.Func][]*types.Func)

		for _, pkg := range prog.Packages {
			info := pkg.Info
			eachFunc(pkg, func(decl *ast.FuncDecl) {
				owner, _ := info.Defs[decl.Name].(*types.Func)
				if owner == nil {
					return
				}
				if docAllows(decl.Doc, "nolockednetio") {
					facts.sanctioned[owner] = true
				}
				// Calls launched with `go` run outside the caller's critical
				// section; closure bodies are walked only where invoked. Both
				// are excluded from the synchronous call-edge set.
				async := make(map[ast.Node]bool)
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						async[g.Call] = true
					}
					return true
				})
				delta := 0
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if async[call] {
						return true // arguments still evaluate synchronously
					}
					callee := calleeOf(info, call)
					if callee == nil {
						return true
					}
					switch {
					case isMutexMethod(callee, "Lock", "RLock"):
						delta++
					case isMutexMethod(callee, "Unlock", "RUnlock"):
						delta--
					}
					if name, ok := directIO(callee); ok {
						if _, seen := direct[owner]; !seen {
							direct[owner] = name
						}
					}
					calls[owner] = append(calls[owner], callee)
					return true
				})
				if delta > 0 {
					facts.lockDelta[owner] = 1
				} else if delta < 0 {
					facts.lockDelta[owner] = -1
				}
			})
		}

		var visit func(fn *types.Func, seen map[*types.Func]bool) bool
		visit = func(fn *types.Func, seen map[*types.Func]bool) bool {
			if facts.sanctioned[fn] {
				return false
			}
			if io, ok := facts.doesIO[fn]; ok {
				return io
			}
			if seen[fn] {
				return false
			}
			seen[fn] = true
			if name, ok := direct[fn]; ok {
				facts.doesIO[fn] = true
				facts.witness[fn] = name
				return true
			}
			for _, callee := range calls[fn] {
				if _, isDirect := directIO(callee); isDirect && !facts.sanctioned[callee] {
					// callee may be a std function we have no body for
					facts.doesIO[fn] = true
					facts.witness[fn], _ = directIO(callee)
					return true
				}
				if visit(callee, seen) {
					facts.doesIO[fn] = true
					facts.witness[fn] = facts.witness[callee]
					return true
				}
			}
			facts.doesIO[fn] = false
			return false
		}
		for fn := range calls {
			visit(fn, make(map[*types.Func]bool))
		}
		return facts
	}).(*nlFacts)
}

func runNoLockedNetIO(pass *analysis.Pass) error {
	if pass.Pkg.Path != pkgService {
		return nil
	}
	facts := lockedIOFacts(pass.Program)
	info := pass.Pkg.Info
	eachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		if owner, _ := info.Defs[decl.Name].(*types.Func); owner != nil && facts.sanctioned[owner] {
			return
		}
		w := &nlWalker{pass: pass, info: info, facts: facts}
		w.stmts(decl.Body.List)
	})
	return nil
}

// nlWalker tracks mutex depth through one function body in source order.
type nlWalker struct {
	pass  *analysis.Pass
	info  *types.Info
	facts *nlFacts
	depth int
}

func (w *nlWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *nlWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; the lock stays held for
		// the rest of the body, so the depth must not drop here. Any
		// other deferred call runs after the (eventual) release.
		return
	case *ast.GoStmt:
		// The goroutine body runs outside this critical section; walk it
		// with a fresh depth.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			inner := &nlWalker{pass: w.pass, info: w.info, facts: w.facts}
			inner.stmts(lit.Body.List)
		}
		return
	case *ast.BlockStmt:
		w.stmts(s.List)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.exprCalls(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmts(s.Body.List)
		return
	case *ast.RangeStmt:
		w.stmts(s.Body.List)
		return
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.exprCalls(s)
		return
	}
	w.exprCalls(s)
}

// exprCalls visits every call in a non-branching statement, outermost
// first, in source order.
func (w *nlWalker) exprCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Stored closures run outside this walk; skip their bodies.
			return false
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func (w *nlWalker) call(call *ast.CallExpr) {
	callee := calleeOf(w.info, call)
	if callee == nil {
		return
	}
	switch {
	case isMutexMethod(callee, "Lock", "RLock"):
		w.depth++
		return
	case isMutexMethod(callee, "Unlock", "RUnlock"):
		if w.depth > 0 {
			w.depth--
		}
		return
	}
	if d := w.facts.lockDelta[callee]; d != 0 {
		w.depth += d
		if w.depth < 0 {
			w.depth = 0
		}
		return
	}
	if w.depth == 0 || w.facts.sanctioned[callee] {
		return
	}
	if name, ok := directIO(callee); ok {
		w.pass.Reportf(call.Pos(),
			"%s called while a mutex is held: I/O stretches the critical section and convoys every waiter; move it outside the lock or annotate the durability decision",
			name)
		return
	}
	if w.facts.doesIO[callee] {
		w.pass.Reportf(call.Pos(),
			"call to %s while a mutex is held reaches %s: I/O under a shard or registry lock convoys every waiter; move it outside the lock or annotate the durability decision",
			callee.Name(), w.facts.witness[callee])
	}
}
