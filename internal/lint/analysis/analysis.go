// Package analysis is a small, self-contained reimplementation of the
// golang.org/x/tools/go/analysis surface that evillint's analyzers are
// written against. The repo builds with no third-party modules, so the
// framework lives here: an Analyzer is a named check with a Run function,
// a Pass hands it one type-checked package plus the whole loaded program,
// and diagnostics are reported through the pass. Unlike the upstream
// design there is no fact serialization — analyzers that need
// cross-package knowledge (field objects, call graphs, constant sets)
// read it straight off the Program, which always holds every package of
// the analysis universe type-checked against one shared token.FileSet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations.
	Name string
	// Doc is the one-paragraph description printed by evillint -list.
	Doc string
	// Run executes the check over one package. It reports findings via
	// pass.Reportf and returns an error only for analysis malfunctions,
	// never for findings.
	Run func(*Pass) error
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Package is one parsed, type-checked package of the analysis universe.
type Package struct {
	// Path is the import path ("evilbloom/internal/service").
	Path string
	// Name is the package clause name.
	Name string
	// Files holds the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the resolution maps (Uses, Defs, Selections, Types).
	Info *types.Info
	// Target marks packages named by the load patterns; dependency
	// packages pulled in for type information have Target false and never
	// receive diagnostics.
	Target bool
}

// FuncSource locates a function declaration's AST within the program.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Program is the full analysis universe: every package loaded for one
// evillint invocation, type-checked against one FileSet so that object
// identities are comparable across packages.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package

	declOnce sync.Once
	decls    map[*types.Func]FuncSource

	memoMu sync.Mutex
	memo   map[string]any
}

// ByPath returns the loaded package with the given import path, or nil.
func (p *Program) ByPath(path string) *Package { return p.byPath[path] }

// DeclOf returns the source declaration of fn when fn was loaded as part
// of this program (std-library and synthetic functions have none).
func (p *Program) DeclOf(fn *types.Func) (FuncSource, bool) {
	p.declOnce.Do(func() {
		p.decls = make(map[*types.Func]FuncSource)
		for _, pkg := range p.Packages {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.decls[obj] = FuncSource{Decl: fd, Pkg: pkg}
					}
				}
			}
		}
	})
	src, ok := p.decls[fn]
	return src, ok
}

// Memo caches a program-wide computation under key, so that analyzers
// running once per package can share one expensive pass (atomic-field
// collection, I/O call-graph summaries) across the whole run.
func (p *Program) Memo(key string, build func() any) any {
	p.memoMu.Lock()
	defer p.memoMu.Unlock()
	if p.memo == nil {
		p.memo = make(map[string]any)
	}
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Program  *Program
	Pkg      *Package
	// Report receives each diagnostic; the driver owns suppression and
	// rendering.
	Report func(Diagnostic)
}

// Fset returns the program-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Program.Fset }

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf resolves an expression's type in the package under analysis.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier use or definition.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }
