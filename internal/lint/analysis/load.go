package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader type-checks everything — our packages and, transitively, the
// standard library — from source, because the analysis must run in an
// offline container with no export data and no third-party modules. One
// process-wide FileSet and one shared "source" importer keep positions
// and standard-library package identities consistent across every load
// (the self-check over ./... and each analysistest fixture universe all
// reuse the same std packages instead of re-checking net/http per test).
var (
	loadMu     sync.Mutex
	sharedFset = token.NewFileSet()
	stdImp     types.Importer
)

func stdImporter() types.Importer {
	if stdImp == nil {
		stdImp = importer.ForCompiler(sharedFset, "source", nil)
	}
	return stdImp
}

// loader resolves imports for one analysis universe. Module packages (or
// fixture packages under srcRoot) shadow the real world; anything else
// falls through to the standard-library source importer.
type loader struct {
	prog *Program
	// srcRoot, when set, is an analysistest fixture tree: import paths
	// resolve to directories beneath it, exactly like a GOPATH src dir.
	srcRoot string
	// pending guards against import cycles in fixture mode.
	pending map[string]bool
}

func newLoader(srcRoot string) *loader {
	return &loader{
		prog: &Program{
			Fset:   sharedFset,
			byPath: make(map[string]*Package),
		},
		srcRoot: srcRoot,
		pending: make(map[string]bool),
	}
}

// Import implements types.Importer for the type-checker: program packages
// first, then fixture directories, then the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.prog.byPath[path]; ok {
		return p.Types, nil
	}
	if l.srcRoot != "" {
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if files, err := goFilesIn(dir); err == nil && len(files) > 0 {
			p, err := l.build(path, dir, files, true)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return stdImporter().Import(path)
}

// build parses and type-checks one package and installs it in the program.
func (l *loader) build(path, dir string, files []string, target bool) (*Package, error) {
	if l.pending[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.pending[path] = true
	defer delete(l.pending, path)

	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	cfg := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := cfg.Check(path, sharedFset, parsed, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{
		Path:   path,
		Name:   tpkg.Name(),
		Files:  parsed,
		Types:  tpkg,
		Info:   info,
		Target: target,
	}
	l.prog.byPath[path] = p
	l.prog.Packages = append(l.prog.Packages, p)
	return p, nil
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadModule loads the packages matching patterns (plus their in-module
// dependencies, marked non-target) from the Go module containing dir,
// fully type-checked. The go tool does the package and build-constraint
// resolution; test files are excluded, matching the lint contract that
// tests may drive internals the production tree must not touch.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	l := newLoader("")
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Standard {
			continue // std resolves through the source importer
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		// -deps emits dependencies before dependents, so every in-module
		// import is already built when its importer is checked.
		if _, err := l.build(lp.ImportPath, lp.Dir, lp.GoFiles, !lp.DepOnly); err != nil {
			return nil, err
		}
	}
	return l.prog, nil
}

// LoadFixture loads an analysistest source tree: every directory beneath
// srcRoot that holds .go files becomes a package whose import path is its
// path relative to srcRoot. Fixture trees shadow real import paths
// ("evilbloom/internal/service"), so analyzers keyed to those paths run
// against fixtures unchanged.
func LoadFixture(srcRoot string) (*Program, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.Walk(abs, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() && path != abs {
			if files, err := goFilesIn(path); err == nil && len(files) > 0 {
				dirs = append(dirs, path)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no fixture packages under %s", srcRoot)
	}
	sort.Strings(dirs)
	l := newLoader(abs)
	for _, d := range dirs {
		rel, err := filepath.Rel(abs, d)
		if err != nil {
			return nil, err
		}
		path := filepath.ToSlash(rel)
		if l.prog.byPath[path] != nil {
			continue // built on demand as another fixture's import
		}
		files, err := goFilesIn(d)
		if err != nil {
			return nil, err
		}
		if _, err := l.build(path, d, files, true); err != nil {
			return nil, err
		}
	}
	return l.prog, nil
}

// goFilesIn lists the non-test .go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ModuleRoot walks up from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}
