// Package service exercises the locked-I/O walker: direct syscalls and
// transitive reaches under a mutex are findings; released locks,
// goroutines, and the sanctioned WAL sink are not.
package service

import (
	"os"
	"sync"
)

type shard struct {
	mu   sync.Mutex
	path string
	wal  *os.File
}

// writeBad performs the syscall inside the critical section.
func (s *shard) writeBad(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(s.path, data, 0o600) // want "called while a mutex is held"
}

// persistBad reaches the I/O two calls away, still inside the lock.
func (s *shard) persistBad(data []byte) {
	s.mu.Lock()
	s.stash(data) // want "reaches"
	s.mu.Unlock()
}

func (s *shard) stash(data []byte) {
	s.wal.Write(data)
}

// writeGood releases the lock before the write.
func (s *shard) writeGood(data []byte) error {
	s.mu.Lock()
	buf := append([]byte(nil), data...)
	s.mu.Unlock()
	return os.WriteFile(s.path, buf, 0o600)
}

// asyncGood launches the I/O in a goroutine, outside the critical section.
func (s *shard) asyncGood(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.stash(data)
}

// flushLocked is the sanctioned WAL write: the one annotation on the
// declaration covers every locked caller.
//
//lint:allow nolockednetio fixture: WAL durability ordering demands the write inside the lock
func (s *shard) flushLocked() {
	s.wal.Sync()
}

// appendGood calls the sanctioned sink under the lock — clean.
func (s *shard) appendGood() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}
