// Package service orchestrates lock-free reads, so even a call into a
// plain-writing function two packages away is a finding here.
package service

import "evilbloom/internal/bitset"

type shard struct{ b *bitset.BitSet }

func (s *shard) addAtomic(i int, v uint64) {
	s.b.SetAtomic(i, v)
}

func (s *shard) addPlain(i int, v uint64) {
	s.b.Set(i, v) // want "performs non-atomic writes"
}
