// Package bitset is the fixture twin of the real word-slice store: words
// is read with sync/atomic, so every plain write to it is a finding.
package bitset

import "sync/atomic"

type BitSet struct{ words []uint64 }

func (b *BitSet) SetAtomic(i int, v uint64) {
	atomic.StoreUint64(&b.words[i], v)
}

func (b *BitSet) TestAtomic(i int) uint64 {
	return atomic.LoadUint64(&b.words[i])
}

func (b *BitSet) Set(i int, v uint64) {
	b.words[i] = v // want "non-atomic write"
}

// Reset is the documented plain-write twin; its doc annotation covers
// every write in the body.
//
//lint:allow atomicpublish fixture: documented plain-write twin, callers serialize externally
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
