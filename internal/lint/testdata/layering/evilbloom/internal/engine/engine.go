// Package engine is the one place allowed to charge, refund, and reach
// stores; nothing here may be reported.
package engine

import "evilbloom/internal/service"

type Engine struct{ reg *service.Registry }

func (e *Engine) charge(filter, principal string, n int) error {
	return e.reg.Limiter().Allow(filter, principal, n)
}

func (e *Engine) refund(filter, principal string, n int) {
	e.reg.Limiter().Refund(filter, principal, n)
}

func (e *Engine) store(name string) *service.Store {
	return e.reg.Get(name).Store()
}
