// Package service is the fixture twin of the real service layer: just
// enough surface for the layering analyzer to resolve the forbidden
// methods by type.
package service

type Registry struct{ lim Limiter }

func (r *Registry) Limiter() *Limiter       { return &r.lim }
func (r *Registry) Get(name string) *Filter { return &Filter{} }

type Limiter struct{}

func (l *Limiter) Allow(filter, principal string, n int) error { return nil }
func (l *Limiter) Refund(filter, principal string, n int)      {}

type Filter struct{}

func (f *Filter) Store() *Store { return &Store{} }

type Store struct{}
