// Package ops is the passing fixture: a non-codec package may hold a
// registry and even its limiter — it just may not charge or refund.
package ops

import "evilbloom/internal/service"

func poke(r *service.Registry) *service.Limiter {
	_ = r.Get("f")
	return r.Limiter()
}
