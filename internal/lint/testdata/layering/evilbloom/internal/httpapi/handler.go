// Package httpapi is the violating codec fixture. The import is aliased
// and one forbidden method is taken as a method value — the spellings the
// old grep could not see.
package httpapi

import svc "evilbloom/internal/service"

type server struct{ reg *svc.Registry }

func (s *server) handle() error {
	lim := s.reg.Limiter() // want "codec package must not reach"
	allow := lim.Allow     // want "only the engine charges or refunds"
	if err := allow("f", "p", 1); err != nil {
		return err
	}
	lim.Refund("f", "p", 1) // want "only the engine charges or refunds"
	f := s.reg.Get("f")     // want "codec package must not reach"
	_ = f.Store()           // want "must not hold a raw store handle"
	return nil
}
