// Package service is the fixture twin holding the limiter the engine
// charges against.
package service

type Limiter struct{}

func (l *Limiter) Allow(filter, principal string, n int) error { return nil }
func (l *Limiter) Refund(filter, principal string, n int)      {}
