// Package engine exercises the charge/refund interpreter: guarded charge
// failures are exempt, refunds (inline and deferred) clear the debt, and
// an unrefunded error return after a successful charge is the finding.
package engine

import (
	"errors"

	"evilbloom/internal/service"
)

type Engine struct{ lim *service.Limiter }

type Result struct{}

var errStore = errors.New("store failed")

func store() error { return errStore }

func (e *Engine) charge(p string, n int) error {
	return e.lim.Allow("f", p, n)
}

// AddGood: the error return inside the charge's own guard needs no refund.
func (e *Engine) AddGood(p string) (Result, error) {
	if err := e.charge(p, 1); err != nil {
		return Result{}, err
	}
	return Result{}, nil
}

// PushGood: a failure after the charge refunds before returning.
func (e *Engine) PushGood(p string) (Result, error) {
	if err := e.charge(p, 1); err != nil {
		return Result{}, err
	}
	if err := store(); err != nil {
		e.lim.Refund("f", p, 1)
		return Result{}, err
	}
	return Result{}, nil
}

// DeferGood: a deferred refund covers every later return.
func (e *Engine) DeferGood(p string) (Result, error) {
	if err := e.charge(p, 1); err != nil {
		return Result{}, err
	}
	defer e.lim.Refund("f", p, 1)
	if err := store(); err != nil {
		return Result{}, err
	}
	return Result{}, nil
}

// RemoveBad: charged, then an error return with no refund.
func (e *Engine) RemoveBad(p string) (Result, error) {
	if err := e.charge(p, 1); err != nil {
		return Result{}, err
	}
	if err := store(); err != nil {
		return Result{}, err // want "no refund on this path"
	}
	return Result{}, nil
}

// DirectBad: same leak through the separate-assign charge shape, calling
// the limiter without the charge helper.
func (e *Engine) DirectBad(p string) (Result, error) {
	err := e.lim.Allow("f", p, 1)
	if err != nil {
		return Result{}, err
	}
	if err := store(); err != nil {
		return Result{}, err // want "no refund on this path"
	}
	return Result{}, nil
}
