// Package httpapi proves the //lint:allow scope: the annotation covers
// the line below it and nothing else — the second, identical violation
// two lines down still reports.
package httpapi

import "evilbloom/internal/service"

func twice(r *service.Registry) {
	//lint:allow layering fixture: the annotated violation must be suppressed
	r.Limiter()
	r.Limiter() // want "codec package must not reach"
}
