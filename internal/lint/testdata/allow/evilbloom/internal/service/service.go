// Package service is the minimal stub for the allow-scoping fixture.
package service

type Registry struct{ lim Limiter }

func (r *Registry) Limiter() *Limiter { return &r.lim }

type Limiter struct{}
