// Package engine is the fixture twin of the error taxonomy: three kinds
// instead of eight, same shape.
package engine

type Kind int

const (
	KindInvalid Kind = iota + 1
	KindNotFound
	KindBusy
)

func Classify(err error) Kind {
	if err == nil {
		return 0
	}
	return KindInvalid
}
