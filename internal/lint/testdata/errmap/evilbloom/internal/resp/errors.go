// Package resp is the violating codec: KindBusy silently falls through
// to the default reply class.
package resp

import "evilbloom/internal/engine"

func reply(err error) string {
	switch engine.Classify(err) { // want "does not cover KindBusy"
	case engine.KindInvalid, engine.KindNotFound:
		return "ERR " + err.Error()
	}
	return "ERR " + err.Error()
}
