// Package httpapi is the passing codec: every kind has an explicit arm.
package httpapi

import "evilbloom/internal/engine"

func status(err error) int {
	switch engine.Classify(err) {
	case engine.KindInvalid:
		return 400
	case engine.KindNotFound:
		return 404
	case engine.KindBusy:
		return 429
	}
	return 500
}
