// Package lint is evillint's invariant suite: five type-resolved
// analyzers that machine-check the contracts the codebase used to carry
// as comments and a grep script. The paper this repo reproduces
// (Gerbet–Kumar–Lauradoux, DSN 2015) is about adversaries exploiting the
// gap between a data structure's assumed and actual behavior; these
// analyzers close the same kind of gap in our own implementation —
// layering, atomic publication, charge/refund symmetry, error-kind
// exhaustiveness, and I/O-under-lock are all invariants an innocent
// refactor could silently break long before an adversary found the seam.
//
// The driver honors a triage escape hatch, documented in allow.go:
//
//	//lint:allow <analyzer> <reason>
package lint

import (
	"go/token"
	"sort"

	"evilbloom/internal/lint/analysis"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Layering,
		AtomicPublish,
		ChargeRefund,
		ErrMap,
		NoLockedNetIO,
	}
}

// Finding is one driver-level result: a diagnostic plus its suppression
// state after //lint:allow triage.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	// Reason is the allow annotation's justification when Suppressed.
	Reason string
}

// Run executes the analyzers over every target package of prog, applies
// //lint:allow suppression, and returns all findings sorted by position.
// Malformed allow annotations are themselves findings (analyzer "allow").
func Run(prog *analysis.Program, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range prog.Packages {
		if !pkg.Target {
			continue
		}
		idx := buildAllowIndex(prog.Fset, pkg)
		for _, d := range idx.malformed {
			findings = append(findings, Finding{
				Analyzer: "allow",
				Pos:      prog.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer: a,
				Program:  prog,
				Pkg:      pkg,
			}
			pass.Report = func(d analysis.Diagnostic) {
				reason, suppressed := idx.suppress(a.Name, d.Pos)
				findings = append(findings, Finding{
					Analyzer:   a.Name,
					Pos:        prog.Fset.Position(d.Pos),
					Message:    d.Message,
					Suppressed: suppressed,
					Reason:     reason,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
