// Package analysistest drives evillint's analyzers over fixture source
// trees, mirroring golang.org/x/tools/go/analysis/analysistest: a fixture
// directory is a miniature GOPATH src tree whose packages shadow the real
// module's import paths ("evilbloom/internal/service"), so analyzers
// keyed to those paths run against fixtures unchanged. Expectations are
// written in the fixtures themselves:
//
//	reg.Limiter() // want "must not reach"
//
// Each `// want "regexp"` demands exactly one unsuppressed diagnostic on
// its line whose message matches the regexp; any diagnostic without a
// matching want, and any want without a diagnostic, fails the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"evilbloom/internal/lint"
	"evilbloom/internal/lint/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

// expectation is one parsed want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture tree at srcRoot, runs the analyzers over it, and
// checks every finding against the fixtures' want comments. It returns
// all findings (including suppressed ones) for additional assertions.
func Run(t *testing.T, srcRoot string, analyzers ...*analysis.Analyzer) []lint.Finding {
	t.Helper()
	prog, err := analysis.LoadFixture(srcRoot)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", srcRoot, err)
	}
	wants := collectWants(t, prog)
	findings, err := lint.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", srcRoot, err)
	}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		if !claim(wants, f) {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no diagnostic reported", w.file, w.line, w.re)
		}
	}
	return findings
}

// claim marks the first unmatched want covering f, if any.
func claim(wants []*expectation, f lint.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every fixture file's want comments off the loaded
// ASTs (they were parsed with comments).
func collectWants(t *testing.T, prog *analysis.Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Packages {
		if !pkg.Target {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pattern, err := strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("bad want comment %s: %v", c.Text, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", pattern, err)
					}
					p := prog.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return wants
}

// Describe renders a finding list compactly for test failure messages.
func Describe(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		state := ""
		if f.Suppressed {
			state = " (suppressed: " + f.Reason + ")"
		}
		fmt.Fprintf(&b, "%s:%d: %s: %s%s\n", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message, state)
	}
	return b.String()
}
