package lint

import (
	"go/ast"
	"go/types"

	"evilbloom/internal/lint/analysis"
)

// The analyzers key on the real tree's import paths. Fixture trees under
// testdata shadow the same paths, so the checks run against fixtures
// unchanged — the trick the upstream analysistest GOPATH layout uses.
const (
	pkgEngine  = "evilbloom/internal/engine"
	pkgService = "evilbloom/internal/service"
	pkgHTTPAPI = "evilbloom/internal/httpapi"
	pkgRESP    = "evilbloom/internal/resp"
)

// recvOf resolves a method's receiver to its named type's package path
// and type name; non-methods return empty strings.
func recvOf(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// funcPkg returns the package path a function belongs to ("" for
// builtins and universe-scope objects).
func funcPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// calleeOf resolves a call expression to the concrete or interface
// *types.Func it invokes, when the callee is a simple identifier or
// selector (conversions, builtins and indirect calls through variables
// return nil).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

// eachFunc visits every function declaration with a body in the package.
func eachFunc(pkg *analysis.Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// fieldOfAddr resolves the struct field written or addressed by an
// expression of the form x.F or x.F[i], returning nil otherwise.
func fieldOfAddr(info *types.Info, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isMutexMethod reports whether fn is sync.Mutex/RWMutex's method with
// one of the given names.
func isMutexMethod(fn *types.Func, names ...string) bool {
	pkgPath, typeName := recvOf(fn)
	if pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
