package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"evilbloom/internal/lint/analysis"
)

// The escape hatch. A finding the team has triaged and accepted is
// annotated in place:
//
//	//lint:allow <analyzer> <reason>
//
// The annotation suppresses diagnostics of that analyzer on its own line,
// on the line directly below it, or — when it appears in a function's doc
// comment — anywhere inside that function. The reason is mandatory: an
// allow with no justification is itself reported, because an invariant
// waived without a recorded why is exactly the assumed-versus-actual gap
// this suite exists to close.

const allowPrefix = "lint:allow"

// allowEntry is one parsed annotation.
type allowEntry struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// allowIndex holds every annotation of one package, addressable by
// file/line and by enclosing function declaration.
type allowIndex struct {
	fset *token.FileSet
	// byLine maps file name + line of the annotation.
	byLine map[string]map[int][]*allowEntry
	// byFunc maps function declarations whose doc comment carries an
	// annotation to the entries.
	byFunc map[*ast.FuncDecl][]*allowEntry
	// malformed collects annotations missing the analyzer or the reason.
	malformed []analysis.Diagnostic
	funcs     []*ast.FuncDecl
}

// parseAllow extracts an annotation from one comment line, reporting
// whether the comment is an annotation at all.
func parseAllow(text string) (analyzer, reason string, ok bool) {
	body, found := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), allowPrefix)
	if !found {
		return "", "", false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// buildAllowIndex scans one package's comments.
func buildAllowIndex(fset *token.FileSet, pkg *analysis.Package) *allowIndex {
	idx := &allowIndex{
		fset:   fset,
		byLine: make(map[string]map[int][]*allowEntry),
		byFunc: make(map[*ast.FuncDecl][]*allowEntry),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzerName, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				if analyzerName == "" || reason == "" {
					idx.malformed = append(idx.malformed, analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				entry := &allowEntry{analyzer: analyzerName, reason: reason, pos: c.Pos()}
				p := fset.Position(c.Pos())
				lines := idx.byLine[p.Filename]
				if lines == nil {
					lines = make(map[int][]*allowEntry)
					idx.byLine[p.Filename] = lines
				}
				lines[p.Line] = append(lines[p.Line], entry)
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			idx.funcs = append(idx.funcs, fd)
			if fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				analyzerName, reason, ok := parseAllow(c.Text)
				if !ok || analyzerName == "" || reason == "" {
					continue // malformed already collected above
				}
				idx.byFunc[fd] = append(idx.byFunc[fd], &allowEntry{analyzer: analyzerName, reason: reason, pos: c.Pos()})
			}
		}
	}
	return idx
}

// suppress reports whether a diagnostic of analyzer at pos is covered by
// an annotation, and by which reason.
func (idx *allowIndex) suppress(analyzer string, pos token.Pos) (string, bool) {
	p := idx.fset.Position(pos)
	if lines := idx.byLine[p.Filename]; lines != nil {
		for _, line := range []int{p.Line, p.Line - 1} {
			for _, e := range lines[line] {
				if e.analyzer == analyzer {
					e.used = true
					return e.reason, true
				}
			}
		}
	}
	for _, fd := range idx.funcs {
		if fd.Body == nil || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		for _, e := range idx.byFunc[fd] {
			if e.analyzer == analyzer {
				e.used = true
				return e.reason, true
			}
		}
	}
	return "", false
}

// docAllows reports whether a declaration's doc comment carries an allow
// for analyzer. Analyzers use this to sanction a *callee* — e.g. the WAL
// flush that is deliberately invoked under the shard lock — so that every
// caller of the sanctioned function is covered by the one annotation that
// documents the design decision.
func docAllows(doc *ast.CommentGroup, analyzerName string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		a, reason, ok := parseAllow(c.Text)
		if ok && a == analyzerName && reason != "" {
			return true
		}
	}
	return false
}
