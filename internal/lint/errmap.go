package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"evilbloom/internal/lint/analysis"
)

// ErrMap enforces error-kind exhaustiveness in the wire codecs. The
// engine classifies every failure into a Kind (engine/errors.go); each
// codec owns exactly one translation of that taxonomy — HTTP status
// codes in internal/httpapi, RESP error prefixes in internal/resp. A
// Kind added to the engine but not to a codec's switch silently falls
// through to the codec's default arm, which is how KindBusy-typed
// engine.Error values were answering 500 instead of 429 before this
// analyzer existed: the client saw "server broken" instead of "back
// off", defeating the rate limiter's entire signaling purpose.
//
// The rule: each codec package must contain at least one switch whose
// tag has the engine Kind type, and the union of case constants across
// those switches must cover every exported Kind* constant the engine
// declares. Adding a ninth Kind therefore fails the build of both
// codecs until each has decided its wire translation.
var ErrMap = &analysis.Analyzer{
	Name: "errmap",
	Doc: "every engine.Kind constant must have an explicit translation arm in the " +
		"HTTP status switch and the RESP error switch; no kind may fall to default",
	Run: runErrMap,
}

func runErrMap(pass *analysis.Pass) error {
	if pass.Pkg.Path != pkgHTTPAPI && pass.Pkg.Path != pkgRESP {
		return nil
	}

	var (
		kindType   *types.Named
		covered    = make(map[string]bool)
		firstKSPos ast.Node
	)
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := engineKindType(info.TypeOf(sw.Tag))
			if named == nil {
				return true
			}
			kindType = named
			if firstKSPos == nil {
				firstKSPos = sw
			}
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if konst := constOf(info, e); konst != nil {
						covered[konst.Name()] = true
					}
				}
			}
			return true
		})
	}

	if kindType == nil {
		// Only complain when the package actually speaks engine errors.
		if usesEnginePkg(pass.Pkg) {
			pass.Reportf(pass.Pkg.Files[0].Name.Pos(),
				"package %s translates engine errors but has no switch over engine.Kind: every kind needs an explicit wire mapping",
				pass.Pkg.Name)
		}
		return nil
	}

	var missing []string
	for _, konst := range kindConstants(kindType) {
		if !covered[konst.Name()] {
			missing = append(missing, konst.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(firstKSPos.Pos(),
			"engine.Kind switch does not cover %s: each kind needs an explicit arm, not the default fallthrough",
			strings.Join(missing, ", "))
	}
	return nil
}

// engineKindType unwraps t to the engine package's Kind named type.
func engineKindType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Path() != pkgEngine {
		return nil
	}
	return named
}

// kindConstants enumerates the exported Kind* constants of the engine
// package declaring kind.
func kindConstants(kind *types.Named) []*types.Const {
	scope := kind.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		konst, ok := scope.Lookup(name).(*types.Const)
		if !ok || !konst.Exported() || !strings.HasPrefix(konst.Name(), "Kind") {
			continue
		}
		if types.Identical(konst.Type(), kind) {
			out = append(out, konst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// constOf resolves a case expression to the constant it names.
func constOf(info *types.Info, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		konst, _ := info.Uses[e].(*types.Const)
		return konst
	case *ast.SelectorExpr:
		konst, _ := info.Uses[e.Sel].(*types.Const)
		return konst
	}
	return nil
}

// usesEnginePkg reports whether the package references engine error
// classification at all (Classify, Kind, or the engine.Error type).
func usesEnginePkg(pkg *analysis.Package) bool {
	for _, obj := range pkg.Info.Uses {
		if obj.Pkg() != nil && obj.Pkg().Path() == pkgEngine {
			switch obj.Name() {
			case "Classify", "Kind":
				return true
			}
		}
	}
	return false
}
