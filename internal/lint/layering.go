package lint

import (
	"go/ast"
	"go/types"

	"evilbloom/internal/lint/analysis"
)

// Layering is the type-resolved replacement for the old grep in
// scripts/layering.sh. The engine refactor (PR 8) made internal/engine
// the only place that validates, resolves identity, charges/refunds
// rate-limit buckets and dispatches to the store; the wire codecs
// (internal/httpapi, internal/resp) are pure framing. The grep enforced
// that by scanning codec sources for the tokens ".Limiter()", ".Allow(",
// ".Refund(" and ".Store()" — which an innocent rename, an import alias,
// or a method value (f := lim.Allow; f(...)) would dodge without anyone
// noticing. This analyzer resolves selector *objects* instead, so any
// reference to the forbidden methods is caught however it is spelled:
//
//   - anywhere outside internal/engine and internal/service, referencing
//     (*service.Limiter).Allow or .Refund is a violation: only the engine
//     charges or refunds mutation budgets;
//   - inside the codec packages, additionally referencing
//     (*service.Registry).Limiter, (*service.Registry).Get or
//     (*service.Filter).Store is a violation: a codec holding a limiter
//     or a raw store handle is a second enforcement pipeline growing
//     back, the exact almost-identical-paths gap the engine closed.
var Layering = &analysis.Analyzer{
	Name: "layering",
	Doc: "codecs and everything else must route limiter and store access " +
		"through internal/engine (type-resolved; aliasing and method values cannot dodge it)",
	Run: runLayering,
}

func runLayering(pass *analysis.Pass) error {
	path := pass.Pkg.Path
	if path == pkgEngine || path == pkgService {
		return nil // the engine charges; the service owns the types
	}
	isCodec := path == pkgHTTPAPI || path == pkgRESP

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			recvPkg, recvType := recvOf(fn)
			if recvPkg != pkgService {
				return true
			}
			switch {
			case recvType == "Limiter" && (fn.Name() == "Allow" || fn.Name() == "Refund"):
				pass.Reportf(sel.Sel.Pos(),
					"reference to (*service.Limiter).%s outside internal/engine: only the engine charges or refunds rate-limit buckets",
					fn.Name())
			case isCodec && recvType == "Registry" && (fn.Name() == "Limiter" || fn.Name() == "Get"):
				pass.Reportf(sel.Sel.Pos(),
					"codec package must not reach (*service.Registry).%s: decode frames into engine commands instead",
					fn.Name())
			case isCodec && recvType == "Filter" && fn.Name() == "Store":
				pass.Reportf(sel.Sel.Pos(),
					"codec package must not hold a raw store handle via (*service.Filter).Store: every item operation goes through engine commands")
			}
			return true
		})
	}
	return nil
}
