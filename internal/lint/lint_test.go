package lint_test

import (
	"strings"
	"testing"

	"evilbloom/internal/lint"
	"evilbloom/internal/lint/analysis"
	"evilbloom/internal/lint/analysistest"
)

func TestLayering(t *testing.T) {
	analysistest.Run(t, "testdata/layering", lint.Layering)
}

func TestAtomicPublish(t *testing.T) {
	analysistest.Run(t, "testdata/atomicpublish", lint.AtomicPublish)
}

func TestChargeRefund(t *testing.T) {
	analysistest.Run(t, "testdata/chargerefund", lint.ChargeRefund)
}

func TestErrMap(t *testing.T) {
	analysistest.Run(t, "testdata/errmap", lint.ErrMap)
}

func TestNoLockedNetIO(t *testing.T) {
	analysistest.Run(t, "testdata/nolockednetio", lint.NoLockedNetIO)
}

// TestAllowSuppressesExactlyOne pins the annotation's scope: the fixture
// holds two identical violations, the annotation covers the line directly
// below it, and the other violation must still report.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	findings := analysistest.Run(t, "testdata/allow", lint.Layering)
	var suppressed, reported int
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if !strings.Contains(f.Reason, "fixture") {
				t.Errorf("suppressed finding carries wrong reason %q", f.Reason)
			}
		} else {
			reported++
		}
	}
	if suppressed != 1 || reported != 1 {
		t.Errorf("want exactly 1 suppressed and 1 reported finding, got %d/%d:\n%s",
			suppressed, reported, analysistest.Describe(findings))
	}
}

// TestSuiteCleanOnRealTree is the self-check CI runs through evillint:
// the full analyzer suite over the real module must produce no
// unsuppressed finding — every accepted violation carries its
// //lint:allow reason in the source.
func TestSuiteCleanOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	prog, err := analysis.LoadModule(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := lint.Run(prog, lint.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
}
