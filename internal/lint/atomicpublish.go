package lint

import (
	"go/ast"
	"go/types"

	"evilbloom/internal/lint/analysis"
)

// AtomicPublish enforces the lock-free read path's publication discipline
// (PR 6). The service skips the striped RLock on membership tests:
// readers issue bare atomic.LoadUint64 on the backing word slices while
// writers — still serialized under the shard write lock — must publish
// every mutation with atomic stores (bitset.SetAtomic, bitset.StoreFrom,
// the core *Atomic method twins). A single plain write to a word that a
// lock-free reader loads is a data race the race detector only catches if
// a test happens to interleave it; this analyzer catches it structurally:
//
//  1. any struct field that is anywhere passed to a sync/atomic function
//     (&x.words[i] given to LoadUint64/StoreUint64/...) becomes an
//     "atomically published" field, program-wide;
//  2. a plain write to such a field — x.words[i] = v, x.words[i] |= m,
//     copy(x.words, ...), or wholesale reassignment — is reported. The
//     documented plain-write twins (BitSet.Set and friends, callable only
//     under full external serialization with no lock-free readers) carry
//     //lint:allow annotations that double as their contract;
//  3. inside internal/service — the one package that orchestrates
//     lock-free reads against live stores — any call to an outside
//     function that (transitively) performs plain writes to an atomic
//     field is reported too, so wiring a backend adapter to a non-atomic
//     twin (AddIndexes instead of AddIndexesAtomic) fails the build even
//     though the racy write itself lives two packages away.
var AtomicPublish = &analysis.Analyzer{
	Name: "atomicpublish",
	Doc: "writers of atomically-read word slices must publish via atomic stores " +
		"(lock-free read contract); flags mixed plain/atomic access to the same field",
	Run: runAtomicPublish,
}

// apWrite is one plain write to an atomically-read field.
type apWrite struct {
	pos   ast.Node
	field *types.Var
	pkg   *analysis.Package
}

// apFacts is the program-wide computation shared by every package's pass.
type apFacts struct {
	// fields are atomically accessed somewhere in the program.
	fields map[*types.Var]bool
	// writes are plain writes to those fields, keyed by package path.
	writes map[string][]apWrite
	// plainWriter marks functions whose body (transitively) performs a
	// plain write to an atomic field.
	plainWriter map[*types.Func]bool
	// witness names a representative written field per plain writer.
	witness map[*types.Func]*types.Var
}

func atomicFacts(prog *analysis.Program) *apFacts {
	return prog.Memo("atomicpublish", func() any {
		facts := &apFacts{
			fields:      make(map[*types.Var]bool),
			writes:      make(map[string][]apWrite),
			plainWriter: make(map[*types.Func]bool),
			witness:     make(map[*types.Func]*types.Var),
		}

		// Pass 1: collect atomically accessed fields program-wide.
		for _, pkg := range prog.Packages {
			info := pkg.Info
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeOf(info, call)
					if fn == nil || funcPkg(fn) != "sync/atomic" || len(call.Args) == 0 {
						return true
					}
					addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
					if !ok {
						return true
					}
					if field := fieldOfAddr(info, addr.X); field != nil {
						facts.fields[field] = true
					}
					return true
				})
			}
		}

		// Pass 2: collect plain writes and per-function direct-writer sets.
		directWrites := make(map[*types.Func][]*types.Var)
		calls := make(map[*types.Func][]*types.Func)
		for _, pkg := range prog.Packages {
			info := pkg.Info
			eachFunc(pkg, func(decl *ast.FuncDecl) {
				owner, _ := info.Defs[decl.Name].(*types.Func)
				record := func(n ast.Node, field *types.Var) {
					facts.writes[pkg.Path] = append(facts.writes[pkg.Path], apWrite{pos: n, field: field, pkg: pkg})
					if owner != nil {
						directWrites[owner] = append(directWrites[owner], field)
					}
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range n.Lhs {
							if field := fieldOfAddr(info, lhs); field != nil && facts.fields[field] {
								record(lhs, field)
							}
						}
					case *ast.IncDecStmt:
						if field := fieldOfAddr(info, n.X); field != nil && facts.fields[field] {
							record(n.X, field)
						}
					case *ast.CallExpr:
						// copy(x.F, ...) writes through the slice header.
						if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" {
							if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 2 {
								if field := fieldOfAddr(info, n.Args[0]); field != nil && facts.fields[field] {
									record(n.Args[0], field)
								}
							}
						}
						if callee := calleeOf(info, n); callee != nil && owner != nil {
							calls[owner] = append(calls[owner], callee)
						}
					}
					return true
				})
			})
		}

		// Pass 3: close the writer relation over static calls.
		var visit func(fn *types.Func, seen map[*types.Func]bool) bool
		visit = func(fn *types.Func, seen map[*types.Func]bool) bool {
			if w, ok := facts.plainWriter[fn]; ok {
				return w
			}
			if seen[fn] {
				return false
			}
			seen[fn] = true
			if fields := directWrites[fn]; len(fields) > 0 {
				facts.plainWriter[fn] = true
				facts.witness[fn] = fields[0]
				return true
			}
			for _, callee := range calls[fn] {
				if visit(callee, seen) {
					facts.plainWriter[fn] = true
					facts.witness[fn] = facts.witness[callee]
					return true
				}
			}
			facts.plainWriter[fn] = false
			return false
		}
		for fn := range calls {
			visit(fn, make(map[*types.Func]bool))
		}
		for fn := range directWrites {
			visit(fn, make(map[*types.Func]bool))
		}
		return facts
	}).(*apFacts)
}

func runAtomicPublish(pass *analysis.Pass) error {
	facts := atomicFacts(pass.Program)

	// Rule 2: plain writes in this package.
	for _, w := range facts.writes[pass.Pkg.Path] {
		owner := "?"
		if w.field.Pkg() != nil {
			owner = w.field.Pkg().Name()
		}
		pass.Reportf(w.pos.Pos(),
			"non-atomic write to %s field read with sync/atomic elsewhere: lock-free readers can observe a torn or stale word; publish with atomic stores",
			owner+" "+fieldOwnerName(w.field)+"."+w.field.Name())
	}

	// Rule 3: service-side calls into plain-writing functions.
	if pass.Pkg.Path != pkgService {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil || funcPkg(fn) == pkgService || !facts.plainWriter[fn] {
				return true
			}
			field := facts.witness[fn]
			pass.Reportf(call.Pos(),
				"call to %s performs non-atomic writes to %s.%s, a field read with sync/atomic: on a published store this races lock-free readers; use the atomic twin or annotate the unpublished-receiver case",
				fn.Name(), fieldOwnerName(field), field.Name())
			return true
		})
	}
	return nil
}

// fieldOwnerName best-effort names the struct type declaring field.
func fieldOwnerName(field *types.Var) string {
	if field == nil || field.Pkg() == nil {
		return "?"
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Name()
			}
		}
	}
	return "?"
}
