package attack

import (
	"fmt"

	"evilbloom/internal/hashes"
)

// DeletionOps is the wire surface the deletion adversary needs — the public
// add, test and remove operations of whichever plane carries her traffic.
// *RemoteClient implements it over HTTP; respcampaign adapts a pipelined
// RESP connection. Remove reports whether the server accepted the removal
// (false when its filter believed the item absent — the refusal the
// hardened server answers with).
type DeletionOps interface {
	Test(item []byte) (bool, error)
	AddBatch(items [][]byte) error
	Remove(item []byte) (bool, error)
}

// RemoteDeletion is the §4.3 deletion adversary run over the wire against a
// live counting-filter server: she evicts a targeted honest item (a victim
// URL on a blocklist, say) using nothing but the public add, test and
// remove endpoints.
//
// The campaign assumes the paper's threat model — the index family is
// public knowledge (a naive-mode server publishes its seed on the info
// endpoint) — and works like this, once per round until the server stops
// believing the victim present:
//
//  1. Pick a target position p from the victim's index set.
//  2. Forge a removal item X with p ∈ I_X and no other victim position in
//     I_X, so removing X decrements exactly one victim counter.
//  3. Make X a false positive: for every other position of I_X, forge and
//     ADD a cover item holding that position (covers avoid the victim's
//     positions entirely, so they never re-increment what the campaign
//     drains). The server now believes X present although it was never
//     inserted — a Bloom second pre-image assembled from the adversary's
//     own legitimate insertions.
//  4. Ask the server to remove X. The server's membership check passes, the
//     decrements land, and the victim's p counter drops by one.
//
// Against a hardened (keyed) server the adversary's family is fiction: her
// crafted X items are almost never false positives on the server's real
// counters, the remove endpoint refuses them (she can watch the refusals),
// and the victim stays present — the §8.2 countermeasure extending to
// deletions.
//
// Shard routing note: on a multi-shard server the secret routing key
// scatters X and its covers across shards, so a cover only helps when it
// lands in X's shard. The campaign compensates by re-covering until the
// server's own test endpoint confirms X reads as present (the adversary has
// that oracle for free), at the price of extra cover insertions; against a
// single-shard filter — the paper's geometry — one cover pass suffices.
type RemoteDeletion struct {
	ops DeletionOps
	fam hashes.IndexFamily
	gen Generator

	// Attempts counts forgery candidates examined.
	Attempts uint64
	// CoverAdds counts cover items inserted through the add endpoint.
	CoverAdds uint64
	// Accepted counts removals the server accepted.
	Accepted uint64
	// Refused counts removals the server refused (its filter believed the
	// crafted item absent) — the hardened server's visible resistance.
	Refused uint64
}

// NewRemoteDeletion wires the adversary to a filter-scoped transport
// (normally client.ForFilter(name), or a RESP adapter), deriving indexes
// from fam — the family reconstructed from the filter's public info, or a
// guess against a hardened server.
func NewRemoteDeletion(ops DeletionOps, fam hashes.IndexFamily, gen Generator) *RemoteDeletion {
	return &RemoteDeletion{ops: ops, fam: fam, gen: gen}
}

// NewRemoteDeletionFromInfo reconstructs the family from the filter's
// published parameters, refusing (like NewRemoteViewFromInfo) when the
// server publishes no seed.
func NewRemoteDeletionFromInfo(client *RemoteClient, gen Generator) (*RemoteDeletion, error) {
	info, err := client.Info()
	if err != nil {
		return nil, err
	}
	if info.Seed == nil {
		return nil, fmt.Errorf("attack: server mode %q publishes no seed; indexes are not predictable", info.Mode)
	}
	fam, err := hashes.NewDoubleHashing(info.K, info.ShardBits, *info.Seed)
	if err != nil {
		return nil, err
	}
	return NewRemoteDeletion(client, fam, gen), nil
}

// EvictReport is the outcome of one eviction campaign.
type EvictReport struct {
	// Evicted reports whether the server stopped believing the victim
	// present — the adversarially induced false negative.
	Evicted bool
	// Rounds is the number of forge-cover-remove rounds driven.
	Rounds int
	// Accepted and Refused are the server's removal verdicts during this
	// campaign (totals also accumulate on the adversary).
	Accepted, Refused uint64
	// CoverAdds is the number of cover items inserted during this campaign.
	CoverAdds uint64
}

// Evict runs the campaign against victim until the server reports it
// absent, maxRounds rounds pass, or the per-item forgery budget exhausts.
// It returns a report rather than failing when the server resists — a
// hardened server surviving the campaign is a result, not an error.
func (a *RemoteDeletion) Evict(victim []byte, perItemBudget uint64, maxRounds int) (*EvictReport, error) {
	victimIdx := a.fam.Indexes(nil, victim)
	if len(victimIdx) == 0 {
		return nil, fmt.Errorf("attack: victim has an empty index set")
	}
	rep := &EvictReport{}
	for rep.Rounds = 0; rep.Rounds < maxRounds; rep.Rounds++ {
		present, err := a.ops.Test(victim)
		if err != nil {
			return rep, err
		}
		if !present {
			rep.Evicted = true
			return rep, nil
		}
		// Rotate the target so a position pinned by honest collisions does
		// not stall the whole campaign.
		target := victimIdx[rep.Rounds%len(victimIdx)]
		x, xIdx, err := a.forgeRemovalItem(victimIdx, target, perItemBudget)
		if err != nil {
			return rep, err
		}
		if err := a.coverUntilPresent(x, xIdx, victimIdx, target, perItemBudget, rep); err != nil {
			return rep, err
		}
		accepted, err := a.ops.Remove(x)
		if err != nil {
			return rep, err
		}
		if accepted {
			a.Accepted++
			rep.Accepted++
		} else {
			a.Refused++
			rep.Refused++
		}
	}
	present, err := a.ops.Test(victim)
	if err != nil {
		return rep, err
	}
	rep.Evicted = !present
	return rep, nil
}

// forgeRemovalItem searches for an item whose index set meets the victim's
// at exactly {target}: removing it decrements precisely one victim counter.
func (a *RemoteDeletion) forgeRemovalItem(victimIdx []uint64, target uint64, budget uint64) ([]byte, []uint64, error) {
	scratch := make([]uint64, 0, a.fam.K())
	for tried := uint64(0); budget == 0 || tried < budget; tried++ {
		item := a.gen.Next()
		a.Attempts++
		scratch = a.fam.Indexes(scratch[:0], item)
		if meetsAtExactly(scratch, victimIdx, target) {
			idx := make([]uint64, len(scratch))
			copy(idx, scratch)
			return item, idx, nil
		}
	}
	return nil, nil, fmt.Errorf("%w: no removal item hits position %d alone", ErrBudgetExhausted, target)
}

// coverUntilPresent inserts cover items for every non-target position of
// xIdx until the server believes x present, retrying (for multi-shard
// servers, where covers can land in the wrong shard) a bounded number of
// times. A pass's covers are forged first and shipped as one batch, so a
// pipelined transport spends one round trip per pass rather than one per
// position. It leaves quietly when the server never concedes — the removal
// attempt that follows records the refusal, which is the observable outcome
// the campaign reports.
func (a *RemoteDeletion) coverUntilPresent(x []byte, xIdx, victimIdx []uint64, target uint64, budget uint64, rep *EvictReport) error {
	const coverPasses = 4
	var covers [][]byte
	for pass := 0; pass < coverPasses; pass++ {
		present, err := a.ops.Test(x)
		if err != nil {
			return err
		}
		if present {
			return nil
		}
		covers = covers[:0]
		for _, q := range xIdx {
			if q == target {
				continue
			}
			cover, err := a.forgeCover(q, victimIdx, budget)
			if err != nil {
				return err
			}
			covers = append(covers, cover)
		}
		if len(covers) == 0 {
			return nil
		}
		if err := a.ops.AddBatch(covers); err != nil {
			return err
		}
		a.CoverAdds += uint64(len(covers))
		rep.CoverAdds += uint64(len(covers))
	}
	return nil
}

// forgeCover searches for an item holding position q while avoiding every
// victim position, so covering never refills what eviction drains.
func (a *RemoteDeletion) forgeCover(q uint64, victimIdx []uint64, budget uint64) ([]byte, error) {
	scratch := make([]uint64, 0, a.fam.K())
	for tried := uint64(0); budget == 0 || tried < budget; tried++ {
		item := a.gen.Next()
		a.Attempts++
		scratch = a.fam.Indexes(scratch[:0], item)
		if !contains(scratch, q) {
			continue
		}
		if intersects(scratch, victimIdx) {
			continue
		}
		return item, nil
	}
	return nil, fmt.Errorf("%w: no cover item for position %d", ErrBudgetExhausted, q)
}

// meetsAtExactly reports whether idx ∩ victim == {target} with target
// appearing in idx exactly once (a duplicate would double-decrement).
func meetsAtExactly(idx, victim []uint64, target uint64) bool {
	hits := 0
	for _, x := range idx {
		if x == target {
			hits++
			continue
		}
		for _, v := range victim {
			if x == v {
				return false
			}
		}
	}
	return hits == 1
}

func contains(idx []uint64, q uint64) bool {
	for _, x := range idx {
		if x == q {
			return true
		}
	}
	return false
}

func intersects(a, b []uint64) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
