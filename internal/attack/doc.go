// Package attack implements the paper's three adversary models (§4): the
// chosen-insertion adversary (pollution and saturation, §4.1), the
// query-only adversary (false-positive forgery and worst-case-latency
// queries, §4.2) and the deletion adversary (§4.3). All adversaries follow
// the threat model of §4: the filter is maintained by a trusted party, its
// implementation and parameters are public, and — for query-only and
// deletion adversaries — its current state is known.
//
// Forgery is brute-force search over a candidate-item generator, exactly as
// the paper describes ("an item is selected at random and its k indexes are
// computed; if [the condition fails] the item is discarded and a new one is
// tried"). For MurmurHash-based filters, package hashes additionally
// provides constant-time pre-images, which this package wires into instant
// (search-free) variants of every attack.
//
// The adversary sees the filter through a View: how items map to index
// positions and which positions are occupied. Views exist for every
// in-process filter variant (NewBloomView, NewCountingView,
// NewPartitionedView) and — via RemoteView — for a live `evilbloom serve`
// instance reached over HTTP, where the adversary maintains a local shadow
// of the server state from nothing but its public parameters and her own
// insertions. That last view turns every in-process attack into a
// client-vs-server scenario.
//
// RemoteDeletion extends the wire-level setting to §4.3: against a naive
// counting filter served with public remove endpoints, it assembles false
// positives out of the adversary's own legitimate insertions and has the
// server delete them, draining a targeted honest item's counters into a
// false negative; a hardened server refuses the same campaign because the
// crafted items are not false positives under its keyed family.
package attack
