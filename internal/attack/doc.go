// Package attack implements the paper's three adversary models (§4): the
// chosen-insertion adversary (pollution and saturation, §4.1), the
// query-only adversary (false-positive forgery and worst-case-latency
// queries, §4.2) and the deletion adversary (§4.3). All adversaries follow
// the threat model of §4: the filter is maintained by a trusted party, its
// implementation and parameters are public, and — for query-only and
// deletion adversaries — its current state is known.
//
// Forgery is brute-force search over a candidate-item generator, exactly as
// the paper describes ("an item is selected at random and its k indexes are
// computed; if [the condition fails] the item is discarded and a new one is
// tried"). For MurmurHash-based filters, package hashes additionally
// provides constant-time pre-images, which this package wires into instant
// (search-free) variants of every attack.
//
// The adversary sees the filter through a View: how items map to index
// positions and which positions are occupied. Views exist for every
// in-process filter variant (NewBloomView, NewCountingView,
// NewPartitionedView) and — via RemoteView — for a live `evilbloom serve`
// instance reached over HTTP, where the adversary maintains a local shadow
// of the server state from nothing but its public parameters and her own
// insertions. That last view turns every in-process attack into a
// client-vs-server scenario.
//
// RemoteDeletion extends the wire-level setting to §4.3: against a naive
// counting filter served with public remove endpoints, it assembles false
// positives out of the adversary's own legitimate insertions and has the
// server delete them, draining a targeted honest item's counters into a
// false negative; a hardened server refuses the same campaign because the
// crafted items are not false positives under its keyed family.
//
// RemoteDigestPollution extends the setting across machines: two live
// `evilbloom serve` nodes exchange cache digests (§7), and the adversary —
// again using only public endpoints — fills the first node's filter with
// chosen items so the digest the second node routes by lies about nearly
// everything. The damage lands on a server the adversary never spoke to:
// the sibling's misses are misdirected, one wasted round trip per false
// hit, reproducing the paper's 79%-vs-40% gap over real HTTP. The greedy
// PolluteGreedy campaign drives it, since a digest-sized filter saturates
// under strict condition-(6) forging.
//
// RemoteThrottledPollution measures the defense the paper suggests against
// all of the above: per-client mutation rate limiting (`evilbloom serve
// -rate-mutations`). It re-runs the chosen-insertion campaign counting
// 429s instead of assuming every insertion lands — the shadow model
// mirrors only accepted adds, staying exact mid-throttle — and reports the
// stretched time-to-saturation and blunted FPR trajectory, plus the
// server-side accounting (RemoteClient.Clients) that names the attacking
// identity. Unthrottled: saturation inside the request budget. Throttled:
// damage capped at the burst, every refused mutation attributed.
package attack
