package attack

import (
	"errors"
	"fmt"

	"evilbloom/internal/core"
)

// ErrBudgetExhausted is returned when a forgery gives up after its attempt
// budget; callers decide whether to retry with a larger budget.
var ErrBudgetExhausted = errors.New("attack: attempt budget exhausted")

// View is the adversary's knowledge of the filter under attack: how items
// map to index positions and which positions are currently occupied.
// Positions are (slot, index) pairs so that partitioned (pyBloom) filters,
// where index i lives in slice i, share one abstraction with flat filters,
// which ignore the slot.
type View interface {
	// Indexes appends item's k index positions to dst.
	Indexes(dst []uint64, item []byte) []uint64
	// OccupiedAt reports whether position (slot, idx) is non-zero.
	OccupiedAt(slot int, idx uint64) bool
	// Partitioned reports whether index i is scoped to slice i (true) or all
	// indexes address one shared vector (false).
	Partitioned() bool
	// K returns the number of indexes per item.
	K() int
	// M returns the total number of positions.
	M() uint64
}

// Generator yields candidate items for brute-force forgery. Implementations
// must eventually produce fresh items forever (e.g. a seeded fake-URL
// stream).
type Generator interface {
	Next() []byte
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func() []byte

// Next implements Generator.
func (f GeneratorFunc) Next() []byte { return f() }

// ---------------------------------------------------------------------------
// Views over the core filter types.

type bloomView struct{ b *core.Bloom }

// NewBloomView adapts a classic filter to the adversary's View.
func NewBloomView(b *core.Bloom) View { return bloomView{b} }

func (v bloomView) Indexes(dst []uint64, item []byte) []uint64 {
	return v.b.Family().Indexes(dst, item)
}
func (v bloomView) OccupiedAt(_ int, idx uint64) bool { return v.b.Occupied(idx) }
func (v bloomView) Partitioned() bool                 { return false }
func (v bloomView) K() int                            { return v.b.K() }
func (v bloomView) M() uint64                         { return v.b.M() }

type countingView struct{ c *core.Counting }

// NewCountingView adapts a counting filter to the adversary's View.
func NewCountingView(c *core.Counting) View { return countingView{c} }

func (v countingView) Indexes(dst []uint64, item []byte) []uint64 {
	return v.c.Family().Indexes(dst, item)
}
func (v countingView) OccupiedAt(_ int, idx uint64) bool { return v.c.Occupied(idx) }
func (v countingView) Partitioned() bool                 { return false }
func (v countingView) K() int                            { return v.c.K() }
func (v countingView) M() uint64                         { return v.c.M() }

type partitionedView struct{ p *core.Partitioned }

// NewPartitionedView adapts a pyBloom-style partitioned filter.
func NewPartitionedView(p *core.Partitioned) View { return partitionedView{p} }

func (v partitionedView) Indexes(dst []uint64, item []byte) []uint64 {
	return v.p.Indexes(dst, item)
}
func (v partitionedView) OccupiedAt(slot int, idx uint64) bool { return v.p.OccupiedAt(slot, idx) }
func (v partitionedView) Partitioned() bool                    { return true }
func (v partitionedView) K() int                               { return v.p.K() }
func (v partitionedView) M() uint64                            { return v.p.M() }

// ---------------------------------------------------------------------------
// Forgery conditions.

// IsPolluting reports condition (6): every index position is unoccupied and
// — in a flat filter — the k indexes are pairwise distinct, so insertion
// sets exactly k fresh bits.
func IsPolluting(v View, idx []uint64) bool {
	for i, x := range idx {
		if v.OccupiedAt(i, x) {
			return false
		}
	}
	if !v.Partitioned() {
		for i := 1; i < len(idx); i++ {
			for j := 0; j < i; j++ {
				if idx[i] == idx[j] {
					return false
				}
			}
		}
	}
	return true
}

// IsFalsePositive reports condition (8): every index position occupied.
func IsFalsePositive(v View, idx []uint64) bool {
	for i, x := range idx {
		if !v.OccupiedAt(i, x) {
			return false
		}
	}
	return true
}

// IsExpensiveQuery reports the dummy-query condition of §4.2: the first k−1
// positions occupied and the last one not — the query walks the maximum
// number of memory accesses and still misses.
func IsExpensiveQuery(v View, idx []uint64) bool {
	last := len(idx) - 1
	for i, x := range idx[:last] {
		if !v.OccupiedAt(i, x) {
			return false
		}
	}
	return !v.OccupiedAt(last, idx[last])
}

// SharesIndex reports the deletion condition of §4.3: the candidate shares
// at least one position with the victim's index set.
func SharesIndex(v View, idx, victim []uint64) bool {
	for i, x := range idx {
		for j, y := range victim {
			if x != y {
				continue
			}
			if !v.Partitioned() || i == j {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Forger: budgeted brute-force search.

// Forger drives brute-force forgery against a filter view, accounting every
// candidate tried so experiments can report attack cost (Fig 5, Fig 6).
type Forger struct {
	view    View
	gen     Generator
	scratch []uint64

	// Attempts counts candidates examined since construction (or ResetStats).
	Attempts uint64
	// Forged counts successful forgeries.
	Forged uint64
}

// NewForger builds a forger over the view, drawing candidates from gen.
func NewForger(view View, gen Generator) *Forger {
	return &Forger{view: view, gen: gen, scratch: make([]uint64, 0, view.K())}
}

// ResetStats zeroes the attempt accounting.
func (f *Forger) ResetStats() { f.Attempts, f.Forged = 0, 0 }

func (f *Forger) search(budget uint64, cond func([]uint64) bool) ([]byte, []uint64, error) {
	for tried := uint64(0); budget == 0 || tried < budget; tried++ {
		item := f.gen.Next()
		f.Attempts++
		f.scratch = f.view.Indexes(f.scratch[:0], item)
		if cond(f.scratch) {
			f.Forged++
			idx := make([]uint64, len(f.scratch))
			copy(idx, f.scratch)
			return item, idx, nil
		}
	}
	return nil, nil, fmt.Errorf("%w after %d candidates", ErrBudgetExhausted, budget)
}

// ForgePolluting returns an item satisfying condition (6) against the
// current filter state: inserting it sets k previously-unset bits. A budget
// of 0 searches forever.
func (f *Forger) ForgePolluting(budget uint64) ([]byte, []uint64, error) {
	return f.search(budget, func(idx []uint64) bool { return IsPolluting(f.view, idx) })
}

// ForgeFalsePositive returns an item satisfying condition (8): the filter
// answers "present" although the item was never inserted.
func (f *Forger) ForgeFalsePositive(budget uint64) ([]byte, []uint64, error) {
	return f.search(budget, func(idx []uint64) bool { return IsFalsePositive(f.view, idx) })
}

// ForgeExpensiveQuery returns an item whose query inspects k−1 set bits
// before failing on the k-th — the worst-case execution time of §4.2.
func (f *Forger) ForgeExpensiveQuery(budget uint64) ([]byte, []uint64, error) {
	if f.view.K() < 2 {
		return nil, nil, fmt.Errorf("attack: expensive queries need k ≥ 2, have %d", f.view.K())
	}
	return f.search(budget, func(idx []uint64) bool { return IsExpensiveQuery(f.view, idx) })
}

// ForgeDeletion returns an item sharing at least one index position with
// victim's index set (§4.3); removing it from a counting filter decrements a
// counter the victim depends on.
func (f *Forger) ForgeDeletion(victim []uint64, budget uint64) ([]byte, []uint64, error) {
	if len(victim) == 0 {
		return nil, nil, fmt.Errorf("attack: empty victim index set")
	}
	return f.search(budget, func(idx []uint64) bool { return SharesIndex(f.view, idx, victim) })
}

// ForgeDecoySet returns items whose combined index sets cover every position
// of target — the Fig 7 ghost-hiding construction: once the trusted party
// has inserted (crawled) the decoys, the target item reads as "already
// seen" although it was never inserted. The greedy cover needs the
// Θ(k·log k) items the paper predicts via the coupon-collector argument.
// budget bounds the total candidates examined (0 = unbounded).
func (f *Forger) ForgeDecoySet(target []uint64, budget uint64) ([][]byte, error) {
	if len(target) == 0 {
		return nil, fmt.Errorf("attack: empty target index set")
	}
	type pos struct {
		slot int
		idx  uint64
	}
	remaining := make(map[pos]bool, len(target))
	for i, x := range target {
		if f.view.Partitioned() {
			remaining[pos{i, x}] = true
		} else {
			remaining[pos{0, x}] = true
		}
	}
	var decoys [][]byte
	var tried uint64
	for len(remaining) > 0 {
		item := f.gen.Next()
		f.Attempts++
		tried++
		if budget != 0 && tried > budget {
			return decoys, fmt.Errorf("%w with %d target positions uncovered", ErrBudgetExhausted, len(remaining))
		}
		f.scratch = f.view.Indexes(f.scratch[:0], item)
		covered := false
		for i, x := range f.scratch {
			p := pos{0, x}
			if f.view.Partitioned() {
				p = pos{i, x}
			}
			if remaining[p] {
				delete(remaining, p)
				covered = true
			}
		}
		if covered {
			f.Forged++
			decoys = append(decoys, item)
		}
	}
	return decoys, nil
}
