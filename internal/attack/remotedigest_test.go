package attack_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"evilbloom/internal/attack"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/service/meshtest"
	"evilbloom/internal/urlgen"
)

// digestGeometry is the two-server §7 deployment's filter: single shard so
// the adversary's shadow is exact, k=4 like Squid, and sized so the honest
// run's digest lands at the paper's ≈40% false-hit rate after 151 cached
// items — the baseline the attack then blows past.
func digestGeometry() service.Config {
	return service.Config{
		Shards:    1,
		ShardBits: 384,
		HashCount: 4,
		Seed:      7,
		RouteKey:  []byte("fedcba9876543210"),
	}
}

// digestPair boots two real HTTP servers holding the same-named filter,
// with B peered at A, and returns filter-scoped clients for both.
func digestPair(t *testing.T) (proxy, peer *attack.RemoteClient) {
	t.Helper()
	regA := service.NewRegistry()
	if _, err := regA.Create("cache", digestGeometry()); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(httpapi.NewRegistryServer(regA))
	t.Cleanup(tsA.Close)

	regB := service.NewRegistry()
	// A long interval: the test drives the exchange via RefreshPeers for
	// determinism, like the in-process experiment calls ExchangeDigests.
	if err := regB.ConfigurePeers(service.PeerConfig{Peers: []string{tsA.URL}, Refresh: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Create("cache", digestGeometry()); err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(httpapi.NewRegistryServer(regB))
	t.Cleanup(tsB.Close)
	t.Cleanup(func() { regB.Close(); regA.Close() }) //nolint:errcheck // teardown

	return attack.NewRemoteClient(tsA.URL, nil).ForFilter("cache"),
		attack.NewRemoteClient(tsB.URL, nil).ForFilter("cache")
}

// runDigestCampaign stages one §7 run (paper phase sizes: 51 clean + 100
// extra cached on A, 100 probes through B) on a fresh server pair.
func runDigestCampaign(t *testing.T, polluted bool) *attack.RemoteDigestReport {
	t.Helper()
	proxy, peer := digestPair(t)
	campaign := &attack.RemoteDigestPollution{
		Proxy:         proxy,
		Peer:          peer,
		CleanTraffic:  urlgen.New(1),
		ExtraTraffic:  urlgen.New(8),
		Probes:        urlgen.New(1000),
		CleanN:        51,
		ExtraN:        100,
		ProbeN:        100,
		PerItemBudget: 30000,
	}
	rep, err := campaign.Run(polluted)
	if err != nil {
		t.Fatalf("campaign (polluted=%v): %v", polluted, err)
	}
	return rep
}

// The acceptance scenario: the §7 cache-digest pollution attack, run across
// two real HTTP servers exchanging digests, reproduces the paper's false-hit
// gap — the polluted digest misroutes ≥70% of probe traffic versus ≈40% for
// the honest control (paper: 79% vs 40%; at this geometry the free-bit
// budget is below the adversary's item budget, so her campaign reaches the
// §4.1 saturation extreme and the polluted rate lands at 1.0).
// Deterministic: fixed seeds, fixed geometry, unkeyed murmur indexes.
func TestRemoteDigestPollutionReproducesSection7Gap(t *testing.T) {
	honest := runDigestCampaign(t, false)
	polluted := runDigestCampaign(t, true)

	t.Logf("honest:   %d/%d false hits (rate %.2f), digest weight %d/%d",
		honest.FalseHits, honest.Probes, honest.FalseHitRate, honest.DigestWeight, honest.DigestBits)
	t.Logf("polluted: %d/%d false hits (rate %.2f), digest weight %d/%d, %d forge attempts",
		polluted.FalseHits, polluted.Probes, polluted.FalseHitRate, polluted.DigestWeight, polluted.DigestBits, polluted.ForgeAttempts)

	if honest.Inserted != 151 || polluted.Inserted != 151 {
		t.Fatalf("cache sizes: honest %d, polluted %d, want 151 each", honest.Inserted, polluted.Inserted)
	}
	// The §7 gap, in absolute terms (paper: 0.79 vs 0.40).
	if polluted.FalseHitRate < 0.7 {
		t.Errorf("polluted false-hit rate %.2f, want ≥ 0.70", polluted.FalseHitRate)
	}
	if honest.FalseHitRate < 0.25 || honest.FalseHitRate > 0.55 {
		t.Errorf("honest false-hit rate %.2f, want ≈ 0.40", honest.FalseHitRate)
	}
	if polluted.FalseHitRate < honest.FalseHitRate+0.2 {
		t.Errorf("no meaningful gap: polluted %.2f vs honest %.2f", polluted.FalseHitRate, honest.FalseHitRate)
	}
	// Pollution is visible in the exchanged artifact itself: the digest B
	// routes by is heavier than the honest one for the same cache size.
	if polluted.DigestWeight <= honest.DigestWeight {
		t.Errorf("pollution did not raise digest weight: %d vs %d", polluted.DigestWeight, honest.DigestWeight)
	}
	if polluted.ForgeAttempts == 0 || honest.ForgeAttempts != 0 {
		t.Errorf("forge accounting: polluted %d, honest %d", polluted.ForgeAttempts, honest.ForgeAttempts)
	}
	// Single shard + public family: the adversary's shadow is exact, so
	// the server's ground truth must equal the digest weight B fetched.
	if polluted.ServerWeight != polluted.DigestWeight {
		t.Errorf("server weight %d differs from exchanged digest weight %d",
			polluted.ServerWeight, polluted.DigestWeight)
	}
}

// quorumCampaign wires the three-node §7 deployment onto a running mesh:
// node 0 is the routing victim B, node 1 the evil sibling E whose cache the
// adversary populates, node 2 the honest sibling H. Phase sizes match the
// two-node acceptance test so the baselines are comparable.
func quorumCampaign(m *meshtest.Mesh) *attack.RemoteDigestPollution {
	return &attack.RemoteDigestPollution{
		Proxy:         attack.NewRemoteClient(m.Nodes[1].URL, nil).ForFilter(m.Filter),
		Peer:          attack.NewRemoteClient(m.Nodes[0].URL, nil).ForFilter(m.Filter),
		Honest:        attack.NewRemoteClient(m.Nodes[2].URL, nil).ForFilter(m.Filter),
		HonestTraffic: urlgen.New(5),
		CleanTraffic:  urlgen.New(1),
		ExtraTraffic:  urlgen.New(8),
		Probes:        urlgen.New(1000),
		CleanN:        51,
		ExtraN:        100,
		ProbeN:        100,
		PerItemBudget: 30000,
	}
}

// The three-node acceptance scenario: one evil sibling saturates its
// digest; a single-claim verdict rule misroutes nearly everything (the PR 4
// baseline, unchanged by adding a third node); a quorum of two blunts the
// attack to the honest sibling's ≈3% corroboration rate; and revoking the
// evil credential ejects it live — its digest is scrubbed, refreshes stop
// importing it, and verdicts stay honest. Deterministic seeds and geometry;
// run under -race in CI's mesh-smoke job.
func TestRemoteDigestPollutionQuorum(t *testing.T) {
	// Baseline: unauthenticated pairs mesh, verdict threshold 1. The evil
	// digest alone decides routing, exactly as in the two-node experiment.
	baseMesh := meshtest.StartMesh(t, 3, meshtest.Opts{})
	base, err := quorumCampaign(baseMesh).Run(true)
	if err != nil {
		t.Fatalf("baseline campaign: %v", err)
	}
	t.Logf("baseline (no quorum): %d/%d false hits (rate %.2f), digest weight %d/%d",
		base.FalseHits, base.Probes, base.FalseHitRate, base.DigestWeight, base.DigestBits)
	if base.FalseHitRate < 0.7 {
		t.Errorf("baseline false-hit rate %.2f, want ≥ 0.70", base.FalseHitRate)
	}

	// Quorum mesh: authenticated, verdict needs 2 of 2 sibling claims. The
	// saturated evil digest claims every probe; the honest digest (51
	// cached items in 384 bits, k=4 → fill ≈ 0.41, corroboration ≈ fill⁴
	// ≈ 3%) rarely agrees.
	mesh := meshtest.StartMesh(t, 3, meshtest.Opts{Auth: true, RouteQuorum: 2})
	campaign := quorumCampaign(mesh)
	rep, err := campaign.Run(true)
	if err != nil {
		t.Fatalf("quorum campaign: %v", err)
	}
	t.Logf("quorum 2: %d/%d false hits (rate %.2f), digest weight %d/%d",
		rep.FalseHits, rep.Probes, rep.FalseHitRate, rep.DigestWeight, rep.DigestBits)
	if rep.DigestWeight != rep.DigestBits {
		t.Errorf("evil digest not saturated: weight %d of %d bits", rep.DigestWeight, rep.DigestBits)
	}
	if rep.FalseHitRate >= 0.10 {
		t.Errorf("quorum false-hit rate %.2f, want < 0.10", rep.FalseHitRate)
	}
	// The verdict arithmetic is visible on the wire.
	rt, err := campaign.Peer.Route([]byte("quorum-probe-item"))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Quorum != 2 {
		t.Errorf("route reports quorum %d, want 2", rt.Quorum)
	}

	// Revocation: ejecting the evil sibling's credential on the victim
	// scrubs its digest and refuses everything it seals from now on.
	victim := attack.NewRemoteClient(mesh.Nodes[0].URL, nil)
	rev, err := victim.RevokePeerToken(meshtest.PeerName(1))
	if err != nil {
		t.Fatalf("revocation: %v", err)
	}
	if rev.Revoked != meshtest.PeerName(1) || rev.DigestsEvicted < 1 {
		t.Errorf("revocation = %+v, want node1 with ≥ 1 digest evicted", rev)
	}
	// A forced refresh must NOT re-import: the evil node still seals with
	// its secret, but the victim no longer holds a live credential for it.
	peers, err := campaign.Peer.RefreshPeers()
	if err != nil {
		t.Fatal(err)
	}
	evilURL := mesh.Nodes[1].URL
	found := false
	for _, p := range peers {
		if p.Peer != evilURL {
			continue
		}
		found = true
		if p.HasDigest {
			t.Errorf("revoked peer's digest re-imported: %+v", p)
		}
		if p.LastError == "" {
			t.Errorf("revoked peer refresh recorded no error: %+v", p)
		}
	}
	if !found {
		t.Fatalf("victim's peer status does not list the evil node %s: %+v", evilURL, peers)
	}
	// With the evil digest gone, only the honest sibling claims — below
	// quorum, so verdicts are honest again.
	falseHits, err := campaign.Probe()
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(falseHits) / float64(campaign.ProbeN)
	t.Logf("post-revocation: %d/%d false hits (rate %.2f)", falseHits, campaign.ProbeN, rate)
	if rate >= 0.10 {
		t.Errorf("post-revocation false-hit rate %.2f, want < 0.10", rate)
	}
}

// The adversary can also verify her work directly: the digest endpoint is
// public, so she fetches the same artifact the victims route by.
func TestRemoteDigestPublicExport(t *testing.T) {
	proxy, _ := digestPair(t)
	if err := proxy.Add([]byte("x")); err != nil {
		t.Fatal(err)
	}
	env, err := proxy.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if len(env) == 0 {
		t.Fatal("empty digest envelope")
	}
}
