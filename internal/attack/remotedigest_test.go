package attack_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"evilbloom/internal/attack"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// digestGeometry is the two-server §7 deployment's filter: single shard so
// the adversary's shadow is exact, k=4 like Squid, and sized so the honest
// run's digest lands at the paper's ≈40% false-hit rate after 151 cached
// items — the baseline the attack then blows past.
func digestGeometry() service.Config {
	return service.Config{
		Shards:    1,
		ShardBits: 384,
		HashCount: 4,
		Seed:      7,
		RouteKey:  []byte("fedcba9876543210"),
	}
}

// digestPair boots two real HTTP servers holding the same-named filter,
// with B peered at A, and returns filter-scoped clients for both.
func digestPair(t *testing.T) (proxy, peer *attack.RemoteClient) {
	t.Helper()
	regA := service.NewRegistry()
	if _, err := regA.Create("cache", digestGeometry()); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(httpapi.NewRegistryServer(regA))
	t.Cleanup(tsA.Close)

	regB := service.NewRegistry()
	// A long interval: the test drives the exchange via RefreshPeers for
	// determinism, like the in-process experiment calls ExchangeDigests.
	if err := regB.ConfigurePeers(service.PeerConfig{Peers: []string{tsA.URL}, Refresh: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Create("cache", digestGeometry()); err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(httpapi.NewRegistryServer(regB))
	t.Cleanup(tsB.Close)
	t.Cleanup(func() { regB.Close(); regA.Close() }) //nolint:errcheck // teardown

	return attack.NewRemoteClient(tsA.URL, nil).ForFilter("cache"),
		attack.NewRemoteClient(tsB.URL, nil).ForFilter("cache")
}

// runDigestCampaign stages one §7 run (paper phase sizes: 51 clean + 100
// extra cached on A, 100 probes through B) on a fresh server pair.
func runDigestCampaign(t *testing.T, polluted bool) *attack.RemoteDigestReport {
	t.Helper()
	proxy, peer := digestPair(t)
	campaign := &attack.RemoteDigestPollution{
		Proxy:         proxy,
		Peer:          peer,
		CleanTraffic:  urlgen.New(1),
		ExtraTraffic:  urlgen.New(8),
		Probes:        urlgen.New(1000),
		CleanN:        51,
		ExtraN:        100,
		ProbeN:        100,
		PerItemBudget: 30000,
	}
	rep, err := campaign.Run(polluted)
	if err != nil {
		t.Fatalf("campaign (polluted=%v): %v", polluted, err)
	}
	return rep
}

// The acceptance scenario: the §7 cache-digest pollution attack, run across
// two real HTTP servers exchanging digests, reproduces the paper's false-hit
// gap — the polluted digest misroutes ≥70% of probe traffic versus ≈40% for
// the honest control (paper: 79% vs 40%; at this geometry the free-bit
// budget is below the adversary's item budget, so her campaign reaches the
// §4.1 saturation extreme and the polluted rate lands at 1.0).
// Deterministic: fixed seeds, fixed geometry, unkeyed murmur indexes.
func TestRemoteDigestPollutionReproducesSection7Gap(t *testing.T) {
	honest := runDigestCampaign(t, false)
	polluted := runDigestCampaign(t, true)

	t.Logf("honest:   %d/%d false hits (rate %.2f), digest weight %d/%d",
		honest.FalseHits, honest.Probes, honest.FalseHitRate, honest.DigestWeight, honest.DigestBits)
	t.Logf("polluted: %d/%d false hits (rate %.2f), digest weight %d/%d, %d forge attempts",
		polluted.FalseHits, polluted.Probes, polluted.FalseHitRate, polluted.DigestWeight, polluted.DigestBits, polluted.ForgeAttempts)

	if honest.Inserted != 151 || polluted.Inserted != 151 {
		t.Fatalf("cache sizes: honest %d, polluted %d, want 151 each", honest.Inserted, polluted.Inserted)
	}
	// The §7 gap, in absolute terms (paper: 0.79 vs 0.40).
	if polluted.FalseHitRate < 0.7 {
		t.Errorf("polluted false-hit rate %.2f, want ≥ 0.70", polluted.FalseHitRate)
	}
	if honest.FalseHitRate < 0.25 || honest.FalseHitRate > 0.55 {
		t.Errorf("honest false-hit rate %.2f, want ≈ 0.40", honest.FalseHitRate)
	}
	if polluted.FalseHitRate < honest.FalseHitRate+0.2 {
		t.Errorf("no meaningful gap: polluted %.2f vs honest %.2f", polluted.FalseHitRate, honest.FalseHitRate)
	}
	// Pollution is visible in the exchanged artifact itself: the digest B
	// routes by is heavier than the honest one for the same cache size.
	if polluted.DigestWeight <= honest.DigestWeight {
		t.Errorf("pollution did not raise digest weight: %d vs %d", polluted.DigestWeight, honest.DigestWeight)
	}
	if polluted.ForgeAttempts == 0 || honest.ForgeAttempts != 0 {
		t.Errorf("forge accounting: polluted %d, honest %d", polluted.ForgeAttempts, honest.ForgeAttempts)
	}
	// Single shard + public family: the adversary's shadow is exact, so
	// the server's ground truth must equal the digest weight B fetched.
	if polluted.ServerWeight != polluted.DigestWeight {
		t.Errorf("server weight %d differs from exchanged digest weight %d",
			polluted.ServerWeight, polluted.DigestWeight)
	}
}

// The adversary can also verify her work directly: the digest endpoint is
// public, so she fetches the same artifact the victims route by.
func TestRemoteDigestPublicExport(t *testing.T) {
	proxy, _ := digestPair(t)
	if err := proxy.Add([]byte("x")); err != nil {
		t.Fatal(err)
	}
	env, err := proxy.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if len(env) == 0 {
		t.Fatal("empty digest envelope")
	}
}
