package attack_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"evilbloom/internal/attack"
	"evilbloom/internal/hashes"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// startRegistryServer brings up a live multi-filter service and creates one
// counting filter through the wire API, exactly as a remote operator would.
func startRegistryServer(t *testing.T, name string, spec httpapi.FilterSpec) (*httptest.Server, *attack.RemoteClient) {
	t.Helper()
	ts := httptest.NewServer(httpapi.NewRegistryServer(service.NewRegistry()))
	t.Cleanup(ts.Close)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/filters/"+name, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("creating filter %q: status %d", name, resp.StatusCode)
	}
	return ts, attack.NewRemoteClient(ts.URL, nil).ForFilter(name)
}

// countingSpec is the paper's Fig 3 geometry (m=3200, k=4) as one counting
// shard — the single-filter setting of §4.3. Only the naive spec carries a
// seed; the server rejects one on a hardened filter (keys are server-side).
func countingSpec(mode string) httpapi.FilterSpec {
	spec := httpapi.FilterSpec{
		Variant:   "counting",
		Mode:      mode,
		Shards:    1,
		ShardBits: 3200,
		HashCount: 4,
	}
	if mode == "naive" {
		spec.Seed = 7
	}
	return spec
}

// honestWorkload inserts a blocklist of honest items plus the victim
// through the public API and returns the honest control set.
func honestWorkload(t *testing.T, client *attack.RemoteClient, victim []byte) [][]byte {
	t.Helper()
	gen := urlgen.New(400)
	honest := make([][]byte, 50)
	for i := range honest {
		honest[i] = gen.Next()
	}
	if err := client.AddBatch(honest); err != nil {
		t.Fatal(err)
	}
	if err := client.Add(victim); err != nil {
		t.Fatal(err)
	}
	return honest
}

// The acceptance scenario for the §4.3 deletion adversary run end-to-end
// over HTTP: against a naive counting server she induces a targeted false
// negative on an honest victim item using only the public add/test/remove
// endpoints, while the hardened server under the identical campaign refuses
// her crafted removals and keeps the victim present.
func TestRemoteDeletionNaiveVsHardened(t *testing.T) {
	victim := []byte("http://honest.example.com/blocked-page")

	// --- Naive server: seed published, family reconstructible, evictable.
	_, naive := startRegistryServer(t, "blocklist", countingSpec("naive"))
	honest := honestWorkload(t, naive, victim)
	adv, err := attack.NewRemoteDeletionFromInfo(naive, urlgen.New(11))
	if err != nil {
		t.Fatalf("reconstructing family from public info: %v", err)
	}
	rep, err := adv.Evict(victim, 100000, 30)
	if err != nil {
		t.Fatalf("campaign against naive server: %v", err)
	}
	if !rep.Evicted {
		t.Fatalf("naive server resisted: %+v", rep)
	}
	present, err := naive.Test(victim)
	if err != nil {
		t.Fatal(err)
	}
	if present {
		t.Error("server still reports the evicted victim present")
	}
	// The campaign is targeted: the honest blocklist survives almost
	// untouched (a control item sharing a drained counter may be collateral).
	survivors := 0
	got, err := naive.TestBatch(honest)
	if err != nil {
		t.Fatal(err)
	}
	for _, ok := range got {
		if ok {
			survivors++
		}
	}
	if survivors < len(honest)-3 {
		t.Errorf("only %d/%d honest items survived; the attack should be targeted", survivors, len(honest))
	}
	t.Logf("naive: evicted in %d rounds, %d removals accepted, %d covers, %d/%d honest survive",
		rep.Rounds, rep.Accepted, rep.CoverAdds, survivors, len(honest))

	// --- Hardened server: no seed published; the from-info constructor
	// must refuse...
	_, hard := startRegistryServer(t, "blocklist", countingSpec("hardened"))
	honestWorkload(t, hard, victim)
	if _, err := attack.NewRemoteDeletionFromInfo(hard, urlgen.New(11)); err == nil {
		t.Fatal("hardened server let the adversary reconstruct its family from /info")
	}
	// ...and the identical campaign driven with the guessed dablooms-style
	// family gets nowhere: removals are refused, the victim stays.
	guess, err := hashes.NewDoubleHashing(4, 3200, 7)
	if err != nil {
		t.Fatal(err)
	}
	hardAdv := attack.NewRemoteDeletion(hard, guess, urlgen.New(11))
	hardRep, err := hardAdv.Evict(victim, 100000, 12)
	if err != nil {
		t.Fatalf("campaign against hardened server: %v", err)
	}
	if hardRep.Evicted {
		t.Errorf("hardened server evicted the victim: %+v", hardRep)
	}
	if hardRep.Refused == 0 {
		t.Errorf("hardened server refused no removals: %+v", hardRep)
	}
	present, err = hard.Test(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !present {
		t.Error("victim lost on the hardened server")
	}
	t.Logf("hardened: %d rounds, %d removals refused, %d accepted, victim present",
		hardRep.Rounds, hardRep.Refused, hardRep.Accepted)
}

// Multi-shard eviction also works: the adversary cannot predict the secret
// shard routing, but the public test endpoint is an oracle for whether her
// covers landed where her removal item needs them, so she re-covers until
// it does.
func TestRemoteDeletionCrossesShards(t *testing.T) {
	spec := countingSpec("naive")
	spec.Shards = 4
	_, client := startRegistryServer(t, "blocklist", spec)
	victim := []byte("http://honest.example.com/blocked-page")
	honestWorkload(t, client, victim)
	adv, err := attack.NewRemoteDeletionFromInfo(client, urlgen.New(23))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := adv.Evict(victim, 100000, 60)
	if err != nil {
		t.Fatalf("multi-shard campaign: %v", err)
	}
	if !rep.Evicted {
		t.Fatalf("4-shard naive server resisted: %+v", rep)
	}
	t.Logf("4 shards: evicted in %d rounds, %d accepted, %d refused, %d covers",
		rep.Rounds, rep.Accepted, rep.Refused, rep.CoverAdds)
}

// The remove client distinguishes refusals from transport errors and
// surfaces capability rejections.
func TestRemoteRemoveClient(t *testing.T) {
	_, client := startRegistryServer(t, "counts", countingSpec("naive"))
	item := []byte("http://a.example/1")
	if err := client.Add(item); err != nil {
		t.Fatal(err)
	}
	ok, err := client.Remove(item)
	if err != nil || !ok {
		t.Fatalf("Remove(inserted) = %v, %v", ok, err)
	}
	ok, err = client.Remove(item)
	if err != nil || ok {
		t.Fatalf("Remove(absent) = %v, %v; want refused without error", ok, err)
	}
	// Batch: one present, one absent.
	if err := client.Add(item); err != nil {
		t.Fatal(err)
	}
	got, err := client.RemoveBatch([][]byte{item, []byte("http://a.example/never")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0] || got[1] {
		t.Errorf("RemoveBatch = %v, want [true false]", got)
	}
	// A bloom filter rejects removal with a capability error.
	_, bloom := startRegistryServer(t, "plain", httpapi.FilterSpec{
		Shards: 1, ShardBits: 3200, HashCount: 4, Seed: 7,
	})
	if _, err := bloom.Remove(item); err == nil {
		t.Error("bloom-backed filter accepted a remove")
	}
	if _, err := bloom.RemoveBatch([][]byte{item}); err == nil {
		t.Error("bloom-backed filter accepted a remove-batch")
	}
}

// The v2 info endpoint publishes everything the §4.3 adversary needs
// against a naive filter — and nothing family-identifying for hardened.
func TestRemoteInfoV2(t *testing.T) {
	_, naive := startRegistryServer(t, "blocklist", countingSpec("naive"))
	info, err := naive.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Variant != "counting" || info.CounterWidth != 4 || info.Overflow != "wrap" {
		t.Errorf("counting info incomplete: %+v", info)
	}
	if info.Seed == nil || *info.Seed != 7 {
		t.Errorf("naive info must publish the seed: %+v", info)
	}
	hasRemove := false
	for _, c := range info.Capabilities {
		if c == "remove" {
			hasRemove = true
		}
	}
	if !hasRemove {
		t.Errorf("counting filter must advertise the remove capability: %v", info.Capabilities)
	}

	_, hard := startRegistryServer(t, "blocklist", countingSpec("hardened"))
	hinfo, err := hard.Info()
	if err != nil {
		t.Fatal(err)
	}
	if hinfo.Seed != nil {
		t.Errorf("hardened info leaks a seed: %+v", hinfo)
	}
}
