package attack

import (
	"errors"
	"math"
	"testing"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func newFig3Bloom(t testing.TB) *core.Bloom {
	t.Helper()
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, 4, 3200)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewBloom(fam)
}

func TestForgePollutingSetsKFreshBits(t *testing.T) {
	b := newFig3Bloom(t)
	forger := NewForger(NewBloomView(b), urlgen.New(1))
	for i := 0; i < 50; i++ {
		item, idx, err := forger.ForgePolluting(1 << 20)
		if err != nil {
			t.Fatalf("forge %d: %v", i, err)
		}
		if len(idx) != 4 {
			t.Fatalf("idx len = %d", len(idx))
		}
		before := b.Weight()
		b.Add(item)
		if got := b.Weight() - before; got != 4 {
			t.Fatalf("insert %d set %d fresh bits, want 4", i, got)
		}
	}
}

func TestForgeFalsePositive(t *testing.T) {
	b := newFig3Bloom(t)
	gen := urlgen.New(2)
	for i := 0; i < 300; i++ {
		b.Add(gen.Next())
	}
	forger := NewForger(NewBloomView(b), urlgen.New(99))
	for i := 0; i < 20; i++ {
		item, _, err := forger.ForgeFalsePositive(1 << 22)
		if err != nil {
			t.Fatalf("forge %d: %v", i, err)
		}
		if !b.Test(item) {
			t.Fatal("forged item is not a false positive")
		}
	}
}

func TestForgeExpensiveQuery(t *testing.T) {
	b := newFig3Bloom(t)
	gen := urlgen.New(3)
	for i := 0; i < 300; i++ {
		b.Add(gen.Next())
	}
	view := NewBloomView(b)
	forger := NewForger(view, urlgen.New(100))
	for i := 0; i < 20; i++ {
		item, idx, err := forger.ForgeExpensiveQuery(1 << 22)
		if err != nil {
			t.Fatalf("forge %d: %v", i, err)
		}
		if b.Test(item) {
			t.Fatal("expensive query unexpectedly a member")
		}
		for j := 0; j < len(idx)-1; j++ {
			if !view.OccupiedAt(j, idx[j]) {
				t.Fatal("prefix index not occupied")
			}
		}
		if view.OccupiedAt(len(idx)-1, idx[len(idx)-1]) {
			t.Fatal("final index occupied")
		}
	}
}

func TestForgeExpensiveQueryNeedsK2(t *testing.T) {
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	forger := NewForger(NewBloomView(core.NewBloom(fam)), urlgen.New(0))
	if _, _, err := forger.ForgeExpensiveQuery(10); err == nil {
		t.Error("k=1 expensive query accepted")
	}
}

func TestBudgetExhausted(t *testing.T) {
	b := newFig3Bloom(t)
	// Empty filter: false positives are impossible; the budget must trip.
	forger := NewForger(NewBloomView(b), urlgen.New(4))
	_, _, err := forger.ForgeFalsePositive(100)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
	if forger.Attempts != 100 {
		t.Errorf("Attempts = %d, want 100", forger.Attempts)
	}
}

func TestForgeDeletion(t *testing.T) {
	b := newFig3Bloom(t)
	victim := []byte("http://victim.example.com/")
	b.Add(victim)
	view := NewBloomView(b)
	victimIdx := view.Indexes(nil, victim)
	forger := NewForger(view, urlgen.New(5))
	item, idx, err := forger.ForgeDeletion(victimIdx, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if item == nil || !SharesIndex(view, idx, victimIdx) {
		t.Error("forged deletion item does not overlap victim")
	}
	if _, _, err := forger.ForgeDeletion(nil, 10); err == nil {
		t.Error("empty victim accepted")
	}
}

// Fig 3 reproduction: the chosen-insertion adversary reaches the designer's
// f_opt = 0.077 threshold after ≈422 insertions instead of 600, and reaches
// f ≈ 0.316 at 600.
func TestPollutionCampaignReproducesFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign")
	}
	b := newFig3Bloom(t)
	adv := NewChosenInsertion(NewBloomView(b), b, b, urlgen.New(6))
	points, err := adv.PolluteN(600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 600 {
		t.Fatalf("got %d points", len(points))
	}
	// Weight after n chosen insertions is exactly nk.
	if points[599].Weight != 2400 {
		t.Errorf("weight after 600 = %d, want 2400", points[599].Weight)
	}
	// FPR at 600 is exactly (2400/3200)^4 = 0.75^4 ≈ 0.316 (eq 7).
	if math.Abs(points[599].FPR-math.Pow(0.75, 4)) > 1e-12 {
		t.Errorf("FPR after 600 = %v, want 0.75^4", points[599].FPR)
	}
	// Threshold crossing at ≈422.
	cross := 0
	for i, p := range points {
		if p.FPR >= 0.077 {
			cross = i + 1
			break
		}
	}
	if cross < 410 || cross > 435 {
		t.Errorf("threshold crossed at %d chosen insertions, paper says ≈422", cross)
	}
}

// Partial attack: 400 honest insertions then adversarial ones; the paper
// reports the threshold at ≈510 total insertions.
func TestPartialPollutionReproducesFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign")
	}
	b := newFig3Bloom(t)
	honest := urlgen.New(7)
	for i := 0; i < 400; i++ {
		b.Add(honest.Next())
	}
	adv := NewChosenInsertion(NewBloomView(b), b, b, urlgen.New(8))
	points, err := adv.PolluteN(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	cross := uint64(0)
	for _, p := range points {
		if p.FPR >= 0.077 {
			cross = p.Inserted
			break
		}
	}
	if cross < 490 || cross > 530 {
		t.Errorf("partial-attack threshold at %d total insertions, paper says ≈510", cross)
	}
}

// §4.1 saturation: the adversary needs ⌊m/k⌋ items plus a small endgame
// tail, versus m·ln(m)/k ≈ 6500 for honest traffic.
func TestSaturate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign")
	}
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, 4, 800)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBloom(fam)
	adv := NewChosenInsertion(NewBloomView(b), b, b, urlgen.New(9))
	inserted, err := adv.Saturate(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Weight() != 800 {
		t.Fatalf("filter not saturated: W=%d", b.Weight())
	}
	// 800/4 = 200 strict items plus a greedy endgame tail.
	if inserted < 200 || inserted > 450 {
		t.Errorf("saturation used %d items, want ≈200 (m/k) plus small tail", inserted)
	}
	if inserted >= core.SaturationRandomItems(800, 4) {
		t.Errorf("adversarial saturation (%d) not cheaper than honest (%d)",
			inserted, core.SaturationRandomItems(800, 4))
	}
}

func TestQueryOnlyFalsePositiveFlood(t *testing.T) {
	b := newFig3Bloom(t)
	gen := urlgen.New(10)
	for i := 0; i < 400; i++ {
		b.Add(gen.Next())
	}
	adv := NewQueryOnly(NewBloomView(b), urlgen.New(11))
	fps, err := adv.FalsePositives(10, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fps {
		if !b.Test(fp) {
			t.Error("flood item is not a false positive")
		}
	}
	qs, err := adv.ExpensiveQueries(5, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if b.Test(q) {
			t.Error("expensive query is a member")
		}
	}
}

// The deletion adversary evicts a victim from a counting filter using only
// removals of items the filter believes present.
func TestDeletionEvict(t *testing.T) {
	fam, err := hashes.NewDoubleHashing(4, 2048, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCounting(fam, 4, core.Wrap)
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(12)
	for i := 0; i < 300; i++ {
		c.Add(gen.Next())
	}
	victim := []byte("http://victim.example.com/page")
	c.Add(victim)
	if !c.Test(victim) {
		t.Fatal("victim not inserted")
	}
	adv := NewDeletion(c, urlgen.New(13))
	removed, err := adv.Evict(victim, 1<<24, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Test(victim) {
		t.Error("victim still present after eviction")
	}
	if len(removed) == 0 {
		t.Error("eviction reported success without removals")
	}
}

func fig3AttackSuccessRates(t *testing.T, w uint64) (polluting, fp float64) {
	t.Helper()
	b := newFig3Bloom(t)
	gen := urlgen.New(14)
	for b.Weight() < w {
		b.Add(gen.Next())
	}
	view := NewBloomView(b)
	probe := urlgen.New(15)
	var scratch []uint64
	const trials = 200000
	var nPoll, nFP int
	for i := 0; i < trials; i++ {
		scratch = view.Indexes(scratch[:0], probe.Next())
		if IsPolluting(view, scratch) {
			nPoll++
		}
		if IsFalsePositive(view, scratch) {
			nFP++
		}
	}
	return float64(nPoll) / trials, float64(nFP) / trials
}

// Table 1 Monte-Carlo: empirical success rates match the analytic
// probabilities C(m−W,k)/m^k (pollution) and (W/m)^k (forgery).
func TestTable1EmpiricalMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	const m, k = 3200, 4
	pollEmp, fpEmp := fig3AttackSuccessRates(t, 1600)
	pollWant := core.PollutionProbability(m, k, 1600)
	fpWant := core.FPForgeryProbability(m, k, 1600)
	if math.Abs(pollEmp-pollWant) > 0.01 {
		t.Errorf("pollution success = %v, analytic %v", pollEmp, pollWant)
	}
	if math.Abs(fpEmp-fpWant) > 0.01 {
		t.Errorf("forgery success = %v, analytic %v", fpEmp, fpWant)
	}
}

// Keyed filters defeat forgery: with an HMAC family and an unknown key the
// adversary's success collapses to the baseline random rate.
func TestKeyedFilterResistsTargetedForgery(t *testing.T) {
	// The adversary "knows" a guessed key, the server uses another.
	server, err := core.NewBloomOptimal(600, 0.077, hashes.HMACSHA256, []byte("server-secret"))
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(16)
	for i := 0; i < 600; i++ {
		server.Add(gen.Next())
	}
	guess, err := core.NewBloomOptimal(600, 0.077, hashes.HMACSHA256, []byte("wrong-guess"))
	if err != nil {
		t.Fatal(err)
	}
	// Adversary forges "false positives" against her guessed-key model of
	// the filter (she copies the server's bit pattern — public in the threat
	// model — but derives indexes with the wrong key).
	mirror := core.NewBloom(guess.Family())
	for _, i := range server.Bits().Support() {
		mirror.AddIndexes([]uint64{i})
	}
	forger := NewForger(NewBloomView(mirror), urlgen.New(17))
	hits := 0
	const forgeries = 60
	for i := 0; i < forgeries; i++ {
		item, _, err := forger.ForgeFalsePositive(1 << 22)
		if err != nil {
			t.Fatal(err)
		}
		if server.Test(item) {
			hits++
		}
	}
	rate := float64(hits) / forgeries
	base := server.EstimatedFPR()
	// Against the true filter her "forgeries" behave like random queries.
	if rate > base*3+0.05 {
		t.Errorf("forgery success against keyed filter = %v, baseline %v", rate, base)
	}
}

func BenchmarkForgePolluting(b *testing.B) {
	bl := newFig3Bloom(b)
	adv := NewChosenInsertion(NewBloomView(bl), bl, bl, urlgen.New(18))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bl.Weight() > 2400 { // keep occupancy bounded
			bl.Reset()
		}
		item, _, err := adv.forger.ForgePolluting(0)
		if err != nil {
			b.Fatal(err)
		}
		bl.Add(item)
	}
}
