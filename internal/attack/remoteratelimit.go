package attack

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// This file is the adversary's side of the rate-limited mutation plane:
// RemoteClient grows throttling-aware insertion (TryAdd) and the accounting
// endpoint (Clients), and RemoteThrottledPollution re-runs the chosen-
// insertion pollution campaign against a server defending itself with
// per-client mutation budgets — the paper's own suggested operational
// countermeasure, measured instead of assumed.

// TryAdd submits one insertion and reports whether the server accepted it.
// A 429 answer is a normal, informative outcome for a throttled adversary
// — (false, retryAfter, nil), carrying the server's parsed Retry-After —
// not an error; every other non-200 answer and transport failure errors.
func (c *RemoteClient) TryAdd(item []byte) (accepted bool, retryAfter time.Duration, err error) {
	path := c.prefix + "/add"
	buf, err := json.Marshal(map[string]string{"item": string(item)})
	if err != nil {
		return false, 0, fmt.Errorf("attack: encoding %s request: %w", path, err)
	}
	resp, err := c.do(http.MethodPost, path, buf)
	if err != nil {
		return false, 0, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		if secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil {
			retryAfter = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
		return false, retryAfter, nil
	}
	return true, 0, decodeRemote(resp, path, nil)
}

// RemoteClientStatus is one client's mutation accounting as the server
// reports it (GET .../clients).
type RemoteClientStatus struct {
	Client      string  `json:"client"`
	Allowed     uint64  `json:"allowed"`
	Throttled   uint64  `json:"throttled"`
	Tokens      float64 `json:"tokens"`
	IdleSeconds float64 `json:"idle_seconds"`
}

// RemoteClientsReport is the filter's per-client accounting table: who
// mutated the filter, how much, and who was turned away — the server's
// forensic view of a pollution campaign.
type RemoteClientsReport struct {
	Enabled          bool                 `json:"enabled"`
	MutationsPerSec  float64              `json:"mutations_per_sec"`
	Burst            float64              `json:"burst"`
	MaxClients       int                  `json:"max_clients"`
	Clients          []RemoteClientStatus `json:"clients"`
	EvictedClients   uint64               `json:"evicted_clients"`
	EvictedAllowed   uint64               `json:"evicted_allowed"`
	EvictedThrottled uint64               `json:"evicted_throttled"`
}

// Clients fetches the filter's per-client mutation accounting — public,
// like the rest of the monitoring surface, so the adversary can watch
// herself being attributed.
func (c *RemoteClient) Clients() (*RemoteClientsReport, error) {
	var rep RemoteClientsReport
	if err := c.get(c.prefix+"/clients", &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// RemoteThrottledPollution runs the chosen-insertion pollution campaign
// (the Fig 3 scenario, in its greedy §7 form so a small filter can be
// driven to full saturation) against a live server, counting 429s instead
// of assuming every insertion lands. Pointed at an unthrottled naive server
// it reproduces the familiar saturation; pointed at the same geometry
// behind `-rate-mutations` it measures exactly what the defense buys: the
// attacker spends the same request budget, most of it bounces, and the
// end-state FPR is pinned near the honest level. The shadow model records
// only accepted insertions, so the adversary's view stays exact against a
// naive server even mid-throttle.
type RemoteThrottledPollution struct {
	// Target is a filter-scoped client for the server under attack,
	// optionally carrying a self-declared identity (WithIdentity) for
	// -trust-proxy servers.
	Target *RemoteClient
	// Traffic supplies the forgery candidate stream.
	Traffic Generator
	// Requests is the mutation request budget: the campaign sends at most
	// this many add requests (accepted or throttled alike).
	Requests int
	// PerItemBudget bounds the per-item forgery search (0 = the greedy
	// default of 20000 candidates).
	PerItemBudget uint64
}

// ThrottledPollutionReport is the outcome of one campaign.
type ThrottledPollutionReport struct {
	// Requests counts add requests actually sent (≤ the budget: an
	// unthrottled campaign stops early once its shadow saturates — there is
	// nothing left to pollute).
	Requests int
	// Accepted and Throttled partition the sent requests by outcome.
	Accepted, Throttled int
	// FirstThrottle is the 1-based request index of the first 429 (0 =
	// never throttled).
	FirstThrottle int
	// LastRetryAfter is the final 429's Retry-After answer.
	LastRetryAfter time.Duration
	// SaturatedAt is the 1-based request index at which the shadow filter
	// saturated (0 = the campaign never saturated it) — the
	// time-to-saturation the rate limit stretches.
	SaturatedAt int
	// ForgeAttempts counts forgery candidates examined.
	ForgeAttempts uint64
	// ServerWeight, ServerFPR and ServerCount are the server's own
	// post-campaign ground truth.
	ServerWeight uint64
	ServerFPR    float64
	ServerCount  uint64
	// Points is the shadow trajectory, one point per sent request; under
	// throttling it flattens the moment the burst is spent — the blunted
	// curve, per request of attacker effort.
	Points []PollutionPoint
}

// throttledSink inserts through TryAdd, mirroring only accepted items into
// the shadow and latching the campaign's throttle accounting.
type throttledSink struct {
	client *RemoteClient
	view   *RemoteView
	rep    *ThrottledPollutionReport
	err    error
}

// Add implements Inserter.
func (t *throttledSink) Add(item []byte) {
	if t.err != nil {
		return
	}
	t.rep.Requests++
	ok, retry, err := t.client.TryAdd(item)
	if err != nil {
		t.err = err
		return
	}
	if !ok {
		t.rep.Throttled++
		t.rep.LastRetryAfter = retry
		if t.rep.FirstThrottle == 0 {
			t.rep.FirstThrottle = t.rep.Requests
		}
		return
	}
	t.view.Observe(item)
	t.rep.Accepted++
}

// Run executes the campaign. The target filter must be naive-mode (the
// shadow is built from its published parameters) and freshly created — the
// campaign owns its whole history.
func (c *RemoteThrottledPollution) Run() (*ThrottledPollutionReport, error) {
	if c.Requests <= 0 {
		return nil, fmt.Errorf("attack: request budget %d must be positive", c.Requests)
	}
	view, err := NewRemoteViewFromInfo(c.Target)
	if err != nil {
		return nil, err
	}
	rep := &ThrottledPollutionReport{}
	sink := &throttledSink{client: c.Target, view: view, rep: rep}
	adv := NewChosenInsertion(view, sink, view, c.Traffic)
	points, err := adv.PolluteGreedy(c.Requests, c.PerItemBudget)
	if err != nil {
		return nil, err
	}
	if sink.err != nil {
		return nil, fmt.Errorf("attack: transport during campaign: %w", sink.err)
	}
	rep.Points = points
	rep.ForgeAttempts = adv.Forger().Attempts
	if view.Weight() >= view.M() {
		rep.SaturatedAt = rep.Requests
	}
	stats, err := c.Target.Stats()
	if err != nil {
		return nil, err
	}
	rep.ServerWeight, rep.ServerFPR, rep.ServerCount = stats.Weight, stats.FPR, stats.Count
	return rep, nil
}
