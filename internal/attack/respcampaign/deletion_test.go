package respcampaign

import (
	"testing"

	"evilbloom/internal/hashes"
	"evilbloom/internal/resp"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// countingGeometry is the paper's Fig 3 geometry (m=3200, k=4) as one
// counting shard — the single-filter setting of §4.3. Only the naive target
// takes a seed; a hardened filter's keys are server-side.
func countingGeometry(mode service.Mode) service.Config {
	cfg := service.Config{
		Variant:   service.VariantCounting,
		Mode:      mode,
		Shards:    1,
		ShardBits: 3200,
		HashCount: 4,
	}
	if mode == service.ModeNaive {
		cfg.Seed = 7
	} else {
		cfg.Key = []byte("0123456789abcdef")
	}
	return cfg
}

// seedBlocklist inserts a blocklist of honest items plus the victim over
// RESP — the honest workload the adversary's eviction must not disturb —
// and returns the honest control set.
func seedBlocklist(t *testing.T, addr, filter string, victim []byte) [][]byte {
	t.Helper()
	cli, err := resp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	gen := urlgen.New(400)
	honest := make([][]byte, 50)
	for i := range honest {
		honest[i] = gen.Next()
	}
	cli.SendItems("BF.MADD", filter, honest)
	cli.SendItems("BF.ADD", filter, [][]byte{victim})
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		reply, err := cli.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if err := reply.Err(); err != nil {
			t.Fatalf("seeding blocklist: %v", err)
		}
	}
	return honest
}

// countPresent asks the server how many of items it still believes present.
func countPresent(t *testing.T, addr, filter string, items [][]byte) int {
	t.Helper()
	cli, err := resp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SendItems("BF.MEXISTS", filter, items)
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	reply, err := cli.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := reply.Err(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range reply.Elems {
		if e.Int == 1 {
			n++
		}
	}
	return n
}

// The §4.3 deletion campaign carried over the RESP plane: against a naive
// counting server the adversary evicts an honest victim through pipelined
// BF.MADD covers and CF.DEL removals; the hardened server under the
// identical campaign refuses every crafted removal — 100% — and keeps the
// victim present.
func TestDeletionCampaignNaiveVsHardened(t *testing.T) {
	victim := []byte("http://honest.example.com/blocked-page")

	// --- Naive target: seed published via BF.INFO, family reconstructible,
	// victim evictable.
	addr, _ := startTarget(t, "blocklist", countingGeometry(service.ModeNaive))
	honest := seedBlocklist(t, addr, "blocklist", victim)
	c := &Deletion{
		Addr:          addr,
		Filter:        "blocklist",
		PerItemBudget: 100000,
		MaxRounds:     30,
		Traffic:       urlgen.New(11),
	}
	rep, err := c.Run(victim)
	if err != nil {
		t.Fatalf("campaign against naive target: %v", err)
	}
	if !rep.Evicted {
		t.Fatalf("naive target resisted: %+v", rep)
	}
	if n := countPresent(t, addr, "blocklist", [][]byte{victim}); n != 0 {
		t.Error("server still reports the evicted victim present")
	}
	// Targeted, not scattershot: the honest blocklist survives almost
	// untouched (an item sharing a drained counter may be collateral).
	if survivors := countPresent(t, addr, "blocklist", honest); survivors < len(honest)-3 {
		t.Errorf("only %d/%d honest items survived; the attack should be targeted", survivors, len(honest))
	}
	t.Logf("naive: evicted in %d rounds, %d removals accepted, %d covers, %d attempts",
		rep.Rounds, rep.Accepted, rep.CoverAdds, rep.Attempts)

	// --- Hardened target: BF.INFO publishes no seed, so the from-info path
	// must refuse...
	hardAddr, _ := startTarget(t, "blocklist", countingGeometry(service.ModeHardened))
	seedBlocklist(t, hardAddr, "blocklist", victim)
	blind := &Deletion{
		Addr: hardAddr, Filter: "blocklist",
		PerItemBudget: 100000, MaxRounds: 12, Traffic: urlgen.New(11),
	}
	if _, err := blind.Run(victim); err == nil {
		t.Fatal("hardened target let the adversary reconstruct its family from BF.INFO")
	}
	// ...and the identical campaign driven with a guessed dablooms-style
	// family hits a refusal wall: every CF.DEL answers :0, the victim stays.
	guess, err := hashes.NewDoubleHashing(4, 3200, 7)
	if err != nil {
		t.Fatal(err)
	}
	hard := &Deletion{
		Addr: hardAddr, Filter: "blocklist",
		PerItemBudget: 100000, MaxRounds: 12,
		Traffic: urlgen.New(11), Family: guess,
	}
	hardRep, err := hard.Run(victim)
	if err != nil {
		t.Fatalf("campaign against hardened target: %v", err)
	}
	if hardRep.Evicted {
		t.Errorf("hardened target evicted the victim: %+v", hardRep)
	}
	if hardRep.Refused == 0 || hardRep.Accepted != 0 {
		t.Errorf("hardened target must refuse 100%% of crafted removals: %+v", hardRep)
	}
	if n := countPresent(t, hardAddr, "blocklist", [][]byte{victim}); n != 1 {
		t.Error("victim lost on the hardened target")
	}
	t.Logf("hardened: %d rounds, %d refused, %d accepted, victim present",
		hardRep.Rounds, hardRep.Refused, hardRep.Accepted)
}
