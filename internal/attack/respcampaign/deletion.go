package respcampaign

import (
	"fmt"
	"time"

	"evilbloom/internal/attack"
	"evilbloom/internal/hashes"
	"evilbloom/internal/resp"
)

// Deletion drives the §4.3 targeted-eviction campaign over the binary RESP
// plane: the same forge-cover-remove rounds as the HTTP adversary
// (attack.RemoteDeletion), with cover batches shipped as one pipelined
// BF.MADD and removals as CF.DEL. Against a hardened server the crafted
// removal items are almost never false positives on the real counters, so
// every CF.DEL answers :0 — the campaign reports 100% refusals and the
// victim stays present.
type Deletion struct {
	// Addr is the server's RESP address (host:port).
	Addr string
	// Filter is the target filter name.
	Filter string
	// PerItemBudget bounds candidate generation per forged item (0 is
	// unbounded).
	PerItemBudget uint64
	// MaxRounds bounds the forge-cover-remove rounds.
	MaxRounds int
	// Traffic generates forgery candidates (e.g. urlgen).
	Traffic attack.Generator
	// Family overrides the index family — the hardened adversary's guess.
	// When nil the campaign reconstructs it from BF.INFO's published
	// parameters, refusing if the server publishes no seed.
	Family hashes.IndexFamily
}

// DeletionReport is the campaign outcome plus the adversary's work counters.
type DeletionReport struct {
	attack.EvictReport
	// Attempts counts forgery candidates examined.
	Attempts uint64
	// Elapsed is the campaign wall time.
	Elapsed time.Duration
}

// respDeletionOps adapts one RESP connection to attack.DeletionOps. Test
// and Remove are synchronous round trips (each round's next step depends on
// the answer); AddBatch ships a whole cover set as one pipelined BF.MADD.
type respDeletionOps struct {
	cli    *resp.Client
	filter string
}

func (o *respDeletionOps) Test(item []byte) (bool, error) {
	reply, err := o.cli.Do("BF.EXISTS", o.filter, string(item))
	if err != nil {
		return false, err
	}
	if err := reply.Err(); err != nil {
		return false, fmt.Errorf("respcampaign: BF.EXISTS: %w", err)
	}
	return reply.Int == 1, nil
}

func (o *respDeletionOps) AddBatch(items [][]byte) error {
	o.cli.SendItems("BF.MADD", o.filter, items)
	if err := o.cli.Flush(); err != nil {
		return err
	}
	reply, err := o.cli.Receive()
	if err != nil {
		return err
	}
	if err := reply.Err(); err != nil {
		return fmt.Errorf("respcampaign: BF.MADD: %w", err)
	}
	return nil
}

func (o *respDeletionOps) Remove(item []byte) (bool, error) {
	reply, err := o.cli.Do("CF.DEL", o.filter, string(item))
	if err != nil {
		return false, err
	}
	if err := reply.Err(); err != nil {
		return false, fmt.Errorf("respcampaign: CF.DEL: %w", err)
	}
	return reply.Int == 1, nil
}

// Run executes the eviction campaign against victim and reports the
// outcome; like the HTTP campaign, a server that resists (the hardened
// refusal wall) is a result, not an error.
func (c *Deletion) Run(victim []byte) (*DeletionReport, error) {
	if c.Traffic == nil {
		return nil, fmt.Errorf("respcampaign: Deletion needs a Traffic generator")
	}
	maxRounds := c.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	cli, err := resp.Dial(c.Addr)
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	fam := c.Family
	if fam == nil {
		info, err := fetchRESPInfo(cli, c.Filter)
		if err != nil {
			return nil, err
		}
		if info.seed == nil {
			return nil, fmt.Errorf("respcampaign: server mode %q publishes no seed; indexes are not predictable", info.mode)
		}
		if fam, err = hashes.NewDoubleHashing(int(info.k), uint64(info.shardBits), uint64(*info.seed)); err != nil {
			return nil, err
		}
	}

	adv := attack.NewRemoteDeletion(&respDeletionOps{cli: cli, filter: c.Filter}, fam, c.Traffic)
	start := time.Now()
	rep, err := adv.Evict(victim, c.PerItemBudget, maxRounds)
	if err != nil {
		return nil, err
	}
	return &DeletionReport{
		EvictReport: *rep,
		Attempts:    adv.Attempts,
		Elapsed:     time.Since(start),
	}, nil
}
