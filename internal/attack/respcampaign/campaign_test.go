package respcampaign

import (
	"context"
	"net"
	"testing"
	"time"

	"evilbloom/internal/resp"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// startTarget provisions a registry with one filter under cfg and a RESP
// listener over it, returning the address.
func startTarget(t *testing.T, filter string, cfg service.Config) (string, *service.Registry) {
	t.Helper()
	reg := service.NewRegistry()
	t.Cleanup(func() { reg.Close() })
	if _, err := reg.Create(filter, cfg); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := resp.NewServer(reg)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-serveErr
	})
	return ln.Addr().String(), reg
}

// paperGeometry is the §4.1 experiment's small single-shard naive target:
// the seed is public, so the adversary's shadow view predicts every index.
var paperGeometry = service.Config{
	Shards:    1,
	ShardBits: 640,
	HashCount: 4,
	Seed:      42,
}

// An unthrottled campaign over RESP must behave exactly like the HTTP one:
// the shadow view tracks the server's ground truth bit-for-bit, and greedy
// chosen insertions drive the filter toward saturation far faster than
// honest traffic would.
func TestPollutionSaturatesNaiveTarget(t *testing.T) {
	addr, _ := startTarget(t, "web", paperGeometry)

	c := &Pollution{
		Addr:     addr,
		Filter:   "web",
		Conns:    2,
		Pipeline: 16,
		Requests: 200,
		Traffic:  urlgen.New(7),
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// PolluteGreedy stops early once the shadow view says the filter is
	// saturated, so Inserted may fall short of Requests — but nothing may
	// bounce on an unthrottled target.
	if rep.Busy != 0 {
		t.Fatalf("busy=%d on an unthrottled target", rep.Busy)
	}
	if rep.Inserted < 100 || rep.Inserted > 200 {
		t.Fatalf("inserted=%d, want within [100, 200]", rep.Inserted)
	}
	// With no refusals the shadow is exact: the attacker knows the server's
	// occupancy without ever reading it back.
	if rep.ShadowWeight != rep.ServerWeight {
		t.Fatalf("shadow weight %d != server weight %d; the shadow view drifted", rep.ShadowWeight, rep.ServerWeight)
	}
	if rep.ServerCount != uint64(rep.Inserted) {
		t.Fatalf("server count = %d, want %d (every acknowledged insertion landed)", rep.ServerCount, rep.Inserted)
	}
	// Greedy chosen insertions into m=640 saturate: each forged item is
	// chosen to set many fresh bits, so the resulting FPR dwarfs the
	// honest-traffic level (~0.11 for 200 random insertions at this
	// geometry).
	if rep.ServerFPR < 0.5 {
		t.Fatalf("server FPR after campaign = %g, want >= 0.5 (saturation)", rep.ServerFPR)
	}
	if rep.ForgeAttempts == 0 {
		t.Fatal("no forging work recorded")
	}
	if rep.InsertsPerSec <= 0 {
		t.Fatalf("InsertsPerSec = %g", rep.InsertsPerSec)
	}
}

// A rate-limited target refuses most of the campaign with -BUSY: the
// mitigation holds on the binary plane too, and the report shows the
// attacker's shadow model running ahead of the server (her belief degrades
// once throttled).
func TestPollutionThrottledByRateLimit(t *testing.T) {
	addr, reg := startTarget(t, "web", paperGeometry)
	if err := reg.ConfigureRateLimit(service.RateLimitConfig{MutationsPerSec: 0.1, Burst: 32}); err != nil {
		t.Fatal(err)
	}

	c := &Pollution{
		Addr:     addr,
		Filter:   "web",
		Conns:    2,
		Pipeline: 16,
		Requests: 100,
		Traffic:  urlgen.New(8),
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted+rep.Busy != 100 {
		t.Fatalf("inserted=%d busy=%d, want them to partition 100 attempts", rep.Inserted, rep.Busy)
	}
	// Burst 32 at a 0.1/s refill: at most ~32 items land, the rest bounce.
	if rep.Busy < 60 {
		t.Fatalf("busy=%d, want the bulk of the campaign refused", rep.Busy)
	}
	if rep.Inserted > 40 {
		t.Fatalf("inserted=%d, want the limiter to hold near its burst", rep.Inserted)
	}
	if rep.ShadowWeight <= rep.ServerWeight {
		t.Fatalf("shadow %d <= server %d; a throttled attacker's optimistic shadow must overshoot",
			rep.ShadowWeight, rep.ServerWeight)
	}
}

// Hardened targets publish no seed over BF.INFO, so the campaign cannot
// even start — the same refusal the HTTP campaign makes.
func TestPollutionNeedsPublishedSeed(t *testing.T) {
	cfg := paperGeometry
	cfg.Mode = service.ModeHardened
	addr, _ := startTarget(t, "web", cfg)

	c := &Pollution{Addr: addr, Filter: "web", Requests: 10, Traffic: urlgen.New(9)}
	if _, err := c.Run(); err == nil {
		t.Fatal("campaign against a hardened target succeeded; it must refuse (no seed published)")
	}
}
