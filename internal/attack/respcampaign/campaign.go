// Package respcampaign re-runs the chosen-insertion pollution campaign of
// internal/attack over the binary RESP plane, through a pipelined
// multi-connection client. It lives beside the attack package rather than in
// it because attack is imported by cachedigest (and transitively by
// service), while the RESP protocol package is the service's wire plane —
// the campaign is the one place both ends of that chain meet.
package respcampaign

import (
	"fmt"
	"strconv"
	"time"

	"evilbloom/internal/attack"
	"evilbloom/internal/hashes"
	"evilbloom/internal/resp"
)

// Pollution drives the §4.1 chosen-insertion campaign over the
// binary RESP plane: the same shadow-view forging as the HTTP campaign, but
// insertions ship as pipelined BF.MADD batches striped round-robin across
// several connections, each kept one batch in flight. This is the wire-speed
// attacker the paper's threat model actually worries about — the JSON plane
// throttles her at transport cost long before the filter does.
type Pollution struct {
	// Addr is the server's RESP address (host:port).
	Addr string
	// Filter is the target filter name.
	Filter string
	// Conns is the number of concurrent connections (default 4).
	Conns int
	// Pipeline is the items per BF.MADD batch (default 64).
	Pipeline int
	// Requests is the total number of forged insertions to attempt.
	Requests int
	// PerItemBudget bounds candidate generation per forged item (0 takes
	// the forger default).
	PerItemBudget uint64
	// Traffic generates candidate items (e.g. urlgen).
	Traffic attack.Generator
}

// Report summarizes a campaign.
type Report struct {
	// Inserted counts items the server acknowledged.
	Inserted int
	// Busy counts items refused with -BUSY (rate limited).
	Busy int
	// ForgeAttempts is the candidate-generation work spent.
	ForgeAttempts uint64
	// ShadowWeight and ShadowFPR are the attacker's belief after the run.
	ShadowWeight uint64
	ShadowFPR    float64
	// ServerWeight, ServerCount and ServerFPR are the ground truth from
	// BF.INFO afterwards.
	ServerWeight uint64
	ServerCount  uint64
	ServerFPR    float64
	// Elapsed is the campaign wall time; InsertsPerSec the acknowledged
	// insertion rate (forging cost included).
	Elapsed       time.Duration
	InsertsPerSec float64
}

// respInfo is the subset of BF.INFO the adversary needs.
type respInfo struct {
	mode      string
	shards    int64
	k         int64
	shardBits int64
	weight    int64
	count     int64
	fpr       float64
	seed      *int64
}

func fetchRESPInfo(cli *resp.Client, filter string) (*respInfo, error) {
	reply, err := cli.Do("BF.INFO", filter)
	if err != nil {
		return nil, err
	}
	if err := reply.Err(); err != nil {
		return nil, fmt.Errorf("respcampaign: BF.INFO: %w", err)
	}
	info := &respInfo{}
	for i := 0; i+1 < len(reply.Elems); i += 2 {
		key, val := reply.Elems[i].Str, &reply.Elems[i+1]
		switch key {
		case "mode":
			info.mode = val.Str
		case "shards":
			info.shards = val.Int
		case "k":
			info.k = val.Int
		case "shard_bits":
			info.shardBits = val.Int
		case "weight":
			info.weight = val.Int
		case "count":
			info.count = val.Int
		case "estimated_fpr":
			info.fpr, _ = strconv.ParseFloat(val.Str, 64)
		case "seed":
			s := val.Int
			info.seed = &s
		}
	}
	return info, nil
}

// respMADDSink implements Inserter over pipelined BF.MADD batches. Items
// accumulate until Pipeline is reached, then flush on the next connection
// round-robin; a connection's previous batch is collected just before it is
// reused, so up to len(clients) batches ride the network at once. The
// shadow is updated optimistically at forge time — exact while the server
// accepts; -BUSY refusals are counted and leave the shadow ahead of the
// server (the throttled attacker's actual predicament: her model degrades).
type respMADDSink struct {
	clients  []*resp.Client
	sizes    [][]int // per-connection queue of in-flight batch sizes
	next     int
	filter   string
	pipeline int
	view     *attack.RemoteView
	buf      [][]byte
	inserted int
	busy     int
	err      error
}

// Add implements Inserter.
func (t *respMADDSink) Add(item []byte) {
	if t.err != nil {
		return
	}
	t.view.Observe(item)
	t.buf = append(t.buf, item)
	if len(t.buf) >= t.pipeline {
		t.flush()
	}
}

func (t *respMADDSink) flush() {
	if len(t.buf) == 0 || t.err != nil {
		return
	}
	i := t.next
	t.next = (t.next + 1) % len(t.clients)
	cli := t.clients[i]
	// Collect the reply of this connection's previous batch before reusing
	// it: one batch in flight per connection, no reply-order bookkeeping.
	if cli.Pending() > 0 {
		t.collect(i)
	}
	cli.SendItems("BF.MADD", t.filter, t.buf)
	if err := cli.Flush(); err != nil {
		t.err = err
		return
	}
	t.sizes[i] = append(t.sizes[i], len(t.buf))
	t.buf = t.buf[:0]
}

func (t *respMADDSink) collect(i int) {
	reply, err := t.clients[i].Receive()
	if err != nil {
		t.err = err
		return
	}
	n := t.sizes[i][0]
	t.sizes[i] = t.sizes[i][1:]
	switch {
	case reply.IsBusy():
		t.busy += n
	case reply.Err() != nil:
		t.err = fmt.Errorf("respcampaign: BF.MADD: %w", reply.Err())
	default:
		t.inserted += n
	}
}

func (t *respMADDSink) drain() {
	for i, cli := range t.clients {
		for cli.Pending() > 0 && t.err == nil {
			t.collect(i)
		}
	}
}

// Run executes the campaign: fetch the target's public parameters over
// RESP, build the shadow view (naive single-shard targets only, exactly the
// HTTP campaign's threat model), then forge and insert Requests items
// through the pipelined multi-connection sink.
func (c *Pollution) Run() (*Report, error) {
	conns := c.Conns
	if conns <= 0 {
		conns = 4
	}
	pipeline := c.Pipeline
	if pipeline <= 0 {
		pipeline = 64
	}
	if c.Traffic == nil {
		return nil, fmt.Errorf("respcampaign: Pollution needs a Traffic generator")
	}

	clients := make([]*resp.Client, conns)
	for i := range clients {
		cli, err := resp.Dial(c.Addr)
		if err != nil {
			for _, open := range clients[:i] {
				open.Close()
			}
			return nil, err
		}
		clients[i] = cli
	}
	defer func() {
		for _, cli := range clients {
			cli.Close()
		}
	}()

	info, err := fetchRESPInfo(clients[0], c.Filter)
	if err != nil {
		return nil, err
	}
	if info.seed == nil {
		return nil, fmt.Errorf("respcampaign: server mode %q publishes no seed; indexes are not predictable", info.mode)
	}
	if info.shards != 1 {
		return nil, fmt.Errorf("respcampaign: shadow view needs a single-shard target, server has %d (routing is keyed)", info.shards)
	}
	fam, err := hashes.NewDoubleHashing(int(info.k), uint64(info.shardBits), uint64(*info.seed))
	if err != nil {
		return nil, err
	}
	view := attack.NewRemoteView(nil, fam)

	sink := &respMADDSink{
		clients:  clients,
		sizes:    make([][]int, conns),
		filter:   c.Filter,
		pipeline: pipeline,
		view:     view,
	}
	adv := attack.NewChosenInsertion(view, sink, view, c.Traffic)

	start := time.Now()
	if _, err := adv.PolluteGreedy(c.Requests, c.PerItemBudget); err != nil {
		return nil, err
	}
	sink.flush()
	sink.drain()
	if sink.err != nil {
		return nil, sink.err
	}
	elapsed := time.Since(start)

	after, err := fetchRESPInfo(clients[0], c.Filter)
	if err != nil {
		return nil, err
	}
	return &Report{
		Inserted:      sink.inserted,
		Busy:          sink.busy,
		ForgeAttempts: adv.Forger().Attempts,
		ShadowWeight:  view.Weight(),
		ShadowFPR:     view.EstimatedFPR(),
		ServerWeight:  uint64(after.weight),
		ServerCount:   uint64(after.count),
		ServerFPR:     after.fpr,
		Elapsed:       elapsed,
		InsertsPerSec: float64(sink.inserted) / elapsed.Seconds(),
	}, nil
}
