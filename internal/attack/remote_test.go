package attack_test

import (
	"net/http/httptest"
	"testing"

	"evilbloom/internal/attack"
	"evilbloom/internal/hashes"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// fig3Geometry is the paper's Fig 3 filter (m=3200, k=4) served live.
func fig3Geometry(mode service.Mode, shards int) service.Config {
	return service.Config{
		Shards:    shards,
		ShardBits: 3200,
		HashCount: 4,
		Mode:      mode,
		Seed:      7,
		Key:       []byte("0123456789abcdef"),
		RouteKey:  []byte("fedcba9876543210"),
	}
}

// startServer brings up a live filter service for the adversary to attack.
func startServer(t *testing.T, cfg service.Config) (*httptest.Server, *attack.RemoteClient) {
	t.Helper()
	store, err := service.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewServer(store))
	t.Cleanup(ts.Close)
	return ts, attack.NewRemoteClient(ts.URL, nil)
}

// remoteCampaign runs the Fig 3 pollution campaign (600 chosen insertions)
// against a live server and returns the server's own post-attack FPR
// estimate — the ground truth, independent of the adversary's beliefs.
func remoteCampaign(t *testing.T, client *attack.RemoteClient, view *attack.RemoteView) float64 {
	t.Helper()
	adv := attack.NewChosenInsertion(view, view, view, urlgen.New(2))
	if _, err := adv.PolluteN(600, 0); err != nil {
		t.Fatalf("pollution campaign: %v", err)
	}
	if err := view.Err(); err != nil {
		t.Fatalf("transport during campaign: %v", err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 600 {
		t.Fatalf("server counted %d insertions, want 600", st.Count)
	}
	return st.FPR
}

// The acceptance scenario: the paper's chosen-insertion attack, run over
// HTTP against a live naive-mode server, reproduces the Fig 3 adversarial
// FPR (≈0.316 after 600 insertions, vs ≈0.077 for random insertions); the
// identical campaign against a hardened-mode server is blunted back to the
// random-insertion level.
func TestRemotePollutionNaiveVsHardened(t *testing.T) {
	// Naive: the adversary reconstructs the index family from the server's
	// published parameters alone.
	_, naiveClient := startServer(t, fig3Geometry(service.ModeNaive, 1))
	naiveView, err := attack.NewRemoteViewFromInfo(naiveClient)
	if err != nil {
		t.Fatalf("building view from public info: %v", err)
	}
	naiveFPR := remoteCampaign(t, naiveClient, naiveView)

	// Hardened: the same server geometry with keyed SipHash. The public
	// info publishes no seed, so the from-info constructor must refuse...
	_, hardClient := startServer(t, fig3Geometry(service.ModeHardened, 1))
	if _, err := attack.NewRemoteViewFromInfo(hardClient); err == nil {
		t.Fatal("hardened server let the adversary reconstruct its family from /v1/info")
	}
	// ...and an adversary who assumes the dablooms default anyway gets
	// nothing for her trouble.
	guess, err := hashes.NewDoubleHashing(4, 3200, 7)
	if err != nil {
		t.Fatal(err)
	}
	hardFPR := remoteCampaign(t, hardClient, attack.NewRemoteView(hardClient, guess))

	t.Logf("post-campaign server FPR: naive=%.4f (paper 0.316), hardened=%.4f (random ≈0.077)", naiveFPR, hardFPR)
	if naiveFPR < 0.30 {
		t.Errorf("naive server FPR %.4f, want ≥0.30 (paper: 0.316)", naiveFPR)
	}
	if hardFPR > 0.12 {
		t.Errorf("hardened server FPR %.4f, want ≤0.12 (random insertions: ≈0.077)", hardFPR)
	}
	if naiveFPR < 2.5*hardFPR {
		t.Errorf("hardening blunted the attack only from %.4f to %.4f", naiveFPR, hardFPR)
	}
}

// Sharding does not blunt the naive-mode attack (the shards share the public
// family, so shadow-fresh items set k fresh bits wherever the keyed router
// sends them): after n polluting insertions the aggregate weight is exactly
// n·k, with zero server-side collisions.
func TestRemotePollutionCrossesShards(t *testing.T) {
	_, client := startServer(t, fig3Geometry(service.ModeNaive, 4))
	view, err := attack.NewRemoteViewFromInfo(client)
	if err != nil {
		t.Fatal(err)
	}
	adv := attack.NewChosenInsertion(view, view, view, urlgen.New(3))
	const n = 150
	if _, err := adv.PolluteN(n, 0); err != nil {
		t.Fatal(err)
	}
	if err := view.Err(); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight != n*4 {
		t.Errorf("aggregate weight %d after %d polluting insertions, want exactly %d", st.Weight, n, n*4)
	}
}

// The client must surface server-side rejections and transport failures.
func TestRemoteClientErrors(t *testing.T) {
	_, client := startServer(t, fig3Geometry(service.ModeNaive, 1))
	if err := client.Add(nil); err == nil {
		t.Error("empty item accepted")
	}
	dead := attack.NewRemoteClient("http://127.0.0.1:1", nil)
	if _, err := dead.Info(); err == nil {
		t.Error("unreachable server produced no error")
	}
	view := attack.NewRemoteView(dead, mustFamily(t))
	view.Add([]byte("x"))
	if view.Err() == nil {
		t.Error("transport failure not latched in Err")
	}
	if view.Count() != 0 {
		t.Error("failed Add counted as an insertion")
	}
}

// RemoteClient round trip: adds are visible to tests and batch agrees with
// singleton.
func TestRemoteClientRoundTrip(t *testing.T) {
	_, client := startServer(t, fig3Geometry(service.ModeHardened, 2))
	items := [][]byte{[]byte("http://a.example/1"), []byte("http://a.example/2")}
	if err := client.AddBatch(items); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		ok, err := client.Test(it)
		if err != nil || !ok {
			t.Errorf("Test(%q) = %v, %v", it, ok, err)
		}
	}
	got, err := client.TestBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range got {
		if !ok {
			t.Errorf("batch test %d reported absent", i)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 2 {
		t.Errorf("Count = %d, want 2", st.Count)
	}
}

func mustFamily(t *testing.T) *hashes.DoubleHashing {
	t.Helper()
	fam, err := hashes.NewDoubleHashing(4, 3200, 7)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}
