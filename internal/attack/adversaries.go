package attack

import (
	"fmt"

	"evilbloom/internal/core"
)

// Inserter is the trusted party the chosen-insertion adversary tricks into
// adding her items (a crawler visiting her link farm, an anti-phishing feed
// ingesting her URLs, a proxy fetching her pages).
type Inserter interface {
	Add(item []byte)
}

// PollutionPoint records the filter state after one adversarial insertion,
// the series plotted in Fig 3.
type PollutionPoint struct {
	// Inserted is the total insertions so far (honest + adversarial).
	Inserted uint64
	// Attempts is the cumulative number of candidates the adversary tried.
	Attempts uint64
	// Weight is the filter's Hamming weight.
	Weight uint64
	// FPR is the estimated false-positive probability (W/m)^k.
	FPR float64
}

// Weigher exposes the filter state the campaign records. All core filter
// types implement it.
type Weigher interface {
	Weight() uint64
	EstimatedFPR() float64
	Count() uint64
}

// ChosenInsertion is the §4.1 adversary: she forges items that each set k
// previously-unset bits and has the trusted party insert them, driving the
// false-positive probability to (nk/m)^k instead of eq (1).
type ChosenInsertion struct {
	forger *Forger
	view   View
	sink   Inserter
	state  Weigher
}

// NewChosenInsertion wires the adversary to a filter under attack. view and
// state must observe the same filter that sink inserts into.
func NewChosenInsertion(view View, sink Inserter, state Weigher, gen Generator) *ChosenInsertion {
	return &ChosenInsertion{forger: NewForger(view, gen), view: view, sink: sink, state: state}
}

// Forger exposes the underlying forger for attempt accounting.
func (a *ChosenInsertion) Forger() *Forger { return a.forger }

// PolluteN forges and inserts n polluting items, returning one point per
// insertion. perItemBudget bounds the candidate search per item (0 =
// unbounded).
func (a *ChosenInsertion) PolluteN(n int, perItemBudget uint64) ([]PollutionPoint, error) {
	points := make([]PollutionPoint, 0, n)
	for i := 0; i < n; i++ {
		item, _, err := a.forger.ForgePolluting(perItemBudget)
		if err != nil {
			return points, fmt.Errorf("attack: polluting item %d: %w", i, err)
		}
		a.sink.Add(item)
		points = append(points, PollutionPoint{
			Inserted: a.state.Count(),
			Attempts: a.forger.Attempts,
			Weight:   a.state.Weight(),
			FPR:      a.state.EstimatedFPR(),
		})
	}
	return points, nil
}

// Saturate pollutes until every position is occupied — the §4.1 saturation
// attack needing only ≈⌊m/k⌋ items instead of the honest m·log(m)/k. While
// strictly-polluting items (condition 6) remain findable within the
// per-item budget they are used (one item per k bits); towards full
// saturation the forger greedily takes the candidate setting the most fresh
// bits, so the attack terminates with a small item overhead.
// perItemBudget = 0 selects a default of 20000 candidates per item.
func (a *ChosenInsertion) Saturate(perItemBudget uint64) (uint64, error) {
	if perItemBudget == 0 {
		perItemBudget = 20000
	}
	var inserted uint64
	m := a.view.M()
	for {
		w := a.state.Weight()
		if w >= m {
			return inserted, nil
		}
		item, err := a.forgeBestFresh(perItemBudget)
		if err != nil {
			return inserted, fmt.Errorf("attack: saturation stalled at weight %d/%d: %w", w, m, err)
		}
		a.sink.Add(item)
		inserted++
	}
}

// PolluteGreedy forges and inserts n best-effort polluting items: strictly
// polluting (condition 6, k fresh bits) while such items remain findable
// within the per-item budget, otherwise the candidate setting the most
// fresh bits. This is the §7 digest regime: a cache digest is small enough
// that a strict campaign exhausts the free positions mid-run, and the
// adversary's goal is weight, not per-item perfection. The campaign ends
// early — without error — once the filter view is saturated, since no
// further insertion can pollute anything. perItemBudget = 0 selects the
// Saturate default of 20000 candidates per item.
func (a *ChosenInsertion) PolluteGreedy(n int, perItemBudget uint64) ([]PollutionPoint, error) {
	if perItemBudget == 0 {
		perItemBudget = 20000
	}
	points := make([]PollutionPoint, 0, n)
	for i := 0; i < n; i++ {
		item, err := a.forgeBestFresh(perItemBudget)
		if err != nil {
			if a.state.Weight() >= a.view.M() {
				return points, nil // saturated: every position set, nothing to pollute
			}
			return points, fmt.Errorf("attack: greedy polluting item %d: %w", i, err)
		}
		a.sink.Add(item)
		points = append(points, PollutionPoint{
			Inserted: a.state.Count(),
			Attempts: a.forger.Attempts,
			Weight:   a.state.Weight(),
			FPR:      a.state.EstimatedFPR(),
		})
	}
	return points, nil
}

// forgeBestFresh returns the first candidate meeting the strict pollution
// condition, or — if the budget runs out first — the candidate that set the
// most previously-unset bits. It fails only if every candidate was a full
// false positive.
func (a *ChosenInsertion) forgeBestFresh(budget uint64) ([]byte, error) {
	var best []byte
	bestFresh := 0
	scratch := make([]uint64, 0, a.view.K())
	for tried := uint64(0); tried < budget; tried++ {
		item := a.forger.gen.Next()
		a.forger.Attempts++
		scratch = a.view.Indexes(scratch[:0], item)
		if IsPolluting(a.view, scratch) {
			a.forger.Forged++
			return item, nil
		}
		fresh := 0
		for i, x := range scratch {
			if !a.view.OccupiedAt(i, x) {
				fresh++
			}
		}
		if fresh > bestFresh {
			bestFresh = fresh
			best = item
		}
	}
	if bestFresh == 0 {
		return nil, fmt.Errorf("%w: no candidate touched a free position in %d tries", ErrBudgetExhausted, budget)
	}
	a.forger.Forged++
	return best, nil
}

// QueryOnly is the §4.2 adversary: she cannot insert, but knows the filter
// state and crafts queries that either hit (false-positive flooding against
// the backing store) or walk k−1 set bits before missing (worst-case
// latency).
type QueryOnly struct {
	forger *Forger
}

// NewQueryOnly wires the adversary to a filter view.
func NewQueryOnly(view View, gen Generator) *QueryOnly {
	return &QueryOnly{forger: NewForger(view, gen)}
}

// Forger exposes the underlying forger for attempt accounting.
func (a *QueryOnly) Forger() *Forger { return a.forger }

// FalsePositives forges n distinct false-positive items (ghost URLs in the
// Scrapy attack, unnecessary sibling hits in the Squid attack).
func (a *QueryOnly) FalsePositives(n int, perItemBudget uint64) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		item, _, err := a.forger.ForgeFalsePositive(perItemBudget)
		if err != nil {
			return out, fmt.Errorf("attack: false positive %d: %w", i, err)
		}
		out = append(out, item)
	}
	return out, nil
}

// ExpensiveQueries forges n queries reaching the worst-case execution time.
func (a *QueryOnly) ExpensiveQueries(n int, perItemBudget uint64) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		item, _, err := a.forger.ForgeExpensiveQuery(perItemBudget)
		if err != nil {
			return out, fmt.Errorf("attack: expensive query %d: %w", i, err)
		}
		out = append(out, item)
	}
	return out, nil
}

// Deletion is the §4.3 adversary against counting filters: she forges items
// the filter believes present (false positives) whose index sets overlap the
// victim's, then has them "deleted", driving the victim's counters to zero.
type Deletion struct {
	forger *Forger
	view   View
	filter *core.Counting
}

// NewDeletion wires the adversary to a counting filter.
func NewDeletion(filter *core.Counting, gen Generator) *Deletion {
	view := NewCountingView(filter)
	return &Deletion{forger: NewForger(view, gen), view: view, filter: filter}
}

// Forger exposes the underlying forger for attempt accounting.
func (a *Deletion) Forger() *Forger { return a.forger }

// Evict makes victim disappear from the filter: it repeatedly forges a
// false-positive item whose index set contains the victim position with the
// smallest counter and removes it, until some victim counter reaches zero.
// It returns the forged items that were removed. perItemBudget bounds each
// search; maxRemovals guards against pathological loops.
func (a *Deletion) Evict(victim []byte, perItemBudget uint64, maxRemovals int) ([][]byte, error) {
	victimIdx := a.view.Indexes(nil, victim)
	removed := make([][]byte, 0, 8)
	for r := 0; r < maxRemovals; r++ {
		target, ok := a.weakestCounter(victimIdx)
		if !ok {
			return removed, nil // some victim counter already zero: evicted
		}
		item, _, err := a.forger.search(perItemBudget, func(idx []uint64) bool {
			if !IsFalsePositive(a.view, idx) {
				return false
			}
			for _, x := range idx {
				if x == target {
					return true
				}
			}
			return false
		})
		if err != nil {
			return removed, fmt.Errorf("attack: evicting %q: %w", victim, err)
		}
		if err := a.filter.Remove(item); err != nil {
			return removed, fmt.Errorf("attack: trusted party refused removal: %w", err)
		}
		removed = append(removed, item)
		if !a.filter.TestIndexes(victimIdx) {
			return removed, nil
		}
	}
	return removed, fmt.Errorf("attack: victim still present after %d removals", maxRemovals)
}

// weakestCounter returns the victim position with the smallest non-zero
// counter; ok is false when a victim counter is already zero.
func (a *Deletion) weakestCounter(victimIdx []uint64) (uint64, bool) {
	var best uint64
	bestVal := a.filter.CounterMax() + 1
	for _, x := range victimIdx {
		v := a.filter.Counter(x)
		if v == 0 {
			return 0, false
		}
		if v < bestVal {
			bestVal = v
			best = x
		}
	}
	return best, true
}
