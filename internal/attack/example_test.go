package attack_test

import (
	"fmt"
	"log"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

// ExampleChosenInsertion runs one pollution campaign (§4.1): the adversary
// forges URLs whose indexes all land on unset bits, so each of her n
// insertions sets exactly k fresh bits and the false-positive probability
// climbs to (nk/m)^k — the paper's Fig 3 endpoint — instead of eq (1)'s
// 0.077 for random insertions.
func ExampleChosenInsertion() {
	// The paper's exact Fig 3 geometry: m = 3200 bits, k = 4.
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		log.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, 4, 3200)
	if err != nil {
		log.Fatal(err)
	}
	filter := core.NewBloom(fam)
	adv := attack.NewChosenInsertion(attack.NewBloomView(filter), filter, filter, urlgen.New(1))
	points, err := adv.PolluteN(600, 0)
	if err != nil {
		log.Fatal(err)
	}
	last := points[len(points)-1]
	fmt.Printf("after %d chosen insertions: weight=%d, FPR=%.4f (random would give 0.0778)\n",
		last.Inserted, last.Weight, last.FPR)
	// Output:
	// after 600 chosen insertions: weight=2400, FPR=0.3164 (random would give 0.0778)
}
