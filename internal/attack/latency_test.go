package attack

import (
	"testing"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

// probesUntilReject counts how many bit lookups a short-circuiting query
// performs: position of the first unset bit (or k when all are set).
func probesUntilReject(view View, idx []uint64) int {
	for i, x := range idx {
		if !view.OccupiedAt(i, x) {
			return i + 1
		}
	}
	return len(idx)
}

// §4.2's dummy-query attack: crafted negative queries probe all k positions
// before failing, while random negative queries bail out after ~1/(1−fill)
// probes — the worst-case execution time gap the adversary forces on
// "applications with very large Bloom filters".
func TestExpensiveQueriesMaximizeProbes(t *testing.T) {
	const m, k = 1 << 16, 8
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, k, m)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBloom(fam)
	gen := urlgen.New(1)
	for b.Fill() < 0.5 {
		b.Add(gen.Next())
	}
	view := NewBloomView(b)

	// Random negative queries: expected probes ≈ Σ fill^i ≈ 2 at fill 0.5.
	probe := urlgen.New(2)
	var idx []uint64
	totalRandom, negatives := 0, 0
	for negatives < 2000 {
		idx = view.Indexes(idx[:0], probe.Next())
		p := probesUntilReject(view, idx)
		if p < k || !IsFalsePositive(view, idx) {
			totalRandom += p
			negatives++
		}
	}
	avgRandom := float64(totalRandom) / float64(negatives)

	// Crafted expensive queries always cost k probes.
	adv := NewQueryOnly(view, urlgen.New(3))
	crafted, err := adv.ExpensiveQueries(50, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range crafted {
		idx = view.Indexes(idx[:0], item)
		if p := probesUntilReject(view, idx); p != k {
			t.Fatalf("crafted query probed %d bits, want %d", p, k)
		}
	}
	if avgRandom > float64(k)/2 {
		t.Errorf("random negatives probe %.2f bits on average — no gap to exploit", avgRandom)
	}
	t.Logf("random negative: %.2f probes; crafted: %d probes (%.1fx worst-case amplification)",
		avgRandom, k, float64(k)/avgRandom)
}

// Saturation's end state is the LOAF failure mode from §4: an all-ones
// filter answers "present" for everything — the trivial whitelist-bypass
// the paper opens the adversary-model section with.
func TestSaturatedFilterAcceptsEverything(t *testing.T) {
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBloom(fam)
	b.Bits().SetAll()
	gen := urlgen.New(4)
	for i := 0; i < 1000; i++ {
		if !b.Test(gen.Next()) {
			t.Fatal("saturated filter rejected an item")
		}
	}
	if b.EstimatedFPR() != 1 {
		t.Errorf("saturated FPR = %v", b.EstimatedFPR())
	}
}
