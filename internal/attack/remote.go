package attack

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"evilbloom/internal/bitset"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// RemoteClient speaks the evilbloom serve HTTP/JSON protocol (package
// service's Server) from the attacker's side of the wire. It deliberately
// uses nothing but the public endpoints: everything the adversary learns,
// she learns the way a real client would. The zero-argument constructor
// targets the v1 shim (the registry's default filter); ForFilter scopes the
// same client to a named /v2 filter.
type RemoteClient struct {
	base   string
	prefix string // "/v1" or "/v2/filters/{name}"
	hc     *http.Client
	// identity, when non-empty, is sent as X-Evilbloom-Client on every
	// request — the self-declared identity a -trust-proxy server charges
	// mutations to. See WithIdentity.
	identity string
}

// NewRemoteClient targets an evilbloom serve instance at base (e.g.
// "http://127.0.0.1:8379") through the /v1 shim. hc may be nil for
// http.DefaultClient.
func NewRemoteClient(base string, hc *http.Client) *RemoteClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &RemoteClient{base: base, prefix: "/v1", hc: hc}
}

// Base returns the server base URL this client targets — the string a
// mesh's peer-status rows report as the sibling's identity.
func (c *RemoteClient) Base() string { return c.base }

// ForFilter returns a client for the named filter's /v2 endpoints, sharing
// the transport (and identity, if any).
func (c *RemoteClient) ForFilter(name string) *RemoteClient {
	return &RemoteClient{base: c.base, prefix: "/v2/filters/" + name, hc: c.hc, identity: c.identity}
}

// WithIdentity returns a client that self-identifies as id on every request
// via the X-Evilbloom-Client header. A server running with -trust-proxy
// charges that identity's mutation budget and reports it on the clients
// accounting endpoint; other servers ignore the header and charge the
// transport peer address.
func (c *RemoteClient) WithIdentity(id string) *RemoteClient {
	cp := *c
	cp.identity = id
	return &cp
}

// RemoteInfo is a served filter's public self-description (/v1/info or
// /v2/filters/{name}/info): the threat model's "the implementation of the
// Bloom filter is public and known". In naive mode Seed is published; in
// hardened mode it is absent. The v2-only fields (variant, counter width,
// overflow, capabilities) stay zero against the v1 shim.
type RemoteInfo struct {
	Mode         string   `json:"mode"`
	Variant      string   `json:"variant"`
	Shards       int      `json:"shards"`
	K            int      `json:"k"`
	ShardBits    uint64   `json:"shard_bits"`
	Algorithm    string   `json:"algorithm"`
	Seed         *uint64  `json:"seed"`
	CounterWidth int      `json:"counter_width"`
	Overflow     string   `json:"overflow"`
	Capabilities []string `json:"capabilities"`
}

// RemoteStats is the slice of /v1/stats the attack experiments read back:
// the server's own ground-truth estimate of the damage.
type RemoteStats struct {
	Count  uint64  `json:"count"`
	Weight uint64  `json:"weight"`
	Fill   float64 `json:"fill"`
	FPR    float64 `json:"estimated_fpr"`
}

// Info fetches the filter's public parameters.
func (c *RemoteClient) Info() (*RemoteInfo, error) {
	var info RemoteInfo
	if err := c.get(c.prefix+"/info", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stats fetches the filter's aggregate statistics.
func (c *RemoteClient) Stats() (*RemoteStats, error) {
	var st RemoteStats
	if err := c.get(c.prefix+"/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Add inserts one item through the public add endpoint.
func (c *RemoteClient) Add(item []byte) error {
	return c.post(c.prefix+"/add", map[string]string{"item": string(item)}, nil)
}

// AddBatch inserts items through the batch endpoint.
func (c *RemoteClient) AddBatch(items [][]byte) error {
	return c.post(c.prefix+"/add-batch", map[string][]string{"items": toStrings(items)}, nil)
}

// Test queries one item's membership.
func (c *RemoteClient) Test(item []byte) (bool, error) {
	var resp struct {
		Present bool `json:"present"`
	}
	if err := c.post(c.prefix+"/test", map[string]string{"item": string(item)}, &resp); err != nil {
		return false, err
	}
	return resp.Present, nil
}

// TestBatch queries a batch, results in input order.
func (c *RemoteClient) TestBatch(items [][]byte) ([]bool, error) {
	var resp struct {
		Present []bool `json:"present"`
	}
	if err := c.post(c.prefix+"/test-batch", map[string][]string{"items": toStrings(items)}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Present) != len(items) {
		return nil, fmt.Errorf("attack: server answered %d results for %d items", len(resp.Present), len(items))
	}
	return resp.Present, nil
}

// Remove asks the server to delete one item (a /v2 counting-filter
// endpoint). It reports whether the server accepted: refusals — the filter
// believes the item absent (409) — return (false, nil), because a refusal
// is a normal, informative outcome for the §4.3 adversary probing what the
// server believes. Capability rejections and transport failures error.
func (c *RemoteClient) Remove(item []byte) (bool, error) {
	path := c.prefix + "/remove"
	buf, err := json.Marshal(map[string]string{"item": string(item)})
	if err != nil {
		return false, fmt.Errorf("attack: encoding %s request: %w", path, err)
	}
	resp, err := c.do(http.MethodPost, path, buf)
	if err != nil {
		return false, err
	}
	if resp.StatusCode == http.StatusConflict {
		resp.Body.Close()
		return false, nil
	}
	return true, decodeRemote(resp, path, nil)
}

// RemoveBatch asks the server to delete a batch, returning per-item
// acceptance in input order (refused items are false).
func (c *RemoteClient) RemoveBatch(items [][]byte) ([]bool, error) {
	var resp struct {
		Removed []bool `json:"removed"`
	}
	if err := c.post(c.prefix+"/remove-batch", map[string][]string{"items": toStrings(items)}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Removed) != len(items) {
		return nil, fmt.Errorf("attack: server answered %d results for %d items", len(resp.Removed), len(items))
	}
	return resp.Removed, nil
}

func toStrings(items [][]byte) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = string(it)
	}
	return out
}

func (c *RemoteClient) get(path string, out any) error {
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return decodeRemote(resp, path, out)
}

func (c *RemoteClient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("attack: encoding %s request: %w", path, err)
	}
	resp, err := c.do(http.MethodPost, path, buf)
	if err != nil {
		return err
	}
	return decodeRemote(resp, path, out)
}

// do issues one request with the client's standing headers applied.
func (c *RemoteClient) do(method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("attack: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.identity != "" {
		req.Header.Set("X-Evilbloom-Client", c.identity)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("attack: %s %s: %w", method, path, err)
	}
	return resp, nil
}

func decodeRemote(resp *http.Response, path string, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("attack: %s answered %d: %s", path, resp.StatusCode, msg)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("attack: decoding %s response: %w", path, err)
	}
	return nil
}

// RemoteView adapts a live filter server to the adversary's View, turning
// the paper's in-process pollution attacks into client-vs-server scenarios.
//
// The adversary cannot read the server's bits, so the view is a shadow
// model: she assumes the published (naive-mode) index family, computes every
// candidate's indexes locally, and records the positions of the items she
// has inserted in a private bit vector. Against a naive server the shadow is
// exact up to shard multiplexing — an item whose indexes are fresh in the
// shadow sets k fresh bits in whichever shard the keyed router picks,
// because every shard shares the public family — so condition (6) holds and
// the campaign drives the compound FPR like Fig 3. Against a hardened
// server the same shadow is fiction: the server's keyed family scatters her
// carefully-chosen items uniformly, and the campaign degrades into random
// insertions (the §8.2 countermeasure doing its job).
//
// RemoteView implements View, Inserter and Weigher, so it plugs straight
// into ChosenInsertion; Weigher reports the shadow's view of the damage,
// while RemoteClient.Stats reads the server's ground truth for comparison.
type RemoteView struct {
	client *RemoteClient
	fam    hashes.IndexFamily
	shadow *bitset.BitSet
	count  uint64
	err    error
}

var (
	_ View     = (*RemoteView)(nil)
	_ Inserter = (*RemoteView)(nil)
	_ Weigher  = (*RemoteView)(nil)
)

// NewRemoteView builds the adversary's shadow view of the server behind
// client, deriving indexes from fam — normally the family reconstructed
// from the published /v1/info or /v2/filters/{name}/info parameters (see
// NewRemoteViewFromInfo).
func NewRemoteView(client *RemoteClient, fam hashes.IndexFamily) *RemoteView {
	return &RemoteView{client: client, fam: fam, shadow: bitset.New(fam.M())}
}

// NewRemoteViewFromInfo fetches the server's public parameters and builds
// the shadow view the paper's threat model grants: it succeeds only against
// a naive-mode server, whose index derivation is fully public. Against a
// hardened server it fails — which is the point; to model an adversary who
// *guesses* anyway, build a family by hand and use NewRemoteView.
func NewRemoteViewFromInfo(client *RemoteClient) (*RemoteView, error) {
	info, err := client.Info()
	if err != nil {
		return nil, err
	}
	if info.Seed == nil {
		return nil, fmt.Errorf("attack: server mode %q publishes no seed; indexes are not predictable", info.Mode)
	}
	fam, err := hashes.NewDoubleHashing(info.K, info.ShardBits, *info.Seed)
	if err != nil {
		return nil, err
	}
	return NewRemoteView(client, fam), nil
}

// Indexes implements View using the assumed-public family.
func (v *RemoteView) Indexes(dst []uint64, item []byte) []uint64 {
	return v.fam.Indexes(dst, item)
}

// OccupiedAt implements View against the shadow state.
func (v *RemoteView) OccupiedAt(_ int, idx uint64) bool { return v.shadow.Test(idx) }

// Partitioned implements View.
func (v *RemoteView) Partitioned() bool { return false }

// K implements View.
func (v *RemoteView) K() int { return v.fam.K() }

// M implements View.
func (v *RemoteView) M() uint64 { return v.fam.M() }

// Add implements Inserter: the forged item goes to the live server and its
// (assumed) positions are recorded in the shadow. Transport errors are
// latched in Err, since the Inserter interface has nowhere to report them.
func (v *RemoteView) Add(item []byte) {
	if v.err != nil {
		return
	}
	if err := v.client.Add(item); err != nil {
		v.err = err
		return
	}
	v.Observe(item)
}

// Observe folds item's assumed positions into the shadow without touching
// the server — for insertions known to have landed through another channel.
// The throttled campaign uses it to mirror only *accepted* adds: a 429'd
// item never reached the filter, so recording it would corrupt the shadow.
func (v *RemoteView) Observe(item []byte) {
	idx := v.fam.Indexes(make([]uint64, 0, v.fam.K()), item)
	for _, i := range idx {
		v.shadow.Set(i)
	}
	v.count++
}

// Err returns the first transport error hit by Add, if any.
func (v *RemoteView) Err() error { return v.err }

// Weight implements Weigher over the shadow model.
func (v *RemoteView) Weight() uint64 { return v.shadow.Weight() }

// Count implements Weigher.
func (v *RemoteView) Count() uint64 { return v.count }

// EstimatedFPR implements Weigher: (W/m)^k over the shadow — what the
// adversary believes she has achieved. The server's stats endpoint is the
// ground truth that confirms (naive) or refutes (hardened) the belief.
func (v *RemoteView) EstimatedFPR() float64 {
	return core.FPForgeryProbability(v.fam.M(), v.fam.K(), v.shadow.Weight())
}
