package attack

import (
	"fmt"
	"math/rand"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// InstantForger crafts items against Kirsch–Mitzenmacher families over
// MurmurHash3-128 (the dablooms construction) without any hash search: the
// digest is inverted in constant time (§6.2, "MurmurHash can be inverted in
// constant time"), so forging reduces to picking the two 64-bit digest
// halves (base, stride) that place all k indexes g_i = base + i·stride mod m
// wherever the adversary wants. Position selection costs only k array
// lookups per candidate pair — no hashing at all.
type InstantForger struct {
	k      int
	m      uint64
	seed   uint64
	prefix []byte
	rng    *rand.Rand
}

// NewInstantForger builds a forger for the family's geometry. prefix is
// prepended to every forged item and must be a multiple of 16 bytes (e.g.
// "http://evil.com/"); rngSeed makes position search deterministic.
func NewInstantForger(fam *hashes.DoubleHashing, prefix []byte, rngSeed int64) (*InstantForger, error) {
	if len(prefix)%16 != 0 {
		return nil, fmt.Errorf("attack: prefix length %d is not a multiple of 16", len(prefix))
	}
	p := make([]byte, len(prefix))
	copy(p, prefix)
	return &InstantForger{
		k:      fam.K(),
		m:      fam.M(),
		seed:   fam.Seed(),
		prefix: p,
		rng:    rand.New(rand.NewSource(rngSeed)),
	}, nil
}

// ItemFor forges an item whose index set is exactly
// {base + i·stride mod m : i < k}.
func (f *InstantForger) ItemFor(base, stride uint64) ([]byte, error) {
	return hashes.Murmur128PreimageIndexes(f.prefix, base, stride, f.m, f.seed)
}

// positions fills dst with the arithmetic progression for (base, stride),
// accumulated in reduced space to match DoubleHashing.Indexes.
func (f *InstantForger) positions(dst []uint64, base, stride uint64) []uint64 {
	g := base % f.m
	step := stride % f.m
	for i := 0; i < f.k; i++ {
		dst = append(dst, g)
		g += step
		if g >= f.m {
			g -= f.m
		}
	}
	return dst
}

// PollutingItem returns an item satisfying condition (6) against view,
// searching only over (base, stride) pairs — pure array lookups, then one
// constant-time inversion. pairBudget bounds the pairs examined (0 =
// unbounded).
func (f *InstantForger) PollutingItem(view View, pairBudget uint64) ([]byte, error) {
	base, stride, err := f.findPair(view, pairBudget, func(idx []uint64) bool {
		return IsPolluting(view, idx)
	})
	if err != nil {
		return nil, err
	}
	return f.ItemFor(base, stride)
}

// FalsePositiveItem returns an item satisfying condition (8) against view.
func (f *InstantForger) FalsePositiveItem(view View, pairBudget uint64) ([]byte, error) {
	base, stride, err := f.findPair(view, pairBudget, func(idx []uint64) bool {
		return IsFalsePositive(view, idx)
	})
	if err != nil {
		return nil, err
	}
	return f.ItemFor(base, stride)
}

func (f *InstantForger) findPair(view View, budget uint64, cond func([]uint64) bool) (uint64, uint64, error) {
	scratch := make([]uint64, 0, f.k)
	for tried := uint64(0); budget == 0 || tried < budget; tried++ {
		base := uint64(f.rng.Int63()) % f.m
		stride := uint64(f.rng.Int63()) % f.m
		scratch = f.positions(scratch[:0], base, stride)
		if cond(scratch) {
			return base, stride, nil
		}
	}
	return 0, 0, fmt.Errorf("%w after %d position pairs", ErrBudgetExhausted, budget)
}

// SecondPreimage forges an item with exactly the victim's index set — a
// Bloom-level second pre-image (probability 1/m^k for brute force, Table 1)
// obtained here in constant time. The victim's set must be an arithmetic
// progression, which every item of a Kirsch–Mitzenmacher family is.
func (f *InstantForger) SecondPreimage(victimIdx []uint64) ([]byte, error) {
	if len(victimIdx) != f.k {
		return nil, fmt.Errorf("attack: victim has %d indexes, family has k=%d", len(victimIdx), f.k)
	}
	base := victimIdx[0]
	var stride uint64
	if f.k > 1 {
		stride = (victimIdx[1] + f.m - victimIdx[0]) % f.m
	}
	// Verify the progression matches (it must, for items of this family).
	for i, v := range victimIdx {
		if (base+uint64(i)*stride)%f.m != v {
			return nil, fmt.Errorf("attack: victim index set is not an arithmetic progression at position %d", i)
		}
	}
	return f.ItemFor(base, stride)
}

// EmptyViaOverflow performs the §6.2 counter-overflow attack against a
// wrapping counting filter: it returns `inserts` items which, once added by
// the trusted party, leave every touched counter back at zero except at most
// one holding a = inserts·k mod 2^width. After a full stage capacity of such
// insertions the stage believes it is full while containing nothing — "a
// complete waste of memory".
//
// Mechanism: each crafted item uses stride 0, collapsing all k increments
// onto one counter; 2^width inserts of the same item wrap that counter back
// to zero (k odd ⇒ the walk visits all residues). Groups use distinct
// counters so the damage stays invisible between groups.
func (f *InstantForger) EmptyViaOverflow(c *core.Counting, inserts uint64) ([][]byte, error) {
	if c.K() != f.k || c.M() != f.m {
		return nil, fmt.Errorf("attack: forger geometry (k=%d, m=%d) does not match filter (k=%d, m=%d)", f.k, f.m, c.K(), c.M())
	}
	period := c.CounterMax() + 1
	g := gcd(uint64(f.k), period)
	perGroup := period / g // inserts to wrap one counter to exactly 0
	items := make([][]byte, 0, inserts)
	var counter uint64
	for uint64(len(items)) < inserts {
		remaining := inserts - uint64(len(items))
		n := perGroup
		if remaining < perGroup {
			n = remaining // the final partial group leaves residue a = n·k mod period
		}
		item, err := f.ItemFor(counter%f.m, 0)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			items = append(items, item)
		}
		counter++
	}
	return items, nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
