package attack_test

import (
	"net/http/httptest"
	"testing"

	"evilbloom/internal/attack"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// saturableGeometry is a digest-sized single-shard filter (m=640, k=4) an
// unthrottled greedy campaign saturates well inside the request budget, so
// the rate limit's effect — a server that *cannot* be saturated in the same
// budget — is unambiguous.
func saturableGeometry() service.Config {
	return service.Config{
		Shards:    1,
		ShardBits: 640,
		HashCount: 4,
		Seed:      7,
		RouteKey:  []byte("fedcba9876543210"),
	}
}

// startCampaignServer boots a registry server holding one "cache" filter,
// optionally behind a mutation rate limit.
func startCampaignServer(t *testing.T, rate *service.RateLimitConfig) *attack.RemoteClient {
	t.Helper()
	reg := service.NewRegistry()
	if rate != nil {
		if err := reg.ConfigureRateLimit(*rate); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Create("cache", saturableGeometry()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewRegistryServer(reg))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { reg.Close() }) //nolint:errcheck // memory-only
	return attack.NewRemoteClient(ts.URL, nil).ForFilter("cache")
}

// The acceptance scenario: the same chosen-insertion campaign, same filter
// geometry, same request budget. Unthrottled, the campaign saturates the
// filter (FPR → 1). Behind `-rate-mutations`, the identical campaign's
// damage is capped at the burst: the end-state FPR stays below half the
// unthrottled end state, and the server's clients endpoint attributes every
// blocked mutation to the attacking identity.
func TestRemoteThrottledPollutionBluntsCampaign(t *testing.T) {
	const (
		requests = 600
		burst    = 100
	)
	// The throttled server refills at one mutation per hour: within the
	// seconds this test runs, the budget is exactly the burst.
	throttledCfg := &service.RateLimitConfig{
		MutationsPerSec: 1.0 / 3600,
		Burst:           burst,
		MaxClients:      16,
		TrustProxy:      true,
	}

	naive := &attack.RemoteThrottledPollution{
		Target:   startCampaignServer(t, nil),
		Traffic:  urlgen.New(2),
		Requests: requests,
	}
	naiveRep, err := naive.Run()
	if err != nil {
		t.Fatal(err)
	}

	throttled := &attack.RemoteThrottledPollution{
		Target:   startCampaignServer(t, throttledCfg).WithIdentity("mallory"),
		Traffic:  urlgen.New(2), // the very same candidate stream
		Requests: requests,
	}
	throttledRep, err := throttled.Run()
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("unthrottled: %d requests, saturated at %d, server FPR %.4f",
		naiveRep.Requests, naiveRep.SaturatedAt, naiveRep.ServerFPR)
	t.Logf("throttled:   %d requests (%d accepted, %d bounced, first 429 at %d, Retry-After %v), server FPR %.4f",
		throttledRep.Requests, throttledRep.Accepted, throttledRep.Throttled,
		throttledRep.FirstThrottle, throttledRep.LastRetryAfter, throttledRep.ServerFPR)

	// The unthrottled naive server is saturated inside the budget.
	if naiveRep.SaturatedAt == 0 || naiveRep.Requests > requests {
		t.Fatalf("unthrottled campaign did not saturate within %d requests: %+v", requests, naiveRep)
	}
	if naiveRep.ServerFPR < 0.99 {
		t.Errorf("saturated server FPR %.4f, want ≈1", naiveRep.ServerFPR)
	}
	if naiveRep.Throttled != 0 {
		t.Errorf("unthrottled server answered %d 429s", naiveRep.Throttled)
	}

	// The rate-limited server, same campaign, same budget: exactly the
	// burst lands, the rest bounce with a Retry-After, and the filter never
	// saturates.
	if throttledRep.Accepted != burst {
		t.Errorf("accepted %d mutations, want exactly the burst of %d", throttledRep.Accepted, burst)
	}
	if throttledRep.Throttled != requests-burst {
		t.Errorf("throttled %d, want %d", throttledRep.Throttled, requests-burst)
	}
	if throttledRep.FirstThrottle != burst+1 {
		t.Errorf("first 429 at request %d, want %d", throttledRep.FirstThrottle, burst+1)
	}
	if throttledRep.SaturatedAt != 0 {
		t.Error("rate-limited server was saturated anyway")
	}
	if throttledRep.LastRetryAfter <= 0 {
		t.Error("429 carried no usable Retry-After")
	}
	// The acceptance bound: below half the unthrottled end state. (In
	// practice far below: burst×k of m bits.)
	if throttledRep.ServerFPR >= naiveRep.ServerFPR/2 {
		t.Errorf("throttled FPR %.4f not below half the unthrottled %.4f",
			throttledRep.ServerFPR, naiveRep.ServerFPR)
	}
	// The shadow stayed exact: only accepted items entered it, so the
	// server's weight is precisely what the adversary believes.
	if want := uint64(burst * 4); throttledRep.ServerWeight != want {
		t.Errorf("server weight %d, want %d (burst × k, shadow-exact)", throttledRep.ServerWeight, want)
	}

	// Attribution: the server names mallory, with every blocked mutation
	// charged to her identity.
	clients, err := throttled.Target.Clients()
	if err != nil {
		t.Fatal(err)
	}
	if !clients.Enabled || len(clients.Clients) == 0 {
		t.Fatalf("clients report: %+v", clients)
	}
	top := clients.Clients[0]
	if top.Client != "mallory" {
		t.Errorf("top offender %q, want mallory", top.Client)
	}
	if top.Allowed != burst || top.Throttled != requests-burst {
		t.Errorf("mallory's ledger: %d allowed / %d throttled, want %d/%d",
			top.Allowed, top.Throttled, burst, requests-burst)
	}
}

// TryAdd must separate the three outcomes: accepted, throttled (with
// Retry-After), and hard errors.
func TestTryAddOutcomes(t *testing.T) {
	client := startCampaignServer(t, &service.RateLimitConfig{
		MutationsPerSec: 1.0 / 3600,
		Burst:           1,
	})
	ok, _, err := client.TryAdd([]byte("first"))
	if err != nil || !ok {
		t.Fatalf("first add: ok=%v err=%v", ok, err)
	}
	ok, retry, err := client.TryAdd([]byte("second"))
	if err != nil || ok {
		t.Fatalf("second add past the burst: ok=%v err=%v", ok, err)
	}
	if retry <= 0 {
		t.Errorf("throttled TryAdd returned Retry-After %v", retry)
	}
	if _, _, err := client.TryAdd(nil); err == nil {
		t.Error("empty item produced no error")
	}
}
