package attack

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// This file is the adversary's side of the §7 cache-digest deployment:
// RemoteClient grows the digest-exchange endpoints (route, peers/refresh,
// raw digest export), and RemoteDigestPollution drives the paper's
// two-proxy experiment across two real evilbloom servers — pollute the
// first server's filter through its public add endpoint, then watch the
// second server's routing misdirect probe traffic at it.

// RemoteRoutePeer is one sibling's answer inside a routing verdict.
type RemoteRoutePeer struct {
	Peer       string  `json:"peer"`
	Claims     bool    `json:"claims"`
	Generation uint64  `json:"generation"`
	AgeSeconds float64 `json:"age_seconds"`
	Stale      bool    `json:"stale"`
}

// RemoteRoute is the server's routing decision for one item
// (POST /v2/filters/{name}/route).
type RemoteRoute struct {
	Local    bool              `json:"local"`
	Verdict  string            `json:"verdict"` // "local", "peer" or "origin"
	Peer     string            `json:"peer"`
	Claiming int               `json:"claiming"` // siblings whose digest claims the item
	Quorum   int               `json:"quorum"`   // claims a peer verdict requires
	Peers    []RemoteRoutePeer `json:"peers"`
}

// Route asks the server where it would send a request for item — the
// observable the §7 adversary corrupts. (Routing is a read; the adversary
// holds the same oracle any client does.)
func (c *RemoteClient) Route(item []byte) (*RemoteRoute, error) {
	var rt RemoteRoute
	if err := c.post(c.prefix+"/route", map[string]string{"item": string(item)}, &rt); err != nil {
		return nil, err
	}
	return &rt, nil
}

// RemotePeerStatus is one sibling's digest accounting as the server reports
// it (GET .../peers, POST .../peers/refresh).
type RemotePeerStatus struct {
	Peer         string  `json:"peer"`
	Source       string  `json:"source"`
	HasDigest    bool    `json:"has_digest"`
	Generation   uint64  `json:"generation"`
	DigestBits   uint64  `json:"digest_bits"`
	DigestWeight uint64  `json:"digest_weight"`
	AgeSeconds   float64 `json:"age_seconds"`
	Stale        bool    `json:"stale"`
	Fetches      uint64  `json:"fetches"`
	NotModified  uint64  `json:"not_modified"`
	Failures     uint64  `json:"failures"`
	LastError    string  `json:"last_error"`
}

// RefreshPeers forces the server to fetch every configured sibling's digest
// now and returns the post-refresh accounting. The experiment harness uses
// it to stand in for the refresh interval elapsing, so runs are
// deterministic.
func (c *RemoteClient) RefreshPeers() ([]RemotePeerStatus, error) {
	var resp struct {
		Peers []RemotePeerStatus `json:"peers"`
	}
	if err := c.post(c.prefix+"/peers/refresh", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Peers, nil
}

// Digest fetches the filter's raw cache-digest envelope — public, like
// everything else the digest exchange rests on, so the adversary can
// measure her pollution directly in the artifact the victims will route by.
func (c *RemoteClient) Digest() ([]byte, error) {
	path := c.prefix + "/digest"
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, fmt.Errorf("attack: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("attack: %s answered %d: %s", path, resp.StatusCode, msg)
	}
	return io.ReadAll(resp.Body)
}

// RemotePeerRevocation is the server's acknowledgment of a credential
// revocation (DELETE /v2/peer-tokens/{name}).
type RemotePeerRevocation struct {
	Revoked        string `json:"revoked"`
	DigestsEvicted int    `json:"digests_evicted"`
}

// RevokePeerToken revokes one mesh peer's credential on the server this
// client targets, ejecting that sibling live: its pushes stop
// authenticating, its sealed digests stop verifying, and everything it
// already landed is scrubbed. Server-scoped, not filter-scoped — a
// credential covers every filter.
func (c *RemoteClient) RevokePeerToken(name string) (*RemotePeerRevocation, error) {
	path := "/v2/peer-tokens/" + url.PathEscape(name)
	resp, err := c.do(http.MethodDelete, path, nil)
	if err != nil {
		return nil, err
	}
	var rev RemotePeerRevocation
	if err := decodeRemote(resp, path, &rev); err != nil {
		return nil, err
	}
	return &rev, nil
}

// RemoteDigestPollution is the §7 experiment lifted onto two real servers:
// proxy A and proxy B are evilbloom nodes peered over HTTP, each holding a
// same-named filter summarizing its cache. A malicious client fills A's
// filter with crafted items so that the digest B periodically fetches lies
// about nearly everything; B then misroutes its misses to A, wasting a
// round trip per false hit. The honest control run inserts the same number
// of unchosen items instead — the gap between the two false-hit rates is
// the paper's 79%-vs-40% result.
//
// The adversary touches only public surfaces of A (info, add) and only the
// public routing oracle of B. Pollution uses the greedy best-fresh
// campaign: a digest-sized filter saturates under strict condition-(6)
// forging, and digest pollution is about weight.
type RemoteDigestPollution struct {
	// Proxy is a filter-scoped client for server A, the node whose cache
	// the malicious client can populate (any client can: add is public).
	Proxy *RemoteClient
	// Peer is a filter-scoped client for server B, the routing victim.
	Peer *RemoteClient
	// Honest, when non-nil, is a filter-scoped client for a third node H —
	// an honest sibling whose digest B also routes by. It is seeded with
	// CleanN items from HonestTraffic, so in a quorum mesh its lightly
	// loaded digest must corroborate every "peer" verdict the saturated
	// evil digest claims.
	Honest *RemoteClient
	// HonestTraffic supplies H's cache (required when Honest is set). A
	// stream distinct from CleanTraffic: the siblings cache different
	// objects, as real proxies would.
	HonestTraffic Generator
	// CleanTraffic supplies the honest warm-up items cached on A before
	// the attack window (the paper's 51 pre-cached URLs).
	CleanTraffic Generator
	// ExtraTraffic supplies the attack-window items: inserted as-is in the
	// honest control run, used as the forgery candidate stream in the
	// polluted run (the paper's 100 client-supplied URLs).
	ExtraTraffic Generator
	// Probes supplies query items cached nowhere; every "peer" verdict for
	// one is a digest false hit wasting a round trip.
	Probes Generator
	// CleanN, ExtraN and ProbeN size the phases (paper: 51, 100, 100).
	CleanN, ExtraN, ProbeN int
	// PerItemBudget bounds the per-item forgery search (0 = the greedy
	// default of 20000 candidates).
	PerItemBudget uint64
}

// RemoteDigestReport is the outcome of one run (honest or polluted).
type RemoteDigestReport struct {
	// Polluted records whether the extra items were adversarial.
	Polluted bool
	// Inserted counts items landed on server A (clean + extra).
	Inserted uint64
	// ForgeAttempts counts forgery candidates examined (0 honest).
	ForgeAttempts uint64
	// DigestBits and DigestWeight describe the digest B routes by, as B
	// reports it after its refresh; DigestGeneration is its generation.
	DigestBits, DigestWeight uint64
	DigestGeneration         uint64
	// ServerWeight is A's own occupancy ground truth, for comparison with
	// the adversary's shadow model.
	ServerWeight uint64
	// FalseHits counts probes B routed to a peer — every one a wasted
	// round trip, since probes are cached nowhere.
	FalseHits int
	// Probes is the probe count; FalseHitRate is FalseHits/Probes.
	Probes       int
	FalseHitRate float64
}

// Run executes one §7 run against the two live servers. Both filters must
// be freshly created (the campaign owns their whole history); B must be
// peered at A.
func (c *RemoteDigestPollution) Run(polluted bool) (*RemoteDigestReport, error) {
	if c.CleanN < 0 || c.ExtraN < 0 || c.ProbeN <= 0 {
		return nil, fmt.Errorf("attack: invalid digest campaign sizes (%d, %d, %d)", c.CleanN, c.ExtraN, c.ProbeN)
	}
	// The shadow view reconstructs A's index family from its public info —
	// possible precisely because digest exchange requires a public family.
	view, err := NewRemoteViewFromInfo(c.Proxy)
	if err != nil {
		return nil, err
	}
	// Warm A's cache with honest traffic. The adversary observes it (the
	// §4 threat model grants filter state), so it enters the shadow too.
	for i := 0; i < c.CleanN; i++ {
		view.Add(c.CleanTraffic.Next())
	}
	rep := &RemoteDigestReport{Polluted: polluted, Probes: c.ProbeN}
	if polluted {
		adv := NewChosenInsertion(view, view, view, c.ExtraTraffic)
		points, err := adv.PolluteGreedy(c.ExtraN, c.PerItemBudget)
		if err != nil {
			return nil, err
		}
		// A digest-sized filter can saturate before the attack window ends
		// (every position set — the §4.1 saturation extreme). The client
		// still submits her remaining URLs: they cost nothing to choose
		// and keep both runs' cache sizes identical.
		for i := len(points); i < c.ExtraN; i++ {
			view.Add(c.ExtraTraffic.Next())
		}
		rep.ForgeAttempts = adv.Forger().Attempts
	} else {
		for i := 0; i < c.ExtraN; i++ {
			view.Add(c.ExtraTraffic.Next())
		}
	}
	if err := view.Err(); err != nil {
		return nil, fmt.Errorf("attack: transport during cache fill: %w", err)
	}
	rep.Inserted = view.Count()

	// A's ground truth, confirming (naive) the shadow model's arithmetic.
	stats, err := c.Proxy.Stats()
	if err != nil {
		return nil, err
	}
	rep.ServerWeight = stats.Weight

	// Seed the honest third sibling, when the deployment has one. Its
	// cache is real traffic, so its digest stays light — the corroboration
	// a quorum verdict will demand.
	if c.Honest != nil {
		if c.HonestTraffic == nil {
			return nil, fmt.Errorf("attack: Honest node set without HonestTraffic")
		}
		for i := 0; i < c.CleanN; i++ {
			if err := c.Honest.Add(c.HonestTraffic.Next()); err != nil {
				return nil, fmt.Errorf("attack: seeding honest sibling: %w", err)
			}
		}
	}

	// The digest exchange: B refreshes its view of its siblings — in
	// deployment the jittered interval does this; the experiment forces it
	// for determinism, exactly like ExchangeDigests in the in-process §7
	// run. The report describes A's digest (matched by base URL; first
	// digest held when the roster entry differs, the two-node layout).
	peers, err := c.Peer.RefreshPeers()
	if err != nil {
		return nil, err
	}
	for _, p := range peers {
		if p.HasDigest && (p.Peer == c.Proxy.Base() || rep.DigestBits == 0) {
			rep.DigestBits = p.DigestBits
			rep.DigestWeight = p.DigestWeight
			rep.DigestGeneration = p.Generation
			if p.Peer == c.Proxy.Base() {
				break
			}
		}
	}
	if rep.DigestBits == 0 {
		return nil, fmt.Errorf("attack: peer holds no digest after refresh: %+v", peers)
	}

	rep.FalseHits, err = c.Probe()
	if err != nil {
		return nil, err
	}
	rep.FalseHitRate = float64(rep.FalseHits) / float64(c.ProbeN)
	return rep, nil
}

// Probe sends ProbeN fresh probe items — cached nowhere — through B's
// routing oracle and counts peer verdicts; every one is a false hit
// wasting a round trip. Reusable after Run: the Probes stream continues,
// so a caller can re-measure the same mesh after revoking the evil
// sibling's credential.
func (c *RemoteDigestPollution) Probe() (falseHits int, err error) {
	for i := 0; i < c.ProbeN; i++ {
		rt, err := c.Peer.Route(c.Probes.Next())
		if err != nil {
			return falseHits, err
		}
		if rt.Verdict == "peer" {
			falseHits++
		}
	}
	return falseHits, nil
}
