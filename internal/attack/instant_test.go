package attack

import (
	"testing"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func newDabloomsStage(t testing.TB, k int, m uint64, seed uint64) (*core.Counting, *hashes.DoubleHashing) {
	t.Helper()
	fam, err := hashes.NewDoubleHashing(k, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCounting(fam, 4, core.Wrap)
	if err != nil {
		t.Fatal(err)
	}
	return c, fam
}

func TestInstantForgerValidation(t *testing.T) {
	_, fam := newDabloomsStage(t, 7, 95851, 0)
	if _, err := NewInstantForger(fam, []byte("bad"), 1); err == nil {
		t.Error("non-16-multiple prefix accepted")
	}
	f, err := NewInstantForger(fam, []byte("http://evil.com/"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ItemFor(95851, 0); err == nil {
		t.Error("base == m accepted")
	}
}

func TestInstantItemForHitsExactIndexes(t *testing.T) {
	c, fam := newDabloomsStage(t, 7, 95851, 5)
	f, err := NewInstantForger(fam, []byte("http://evil.com/"), 1)
	if err != nil {
		t.Fatal(err)
	}
	item, err := f.ItemFor(123, 456)
	if err != nil {
		t.Fatal(err)
	}
	idx := fam.Clone().Indexes(nil, item)
	for i, v := range idx {
		if want := (123 + uint64(i)*456) % 95851; v != want {
			t.Errorf("g_%d = %d, want %d", i, v, want)
		}
	}
	c.Add(item)
	if !c.Test(item) {
		t.Error("crafted item not present after insertion")
	}
}

// The instant polluting forger fills a dablooms stage to nk set counters
// without a single hash evaluation during search.
func TestInstantPollutingItem(t *testing.T) {
	c, fam := newDabloomsStage(t, 7, 95851, 9)
	f, err := NewInstantForger(fam, []byte("http://evil.com/"), 2)
	if err != nil {
		t.Fatal(err)
	}
	view := NewCountingView(c)
	for i := 0; i < 200; i++ {
		item, err := f.PollutingItem(view, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		before := c.Weight()
		c.Add(item)
		if got := c.Weight() - before; got != 7 {
			t.Fatalf("insert %d set %d fresh counters, want 7", i, got)
		}
	}
}

func TestInstantFalsePositiveItem(t *testing.T) {
	c, fam := newDabloomsStage(t, 7, 95851, 11)
	gen := urlgen.New(20)
	for i := 0; i < 5000; i++ {
		c.Add(gen.Next())
	}
	f, err := NewInstantForger(fam, []byte("http://evil.com/"), 3)
	if err != nil {
		t.Fatal(err)
	}
	view := NewCountingView(c)
	for i := 0; i < 10; i++ {
		item, err := f.FalsePositiveItem(view, 1<<24)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Test(item) {
			t.Error("instant forgery is not a false positive")
		}
	}
}

// Constant-time Bloom-level second pre-image: an item with exactly the
// victim's index set, then the deletion attack without any search.
func TestInstantSecondPreimageDeletion(t *testing.T) {
	c, fam := newDabloomsStage(t, 7, 95851, 13)
	gen := urlgen.New(21)
	for i := 0; i < 1000; i++ {
		c.Add(gen.Next())
	}
	victim := []byte("http://honest-site.org/important-page")
	c.Add(victim)
	victimIdx := fam.Clone().Indexes(nil, victim)

	f, err := NewInstantForger(fam, []byte("http://evil.com/"), 4)
	if err != nil {
		t.Fatal(err)
	}
	doppel, err := f.SecondPreimage(victimIdx)
	if err != nil {
		t.Fatal(err)
	}
	if string(doppel) == string(victim) {
		t.Fatal("second pre-image equals the victim")
	}
	if !c.Test(doppel) {
		t.Fatal("second pre-image not recognized as present")
	}
	if err := c.Remove(doppel); err != nil {
		t.Fatal(err)
	}
	if c.Test(victim) {
		t.Error("victim survived the constant-time deletion attack")
	}
	if _, err := f.SecondPreimage(victimIdx[:2]); err == nil {
		t.Error("wrong-length victim accepted")
	}
}

// §6.2 overflow attack: after a full stage capacity of crafted insertions,
// the stage's insertion counter says "full" while every counter is zero.
func TestEmptyViaOverflow(t *testing.T) {
	const k, m = 7, 9585
	c, fam := newDabloomsStage(t, k, m, 17)
	f, err := NewInstantForger(fam, []byte("http://evil.com/"), 5)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 1000
	items, err := f.EmptyViaOverflow(c, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != capacity {
		t.Fatalf("crafted %d items, want %d", len(items), capacity)
	}
	for _, it := range items {
		c.Add(it)
	}
	if c.Count() != capacity {
		t.Errorf("insertion count = %d, want %d", c.Count(), capacity)
	}
	// 1000 = 62 groups of 16 + 8 leftover inserts: exactly one counter holds
	// a = 8·7 mod 16 = 8; everything else is zero.
	w := c.Weight()
	if w > 1 {
		t.Errorf("weight after overflow attack = %d, want ≤ 1", w)
	}
	if c.Overflows() == 0 {
		t.Error("no overflow events recorded")
	}
	// A multiple of 16 empties the filter entirely.
	c2, fam2 := newDabloomsStage(t, k, m, 18)
	f2, err := NewInstantForger(fam2, []byte("http://evil.com/"), 6)
	if err != nil {
		t.Fatal(err)
	}
	items2, err := f2.EmptyViaOverflow(c2, 960)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items2 {
		c2.Add(it)
	}
	if c2.Weight() != 0 {
		t.Errorf("weight = %d, want 0 (960 = 60 full wrap groups)", c2.Weight())
	}
}

func TestEmptyViaOverflowGeometryMismatch(t *testing.T) {
	c, _ := newDabloomsStage(t, 7, 9585, 0)
	_, otherFam := newDabloomsStage(t, 5, 1000, 0)
	f, err := NewInstantForger(otherFam, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.EmptyViaOverflow(c, 10); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

// Saturating counters neutralize the overflow attack (ablation for the
// countermeasure section).
func TestOverflowAttackNeutralizedBySaturate(t *testing.T) {
	const k, m = 7, 9585
	fam, err := hashes.NewDoubleHashing(k, m, 19)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCounting(fam, 4, core.Saturate)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewInstantForger(fam, []byte("http://evil.com/"), 7)
	if err != nil {
		t.Fatal(err)
	}
	items, err := f.EmptyViaOverflow(c, 960)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		c.Add(it)
	}
	if c.Weight() == 0 {
		t.Error("saturating filter emptied by overflow attack")
	}
}
