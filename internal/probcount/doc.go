// Package probcount implements probabilistic counting — HyperLogLog — and
// its adversarial analysis. The paper's conclusion (§10) names
// probabilistic counting algorithms as a natural extension of its adversary
// models: "Hashing (and the truncation that comes along) is the core
// mechanism. It will be interesting to analyze the existing implementations
// in an adversarial setting." This package performs that analysis: with an
// unkeyed, invertible hash (MurmurHash3, as deployed by many HLL libraries)
// a chosen-insertion adversary can inflate the cardinality estimate
// arbitrarily (InflationAttack: maximum rank into every register) or freeze
// it near zero (SuppressionAttack: every item collapses onto one register)
// — in constant time per item — while a keyed hash (SipHash) restores the
// honest behaviour.
//
// `evilbloom hll` drives all three streams side by side.
package probcount
