package probcount

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func newTestHLL(t testing.TB, precision uint8) *HLL {
	t.Helper()
	h, err := NewHLL(precision, MurmurHash64{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHLLValidation(t *testing.T) {
	if _, err := NewHLL(3, MurmurHash64{}); err == nil {
		t.Error("precision 3 accepted")
	}
	if _, err := NewHLL(19, MurmurHash64{}); err == nil {
		t.Error("precision 19 accepted")
	}
	if _, err := NewHLL(10, nil); err == nil {
		t.Error("nil hash accepted")
	}
}

func TestHLLHonestAccuracy(t *testing.T) {
	for _, n := range []int{100, 10000, 200000} {
		h := newTestHLL(t, 12) // m=4096, σ ≈ 1.6%
		gen := urlgen.New(int64(n))
		for i := 0; i < n; i++ {
			h.Add(gen.Next())
		}
		est := h.Estimate()
		rel := math.Abs(est-float64(n)) / float64(n)
		if rel > 5*h.RelativeError() {
			t.Errorf("n=%d: estimate %.0f (%.2f%% off, σ=%.2f%%)", n, est, 100*rel, 100*h.RelativeError())
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := newTestHLL(t, 10)
	for i := 0; i < 10000; i++ {
		h.Add([]byte("same item"))
	}
	if est := h.Estimate(); est > 5 {
		t.Errorf("10k duplicates estimated as %.1f distinct", est)
	}
}

func TestForgePlacesRegisterAndRank(t *testing.T) {
	h := newTestHLL(t, 12)
	for _, tc := range []struct {
		idx  int
		rank uint8
	}{{0, 1}, {17, 5}, {4095, 52}, {100, 30}} {
		item, err := Forge(h, []byte("http://evil.com/"), tc.idx, tc.rank, 7)
		if err != nil {
			t.Fatalf("forge(%d,%d): %v", tc.idx, tc.rank, err)
		}
		before := h.Register(tc.idx)
		h.Add(item)
		after := h.Register(tc.idx)
		want := tc.rank
		if before > want {
			want = before
		}
		if after != want {
			t.Errorf("register %d = %d after rank-%d forge", tc.idx, after, tc.rank)
		}
	}
}

func TestForgeValidation(t *testing.T) {
	h := newTestHLL(t, 12)
	if _, err := Forge(h, nil, -1, 1, 0); err == nil {
		t.Error("negative register accepted")
	}
	if _, err := Forge(h, nil, 1<<12, 1, 0); err == nil {
		t.Error("register out of range accepted")
	}
	if _, err := Forge(h, nil, 0, 0, 0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := Forge(h, nil, 0, 60, 0); err == nil {
		t.Error("rank beyond digest accepted")
	}
	keyed, err := NewHLL(12, SipHash64{Key: hashes.SipKey{K0: 1, K1: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Forge(keyed, nil, 0, 1, 0); err == nil {
		t.Error("forging against a keyed sketch accepted")
	}
}

// The inflation attack: a few thousand crafted items make the sketch report
// astronomically more distinct items than were inserted.
func TestInflationAttack(t *testing.T) {
	h := newTestHLL(t, 12)
	gen := urlgen.New(1)
	for i := 0; i < 10000; i++ {
		h.Add(gen.Next())
	}
	honest := h.Estimate()
	items, err := InflationAttack(h, []byte("http://evil.com/"), h.M())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != h.M() {
		t.Fatalf("crafted %d items", len(items))
	}
	attacked := h.Estimate()
	if attacked < honest*1e6 {
		t.Errorf("inflation: %.3g → %.3g (want ≥ 10^6x)", honest, attacked)
	}
}

// The suppression attack: 100k distinct items, estimate stays near zero.
func TestSuppressionAttack(t *testing.T) {
	h := newTestHLL(t, 12)
	items, err := SuppressionAttack(h, []byte("http://evil.com/"), 100000)
	if err != nil {
		t.Fatal(err)
	}
	// The items really are distinct.
	seen := map[string]bool{}
	for _, it := range items {
		seen[string(it)] = true
	}
	if len(seen) != 100000 {
		t.Fatalf("only %d distinct items", len(seen))
	}
	if est := h.Estimate(); est > 10 {
		t.Errorf("100k distinct adversarial items estimated as %.1f", est)
	}
}

// The §8.2 countermeasure: a keyed sketch cannot be steered — adversarial
// streams built for the unkeyed sketch behave like random items.
func TestKeyedHLLResists(t *testing.T) {
	unkeyed := newTestHLL(t, 12)
	crafted, err := SuppressionAttack(unkeyed, []byte("http://evil.com/"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	keyed, err := NewHLL(12, SipHash64{Key: hashes.SipKey{K0: 0xdead, K1: 0xbeef}})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range crafted {
		keyed.Add(it)
	}
	est := keyed.Estimate()
	rel := math.Abs(est-50000) / 50000
	if rel > 5*keyed.RelativeError() {
		t.Errorf("keyed sketch estimated %.0f for 50k crafted items (%.2f%% off)", est, 100*rel)
	}
}

// Property: addHash is idempotent and order-independent (registers only
// ever grow to the max rank seen).
func TestHLLMergeSemanticsProperty(t *testing.T) {
	f := func(hashesIn []uint64) bool {
		a := newTestHLL(t, 8)
		b := newTestHLL(t, 8)
		for _, x := range hashesIn {
			a.addHash(x)
		}
		for i := len(hashesIn) - 1; i >= 0; i-- {
			b.addHash(hashesIn[i])
			b.addHash(hashesIn[i]) // duplicates are no-ops
		}
		for i := 0; i < a.M(); i++ {
			if a.Register(i) != b.Register(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimateEmpty(t *testing.T) {
	h := newTestHLL(t, 10)
	if est := h.Estimate(); est != 0 {
		t.Errorf("empty sketch estimate = %v", est)
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h, err := NewHLL(14, MurmurHash64{})
	if err != nil {
		b.Fatal(err)
	}
	items := make([][]byte, 256)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("http://site-%d.example.com/", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(items[i&255])
	}
}

func BenchmarkHLLForge(b *testing.B) {
	h, err := NewHLL(14, MurmurHash64{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Forge(h, []byte("http://evil.com/"), i&(h.M()-1), 40, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
