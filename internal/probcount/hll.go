package probcount

import (
	"fmt"
	"math"
	"math/bits"

	"evilbloom/internal/hashes"
)

// Hash64 produces the 64-bit item digests a sketch consumes. The zero-key
// Murmur variant models real deployments; the SipHash variant is the
// countermeasure.
type Hash64 interface {
	// Sum64 digests the item.
	Sum64(item []byte) uint64
	// Keyed reports whether the adversary can predict digests.
	Keyed() bool
}

// MurmurHash64 is the unkeyed (attackable) digest source.
type MurmurHash64 struct {
	// Seed is public in the threat model (a compile-time constant in
	// typical deployments).
	Seed uint64
}

// Sum64 implements Hash64.
func (h MurmurHash64) Sum64(item []byte) uint64 { return hashes.Murmur64(item, h.Seed) }

// Keyed implements Hash64.
func (MurmurHash64) Keyed() bool { return false }

// SipHash64 is the keyed digest source (§8.2 applied to counting).
type SipHash64 struct {
	Key hashes.SipKey
}

// Sum64 implements Hash64.
func (h SipHash64) Sum64(item []byte) uint64 { return hashes.SipHash24(h.Key, item) }

// Keyed implements Hash64.
func (SipHash64) Keyed() bool { return true }

// HLL is a HyperLogLog cardinality sketch with 2^precision registers.
type HLL struct {
	precision uint8
	registers []uint8
	hash      Hash64
}

// NewHLL builds a sketch; precision must be in [4, 18] (the usual range).
func NewHLL(precision uint8, hash Hash64) (*HLL, error) {
	if precision < 4 || precision > 18 {
		return nil, fmt.Errorf("probcount: precision %d outside [4,18]", precision)
	}
	if hash == nil {
		return nil, fmt.Errorf("probcount: nil hash")
	}
	return &HLL{
		precision: precision,
		registers: make([]uint8, 1<<precision),
		hash:      hash,
	}, nil
}

// M returns the number of registers.
func (h *HLL) M() int { return len(h.registers) }

// Add folds an item into the sketch.
func (h *HLL) Add(item []byte) {
	h.addHash(h.hash.Sum64(item))
}

// addHash folds a raw digest: the top precision bits select the register,
// the rank is the position of the first 1 in the remainder.
func (h *HLL) addHash(x uint64) {
	idx := x >> (64 - h.precision)
	rest := x << h.precision
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	maxRank := uint8(64 - h.precision + 1)
	if rank > maxRank {
		rank = maxRank
	}
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Register returns register i (attack drivers and tests).
func (h *HLL) Register(i int) uint8 { return h.registers[i] }

// Estimate returns the cardinality estimate with the standard small-range
// (linear counting) correction.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(h.registers)) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros)) // linear counting
	}
	return est
}

// alpha is the standard HLL bias constant.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// RelativeError returns the theoretical standard error 1.04/√m.
func (h *HLL) RelativeError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.registers)))
}

// ---------------------------------------------------------------------------
// Adversaries. Both exploit predictable digests: the item's register and
// rank are known (and even choosable, via MurmurHash3 inversion) before
// insertion.

// Forge crafts an item whose 64-bit Murmur digest places it in register idx
// with exactly the given rank — constant time via Murmur128 pre-image
// (Murmur64 is the first half of Murmur128). prefix must be a multiple of
// 16 bytes; vary salt to obtain distinct items with identical effect.
func Forge(h *HLL, prefix []byte, idx int, rank uint8, salt uint64) ([]byte, error) {
	mm, ok := h.hash.(MurmurHash64)
	if !ok {
		return nil, fmt.Errorf("probcount: forging needs the unkeyed Murmur hash")
	}
	if idx < 0 || idx >= len(h.registers) {
		return nil, fmt.Errorf("probcount: register %d out of range", idx)
	}
	maxRank := uint8(64 - h.precision)
	if rank < 1 || rank > maxRank {
		return nil, fmt.Errorf("probcount: rank %d outside [1,%d]", rank, maxRank)
	}
	// Digest layout: [precision bits: idx][rank-1 zeros][1][salt bits].
	target := uint64(idx) << (64 - h.precision)
	restBits := 64 - int(h.precision)
	oneShift := restBits - int(rank)
	target |= 1 << uint(oneShift)
	if oneShift > 0 {
		target |= salt & (1<<uint(oneShift) - 1)
	}
	return hashes.Murmur128Preimage(prefix, target, 0, mm.Seed)
}

// InflationAttack feeds the sketch items items crafted to claim the maximum
// rank in distinct registers: after one pass the estimate exceeds any real
// workload by orders of magnitude (a chosen-insertion "count explosion" —
// e.g. convincing a superspreader detector that a flood is happening).
// It returns the crafted items.
func InflationAttack(h *HLL, prefix []byte, items int) ([][]byte, error) {
	maxRank := uint8(64 - h.precision)
	out := make([][]byte, 0, items)
	for i := 0; i < items; i++ {
		item, err := Forge(h, prefix, i%h.M(), maxRank, uint64(i/h.M()))
		if err != nil {
			return nil, err
		}
		h.Add(item)
		out = append(out, item)
	}
	return out, nil
}

// SuppressionAttack feeds the sketch `items` *distinct* items all crafted to
// collapse onto register 0 with rank 1: the estimate stays pinned near zero
// however many items flow past (hiding a heavy hitter from a probabilistic
// counter). It returns the crafted items.
func SuppressionAttack(h *HLL, prefix []byte, items int) ([][]byte, error) {
	out := make([][]byte, 0, items)
	for i := 0; i < items; i++ {
		item, err := Forge(h, prefix, 0, 1, uint64(i))
		if err != nil {
			return nil, err
		}
		h.Add(item)
		out = append(out, item)
	}
	return out, nil
}
