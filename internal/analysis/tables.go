package analysis

import (
	"fmt"
	"math"
	"time"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

// Table1Row is one attack-probability entry of Table 1.
type Table1Row struct {
	// Attack names the row.
	Attack string
	// Formula is the closed form (exact versions; the paper's printed
	// variants are annotated where they differ).
	Formula string
	// Probability is the evaluated value.
	Probability float64
}

// RunTable1 evaluates Table 1 for a hash digest of ell bits and a filter of
// m bits, k hash functions and Hamming weight w.
func RunTable1(ell int, m uint64, k int, w uint64) []Table1Row {
	return []Table1Row{
		{
			Attack:      "Second pre-image (hash function)",
			Formula:     fmt.Sprintf("1/2^%d", ell),
			Probability: math.Pow(2, -float64(ell)),
		},
		{
			Attack:      "Second pre-image (Bloom)",
			Formula:     "1/m^k",
			Probability: core.SecondPreimageBloomProbability(m, k),
		},
		{
			Attack:      "Pollution",
			Formula:     "(m-W)···(m-W-k+1)/m^k  [paper: C(m-W,k)/m^k]",
			Probability: core.PollutionProbability(m, k, w),
		},
		{
			Attack:      "False-positive forgery",
			Formula:     "(W/m)^k",
			Probability: core.FPForgeryProbability(m, k, w),
		},
		{
			Attack:      "Deletion",
			Formula:     "1-(1-k/m)^k  [paper: sum C(k,i)(m-i)^k/m^k]",
			Probability: core.DeletionProbability(m, k),
		},
	}
}

// FormatTable1 renders Table 1 for the CLI.
func FormatTable1(rows []Table1Row) string {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{r.Attack, r.Formula, fmt.Sprintf("%.3e", r.Probability)})
	}
	return FormatTable([]string{"Attack", "Probability", "Value"}, table)
}

// Table2Config parameterizes the query-cost comparison of Table 2.
type Table2Config struct {
	// Capacity and FPR size the filter (10⁶ items at 2⁻¹⁰ in the paper,
	// giving k = 10).
	Capacity uint64
	FPR      float64
	// ItemLen is the query length in bytes (32 in the paper: SHA-256
	// prefixes).
	ItemLen int
	// Iterations per measurement.
	Iterations int
	// Key is used for keyed algorithms.
	Key []byte
}

// DefaultTable2Config returns the paper's parameters.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Capacity:   1000000,
		FPR:        math.Pow(2, -10),
		ItemLen:    32,
		Iterations: 30000,
		Key:        []byte("0123456789abcdef"),
	}
}

// Table2Row is one algorithm's naive-vs-recycling measurement.
type Table2Row struct {
	Algorithm hashes.Algorithm
	// NaiveCalls and RecycleCalls count base-hash invocations per query.
	NaiveCalls   int
	RecycleCalls int
	// NaiveNs and RecycleNs are measured per-query costs (index derivation
	// plus filter probe); RecycleNs is NaN when the digest cannot hold one
	// index.
	NaiveNs   float64
	RecycleNs float64
	// Speedup is NaiveNs/RecycleNs.
	Speedup float64
}

// Table2Algorithms lists the rows in the paper's order.
var Table2Algorithms = []hashes.Algorithm{
	hashes.MurmurHash32,
	hashes.MD5,
	hashes.SHA1,
	hashes.SHA256,
	hashes.SHA384,
	hashes.SHA512,
	hashes.HMACSHA1,
	hashes.SipHash24Alg,
}

// RunTable2 measures the query cost of each algorithm under the naive
// (k salted calls) and recycling (§8.2) index derivations.
func RunTable2(cfg Table2Config) ([]Table2Row, error) {
	if cfg.Capacity == 0 || cfg.Iterations <= 0 || cfg.ItemLen <= 0 {
		return nil, fmt.Errorf("analysis: invalid Table2 config %+v", cfg)
	}
	m := core.OptimalM(cfg.Capacity, cfg.FPR)
	k := core.KForFPR(cfg.FPR)
	items := table2Items(cfg.ItemLen, 256)

	rows := make([]Table2Row, 0, len(Table2Algorithms))
	for _, alg := range Table2Algorithms {
		var key []byte
		if alg.Keyed() {
			key = cfg.Key
		}
		row := Table2Row{Algorithm: alg, NaiveCalls: k}

		dn, err := hashes.NewDigester(alg, key)
		if err != nil {
			return nil, err
		}
		naive, err := hashes.NewSalted(dn, k, m)
		if err != nil {
			return nil, err
		}
		row.NaiveNs = timeFamily(naive, items, cfg.Iterations)

		row.RecycleCalls = hashes.DigestCallsFor(alg, k, m)
		if row.RecycleCalls > 0 {
			dr, err := hashes.NewDigester(alg, key)
			if err != nil {
				return nil, err
			}
			recycling, err := hashes.NewRecycling(dr, k, m)
			if err != nil {
				return nil, err
			}
			row.RecycleNs = timeFamily(recycling, items, cfg.Iterations)
			row.Speedup = row.NaiveNs / row.RecycleNs
		} else {
			row.RecycleNs = math.NaN()
			row.Speedup = math.NaN()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table2Items builds a deterministic corpus of fixed-length query items.
func table2Items(itemLen, count int) [][]byte {
	gen := urlgen.New(42)
	items := make([][]byte, count)
	for i := range items {
		u := gen.URL()
		for len(u) < itemLen {
			u += u
		}
		items[i] = []byte(u[:itemLen])
	}
	return items
}

// timeFamily measures the average per-item cost of index derivation, with a
// short warmup.
func timeFamily(fam hashes.IndexFamily, items [][]byte, iterations int) float64 {
	var idx []uint64
	for i := 0; i < len(items); i++ { // warmup
		idx = fam.Indexes(idx[:0], items[i])
	}
	start := time.Now()
	for i := 0; i < iterations; i++ {
		idx = fam.Indexes(idx[:0], items[i%len(items)])
	}
	_ = idx
	return float64(time.Since(start).Nanoseconds()) / float64(iterations)
}

// FormatTable2 renders Table 2 for the CLI.
func FormatTable2(rows []Table2Row) string {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		rec, speed := "-", "-"
		if !math.IsNaN(r.RecycleNs) {
			rec = fmt.Sprintf("%.2f", r.RecycleNs/1000)
			speed = fmt.Sprintf("%.1f", r.Speedup)
		}
		table = append(table, []string{
			r.Algorithm.String(),
			fmt.Sprintf("%.2f", r.NaiveNs/1000),
			rec,
			speed,
			fmt.Sprintf("%d", r.NaiveCalls),
			fmt.Sprintf("%d", r.RecycleCalls),
		})
	}
	return FormatTable(
		[]string{"Hash function", "Naive (µs)", "Recycling (µs)", "Speedup (x)", "Calls naive", "Calls recycling"},
		table)
}
