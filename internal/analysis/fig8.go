package analysis

import (
	"fmt"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

// Fig8Config parameterizes the Dablooms pollution experiment: a scaling
// counting filter of λ stages, with the last i stages filled by the
// chosen-insertion adversary.
type Fig8Config struct {
	// Stages is λ (10 in the paper).
	Stages int
	// StageCapacity is δ (10000).
	StageCapacity uint64
	// F0 and R are the error budget parameters (0.01 and 0.9).
	F0 float64
	R  float64
	// Probes measures the compound F empirically (0 skips probing and
	// reports only the weight-based estimate).
	Probes int
	// Seed drives filters and URL streams.
	Seed int64
}

// DefaultFig8Config returns the paper's parameters.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Stages:        10,
		StageCapacity: 10000,
		F0:            0.01,
		R:             0.9,
		Probes:        200000,
		Seed:          1,
	}
}

// Fig8Result carries F as a function of the number of polluted stages.
type Fig8Result struct {
	// EstimatedF[i] is the weight-based compound F with the last i stages
	// polluted (index 0 = no attack … index λ = full attack).
	EstimatedF []float64
	// EmpiricalF matches EstimatedF, measured with random probes (empty
	// when Probes = 0).
	EmpiricalF []float64
	// AnalyticNoAttack is 1 − ∏(1 − f₀rⁱ); AnalyticFull uses eq (7) per
	// stage.
	AnalyticNoAttack float64
	AnalyticFull     float64
}

// RunFig8 regenerates Fig 8: for each pollution level i ∈ [0, λ], build a
// Dablooms filter whose first λ−i stages are filled with honest reports and
// whose last i stages are filled by the instant chosen-insertion adversary
// (MurmurHash inversion: each crafted item claims a disjoint arithmetic
// progression of counters, so every insertion sets k fresh counters with no
// search at all).
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.Stages <= 0 || cfg.StageCapacity == 0 {
		return nil, fmt.Errorf("analysis: invalid Fig8 config %+v", cfg)
	}
	res := &Fig8Result{
		AnalyticNoAttack: core.AnalyticCompoundFPR(cfg.F0, cfg.R, cfg.Stages),
	}
	analyticFullPass := 1.0
	for level := 0; level <= cfg.Stages; level++ {
		d, err := buildPollutedDablooms(cfg, level)
		if err != nil {
			return nil, err
		}
		res.EstimatedF = append(res.EstimatedF, d.CompoundFPR())
		if cfg.Probes > 0 {
			res.EmpiricalF = append(res.EmpiricalF, empiricalFPR(d, cfg.Probes, cfg.Seed+int64(level)*17))
		}
		if level == cfg.Stages {
			for _, st := range d.Stages() {
				analyticFullPass *= 1 - core.AdversarialFPR(st.M(), cfg.StageCapacity, st.K())
			}
		}
	}
	res.AnalyticFull = 1 - analyticFullPass
	return res, nil
}

// buildPollutedDablooms fills a λ-stage dablooms with honest reports except
// for the last `polluted` stages, which the adversary fills.
func buildPollutedDablooms(cfg Fig8Config, polluted int) (*core.Dablooms, error) {
	d, err := core.NewDablooms(core.DabloomsConfig{
		InitialFPR:      cfg.F0,
		TighteningRatio: cfg.R,
		StageCapacity:   cfg.StageCapacity,
		MaxStages:       cfg.Stages,
		CounterWidth:    4,
		Overflow:        core.Wrap,
		Seed:            uint64(cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	honest := urlgen.New(cfg.Seed + 5)
	for stage := 0; stage < cfg.Stages; stage++ {
		if stage < cfg.Stages-polluted {
			for i := uint64(0); i < cfg.StageCapacity; i++ {
				d.Add(honest.Next())
			}
			continue
		}
		if err := polluteCurrentStage(d, cfg.StageCapacity, int64(stage)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// polluteCurrentStage crafts δ items for the filter's current last stage,
// each claiming a disjoint progression of k counters: pollution without
// search, thanks to MurmurHash3 inversion.
func polluteCurrentStage(d *core.Dablooms, count uint64, rngSeed int64) error {
	stages := d.Stages()
	last := stages[len(stages)-1]
	fam, ok := last.Family().(*hashes.DoubleHashing)
	if !ok {
		return fmt.Errorf("analysis: dablooms stage without double hashing")
	}
	forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), rngSeed)
	if err != nil {
		return err
	}
	k := uint64(fam.K())
	m := fam.M()
	if count*k > m {
		return fmt.Errorf("analysis: stage too small to pollute disjointly: δk=%d > m=%d", count*k, m)
	}
	for j := uint64(0); j < count; j++ {
		item, err := forger.ItemFor(j*k, 1)
		if err != nil {
			return err
		}
		d.Add(item)
	}
	return nil
}

// empiricalFPR probes a filter with fresh random URLs.
func empiricalFPR(f core.Filter, probes int, seed int64) float64 {
	gen := urlgen.New(seed + 31337)
	hit := 0
	for i := 0; i < probes; i++ {
		if f.Test(gen.Next()) {
			hit++
		}
	}
	return float64(hit) / float64(probes)
}
