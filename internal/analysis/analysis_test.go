package analysis

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/hashes"
)

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Errorf("series state: %+v", s)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bbbb"}, [][]string{{"xxx", "y"}, {"1", "2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a  ") || !strings.Contains(lines[0], "bbbb") {
		t.Errorf("header line %q", lines[0])
	}
}

func TestRenderChart(t *testing.T) {
	s1 := &Series{Label: "one"}
	s2 := &Series{Label: "two"}
	for i := 0; i < 20; i++ {
		s1.Add(float64(i), float64(i*i))
		s2.Add(float64(i), float64(20*i))
	}
	out := RenderChart("title", []*Series{s1, s2}, 40, 10)
	if !strings.Contains(out, "title") || !strings.Contains(out, "*") ||
		!strings.Contains(out, "o") || !strings.Contains(out, "one") {
		t.Errorf("chart missing elements:\n%s", out)
	}
	if empty := RenderChart("empty", nil, 40, 10); !strings.Contains(empty, "no data") {
		t.Errorf("empty chart: %q", empty)
	}
}

// Fig 3 regeneration matches the paper's three headline numbers.
func TestRunFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	res, err := RunFig3(DefaultFig3Config())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ThresholdFPR-0.077) > 0.002 {
		t.Errorf("threshold = %v, want ≈0.077", res.ThresholdFPR)
	}
	if res.CrossingRandom < 540 || (res.CrossingRandom > 660 && res.CrossingRandom != 0) {
		t.Errorf("random crossing at %d, paper says ≈600", res.CrossingRandom)
	}
	if res.CrossingAdversarial < 410 || res.CrossingAdversarial > 435 {
		t.Errorf("adversarial crossing at %d, paper says ≈422", res.CrossingAdversarial)
	}
	if res.CrossingPartial < 490 || res.CrossingPartial > 530 {
		t.Errorf("partial crossing at %d, paper says ≈510", res.CrossingPartial)
	}
	if math.Abs(res.Adversarial[599]-0.3164) > 0.001 {
		t.Errorf("adversarial FPR at 600 = %v, paper says ≈0.316", res.Adversarial[599])
	}
	// Birthday-paradox superimposition: the curves agree early on.
	if math.Abs(res.Random[10]-res.Adversarial[10]) > 0.001 {
		t.Errorf("early curves diverge: %v vs %v", res.Random[10], res.Adversarial[10])
	}
	// Analytic references bracket the measurements.
	if math.Abs(res.AnalyticAdversarial[599]-0.31640625) > 1e-9 {
		t.Errorf("analytic adversarial end = %v", res.AnalyticAdversarial[599])
	}
	if res.ForgeAttempts == 0 {
		t.Error("no forge attempts recorded")
	}
}

func TestRunFig3Validation(t *testing.T) {
	cfg := DefaultFig3Config()
	cfg.N = 0
	if _, err := RunFig3(cfg); err == nil {
		t.Error("N=0 accepted")
	}
	cfg = DefaultFig3Config()
	cfg.HonestPrefix = cfg.N + 1
	if _, err := RunFig3(cfg); err == nil {
		t.Error("prefix > N accepted")
	}
}

// Fig 5's qualitative shape at laptop scale: higher exponents forge fewer
// URLs per unit time, and per-item attempt cost grows with the exponent.
func TestRunFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("time-budgeted campaign")
	}
	cfg := Fig5Config{
		Capacity:     50000,
		FPRExponents: []int{5, 10},
		TimeBudget:   800 * time.Millisecond,
		Checkpoint:   1000,
		Seed:         1,
	}
	series, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if s.K != s.FPRExponent {
			t.Errorf("k = %d for exponent %d", s.K, s.FPRExponent)
		}
		if s.Forged == 0 {
			t.Errorf("exponent %d forged nothing", s.FPRExponent)
		}
	}
	// Attempts per forged item grows with the exponent (exponential cost).
	apf5 := float64(series[0].Attempts[len(series[0].Attempts)-1]) / float64(series[0].Forged)
	apf10 := float64(series[1].Attempts[len(series[1].Attempts)-1]) / float64(series[1].Forged)
	if apf10 <= apf5 {
		t.Errorf("attempts/item: f=2^-10 (%v) not above f=2^-5 (%v)", apf10, apf5)
	}
}

func TestRunFig5Validation(t *testing.T) {
	if _, err := RunFig5(Fig5Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// Fig 6's qualitative shape: forging cost falls steeply with occupation,
// and analytic attempts match 1/(W/m)^k.
func TestRunFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	cfg := Fig6Config{
		Capacity:       20000,
		FPRExponents:   []int{5},
		OccupationsPct: []int{50, 100},
		Repeats:        2,
		AttemptBudget:  5000000,
		Seed:           1,
	}
	series, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].AnalyticAttempts <= pts[1].AnalyticAttempts {
		t.Errorf("analytic cost did not fall with occupation: %v then %v",
			pts[0].AnalyticAttempts, pts[1].AnalyticAttempts)
	}
	// At 100% occupation of an f=2^-5 filter, forging is cheap and must
	// have been measured.
	if pts[1].MeasuredAttempts < 0 {
		t.Error("full-occupation forgery not measured")
	}
	// Measured within 5x of analytic (Monte Carlo slack for few repeats).
	ratio := pts[1].MeasuredAttempts / pts[1].AnalyticAttempts
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("measured/analytic = %v", ratio)
	}
}

// Fig 8 headline: no attack ≈ 0.06, full attack ≈ 0.6–0.7, monotone in the
// number of polluted stages.
func TestRunFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 11 dablooms instances")
	}
	cfg := DefaultFig8Config()
	cfg.StageCapacity = 2000 // laptop-scale; same fill fractions and FPRs
	cfg.Probes = 50000
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EstimatedF) != cfg.Stages+1 {
		t.Fatalf("got %d levels", len(res.EstimatedF))
	}
	if math.Abs(res.AnalyticNoAttack-0.0634) > 0.005 {
		t.Errorf("analytic no-attack F = %v, want ≈0.063", res.AnalyticNoAttack)
	}
	if res.AnalyticFull < 0.55 || res.AnalyticFull > 0.75 {
		t.Errorf("analytic full-attack F = %v, paper shows ≈0.6–0.7", res.AnalyticFull)
	}
	if math.Abs(res.EstimatedF[0]-res.AnalyticNoAttack) > 0.03 {
		t.Errorf("estimated no-attack F = %v vs analytic %v", res.EstimatedF[0], res.AnalyticNoAttack)
	}
	if math.Abs(res.EstimatedF[cfg.Stages]-res.AnalyticFull) > 0.08 {
		t.Errorf("estimated full F = %v vs analytic %v", res.EstimatedF[cfg.Stages], res.AnalyticFull)
	}
	for i := 1; i <= cfg.Stages; i++ {
		if res.EstimatedF[i] < res.EstimatedF[i-1]-0.01 {
			t.Errorf("F not monotone at level %d: %v then %v", i, res.EstimatedF[i-1], res.EstimatedF[i])
		}
	}
	// Empirical probing tracks the estimates.
	if len(res.EmpiricalF) == cfg.Stages+1 {
		if math.Abs(res.EmpiricalF[cfg.Stages]-res.EstimatedF[cfg.Stages]) > 0.05 {
			t.Errorf("empirical full F = %v vs estimated %v",
				res.EmpiricalF[cfg.Stages], res.EstimatedF[cfg.Stages])
		}
	}
}

func TestRunFig9(t *testing.T) {
	rows := RunFig9([]uint64{128, 1024}, []int{5, 10, 15, 20})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// 128 MB = 2^30 bits → ⌈log₂m⌉ = 30; k=10 → 300 bits.
	if got := rows[0].BitsNeeded[10]; got != 300 {
		t.Errorf("bits(128MB, 2^-10) = %d, want 300", got)
	}
	// 1 GB = 2^33 bits → 33 bits; k=20 → 660.
	if got := rows[1].BitsNeeded[20]; got != 660 {
		t.Errorf("bits(1GB, 2^-20) = %d, want 660", got)
	}
	out := FormatFig9(rows, []int{5, 10, 15, 20})
	if !strings.Contains(out, "300") || !strings.Contains(out, "660") {
		t.Errorf("formatted Fig9 missing values:\n%s", out)
	}
}

func TestRunFig9Domains(t *testing.T) {
	domains := RunFig9Domains([]int{5, 10, 15, 20})
	byKey := map[string]uint64{}
	for _, d := range domains {
		byKey[d.Algorithm.String()+"/"+strconv.Itoa(d.FPRExponent)] = d.MaxMBytes
	}
	// Fig 9: one SHA-512 call covers f ≥ 2^-15 for m under a GByte:
	// 512/15 = 34 bits → 2^34 bits = 2 GB.
	if byKey["SHA-512/15"] < 1024 {
		t.Errorf("SHA-512 @ 2^-15 covers %d MB, want ≥ 1 GB", byKey["SHA-512/15"])
	}
	// f = 2^-20: 512/20 = 25 bits → 4 MB only — "several calls" territory.
	if byKey["SHA-512/20"] >= 1024 {
		t.Errorf("SHA-512 @ 2^-20 covers %d MB, want < 1 GB", byKey["SHA-512/20"])
	}
	// SHA-1 @ 2^-5: 160/5 = 32 bits → 512 MB.
	if byKey["SHA-1/5"] != 512 {
		t.Errorf("SHA-1 @ 2^-5 = %d MB, want 512", byKey["SHA-1/5"])
	}
}

func TestRunTable1(t *testing.T) {
	rows := RunTable1(32, 3200, 4, 800)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Probability != math.Pow(2, -32) {
		t.Errorf("hash second pre-image = %v", rows[0].Probability)
	}
	// Ordering claim from §4.3: "The pollution attack has the highest
	// success probability" — true for W below m/2.
	if rows[2].Probability <= rows[3].Probability {
		t.Errorf("pollution (%v) not above forgery (%v) at W=m/4", rows[2].Probability, rows[3].Probability)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Pollution") || !strings.Contains(out, "Deletion") {
		t.Errorf("formatted table:\n%s", out)
	}
}

// Table 2's shape: recycling beats naive for every wide digest, and the
// speedup roughly tracks the call-count ratio.
func TestRunTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	cfg := DefaultTable2Config()
	cfg.Iterations = 5000
	rows, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[hashes.Algorithm]Table2Row{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
	}
	for _, alg := range []hashes.Algorithm{hashes.SHA1, hashes.SHA256, hashes.SHA384, hashes.SHA512, hashes.MD5} {
		r := byAlg[alg]
		if math.IsNaN(r.RecycleNs) {
			t.Errorf("%v: recycling unavailable", alg)
			continue
		}
		if r.Speedup < 2 {
			t.Errorf("%v: speedup = %v, want ≥ 2 (k=10 calls vs %d)", alg, r.Speedup, r.RecycleCalls)
		}
	}
	// SHA-512: one call for k=10, m≈1.44e7 (10×24=240 ≤ 512).
	if byAlg[hashes.SHA512].RecycleCalls != 1 {
		t.Errorf("SHA-512 recycle calls = %d, want 1", byAlg[hashes.SHA512].RecycleCalls)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "SHA-512") || !strings.Contains(out, "MurmurHash-32") {
		t.Errorf("formatted table:\n%s", out)
	}
}

func TestRunTable2Validation(t *testing.T) {
	if _, err := RunTable2(Table2Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestRunSquid(t *testing.T) {
	if testing.Short() {
		t.Skip("forging campaign")
	}
	cfg := cachedigest.DefaultExperimentConfig()
	res, err := RunSquid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Polluted.FalseHits <= res.Clean.FalseHits {
		t.Errorf("no amplification: %d vs %d", res.Polluted.FalseHits, res.Clean.FalseHits)
	}
	out := FormatSquid(res, cfg.Probes)
	if !strings.Contains(out, "762") {
		t.Errorf("formatted squid table:\n%s", out)
	}
}
