package analysis

import (
	"fmt"
	"math"
	"time"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
)

// Fig6Config parameterizes the ghost-URL (false-positive) forging cost
// experiment: the cost of crafting one false positive as a function of the
// filter occupation (insertions / capacity).
type Fig6Config struct {
	// Capacity is the pyBloom capacity (10⁶ in the paper; the cost depends
	// only on the fill fraction, so smaller capacities reproduce the curve
	// faster).
	Capacity uint64
	// FPRExponents lists e in f = 2^−e (5 and 10 in the paper).
	FPRExponents []int
	// OccupationsPct lists the x-axis points (10..100 by 10 in the paper).
	OccupationsPct []int
	// Repeats averages the measured cost over this many forgeries.
	Repeats int
	// AttemptBudget caps the per-forgery search; points whose analytic cost
	// exceeds it report only the analytic estimate (the paper's low-
	// occupation points took up to 3 hours — see EXPERIMENTS.md).
	AttemptBudget uint64
	// Seed drives the URL streams.
	Seed int64
}

// DefaultFig6Config returns laptop-scale defaults.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Capacity:       200000,
		FPRExponents:   []int{5, 10},
		OccupationsPct: []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Repeats:        3,
		AttemptBudget:  3000000,
		Seed:           1,
	}
}

// Fig6Point is one (occupation, cost) measurement.
type Fig6Point struct {
	// OccupationPct is insertions/capacity in percent.
	OccupationPct int
	// AnalyticAttempts is 1/p with p = ∏ sliceFill — the expected
	// candidates per forged false positive.
	AnalyticAttempts float64
	// MeasuredAttempts is the observed average (−1 when the budget was
	// exceeded and no forgery succeeded).
	MeasuredAttempts float64
	// MeasuredSeconds is the observed average wall-clock per forgery (−1 as
	// above).
	MeasuredSeconds float64
	// EstimatedSeconds is AnalyticAttempts × the measured per-candidate
	// cost — the full-curve reconstruction of the paper's minutes-scale
	// y-axis.
	EstimatedSeconds float64
}

// Fig6Series is the curve for one false-positive exponent.
type Fig6Series struct {
	FPRExponent  int
	K            int
	NsPerAttempt float64
	Points       []Fig6Point
}

// RunFig6 regenerates Fig 6.
func RunFig6(cfg Fig6Config) ([]Fig6Series, error) {
	if cfg.Capacity == 0 || cfg.Repeats <= 0 || len(cfg.OccupationsPct) == 0 {
		return nil, fmt.Errorf("analysis: invalid Fig6 config %+v", cfg)
	}
	out := make([]Fig6Series, 0, len(cfg.FPRExponents))
	for _, e := range cfg.FPRExponents {
		f := math.Pow(2, -float64(e))
		filter, err := core.NewPyBloom(cfg.Capacity, f)
		if err != nil {
			return nil, err
		}
		series := Fig6Series{FPRExponent: e, K: filter.K()}
		series.NsPerAttempt = measureAttemptCost(filter, cfg.Seed)
		fill := urlgen.New(cfg.Seed + 1)
		view := attack.NewPartitionedView(filter)
		var inserted uint64
		for _, pct := range cfg.OccupationsPct {
			targetInserted := cfg.Capacity * uint64(pct) / 100
			for inserted < targetInserted {
				filter.Add(fill.Next())
				inserted++
			}
			point := Fig6Point{OccupationPct: pct}
			p := filter.EstimatedFPR()
			if p > 0 {
				point.AnalyticAttempts = 1 / p
			} else {
				point.AnalyticAttempts = math.Inf(1)
			}
			point.EstimatedSeconds = point.AnalyticAttempts * series.NsPerAttempt / 1e9
			if point.AnalyticAttempts <= float64(cfg.AttemptBudget)/3 {
				forger := attack.NewForger(view, urlgen.New(cfg.Seed+int64(100*pct)))
				var totalAttempts uint64
				start := time.Now()
				ok := true
				for r := 0; r < cfg.Repeats; r++ {
					if _, _, err := forger.ForgeFalsePositive(cfg.AttemptBudget); err != nil {
						ok = false
						break
					}
				}
				if ok {
					totalAttempts = forger.Attempts
					point.MeasuredAttempts = float64(totalAttempts) / float64(cfg.Repeats)
					point.MeasuredSeconds = time.Since(start).Seconds() / float64(cfg.Repeats)
				} else {
					point.MeasuredAttempts, point.MeasuredSeconds = -1, -1
				}
			} else {
				point.MeasuredAttempts, point.MeasuredSeconds = -1, -1
			}
			series.Points = append(series.Points, point)
		}
		out = append(out, series)
	}
	return out, nil
}

// measureAttemptCost times candidate evaluation (URL generation + k digests
// + occupancy checks) against the given filter.
func measureAttemptCost(filter *core.Partitioned, seed int64) float64 {
	gen := urlgen.New(seed + 999)
	var idx []uint64
	const samples = 20000
	start := time.Now()
	var sink bool
	for i := 0; i < samples; i++ {
		idx = filter.Indexes(idx[:0], gen.Next())
		sink = sink != filter.TestIndexes(idx)
	}
	_ = sink
	return float64(time.Since(start).Nanoseconds()) / samples
}
