package analysis

import (
	"fmt"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

// Fig3Config parameterizes the pollution-curve experiment of Fig 3.
type Fig3Config struct {
	// M and K are the filter geometry (3200 and 4 in the paper).
	M uint64
	K int
	// N is the number of insertions per curve (600).
	N int
	// HonestPrefix is the number of honest insertions before the partial
	// attack begins (400).
	HonestPrefix int
	// Seed drives the URL streams.
	Seed int64
}

// DefaultFig3Config returns the paper's parameters.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{M: 3200, K: 4, N: 600, HonestPrefix: 400, Seed: 1}
}

// Fig3Result carries the three measured curves plus the analytic references.
type Fig3Result struct {
	// Curves: estimated FPR (W/m)^k after insertion i+1, for each strategy.
	Random      []float64
	Adversarial []float64
	Partial     []float64
	// AnalyticRandom is eq (1) per insertion count; AnalyticAdversarial is
	// eq (7).
	AnalyticRandom      []float64
	AnalyticAdversarial []float64
	// ThresholdFPR is f_opt for (M, N) — the designer's expectation.
	ThresholdFPR float64
	// Crossings gives the insertion count at which each curve first reaches
	// ThresholdFPR (0 = never). Paper: random 600, adversarial 422,
	// partial 510.
	CrossingRandom      int
	CrossingAdversarial int
	CrossingPartial     int
	// ForgeAttempts counts the adversary's candidate URLs over the full
	// adversarial campaign.
	ForgeAttempts uint64
}

func newFig3Filter(cfg Fig3Config) (*core.Bloom, error) {
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		return nil, err
	}
	fam, err := hashes.NewSalted(d, cfg.K, cfg.M)
	if err != nil {
		return nil, err
	}
	return core.NewBloom(fam), nil
}

// RunFig3 executes the three insertion strategies and records the estimated
// false-positive probability after every insertion.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	if cfg.N <= 0 || cfg.HonestPrefix < 0 || cfg.HonestPrefix > cfg.N {
		return nil, fmt.Errorf("analysis: invalid Fig3 config %+v", cfg)
	}
	res := &Fig3Result{ThresholdFPR: core.OptimalFPR(cfg.M, uint64(cfg.N))}

	// Random insertions.
	random, err := newFig3Filter(cfg)
	if err != nil {
		return nil, err
	}
	gen := urlgen.New(cfg.Seed)
	for i := 0; i < cfg.N; i++ {
		random.Add(gen.Next())
		res.Random = append(res.Random, random.EstimatedFPR())
	}

	// Fully adversarial insertions.
	adversarial, err := newFig3Filter(cfg)
	if err != nil {
		return nil, err
	}
	adv := attack.NewChosenInsertion(attack.NewBloomView(adversarial), adversarial, adversarial, urlgen.New(cfg.Seed+1))
	points, err := adv.PolluteN(cfg.N, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: adversarial campaign: %w", err)
	}
	for _, p := range points {
		res.Adversarial = append(res.Adversarial, p.FPR)
	}
	res.ForgeAttempts = adv.Forger().Attempts

	// Partial: honest prefix, then adversarial.
	partial, err := newFig3Filter(cfg)
	if err != nil {
		return nil, err
	}
	honest := urlgen.New(cfg.Seed + 2)
	for i := 0; i < cfg.HonestPrefix; i++ {
		partial.Add(honest.Next())
		res.Partial = append(res.Partial, partial.EstimatedFPR())
	}
	padv := attack.NewChosenInsertion(attack.NewBloomView(partial), partial, partial, urlgen.New(cfg.Seed+3))
	ppoints, err := padv.PolluteN(cfg.N-cfg.HonestPrefix, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: partial campaign: %w", err)
	}
	for _, p := range ppoints {
		res.Partial = append(res.Partial, p.FPR)
	}

	// Analytic references.
	for i := 1; i <= cfg.N; i++ {
		res.AnalyticRandom = append(res.AnalyticRandom, core.FPR(cfg.M, uint64(i), cfg.K))
		res.AnalyticAdversarial = append(res.AnalyticAdversarial, core.AdversarialFPR(cfg.M, uint64(i), cfg.K))
	}

	res.CrossingRandom = firstCrossing(res.Random, res.ThresholdFPR)
	res.CrossingAdversarial = firstCrossing(res.Adversarial, res.ThresholdFPR)
	res.CrossingPartial = firstCrossing(res.Partial, res.ThresholdFPR)
	return res, nil
}

// firstCrossing returns the 1-based index where curve first reaches
// threshold, or 0 when it never does.
func firstCrossing(curve []float64, threshold float64) int {
	for i, v := range curve {
		if v >= threshold {
			return i + 1
		}
	}
	return 0
}
