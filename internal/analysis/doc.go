// Package analysis is the experiment harness: it drives the attacks against
// the filters and application substrates to regenerate every figure and
// table of the paper's evaluation, and renders series as aligned text
// tables and ASCII charts for the CLI.
//
// One Run* function exists per artefact — RunFig3 (pollution curves),
// RunFig5 (polluting-URL forging cost), RunFig6 (ghost-URL cost vs
// occupation), RunFig8 (Dablooms compound FPR), RunFig9 (digest-bit
// budgets), RunTable1 (attack success probabilities), RunTable2 (naive vs
// recycling query cost) and RunSquid (§7's two-proxy experiment). Each
// takes a Config with a Seed so every experiment is reproducible, and
// returns plain data that cmd/evilbloom formats next to the paper's
// reference values.
package analysis
