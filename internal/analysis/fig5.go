package analysis

import (
	"fmt"
	"math"
	"time"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
)

// Fig5Config parameterizes the polluting-URL forging cost experiment: for
// each false-positive exponent e the adversary forges URLs against a
// pyBloom filter sized for Capacity items at f = 2^−e, exactly the
// Scrapy/pyBloom setup of §5.2.
type Fig5Config struct {
	// Capacity is pyBloom's capacity parameter (10⁶ in the paper).
	Capacity uint64
	// FPRExponents lists the e in f = 2^−e (5, 10, 15, 20 in the paper).
	FPRExponents []int
	// TimeBudget bounds each curve's wall-clock time (the paper ran f=2⁻⁵
	// to completion in 38 s and f=2⁻²⁰ for two hours; a budget keeps the
	// regeneration laptop-scale — curves are cut where the paper's plot is
	// cut by its 600 s y-limit).
	TimeBudget time.Duration
	// Checkpoint records a point every this many forged URLs.
	Checkpoint int
	// MaxItems stops a curve early (0 = Capacity).
	MaxItems uint64
	// Seed drives the candidate URL stream.
	Seed int64
}

// DefaultFig5Config returns laptop-scale defaults preserving the paper's
// shape (exponential growth of forging time in the exponent).
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Capacity:     1000000,
		FPRExponents: []int{5, 10, 15, 20},
		TimeBudget:   3 * time.Second,
		Checkpoint:   5000,
		Seed:         1,
	}
}

// Fig5Series is one curve: cumulative forging time at item-count checkpoints.
type Fig5Series struct {
	// FPRExponent and K identify the curve (k = e for pyBloom).
	FPRExponent int
	K           int
	// Items and Seconds are the checkpoint coordinates.
	Items   []uint64
	Seconds []float64
	// Attempts is the cumulative candidate count at each checkpoint.
	Attempts []uint64
	// Forged is the total forged when the run stopped.
	Forged uint64
	// Completed reports whether the curve reached its item target within
	// the time budget.
	Completed bool
	// NsPerAttempt is the average cost of one candidate evaluation.
	NsPerAttempt float64
}

// RunFig5 regenerates Fig 5.
func RunFig5(cfg Fig5Config) ([]Fig5Series, error) {
	if cfg.Capacity == 0 || cfg.Checkpoint <= 0 || cfg.TimeBudget <= 0 {
		return nil, fmt.Errorf("analysis: invalid Fig5 config %+v", cfg)
	}
	target := cfg.MaxItems
	if target == 0 || target > cfg.Capacity {
		target = cfg.Capacity
	}
	out := make([]Fig5Series, 0, len(cfg.FPRExponents))
	for _, e := range cfg.FPRExponents {
		f := math.Pow(2, -float64(e))
		filter, err := core.NewPyBloom(cfg.Capacity, f)
		if err != nil {
			return nil, err
		}
		series := Fig5Series{FPRExponent: e, K: filter.K()}
		forger := attack.NewForger(attack.NewPartitionedView(filter), urlgen.New(cfg.Seed))
		start := time.Now()
		deadline := start.Add(cfg.TimeBudget)
		var forged uint64
		for forged < target {
			item, _, err := forger.ForgePolluting(0)
			if err != nil {
				return nil, err
			}
			filter.Add(item)
			forged++
			if forged%uint64(cfg.Checkpoint) == 0 || forged == target {
				series.Items = append(series.Items, forged)
				series.Seconds = append(series.Seconds, time.Since(start).Seconds())
				series.Attempts = append(series.Attempts, forger.Attempts)
				if time.Now().After(deadline) {
					break
				}
			}
		}
		series.Forged = forged
		series.Completed = forged >= target
		if forger.Attempts > 0 {
			series.NsPerAttempt = time.Since(start).Seconds() * 1e9 / float64(forger.Attempts)
		}
		out = append(out, series)
	}
	return out, nil
}
