package analysis

import (
	"fmt"
	"math"

	"evilbloom/internal/hashes"
)

// Fig9Row is one x-axis point of Fig 9: a filter size and, per
// false-positive exponent, the digest bits one item consumes
// (k·⌈log₂ m⌉).
type Fig9Row struct {
	// MBytes is the filter size in megabytes.
	MBytes uint64
	// M is the filter size in bits.
	M uint64
	// BitsNeeded maps exponent e (f = 2^−e) to k·⌈log₂m⌉.
	BitsNeeded map[int]int
}

// RunFig9 computes the Fig 9 surface for the given filter sizes (in MB) and
// false-positive exponents.
func RunFig9(sizesMB []uint64, exponents []int) []Fig9Row {
	rows := make([]Fig9Row, 0, len(sizesMB))
	for _, mb := range sizesMB {
		m := mb << 23 // MB → bits
		if m == 0 {
			m = 1
		}
		row := Fig9Row{MBytes: mb, M: m, BitsNeeded: make(map[int]int, len(exponents))}
		for _, e := range exponents {
			k := e // pyBloom/optimal k = ⌈log₂(1/f)⌉ = e
			row.BitsNeeded[e] = hashes.RequiredBits(k, m)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig9Domain gives, for one hash function and false-positive exponent, the
// largest filter (in MB) still covered by a single digest call — the domain
// boundaries drawn in Fig 9.
type Fig9Domain struct {
	Algorithm   hashes.Algorithm
	FPRExponent int
	// MaxMBytes is the largest single-call filter size; 0 when even 1 MB
	// needs several calls.
	MaxMBytes uint64
}

// DomainCapMBytes caps reported single-call domains at 1 TB: beyond that the
// boundary is of no practical interest (Fig 9's x-axis stops at 1 GByte).
const DomainCapMBytes = 1 << 20

// RunFig9Domains computes the single-call domain boundary for each standard
// hash at each exponent: k·⌈log₂m⌉ ≤ ℓ ⟺ log₂m ≤ ⌊ℓ/k⌋.
func RunFig9Domains(exponents []int) []Fig9Domain {
	algs := []hashes.Algorithm{hashes.SHA1, hashes.SHA256, hashes.SHA384, hashes.SHA512}
	out := make([]Fig9Domain, 0, len(algs)*len(exponents))
	for _, alg := range algs {
		for _, e := range exponents {
			k := e
			maxLog2M := alg.DigestBits() / k
			dom := Fig9Domain{Algorithm: alg, FPRExponent: e}
			switch {
			case maxLog2M >= 43: // ≥ 1 TB of filter
				dom.MaxMBytes = DomainCapMBytes
			case maxLog2M >= 23: // ≥ 1 MB of filter
				bits := math.Pow(2, float64(maxLog2M))
				dom.MaxMBytes = uint64(bits / 8 / (1 << 20))
			}
			out = append(out, dom)
		}
	}
	return out
}

// FormatFig9 renders the Fig 9 table for the CLI.
func FormatFig9(rows []Fig9Row, exponents []int) string {
	headers := []string{"m (MB)"}
	for _, e := range exponents {
		headers = append(headers, fmt.Sprintf("bits @ f=2^-%d", e))
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := []string{fmt.Sprintf("%d", r.MBytes)}
		for _, e := range exponents {
			row = append(row, fmt.Sprintf("%d", r.BitsNeeded[e]))
		}
		table = append(table, row)
	}
	return FormatTable(headers, table)
}
