package analysis

import (
	"fmt"
	"math"
	"strings"
)

// Series is a labelled sequence of (x, y) points.
type Series struct {
	// Label names the curve (e.g. "f_adv").
	Label string
	// X and Y hold the coordinates; lengths must match.
	X []float64
	Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// FormatTable renders rows as an aligned text table with a header rule.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// chartGlyphs marks successive series on one chart.
var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderChart draws series as an ASCII scatter plot of the given interior
// dimensions, with linear axes spanning the data range.
func RenderChart(title string, series []*Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := chartGlyphs[si%len(chartGlyphs)]
		for i := range s.X {
			cx := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = glyph
			}
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g ", maxY)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", minY)
		}
		b.WriteString(label)
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(fmt.Sprintf("%10s%-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", chartGlyphs[si%len(chartGlyphs)], s.Label))
	}
	b.WriteString("          " + strings.Join(legend, "   "))
	b.WriteByte('\n')
	return b.String()
}
