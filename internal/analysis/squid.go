package analysis

import (
	"fmt"

	"evilbloom/internal/cachedigest"
)

// SquidResult pairs the clean control with the polluted attack run of the
// §7 experiment.
type SquidResult struct {
	Clean    *cachedigest.ExperimentResult
	Polluted *cachedigest.ExperimentResult
}

// RunSquid executes both runs of the §7 cache-digest experiment.
func RunSquid(cfg cachedigest.ExperimentConfig) (*SquidResult, error) {
	clean, err := cachedigest.RunExperiment(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("analysis: clean squid run: %w", err)
	}
	polluted, err := cachedigest.RunExperiment(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("analysis: polluted squid run: %w", err)
	}
	return &SquidResult{Clean: clean, Polluted: polluted}, nil
}

// FormatSquid renders the experiment for the CLI.
func FormatSquid(r *SquidResult, probes int) string {
	rows := [][]string{
		{"digest size (bits)", fmt.Sprintf("%d", r.Clean.DigestBits), fmt.Sprintf("%d", r.Polluted.DigestBits), "762"},
		{"digest weight", fmt.Sprintf("%d", r.Clean.DigestWeight), fmt.Sprintf("%d", r.Polluted.DigestWeight), "-"},
		{"digest FPR (W/m)^4", fmt.Sprintf("%.3f", r.Clean.DigestFPR), fmt.Sprintf("%.3f", r.Polluted.DigestFPR), "-"},
		{fmt.Sprintf("false hits / %d probes", probes), fmt.Sprintf("%d", r.Clean.FalseHits), fmt.Sprintf("%d", r.Polluted.FalseHits), "40 vs 79"},
		{"wasted RTT", r.Clean.WastedRTT.String(), r.Polluted.WastedRTT.String(), "≥10ms each"},
		{"forge attempts", fmt.Sprintf("%d", r.Clean.ForgeAttempts), fmt.Sprintf("%d", r.Polluted.ForgeAttempts), "-"},
	}
	return FormatTable([]string{"Metric", "Clean", "Polluted", "Paper"}, rows)
}
