package spamfilter

import (
	"errors"
	"fmt"
	"testing"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func smallConfig() core.DabloomsConfig {
	cfg := core.DefaultDabloomsConfig()
	cfg.StageCapacity = 500
	cfg.MaxStages = 2
	return cfg
}

func TestShortenResolveRoundTrip(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	short, err := s.Shorten("http://honest.example.com/page")
	if err != nil {
		t.Fatal(err)
	}
	long, ok := s.Resolve(short)
	if !ok || long != "http://honest.example.com/page" {
		t.Errorf("Resolve = %q, %v", long, ok)
	}
	if _, ok := s.Resolve("https://bit.ly/nope"); ok {
		t.Error("resolved a never-created link")
	}
}

func TestBlacklistBlocksReported(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.ReportMalicious("http://malware.example.com/")
	if _, err := s.Shorten("http://malware.example.com/"); !errors.Is(err, ErrBlacklisted) {
		t.Errorf("blacklisted URL shortened: %v", err)
	}
	if s.Stats.Rejected != 1 || s.Stats.Reports != 1 {
		t.Errorf("stats: %+v", s.Stats)
	}
}

func TestRemoveReportUnblocks(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.ReportMalicious("http://appealed.example.com/")
	if err := s.RemoveReport("http://appealed.example.com/"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shorten("http://appealed.example.com/"); err != nil {
		t.Errorf("removed URL still blocked: %v", err)
	}
	if err := s.RemoveReport("http://never-reported.example.com/"); err == nil {
		t.Log("removal of unreported URL succeeded: false positive (acceptable)")
	}
}

func TestHonestRejectionRateLow(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := urlgen.New(1)
	for i := 0; i < 1000; i++ { // fills both stages to design capacity
		s.ReportMalicious(reports.URL())
	}
	honest := urlgen.New(999)
	for i := 0; i < 2000; i++ {
		s.Shorten(honest.URL()) //nolint:errcheck // rejection is the measurement
	}
	if rate := s.RejectionRate(); rate > 0.05 {
		t.Errorf("honest rejection rate = %v, want ≤ f0-ish", rate)
	}
}

// §6.2 pollution via the report feed: crafted reports inflate the compound
// false-positive probability, denying service to honest URLs.
func TestPollutionRaisesRejections(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The adversary pollutes each stage as it appears, using instant
	// forgery (the filter uses MurmurHash3 + Kirsch–Mitzenmacher).
	total := int(cfg.StageCapacity) * cfg.MaxStages
	for i := 0; i < total; i++ {
		stages := s.Blacklist().CountingStages()
		last := stages[len(stages)-1]
		fam, ok := last.Family().(*hashes.DoubleHashing)
		if !ok {
			t.Fatal("dablooms stage does not use double hashing")
		}
		forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		item, err := forger.PollutingItem(attack.NewCountingView(last), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		s.ReportMalicious(string(item))
	}
	honest := urlgen.New(999)
	for i := 0; i < 2000; i++ {
		s.Shorten(honest.URL()) //nolint:errcheck
	}
	rate := s.RejectionRate()
	// Full pollution drives each stage's FPR to (δk/m)^k ≈ 0.066 and the
	// compound F to ≈ 1-(1-0.066)…; must far exceed the honest ≈0.03.
	if rate < 0.10 {
		t.Errorf("polluted rejection rate = %v, want ≥ 0.10", rate)
	}
}

// §6.2 deletion: the adversary's malicious URL is reported by the honest
// feed; she then crafts a second pre-image and appeals ITS takedown,
// whitelisting her malware.
func TestDeletionWhitelistsMalware(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := urlgen.New(5)
	for i := 0; i < 300; i++ { // stays within stage 0's capacity
		s.ReportMalicious(reports.URL())
	}
	malware := "http://actual-malware.example.com/dropper"
	s.ReportMalicious(malware)
	if _, err := s.Shorten(malware); !errors.Is(err, ErrBlacklisted) {
		t.Fatal("malware not blocked after report")
	}

	stage := s.Blacklist().CountingStages()[0]
	fam, ok := stage.Family().(*hashes.DoubleHashing)
	if !ok {
		t.Fatal("stage family type")
	}
	victimIdx := fam.Clone().Indexes(nil, []byte(malware))
	forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), 1)
	if err != nil {
		t.Fatal(err)
	}
	doppel, err := forger.SecondPreimage(victimIdx)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveReport(string(doppel)); err != nil {
		t.Fatalf("appeal refused: %v", err)
	}
	if _, err := s.Shorten(malware); err != nil {
		t.Errorf("malware still blocked after second-preimage deletion: %v", err)
	}
}

// §6.2 overflow: a full stage that contains nothing. The insertion counter
// says δ, the counters say empty — wasted memory and a useless filter.
func TestOverflowEmptyStage(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stage := s.Blacklist().CountingStages()[0]
	fam := stage.Family().(*hashes.DoubleHashing)
	forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), 2)
	if err != nil {
		t.Fatal(err)
	}
	items, err := forger.EmptyViaOverflow(stage, cfg.StageCapacity)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		s.ReportMalicious(string(it))
	}
	if stage.Count() != cfg.StageCapacity {
		t.Errorf("stage insertion count = %d, want %d", stage.Count(), cfg.StageCapacity)
	}
	if w := stage.Weight(); w > 1 {
		t.Errorf("stage weight = %d — overflow attack failed", w)
	}
	// None of the "reported" URLs is actually detected any more.
	detected := 0
	for _, it := range items[:100] {
		if stage.Test(it) {
			detected++
		}
	}
	if detected > 1 {
		t.Errorf("%d overflow items still detected", detected)
	}
}

func TestRejectionRateEmpty(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.RejectionRate() != 0 {
		t.Error("fresh service has non-zero rejection rate")
	}
}

func BenchmarkShorten(b *testing.B) {
	s, err := New(smallConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Shorten(fmt.Sprintf("http://site-%d.example.com/", i)) //nolint:errcheck
	}
}
