package spamfilter

import (
	"fmt"
	"strconv"

	"evilbloom/internal/core"
)

// Stats aggregates service counters.
type Stats struct {
	// Shortened counts successfully created short links.
	Shortened int
	// Rejected counts requests refused because the blacklist matched.
	Rejected int
	// Reports counts malicious-URL reports ingested.
	Reports int
	// Removals counts takedown appeals honoured.
	Removals int
}

// Shortener is the URL-shortening service.
type Shortener struct {
	blacklist *core.Dablooms
	links     map[string]string
	serial    uint64

	// Stats accumulates service counters.
	Stats Stats
}

// New builds a shortener over a Dablooms blacklist with the given
// configuration (use core.DefaultDabloomsConfig for the paper's Fig 8
// parameters).
func New(cfg core.DabloomsConfig) (*Shortener, error) {
	bl, err := core.NewDablooms(cfg)
	if err != nil {
		return nil, fmt.Errorf("spamfilter: building blacklist: %w", err)
	}
	return &Shortener{
		blacklist: bl,
		links:     make(map[string]string),
	}, nil
}

// Blacklist exposes the underlying filter for attack drivers and reports
// (the implementation is public in the threat model).
func (s *Shortener) Blacklist() *core.Dablooms { return s.blacklist }

// ReportMalicious ingests a malicious-URL report into the blacklist. This
// is the chosen-insertion channel: anyone can get URLs reported (§6.2 —
// "flood the web with her malicious URLs... or register her URLs directly
// to anti-phishing websites").
func (s *Shortener) ReportMalicious(url string) {
	s.blacklist.Add([]byte(url))
	s.Stats.Reports++
}

// RemoveReport honours a takedown appeal: the URL is deleted from the
// blacklist. This is the deletion channel of §6.2.
func (s *Shortener) RemoveReport(url string) error {
	if err := s.blacklist.Remove([]byte(url)); err != nil {
		return fmt.Errorf("spamfilter: removing report: %w", err)
	}
	s.Stats.Removals++
	return nil
}

// ErrBlacklisted is returned (wrapped) by Shorten for blacklisted URLs.
var ErrBlacklisted = fmt.Errorf("spamfilter: URL is blacklisted")

// Shorten creates a short link for url unless the blacklist matches it.
// False positives therefore deny service to honest URLs — the damage the
// Fig 8 pollution attack maximizes.
func (s *Shortener) Shorten(url string) (string, error) {
	if s.blacklist.Test([]byte(url)) {
		s.Stats.Rejected++
		return "", fmt.Errorf("%w: %s", ErrBlacklisted, url)
	}
	s.serial++
	short := "https://bit.ly/" + strconv.FormatUint(s.serial, 36)
	s.links[short] = url
	s.Stats.Shortened++
	return short, nil
}

// Resolve expands a short link.
func (s *Shortener) Resolve(short string) (string, bool) {
	long, ok := s.links[short]
	return long, ok
}

// RejectionRate returns the fraction of Shorten calls refused so far.
func (s *Shortener) RejectionRate() float64 {
	total := s.Stats.Shortened + s.Stats.Rejected
	if total == 0 {
		return 0
	}
	return float64(s.Stats.Rejected) / float64(total)
}
