// Package spamfilter models a Bitly-style URL shortener protected by a
// Dablooms blacklist (§6): URLs reported as malicious (e.g. via PhishTank)
// are inserted into a scaling counting Bloom filter; shortening requests
// for blacklisted URLs are refused; takedown appeals remove entries. The
// three §6 attacks — pollution, adversarial deletion, counter overflow —
// all enter through these same honest interfaces: the adversary never needs
// more than the ability to report, request, and appeal.
//
// examples/evilcounting and examples/dabloomspollution stage the attacks
// against this substrate end to end.
package spamfilter
