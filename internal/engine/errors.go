package engine

import (
	"errors"
	"fmt"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/service"
)

// Kind classifies a command failure independently of any wire format. The
// codecs own the rendering — HTTP maps kinds to status codes (400, 404,
// 405, 409, 429, 401, 413, 500), RESP to reply classes (-ERR, -WRONGTYPE,
// -BUSY, -WRONGPASS) — but the decision of *what went wrong* is made here,
// once, so the two planes cannot drift into the almost-identical
// enforcement gap an adversary hunts for.
type Kind int

const (
	// KindInvalid is a malformed command: bad item, bad batch, bad spec.
	KindInvalid Kind = iota + 1
	// KindNotFound names a filter the registry does not hold.
	KindNotFound
	// KindCapability is an operation the filter's backend cannot perform
	// (remove on a plain bloom variant).
	KindCapability
	// KindConflict is a request refused by current state: name taken,
	// budget exhausted at creation, digest unexportable, and kin.
	KindConflict
	// KindBusy is an exhausted mutation budget (rate limit).
	KindBusy
	// KindUnauthorized is a failed authentication attempt.
	KindUnauthorized
	// KindTooLarge is a request body over the transport cap.
	KindTooLarge
	// KindInternal is everything else.
	KindInternal
)

// Error attaches a Kind to a cause. Error() returns the cause's message
// verbatim so codecs serve the same text they always did.
type Error struct {
	kind Kind
	err  error
}

func (e *Error) Error() string { return e.err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.err }

// wrap attaches kind to err.
func wrap(kind Kind, err error) *Error { return &Error{kind: kind, err: err} }

// errf builds a kinded error from a format string.
func errf(kind Kind, format string, args ...any) *Error {
	return &Error{kind: kind, err: fmt.Errorf(format, args...)}
}

// BusyError reports an exhausted mutation budget: the engine's single
// source for retry arithmetic, rendered as 429 + Retry-After by the HTTP
// codec and as a -BUSY reply by the RESP codec.
type BusyError struct {
	// Filter is the filter whose budget refused the charge.
	Filter string
	// N is the number of mutations the refused command requested.
	N int
	// RetrySecs is how long until the bucket covers the charge, ceiled,
	// floor one second.
	RetrySecs int64
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("mutation budget exhausted for filter %q (%d mutation(s) requested); retry after %ds",
		e.Filter, e.N, e.RetrySecs)
}

// ItemError reports one invalid item: empty, or over MaxItemLen.
type ItemError struct {
	// Index is the item's position within its batch; -1 for single-item
	// commands.
	Index int
	// Len is the offending length; 0 marks an empty item.
	Len int
}

func (e *ItemError) Error() string {
	if e.Len == 0 {
		return "empty item"
	}
	return fmt.Sprintf("item of %d bytes exceeds limit %d", e.Len, service.MaxItemLen)
}

// BatchTooLargeError reports a batch over MaxBatch items.
type BatchTooLargeError struct{ N int }

func (e *BatchTooLargeError) Error() string {
	return fmt.Sprintf("batch of %d items exceeds limit %d", e.N, service.MaxBatch)
}

// ErrEmptyBatch rejects a batch command with no items.
var ErrEmptyBatch = &Error{kind: KindInvalid, err: errors.New("empty batch")}

// ErrNotInFilter refuses a single remove of an item the filter believes
// absent — deleting it anyway would corrupt other items' counters, the
// §4.3 attack this server exists to demonstrate.
var ErrNotInFilter = &Error{kind: KindConflict, err: errors.New("item not in filter; removal refused")}

// Classify maps any error a command can return to its Kind. Engine-typed
// errors carry their kind; service and cachedigest sentinels are mapped
// here — the one table both codecs consult, replacing the per-plane
// errors.Is ladders that used to live in each handler.
func Classify(err error) Kind {
	if err == nil {
		return 0
	}
	var busy *BusyError
	if errors.As(err, &busy) {
		return KindBusy
	}
	var ke *Error
	if errors.As(err, &ke) {
		return ke.kind
	}
	var item *ItemError
	if errors.As(err, &item) {
		return KindInvalid
	}
	var batch *BatchTooLargeError
	if errors.As(err, &batch) {
		return KindInvalid
	}
	switch {
	case errors.Is(err, service.ErrFilterNotFound):
		return KindNotFound
	case errors.Is(err, cachedigest.ErrEnvelopeUnauthenticated):
		// Checked before ErrEnvelopeUnusable/Corrupt: a failed MAC is an
		// identity problem (401), not a transfer problem.
		return KindUnauthorized
	case errors.Is(err, service.ErrNotRemovable):
		return KindCapability
	case errors.Is(err, service.ErrFilterExists),
		errors.Is(err, service.ErrRegistryFull),
		errors.Is(err, service.ErrBudgetExhausted),
		errors.Is(err, service.ErrSnapshotMismatch),
		errors.Is(err, service.ErrNotDurable),
		errors.Is(err, service.ErrDigestUnexportable),
		errors.Is(err, service.ErrPushedDigestLimit),
		errors.Is(err, service.ErrNoPeers),
		errors.Is(err, cachedigest.ErrEnvelopeUnusable):
		return KindConflict
	case errors.Is(err, cachedigest.ErrEnvelopeCorrupt):
		return KindInvalid
	}
	return KindInternal
}
