// Package engine is the protocol-agnostic command core between the wire
// codecs and the filter registry. Every ingress plane — the HTTP/JSON
// server in internal/httpapi, the RESP server in internal/resp — decodes
// its frames into the typed commands here and renders the typed results
// and errors back; validation, identity resolution, rate-limit
// charge/refund and registry dispatch happen exactly once, in this
// package. The paper's §8 mitigation story (per-client mutation budgets,
// pollution attribution) only holds if every path enforces the same
// rules; centralizing the pipeline is what closes the
// two-almost-identical-enforcement-paths gap an adversary hunts for.
//
// The pipeline for a mutating command is always:
//
//	validate → resolve filter → charge principal → dispatch → typed result
//
// with the charge taken after validation (malformed requests cost
// nothing) and before any state changes, and refunded only where
// validation can only happen inside the mutated subsystem (digest push).
package engine

import (
	"io"
	"math"
	"sync"
	"time"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/service"
)

// Engine executes typed commands against a registry on behalf of
// principals. One engine is shared by every wire plane of a process, so
// budgets, accounting and auth state are plane-independent.
type Engine struct {
	reg *service.Registry

	authMu         sync.RWMutex
	authConfigured bool
	tokens         map[string]string

	// peers is the mesh credential roster (-peer-token); see peerauth.go.
	peers peerAuth
}

// New wraps reg in a command engine.
func New(reg *service.Registry) *Engine {
	return &Engine{reg: reg, tokens: map[string]string{}}
}

// Registry exposes the underlying registry for lifecycle wiring (data
// dirs, peer and rate-limit configuration) — not for item operations,
// which must go through engine commands.
func (e *Engine) Registry() *service.Registry { return e.reg }

// FilterRef is a resolved filter handle. Opaque: codecs route every store
// access through engine commands, so holding a ref grants no direct item
// operations. A ref pins its store — a filter deleted after resolution
// still serves the in-flight command, exactly as the old handlers
// behaved.
type FilterRef struct {
	f *service.Filter
}

// Name returns the filter's registry name.
func (fr FilterRef) Name() string { return fr.f.Name() }

// Durable reports whether the filter persists to a data directory.
func (fr FilterRef) Durable() bool { return fr.f.Durable() }

// Lookup resolves a filter name to a ref; unknown names classify as
// KindNotFound.
func (e *Engine) Lookup(name string) (FilterRef, error) {
	f, err := e.reg.Get(name)
	if err != nil {
		return FilterRef{}, err
	}
	return FilterRef{f: f}, nil
}

// ---------------------------------------------------------------------------
// Validation. The single source of the wire-independent item rules; codecs
// call these before staging pipelined work so they can reply in command
// order, and every command method applies them again on its own input.

// ValidateItem bounds a single item: non-empty, at most MaxItemLen bytes.
func ValidateItem(item []byte) error {
	if len(item) == 0 {
		return &ItemError{Index: -1}
	}
	if len(item) > service.MaxItemLen {
		return &ItemError{Index: -1, Len: len(item)}
	}
	return nil
}

// ValidateItems bounds a batch: non-empty, at most MaxBatch items, every
// item within ValidateItem's rule.
func ValidateItems(items [][]byte) error {
	if len(items) == 0 {
		return ErrEmptyBatch
	}
	if len(items) > service.MaxBatch {
		return &BatchTooLargeError{N: len(items)}
	}
	for i, it := range items {
		if len(it) == 0 {
			return &ItemError{Index: i}
		}
		if len(it) > service.MaxItemLen {
			return &ItemError{Index: i, Len: len(it)}
		}
	}
	return nil
}

// charge spends n mutations from p's bucket on ref's filter, converting a
// refusal into a BusyError carrying the retry hint both codecs serve.
func (e *Engine) charge(p Principal, ref FilterRef, n int) error {
	ok, retry := e.reg.Limiter().Allow(ref.f.Name(), p.ID, n)
	if !ok {
		return &BusyError{Filter: ref.f.Name(), N: n, RetrySecs: retrySecs(retry)}
	}
	return nil
}

// retrySecs renders a limiter retry duration as whole seconds, ceiled,
// floor one — the arithmetic previously duplicated by each plane.
func retrySecs(retry time.Duration) int64 {
	secs := int64(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// ---------------------------------------------------------------------------
// Item commands.

// AddResult answers Add and AddBatch.
type AddResult struct {
	// Added is the number of items inserted.
	Added int
	// Count is the filter's distinct-insert estimate after the add.
	Count uint64
}

// Add inserts one item as p.
func (e *Engine) Add(p Principal, ref FilterRef, item []byte) (AddResult, error) {
	if err := ValidateItem(item); err != nil {
		return AddResult{}, err
	}
	if err := e.charge(p, ref, 1); err != nil {
		return AddResult{}, err
	}
	st := ref.f.Store()
	st.Add(item)
	return AddResult{Added: 1, Count: st.Count()}, nil
}

// AddBatch inserts a batch as p, charging per item: the pollution a batch
// can do scales with its size, so a 10000-item batch must not cost what a
// single add does.
func (e *Engine) AddBatch(p Principal, ref FilterRef, items [][]byte) (AddResult, error) {
	if err := ValidateItems(items); err != nil {
		return AddResult{}, err
	}
	if err := e.charge(p, ref, len(items)); err != nil {
		return AddResult{}, err
	}
	st := ref.f.Store()
	st.AddBatch(items)
	return AddResult{Added: len(items), Count: st.Count()}, nil
}

// Test answers membership for one item. Reads are not charged.
func (e *Engine) Test(ref FilterRef, item []byte) (bool, error) {
	if err := ValidateItem(item); err != nil {
		return false, err
	}
	return ref.f.Store().Test(item), nil
}

// TestBatch answers membership for a batch into dst (reused, like the
// store API it fronts). Reads are not charged.
func (e *Engine) TestBatch(ref FilterRef, dst []bool, items [][]byte) ([]bool, error) {
	if err := ValidateItems(items); err != nil {
		return nil, err
	}
	return ref.f.Store().TestBatch(dst, items), nil
}

// RemoveResult answers Remove.
type RemoveResult struct {
	Removed int
	Count   uint64
}

// Remove deletes one item as p. An item the filter believes absent is
// ErrNotInFilter — and the charge stands, exactly as it always has: the
// request was well-formed and the filter did the work of refusing it.
func (e *Engine) Remove(p Principal, ref FilterRef, item []byte) (RemoveResult, error) {
	if err := ValidateItem(item); err != nil {
		return RemoveResult{}, err
	}
	if err := e.charge(p, ref, 1); err != nil {
		return RemoveResult{}, err
	}
	st := ref.f.Store()
	removed, err := st.Remove(item)
	if err != nil {
		//lint:allow chargerefund charge stands: the request was well-formed; the store did the work of refusing it
		return RemoveResult{}, err
	}
	if !removed {
		//lint:allow chargerefund charge stands: probing for removable items must not be free (frozen semantics since PR 1)
		return RemoveResult{}, ErrNotInFilter
	}
	return RemoveResult{Removed: 1, Count: st.Count()}, nil
}

// RemoveBatchResult answers RemoveBatch; Removed is per item in input
// order (false marks items the filter believed absent and refused).
type RemoveBatchResult struct {
	Removed []bool
	Count   uint64
}

// RemoveBatch deletes a batch as p, charging per item. A backend without
// the remove capability fails the whole batch with the charge standing
// (charge-then-capability order, identical on every plane).
func (e *Engine) RemoveBatch(p Principal, ref FilterRef, items [][]byte) (RemoveBatchResult, error) {
	if err := ValidateItems(items); err != nil {
		return RemoveBatchResult{}, err
	}
	if err := e.charge(p, ref, len(items)); err != nil {
		return RemoveBatchResult{}, err
	}
	st := ref.f.Store()
	removed, err := st.RemoveBatch(items)
	if err != nil {
		//lint:allow chargerefund charge stands: charge-then-capability order is identical on every plane by design
		return RemoveBatchResult{}, err
	}
	return RemoveBatchResult{Removed: removed, Count: st.Count()}, nil
}

// ---------------------------------------------------------------------------
// Introspection commands.

// StatsResult answers Stats: the filter's own statistics plus the
// rate-limit aggregate, so one scrape shows both the damage and who was
// allowed to do it.
type StatsResult struct {
	Stats     service.Stats
	RateLimit service.RateLimitStats
}

// Stats snapshots one filter.
func (e *Engine) Stats(ref FilterRef) StatsResult {
	return StatsResult{
		Stats:     ref.f.Store().Stats(),
		RateLimit: e.reg.Limiter().FilterStats(ref.f.Name()),
	}
}

// Clients reports one filter's per-client mutation accounting.
func (e *Engine) Clients(ref FilterRef) service.ClientsReport {
	return e.reg.Limiter().Clients(ref.f.Name())
}

// FilterDescription is a filter's public self-description: parameters plus
// capability set, so a client can discover whether remove or snapshot will
// be accepted before trying. Naive filters publish their seed (the threat
// model's public implementation); hardened filters do not.
type FilterDescription struct {
	Name         string
	Variant      string
	Mode         string
	Shards       int
	K            int
	ShardBits    uint64
	Algorithm    string
	Seed         *uint64
	CounterWidth int
	Overflow     string
	Capabilities []string
	Durable      bool
}

// Describe assembles one filter's public self-description.
func (e *Engine) Describe(ref FilterRef) FilterDescription {
	return describeFilter(ref.f)
}

func describeFilter(f *service.Filter) FilterDescription {
	st := f.Store()
	d := FilterDescription{
		Name:         f.Name(),
		Variant:      st.Variant().String(),
		Mode:         st.Mode().String(),
		Shards:       st.Shards(),
		K:            st.K(),
		ShardBits:    st.ShardBits(),
		Capabilities: []string{"add", "test"},
		Durable:      f.Durable(),
	}
	switch st.Mode() {
	case service.ModeNaive:
		d.Algorithm = "murmur3-double-hashing"
		seed := st.Seed()
		d.Seed = &seed
	case service.ModeHardened:
		d.Algorithm = "siphash-2-4-recycling"
	}
	if st.Variant() == service.VariantCounting {
		d.CounterWidth = st.CounterWidth()
		d.Overflow = st.OverflowPolicy().String()
	}
	if st.Snapshotable() {
		d.Capabilities = append(d.Capabilities, "snapshot")
	}
	if st.Removable() {
		d.Capabilities = append(d.Capabilities, "remove")
	}
	if f.Durable() {
		d.Capabilities = append(d.Capabilities, "compact")
	}
	if st.Mode() == service.ModeNaive {
		// Digest export needs a family a peer can reproduce; hardened
		// filters answer a conflict on the digest command instead.
		d.Capabilities = append(d.Capabilities, "digest")
	}
	return d
}

// List describes every registered filter in name order.
func (e *Engine) List() []FilterDescription {
	filters := e.reg.List()
	out := make([]FilterDescription, len(filters))
	for i, f := range filters {
		out[i] = describeFilter(f)
	}
	return out
}

// ---------------------------------------------------------------------------
// Lifecycle commands.

// CreateFilter builds and registers a filter. Conflicts with existing
// state or limits classify as KindConflict; anything else about the spec
// is KindInvalid.
func (e *Engine) CreateFilter(name string, cfg service.Config) (FilterDescription, error) {
	f, err := e.reg.Create(name, cfg)
	if err != nil {
		return FilterDescription{}, createErr(err)
	}
	return describeFilter(f), nil
}

// CreateFromSnapshot builds a filter from a snapshot envelope.
func (e *Engine) CreateFromSnapshot(name string, rd io.Reader) (FilterDescription, error) {
	f, err := e.reg.CreateFromSnapshot(name, rd)
	if err != nil {
		return FilterDescription{}, createErr(err)
	}
	return describeFilter(f), nil
}

// createErr keeps conflict classification and downgrades the rest to
// KindInvalid: a creation failure that is not a state conflict is a bad
// request, never an internal fault.
func createErr(err error) error {
	if Classify(err) == KindConflict {
		return err
	}
	return wrap(KindInvalid, err)
}

// DeleteFilter removes a filter (and its durable directory).
func (e *Engine) DeleteFilter(name string) error {
	return e.reg.Delete(name)
}

// Snapshot serializes one filter into its versioned, checksummed envelope.
func (e *Engine) Snapshot(ref FilterRef) ([]byte, error) {
	return ref.f.Store().Snapshot()
}

// Compact forces a durable filter's snapshot+log rotation, returning the
// new generation; a memory-only filter classifies as KindConflict so
// operators notice the missing -data-dir instead of trusting a no-op.
func (e *Engine) Compact(ref FilterRef) (uint64, error) {
	if err := ref.f.Compact(); err != nil {
		return 0, err
	}
	return ref.f.Generation(), nil
}

// ---------------------------------------------------------------------------
// Digest and routing commands (§7 between nodes).

// DigestResult answers Digest.
type DigestResult struct {
	// Blob is the cache-digest envelope.
	Blob []byte
	// ETag is the entity tag for the generation the blob captures.
	ETag string
}

// DigestETag returns the current digest entity tag without serializing
// anything — the O(shards) read a conditional request costs.
func (e *Engine) DigestETag(ref FilterRef) string {
	st := ref.f.Store()
	return st.DigestETag(st.Generation())
}

// Digest exports one filter's cache digest. Hardened filters classify as
// KindConflict (their keyed family never travels).
func (e *Engine) Digest(ref FilterRef) (DigestResult, error) {
	st := ref.f.Store()
	blob, gen, err := st.DigestEnvelope()
	if err != nil {
		return DigestResult{}, err
	}
	return DigestResult{Blob: blob, ETag: st.DigestETag(gen)}, nil
}

// DigestExchangeResult answers DigestExchange.
type DigestExchangeResult struct {
	// Blob is the digest frame — a full envelope or a delta — sealed with
	// this node's mesh credential when Sealer is non-empty.
	Blob []byte
	// ETag is the entity tag for the content the frame brings the peer to.
	ETag string
	// Delta reports whether Blob is a delta frame.
	Delta bool
	// Sealer is this node's peer name when the frame carries a MAC trailer.
	Sealer string
}

// DigestExchange is the mesh-aware digest export: haveETag is the content
// the requesting peer last ACKed (a delta may be diffed against it),
// deltaOK its capability to apply one, peerToken the mesh credential it
// presented. A valid credential earns a response sealed with THIS node's
// own credential; presenting one to a node with no roster — or a bad one
// anywhere — is KindUnauthorized, never a silent downgrade to unsealed.
// The conditional-GET 304 path stays upstream of this call and keys off
// If-None-Match alone; haveETag only ever selects the frame kind.
func (e *Engine) DigestExchange(ref FilterRef, haveETag string, deltaOK bool, peerToken string) (DigestExchangeResult, error) {
	sealer, sealSecret := "", ""
	if peerToken != "" {
		if !e.PeerAuthEnabled() {
			return DigestExchangeResult{}, errf(KindUnauthorized,
				"peer credentials presented, but this node has no mesh roster (-peer-token)")
		}
		if _, err := e.PeerLogin(peerToken); err != nil {
			return DigestExchangeResult{}, err
		}
		name, secret, ok := e.selfCred()
		if !ok {
			return DigestExchangeResult{}, errf(KindUnauthorized,
				"this node's own mesh credential was revoked; it can no longer seal digests")
		}
		sealer, sealSecret = name, secret
	}
	blob, etag, _, isDelta, err := ref.f.Store().DigestExchange(haveETag, deltaOK)
	if err != nil {
		return DigestExchangeResult{}, err
	}
	if sealer != "" {
		blob = cachedigest.Seal(blob, []byte(sealSecret))
	}
	return DigestExchangeResult{Blob: blob, ETag: etag, Delta: isDelta, Sealer: sealer}, nil
}

// DigestPush imports a sibling's digest envelope under label, as p. A
// pushed digest mutates this node's routing state, so it spends from the
// pusher's mutation budget like any other write. Unlike add/remove, the
// envelope can only be validated inside the push, so the charge is taken
// up front and refunded on any failure — a rejected push must not have
// cost the pusher budget or shown up as an allowed mutation. (One
// mutation per push, whatever the digest's size: a digest's routing
// leverage is bounded by the separate retention budget.)
//
// peerToken is the mesh credential presented alongside the push. On an
// authenticated mesh it is mandatory — an unauthenticated push is refused
// with KindUnauthorized before any budget is spent — and the body must be
// sealed by the presenting peer's credential. The charge then lands on the
// peer principal's bucket, not the transport identity's. Presenting a
// token to a node with no roster is refused too: credentials must never
// silently degrade.
func (e *Engine) DigestPush(p Principal, ref FilterRef, label string, rd io.Reader, peerToken string) (service.PeerStatus, error) {
	if !service.ValidFilterName(label) {
		return service.PeerStatus{}, errf(KindInvalid,
			"invalid peer label %q: labels follow the filter-name rule (%s)", label, service.FilterNamePattern())
	}
	sealer := ""
	sealed := false
	if e.PeerAuthEnabled() {
		if peerToken == "" {
			return service.PeerStatus{}, errf(KindUnauthorized,
				"this mesh requires a peer credential to push digests (%s)", service.HeaderPeerToken)
		}
		pp, err := e.PeerLogin(peerToken)
		if err != nil {
			return service.PeerStatus{}, err
		}
		p, sealer, sealed = pp, pp.Name, true
	} else if peerToken != "" {
		return service.PeerStatus{}, errf(KindUnauthorized,
			"peer credentials presented, but this node has no mesh roster (-peer-token)")
	}
	if err := e.charge(p, ref, 1); err != nil {
		return service.PeerStatus{}, err
	}
	status, err := e.reg.Peers().Push(ref.f.Name(), label, rd, sealer, sealed)
	if err != nil {
		e.reg.Limiter().Refund(ref.f.Name(), p.ID, 1)
		return service.PeerStatus{}, pushErr(err)
	}
	return status, nil
}

// pushErr keeps conflict/invalid/unauthorized classification and
// downgrades unknown push failures to KindInvalid — the envelope came off
// the wire, so an unclassified parse problem is the pusher's transfer
// problem.
func pushErr(err error) error {
	if k := Classify(err); k == KindConflict || k == KindInvalid || k == KindUnauthorized {
		return err
	}
	return wrap(KindInvalid, err)
}

// RouteResult answers Route: the §7 routing decision for one item — serve
// locally, probe a sibling whose digest claims it, or go to the origin. A
// probe sent because of a polluted or merely unlucky digest is the wasted
// round trip the paper's attack inflates.
type RouteResult struct {
	// Local reports whether this node's own filter claims the item.
	Local bool
	// Verdict is "local", "peer" or "origin".
	Verdict string
	// Peer names the first claiming sibling when Verdict is "peer".
	Peer string
	// Claims holds every sibling's individual answer, in peer order.
	Claims []service.PeerClaim
	// ClaimCount is how many siblings claim the item; Quorum is how many
	// it takes for a "peer" verdict. With quorum 1 this is PR 4's
	// first-claiming-peer rule; with quorum ≥ 2 a single poisoned digest
	// cannot swing the verdict by itself.
	ClaimCount int
	Quorum     int
}

// Route answers the routing question for one item: a committee vote over
// the held sibling digests, thresholded by the configured route quorum.
func (e *Engine) Route(ref FilterRef, item []byte) (RouteResult, error) {
	if err := ValidateItem(item); err != nil {
		return RouteResult{}, err
	}
	res := RouteResult{
		Local:  ref.f.Store().Test(item),
		Claims: e.reg.Peers().Claims(ref.f.Name(), item),
		Quorum: e.reg.Peers().Quorum(),
	}
	if res.Claims == nil {
		res.Claims = []service.PeerClaim{}
	}
	claiming, quorumMet := service.QuorumVerdict(res.Claims, res.Quorum)
	res.ClaimCount = claiming
	switch {
	case res.Local:
		res.Verdict = "local"
	case quorumMet:
		res.Verdict = "peer"
		for _, pc := range res.Claims {
			// Squid semantics: a digest routes until replaced, stale or not
			// — the Stale flag in the claim lets stricter callers opt out.
			if pc.Claims {
				res.Peer = pc.Peer
				break
			}
		}
	default:
		res.Verdict = "origin"
	}
	return res, nil
}

// PeerStatus reports one filter's per-peer digest accounting.
func (e *Engine) PeerStatus(ref FilterRef) ([]service.PeerStatus, error) {
	return e.reg.Peers().Status(ref.f.Name())
}

// RefreshPeers synchronously fetches every configured peer's digest for
// one filter — the deterministic alternative to waiting out the jittered
// refresh interval. No configured peers classifies as KindConflict.
func (e *Engine) RefreshPeers(ref FilterRef) ([]service.PeerStatus, error) {
	return e.reg.Peers().RefreshNow(ref.f.Name())
}
