package engine

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"strings"
	"sync"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/service"
)

// Mesh peer credentials: the -peer-token mirror of -auth-token. A client
// token answers "which client is spending this mutation budget"; a peer
// token answers "which node vouches for this digest". Keeping the tables
// separate keeps the threat models separate — a leaked client secret must
// not let its holder seal digests, and a sibling's mesh credential must not
// spend a client's budget. A peer principal's bucket lives under its own
// prefix for the same reason client buckets live under "auth:".
//
// The roster is symmetric: every node is started with the same -peer-token
// list, its own entry first. Digests travel with an HMAC trailer keyed by
// the *sealing* node's secret (see cachedigest.Seal), so verification needs
// the roster, not a per-pair key exchange. Revoking one credential —
// RevokePeerToken, DELETE /v2/peer-tokens/{name} — immediately ejects that
// sibling: its pushes stop authenticating, its sealed fetches stop
// verifying, and every digest it already landed is scrubbed via
// service.Peers.Evict.

// peerBucketPrefix namespaces peer-principal bucket keys away from both
// host identities and client auth buckets.
const peerBucketPrefix = "peer:"

// peerAuth is the engine's mesh credential table.
type peerAuth struct {
	mu         sync.RWMutex
	configured bool
	self       string            // this node's own principal name
	secrets    map[string]string // principal name → MAC secret
}

// ConfigurePeerAuth installs the mesh roster from "name:secret" entries
// (the -peer-token flag, repeatable). The FIRST entry is this node's own
// credential — the secret it seals outgoing digests with and the token it
// presents when fetching. One-shot, before traffic, and it registers the
// engine as the peer subsystem's authority so fetch loops can verify and
// revocation can scrub.
func (e *Engine) ConfigurePeerAuth(entries []string) error {
	if len(entries) == 0 {
		return errors.New("engine: peer auth needs at least one name:secret entry (the node's own)")
	}
	e.peers.mu.Lock()
	defer e.peers.mu.Unlock()
	if e.peers.configured {
		return errors.New("engine: peer tokens already configured")
	}
	secrets := make(map[string]string, len(entries))
	self := ""
	for i, entry := range entries {
		name, secret, ok := strings.Cut(entry, ":")
		if !ok || secret == "" {
			return fmt.Errorf("engine: peer token %q: want name:secret with a non-empty secret", entry)
		}
		if !service.ValidClientIdentity(name) || strings.Contains(name, ":") {
			return fmt.Errorf("engine: peer token name %q: want printable ASCII without whitespace or ':', at most %d bytes",
				name, service.MaxClientIdentity)
		}
		if _, dup := secrets[name]; dup {
			return fmt.Errorf("engine: duplicate peer token name %q", name)
		}
		secrets[name] = secret
		if i == 0 {
			self = name
		}
	}
	e.peers.configured = true
	e.peers.self = self
	e.peers.secrets = secrets
	e.reg.Peers().SetAuthority((*peerAuthority)(e))
	return nil
}

// PeerAuthEnabled reports whether a mesh credential roster is installed.
func (e *Engine) PeerAuthEnabled() bool {
	e.peers.mu.RLock()
	defer e.peers.mu.RUnlock()
	return len(e.peers.secrets) > 0
}

// PeerLogin authenticates a combined "name:secret" mesh credential and
// returns the peer principal. Constant-time, like client Login, and the
// failure message does not reveal whether the name exists.
func (e *Engine) PeerLogin(token string) (Principal, error) {
	name, secret, ok := strings.Cut(token, ":")
	if !ok {
		return Principal{}, wrap(KindUnauthorized,
			errors.New("malformed peer credentials; want name:secret"))
	}
	e.peers.mu.RLock()
	want, known := e.peers.secrets[name]
	e.peers.mu.RUnlock()
	if !known {
		// Burn comparable time for unknown names so timing does not
		// enumerate the roster.
		subtle.ConstantTimeCompare([]byte(secret), []byte(secret))
		return Principal{}, errBadCredentials
	}
	if subtle.ConstantTimeCompare([]byte(secret), []byte(want)) != 1 {
		return Principal{}, errBadCredentials
	}
	return Principal{ID: peerBucketPrefix + name, Name: name}, nil
}

// RevokePeerToken removes one peer's mesh credential and scrubs every
// digest it authenticated, across all filters. Returns how many digests
// were evicted and whether the name was on the roster at all. Revoking is
// deliberately NOT one-shot-guarded: ejecting an evil sibling mid-campaign
// is the whole point.
func (e *Engine) RevokePeerToken(name string) (evicted int, found bool) {
	e.peers.mu.Lock()
	_, found = e.peers.secrets[name]
	delete(e.peers.secrets, name)
	e.peers.mu.Unlock()
	if !found {
		return 0, false
	}
	// Evict AFTER the credential is gone, never while holding peers.mu: the
	// fetch path's record() checks Authorized inside the watch lock, so
	// this ordering guarantees an in-flight digest either fails that check
	// or is stored before Evict scrubs it — no interleaving lets a revoked
	// peer's digest survive.
	return e.reg.Peers().Evict(name), true
}

// selfCred returns this node's own (name, secret) — false if peer auth is
// unconfigured or the node's own credential was revoked.
func (e *Engine) selfCred() (name, secret string, ok bool) {
	e.peers.mu.RLock()
	defer e.peers.mu.RUnlock()
	if e.peers.self == "" {
		return "", "", false
	}
	secret, ok = e.peers.secrets[e.peers.self]
	return e.peers.self, secret, ok
}

// peerAuthority adapts the engine's credential table to the service layer's
// PeerAuthority interface (service cannot import engine; the registry's
// peer subsystem sees only this narrow view).
type peerAuthority Engine

func (a *peerAuthority) SelfToken() (string, bool) {
	name, secret, ok := (*Engine)(a).selfCred()
	if !ok {
		return "", false
	}
	return name + ":" + secret, true
}

func (a *peerAuthority) Unseal(name string, data []byte) ([]byte, error) {
	e := (*Engine)(a)
	e.peers.mu.RLock()
	secret, ok := e.peers.secrets[name]
	e.peers.mu.RUnlock()
	if !ok {
		// An unknown or revoked sealer fails exactly like a bad MAC: the
		// frame is not authenticated by a live credential.
		return nil, fmt.Errorf("%w: no live credential for peer %q", cachedigest.ErrEnvelopeUnauthenticated, name)
	}
	return cachedigest.Unseal(data, []byte(secret))
}

func (a *peerAuthority) Authorized(name string) bool {
	e := (*Engine)(a)
	e.peers.mu.RLock()
	defer e.peers.mu.RUnlock()
	_, ok := e.peers.secrets[name]
	return ok
}
