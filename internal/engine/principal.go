package engine

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"evilbloom/internal/service"
)

// Principal is the identity a command runs as: the key its mutations are
// charged to and attributed under. Two resolutions exist:
//
//   - Anonymous: the transport peer host (or, behind -trust-proxy, a
//     header-claimed identity). NAT'd clients share one bucket — the
//     coarse default the paper's §8 mitigation has to live with.
//   - Authenticated: a token presented over HTTP (Authorization: Bearer
//     name:secret) or RESP (AUTH / HELLO ... AUTH). The bucket key becomes
//     "auth:<name>", shared across every plane and connection the client
//     uses and distinct from its NAT host's bucket — budgets and pollution
//     attribution follow the client, not the network path.
type Principal struct {
	// ID is the rate-limit bucket key and accounting identity.
	ID string
	// Name is the authenticated token name; empty for anonymous principals.
	Name string
}

// Authenticated reports whether the principal presented valid credentials.
func (p Principal) Authenticated() bool { return p.Name != "" }

// authBucketPrefix namespaces authenticated bucket keys away from host
// identities, so an authenticated client's budget cannot collide with —
// or be stolen by — a transport address or header claim.
const authBucketPrefix = "auth:"

// AnonymousFromRemoteAddr resolves the unauthenticated principal for a raw
// transport connection: the peer host, one bucket per NAT.
func AnonymousFromRemoteAddr(remoteAddr string) Principal {
	return Principal{ID: service.IdentityFromRemoteAddr(remoteAddr)}
}

// errBadCredentials deliberately does not say whether the name or the
// secret was wrong.
var errBadCredentials = &Error{kind: KindUnauthorized,
	err: errors.New("invalid credentials: unknown principal or wrong secret")}

// ConfigureAuth installs the token table from "name:secret" entries (the
// -auth-token flag, repeatable). One-shot, before traffic, like the
// registry's rate-limit and peer configuration. Names follow the
// client-identity rule (printable ASCII, bounded) and cannot contain ':';
// secrets must be non-empty.
func (e *Engine) ConfigureAuth(entries []string) error {
	e.authMu.Lock()
	defer e.authMu.Unlock()
	if e.authConfigured {
		return fmt.Errorf("engine: auth tokens already configured")
	}
	tokens := make(map[string]string, len(entries))
	for _, entry := range entries {
		name, secret, ok := strings.Cut(entry, ":")
		if !ok || secret == "" {
			return fmt.Errorf("engine: auth token %q: want name:secret with a non-empty secret", entry)
		}
		if !service.ValidClientIdentity(name) || strings.Contains(name, ":") {
			return fmt.Errorf("engine: auth token name %q: want printable ASCII without whitespace or ':', at most %d bytes",
				name, service.MaxClientIdentity)
		}
		if _, dup := tokens[name]; dup {
			return fmt.Errorf("engine: duplicate auth token name %q", name)
		}
		tokens[name] = secret
	}
	e.authConfigured = true
	e.tokens = tokens
	return nil
}

// AuthEnabled reports whether any auth tokens are installed.
func (e *Engine) AuthEnabled() bool {
	e.authMu.RLock()
	defer e.authMu.RUnlock()
	return len(e.tokens) > 0
}

// Login authenticates name/secret against the token table, returning the
// authenticated principal whose bucket is shared across planes. The
// comparison is constant-time and the failure message does not reveal
// whether the name exists.
func (e *Engine) Login(name, secret string) (Principal, error) {
	e.authMu.RLock()
	want, ok := e.tokens[name]
	e.authMu.RUnlock()
	if !ok {
		// Burn comparable time for unknown names so timing does not
		// enumerate the token table.
		subtle.ConstantTimeCompare([]byte(secret), []byte(secret))
		return Principal{}, errBadCredentials
	}
	if subtle.ConstantTimeCompare([]byte(secret), []byte(want)) != 1 {
		return Principal{}, errBadCredentials
	}
	return Principal{ID: authBucketPrefix + name, Name: name}, nil
}

// LoginToken authenticates a combined "name:secret" credential — the shape
// a single-argument RESP AUTH or an HTTP bearer token carries.
func (e *Engine) LoginToken(token string) (Principal, error) {
	name, secret, ok := strings.Cut(token, ":")
	if !ok {
		return Principal{}, wrap(KindUnauthorized,
			errors.New("malformed credentials; want name:secret"))
	}
	return e.Login(name, secret)
}

// HTTPPrincipal resolves a request's principal. Presented credentials are
// authoritative: a bad bearer token is an authentication error, never a
// silent fall-through to the anonymous identity (that would let a client
// shed a throttled auth bucket by garbling its token). Without an
// Authorization header the anonymous resolution applies — transport peer
// host, or a trusted proxy claim.
func (e *Engine) HTTPPrincipal(r *http.Request) (Principal, error) {
	if auth := r.Header.Get("Authorization"); auth != "" {
		const scheme = "Bearer "
		if len(auth) <= len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
			return Principal{}, wrap(KindUnauthorized,
				errors.New("unsupported Authorization scheme; use Bearer name:secret"))
		}
		return e.LoginToken(strings.TrimSpace(auth[len(scheme):]))
	}
	return Principal{ID: e.httpIdentity(r)}, nil
}

// httpIdentity resolves the anonymous identity a request's mutations are
// charged to. By default that is the transport peer address — unforgeable
// at this layer. With the registry's trust-proxy setting, a well-formed
// X-Evilbloom-Client claim wins, then the *rightmost* entry of
// X-Forwarded-For: an appending proxy tier vouches only for the hop it
// appended (the last one); the leftmost entries arrive verbatim from the
// client, and keying budgets off them would let an attacker mint a fresh
// identity — and a fresh burst — per request. Malformed values fall
// through rather than erroring, so a garbage header cannot dodge
// accounting altogether.
func (e *Engine) httpIdentity(r *http.Request) string {
	if e.reg.Limiter().TrustProxy() {
		if id := r.Header.Get(service.ClientIdentityHeader); validClaim(id) {
			return id
		}
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			last := xff
			if i := strings.LastIndexByte(xff, ','); i >= 0 {
				last = xff[i+1:]
			}
			if last = strings.TrimSpace(last); validClaim(last) {
				return last
			}
		}
	}
	return service.IdentityFromRemoteAddr(r.RemoteAddr)
}

// validClaim bounds header-claimed identities and keeps them out of the
// authenticated namespaces: a proxy-trusted client must not be able to
// claim "auth:alice" (or "peer:nodeB") and spend that bucket without the
// secret.
func validClaim(id string) bool {
	return service.ValidClientIdentity(id) &&
		!strings.HasPrefix(id, authBucketPrefix) &&
		!strings.HasPrefix(id, peerBucketPrefix)
}
