package engine

// Run-collapsing: the engine-side half of the RESP plane's pipelining
// optimization. A pipelined connection often sends long runs of the same
// command against the same filter (BF.ADD x1, BF.ADD x2, ...); the codec
// stages them into one Run and the engine executes the whole run with one
// or two store passes instead of per-command lock round-trips. Charging
// stays per command: each staged command is a Chunk charged separately at
// execution time, so a collapsed run spends exactly what the same
// commands would have spent uncollapsed, and a budget that runs dry
// mid-run refuses exactly the commands it would have refused — replies
// come back in command order with per-chunk busy markers.

// RunKind selects the collapsed operation of a Run.
type RunKind int

const (
	// RunAdd is a collapsed BF.ADD/BF.MADD run: insert, replying novelty
	// (true when the item was not already claimed present).
	RunAdd RunKind = iota + 1
	// RunTest is a collapsed BF.EXISTS/BF.MEXISTS run: membership only.
	RunTest
	// RunRemove is a collapsed CF.DEL/CF.MDEL run: counting deletion.
	RunRemove
)

// Chunk is one staged command's slice of a Run: N consecutive items. The
// engine marks chunks Busy as budgets run out; the codec renders those in
// place of results.
type Chunk struct {
	// N is how many items of the run's Items belong to this command.
	N int
	// Busy is set by ExecuteRun when this command's charge was refused.
	Busy bool
	// RetrySecs is the retry hint accompanying Busy.
	RetrySecs int64
}

// Run is a staged sequence of same-kind, same-filter commands. The codec
// appends validated items and one Chunk per command, then calls
// ExecuteRun; afterwards Bools holds one answer per *surviving* item in
// order (busy chunks contribute none), or Err holds a whole-run failure
// (capability error on RunRemove) that applies to every non-busy chunk.
type Run struct {
	Kind   RunKind
	Items  [][]byte
	Chunks []Chunk
	Bools  []bool
	Err    error

	// itemScratch backs busy-chunk compaction without per-run allocation.
	itemScratch [][]byte
}

// Reset clears the run for reuse, keeping capacity.
func (r *Run) Reset(kind RunKind) {
	r.Kind = kind
	r.Items = r.Items[:0]
	r.Chunks = r.Chunks[:0]
	r.Bools = r.Bools[:0]
	r.Err = nil
}

// Add stages one command of n items (already appended to Items).
func (r *Run) AddChunk(n int) {
	r.Chunks = append(r.Chunks, Chunk{N: n})
}

// ExecuteRun charges and executes a staged run as p against ref. Mutating
// kinds charge chunk by chunk in staging order — the same order and the
// same per-command granularity as unpipelined execution — then the items
// of every admitted chunk go through the store in one batch pass.
func (e *Engine) ExecuteRun(p Principal, ref FilterRef, run *Run) {
	run.Bools = run.Bools[:0]
	run.Err = nil
	if len(run.Chunks) == 0 {
		return
	}

	items := run.Items
	if run.Kind != RunTest {
		anyBusy := false
		for i := range run.Chunks {
			c := &run.Chunks[i]
			if err := e.charge(p, ref, c.N); err != nil {
				busy := err.(*BusyError)
				c.Busy, c.RetrySecs = true, busy.RetrySecs
				anyBusy = true
			}
		}
		if anyBusy {
			// Compact the admitted chunks' items so the store pass only
			// sees what was actually paid for.
			run.itemScratch = run.itemScratch[:0]
			off := 0
			for _, c := range run.Chunks {
				if !c.Busy {
					run.itemScratch = append(run.itemScratch, run.Items[off:off+c.N]...)
				}
				off += c.N
			}
			items = run.itemScratch
		}
		if len(items) == 0 {
			return
		}
	}

	st := ref.f.Store()
	switch run.Kind {
	case RunAdd:
		// Novelty semantics: reply whether each item was new. One
		// TestBatch before the AddBatch answers that for the whole run —
		// the collapse that makes pipelined BF.ADD cheap.
		run.Bools = st.TestBatch(run.Bools, items)
		st.AddBatch(items)
		for i := range run.Bools {
			run.Bools[i] = !run.Bools[i]
		}
	case RunTest:
		run.Bools = st.TestBatch(run.Bools, items)
	case RunRemove:
		removed, err := st.RemoveBatch(items)
		if err != nil {
			// Capability refusal: the charges stand (the commands were
			// well-formed; the filter did the work of refusing them) and
			// every admitted chunk reports the error.
			run.Err = err
			return
		}
		run.Bools = append(run.Bools, removed...)
	}
}
