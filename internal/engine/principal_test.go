package engine

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"evilbloom/internal/service"
)

// testEngine builds an engine over a fresh registry, optionally behind a
// trusting proxy tier.
func testEngine(t *testing.T, trustProxy bool) *Engine {
	t.Helper()
	reg := service.NewRegistry()
	if trustProxy {
		if err := reg.ConfigureRateLimit(service.RateLimitConfig{
			MutationsPerSec: 1000, Burst: 1000, TrustProxy: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { reg.Close() }) //nolint:errcheck // memory-only
	return New(reg)
}

// Identity resolution: the transport address by default; header claims only
// behind trust-proxy, only well-formed ones, and never into the
// authenticated namespace.
func TestClientIdentityResolution(t *testing.T) {
	mk := func(remote string, hdr map[string]string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v2/filters/f/add", nil)
		r.RemoteAddr = remote
		for k, v := range hdr {
			r.Header.Set(k, v)
		}
		return r
	}
	cases := []struct {
		name       string
		r          *http.Request
		trustProxy bool
		want       string
	}{
		{"remote addr", mk("10.1.2.3:555", nil), false, "10.1.2.3"},
		{"headers ignored untrusted", mk("10.1.2.3:555", map[string]string{service.ClientIdentityHeader: "mallory"}), false, "10.1.2.3"},
		{"client header trusted", mk("10.1.2.3:555", map[string]string{service.ClientIdentityHeader: "mallory"}), true, "mallory"},
		{"client header beats xff", mk("10.1.2.3:555", map[string]string{service.ClientIdentityHeader: "m", "X-Forwarded-For": "9.9.9.9"}), true, "m"},
		{"xff rightmost (nearest-proxy) hop", mk("10.1.2.3:555", map[string]string{"X-Forwarded-For": "evil-claim, 8.8.8.8"}), true, "8.8.8.8"},
		{"xff single hop", mk("10.1.2.3:555", map[string]string{"X-Forwarded-For": "9.9.9.9"}), true, "9.9.9.9"},
		{"control chars fall through", mk("10.1.2.3:555", map[string]string{service.ClientIdentityHeader: "a\x01b"}), true, "10.1.2.3"},
		{"oversized falls through", mk("10.1.2.3:555", map[string]string{service.ClientIdentityHeader: strings.Repeat("x", 300)}), true, "10.1.2.3"},
		{"auth-namespace claim falls through", mk("10.1.2.3:555", map[string]string{service.ClientIdentityHeader: "auth:alice"}), true, "10.1.2.3"},
		{"auth-namespace xff falls through", mk("10.1.2.3:555", map[string]string{"X-Forwarded-For": "auth:alice"}), true, "10.1.2.3"},
		{"ipv6 remote", mk("[::1]:555", nil), true, "::1"},
	}
	for _, tc := range cases {
		e := testEngine(t, tc.trustProxy)
		p, err := e.HTTPPrincipal(tc.r)
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if p.ID != tc.want || p.Authenticated() {
			t.Errorf("%s: principal %+v, want anonymous %q", tc.name, p, tc.want)
		}
	}
}

func TestConfigureAuthValidation(t *testing.T) {
	bad := [][]string{
		{"alice"},                         // no secret separator
		{"alice:"},                        // empty secret
		{":s3cret"},                       // empty name
		{"al ice:s3cret"},                 // whitespace in name
		{"a\x01b:s3cret"},                 // control character
		{strings.Repeat("x", 200) + ":s"}, // name over the identity bound
		{"alice:s1", "alice:s2"},          // duplicate name
	}
	for _, entries := range bad {
		if err := testEngine(t, false).ConfigureAuth(entries); err == nil {
			t.Errorf("entries %q accepted", entries)
		}
	}
	e := testEngine(t, false)
	// Secrets may contain ':' — only the first separator splits.
	if err := e.ConfigureAuth([]string{"alice:se:cr:et", "bob.1_2-3:pw"}); err != nil {
		t.Fatal(err)
	}
	if err := e.ConfigureAuth([]string{"carol:pw"}); err == nil {
		t.Error("reconfiguration accepted")
	}
	if !e.AuthEnabled() {
		t.Error("configured engine reports auth disabled")
	}
	if testEngine(t, false).AuthEnabled() {
		t.Error("unconfigured engine reports auth enabled")
	}
}

func TestLoginAndBucketIdentity(t *testing.T) {
	e := testEngine(t, false)
	if err := e.ConfigureAuth([]string{"alice:s3cret"}); err != nil {
		t.Fatal(err)
	}
	p, err := e.Login("alice", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "auth:alice" || p.Name != "alice" || !p.Authenticated() {
		t.Errorf("authenticated principal %+v", p)
	}
	if _, err := e.Login("alice", "wrong"); Classify(err) != KindUnauthorized {
		t.Errorf("wrong secret: %v", err)
	}
	if _, err := e.Login("nobody", "s3cret"); Classify(err) != KindUnauthorized {
		t.Errorf("unknown name: %v", err)
	}
	// The failure message must not reveal which part was wrong.
	wrongSecretErr := errText(t, e, "alice", "wrong")
	unknownNameErr := errText(t, e, "nobody", "x")
	if wrongSecretErr != unknownNameErr {
		t.Errorf("error text distinguishes unknown name from wrong secret:\n  %q\n  %q", wrongSecretErr, unknownNameErr)
	}

	// LoginToken splits on the FIRST colon, so secrets may contain colons.
	e2 := testEngine(t, false)
	if err := e2.ConfigureAuth([]string{"bob:pa:ss"}); err != nil {
		t.Fatal(err)
	}
	if p, err := e2.LoginToken("bob:pa:ss"); err != nil || p.ID != "auth:bob" {
		t.Errorf("colon-bearing secret: %+v, %v", p, err)
	}
	if _, err := e2.LoginToken("no-separator"); Classify(err) != KindUnauthorized {
		t.Errorf("malformed token: %v", err)
	}
}

func errText(t *testing.T, e *Engine, name, secret string) string {
	t.Helper()
	_, err := e.Login(name, secret)
	if err == nil {
		t.Fatalf("login %s/%s unexpectedly succeeded", name, secret)
	}
	return err.Error()
}

// A presented-but-invalid bearer credential is 401 material, never a silent
// fall-through to the anonymous bucket — garbling a token must not shed a
// throttled identity.
func TestHTTPPrincipalBearer(t *testing.T) {
	e := testEngine(t, false)
	if err := e.ConfigureAuth([]string{"alice:s3cret"}); err != nil {
		t.Fatal(err)
	}
	mk := func(auth string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v2/filters/f/add", nil)
		r.RemoteAddr = "10.1.2.3:555"
		if auth != "" {
			r.Header.Set("Authorization", auth)
		}
		return r
	}
	if p, err := e.HTTPPrincipal(mk("Bearer alice:s3cret")); err != nil || p.ID != "auth:alice" {
		t.Errorf("valid bearer: %+v, %v", p, err)
	}
	// Scheme matching is case-insensitive per RFC 9110.
	if p, err := e.HTTPPrincipal(mk("bearer alice:s3cret")); err != nil || p.ID != "auth:alice" {
		t.Errorf("lowercase scheme: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"Bearer alice:wrong",
		"Bearer nobody:x",
		"Bearer malformed-token",
		"Basic YWxpY2U6czNjcmV0",
		"Bearer",
	} {
		if _, err := e.HTTPPrincipal(mk(bad)); Classify(err) != KindUnauthorized {
			t.Errorf("%q: err %v, want unauthorized", bad, err)
		}
	}
	if p, err := e.HTTPPrincipal(mk("")); err != nil || p.ID != "10.1.2.3" || p.Authenticated() {
		t.Errorf("no header: %+v, %v, want anonymous transport identity", p, err)
	}
}
