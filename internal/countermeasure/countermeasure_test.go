package countermeasure

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"evilbloom/internal/attack"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func TestDesignWorstCase(t *testing.T) {
	d, err := DesignWorstCase(3200, 600)
	if err != nil {
		t.Fatal(err)
	}
	if d.K != 2 || d.OptimalK != 4 {
		t.Errorf("K = %d (want 2), OptimalK = %d (want 4)", d.K, d.OptimalK)
	}
	// k_opt/k_adv = e·ln2 ≈ 1.88 before rounding.
	if ratio := core.OptimalK(3200, 600) / core.WorstCaseK(3200, 600); math.Abs(ratio-1.88) > 0.01 {
		t.Errorf("k ratio = %v", ratio)
	}
	// The hardened design caps the adversary far below what she forces
	// against the classic design.
	if d.AdversarialFPR >= d.OptimalAdversarialFPR {
		t.Errorf("hardening did not help: %v vs %v", d.AdversarialFPR, d.OptimalAdversarialFPR)
	}
	// The honest price is modest (eq 12 vs eq 3).
	if d.HonestFPR < d.OptimalFPR {
		t.Error("worst-case design cannot beat the optimal honest FPR")
	}
	if _, err := DesignWorstCase(0, 5); err == nil {
		t.Error("m=0 accepted")
	}
}

// End-to-end ablation: the same pollution campaign against the classic and
// the worst-case design — the adversary's achieved FPR must match eq (7)
// and eq (10) respectively, with the hardened filter well below.
func TestWorstCaseDesignContainsPollution(t *testing.T) {
	const m, n = 3200, 600
	classic, err := core.NewBloomOptimal(n, core.OptimalFPR(m, n), hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := NewWorstCaseBloom(m, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string]*core.Bloom{"classic": classic, "hardened": hardened} {
		adv := attack.NewChosenInsertion(attack.NewBloomView(b), b, b, urlgen.New(3))
		if _, err := adv.PolluteN(n, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	classicFPR := classic.EstimatedFPR()
	hardenedFPR := hardened.EstimatedFPR()
	if hardenedFPR >= classicFPR {
		t.Errorf("hardened FPR %v not below classic %v under attack", hardenedFPR, classicFPR)
	}
	if math.Abs(hardenedFPR-core.WorstCaseAdvFPR(m, n)) > 0.05 {
		t.Errorf("hardened FPR = %v, eq (10) predicts %v", hardenedFPR, core.WorstCaseAdvFPR(m, n))
	}
}

func TestRandomKey(t *testing.T) {
	a, err := RandomKey(32)
	if err != nil || len(a) != 32 {
		t.Fatalf("RandomKey: %v, len %d", err, len(a))
	}
	b, err := RandomKey(32)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Error("two random keys identical")
	}
}

func TestNewKeyedBloom(t *testing.T) {
	key, err := RandomKey(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKeyedBloom(1000, 0.01, hashes.HMACSHA256, key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		b.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.Test([]byte(fmt.Sprintf("item-%d", i))) {
			t.Fatal("keyed filter false negative")
		}
	}
	if _, err := NewKeyedBloom(1000, 0.01, hashes.SHA256, nil); err == nil {
		t.Error("unkeyed algorithm accepted")
	}
	if _, err := NewKeyedBloom(0, 0.01, hashes.HMACSHA256, key); err == nil {
		t.Error("capacity 0 accepted")
	}
}

// Fig 9: a single SHA-512 call covers every optimal filter with f ≥ 2⁻¹⁵
// and m under a GByte (8.6·10⁹ bits).
func TestPlanRecyclingFig9(t *testing.T) {
	gbit := uint64(8) << 30 // one GByte of filter
	for _, exp := range []int{5, 10, 15} {
		f := math.Pow(2, -float64(exp))
		plan, err := PlanRecycling(f, gbit)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Calls[hashes.SHA512] != 1 {
			t.Errorf("f=2^-%d: SHA-512 calls = %d, want 1", exp, plan.Calls[hashes.SHA512])
		}
	}
	// f = 2⁻²⁰ needs several calls at 1 GByte (20 indexes × 33 bits = 660 > 512).
	plan, err := PlanRecycling(math.Pow(2, -20), gbit)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Calls[hashes.SHA512] < 2 {
		t.Errorf("f=2^-20: SHA-512 calls = %d, want ≥ 2", plan.Calls[hashes.SHA512])
	}
	if plan.BitsNeeded != 20*hashes.BitsPerIndex(gbit) {
		t.Errorf("BitsNeeded = %d", plan.BitsNeeded)
	}
	if _, err := PlanRecycling(0, 100); err == nil {
		t.Error("f=0 accepted")
	}
}

func TestCheapestSingleCall(t *testing.T) {
	// Small filter, f=2^-5: 5 indexes × 17 bits = 85 bits → SHA-1 suffices.
	alg, ok := CheapestSingleCall(1.0/32, 100000)
	if !ok || alg != hashes.SHA1 {
		t.Errorf("cheapest = %v, %v; want SHA-1", alg, ok)
	}
	// Large filter, tiny f: no single call.
	if _, ok := CheapestSingleCall(math.Pow(2, -20), 8<<30); ok {
		t.Error("single call claimed for f=2^-20 at 1 GByte")
	}
}

func TestNewUniversalBloom(t *testing.T) {
	b, key, err := NewUniversalBloom(600, 0.077)
	if err != nil {
		t.Fatal(err)
	}
	if key == nil || len(key.A) != b.K() {
		t.Fatal("key geometry mismatch")
	}
	for i := 0; i < 600; i++ {
		b.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	for i := 0; i < 600; i++ {
		if !b.Test([]byte(fmt.Sprintf("item-%d", i))) {
			t.Fatal("universal filter false negative")
		}
	}
	fp := 0
	for i := 0; i < 50000; i++ {
		if b.Test([]byte(fmt.Sprintf("probe-%d", i))) {
			fp++
		}
	}
	got := float64(fp) / 50000
	if math.Abs(got-0.077) > 0.025 {
		t.Errorf("universal empirical FPR = %v, want ≈0.077", got)
	}
	if _, _, err := NewUniversalBloom(0, 0.077); err == nil {
		t.Error("capacity 0 accepted")
	}
}

// Universal hashing defeats the forger exactly like the MAC variant: the
// adversary who models the filter with her own guessed key gains nothing.
func TestUniversalBloomResistsForgery(t *testing.T) {
	server, _, err := NewUniversalBloom(600, 0.077)
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(8)
	for i := 0; i < 600; i++ {
		server.Add(gen.Next())
	}
	// Adversary's model: same bit pattern, her own (wrong) key.
	model, _, err := NewUniversalBloom(600, 0.077)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range server.Bits().Support() {
		model.AddIndexes([]uint64{i})
	}
	forger := attack.NewForger(attack.NewBloomView(model), urlgen.New(9))
	hits := 0
	const forgeries = 60
	for i := 0; i < forgeries; i++ {
		item, _, err := forger.ForgeFalsePositive(1 << 22)
		if err != nil {
			t.Fatal(err)
		}
		if server.Test(item) {
			hits++
		}
	}
	rate := float64(hits) / forgeries
	if rate > server.EstimatedFPR()*3+0.05 {
		t.Errorf("forgery success %v against universal filter, baseline %v", rate, server.EstimatedFPR())
	}
}

func TestXOFExpand(t *testing.T) {
	x, err := NewXOF(hashes.HMACSHA256, []byte("key"))
	if err != nil {
		t.Fatal(err)
	}
	out := x.Expand([]byte("item"), 100)
	if len(out) != 100 {
		t.Fatalf("Expand returned %d bytes", len(out))
	}
	// Deterministic, prefix-consistent, item- and key-sensitive.
	if string(out[:50]) != string(x.Expand([]byte("item"), 50)) {
		t.Error("XOF not prefix-consistent")
	}
	if string(out) == string(x.Expand([]byte("item2"), 100)) {
		t.Error("XOF ignores the item")
	}
	y, err := NewXOF(hashes.HMACSHA256, []byte("other-key"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) == string(y.Expand([]byte("item"), 100)) {
		t.Error("XOF ignores the key")
	}
	if string(out) != string(x.Clone().Expand([]byte("item"), 100)) {
		t.Error("clone diverges")
	}
	if _, err := NewXOF(hashes.HMACSHA256, nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := NewXOF(hashes.MD5, []byte("key")); err == nil {
		t.Error("non-HMAC algorithm accepted")
	}
}

func TestXOFFamily(t *testing.T) {
	fam, err := NewXOFFamily(hashes.HMACSHA512, []byte("secret"), 10, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if fam.K() != 10 || fam.M() != 1<<24 {
		t.Errorf("geometry: k=%d m=%d", fam.K(), fam.M())
	}
	idx := fam.Indexes(nil, []byte("x"))
	if len(idx) != 10 {
		t.Fatalf("got %d indexes", len(idx))
	}
	for _, v := range idx {
		if v >= 1<<24 {
			t.Errorf("index %d out of range", v)
		}
	}
	idx2 := fam.Clone().Indexes(nil, []byte("x"))
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatal("clone disagrees")
		}
	}
	if _, err := NewXOFFamily(hashes.HMACSHA256, []byte("k"), 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
}

// A filter over the XOF family behaves like a normal Bloom filter.
func TestXOFBloomNoFalseNegatives(t *testing.T) {
	fam, err := NewXOFFamily(hashes.HMACSHA256, []byte("secret"), 7, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBloom(fam)
	f := func(items [][]byte) bool {
		for _, it := range items {
			b.Add(it)
		}
		for _, it := range items {
			if !b.Test(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// XOF family index distribution is near-uniform.
func TestXOFFamilyDistribution(t *testing.T) {
	const m = 512
	fam, err := NewXOFFamily(hashes.HMACSHA256, []byte("secret"), 4, m)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, m)
	var idx []uint64
	for i := 0; i < 20000; i++ {
		idx = fam.Indexes(idx[:0], []byte(fmt.Sprintf("item-%d", i)))
		for _, v := range idx {
			counts[v]++
		}
	}
	expected := float64(20000*4) / m
	var chi2 float64
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	if chi2 > 511+6*32 {
		t.Errorf("chi-squared = %.1f", chi2)
	}
}
