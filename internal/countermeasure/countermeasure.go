package countermeasure

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/binary"
	"fmt"
	"hash"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// ---------------------------------------------------------------------------
// §8.1: worst-case parameters.

// WorstCaseDesign captures a filter hardened against chosen insertions: k is
// chosen to minimize the adversary's achievable false-positive probability
// instead of the honest one.
type WorstCaseDesign struct {
	// M and N are the designer's memory and capacity inputs.
	M, N uint64
	// K is k_adv_opt = m/(en) rounded (eq 9).
	K int
	// AdversarialFPR is the best the chosen-insertion adversary can force
	// (eq 10).
	AdversarialFPR float64
	// HonestFPR is the price paid on uniform inputs (eq 11–12).
	HonestFPR float64
	// OptimalK and OptimalFPR are the classic design for comparison.
	OptimalK   int
	OptimalFPR float64
	// OptimalAdversarialFPR is what the adversary forces against the
	// classic design (eq 7 at n = N) — the number the hardening removes.
	OptimalAdversarialFPR float64
}

// DesignWorstCase computes the §8.1 design for a memory budget of m bits
// and n anticipated insertions.
func DesignWorstCase(m, n uint64) (*WorstCaseDesign, error) {
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("countermeasure: m and n must be positive")
	}
	return &WorstCaseDesign{
		M:                     m,
		N:                     n,
		K:                     core.WorstCaseKInt(m, n),
		AdversarialFPR:        core.WorstCaseAdvFPR(m, n),
		HonestFPR:             core.WorstCaseHonestFPR(m, n),
		OptimalK:              core.OptimalKInt(m, n),
		OptimalFPR:            core.OptimalFPR(m, n),
		OptimalAdversarialFPR: core.AdversarialFPR(m, n, core.OptimalKInt(m, n)),
	}, nil
}

// NewWorstCaseBloom builds a filter with worst-case parameters over fast
// non-cryptographic hashing — §8.1's trade: "developers can keep their fast
// non-cryptographic hash functions but at the cost of a larger Bloom
// filter"; chosen-insertion adversaries are contained, query-only ones are
// not.
func NewWorstCaseBloom(m, n uint64, seed uint64) (*core.Bloom, error) {
	design, err := DesignWorstCase(m, n)
	if err != nil {
		return nil, err
	}
	fam, err := hashes.NewDoubleHashing(design.K, m, seed)
	if err != nil {
		return nil, err
	}
	return core.NewBloom(fam), nil
}

// ---------------------------------------------------------------------------
// §8.2: keyed filters.

// RandomKey draws n cryptographically random bytes for a server-side key.
func RandomKey(n int) ([]byte, error) {
	key := make([]byte, n)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("countermeasure: drawing key: %w", err)
	}
	return key, nil
}

// NewKeyedBloom builds a classically-sized filter whose indexes come from a
// keyed algorithm (HMAC-SHA-* or SipHash) with digest recycling, so the
// per-query cost stays near one primitive call (Table 2) while every §4
// adversary is reduced to blind guessing.
func NewKeyedBloom(capacity uint64, f float64, alg hashes.Algorithm, key []byte) (*core.Bloom, error) {
	if !alg.Keyed() {
		return nil, fmt.Errorf("countermeasure: %v is not a keyed algorithm", alg)
	}
	m := core.OptimalM(capacity, f)
	if m == 0 {
		return nil, fmt.Errorf("countermeasure: invalid capacity %d or target %v", capacity, f)
	}
	k := core.KForFPR(f)
	d, err := hashes.NewDigester(alg, key)
	if err != nil {
		return nil, err
	}
	fam, err := hashes.NewRecycling(d, k, m)
	if err != nil {
		return nil, err
	}
	return core.NewBloom(fam), nil
}

// NewUniversalBloom builds a classically-sized filter over Carter–Wegman
// universal hashing with a fresh random key — the countermeasure §8.2 cites
// first (Crosby & Wallach's recommendation, deployed in the Heritrix
// spider). Like the MAC variant it defeats all §4 adversaries; unlike it,
// the per-item cost is one polynomial pass, no cryptographic primitive.
func NewUniversalBloom(capacity uint64, f float64) (*core.Bloom, *hashes.UniversalKey, error) {
	m := core.OptimalM(capacity, f)
	if m == 0 {
		return nil, nil, fmt.Errorf("countermeasure: invalid capacity %d or target %v", capacity, f)
	}
	k := core.KForFPR(f)
	key, err := hashes.NewUniversalKey(k)
	if err != nil {
		return nil, nil, err
	}
	fam, err := hashes.NewUniversal(key, k, m)
	if err != nil {
		return nil, nil, err
	}
	return core.NewBloom(fam), key, nil
}

// ---------------------------------------------------------------------------
// §8.2 / Fig 9: the recycling planner.

// RecyclingPlan says how to derive one item's indexes from cryptographic
// digests for a (f, m) design point: the bits required and, per algorithm,
// the number of calls (0 = the digest cannot even hold one index).
type RecyclingPlan struct {
	// F and M are the design inputs.
	F float64
	M uint64
	// K is the optimal hash count ⌈log₂(1/f)⌉.
	K int
	// BitsPerIndex is ⌈log₂ m⌉.
	BitsPerIndex int
	// BitsNeeded is k·⌈log₂m⌉, Fig 9's y-axis.
	BitsNeeded int
	// Calls maps each algorithm to its required invocation count.
	Calls map[hashes.Algorithm]int
}

// PlanRecycling computes the Fig 9 data point for a target false-positive
// probability and filter size.
func PlanRecycling(f float64, m uint64) (*RecyclingPlan, error) {
	if f <= 0 || f >= 1 || m == 0 {
		return nil, fmt.Errorf("countermeasure: invalid plan inputs f=%v m=%d", f, m)
	}
	k := core.KForFPR(f)
	plan := &RecyclingPlan{
		F:            f,
		M:            m,
		K:            k,
		BitsPerIndex: hashes.BitsPerIndex(m),
		BitsNeeded:   hashes.RequiredBits(k, m),
		Calls:        make(map[hashes.Algorithm]int, 5),
	}
	for _, alg := range []hashes.Algorithm{hashes.SHA1, hashes.SHA256, hashes.SHA384, hashes.SHA512} {
		plan.Calls[alg] = hashes.DigestCallsFor(alg, k, m)
	}
	return plan, nil
}

// CheapestSingleCall returns the narrowest standard hash whose single digest
// covers the whole index derivation, or ok=false when several calls are
// unavoidable (the f ≤ 2⁻²⁰ regime of Fig 9).
func CheapestSingleCall(f float64, m uint64) (hashes.Algorithm, bool) {
	plan, err := PlanRecycling(f, m)
	if err != nil {
		return 0, false
	}
	for _, alg := range []hashes.Algorithm{hashes.SHA1, hashes.SHA256, hashes.SHA384, hashes.SHA512} {
		if plan.Calls[alg] == 1 {
			return alg, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// §10: extensible-output stand-in (SHAKE substitute).

// XOF is a keyed extensible-output function built as HMAC in counter mode:
// block_i = HMAC(key, item ‖ i). It stands in for keyed SHAKE-128/256 —
// the "ideal hash function for Bloom filters" the paper's conclusion asks
// for: keyed, uniform, and yielding arbitrary-length output so any (k, m)
// geometry costs ⌈bits/ℓ⌉ PRF calls. Not safe for concurrent use; Clone
// per goroutine.
type XOF struct {
	alg hashes.Algorithm
	key []byte
	mac hash.Hash
}

// NewXOF builds an XOF over HMAC-SHA-256 (bits ≤ 256 per block) or
// HMAC-SHA-512 with the given key.
func NewXOF(alg hashes.Algorithm, key []byte) (*XOF, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("countermeasure: XOF requires a key")
	}
	k := make([]byte, len(key))
	copy(k, key)
	switch alg {
	case hashes.HMACSHA256:
		return &XOF{alg: alg, key: k, mac: hmac.New(sha256.New, k)}, nil
	case hashes.HMACSHA512:
		return &XOF{alg: alg, key: k, mac: hmac.New(sha512.New, k)}, nil
	default:
		return nil, fmt.Errorf("countermeasure: XOF supports HMAC-SHA-256/512, not %v", alg)
	}
}

// Clone returns an independent XOF with the same key.
func (x *XOF) Clone() *XOF {
	nx, err := NewXOF(x.alg, x.key)
	if err != nil {
		// Construction already succeeded once with identical inputs.
		panic("countermeasure: clone of valid XOF failed: " + err.Error())
	}
	return nx
}

// Expand returns outBytes bytes of keyed output for item.
func (x *XOF) Expand(item []byte, outBytes int) []byte {
	out := make([]byte, 0, outBytes)
	var ctr [4]byte
	for i := uint32(0); len(out) < outBytes; i++ {
		x.mac.Reset()
		binary.BigEndian.PutUint32(ctr[:], i)
		x.mac.Write(item)   //nolint:errcheck // hash writes never fail
		x.mac.Write(ctr[:]) //nolint:errcheck
		out = x.mac.Sum(out)
	}
	return out[:outBytes]
}

// XOFFamily derives Bloom indexes from an XOF: exactly ⌈k·⌈log₂m⌉/8⌉ bytes
// are expanded per item.
type XOFFamily struct {
	xof     *XOF
	k       int
	m       uint64
	bitsPer int
}

var _ hashes.IndexFamily = (*XOFFamily)(nil)

// NewXOFFamily builds the family.
func NewXOFFamily(alg hashes.Algorithm, key []byte, k int, m uint64) (*XOFFamily, error) {
	if k <= 0 || m == 0 {
		return nil, fmt.Errorf("countermeasure: invalid geometry k=%d m=%d", k, m)
	}
	xof, err := NewXOF(alg, key)
	if err != nil {
		return nil, err
	}
	return &XOFFamily{xof: xof, k: k, m: m, bitsPer: hashes.BitsPerIndex(m)}, nil
}

// Indexes implements hashes.IndexFamily.
func (f *XOFFamily) Indexes(dst []uint64, item []byte) []uint64 {
	need := (f.k*f.bitsPer + 7) / 8
	stream := f.xof.Expand(item, need)
	var acc uint64
	bits := 0
	produced := 0
	for _, b := range stream {
		acc = acc<<8 | uint64(b)
		bits += 8
		for bits >= f.bitsPer && produced < f.k {
			shift := uint(bits - f.bitsPer)
			v := acc >> shift & (1<<uint(f.bitsPer) - 1)
			acc &= 1<<shift - 1
			bits -= f.bitsPer
			dst = append(dst, v%f.m)
			produced++
		}
		if produced == f.k {
			break
		}
	}
	return dst
}

// K implements hashes.IndexFamily.
func (f *XOFFamily) K() int { return f.k }

// M implements hashes.IndexFamily.
func (f *XOFFamily) M() uint64 { return f.m }

// Clone implements hashes.IndexFamily.
func (f *XOFFamily) Clone() hashes.IndexFamily {
	return &XOFFamily{xof: f.xof.Clone(), k: f.k, m: f.m, bitsPer: f.bitsPer}
}
