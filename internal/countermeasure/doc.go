// Package countermeasure implements §8's defences: worst-case parameter
// design (eq 9–12), keyed index families (MAC-based filters that defeat all
// three adversaries), digest-bit recycling (the "salt and recycle"
// technique making cryptographic hashing affordable, Fig 9 and Table 2),
// and an extensible-output (XOF) construction standing in for SHAKE (§10)
// built from HMAC in counter mode — the standard library has no SHA-3, and
// the substitution preserves the "keyed, arbitrary-length digest" interface
// the paper's conclusion calls for.
//
// The two defence families trade differently:
//
//   - DesignWorstCase / NewWorstCaseBloom (§8.1) keep fast unkeyed hashing
//     and instead pick k = m/(en), minimising what a chosen-insertion
//     adversary can force. Cheap, but query-only adversaries still win.
//   - NewKeyedBloom / NewUniversalBloom (§8.2) move the defence into the
//     hash: a server-side key (HMAC, SipHash, or Carter–Wegman universal
//     hashing) makes indexes unpredictable, reducing every §4 adversary to
//     blind guessing. Digest recycling keeps the per-query cost near one
//     primitive call.
//
// The service package deploys the §8.2 defence live: its hardened mode is
// keyed SipHash with recycling, one derived key per shard.
package countermeasure
