package benchfmt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := New("2026-08-08")
	r.Add(Run{
		Name:      "serve/bloom/mixed",
		Source:    "bench-serve",
		Config:    map[string]string{"variant": "bloom", "conns": "8"},
		Ops:       100000,
		OpsPerSec: 250000,
		Latency:   &Latency{P50: 90000, P90: 120000, P99: 400000, Max: 900000},
	})
	r.Add(Run{
		Name:      "BenchmarkParallelMixed/sharded-16-8",
		Source:    "go-test",
		Ops:       2177628,
		OpsPerSec: 1e9 / 550.1,
		NsPerOp:   550.1,
	})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 || got.Runs[0].Name != "serve/bloom/mixed" {
		t.Fatalf("round trip mangled runs: %+v", got.Runs)
	}
	if *got.Runs[0].Latency != *r.Runs[0].Latency {
		t.Fatalf("latency round trip: %+v != %+v", got.Runs[0].Latency, r.Runs[0].Latency)
	}
}

func TestAddReplacesSameName(t *testing.T) {
	r := sampleReport()
	r.Add(Run{Name: "serve/bloom/mixed", Source: "bench-serve", Ops: 1, OpsPerSec: 1})
	if len(r.Runs) != 2 {
		t.Fatalf("Add duplicated instead of replacing: %d runs", len(r.Runs))
	}
	if r.Runs[0].Ops != 1 {
		t.Fatalf("Add did not replace the run: %+v", r.Runs[0])
	}
}

func TestValidateRejections(t *testing.T) {
	break1 := func(f func(*Report)) *Report {
		r := sampleReport()
		f(r)
		return r
	}
	cases := map[string]*Report{
		"wrong schema":       break1(func(r *Report) { r.Schema = "v2" }),
		"bad date":           break1(func(r *Report) { r.Date = "08/08/2026" }),
		"no runs":            break1(func(r *Report) { r.Runs = nil }),
		"empty name":         break1(func(r *Report) { r.Runs[0].Name = "" }),
		"unknown source":     break1(func(r *Report) { r.Runs[0].Source = "vibes" }),
		"zero ops":           break1(func(r *Report) { r.Runs[0].Ops = 0 }),
		"zero throughput":    break1(func(r *Report) { r.Runs[0].OpsPerSec = 0 }),
		"disordered tiles":   break1(func(r *Report) { r.Runs[0].Latency.P50 = r.Runs[0].Latency.Max + 1 }),
		"duplicate names":    break1(func(r *Report) { r.Runs[1].Name = r.Runs[0].Name }),
		"incomplete host":    break1(func(r *Report) { r.Host.GOARCH = "" }),
		"negative ns_per_op": break1(func(r *Report) { r.Runs[1].NsPerOp = -1 }),
	}
	for name, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema":"evilbloom-bench/v1","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-08-08.json")
	fresh, err := Load(path, "2026-08-08")
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Runs) != 0 || fresh.Date != "2026-08-08" {
		t.Fatalf("missing file should load as a fresh report, got %+v", fresh)
	}
	// An empty report must refuse to save (no runs) ...
	if err := fresh.Save(path); err == nil {
		t.Fatal("saved a report with no runs")
	}
	// ... and a populated one round-trips through disk.
	fresh.Add(sampleReport().Runs[0])
	if err := fresh.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, "2026-08-08")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 1 || back.Runs[0].Name != "serve/bloom/mixed" {
		t.Fatalf("disk round trip mangled runs: %+v", back.Runs)
	}
}

func TestQuantiles(t *testing.T) {
	if got := Quantiles(nil); got != (Latency{}) {
		t.Fatalf("empty samples: %+v", got)
	}
	samples := make([]int64, 100)
	for i := range samples {
		samples[i] = int64(100 - i) // reversed: Quantiles must sort
	}
	got := Quantiles(samples)
	want := Latency{P50: 50, P90: 90, P99: 99, Max: 100}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got := Quantiles([]int64{7}); got != (Latency{P50: 7, P90: 7, P99: 7, Max: 7}) {
		t.Fatalf("single sample: %+v", got)
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: evilbloom/internal/service
BenchmarkParallelMixed/sharded-16-8         	 2177628	       550.1 ns/op
BenchmarkVariantMixed/blocked-8             	 1000000	      1001 ns/op	     128 B/op
PASS
ok  	evilbloom/internal/service	3.2s
`
	runs, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d runs, want 2: %+v", len(runs), runs)
	}
	if runs[0].Name != "BenchmarkParallelMixed/sharded-16-8" || runs[0].NsPerOp != 550.1 || runs[0].Ops != 2177628 {
		t.Fatalf("run 0: %+v", runs[0])
	}
	if runs[1].NsPerOp != 1001 {
		t.Fatalf("run 1: %+v", runs[1])
	}
	r := New("2026-08-08")
	for _, run := range runs {
		r.Add(run)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("parsed runs do not validate: %v", err)
	}
	if _, err := ParseGoBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("benchmark-free input accepted")
	}
}
