// Package benchfmt defines the machine-readable benchmark report the repo's
// two measurement paths share: the `evilbloom bench-serve` HTTP load
// generator writes runs directly, and `evilbloom bench-import` converts
// `go test -bench` output into the same shape. One schema means the
// committed BENCH_<date>.json can carry service-level latency numbers and
// micro-benchmark ns/op side by side, and CI can validate either with the
// same strict checker (`evilbloom bench-verify`).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schema is the identifier every report must carry; bump the suffix on any
// incompatible shape change.
const Schema = "evilbloom-bench/v1"

// Report is one benchmark report file.
type Report struct {
	// Schema must equal the package Schema constant.
	Schema string `json:"schema"`
	// Date is the measurement day, YYYY-MM-DD.
	Date string `json:"date"`
	// Host records where the numbers were taken; cross-host comparisons of
	// absolute numbers are meaningless without it.
	Host Host `json:"host"`
	// Runs holds one entry per benchmark, in insertion order.
	Runs []Run `json:"runs"`
}

// Host identifies the measuring machine and toolchain.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
}

// Run is one benchmark's result. Exactly one of Latency (service-level
// runs, wall-clock percentiles per request) or NsPerOp (go-test
// micro-benchmarks) is expected; OpsPerSec is always present.
type Run struct {
	// Name identifies the run, e.g. "serve/blocked/mixed" or
	// "BenchmarkParallelMixed/sharded-16".
	Name string `json:"name"`
	// Source is "bench-serve" or "go-test".
	Source string `json:"source"`
	// Config carries the knobs that produced the number (variant, conns,
	// pipeline depth, mix, geometry, lock-free on/off, ...).
	Config map[string]string `json:"config,omitempty"`
	// Ops is the total operations completed (items, for batched requests).
	Ops uint64 `json:"ops"`
	// OpsPerSec is Ops divided by measured wall time.
	OpsPerSec float64 `json:"ops_per_sec"`
	// NsPerOp is the go-test per-operation time; zero for bench-serve runs.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Latency holds per-request wall-clock percentiles for bench-serve
	// runs; nil for go-test runs.
	Latency *Latency `json:"latency_ns,omitempty"`
}

// Latency is a set of per-request latency percentiles in nanoseconds.
type Latency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// New builds an empty report stamped with the given date and this process's
// host facts.
func New(date string) *Report {
	return &Report{
		Schema: Schema,
		Date:   date,
		Host: Host{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
		},
		Runs: nil,
	}
}

// Add appends a run, replacing any existing run of the same name so
// re-running a benchmark updates the report instead of duplicating entries.
func (r *Report) Add(run Run) {
	for i := range r.Runs {
		if r.Runs[i].Name == run.Name {
			r.Runs[i] = run
			return
		}
	}
	r.Runs = append(r.Runs, run)
}

// Validate checks the report strictly: schema identifier, date shape, and
// per-run invariants (non-empty name, known source, positive throughput,
// ordered percentiles). CI runs this over every emitted report, so a
// malformed writer fails the build rather than committing garbage numbers.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", r.Schema, Schema)
	}
	if _, err := time.Parse("2006-01-02", r.Date); err != nil {
		return fmt.Errorf("benchfmt: date %q is not YYYY-MM-DD", r.Date)
	}
	if r.Host.GoVersion == "" || r.Host.GOOS == "" || r.Host.GOARCH == "" || r.Host.CPUs <= 0 {
		return fmt.Errorf("benchfmt: incomplete host record %+v", r.Host)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("benchfmt: report has no runs")
	}
	seen := make(map[string]bool, len(r.Runs))
	for i, run := range r.Runs {
		if err := run.validate(); err != nil {
			return fmt.Errorf("benchfmt: run %d (%q): %w", i, run.Name, err)
		}
		if seen[run.Name] {
			return fmt.Errorf("benchfmt: duplicate run name %q", run.Name)
		}
		seen[run.Name] = true
	}
	return nil
}

func (run Run) validate() error {
	if run.Name == "" {
		return fmt.Errorf("empty name")
	}
	switch run.Source {
	case "bench-serve", "go-test":
	default:
		return fmt.Errorf("unknown source %q (want bench-serve or go-test)", run.Source)
	}
	if run.Ops == 0 {
		return fmt.Errorf("zero ops")
	}
	if run.OpsPerSec <= 0 {
		return fmt.Errorf("non-positive ops_per_sec %v", run.OpsPerSec)
	}
	if run.NsPerOp < 0 {
		return fmt.Errorf("negative ns_per_op %v", run.NsPerOp)
	}
	if l := run.Latency; l != nil {
		if l.P50 <= 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
			return fmt.Errorf("disordered latency percentiles %+v", *l)
		}
	}
	return nil
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report; it does not validate (use Validate).
func Decode(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return &r, nil
}

// Load reads the report at path, or returns a fresh one stamped with date
// when the file does not exist — the merge-or-create behaviour both
// bench-serve and bench-import want.
func Load(path, date string) (*Report, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return New(date), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Save validates and writes the report to path (0644, truncating).
func (r *Report) Save(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Quantiles reduces a sample set of per-request latencies (nanoseconds) to
// the report's percentile summary. The samples are sorted in place. The
// nearest-rank convention (ceil(p·n), 1-indexed) keeps every reported value
// an actually-observed latency.
func Quantiles(samples []int64) Latency {
	if len(samples) == 0 {
		return Latency{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := func(p float64) int64 {
		i := int(p*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return Latency{
		P50: rank(0.50),
		P90: rank(0.90),
		P99: rank(0.99),
		Max: samples[len(samples)-1],
	}
}

// goBenchLine matches one `go test -bench` result line:
//
//	BenchmarkParallelMixed/sharded-16-8   \t  2177628 \t  550.1 ns/op [\t extra...]
//
// The trailing -N CPU suffix stays part of the name (it is part of go's
// benchmark identity too).
var goBenchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// ParseGoBench extracts benchmark results from `go test -bench` output.
// Non-benchmark lines (goos/goarch headers, PASS, ok) are skipped; a stream
// with no benchmark lines at all is an error, because it usually means the
// caller piped in the wrong thing.
func ParseGoBench(rd io.Reader) ([]Run, error) {
	var runs []Run
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := goBenchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q: %w", sc.Text(), err)
		}
		nsPerOp, err := strconv.ParseFloat(m[3], 64)
		if err != nil || nsPerOp <= 0 {
			return nil, fmt.Errorf("benchfmt: bad ns/op in %q", sc.Text())
		}
		runs = append(runs, Run{
			Name:      m[1],
			Source:    "go-test",
			Ops:       iters,
			OpsPerSec: 1e9 / nsPerOp,
			NsPerOp:   nsPerOp,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark result lines found in input")
	}
	return runs, nil
}
