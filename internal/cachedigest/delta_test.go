package cachedigest

import (
	"bytes"
	"errors"
	"testing"

	"evilbloom/internal/bitset"
)

// buildDeltaBase opens the standard two-shard test envelope as a held
// digest (generation 42, words-per-shard 2 → 4 global words).
func buildDeltaBase(t *testing.T) (*PeerDigest, EnvelopeInfo) {
	t.Helper()
	env, info := buildEnvelope(t)
	d, err := OpenEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	return d, info
}

func TestDeltaRoundTrip(t *testing.T) {
	words := []DeltaWord{{Index: 0, Value: 0xdeadbeef}, {Index: 3, Value: 1}}
	frame, err := EncodeDelta(DeltaInfo{BaseGeneration: 42, NewGeneration: 57, NewCount: 9, TotalWords: 4}, words)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDeltaFrame(frame) {
		t.Fatal("encoded delta does not carry the delta magic")
	}
	info, got, err := DecodeDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if info.BaseGeneration != 42 || info.NewGeneration != 57 || info.NewCount != 9 ||
		info.TotalWords != 4 || info.Words != 2 {
		t.Errorf("header round trip: %+v", info)
	}
	if len(got) != 2 || got[0] != words[0] || got[1] != words[1] {
		t.Errorf("word round trip: %+v", got)
	}
}

func TestEncodeDeltaValidation(t *testing.T) {
	info := DeltaInfo{BaseGeneration: 1, NewGeneration: 2, TotalWords: 4}
	if _, err := EncodeDelta(info, []DeltaWord{{Index: 4}}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := EncodeDelta(info, []DeltaWord{{Index: 2}, {Index: 1}}); err == nil {
		t.Error("descending indexes accepted")
	}
	if _, err := EncodeDelta(info, []DeltaWord{{Index: 1}, {Index: 1}}); err == nil {
		t.Error("duplicate index accepted")
	}
}

// Applying a delta must produce exactly the digest a full envelope of the
// new state would: same generation, count, weight, and membership answers.
func TestApplyDeltaMatchesFullEnvelope(t *testing.T) {
	held, info := buildDeltaBase(t)

	// The new state: shard 0 gains bit 5 (word 0), shard 1 clears bit 127
	// and gains bit 64 (words 3 and... bit 64 is word 1 of shard 1 →
	// global word 3; bit 127 is also word 1 → both edits land in global
	// word 3). Rebuild the shard bitsets the server would have.
	a2, b2 := bitset.New(128), bitset.New(128)
	a2.Set(1)
	a2.Set(77)
	a2.Set(5)
	b2.Set(64)
	newInfo := info
	newInfo.Generation = 50
	newInfo.Count = 4
	fullEnv, err := EncodeEnvelope(newInfo, []*bitset.BitSet{a2, b2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := OpenEnvelope(fullEnv)
	if err != nil {
		t.Fatal(err)
	}

	// The delta: global word 0 (shard 0 word 0) and global word 3 (shard 1
	// word 1) changed.
	frame, err := EncodeDelta(DeltaInfo{BaseGeneration: 42, NewGeneration: 50, NewCount: 4, TotalWords: 4},
		[]DeltaWord{{Index: 0, Value: a2.Word(0)}, {Index: 3, Value: b2.Word(1)}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := held.ApplyDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation() != 50 || got.Count() != 4 {
		t.Errorf("applied digest at generation %d count %d, want 50/4", got.Generation(), got.Count())
	}
	if got.Weight() != want.Weight() {
		t.Errorf("applied weight %d, full-envelope weight %d", got.Weight(), want.Weight())
	}
	for i := 0; i < 64; i++ {
		item := []byte{byte(i), byte(i >> 3), 'x'}
		if got.Test(item) != want.Test(item) {
			t.Fatalf("membership diverges from full envelope on item %v", item)
		}
	}
	// Copy-on-write: the held digest is untouched — the routing path tests
	// it concurrently without a lock, so mutation would be a race.
	if held.Generation() != 42 || held.Weight() != 3 {
		t.Errorf("ApplyDelta mutated the held digest: gen %d weight %d", held.Generation(), held.Weight())
	}
	// A delta is word overwrites, so replaying it is idempotent.
	again, err := got.ApplyDelta(frame)
	if err == nil {
		if again.Weight() != got.Weight() {
			t.Errorf("replay changed weight: %d vs %d", again.Weight(), got.Weight())
		}
	} else if !errors.Is(err, ErrDeltaGap) {
		// got is at generation 50, the frame's base is 42 — a gap is the
		// expected refusal; anything else is a decode bug.
		t.Errorf("replay: %v", err)
	}
}

func TestApplyDeltaGenerationGap(t *testing.T) {
	held, _ := buildDeltaBase(t)
	frame, err := EncodeDelta(DeltaInfo{BaseGeneration: 41, NewGeneration: 50, TotalWords: 4},
		[]DeltaWord{{Index: 0, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = held.ApplyDelta(frame)
	if !errors.Is(err, ErrDeltaGap) {
		t.Errorf("gap apply: %v, want ErrDeltaGap", err)
	}
	// A gap is recoverable (refetch full), so it must also read as
	// Unusable, never Corrupt.
	if !errors.Is(err, ErrEnvelopeUnusable) {
		t.Errorf("ErrDeltaGap does not wrap ErrEnvelopeUnusable: %v", err)
	}
}

func TestApplyDeltaGeometryMismatch(t *testing.T) {
	held, _ := buildDeltaBase(t)
	frame, err := EncodeDelta(DeltaInfo{BaseGeneration: 42, NewGeneration: 50, TotalWords: 8},
		[]DeltaWord{{Index: 7, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = held.ApplyDelta(frame)
	if !errors.Is(err, ErrEnvelopeUnusable) || errors.Is(err, ErrDeltaGap) {
		t.Errorf("geometry mismatch: %v, want ErrEnvelopeUnusable (not a gap)", err)
	}
}

func TestSealRoundTrip(t *testing.T) {
	key := []byte("mesh-secret")
	frame, _ := buildEnvelope(t)
	sealed := Seal(frame, key)
	if len(sealed) != len(frame)+MACTrailerLen {
		t.Fatalf("sealed length %d, want frame %d + trailer %d", len(sealed), len(frame), MACTrailerLen)
	}
	got, err := Unseal(sealed, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Error("unsealed frame differs from the original")
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	key := []byte("mesh-secret")
	frame, _ := buildEnvelope(t)
	sealed := Seal(frame, key)

	cases := map[string][]byte{
		"truncated MAC":     sealed[:len(sealed)-1],
		"missing MAC":       sealed[:len(frame)],
		"empty":             nil,
		"flipped payload":   flipByte(sealed, 20),
		"flipped MAC":       flipByte(sealed, len(sealed)-1),
		"flipped magic":     flipByte(sealed, 0),
		"extended by a nul": append(append([]byte(nil), sealed...), 0),
	}
	for name, data := range cases {
		if _, err := Unseal(data, key); !errors.Is(err, ErrEnvelopeUnauthenticated) {
			t.Errorf("%s: %v, want ErrEnvelopeUnauthenticated", name, err)
		}
	}
	if _, err := Unseal(sealed, []byte("other-secret")); !errors.Is(err, ErrEnvelopeUnauthenticated) {
		t.Errorf("wrong key: %v, want ErrEnvelopeUnauthenticated", err)
	}
}

func flipByte(data []byte, i int) []byte {
	cp := append([]byte(nil), data...)
	cp[i] ^= 0x40
	return cp
}
