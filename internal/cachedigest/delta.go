package cachedigest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"evilbloom/internal/bitset"
)

// Digest deltas: the bandwidth half of the mesh upgrade. A busy proxy's
// digest is megabytes, but between two refresh ticks only a handful of
// 64-bit words actually change — a full envelope every tick re-ships the
// ~99% that didn't. A delta frame carries just the changed words against a
// base generation the receiver has acknowledged (via the ETag it echoed in
// X-Evilbloom-Digest-Have). If the base doesn't match what the receiver
// holds — it missed a tick, the server restarted, the server diffed against
// a different baseline — the apply fails with ErrDeltaGap and the client
// falls back to a full fetch. Deltas are an optimization, never a
// correctness dependency.
//
// Frame layout (little-endian), a sibling of the EVBDIGE1 envelope:
//
//	offset  size  field
//	     0     8  magic "EVBDIGD1"
//	     8     2  version (1)
//	    10     2  reserved (0)
//	    12     4  changed-word count n
//	    16     8  base generation (receiver must hold exactly this)
//	    24     8  new generation
//	    32     8  new insertion count
//	    40     8  total word count (binds the delta to the digest geometry)
//	    48  16*n  records: word index u64, word value u64 — strictly
//	              ascending indexes, each < total word count
//	  48+16n    4  CRC-32 (IEEE) of everything above
//
// Word indexes are global across shards: shard i, word j maps to
// i*wordsPerShard + j with wordsPerShard = ceil(ShardBits/64). Values are
// the receiver's new words wholesale (not XOR masks), so applying is a
// plain overwrite and a replayed delta is idempotent.

const (
	deltaMagic   = "EVBDIGD1"
	deltaVersion = 1
	// DeltaHeaderLen is the fixed delta header size in bytes.
	DeltaHeaderLen  = 48
	deltaRecordLen  = 16
	deltaTrailerLen = 4

	// maxDeltaWords bounds the declared record count before any allocation,
	// mirroring the envelope's MaxEnvelopeBits budget (one record per word).
	maxDeltaWords = MaxEnvelopeBits / 64
)

// ErrDeltaGap marks a structurally valid delta whose base generation does
// not match the digest the receiver holds — recoverable by fetching the
// full envelope, so it is distinct from ErrEnvelopeCorrupt.
var ErrDeltaGap = fmt.Errorf("%w: delta base generation does not match the held digest", ErrEnvelopeUnusable)

// DeltaWord is one changed backing word of a digest.
type DeltaWord struct {
	Index uint64 // global word index: shard*wordsPerShard + word
	Value uint64 // the word's new value, overwriting the old
}

// DeltaInfo is the decoded header of a delta frame.
type DeltaInfo struct {
	BaseGeneration uint64 // generation the receiver must hold
	NewGeneration  uint64 // generation after applying
	NewCount       uint64 // insertion count after applying
	TotalWords     uint64 // word count of the full digest (geometry check)
	Words          int    // number of changed-word records
}

// IsDeltaFrame reports whether data begins with the delta magic — how the
// peer fetch path tells a delta from a full envelope when a server's
// response headers are absent or ambiguous.
func IsDeltaFrame(data []byte) bool {
	return len(data) >= len(deltaMagic) && string(data[:len(deltaMagic)]) == deltaMagic
}

// DeltaSize returns the total frame size implied by info.
func DeltaSize(info DeltaInfo) int {
	return DeltaHeaderLen + deltaRecordLen*info.Words + deltaTrailerLen
}

// EncodeDelta serializes changed words into a delta frame. Words must be
// sorted by ascending index with every index < totalWords; EncodeDelta
// validates both so a malformed frame can never be produced.
func EncodeDelta(info DeltaInfo, words []DeltaWord) ([]byte, error) {
	info.Words = len(words)
	if uint64(len(words)) > maxDeltaWords || info.TotalWords > maxDeltaWords {
		return nil, fmt.Errorf("cachedigest: delta of %d/%d words exceeds the %d-word budget",
			len(words), info.TotalWords, maxDeltaWords)
	}
	out := make([]byte, DeltaSize(info))
	copy(out, deltaMagic)
	binary.LittleEndian.PutUint16(out[8:], deltaVersion)
	binary.LittleEndian.PutUint32(out[12:], uint32(len(words)))
	binary.LittleEndian.PutUint64(out[16:], info.BaseGeneration)
	binary.LittleEndian.PutUint64(out[24:], info.NewGeneration)
	binary.LittleEndian.PutUint64(out[32:], info.NewCount)
	binary.LittleEndian.PutUint64(out[40:], info.TotalWords)
	off := DeltaHeaderLen
	prev := uint64(0)
	for i, w := range words {
		if w.Index >= info.TotalWords {
			return nil, fmt.Errorf("cachedigest: delta word index %d outside %d-word digest", w.Index, info.TotalWords)
		}
		if i > 0 && w.Index <= prev {
			return nil, fmt.Errorf("cachedigest: delta word indexes not strictly ascending at %d", w.Index)
		}
		prev = w.Index
		binary.LittleEndian.PutUint64(out[off:], w.Index)
		binary.LittleEndian.PutUint64(out[off+8:], w.Value)
		off += deltaRecordLen
	}
	binary.LittleEndian.PutUint32(out[off:], crc32.ChecksumIEEE(out[:off]))
	return out, nil
}

// DecodeDeltaInfo parses and validates just the fixed header, so callers can
// size-check a frame before reading records. Like DecodeEnvelopeInfo it
// needs only the first DeltaHeaderLen bytes.
func DecodeDeltaInfo(data []byte) (DeltaInfo, error) {
	var info DeltaInfo
	if len(data) < DeltaHeaderLen {
		return info, fmt.Errorf("%w: %d bytes, delta header needs %d", ErrEnvelopeCorrupt, len(data), DeltaHeaderLen)
	}
	if !IsDeltaFrame(data) {
		return info, fmt.Errorf("%w: bad delta magic %q", ErrEnvelopeCorrupt, data[:len(deltaMagic)])
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != deltaVersion {
		return info, fmt.Errorf("%w: delta version %d", ErrEnvelopeUnusable, v)
	}
	n := binary.LittleEndian.Uint32(data[12:])
	info.BaseGeneration = binary.LittleEndian.Uint64(data[16:])
	info.NewGeneration = binary.LittleEndian.Uint64(data[24:])
	info.NewCount = binary.LittleEndian.Uint64(data[32:])
	info.TotalWords = binary.LittleEndian.Uint64(data[40:])
	if info.TotalWords > maxDeltaWords {
		return info, fmt.Errorf("%w: delta claims %d-word digest, budget is %d", ErrEnvelopeUnusable, info.TotalWords, maxDeltaWords)
	}
	if uint64(n) > info.TotalWords {
		return info, fmt.Errorf("%w: delta claims %d changed words of %d total", ErrEnvelopeCorrupt, n, info.TotalWords)
	}
	info.Words = int(n)
	return info, nil
}

// DecodeDelta parses a complete delta frame, verifying length, CRC, and
// record ordering. It does not check the base generation — that needs the
// receiver's held digest and happens in PeerDigest.ApplyDelta.
func DecodeDelta(data []byte) (DeltaInfo, []DeltaWord, error) {
	info, err := DecodeDeltaInfo(data)
	if err != nil {
		return info, nil, err
	}
	if len(data) != DeltaSize(info) {
		return info, nil, fmt.Errorf("%w: delta frame is %d bytes, header implies %d", ErrEnvelopeCorrupt, len(data), DeltaSize(info))
	}
	body := data[:len(data)-deltaTrailerLen]
	want := binary.LittleEndian.Uint32(data[len(body):])
	if got := crc32.ChecksumIEEE(body); got != want {
		return info, nil, fmt.Errorf("%w: delta CRC mismatch: frame says %08x, payload hashes to %08x", ErrEnvelopeCorrupt, want, got)
	}
	words := make([]DeltaWord, info.Words)
	off := DeltaHeaderLen
	prev := uint64(0)
	for i := range words {
		words[i].Index = binary.LittleEndian.Uint64(data[off:])
		words[i].Value = binary.LittleEndian.Uint64(data[off+8:])
		if words[i].Index >= info.TotalWords {
			return info, nil, fmt.Errorf("%w: delta word index %d outside %d-word digest", ErrEnvelopeCorrupt, words[i].Index, info.TotalWords)
		}
		if i > 0 && words[i].Index <= prev {
			return info, nil, fmt.Errorf("%w: delta word indexes not strictly ascending at %d", ErrEnvelopeCorrupt, words[i].Index)
		}
		prev = words[i].Index
		off += deltaRecordLen
	}
	return info, words, nil
}

// ApplyDelta applies a delta frame to a held digest and returns the
// resulting digest as a NEW PeerDigest — copy-on-write, because held digests
// are tested concurrently by the routing path with no lock (PeerDigest
// immutability is load-bearing in internal/service). The receiver is never
// modified. ErrDeltaGap means the delta was diffed against a generation the
// receiver does not hold (missed tick, restart, divergent baseline); the
// caller recovers by fetching the full envelope.
func (d *PeerDigest) ApplyDelta(frame []byte) (*PeerDigest, error) {
	info, words, err := DecodeDelta(frame)
	if err != nil {
		return nil, err
	}
	if info.BaseGeneration != d.info.Generation {
		return nil, fmt.Errorf("%w: delta base is generation %d, held digest is %d",
			ErrDeltaGap, info.BaseGeneration, d.info.Generation)
	}
	wordsPerShard := (d.info.ShardBits + 63) / 64
	if want := uint64(d.info.Shards) * wordsPerShard; info.TotalWords != want {
		return nil, fmt.Errorf("%w: delta spans %d words, held geometry implies %d",
			ErrEnvelopeUnusable, info.TotalWords, want)
	}
	next := &PeerDigest{
		info:  d.info,
		bits:  make([]*bitset.BitSet, len(d.bits)),
		route: d.route,
		mask:  d.mask,
		proto: d.proto,
	}
	next.info.Generation = info.NewGeneration
	next.info.Count = info.NewCount
	copy(next.bits, d.bits)
	for _, w := range words {
		shard := int(w.Index / wordsPerShard)
		if next.bits[shard] == d.bits[shard] {
			next.bits[shard] = d.bits[shard].Clone()
		}
		next.bits[shard].SetWord(int(w.Index%wordsPerShard), w.Value)
	}
	proto, k := next.proto, next.info.K
	next.pool.New = func() any {
		return &digestScratch{fam: proto.Clone(), idx: make([]uint64, 0, k)}
	}
	return next, nil
}
