package cachedigest

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Keyed MAC trailer: the authentication layer of the mesh exchange. A CRC
// catches transfer corruption but authenticates nothing — any sibling (or
// anyone on the path) can forge a structurally valid envelope, which is
// exactly the §7 adversary. In an authenticated mesh every digest frame
// (full envelope or delta) therefore travels with an HMAC-SHA256 trailer
// keyed by the sealing peer's mesh credential:
//
//	[frame bytes, CRC included][32-byte HMAC-SHA256(key, frame)]
//
// The MAC covers the complete frame including its CRC, so the integrity
// check and the authenticity check cannot disagree about what was received.
// Whether a frame is sealed is contextual, not sniffed from length: a node
// seals exactly when the exchange presented a mesh credential, and the
// receiver knows which peer's key to verify with from the accompanying
// peer name (the X-Evilbloom-Peer response header, or the push principal).
//
// The key is the credential's secret, shared pairwise via the mesh roster
// (-peer-token). Naor–Yogev's adversarial-environments framing applies: the
// MAC does not make the digest's *content* trustworthy — a compromised but
// credentialed sibling still pollutes — it makes the content *attributable*,
// which is what lets a mesh eject an evil sibling by revoking one credential.

// MACTrailerLen is the size of the keyed trailer appended to a sealed frame.
const MACTrailerLen = sha256.Size

// ErrEnvelopeUnauthenticated marks frames whose MAC trailer is missing,
// truncated, or fails verification against the claimed peer's key. Mapped to
// 401 by the HTTP layer — the sibling's identity, not the transfer, is what
// failed.
var ErrEnvelopeUnauthenticated = errors.New("cachedigest: digest frame not authenticated by the peer's mesh credential")

// Seal appends the keyed MAC trailer to a digest frame (full envelope or
// delta). The input slice is not modified.
func Seal(frame, key []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(frame) //nolint:errcheck // hash writes cannot fail
	out := make([]byte, 0, len(frame)+MACTrailerLen)
	out = append(out, frame...)
	return mac.Sum(out)
}

// Unseal verifies a sealed frame against key and returns the frame with the
// trailer stripped. Verification is constant-time (hmac.Equal); any failure
// — short input, wrong key, flipped bit anywhere in frame or trailer — is
// ErrEnvelopeUnauthenticated, deliberately without detail.
func Unseal(data, key []byte) ([]byte, error) {
	if len(data) < MACTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the MAC trailer", ErrEnvelopeUnauthenticated, len(data))
	}
	frame, trailer := data[:len(data)-MACTrailerLen], data[len(data)-MACTrailerLen:]
	mac := hmac.New(sha256.New, key)
	mac.Write(frame) //nolint:errcheck // hash writes cannot fail
	if !hmac.Equal(mac.Sum(nil), trailer) {
		return nil, ErrEnvelopeUnauthenticated
	}
	return frame, nil
}
