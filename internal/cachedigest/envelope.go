package cachedigest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"evilbloom/internal/bitset"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// Digest envelope: the wire format a cache digest travels in between
// evilbloom nodes — the §7 exchange lifted out of one process. Like the
// snapshot envelope it is versioned, length-checked and checksummed, but it
// carries a different payload: not the full filter state (counters, secrets,
// insertion bookkeeping) but only the occupancy pattern plus everything a
// *peer* needs to evaluate membership queries against it locally — the index
// family, the geometry, and (for sharded sources) the shard-routing key.
// That is exactly what Squid ships between siblings: the summary, not the
// cache.
//
//	offset  size  field
//	0       8     magic "EVBDIGE1"
//	8       2     format version (little-endian, currently 1)
//	10      1     index family (1 murmur3 double hashing, 2 MD5-split)
//	11      1     source variant (0 bloom, 1 counting, 2 blocked)
//	12      4     reserved (zero)
//	16      8     generation (source mutation counter, the ETag basis)
//	24      8     index seed (murmur3 family; zero for MD5-split)
//	32      8     shard count
//	40      8     shard size in bits
//	48      8     per-item index count k
//	56      8     source insertion count
//	64      16    shard-routing key (zero when shard count is 1)
//	80      8     payload length in bytes
//	88      ...   payload: per shard, one bitset blob (8-byte size header
//	              plus ⌈shard_bits/64⌉ packed little-endian words)
//	88+len  4     IEEE CRC-32 of everything before it
//
// All integers are little-endian. The payload length is fully determined by
// the geometry fields, so a decoder size-checks the envelope from the
// 88-byte header before buffering the payload.
//
// On secrets: a digest is only exchangeable when a peer can reproduce the
// index mapping, so the envelope carries the naive family's public seed and
// the shard-routing key — for a naive filter both already effectively
// public (the paper's threat model). A hardened filter's keyed family never
// travels; such filters export no digest at all, and an envelope claiming
// an unknown family is rejected as unusable rather than guessed at.
const (
	// EnvelopeMagic opens every digest envelope.
	EnvelopeMagic = "EVBDIGE1"
	// EnvelopeVersion is the current format version.
	EnvelopeVersion = 1
	// EnvelopeHeaderLen is the fixed header size in bytes.
	EnvelopeHeaderLen  = 88
	envelopeTrailerLen = 4
	// MaxEnvelopeBits caps the total digest size a decoder will buffer
	// (matches the service's per-filter storage cap: 2^33 bits = 1 GiB).
	MaxEnvelopeBits = uint64(1) << 33
	// maxEnvelopeShards and maxEnvelopeK mirror the service's structural
	// caps so a crafted header cannot drive large allocations.
	maxEnvelopeShards = 1 << 16
	maxEnvelopeK      = 512
)

// Family identifies the index derivation a digest's receiver must reproduce.
type Family byte

const (
	// FamilyMurmurDouble is unkeyed MurmurHash3 double hashing with a public
	// seed — the service's naive mode.
	FamilyMurmurDouble Family = 1
	// FamilyMD5Split is Squid's scheme: one 128-bit MD5 split into four
	// indexes (k is always 4, shard count always 1).
	FamilyMD5Split Family = 2
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyMurmurDouble:
		return "murmur3-double-hashing"
	case FamilyMD5Split:
		return "md5-split"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Envelope errors, matched by the HTTP layer to pick status codes: corrupt
// envelopes are the sender's transfer problem (400), unusable ones are
// well-formed but cannot be evaluated by a peer (409).
var (
	// ErrEnvelopeCorrupt marks envelopes failing structural validation: bad
	// magic, unknown version, impossible geometry, length or CRC mismatch.
	ErrEnvelopeCorrupt = errors.New("cachedigest: digest envelope corrupt")
	// ErrEnvelopeUnusable marks well-formed envelopes no peer can evaluate
	// items against — an unknown index family (e.g. a keyed scheme whose
	// secrets rightly never travel).
	ErrEnvelopeUnusable = errors.New("cachedigest: digest envelope unusable by a peer")
)

// SourceVariantBlocked is the source-variant byte of a blocked Bloom filter
// (the values mirror the service's Variant enum: 0 bloom, 1 counting,
// 2 blocked). It is the one variant a peer must treat specially: the
// exporter confines an item's k probe bits to the 512-bit block its first
// index selects, so digest evaluation applies core.BlockedPosition to each
// index instead of testing it raw. Bloom and counting digests share plain
// positional semantics.
const SourceVariantBlocked = 2

// EnvelopeInfo is the decoded fixed header of a digest envelope.
type EnvelopeInfo struct {
	// Family names the index derivation scheme.
	Family Family
	// SourceVariant records the exporting filter's backend (0 bloom,
	// 1 counting, 2 blocked). Bloom and counting digests answer membership
	// identically; a blocked digest is evaluated through the block-local
	// probe mapping (see SourceVariantBlocked).
	SourceVariant byte
	// Generation is the source filter's mutation counter at export time.
	Generation uint64
	// Seed is the murmur3 public seed (zero for MD5-split).
	Seed uint64
	// Shards and ShardBits are the source geometry; the digest has one bit
	// vector per shard.
	Shards    int
	ShardBits uint64
	// K is the per-item index count.
	K int
	// Count is the source filter's net insertion count at export time.
	Count uint64
	// RouteKey keys shard selection (zero when Shards is 1).
	RouteKey [16]byte
	// PayloadLen is the payload size in bytes, implied by the geometry.
	PayloadLen uint64
}

// shardBlobLen returns the fixed serialized size of one shard's bit vector.
func (e EnvelopeInfo) shardBlobLen() uint64 {
	return 8 + 8*((e.ShardBits+63)/64)
}

// EnvelopeSize returns the total envelope size in bytes the header implies —
// what a receiver must buffer before decoding.
func (e EnvelopeInfo) EnvelopeSize() int {
	return EnvelopeHeaderLen + int(e.PayloadLen) + envelopeTrailerLen
}

// DecodeEnvelopeInfo validates and decodes the fixed header. Geometry and
// length fields are fully checked — a receiver can size-check and reject an
// envelope from its first EnvelopeHeaderLen bytes, before buffering any
// payload. Family usability is NOT checked here (a relay may forward
// envelopes it cannot evaluate); OpenEnvelope checks it.
func DecodeEnvelopeInfo(hdr []byte) (EnvelopeInfo, error) {
	var e EnvelopeInfo
	if len(hdr) < EnvelopeHeaderLen {
		return e, fmt.Errorf("%w: %d header bytes, need %d", ErrEnvelopeCorrupt, len(hdr), EnvelopeHeaderLen)
	}
	if string(hdr[:8]) != EnvelopeMagic {
		return e, fmt.Errorf("%w: bad magic", ErrEnvelopeCorrupt)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != EnvelopeVersion {
		return e, fmt.Errorf("%w: unsupported envelope version %d", ErrEnvelopeCorrupt, v)
	}
	e = EnvelopeInfo{
		Family:        Family(hdr[10]),
		SourceVariant: hdr[11],
		Generation:    binary.LittleEndian.Uint64(hdr[16:]),
		Seed:          binary.LittleEndian.Uint64(hdr[24:]),
		Shards:        int(binary.LittleEndian.Uint64(hdr[32:])),
		ShardBits:     binary.LittleEndian.Uint64(hdr[40:]),
		K:             int(binary.LittleEndian.Uint64(hdr[48:])),
		Count:         binary.LittleEndian.Uint64(hdr[56:]),
		PayloadLen:    binary.LittleEndian.Uint64(hdr[80:]),
	}
	copy(e.RouteKey[:], hdr[64:80])
	if e.SourceVariant > SourceVariantBlocked {
		return e, fmt.Errorf("%w: unknown source variant %d", ErrEnvelopeCorrupt, e.SourceVariant)
	}
	if e.SourceVariant == SourceVariantBlocked && e.ShardBits%core.BlockBits != 0 {
		return e, fmt.Errorf("%w: blocked-source digest with shard size %d not a multiple of %d",
			ErrEnvelopeCorrupt, e.ShardBits, uint64(core.BlockBits))
	}
	if e.Shards < 1 || e.Shards > maxEnvelopeShards || e.Shards&(e.Shards-1) != 0 {
		return e, fmt.Errorf("%w: shard count %d is not a power of two in [1,%d]", ErrEnvelopeCorrupt, e.Shards, maxEnvelopeShards)
	}
	if e.K < 1 || e.K > maxEnvelopeK {
		return e, fmt.Errorf("%w: impossible index count k=%d", ErrEnvelopeCorrupt, e.K)
	}
	// The division-side comparison cannot wrap; it bounds the words the
	// decoder will allocate before the product below is formed.
	if e.ShardBits == 0 || e.ShardBits > MaxEnvelopeBits/uint64(e.Shards) {
		return e, fmt.Errorf("%w: digest would span %d shards × %d bits, limit %d bits",
			ErrEnvelopeCorrupt, e.Shards, e.ShardBits, MaxEnvelopeBits)
	}
	if e.Family == FamilyMD5Split && (e.K != 4 || e.Shards != 1 || e.Seed != 0) {
		return e, fmt.Errorf("%w: MD5-split digests are single-shard, k=4, unseeded", ErrEnvelopeCorrupt)
	}
	if want := uint64(e.Shards) * e.shardBlobLen(); e.PayloadLen != want {
		return e, fmt.Errorf("%w: payload length %d, geometry implies %d", ErrEnvelopeCorrupt, e.PayloadLen, want)
	}
	return e, nil
}

// EncodeEnvelope serializes one bit vector per shard into a digest envelope
// under info's geometry (PayloadLen is computed, not read).
func EncodeEnvelope(info EnvelopeInfo, shards []*bitset.BitSet) ([]byte, error) {
	if len(shards) != info.Shards {
		return nil, fmt.Errorf("cachedigest: %d shard vectors for a %d-shard envelope", len(shards), info.Shards)
	}
	info.PayloadLen = uint64(info.Shards) * info.shardBlobLen()
	out := make([]byte, EnvelopeHeaderLen, info.EnvelopeSize())
	copy(out, EnvelopeMagic)
	binary.LittleEndian.PutUint16(out[8:], EnvelopeVersion)
	out[10] = byte(info.Family)
	out[11] = info.SourceVariant
	binary.LittleEndian.PutUint64(out[16:], info.Generation)
	binary.LittleEndian.PutUint64(out[24:], info.Seed)
	binary.LittleEndian.PutUint64(out[32:], uint64(info.Shards))
	binary.LittleEndian.PutUint64(out[40:], info.ShardBits)
	binary.LittleEndian.PutUint64(out[48:], uint64(info.K))
	binary.LittleEndian.PutUint64(out[56:], info.Count)
	copy(out[64:80], info.RouteKey[:])
	binary.LittleEndian.PutUint64(out[80:], info.PayloadLen)
	for i, bs := range shards {
		if bs.Size() != info.ShardBits {
			return nil, fmt.Errorf("cachedigest: shard %d holds %d bits, geometry says %d", i, bs.Size(), info.ShardBits)
		}
		blob, err := bs.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = append(out, blob...)
	}
	if got, want := uint64(len(out)-EnvelopeHeaderLen), info.PayloadLen; got != want {
		return nil, fmt.Errorf("cachedigest: payload is %d bytes, geometry implies %d", got, want)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...), nil
}

// PeerDigest is a decoded digest envelope, ready to answer the receiving
// side of the §7 exchange: "may this item be in the sibling's cache?". It is
// safe for concurrent Test calls (index families are cloned per goroutine).
type PeerDigest struct {
	info  EnvelopeInfo
	bits  []*bitset.BitSet
	route hashes.SipKey
	mask  uint64
	proto hashes.IndexFamily
	pool  sync.Pool // of *digestScratch
}

type digestScratch struct {
	fam hashes.IndexFamily
	idx []uint64
}

// OpenEnvelope validates a complete envelope (structure and CRC), rebuilds
// the index family it names, and returns a digest a peer can query locally.
func OpenEnvelope(data []byte) (*PeerDigest, error) {
	info, err := DecodeEnvelopeInfo(data)
	if err != nil {
		return nil, err
	}
	if want := info.EnvelopeSize(); len(data) != want {
		return nil, fmt.Errorf("%w: envelope is %d bytes, header implies %d", ErrEnvelopeCorrupt, len(data), want)
	}
	body := data[:len(data)-envelopeTrailerLen]
	if got, sum := binary.LittleEndian.Uint32(data[len(body):]), crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum 0x%08x, computed 0x%08x", ErrEnvelopeCorrupt, got, sum)
	}
	var proto hashes.IndexFamily
	switch info.Family {
	case FamilyMurmurDouble:
		if proto, err = hashes.NewDoubleHashing(info.K, info.ShardBits, info.Seed); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrEnvelopeCorrupt, err)
		}
	case FamilyMD5Split:
		if proto, err = hashes.NewMD5Split(info.ShardBits); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrEnvelopeCorrupt, err)
		}
	default:
		return nil, fmt.Errorf("%w: unknown index family %d (a keyed family's digest cannot be evaluated remotely)",
			ErrEnvelopeUnusable, byte(info.Family))
	}
	d := &PeerDigest{
		info:  info,
		bits:  make([]*bitset.BitSet, info.Shards),
		route: hashes.SipKeyFromBytes(info.RouteKey),
		mask:  uint64(info.Shards - 1),
		proto: proto,
	}
	payload := body[EnvelopeHeaderLen:]
	blobLen := info.shardBlobLen()
	for i := range d.bits {
		bs := &bitset.BitSet{}
		if err := bs.UnmarshalBinary(payload[:blobLen]); err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", ErrEnvelopeCorrupt, i, err)
		}
		if bs.Size() != info.ShardBits {
			return nil, fmt.Errorf("%w: shard %d vector holds %d bits, header says %d",
				ErrEnvelopeCorrupt, i, bs.Size(), info.ShardBits)
		}
		d.bits[i] = bs
		payload = payload[blobLen:]
	}
	k := info.K
	d.pool.New = func() any {
		return &digestScratch{fam: proto.Clone(), idx: make([]uint64, 0, k)}
	}
	return d, nil
}

// Info returns the envelope header the digest was decoded from.
func (d *PeerDigest) Info() EnvelopeInfo { return d.info }

// Generation returns the source filter's mutation counter at export time.
func (d *PeerDigest) Generation() uint64 { return d.info.Generation }

// Bits returns the digest's total size in bits across shards.
func (d *PeerDigest) Bits() uint64 { return uint64(d.info.Shards) * d.info.ShardBits }

// Count returns the source filter's net insertion count at export time.
func (d *PeerDigest) Count() uint64 { return d.info.Count }

// Weight returns the number of set bits across shards.
func (d *PeerDigest) Weight() uint64 {
	var w uint64
	for _, bs := range d.bits {
		w += bs.Weight()
	}
	return w
}

// Test reports whether the exporting filter claimed item at export time —
// the peer-side membership check that decides whether a sibling probe is
// worth a round trip.
func (d *PeerDigest) Test(item []byte) bool {
	shard := d.bits[0]
	if d.mask != 0 {
		shard = d.bits[hashes.SipHash24(d.route, item)&d.mask]
	}
	sc := d.pool.Get().(*digestScratch)
	sc.idx = sc.fam.Indexes(sc.idx[:0], item)
	ok := true
	if d.info.SourceVariant == SourceVariantBlocked {
		// A blocked exporter confined the item's bits to the 512-bit block
		// its first index selects; evaluate the digest through the same
		// mapping or every multi-probe lookup would miss.
		for _, i := range sc.idx {
			if !shard.Test(core.BlockedPosition(sc.idx[0], i)) {
				ok = false
				break
			}
		}
	} else {
		for _, i := range sc.idx {
			if !shard.Test(i) {
				ok = false
				break
			}
		}
	}
	d.pool.Put(sc)
	return ok
}

// TestKey is Test over a Squid store key — the (method, URL) form MD5-split
// digests are built from.
func (d *PeerDigest) TestKey(method, url string) bool { return d.Test(Key(method, url)) }

// Envelope exports a Squid digest in the exchange wire format, so an
// in-process §7 simulation and a live evilbloom node speak the same bytes.
// generation is the exporter's mutation counter (Squid's hourly rebuild
// number serves the same role).
func (d *Digest) Envelope(generation uint64) ([]byte, error) {
	return EncodeEnvelope(EnvelopeInfo{
		Family:     FamilyMD5Split,
		Generation: generation,
		Shards:     1,
		ShardBits:  d.M(),
		K:          4,
		Count:      d.bloom.Count(),
	}, []*bitset.BitSet{d.bloom.Bits()})
}
