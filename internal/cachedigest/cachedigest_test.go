package cachedigest

import (
	"math"
	"testing"
	"time"

	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
)

func TestDigestGeometry(t *testing.T) {
	// §7: for a 151-entry cache Squid builds a 5·151+7 = 762-bit digest.
	d, err := NewDigest(151)
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 762 {
		t.Errorf("digest size = %d bits, want 762", d.M())
	}
	if d.Bloom().K() != 4 {
		t.Errorf("k = %d, want 4", d.Bloom().K())
	}
}

func TestDigestAddTest(t *testing.T) {
	d, err := NewDigest(100)
	if err != nil {
		t.Fatal(err)
	}
	d.Add("GET", "http://example.com/")
	if !d.Test("GET", "http://example.com/") {
		t.Error("false negative")
	}
	if d.Test("HEAD", "http://example.com/") {
		t.Log("method collision (acceptable false positive)")
	}
	data, err := d.MarshalBinary()
	if err != nil || len(data) == 0 {
		t.Errorf("marshal: %v", err)
	}
}

// §7: Squid's 5n+7 sizing yields f ≈ 0.09 for n = 200, versus f = 0.5⁴ ≈
// 0.0625 at the optimal size m = kn/ln2 ≈ 6n the paper recommends. (The
// paper quotes "0.03, a factor of 3"; 0.03 corresponds to m ≈ 7.3n — see
// EXPERIMENTS.md. The direction and rough magnitude of the penalty hold.)
func TestSquidSizingIsSuboptimal(t *testing.T) {
	const n = 200
	m := uint64(BitsPerEntry*n + DigestSlack)
	squidFPR := core.FPR(m, n, 4)
	if math.Abs(squidFPR-0.09) > 0.02 {
		t.Errorf("squid FPR = %v, paper says ≈0.09", squidFPR)
	}
	optimalM := uint64(math.Ceil(4 * n / math.Ln2)) // ≈ 6n for k=4
	atOptimalSize := core.FPR(optimalM, n, 4)
	if math.Abs(atOptimalSize-0.0625) > 0.005 {
		t.Errorf("FPR at optimal 6n sizing = %v, want ≈0.0625", atOptimalSize)
	}
	if squidFPR < atOptimalSize*1.3 {
		t.Errorf("sizing penalty only %.2fx", squidFPR/atOptimalSize)
	}
}

func TestProxyFetchPath(t *testing.T) {
	net := &Network{RTT: 10 * time.Millisecond}
	origin := &Origin{}
	p1 := NewProxy("p1", net, origin)
	p2 := NewProxy("p2", net, origin)
	Peer(p1, p2)

	// First fetch: origin.
	body, src := p1.Fetch("http://a.test/")
	if src != SourceOrigin || body == "" {
		t.Fatalf("first fetch: %v", src)
	}
	// Second fetch: local.
	if _, src := p1.Fetch("http://a.test/"); src != SourceLocal {
		t.Fatalf("second fetch: %v", src)
	}
	// Sibling path after digest exchange.
	if err := ExchangeDigests(p1, p2); err != nil {
		t.Fatal(err)
	}
	if _, src := p2.Fetch("http://a.test/"); src != SourceSibling {
		t.Fatalf("sibling fetch: %v", src)
	}
	if p2.Stats.SiblingHits != 1 || p2.Stats.FalseSiblingHits != 0 {
		t.Errorf("stats: %+v", p2.Stats)
	}
	if !p2.Cached("http://a.test/") {
		t.Error("sibling fetch not cached")
	}
	if p1.CacheLen() != 1 {
		t.Errorf("p1 cache len = %d", p1.CacheLen())
	}
}

func TestNetworkAccounting(t *testing.T) {
	n := &Network{RTT: 10 * time.Millisecond}
	n.RoundTrip()
	n.RoundTrip()
	if n.Trips != 2 || n.Elapsed() != 20*time.Millisecond {
		t.Errorf("trips=%d elapsed=%v", n.Trips, n.Elapsed())
	}
}

func TestSourceString(t *testing.T) {
	if SourceLocal.String() != "local" || SourceSibling.String() != "sibling" ||
		SourceOrigin.String() != "origin" || Source(99).String() == "" {
		t.Error("Source strings wrong")
	}
}

// A proxy with an empty sibling digest never probes the sibling.
func TestEmptyDigestNeverProbes(t *testing.T) {
	net := &Network{RTT: time.Millisecond}
	origin := &Origin{}
	p1 := NewProxy("p1", net, origin)
	p2 := NewProxy("p2", net, origin)
	Peer(p1, p2)
	if err := ExchangeDigests(p1, p2); err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(3)
	for i := 0; i < 50; i++ {
		p2.Fetch(gen.URL())
	}
	if p2.Stats.SiblingProbes != 0 {
		t.Errorf("empty digest triggered %d probes", p2.Stats.SiblingProbes)
	}
}

// The §7 experiment: pollution inflates the digest false-positive hit rate
// severalfold versus the clean control, wasting one RTT per false hit.
func TestSquidPollutionExperiment(t *testing.T) {
	cfg := DefaultExperimentConfig()
	clean, err := RunExperiment(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	polluted, err := RunExperiment(cfg, true)
	if err != nil {
		t.Fatal(err)
	}

	// Paper's geometry: 151 entries → 762 bits.
	if clean.DigestBits != 762 || polluted.DigestBits != 762 {
		t.Errorf("digest bits: clean %d, polluted %d, want 762", clean.DigestBits, polluted.DigestBits)
	}
	// Pollution sets exactly 4 fresh bits per crafted URL: weight ≥ 400 + clean bits.
	if polluted.DigestWeight <= clean.DigestWeight {
		t.Errorf("pollution did not raise weight: %d vs %d", polluted.DigestWeight, clean.DigestWeight)
	}
	// The attack at least doubles the false-hit rate (the paper reports
	// 79% vs 40%; with uniform probes our clean baseline is lower — see
	// EXPERIMENTS.md — but the amplification shape holds).
	if polluted.FalseHits < clean.FalseHits*2 {
		t.Errorf("false hits: polluted %d, clean %d — no amplification", polluted.FalseHits, clean.FalseHits)
	}
	if polluted.WastedRTT != time.Duration(polluted.FalseHits)*cfg.RTT {
		t.Errorf("wasted RTT accounting wrong: %v", polluted.WastedRTT)
	}
	if polluted.ForgeAttempts == 0 || clean.ForgeAttempts != 0 {
		t.Errorf("forge attempts: polluted %d, clean %d", polluted.ForgeAttempts, clean.ForgeAttempts)
	}
}

func TestRunExperimentValidation(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Probes = 0
	if _, err := RunExperiment(cfg, false); err == nil {
		t.Error("probes=0 accepted")
	}
}
