package cachedigest_test

import (
	"fmt"
	"log"

	"evilbloom/internal/cachedigest"
)

// The digest round trip of the §7 exchange: a proxy summarizes its cache
// into a Squid-sized digest, ships it inside the checksummed envelope, and
// the sibling on the far side answers membership locally — including the
// false positives that make the exchange attackable.
func ExampleDigest_Envelope() {
	// The exporting proxy: three cached objects, m = 5n+7 bits.
	d, err := cachedigest.NewDigest(3)
	if err != nil {
		log.Fatal(err)
	}
	d.Add("GET", "http://cached.example/a")
	d.Add("GET", "http://cached.example/b")
	d.Add("GET", "http://cached.example/c")

	// Over the wire: versioned, checksummed, self-describing.
	env, err := d.Envelope(1) // generation 1 (Squid: the rebuild number)
	if err != nil {
		log.Fatal(err)
	}

	// The receiving sibling evaluates queries against the envelope alone.
	peer, err := cachedigest.OpenEnvelope(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digest: %d bits, %d set, generation %d, family %s\n",
		peer.Bits(), peer.Weight(), peer.Generation(), peer.Info().Family)
	fmt.Printf("cached object claimed: %v\n", peer.TestKey("GET", "http://cached.example/a"))
	fmt.Printf("uncached object claimed: %v\n", peer.TestKey("GET", "http://elsewhere.example/"))

	// Corruption in transit cannot go unnoticed: the CRC spans everything.
	env[len(env)/2] ^= 0x10
	if _, err := cachedigest.OpenEnvelope(env); err != nil {
		fmt.Println("corrupted envelope rejected")
	}
	// Output:
	// digest: 22 bits, 8 set, generation 1, family md5-split
	// cached object claimed: true
	// uncached object claimed: false
	// corrupted envelope rejected
}
