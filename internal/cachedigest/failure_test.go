package cachedigest

import (
	"testing"
	"time"

	"evilbloom/internal/bitset"
	"evilbloom/internal/urlgen"
)

// Stale digests: Squid rebuilds hourly, so a sibling's digest can advertise
// objects long evicted. Every such hit is a wasted round trip even without
// an adversary — the attack only amplifies an existing failure mode.
func TestStaleDigestWastesRoundTrips(t *testing.T) {
	net := &Network{RTT: 10 * time.Millisecond}
	origin := &Origin{}
	p1 := NewProxy("p1", net, origin)
	p2 := NewProxy("p2", net, origin)
	Peer(p1, p2)

	gen := urlgen.New(1)
	urls := gen.URLs(50)
	for _, u := range urls {
		p1.Fetch(u)
	}
	if err := ExchangeDigests(p1, p2); err != nil {
		t.Fatal(err)
	}
	// p1 "evicts" everything (fresh proxy with the old digest still out).
	stale := NewProxy("p1b", net, origin)
	p2.siblings = []*Proxy{stale}
	p2.digests[stale] = p2.digests[p1]

	for _, u := range urls {
		if _, src := p2.Fetch(u); src == SourceSibling {
			t.Fatal("fetched from a sibling that no longer has the object")
		}
	}
	if p2.Stats.FalseSiblingHits != len(urls) {
		t.Errorf("false hits = %d, want %d (every probe hit the stale digest)",
			p2.Stats.FalseSiblingHits, len(urls))
	}
}

// Digest exchange over a real serialization boundary: marshal, corrupt,
// unmarshal — corruption must surface as an error, not silent misbehaviour.
func TestDigestSerializationCorruption(t *testing.T) {
	d, err := NewDigest(100)
	if err != nil {
		t.Fatal(err)
	}
	d.Add("GET", "http://a.test/")
	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Round trip works.
	var bs bitset.BitSet
	if err := bs.UnmarshalBinary(data); err != nil {
		t.Fatalf("clean unmarshal: %v", err)
	}
	// Truncation is detected.
	if err := bs.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Error("truncated digest accepted")
	}
	// Length-field corruption is detected.
	corrupt := append([]byte(nil), data...)
	corrupt[0] ^= 0xff
	if err := bs.UnmarshalBinary(corrupt); err == nil {
		t.Error("length-corrupted digest accepted")
	}
}

// Three siblings: a digest hit on any of them triggers a probe; false
// positives multiply with the peer count, so pollution against one cache
// taxes the whole mesh.
func TestThreeProxyMesh(t *testing.T) {
	net := &Network{RTT: 10 * time.Millisecond}
	origin := &Origin{}
	p1 := NewProxy("p1", net, origin)
	p2 := NewProxy("p2", net, origin)
	p3 := NewProxy("p3", net, origin)
	Peer(p1, p2)
	Peer(p1, p3)
	Peer(p2, p3)

	gen := urlgen.New(7)
	shared := gen.URLs(30)
	for _, u := range shared {
		p2.Fetch(u)
	}
	only3 := gen.URLs(30)
	for _, u := range only3 {
		p3.Fetch(u)
	}
	for _, pair := range [][2]*Proxy{{p1, p2}, {p1, p3}, {p2, p3}} {
		if err := ExchangeDigests(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	// p1 finds p2's objects via digests and p3's likewise.
	if _, src := p1.Fetch(shared[0]); src != SourceSibling {
		t.Errorf("shared object came from %v", src)
	}
	if _, src := p1.Fetch(only3[0]); src != SourceSibling {
		t.Errorf("p3's object came from %v", src)
	}
	// A miss everywhere goes to the origin without lying digest hits
	// (digests are lightly loaded, false positives unlikely but tolerated).
	if _, src := p1.Fetch("http://nowhere.test/"); src == SourceSibling {
		t.Error("missing object served from a sibling")
	}
}

// An adversarial sibling can ship an all-ones digest (the LOAF failure from
// §4): every request then probes it, wasting a round trip each time. This
// is why the paper's threat model requires the filter holder to be trusted.
func TestAllOnesDigestFromUntrustedSibling(t *testing.T) {
	net := &Network{RTT: 10 * time.Millisecond}
	origin := &Origin{}
	honest := NewProxy("honest", net, origin)
	evil := NewProxy("evil", net, origin)
	Peer(honest, evil)

	forged, err := NewDigest(100)
	if err != nil {
		t.Fatal(err)
	}
	forged.Bloom().Bits().SetAll()
	honest.digests[evil] = forged

	gen := urlgen.New(2)
	const probes = 100
	for i := 0; i < probes; i++ {
		honest.Fetch(gen.URL())
	}
	if honest.Stats.SiblingProbes != probes {
		t.Errorf("probes = %d, want %d (all-ones digest claims everything)",
			honest.Stats.SiblingProbes, probes)
	}
	if honest.Stats.FalseSiblingHits != probes {
		t.Errorf("false hits = %d, want %d", honest.Stats.FalseSiblingHits, probes)
	}
	if net.Elapsed() < time.Duration(probes)*net.RTT {
		t.Errorf("wasted time %v below %d RTTs", net.Elapsed(), probes)
	}
}
