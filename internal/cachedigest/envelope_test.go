package cachedigest

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"evilbloom/internal/bitset"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

// buildEnvelope returns a valid murmur-family envelope over a small
// two-shard digest with a few bits set.
func buildEnvelope(t *testing.T) ([]byte, EnvelopeInfo) {
	t.Helper()
	info := EnvelopeInfo{
		Family:     FamilyMurmurDouble,
		Generation: 42,
		Seed:       7,
		Shards:     2,
		ShardBits:  128,
		K:          4,
		Count:      3,
	}
	copy(info.RouteKey[:], "0123456789abcdef")
	a, b := bitset.New(128), bitset.New(128)
	a.Set(1)
	a.Set(77)
	b.Set(127)
	env, err := EncodeEnvelope(info, []*bitset.BitSet{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return env, info
}

// reseal recomputes the trailing CRC after a test mutated header or payload
// bytes, so the corruption under test is the only defect in the envelope.
func reseal(env []byte) {
	body := env[:len(env)-envelopeTrailerLen]
	binary.LittleEndian.PutUint32(env[len(body):], crc32.ChecksumIEEE(body))
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env, info := buildEnvelope(t)
	d, err := OpenEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Info()
	if got.Family != info.Family || got.Generation != 42 || got.Seed != 7 ||
		got.Shards != 2 || got.ShardBits != 128 || got.K != 4 || got.Count != 3 ||
		got.RouteKey != info.RouteKey {
		t.Errorf("header round trip: got %+v", got)
	}
	if d.Bits() != 256 || d.Weight() != 3 || d.Generation() != 42 {
		t.Errorf("digest shape: bits=%d weight=%d gen=%d", d.Bits(), d.Weight(), d.Generation())
	}
}

// A digest must answer membership exactly like the exporting filter: set an
// item's own index positions in the right shard and Test must claim it.
func TestEnvelopeTestMatchesFamily(t *testing.T) {
	info := EnvelopeInfo{Family: FamilyMurmurDouble, Seed: 9, Shards: 4, ShardBits: 256, K: 3}
	copy(info.RouteKey[:], "fedcba9876543210")
	shards := make([]*bitset.BitSet, 4)
	for i := range shards {
		shards[i] = bitset.New(256)
	}
	fam, err := hashes.NewDoubleHashing(3, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	route := hashes.SipKeyFromBytes(info.RouteKey)
	gen := urlgen.New(5)
	inserted := make([][]byte, 40)
	for i := range inserted {
		item := gen.Next()
		inserted[i] = item
		shard := shards[hashes.SipHash24(route, item)&3]
		for _, x := range fam.Indexes(nil, item) {
			shard.Set(x)
		}
	}
	env, err := EncodeEnvelope(info, shards)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range inserted {
		if !d.Test(item) {
			t.Fatalf("digest denies inserted item %q", item)
		}
	}
	misses := 0
	for i := 0; i < 200; i++ {
		if !d.Test(gen.Next()) {
			misses++
		}
	}
	if misses == 0 {
		t.Error("digest claims every uninserted item; decode is broken")
	}
}

// Squid digests round-trip through the same envelope, single-shard with the
// MD5-split family.
func TestSquidDigestEnvelopeRoundTrip(t *testing.T) {
	d, err := NewDigest(100)
	if err != nil {
		t.Fatal(err)
	}
	d.Add("GET", "http://a.test/")
	d.Add("GET", "http://b.test/")
	env, err := d.Envelope(3)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := OpenEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Info().Family != FamilyMD5Split || pd.Generation() != 3 || pd.Count() != 2 {
		t.Errorf("squid header: %+v", pd.Info())
	}
	if !pd.TestKey("GET", "http://a.test/") || !pd.TestKey("GET", "http://b.test/") {
		t.Error("digest denies a cached key")
	}
	if pd.Weight() != d.Weight() || pd.Bits() != d.M() {
		t.Errorf("weight/bits mismatch: %d/%d vs %d/%d", pd.Weight(), pd.Bits(), d.Weight(), d.M())
	}
}

// The corruption/mismatch table, mirroring the snapshot envelope tests:
// structural damage must decode to ErrEnvelopeCorrupt, unknown families to
// ErrEnvelopeUnusable, and nothing may be silently accepted.
func TestEnvelopeCorruptionTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(env []byte) []byte
		wantErr error
	}{
		{"truncated header", func(e []byte) []byte { return e[:EnvelopeHeaderLen-1] }, ErrEnvelopeCorrupt},
		{"truncated payload", func(e []byte) []byte { return e[:len(e)-9] }, ErrEnvelopeCorrupt},
		{"trailing bytes", func(e []byte) []byte { return append(e, 0) }, ErrEnvelopeCorrupt},
		{"bad magic", func(e []byte) []byte { e[0] ^= 0xff; return e }, ErrEnvelopeCorrupt},
		{"future version", func(e []byte) []byte {
			binary.LittleEndian.PutUint16(e[8:], 99)
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"crc flipped", func(e []byte) []byte { e[len(e)-1] ^= 0x01; return e }, ErrEnvelopeCorrupt},
		{"payload bit flipped", func(e []byte) []byte { e[EnvelopeHeaderLen+3] ^= 0x40; return e }, ErrEnvelopeCorrupt},
		{"wrong variant", func(e []byte) []byte {
			e[11] = 9
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"zero shards", func(e []byte) []byte {
			binary.LittleEndian.PutUint64(e[32:], 0)
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"non-power-of-two shards", func(e []byte) []byte {
			binary.LittleEndian.PutUint64(e[32:], 3)
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"oversized geometry", func(e []byte) []byte {
			binary.LittleEndian.PutUint64(e[40:], MaxEnvelopeBits)
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"impossible k", func(e []byte) []byte {
			binary.LittleEndian.PutUint64(e[48:], 0)
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"payload length lies", func(e []byte) []byte {
			binary.LittleEndian.PutUint64(e[80:], 8)
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"md5-split with murmur geometry", func(e []byte) []byte {
			e[10] = byte(FamilyMD5Split) // but two shards and a seed remain
			reseal(e)
			return e
		}, ErrEnvelopeCorrupt},
		{"unknown keyed family", func(e []byte) []byte {
			e[10] = 7
			reseal(e)
			return e
		}, ErrEnvelopeUnusable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, _ := buildEnvelope(t)
			_, err := OpenEnvelope(tc.mutate(env))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// DecodeEnvelopeInfo alone must reject impossible headers so receivers can
// refuse before buffering a payload.
func TestDecodeEnvelopeInfoSizeChecks(t *testing.T) {
	env, _ := buildEnvelope(t)
	info, err := DecodeEnvelopeInfo(env[:EnvelopeHeaderLen])
	if err != nil {
		t.Fatal(err)
	}
	if info.EnvelopeSize() != len(env) {
		t.Errorf("EnvelopeSize = %d, envelope is %d bytes", info.EnvelopeSize(), len(env))
	}
	huge := append([]byte(nil), env[:EnvelopeHeaderLen]...)
	binary.LittleEndian.PutUint64(huge[32:], 1<<20) // 2^20 shards
	if _, err := DecodeEnvelopeInfo(huge); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("oversized shard count accepted: %v", err)
	}
}
