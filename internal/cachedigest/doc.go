// Package cachedigest simulates Squid's cache-digest mechanism (§7):
// sibling proxies periodically exchange Bloom-filter summaries of their
// caches; a proxy receiving a client request checks its siblings' digests
// and fetches from the closest sibling claiming the object. Every digest
// false positive costs at least one wasted round trip between the proxies —
// the quantity the paper's attack inflates.
//
// The digest is built exactly like Squid's: m = 5n + 7 bits for n cached
// objects, k = 4 indexes obtained by splitting one 128-bit MD5 of the store
// key (retrieval method + URL). These parameters are deliberately
// sub-optimal (5 bits/entry instead of 6, k = 4 instead of 3–4 optimal for
// such density), which the paper calls out: for n = 200 the false-positive
// probability is ≈0.09 instead of the optimal 0.03.
//
// RunExperiment stages the full two-proxy scenario — an attacker who
// populates a sibling's cache with chosen URLs before the digest exchange —
// and measures the wasted-RTT budget; `evilbloom squid` prints it next to
// the paper's 79%-vs-40% false-hit numbers.
package cachedigest
