// Package cachedigest implements Squid's cache-digest mechanism (§7), both
// as an in-process simulation and as the wire format live evilbloom nodes
// exchange digests in.
//
// # The §7 simulation
//
// Sibling proxies periodically exchange Bloom-filter summaries of their
// caches; a proxy receiving a client request checks its siblings' digests
// and fetches from the closest sibling claiming the object. Every digest
// false positive costs at least one wasted round trip between the proxies —
// the quantity the paper's attack inflates.
//
// The digest is built exactly like Squid's: m = 5n + 7 bits for n cached
// objects, k = 4 indexes obtained by splitting one 128-bit MD5 of the store
// key (retrieval method + URL). These parameters are deliberately
// sub-optimal (5 bits/entry instead of 6, k = 4 instead of 3–4 optimal for
// such density), which the paper calls out: for n = 200 the false-positive
// probability is ≈0.09 instead of the optimal 0.03.
//
// RunExperiment stages the full two-proxy scenario — an attacker who
// populates a sibling's cache with chosen URLs before the digest exchange —
// and measures the wasted-RTT budget; `evilbloom squid` prints it next to
// the paper's 79%-vs-40% false-hit numbers.
//
// # The digest envelope
//
// The envelope (see the format comment in envelope.go for the byte-by-byte
// layout) is how a digest crosses a process boundary: versioned,
// checksummed, size-determined from its 88-byte header, and self-describing
// — it names the index family (murmur3 double hashing for service filters,
// MD5-split for Squid digests), the geometry, and the shard-routing key, so
// a receiving peer can evaluate membership locally via OpenEnvelope and
// PeerDigest.Test. Digest.Envelope exports a Squid digest in the same
// format, so the simulation and a live `evilbloom serve -peer` deployment
// speak identical bytes.
//
// Unlike package service's snapshot envelope, which carries full filter
// state for restoration by the same trusted party, the digest envelope
// carries only the occupancy pattern plus what a peer needs to query it:
// counting filters travel as their non-zero mask (1 bit per position), and
// keyed (hardened) families are unrepresentable by design — their secrets
// never leave the server, and OpenEnvelope rejects unknown families as
// unusable (ErrEnvelopeUnusable) rather than guessing. Structural damage —
// truncation, length lies, checksum mismatch — is ErrEnvelopeCorrupt; the
// HTTP layer maps the pair to 400/409.
//
// The exchange is exactly where §7's trust boundary sits: a peer's digest
// is taken at face value, so polluting one node's filter (§4.1) poisons
// every sibling's routing. Package service's peer subsystem serves the
// deployment side; attack.RemoteDigestPollution runs the §7 campaign
// across two real servers.
package cachedigest
