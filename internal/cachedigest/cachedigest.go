package cachedigest

import (
	"fmt"
	"time"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// BitsPerEntry and DigestSlack are Squid's sizing constants: m = 5n + 7.
const (
	BitsPerEntry = 5
	DigestSlack  = 7
)

// Key builds the store key Squid hashes: retrieval method and URL.
func Key(method, url string) []byte {
	return []byte(method + " " + url)
}

// Digest is a Squid cache digest.
type Digest struct {
	bloom *core.Bloom
}

// NewDigest sizes a digest for capacity cached objects: m = 5·capacity + 7.
func NewDigest(capacity uint64) (*Digest, error) {
	m := BitsPerEntry*capacity + DigestSlack
	fam, err := hashes.NewMD5Split(m)
	if err != nil {
		return nil, fmt.Errorf("cachedigest: sizing digest for %d entries: %w", capacity, err)
	}
	return &Digest{bloom: core.NewBloom(fam)}, nil
}

// Add inserts the store key for (method, url).
func (d *Digest) Add(method, url string) { d.bloom.Add(Key(method, url)) }

// Test reports whether (method, url) may be in the summarized cache.
func (d *Digest) Test(method, url string) bool { return d.bloom.Test(Key(method, url)) }

// M returns the digest size in bits.
func (d *Digest) M() uint64 { return d.bloom.M() }

// Weight returns the number of set bits.
func (d *Digest) Weight() uint64 { return d.bloom.Weight() }

// EstimatedFPR returns (W/m)^4 for the current pattern.
func (d *Digest) EstimatedFPR() float64 { return d.bloom.EstimatedFPR() }

// Bloom exposes the underlying filter (adversaries model it; §4's threat
// model makes the implementation public).
func (d *Digest) Bloom() *core.Bloom { return d.bloom }

// MarshalBinary serializes the digest for the sibling exchange.
func (d *Digest) MarshalBinary() ([]byte, error) {
	return d.bloom.Bits().MarshalBinary()
}

// Network accounts simulated round trips between peers. The paper's testbed
// measured ≈10 ms per unnecessary sibling hit.
type Network struct {
	// RTT is the simulated peer-to-peer round-trip time.
	RTT time.Duration
	// Trips counts round trips consumed.
	Trips int
}

// RoundTrip consumes one round trip and returns its latency.
func (n *Network) RoundTrip() time.Duration {
	n.Trips++
	return n.RTT
}

// Elapsed returns the total simulated network time spent.
func (n *Network) Elapsed() time.Duration {
	return time.Duration(n.Trips) * n.RTT
}

// Origin serves every URL (an HTTP server answering all GETs, as in the
// paper's LAN setup).
type Origin struct {
	// Fetches counts origin hits.
	Fetches int
}

// Get returns a synthetic body for url.
func (o *Origin) Get(url string) string {
	o.Fetches++
	return "body:" + url
}

// Source says where a proxy found an object.
type Source int

// Fetch outcomes.
const (
	SourceLocal Source = iota + 1
	SourceSibling
	SourceOrigin
)

func (s Source) String() string {
	switch s {
	case SourceLocal:
		return "local"
	case SourceSibling:
		return "sibling"
	case SourceOrigin:
		return "origin"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Stats aggregates one proxy's traffic counters.
type Stats struct {
	// LocalHits counts requests served from the proxy's own cache.
	LocalHits int
	// SiblingProbes counts digest hits that triggered a query to a sibling.
	SiblingProbes int
	// SiblingHits counts probes the sibling actually satisfied.
	SiblingHits int
	// FalseSiblingHits counts probes wasted on digest false positives.
	FalseSiblingHits int
	// OriginFetches counts requests that fell through to the origin.
	OriginFetches int
}

// Proxy is one caching proxy with sibling digests.
type Proxy struct {
	// Name labels the proxy in reports.
	Name string

	cache    map[string]string
	order    []string // insertion order, for digest rebuilds
	siblings []*Proxy
	digests  map[*Proxy]*Digest
	net      *Network
	origin   *Origin

	// Stats accumulates traffic counters.
	Stats Stats
}

// NewProxy builds an empty proxy attached to a shared network and origin.
func NewProxy(name string, net *Network, origin *Origin) *Proxy {
	return &Proxy{
		Name:    name,
		cache:   make(map[string]string),
		digests: make(map[*Proxy]*Digest),
		net:     net,
		origin:  origin,
	}
}

// Peer registers both proxies as siblings of each other.
func Peer(a, b *Proxy) {
	a.siblings = append(a.siblings, b)
	b.siblings = append(b.siblings, a)
}

// CacheLen returns the number of cached objects.
func (p *Proxy) CacheLen() int { return len(p.cache) }

// Cached reports whether url is in the local cache.
func (p *Proxy) Cached(url string) bool {
	_, ok := p.cache[url]
	return ok
}

// store caches a body under url.
func (p *Proxy) store(url, body string) {
	if _, ok := p.cache[url]; !ok {
		p.order = append(p.order, url)
	}
	p.cache[url] = body
}

// BuildDigest summarizes the current cache the way Squid does at its hourly
// rebuild: a fresh 5n+7-bit filter over every cached key.
func (p *Proxy) BuildDigest() (*Digest, error) {
	n := uint64(len(p.cache))
	if n == 0 {
		n = 1
	}
	d, err := NewDigest(n)
	if err != nil {
		return nil, err
	}
	for _, url := range p.order {
		d.Add("GET", url)
	}
	return d, nil
}

// ExchangeDigests rebuilds both proxies' digests and hands them to each
// other (one round trip each way).
func ExchangeDigests(a, b *Proxy) error {
	da, err := a.BuildDigest()
	if err != nil {
		return err
	}
	db, err := b.BuildDigest()
	if err != nil {
		return err
	}
	a.net.RoundTrip()
	b.digests[a] = da
	b.net.RoundTrip()
	a.digests[b] = db
	return nil
}

// Fetch resolves url for a client: local cache, then siblings whose digest
// claims the object (each probe costs a round trip; false positives waste
// it), then the origin.
func (p *Proxy) Fetch(url string) (string, Source) {
	if body, ok := p.cache[url]; ok {
		p.Stats.LocalHits++
		return body, SourceLocal
	}
	for _, sib := range p.siblings {
		digest, ok := p.digests[sib]
		if !ok || !digest.Test("GET", url) {
			continue
		}
		p.Stats.SiblingProbes++
		p.net.RoundTrip() // ICP-style query to the sibling
		if body, ok := sib.cache[url]; ok {
			p.Stats.SiblingHits++
			p.net.RoundTrip() // transfer
			p.store(url, body)
			return body, SourceSibling
		}
		p.Stats.FalseSiblingHits++ // the digest lied: wasted round trip
	}
	body := p.origin.Get(url)
	p.Stats.OriginFetches++
	p.store(url, body)
	return body, SourceOrigin
}
