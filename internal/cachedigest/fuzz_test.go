package cachedigest

import (
	"bytes"
	"errors"
	"testing"

	"evilbloom/internal/bitset"
)

// fuzzKey is the MAC key the fuzz harness seals and unseals with.
var fuzzKey = []byte("fuzz-mesh-secret")

// fuzzEnvelope builds the valid seed envelope without a *testing.T (the
// fuzz seed phase has only *testing.F).
func fuzzEnvelope() []byte {
	info := EnvelopeInfo{
		Family:     FamilyMurmurDouble,
		Generation: 42,
		Seed:       7,
		Shards:     2,
		ShardBits:  128,
		K:          4,
		Count:      3,
	}
	copy(info.RouteKey[:], "0123456789abcdef")
	a, b := bitset.New(128), bitset.New(128)
	a.Set(1)
	a.Set(77)
	b.Set(127)
	env, err := EncodeEnvelope(info, []*bitset.BitSet{a, b})
	if err != nil {
		panic(err)
	}
	return env
}

// fuzzDelta builds a valid seed delta against the seed envelope's
// generation 42 (two shards × 128 bits → 4 global words).
func fuzzDelta(baseGen uint64) []byte {
	frame, err := EncodeDelta(
		DeltaInfo{BaseGeneration: baseGen, NewGeneration: baseGen + 8, NewCount: 5, TotalWords: 4},
		[]DeltaWord{{Index: 0, Value: 0x8000000000000022}, {Index: 3, Value: 1}})
	if err != nil {
		panic(err)
	}
	return frame
}

// FuzzDigestEnvelope throws arbitrary bytes at every decoder a mesh peer
// exposes to the network: full envelopes, delta frames, and the HMAC
// trailer around both. The invariants:
//
//   - nothing panics, whatever the bytes;
//   - every rejection is a typed sentinel (Corrupt, Unusable — including
//     the Gap refinement — or Unauthenticated), never an untyped error;
//   - a frame that unseals under a key re-seals byte-identically (the MAC
//     is deterministic and the trailer split exact);
//   - tampering with a sealed frame — truncated MAC, bit-flipped payload —
//     is always refused;
//   - an applied delta never changes the held digest or its geometry.
func FuzzDigestEnvelope(f *testing.F) {
	env := fuzzEnvelope()
	delta := fuzzDelta(42)

	// Valid frames, bare and sealed.
	f.Add(env)
	f.Add(delta)
	f.Add(fuzzDelta(0))
	f.Add(Seal(env, fuzzKey))
	f.Add(Seal(delta, fuzzKey))
	// Tampered sealed frames: truncated MAC, bit-flipped payload.
	sealed := Seal(env, fuzzKey)
	f.Add(sealed[:len(sealed)-1])
	f.Add(sealed[:len(env)])
	f.Add(flipByte(sealed, 20))
	f.Add(flipByte(Seal(delta, fuzzKey), DeltaHeaderLen))
	// Generation-gap and geometry-gap deltas.
	f.Add(fuzzDelta(41))
	gap, _ := EncodeDelta(DeltaInfo{BaseGeneration: 42, NewGeneration: 50, TotalWords: 8},
		[]DeltaWord{{Index: 7, Value: 1}})
	f.Add(gap)
	// Header-only prefixes and magic confusions.
	f.Add(env[:EnvelopeHeaderLen])
	f.Add(delta[:DeltaHeaderLen])
	f.Add([]byte("EVBDIGD1"))
	f.Add([]byte("EVBDIGE1"))
	f.Add(bytes.Repeat([]byte{0xff}, 96))

	held, err := OpenEnvelope(env)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Full-envelope path.
		if d, err := OpenEnvelope(data); err == nil {
			d.Test([]byte("probe"))
			d.Weight()
		} else if !typedEnvelopeErr(err) {
			t.Fatalf("OpenEnvelope: untyped error %v", err)
		}

		// Delta path: decode, then apply against the held digest.
		if _, _, err := DecodeDelta(data); err != nil && !typedEnvelopeErr(err) {
			t.Fatalf("DecodeDelta: untyped error %v", err)
		}
		if next, err := held.ApplyDelta(data); err == nil {
			if next.Bits() != held.Bits() || next.Info().Shards != held.Info().Shards {
				t.Fatalf("ApplyDelta changed geometry: %d/%d bits", next.Bits(), held.Bits())
			}
			if held.Generation() != 42 || held.Weight() != 3 {
				t.Fatalf("ApplyDelta mutated the held digest: gen %d weight %d", held.Generation(), held.Weight())
			}
		} else if !typedEnvelopeErr(err) {
			t.Fatalf("ApplyDelta: untyped error %v", err)
		}

		// MAC trailer path. Success means data really was sealed with the
		// key, so re-sealing the payload must reproduce it bit for bit —
		// and any single-byte corruption must be refused.
		if payload, err := Unseal(data, fuzzKey); err == nil {
			if !bytes.Equal(Seal(payload, fuzzKey), data) {
				t.Fatal("Unseal/Seal round trip is not the identity")
			}
			if _, err := Unseal(flipByte(data, 0), fuzzKey); !errors.Is(err, ErrEnvelopeUnauthenticated) {
				t.Fatalf("bit-flipped sealed frame accepted: %v", err)
			}
			if _, err := Unseal(data[:len(data)-1], fuzzKey); !errors.Is(err, ErrEnvelopeUnauthenticated) {
				t.Fatalf("truncated sealed frame accepted: %v", err)
			}
		} else if !errors.Is(err, ErrEnvelopeUnauthenticated) {
			t.Fatalf("Unseal: untyped error %v", err)
		}
	})
}

// typedEnvelopeErr reports whether err is one of the wire-format sentinels
// a peer maps to a status code — the only errors the decoders may return.
func typedEnvelopeErr(err error) bool {
	return errors.Is(err, ErrEnvelopeCorrupt) ||
		errors.Is(err, ErrEnvelopeUnusable) ||
		errors.Is(err, ErrEnvelopeUnauthenticated)
}
