package cachedigest

import (
	"fmt"
	"time"

	"evilbloom/internal/attack"
	"evilbloom/internal/urlgen"
)

// ExperimentConfig mirrors the paper's §7 testbed: two sibling proxies, a
// clean cache of 51 URLs, 100 attacker-supplied URLs, 100 probe queries
// against the second proxy, and a 10 ms RTT between the proxies.
type ExperimentConfig struct {
	// CleanURLs is the number of honest URLs pre-cached on the first proxy
	// (51 in the paper: the warm-up state of a "totally clean" cache).
	CleanURLs int
	// ExtraURLs is the number of additional URLs the client asks the first
	// proxy to fetch — crafted by the adversary in the attack run, honest in
	// the control run (100 in the paper).
	ExtraURLs int
	// Probes is the number of uncached URLs queried through the second
	// proxy after the digest exchange (100 in the paper).
	Probes int
	// RTT is the simulated proxy-to-proxy round trip (10 ms in the paper).
	RTT time.Duration
	// Seed drives every URL stream.
	Seed int64
	// PerItemBudget bounds the per-URL forgery search (0 = unbounded).
	PerItemBudget uint64
}

// DefaultExperimentConfig returns the paper's parameters.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		CleanURLs: 51,
		ExtraURLs: 100,
		Probes:    100,
		RTT:       10 * time.Millisecond,
		Seed:      1,
	}
}

// ExperimentResult reports one run (clean or polluted).
type ExperimentResult struct {
	// Polluted records whether the extra URLs were adversarial.
	Polluted bool
	// DigestBits is the exchanged digest size (762 in the paper).
	DigestBits uint64
	// DigestWeight is its Hamming weight after the run.
	DigestWeight uint64
	// DigestFPR is the analytic (W/m)^4 of the exchanged digest.
	DigestFPR float64
	// FalseHits counts probe queries that hit the digest and wasted a round
	// trip on the sibling (the paper's "false positive hits": 79% polluted
	// vs 40% clean out of 100 queries).
	FalseHits int
	// WastedRTT is the network time burned on false hits.
	WastedRTT time.Duration
	// ForgeAttempts counts adversary candidates tried (0 for clean runs).
	ForgeAttempts uint64
}

// RunExperiment executes the §7 scenario once.
func RunExperiment(cfg ExperimentConfig, polluted bool) (*ExperimentResult, error) {
	if cfg.CleanURLs < 0 || cfg.ExtraURLs < 0 || cfg.Probes <= 0 {
		return nil, fmt.Errorf("cachedigest: invalid experiment config %+v", cfg)
	}
	net := &Network{RTT: cfg.RTT}
	origin := &Origin{}
	p1 := NewProxy("proxy1", net, origin)
	p2 := NewProxy("proxy2", net, origin)
	Peer(p1, p2)

	// Warm proxy1 with the clean cache.
	cleanGen := urlgen.New(cfg.Seed)
	cleanURLs := cleanGen.URLs(cfg.CleanURLs)
	for _, u := range cleanURLs {
		p1.Fetch(u)
	}

	var forgeAttempts uint64
	if polluted {
		// The adversary models the digest the proxy will build: she knows
		// the implementation (public), the digest geometry (5n+7 over the
		// final cache size) and the cache contents (she can enumerate or
		// observe them; the paper grants state knowledge to the §4.2/§4.1
		// adversaries).
		capacity := uint64(cfg.CleanURLs + cfg.ExtraURLs)
		model, err := NewDigest(capacity)
		if err != nil {
			return nil, err
		}
		for _, u := range cleanURLs {
			model.Add("GET", u)
		}
		forger := attack.NewForger(attack.NewBloomView(model.Bloom()),
			keyedURLGenerator(cfg.Seed+7))
		for i := 0; i < cfg.ExtraURLs; i++ {
			item, _, err := forger.ForgePolluting(cfg.PerItemBudget)
			if err != nil {
				return nil, fmt.Errorf("cachedigest: forging URL %d: %w", i, err)
			}
			url := urlFromKey(item)
			model.Add("GET", url)
			p1.Fetch(url) // the malicious client makes proxy1 cache it
		}
		forgeAttempts = forger.Attempts
	} else {
		honest := urlgen.New(cfg.Seed + 7)
		for i := 0; i < cfg.ExtraURLs; i++ {
			p1.Fetch(honest.URL())
		}
	}

	if err := ExchangeDigests(p1, p2); err != nil {
		return nil, err
	}
	digest := p2.digests[p1]

	// Probe proxy2 with URLs cached nowhere: every sibling probe is a
	// digest false positive.
	probes := urlgen.New(cfg.Seed + 1000)
	for i := 0; i < cfg.Probes; i++ {
		p2.Fetch(probes.URL())
	}
	wasted := time.Duration(p2.Stats.FalseSiblingHits) * cfg.RTT

	return &ExperimentResult{
		Polluted:      polluted,
		DigestBits:    digest.M(),
		DigestWeight:  digest.Weight(),
		DigestFPR:     digest.EstimatedFPR(),
		FalseHits:     p2.Stats.FalseSiblingHits,
		WastedRTT:     wasted,
		ForgeAttempts: forgeAttempts,
	}, nil
}

// keyedURLGenerator yields store keys ("GET <fake-url>") so the forger
// searches directly in key space.
func keyedURLGenerator(seed int64) attack.Generator {
	gen := urlgen.New(seed)
	return attack.GeneratorFunc(func() []byte {
		return Key("GET", gen.URL())
	})
}

// urlFromKey strips the method prefix a keyedURLGenerator added.
func urlFromKey(key []byte) string {
	s := string(key)
	const prefix = "GET "
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):]
	}
	return s
}
