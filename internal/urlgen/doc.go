// Package urlgen generates deterministic, human-plausible fake URLs. It
// substitutes the Python fake-factory package the paper uses to drive its
// experiments: the attacks only require an endless stream of distinct,
// realistic-looking URLs, so a seeded word-list generator preserves the
// relevant behaviour while keeping every experiment reproducible.
//
// A Generator is owned by one goroutine; give each worker its own seed
// rather than sharing one generator. It implements attack.Generator, and
// every experiment in this repository draws its candidates from it.
package urlgen
