package urlgen

import (
	"math/rand"
	"strconv"
	"strings"
)

var (
	words = []string{
		"alpha", "atlas", "aurora", "beacon", "bridge", "cedar", "cipher",
		"cloud", "cobalt", "comet", "coral", "crystal", "delta", "drift",
		"ember", "falcon", "fern", "flint", "frost", "garnet", "glacier",
		"harbor", "hazel", "horizon", "indigo", "iris", "jade", "juniper",
		"karma", "kepler", "lagoon", "lantern", "linden", "lumen", "maple",
		"meadow", "mesa", "mistral", "nebula", "nimbus", "north", "nova",
		"ocean", "onyx", "opal", "orbit", "osprey", "pearl", "pinnacle",
		"pioneer", "prairie", "quartz", "quasar", "raven", "ridge", "river",
		"saffron", "sage", "sierra", "signal", "slate", "solace", "sparrow",
		"spruce", "summit", "sunset", "tempest", "thistle", "timber", "topaz",
		"tundra", "umber", "vertex", "violet", "vista", "walnut", "willow",
		"winter", "yarrow", "zenith", "zephyr",
	}
	tlds     = []string{"com", "net", "org", "info", "io", "biz", "eu", "fr"}
	schemes  = []string{"http", "https"}
	sections = []string{
		"news", "blog", "shop", "docs", "wiki", "forum", "media", "static",
		"archive", "products", "articles", "users", "tags", "search",
	}
	extensions = []string{"", "", ".html", ".php", ".aspx"}
)

// Generator yields fake URLs from a deterministic stream. It is not safe
// for concurrent use; create one per goroutine.
type Generator struct {
	rng    *rand.Rand
	serial uint64
	buf    strings.Builder
}

// New returns a Generator seeded deterministically.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

func (g *Generator) pick(list []string) string {
	return list[g.rng.Intn(len(list))]
}

// Domain returns a fake registrable domain like "cobalt-meadow.net".
func (g *Generator) Domain() string {
	if g.rng.Intn(2) == 0 {
		return g.pick(words) + "-" + g.pick(words) + "." + g.pick(tlds)
	}
	return g.pick(words) + g.pick(words) + "." + g.pick(tlds)
}

// URL returns a fake absolute URL. A monotone serial is embedded so the
// stream never repeats, which brute-force forgery relies on.
func (g *Generator) URL() string {
	g.buf.Reset()
	g.buf.WriteString(g.pick(schemes))
	g.buf.WriteString("://")
	g.buf.WriteString(g.Domain())
	g.buf.WriteByte('/')
	g.buf.WriteString(g.pick(sections))
	g.buf.WriteByte('/')
	depth := g.rng.Intn(3)
	for i := 0; i < depth; i++ {
		g.buf.WriteString(g.pick(words))
		g.buf.WriteByte('/')
	}
	g.buf.WriteString(g.pick(words))
	g.buf.WriteByte('-')
	g.buf.WriteString(strconv.FormatUint(g.serial, 36))
	g.buf.WriteString(g.pick(extensions))
	g.serial++
	return g.buf.String()
}

// Next implements the attack.Generator contract: each call yields a fresh
// URL as bytes.
func (g *Generator) Next() []byte {
	return []byte(g.URL())
}

// URLs returns the next n URLs.
func (g *Generator) URLs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.URL()
	}
	return out
}

// Serial returns how many URLs have been generated.
func (g *Generator) Serial() uint64 { return g.serial }
