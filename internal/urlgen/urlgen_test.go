package urlgen

import (
	"net/url"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.URL() != b.URL() {
			t.Fatalf("same seed diverged at URL %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.URL() == c.URL() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical URLs", same)
	}
}

func TestURLsAreUniqueAndParseable(t *testing.T) {
	g := New(1)
	seen := make(map[string]bool, 100000)
	for i := 0; i < 100000; i++ {
		u := g.URL()
		if seen[u] {
			t.Fatalf("duplicate URL after %d: %s", i, u)
		}
		seen[u] = true
		if i < 1000 {
			parsed, err := url.Parse(u)
			if err != nil {
				t.Fatalf("unparseable URL %q: %v", u, err)
			}
			if parsed.Scheme != "http" && parsed.Scheme != "https" {
				t.Errorf("unexpected scheme in %q", u)
			}
			if parsed.Host == "" || !strings.Contains(parsed.Host, ".") {
				t.Errorf("bad host in %q", u)
			}
			if !strings.HasPrefix(parsed.Path, "/") {
				t.Errorf("bad path in %q", u)
			}
		}
	}
	if g.Serial() != 100000 {
		t.Errorf("Serial = %d, want 100000", g.Serial())
	}
}

func TestNextMatchesURLStream(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if string(a.Next()) != b.URL() {
			t.Fatal("Next and URL streams diverge")
		}
	}
}

func TestURLsBatch(t *testing.T) {
	g := New(5)
	batch := g.URLs(50)
	if len(batch) != 50 {
		t.Fatalf("URLs returned %d items", len(batch))
	}
	for i, u := range batch {
		if u == "" {
			t.Errorf("empty URL at %d", i)
		}
	}
}

func TestDomain(t *testing.T) {
	g := New(9)
	for i := 0; i < 100; i++ {
		d := g.Domain()
		if !strings.Contains(d, ".") || strings.Contains(d, "/") {
			t.Errorf("bad domain %q", d)
		}
	}
}

func BenchmarkURL(b *testing.B) {
	g := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.URL()
	}
}
