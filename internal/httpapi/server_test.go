package httpapi

import (
	"bytes"
	"encoding/json"
	"evilbloom/internal/service"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"evilbloom/internal/urlgen"
)

// newTestServer spins up an httptest server over a small store.
func newTestServer(t *testing.T, mode service.Mode) (*httptest.Server, *service.Sharded) {
	t.Helper()
	store, err := service.NewSharded(testConfig(mode, 4))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store))
	t.Cleanup(ts.Close)
	return ts, store
}

// postJSON posts body to path and decodes the response into out, returning
// the status code.
func postJSON(t *testing.T, base, path string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, base, path string, out any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestServerAddTestRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, service.ModeNaive)
	var add addResponse
	if code := postJSON(t, ts.URL, "/v1/add", itemRequest{Item: "http://a.example/1"}, &add); code != 200 {
		t.Fatalf("add status %d", code)
	}
	if add.Added != 1 || add.Count != 1 {
		t.Errorf("add response %+v", add)
	}
	var tr testResponse
	postJSON(t, ts.URL, "/v1/test", itemRequest{Item: "http://a.example/1"}, &tr)
	if !tr.Present {
		t.Error("inserted item reported absent")
	}
	postJSON(t, ts.URL, "/v1/test", itemRequest{Item: "http://a.example/never"}, &tr)
	if tr.Present {
		t.Error("fresh item reported present (possible but wildly unlikely at this fill)")
	}
}

func TestServerBatchEndpoints(t *testing.T) {
	ts, store := newTestServer(t, service.ModeHardened)
	gen := urlgen.New(5)
	items := make([]string, 300)
	for i := range items {
		items[i] = string(gen.Next())
	}
	var add addResponse
	if code := postJSON(t, ts.URL, "/v1/add-batch", batchRequest{Items: items}, &add); code != 200 {
		t.Fatalf("add-batch status %d", code)
	}
	if add.Added != len(items) || add.Count != uint64(len(items)) {
		t.Errorf("add-batch response %+v", add)
	}
	probes := append([]string{}, items[:100]...)
	for i := 0; i < 100; i++ {
		probes = append(probes, string(gen.Next()))
	}
	var tb testBatchResponse
	if code := postJSON(t, ts.URL, "/v1/test-batch", batchRequest{Items: probes}, &tb); code != 200 {
		t.Fatalf("test-batch status %d", code)
	}
	if len(tb.Present) != len(probes) {
		t.Fatalf("test-batch returned %d results for %d probes", len(tb.Present), len(probes))
	}
	for i, p := range probes {
		if tb.Present[i] != store.Test([]byte(p)) {
			t.Errorf("probe %d disagrees with direct store query", i)
		}
	}
}

func TestServerStatsAndInfo(t *testing.T) {
	ts, _ := newTestServer(t, service.ModeNaive)
	postJSON(t, ts.URL, "/v1/add", itemRequest{Item: "x"}, nil)
	var st service.Stats
	if code := getJSON(t, ts.URL, "/v1/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Count != 1 || st.Shards != 4 || len(st.PerShard) != 4 {
		t.Errorf("stats %+v", st)
	}
	var info InfoResponse
	if code := getJSON(t, ts.URL, "/v1/info", &info); code != 200 {
		t.Fatalf("info status %d", code)
	}
	if info.Mode != "naive" || info.Seed == nil || *info.Seed != 3 {
		t.Errorf("naive info must publish the seed: %+v", info)
	}

	hts, _ := newTestServer(t, service.ModeHardened)
	var hinfo InfoResponse
	if code := getJSON(t, hts.URL, "/v1/info", &hinfo); code != 200 {
		t.Fatalf("hardened info status %d", code)
	}
	if hinfo.Mode != "hardened" || hinfo.Seed != nil {
		t.Errorf("hardened info must not leak a seed: %+v", hinfo)
	}
	if !strings.Contains(hinfo.Algorithm, "siphash") {
		t.Errorf("hardened algorithm = %q", hinfo.Algorithm)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.ModeNaive)
	cases := []struct {
		name string
		do   func() int
	}{
		{"get on add", func() int { return getJSON(t, ts.URL, "/v1/add", nil) }},
		{"post on stats", func() int { return postJSON(t, ts.URL, "/v1/stats", itemRequest{Item: "x"}, nil) }},
		{"empty item", func() int { return postJSON(t, ts.URL, "/v1/add", itemRequest{}, nil) }},
		{"oversize item", func() int {
			return postJSON(t, ts.URL, "/v1/add", itemRequest{Item: strings.Repeat("a", service.MaxItemLen+1)}, nil)
		}},
		{"empty batch", func() int { return postJSON(t, ts.URL, "/v1/add-batch", batchRequest{}, nil) }},
		{"oversize batch", func() int {
			items := make([]string, service.MaxBatch+1)
			for i := range items {
				items[i] = "x"
			}
			return postJSON(t, ts.URL, "/v1/add-batch", batchRequest{Items: items}, nil)
		}},
		{"unknown field", func() int {
			return postJSON(t, ts.URL, "/v1/test", map[string]any{"item": "x", "evil": true}, nil)
		}},
	}
	for _, tc := range cases {
		if code := tc.do(); code < 400 || code >= 500 {
			t.Errorf("%s: status %d, want 4xx", tc.name, code)
		}
	}
}

// A body over service.MaxBodyBytes must be answered with 413 and an error naming
// the limit, not a generic bad-request.
func TestServerRejectsOversizeBody(t *testing.T) {
	ts, _ := newTestServer(t, service.ModeNaive)
	items := make([]string, 0, service.MaxBatch)
	item := strings.Repeat("a", service.MaxItemLen)
	for len(items) < 3000 { // ~12 MB of payload, over the 8 MB cap
		items = append(items, item)
	}
	var errResp errorResponse
	code := postJSON(t, ts.URL, "/v1/add-batch", batchRequest{Items: items}, &errResp)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", code)
	}
	if !strings.Contains(errResp.Error, "split the batch") {
		t.Errorf("error %q does not tell the client what to do", errResp.Error)
	}
}

// The acceptance scenario: sustained concurrent batch add/test traffic
// through the HTTP layer, race-detector-clean.
func TestServerConcurrentBatchTraffic(t *testing.T) {
	ts, store := newTestServer(t, service.ModeNaive)
	const workers, rounds, batch = 8, 20, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := urlgen.New(int64(w + 1))
			for r := 0; r < rounds; r++ {
				items := make([]string, batch)
				for i := range items {
					items[i] = string(gen.Next())
				}
				body, _ := json.Marshal(batchRequest{Items: items})
				resp, err := http.Post(ts.URL+"/v1/add-batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("add-batch status %d", resp.StatusCode)
					return
				}
				resp, err = http.Post(ts.URL+"/v1/test-batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var tb testBatchResponse
				err = json.NewDecoder(resp.Body).Decode(&tb)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for i, p := range tb.Present {
					if !p {
						errs <- fmt.Errorf("worker %d round %d: item %d absent right after insertion", w, r, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := store.Count(), uint64(workers*rounds*batch); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}
