package httpapi

import "strings"

// etagMatch reports whether an If-None-Match header value matches current,
// this server's entity tag for the representation. RFC 9110 §13.1.2: the
// field is either `*` (matches any current representation) or a
// comma-separated list of entity-tags, each optionally a weak validator
// (`W/"..."`); If-None-Match uses weak comparison, under which W/"x" and
// "x" are equal. Exact string equality — what this function replaces —
// silently failed all three forms, so intermediaries holding a valid tag
// kept refetching full digests.
func etagMatch(header, current string) bool {
	current = strings.TrimPrefix(current, "W/")
	for _, cand := range splitETags(header) {
		if cand == "*" {
			return true
		}
		if strings.TrimPrefix(cand, "W/") == current {
			return true
		}
	}
	return false
}

// splitETags tokenizes an If-None-Match value into entity-tags. Tags are
// quoted strings (optionally W/-prefixed) separated by commas and optional
// whitespace. The quotes delimit the tag, and RFC 9110's etagc grammar
// permits commas *inside* them — so tokenization walks the quoting rather
// than splitting on commas. Anything malformed is kept as an opaque token:
// it simply won't compare equal to a well-formed server tag.
func splitETags(v string) []string {
	var out []string
	for i, n := 0, len(v); i < n; {
		for i < n && (v[i] == ' ' || v[i] == '\t' || v[i] == ',') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		if v[i] == '*' {
			out = append(out, "*")
			i++
			continue
		}
		if v[i] == 'W' && i+1 < n && v[i+1] == '/' {
			i += 2
		}
		if i < n && v[i] == '"' {
			for i++; i < n && v[i] != '"'; i++ {
			}
			if i < n {
				i++ // closing quote
			}
			out = append(out, v[start:i])
			continue
		}
		// Unquoted garbage: take the run up to the next comma as one token.
		for i < n && v[i] != ',' {
			i++
		}
		out = append(out, strings.TrimSpace(v[start:i]))
	}
	return out
}
