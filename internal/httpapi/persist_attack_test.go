package httpapi

import (
	"bytes"
	"evilbloom/internal/service"
	"net/http/httptest"
	"testing"

	"evilbloom/internal/attack"
	"evilbloom/internal/urlgen"
)

// The operational payoff of durability — and the reason it sharpens the
// paper's threat model: the §4.3 deletion adversary's work now SURVIVES a
// server restart. She evicts an honest victim from a live naive counting
// server (ghost covers inserted, crafted removals accepted), the server
// restarts from its data dir, and the induced false negative is still
// there, byte-identically: an operator cannot bounce the process to heal an
// adversarially damaged filter.
func TestRestartPreservesDeletionAttack(t *testing.T) {
	dir := t.TempDir()
	reg := service.NewRegistry()
	if _, err := reg.OpenDataDir(dir, service.SyncInterval); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg))
	// The paper's Fig 3 geometry as one naive counting shard — the §4.3
	// single-filter setting, created through the wire API like any client.
	if code := doJSON(t, "PUT", ts.URL+"/v2/filters/blocklist",
		FilterSpec{Variant: "counting", Mode: "naive", Shards: 1, ShardBits: 3200, HashCount: 4, Seed: 7}, nil); code != 201 {
		t.Fatalf("create status %d", code)
	}
	client := attack.NewRemoteClient(ts.URL, nil).ForFilter("blocklist")

	victim := []byte("http://honest.example.com/blocked-page")
	gen := urlgen.New(400)
	honest := make([][]byte, 50)
	for i := range honest {
		honest[i] = gen.Next()
	}
	if err := client.AddBatch(honest); err != nil {
		t.Fatal(err)
	}
	if err := client.Add(victim); err != nil {
		t.Fatal(err)
	}

	adv, err := attack.NewRemoteDeletionFromInfo(client, urlgen.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := adv.Evict(victim, 100000, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Evicted {
		t.Fatalf("campaign failed against the naive server: %+v", rep)
	}

	f, err := reg.Get("blocklist")
	if err != nil {
		t.Fatal(err)
	}
	preCrash, err := f.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Record the pre-restart membership of the honest control set (the
	// campaign's collateral damage included): restart must change none of it.
	preHonest := make([]bool, len(honest))
	for i, it := range honest {
		if preHonest[i], err = client.Test(it); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh registry recovers the filter from disk.
	reg2 := service.NewRegistry()
	if n, err := reg2.OpenDataDir(dir, service.SyncInterval); err != nil || n != 1 {
		t.Fatalf("reopen: n=%d err=%v", n, err)
	}
	defer reg2.Close() //nolint:errcheck
	f2, err := reg2.Get("blocklist")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := f2.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preCrash, restored) {
		t.Error("restart did not reproduce the polluted state byte-identically")
	}

	ts2 := httptest.NewServer(NewRegistryServer(reg2))
	defer ts2.Close()
	client2 := attack.NewRemoteClient(ts2.URL, nil).ForFilter("blocklist")
	present, err := client2.Test(victim)
	if err != nil {
		t.Fatal(err)
	}
	if present {
		t.Error("restart healed the adversarially induced false negative")
	}
	for i, it := range honest {
		ok, err := client2.Test(it)
		if err != nil {
			t.Fatal(err)
		}
		if ok != preHonest[i] {
			t.Errorf("honest item %q flipped across the restart: was %v, now %v", it, preHonest[i], ok)
		}
	}
}
