package httpapi

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// The HTTP-layer bugfix sweep's regression tests: RFC 9110 If-None-Match
// handling on the digest endpoint, pushed-peer label validation, and
// keep-alive connection reuse across failed peer exchanges.

// etagMatch must implement RFC 9110 weak comparison over the list forms
// intermediaries actually send, not string equality.
func TestETagMatchRFC9110(t *testing.T) {
	const cur = `"evb-digest-ab12-7"`
	cases := []struct {
		name   string
		header string
		want   bool
	}{
		{"exact", cur, true},
		{"star", `*`, true},
		{"weak form of current", `W/"evb-digest-ab12-7"`, true},
		{"list containing current", `"other-tag", ` + cur, true},
		{"list containing weak current", `"a", W/"evb-digest-ab12-7", "b"`, true},
		{"list without whitespace", `"a",` + cur + `,"b"`, true},
		{"different tag", `"evb-digest-ab12-8"`, false},
		{"list without current", `"a", "b", W/"c"`, false},
		{"empty", ``, false},
		{"unquoted garbage", `evb-digest-ab12-7`, false},
		{"tag with inner comma matched", `"evb,digest"`, false},
		{"star inside list", `"a", *`, true},
		{"dangling weak prefix", `W/`, false},
		{"unterminated quote", `"evb-digest-ab12-7`, false},
	}
	for _, tc := range cases {
		if got := etagMatch(tc.header, cur); got != tc.want {
			t.Errorf("%s: etagMatch(%q) = %v, want %v", tc.name, tc.header, got, tc.want)
		}
	}
	// A tag containing a comma must survive tokenization when it is the
	// current tag too (RFC 9110 etagc permits commas).
	if !etagMatch(`"evb,digest"`, `"evb,digest"`) {
		t.Error("comma-bearing tag mangled by tokenization")
	}
	// Weak comparison is symmetric: a weak current tag matches its strong
	// candidate form.
	if !etagMatch(`"x"`, `W/"x"`) {
		t.Error("weak current tag did not weak-compare")
	}
}

// The digest endpoint must honor every RFC form over the wire: `*`, weak
// validators and comma-separated lists all earn the 304 that exact string
// equality used to deny.
func TestDigestConditionalRequestForms(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(1), nil)
	_, etag, code := getDigest(t, ts.URL, "d", "")
	if code != http.StatusOK || etag == "" {
		t.Fatalf("digest fetch: %d, etag %q", code, etag)
	}
	hit := []string{
		etag,
		"*",
		"W/" + etag,
		`"stale-tag", ` + etag,
		`W/"other", W/` + etag + `, "more"`,
	}
	for _, h := range hit {
		if _, _, code := getDigest(t, ts.URL, "d", h); code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", h, code)
		}
	}
	miss := []string{`"unrelated"`, `W/"unrelated"`, `"a", "b"`}
	for _, h := range miss {
		if _, _, code := getDigest(t, ts.URL, "d", h); code != http.StatusOK {
			t.Errorf("If-None-Match %q: status %d, want 200", h, code)
		}
	}
}

// Pushed peer labels become map keys echoed back through the peers JSON,
// so they must obey the filter-name rule; anything else is 400 before any
// state is touched.
func TestDigestPushLabelValidation(t *testing.T) {
	ts, reg := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(1), nil)
	f, err := reg.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("x"))
	env, _, _ := getDigest(t, ts.URL, "d", "")

	bad := []string{
		"a\x01b",                     // control character
		"a b",                        // whitespace
		strings.Repeat("x", 65),      // over the 64-byte bound
		".hidden",                    // leading dot (path-like)
		"../escape",                  // separator characters
		"sib/0",                      // ditto
		"\x7f",                       // DEL
		"ünïcödé",                    // non-ASCII
		"http://10.0.0.2:8379",       // raw URLs are not labels
		strings.Repeat("\x00", 2000), // arbitrary-length control garbage
	}
	for _, label := range bad {
		code, body := pushDigest(t, ts.URL, "d", labelEscape(label), env)
		if code != http.StatusBadRequest {
			t.Errorf("label %q: status %d (%s), want 400", label, code, body)
		}
	}
	// The registry never stored any of them.
	status, err := reg.Peers().Status("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(status) != 0 {
		t.Errorf("invalid labels stored: %+v", status)
	}
	// A rule-abiding label still works.
	if code, body := pushDigest(t, ts.URL, "d", "sib-0.a_b", env); code != http.StatusOK {
		t.Errorf("valid label refused: %d (%s)", code, body)
	}
	// Direct (non-HTTP) pushes enforce the same rule.
	if _, err := reg.Peers().Push("d", "bad label", nil, "", false); err == nil {
		t.Error("Push accepted an invalid label")
	}
}

// labelEscape query-escapes a label for the ?peer= parameter.
func labelEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		fmt.Fprintf(&b, "%%%02X", s[i])
	}
	return b.String()
}
