package httpapi

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"evilbloom/internal/service"
)

// The PUT-with-snapshot-body path end to end: export a filter, re-create a
// clone under a new name, and exercise the rejection statuses (corrupt 400,
// hardened 409, name conflict 409).
func TestCreateFromSnapshotHTTP(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/src",
		FilterSpec{Variant: "counting", Mode: "naive", Shards: 2, ShardBits: 1024, HashCount: 4, Seed: 3}, nil)
	items := []string{"alpha", "beta", "gamma", "delta"}
	doJSON(t, "POST", ts.URL+"/v2/filters/src/add-batch", batchRequest{Items: items}, nil)

	fetchSnap := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v2/filters/src/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	putSnap := func(name string, blob []byte) (int, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/filters/"+name, bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		body.ReadFrom(resp.Body) //nolint:errcheck
		return resp.StatusCode, body.String()
	}

	snap := fetchSnap()
	if code, body := putSnap("clone", snap); code != http.StatusCreated {
		t.Fatalf("create-from-snapshot: status %d (%s)", code, body)
	}
	var info FilterInfo
	doJSON(t, "GET", ts.URL+"/v2/filters/clone", nil, &info)
	if info.Variant != "counting" || info.Seed == nil || *info.Seed != 3 {
		t.Errorf("clone info %+v", info)
	}
	for _, it := range items {
		var tr testResponse
		doJSON(t, "POST", ts.URL+"/v2/filters/clone/test", itemRequest{Item: it}, &tr)
		if !tr.Present {
			t.Errorf("clone lost %q", it)
		}
	}
	var srcStats, cloneStats service.Stats
	doJSON(t, "GET", ts.URL+"/v2/filters/src/stats", nil, &srcStats)
	doJSON(t, "GET", ts.URL+"/v2/filters/clone/stats", nil, &cloneStats)
	if !reflect.DeepEqual(srcStats, cloneStats) {
		t.Errorf("clone stats diverge:\n  src=%+v\n  dst=%+v", srcStats, cloneStats)
	}

	// Rejections.
	if code, _ := putSnap("clone", snap); code != http.StatusConflict {
		t.Errorf("snapshot onto taken name: status %d, want 409", code)
	}
	bad := bytes.Clone(snap)
	bad[len(bad)-1] ^= 0xff // trailer CRC
	if code, _ := putSnap("corrupt", bad); code != http.StatusBadRequest {
		t.Errorf("corrupt envelope: status %d, want 400", code)
	}
	if code, _ := putSnap("short", snap[:len(snap)-9]); code != http.StatusBadRequest {
		t.Errorf("truncated envelope: status %d, want 400", code)
	}
	doJSON(t, "PUT", ts.URL+"/v2/filters/hard", FilterSpec{Mode: "hardened", Shards: 1, ShardBits: 1024, HashCount: 4}, nil)
	resp, err := http.Get(ts.URL + "/v2/filters/hard/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var hsnap bytes.Buffer
	hsnap.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if code, body := putSnap("hard2", hsnap.Bytes()); code != http.StatusConflict {
		t.Errorf("hardened snapshot over the wire: status %d (%s), want 409", code, body)
	}
}

// The compact endpoint: 409 on a memory-only filter, generation bump on a
// durable one.
func TestCompactHTTP(t *testing.T) {
	// Memory-only server.
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/mem", FilterSpec{Shards: 1, ShardBits: 1024, HashCount: 4}, nil)
	if code := doJSON(t, "POST", ts.URL+"/v2/filters/mem/compact", nil, nil); code != http.StatusConflict {
		t.Errorf("compact on memory-only filter: status %d, want 409", code)
	}

	// Durable server.
	reg := service.NewRegistry()
	if _, err := reg.OpenDataDir(t.TempDir(), service.SyncNever); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewRegistryServer(reg))
	defer ts2.Close()
	defer reg.Close() //nolint:errcheck
	doJSON(t, "PUT", ts2.URL+"/v2/filters/dur", FilterSpec{Shards: 1, ShardBits: 1024, HashCount: 4}, nil)
	doJSON(t, "POST", ts2.URL+"/v2/filters/dur/add", itemRequest{Item: "x"}, nil)
	var cr compactResponse
	if code := doJSON(t, "POST", ts2.URL+"/v2/filters/dur/compact", nil, &cr); code != 200 || !cr.Compacted || cr.Generation != 1 {
		t.Errorf("compact: code %d resp %+v, want 200 generation 1", code, cr)
	}
	var info FilterInfo
	doJSON(t, "GET", ts2.URL+"/v2/filters/dur", nil, &info)
	found := false
	for _, c := range info.Capabilities {
		found = found || c == "compact"
	}
	if !found {
		t.Errorf("durable filter does not advertise compact: %+v", info.Capabilities)
	}
}
