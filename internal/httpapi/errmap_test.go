package httpapi

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/engine"
	"evilbloom/internal/service"
)

// TestWriteEngineErrorKindCoverage pins the kind→status table the errmap
// analyzer keeps exhaustive. The KindBusy row is the regression this PR
// fixed: before the exhaustive switch, a KindBusy-classified error only
// got 429 by being a *engine.BusyError — any other spelling fell through
// to 500.
func TestWriteEngineErrorKindCoverage(t *testing.T) {
	busy := &engine.BusyError{Filter: "f", N: 3, RetrySecs: 7}
	cases := []struct {
		name   string
		err    error
		status int
	}{
		{"invalid", &engine.ItemError{Index: -1, Len: 0}, 400},
		{"not_found", service.ErrFilterNotFound, 404},
		{"capability", service.ErrNotRemovable, 405},
		{"conflict", engine.ErrNotInFilter, 409},
		{"busy", busy, 429},
		{"unauthorized", cachedigest.ErrEnvelopeUnauthenticated, 401},
		{"internal", errors.New("disk on fire"), 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			writeEngineError(w, tc.err)
			if w.Code != tc.status {
				t.Errorf("kind %s: got status %d, want %d", tc.name, w.Code, tc.status)
			}
		})
	}
}

// TestWriteEngineErrorBusyRetryAfter pins the busy rendering: 429, the
// Retry-After header, and the engine's message verbatim.
func TestWriteEngineErrorBusyRetryAfter(t *testing.T) {
	busy := &engine.BusyError{Filter: "f", N: 3, RetrySecs: 7}
	w := httptest.NewRecorder()
	writeEngineError(w, busy)
	if w.Code != 429 {
		t.Fatalf("got status %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", got)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding body %q: %v", w.Body.String(), err)
	}
	if body.Error != busy.Error() {
		t.Errorf("body error %q, want the busy message %q", body.Error, busy.Error())
	}
}
