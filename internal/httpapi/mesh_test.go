package httpapi

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/engine"
	"evilbloom/internal/service"
)

// getDigestMesh fetches a digest with arbitrary mesh headers, returning
// body, response headers and status.
func getDigestMesh(t *testing.T, base, name string, hdrs map[string]string) ([]byte, http.Header, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v2/filters/"+name+"/digest", nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header, resp.StatusCode
}

// The regression the delta path must not introduce: 304 is earned by
// If-None-Match ALONE. X-Evilbloom-Digest-Have names the delta base the
// fetcher last ACKed; it must never short-circuit the response — a
// delta-capable peer that happens to "have" the current content but did
// not present If-None-Match gets a 200 (possibly an empty delta), because
// Have is an optimization hint, not a cache validator.
func TestDigestETagAcrossDeltaPath(t *testing.T) {
	ts, reg := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(1), nil)
	f, err := reg.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("first"))

	// Delta-capable first fetch: full frame (nothing to diff against).
	body, hdr, code := getDigestMesh(t, ts.URL, "d", map[string]string{service.HeaderDigestDelta: "1"})
	if code != http.StatusOK || hdr.Get(service.HeaderDigestFrame) != "full" {
		t.Fatalf("first fetch: status %d frame %q, want 200 full", code, hdr.Get(service.HeaderDigestFrame))
	}
	e1 := hdr.Get("ETag")
	if e1 == "" || !bytes.HasPrefix(body, []byte("EVBDIGE1")) {
		t.Fatalf("first fetch: etag %q, magic %q", e1, body[:8])
	}

	// Unchanged filter, matching If-None-Match: 304 wins over everything —
	// the delta capability must not break the short-circuit.
	_, _, code = getDigestMesh(t, ts.URL, "d", map[string]string{
		"If-None-Match":           e1,
		service.HeaderDigestDelta: "1",
		service.HeaderDigestHave:  e1,
	})
	if code != http.StatusNotModified {
		t.Fatalf("unchanged conditional fetch: status %d, want 304", code)
	}

	// Mutate; the ACKed base e1 now earns a delta, not a 304 and not a
	// full envelope.
	f.Store().Add([]byte("second"))
	body, hdr, code = getDigestMesh(t, ts.URL, "d", map[string]string{
		"If-None-Match":           e1,
		service.HeaderDigestDelta: "1",
		service.HeaderDigestHave:  e1,
	})
	if code != http.StatusOK || hdr.Get(service.HeaderDigestFrame) != "delta" {
		t.Fatalf("post-mutation fetch: status %d frame %q, want 200 delta", code, hdr.Get(service.HeaderDigestFrame))
	}
	if !cachedigest.IsDeltaFrame(body) {
		t.Fatal("delta-framed response does not carry the delta magic")
	}
	e2 := hdr.Get("ETag")
	if e2 == "" || e2 == e1 {
		t.Fatalf("delta response etag %q (was %q)", e2, e1)
	}

	// THE regression case: the fetcher holds current content (Have == the
	// server's live ETag) but presents no If-None-Match. Have must not
	// manufacture a 304 — the peer never revalidated, it only named a
	// delta base.
	body, hdr, code = getDigestMesh(t, ts.URL, "d", map[string]string{
		service.HeaderDigestDelta: "1",
		service.HeaderDigestHave:  e2,
	})
	if code != http.StatusNotModified {
		// expected branch: fall through to the 200 assertions below
	} else {
		t.Fatalf("Digest-Have alone earned a 304; only If-None-Match may short-circuit")
	}
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("Have-only fetch: status %d body %d bytes, want 200 non-empty", code, len(body))
	}

	// A Have the server never served as a baseline falls back to a full
	// envelope — never an error, never a bogus delta.
	body, hdr, code = getDigestMesh(t, ts.URL, "d", map[string]string{
		service.HeaderDigestDelta: "1",
		service.HeaderDigestHave:  `"bogus"`,
	})
	if code != http.StatusOK || hdr.Get(service.HeaderDigestFrame) != "full" {
		t.Fatalf("unknown-base fetch: status %d frame %q, want 200 full", code, hdr.Get(service.HeaderDigestFrame))
	}
	if !bytes.HasPrefix(body, []byte("EVBDIGE1")) {
		t.Fatal("unknown-base fallback is not a full envelope")
	}

	// And a delta-incapable fetch still works exactly as before.
	if _, _, code := getDigest(t, ts.URL, "d", ""); code != http.StatusOK {
		t.Fatalf("plain fetch: status %d", code)
	}
}

// pushDigestAs pushes env with an optional mesh credential header.
func pushDigestAs(t *testing.T, base, name, peer, token string, env []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v2/filters/"+name+"/digest?peer="+peer, bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if token != "" {
		req.Header.Set(service.HeaderPeerToken, token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	return resp.StatusCode, string(body)
}

// An authenticated mesh accepts digest pushes only from live roster
// members, sealed by their own credential: anonymous pushes, bad tokens,
// unsealed bodies and revoked credentials all answer 401.
func TestDigestPushAuthentication(t *testing.T) {
	reg := service.NewRegistry()
	eng := engine.New(reg)
	if err := eng.ConfigurePeerAuth([]string{"nodeA:secret-a", "nodeB:secret-b"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewEngineServer(eng))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { reg.Close() }) //nolint:errcheck // teardown

	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(1), nil)
	f, err := reg.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("x"))

	// The digest itself stays public (the §7 threat model's whole point);
	// an unauthenticated GET serves it unsealed.
	env, _, code := getDigest(t, ts.URL, "d", "")
	if code != http.StatusOK {
		t.Fatalf("public digest fetch: status %d", code)
	}
	sealed := cachedigest.Seal(env, []byte("secret-b"))

	cases := []struct {
		name  string
		token string
		body  []byte
		want  int
	}{
		{"anonymous push", "", sealed, http.StatusUnauthorized},
		{"bad secret", "nodeB:wrong", sealed, http.StatusUnauthorized},
		{"unknown principal", "nodeC:secret-b", sealed, http.StatusUnauthorized},
		// An unsealed body on a sealed mesh is indistinguishable from a
		// truncated sealed frame (the MAC trailer is part of the expected
		// length, never sniffed), so it reads as structural damage: 400.
		{"unsealed body", "nodeB:secret-b", env, http.StatusBadRequest},
		{"sealed by someone else", "nodeB:secret-b", cachedigest.Seal(env, []byte("secret-a")), http.StatusUnauthorized},
		{"valid", "nodeB:secret-b", sealed, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := pushDigestAs(t, ts.URL, "d", "nodeB", tc.token, tc.body)
			if code != tc.want {
				t.Fatalf("status %d (%s), want %d", code, body, tc.want)
			}
		})
	}

	// Revocation ejects the pushed digest and closes the door behind it.
	evicted, found := eng.RevokePeerToken("nodeB")
	if !found || evicted != 1 {
		t.Fatalf("revocation: evicted %d found %v, want 1 true", evicted, found)
	}
	if code, body := pushDigestAs(t, ts.URL, "d", "nodeB", "nodeB:secret-b", sealed); code != http.StatusUnauthorized {
		t.Fatalf("post-revocation push: status %d (%s), want 401", code, body)
	}
}
