package httpapi

import (
	"bytes"
	"evilbloom/internal/service"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestV1WireFormatFrozen pins the /v1/* shim to the original single-filter
// server's wire format, byte for byte. The golden strings below were
// captured from the pre-registry server (PR 1) over this exact
// deterministic configuration and request sequence; the shim must keep
// producing them even though it now routes through the registry's default
// filter. If this test breaks, a v1 client broke.
func TestV1WireFormatFrozen(t *testing.T) {
	store, err := service.NewSharded(service.Config{
		Shards:    4,
		Capacity:  20000,
		TargetFPR: 1.0 / 1024,
		Mode:      service.ModeNaive,
		Seed:      3,
		Key:       []byte("0123456789abcdef"),
		RouteKey:  []byte("fedcba9876543210"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store))
	t.Cleanup(ts.Close)

	// The steps run in order: the counters in later goldens depend on the
	// earlier insertions.
	steps := []struct {
		method, path, body string
		wantStatus         int
		wantBody           string
	}{
		{"POST", "/v1/add", `{"item":"http://a.example/1"}`, 200,
			"{\"added\":1,\"count\":1}\n"},
		{"POST", "/v1/test", `{"item":"http://a.example/1"}`, 200,
			"{\"present\":true}\n"},
		{"POST", "/v1/test", `{"item":"http://a.example/ghost"}`, 200,
			"{\"present\":false}\n"},
		{"POST", "/v1/add-batch", `{"items":["http://a.example/2","http://a.example/3"]}`, 200,
			"{\"added\":2,\"count\":3}\n"},
		{"POST", "/v1/test-batch", `{"items":["http://a.example/1","http://a.example/nope"]}`, 200,
			"{\"present\":[true,false]}\n"},
		{"POST", "/v1/add", `{"item":""}`, 400,
			"{\"error\":\"empty item\"}\n"},
		{"GET", "/v1/info", "", 200,
			"{\"mode\":\"naive\",\"shards\":4,\"k\":10,\"shard_bits\":72135,\"algorithm\":\"murmur3-double-hashing\",\"seed\":3}\n"},
		{"GET", "/v1/stats", "", 200,
			"{\"mode\":\"naive\",\"shards\":4,\"k\":10,\"shard_bits\":72135,\"count\":3,\"weight\":30," +
				"\"fill\":0.0001039717196922437,\"estimated_fpr\":1.966078717724468e-39,\"per_shard\":[" +
				"{\"shard\":0,\"count\":0,\"weight\":0,\"fill\":0,\"estimated_fpr\":0}," +
				"{\"shard\":1,\"count\":1,\"weight\":10,\"fill\":0.0001386289595896583,\"estimated_fpr\":2.6214382902992907e-39}," +
				"{\"shard\":2,\"count\":1,\"weight\":10,\"fill\":0.0001386289595896583,\"estimated_fpr\":2.6214382902992907e-39}," +
				"{\"shard\":3,\"count\":1,\"weight\":10,\"fill\":0.0001386289595896583,\"estimated_fpr\":2.6214382902992907e-39}]}\n"},
	}
	for _, st := range steps {
		var resp *http.Response
		var err error
		switch st.method {
		case "POST":
			resp, err = http.Post(ts.URL+st.path, "application/json", bytes.NewReader([]byte(st.body)))
		case "GET":
			resp, err = http.Get(ts.URL + st.path)
		}
		if err != nil {
			t.Fatalf("%s %s: %v", st.method, st.path, err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s %s: reading body: %v", st.method, st.path, err)
		}
		if resp.StatusCode != st.wantStatus {
			t.Errorf("%s %s: status %d, want %d", st.method, st.path, resp.StatusCode, st.wantStatus)
		}
		if string(got) != st.wantBody {
			t.Errorf("%s %s: wire drift from the v1 format\n got: %q\nwant: %q", st.method, st.path, got, st.wantBody)
		}
	}
}
