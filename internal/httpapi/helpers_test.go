package httpapi

import "evilbloom/internal/service"

// testConfig returns a small deterministic store config.
func testConfig(mode service.Mode, shards int) service.Config {
	return service.Config{
		Shards:    shards,
		Capacity:  20000,
		TargetFPR: 1.0 / 1024,
		Mode:      mode,
		Seed:      3,
		Key:       []byte("0123456789abcdef"),
		RouteKey:  []byte("fedcba9876543210"),
	}
}
