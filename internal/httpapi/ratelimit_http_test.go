package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"evilbloom/internal/service"
)

// manualClock pins a limiter to a settable instant so token arithmetic is
// exact in tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Unix(1_000_000, 0)}
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// rateTestServer boots a registry server with a frozen-clock rate limit.
func rateTestServer(t *testing.T, cfg service.RateLimitConfig) (*httptest.Server, *service.Registry, *manualClock) {
	t.Helper()
	reg := service.NewRegistry()
	clock := newManualClock()
	reg.Limiter().SetNow(clock.now)
	if err := reg.ConfigureRateLimit(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { reg.Close() }) //nolint:errcheck // memory-only
	return ts, reg, clock
}

// postJSON posts raw JSON and returns status plus the Retry-After header.
func postRaw(t *testing.T, url, body string) (int, string, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, resp.Header.Get("Retry-After"), string(buf[:n])
}

// Every mutation endpoint charges the client's per-filter budget — batches
// per item — reads stay free, exhaustion answers 429 with an exact
// Retry-After, and both the stats aggregate and the clients table attribute
// the outcome. The clock is frozen, so the arithmetic is deterministic.
func TestMutationEndpointsChargePerItem(t *testing.T) {
	ts, _, _ := rateTestServer(t, service.RateLimitConfig{MutationsPerSec: 0.25, Burst: 10})
	spec := `{"variant":"counting","shards":1,"shard_bits":256,"hash_count":4,"seed":3}`
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/filters/f", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	base := ts.URL + "/v2/filters/f"

	if code, _, body := postRaw(t, base+"/add", `{"item":"a"}`); code != http.StatusOK {
		t.Fatalf("add: %d %s", code, body) // 9 tokens left
	}
	if code, _, _ := postRaw(t, base+"/add-batch", `{"items":["b","c","d","e"]}`); code != http.StatusOK {
		t.Fatal("add-batch within budget refused") // 5 left
	}
	// Reads are free: they do not drain the bucket however many run.
	for i := 0; i < 50; i++ {
		if code, _, _ := postRaw(t, base+"/test", `{"item":"a"}`); code != http.StatusOK {
			t.Fatal("test charged the mutation budget")
		}
	}
	if code, _, _ := postRaw(t, base+"/test-batch", `{"items":["a","b"]}`); code != http.StatusOK {
		t.Fatal("test-batch charged the mutation budget")
	}
	if code, _, _ := postRaw(t, base+"/remove", `{"item":"a"}`); code != http.StatusOK {
		t.Fatal("remove within budget refused") // 4 left
	}
	// A refused removal (409) still spent its charge: the attempt was a
	// mutation request, and §4.3 probing is exactly what gets accounted.
	if code, _, _ := postRaw(t, base+"/remove", `{"item":"never-inserted-xyz"}`); code != http.StatusConflict {
		t.Fatal("removal of absent item not refused") // 3 left
	}
	code, retry, body := postRaw(t, base+"/add-batch", `{"items":["f","g","h","i","j"]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("5-item batch on 3 tokens: %d %s", code, body)
	}
	// Deficit 2 at 0.25/s = 8s, exactly.
	if retry != "8" {
		t.Errorf("Retry-After %q, want 8", retry)
	}
	for i := 0; i < 3; i++ {
		if code, _, _ := postRaw(t, base+"/add", fmt.Sprintf(`{"item":"k%d"}`, i)); code != http.StatusOK {
			t.Fatal("remaining budget refused") // 0 left
		}
	}
	if code, retry, _ = postRaw(t, base+"/add", `{"item":"z"}`); code != http.StatusTooManyRequests || retry != "4" {
		t.Fatalf("spent bucket: status %d Retry-After %q, want 429/4", code, retry)
	}
	// Malformed requests cost nothing and never earn 429.
	if code, _, _ := postRaw(t, base+"/add", `{"item":""}`); code != http.StatusBadRequest {
		t.Error("empty item not rejected as 400")
	}

	// A digest push is a routing-state mutation: with the bucket empty it
	// answers 429 too.
	env, _, _ := getDigest(t, ts.URL, "f", "")
	resp, err = http.Post(base+"/digest?peer=sib", "application/octet-stream", strings.NewReader(string(env)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("digest push on spent bucket: status %d, want 429", resp.StatusCode)
	}

	// Stats carry the aggregate; the clients endpoint attributes it.
	var stats struct {
		RateLimit service.RateLimitStats `json:"rate_limit"`
	}
	doJSON(t, "GET", base+"/stats", nil, &stats)
	if !stats.RateLimit.Enabled || stats.RateLimit.AllowedMutations != 10 {
		t.Errorf("stats rate_limit: %+v (want enabled, 10 allowed)", stats.RateLimit)
	}
	if stats.RateLimit.ThrottledMutations != 7 { // 5-batch + 1 add + 1 push
		t.Errorf("stats throttled %d, want 7", stats.RateLimit.ThrottledMutations)
	}
	var clients service.ClientsReport
	doJSON(t, "GET", base+"/clients", nil, &clients)
	if len(clients.Clients) != 1 {
		t.Fatalf("clients table: %+v", clients)
	}
	cs := clients.Clients[0]
	if cs.Client != "127.0.0.1" || cs.Allowed != 10 || cs.Throttled != 7 {
		t.Errorf("attribution: %+v, want 127.0.0.1 with 10 allowed / 7 throttled", cs)
	}
}

// The /v1 shim's mutations charge the default filter's budgets — the
// legacy surface is not a side door around rate limiting — and both API
// generations spend from the same bucket.
func TestV1ShimSharesDefaultBudget(t *testing.T) {
	store, err := service.NewSharded(service.Config{Shards: 1, ShardBits: 256, HashCount: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	clock := newManualClock()
	srv.Registry().Limiter().SetNow(clock.now)
	if err := srv.Registry().ConfigureRateLimit(service.RateLimitConfig{MutationsPerSec: 0.5, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if code, _, _ := postRaw(t, ts.URL+"/v1/add", `{"item":"a"}`); code != http.StatusOK {
		t.Fatal("v1 add within budget refused")
	}
	if code, _, _ := postRaw(t, ts.URL+"/v2/filters/default/add", `{"item":"b"}`); code != http.StatusOK {
		t.Fatal("v2 default add within budget refused")
	}
	code, retry, _ := postRaw(t, ts.URL+"/v1/add", `{"item":"c"}`)
	if code != http.StatusTooManyRequests || retry != "2" {
		t.Fatalf("v1 add on a bucket spent across generations: %d retry %q, want 429/2", code, retry)
	}
	// Reads on the shim stay free.
	if code, _, _ := postRaw(t, ts.URL+"/v1/test", `{"item":"a"}`); code != http.StatusOK {
		t.Error("v1 test charged")
	}
	var clients service.ClientsReport
	doJSON(t, "GET", ts.URL+"/v2/filters/default/clients", nil, &clients)
	if len(clients.Clients) != 1 || clients.Clients[0].Allowed != 2 || clients.Clients[0].Throttled != 1 {
		t.Errorf("cross-generation attribution: %+v", clients.Clients)
	}
}

// End to end: a -trust-proxy server separates header-claimed identities
// into distinct buckets and attributes them by name.
func TestTrustProxyIdentityHTTP(t *testing.T) {
	ts, _, _ := rateTestServer(t, service.RateLimitConfig{MutationsPerSec: 0.25, Burst: 2, TrustProxy: true})
	doJSON(t, "PUT", ts.URL+"/v2/filters/f", naiveSpec(1), nil)
	add := func(identity, item string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/filters/f/add",
			strings.NewReader(fmt.Sprintf(`{"item":%q}`, item)))
		if err != nil {
			t.Fatal(err)
		}
		if identity != "" {
			req.Header.Set(service.ClientIdentityHeader, identity)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 2; i++ {
		if code := add("mallory", fmt.Sprintf("m%d", i)); code != http.StatusOK {
			t.Fatal("mallory's burst refused")
		}
	}
	if code := add("mallory", "m2"); code != http.StatusTooManyRequests {
		t.Error("mallory's third add not throttled")
	}
	// A different claimed identity — and the bare transport address — still
	// have their own budgets.
	if code := add("alice", "a0"); code != http.StatusOK {
		t.Error("alice throttled by mallory's spending")
	}
	if code := add("", "r0"); code != http.StatusOK {
		t.Error("transport-identity client throttled by header identities")
	}
	var clients service.ClientsReport
	doJSON(t, "GET", ts.URL+"/v2/filters/f/clients", nil, &clients)
	if len(clients.Clients) != 3 {
		t.Fatalf("identities tracked: %+v", clients.Clients)
	}
	// Most-throttled first: the offender tops the table.
	if clients.Clients[0].Client != "mallory" || clients.Clients[0].Throttled != 1 {
		t.Errorf("offender not named first: %+v", clients.Clients)
	}
}

// Deleting a filter discards its accounting; a successor filter under the
// same name starts clean, and a mutation racing the delete cannot
// resurrect the dropped table.
func TestLimiterDroppedOnDelete(t *testing.T) {
	ts, reg, _ := rateTestServer(t, service.RateLimitConfig{MutationsPerSec: 1000, Burst: 1000})
	doJSON(t, "PUT", ts.URL+"/v2/filters/f", naiveSpec(1), nil)
	postRaw(t, ts.URL+"/v2/filters/f/add", `{"item":"a"}`)
	if st := reg.Limiter().FilterStats("f"); st.AllowedMutations != 1 {
		t.Fatalf("pre-delete accounting: %+v", st)
	}
	if err := reg.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if st := reg.Limiter().FilterStats("f"); st.AllowedMutations != 0 {
		t.Errorf("accounting survived filter deletion: %+v", st)
	}
	// An in-flight charge landing after the drop (a request that resolved
	// the filter before Delete) is allowed without recording — it must not
	// re-create the table and leak ghost counts into a successor filter.
	if ok, _ := reg.Limiter().Allow("f", "straggler", 1); !ok {
		t.Error("straggler mutation on a deleted filter throttled")
	}
	if st := reg.Limiter().FilterStats("f"); st.AllowedMutations != 0 || st.Clients != 0 {
		t.Errorf("straggler resurrected the dropped table: %+v", st)
	}
	// A successor filter of the same name starts with a fresh table.
	doJSON(t, "PUT", ts.URL+"/v2/filters/f", naiveSpec(1), nil)
	postRaw(t, ts.URL+"/v2/filters/f/add", `{"item":"b"}`)
	if st := reg.Limiter().FilterStats("f"); st.AllowedMutations != 1 {
		t.Errorf("successor filter inherited stale accounting: %+v", st)
	}
}

// A rejected digest push must not cost the pusher budget: the charge is
// taken before the envelope can be parsed, so failures refund it — the
// "malformed requests cost nothing" rule, restored after the fact.
func TestDigestPushRefundsOnFailure(t *testing.T) {
	ts, _, _ := rateTestServer(t, service.RateLimitConfig{MutationsPerSec: 0.25, Burst: 2})
	doJSON(t, "PUT", ts.URL+"/v2/filters/f", naiveSpec(1), nil)
	base := ts.URL + "/v2/filters/f"
	// Two corrupt pushes against a burst of 2: each answers 400 and hands
	// its charge back.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/digest?peer=sib", "application/octet-stream", strings.NewReader("garbage"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("corrupt push: status %d, want 400", resp.StatusCode)
		}
	}
	// The full burst is still available for real mutations.
	for i := 0; i < 2; i++ {
		if code, _, _ := postRaw(t, base+"/add", fmt.Sprintf(`{"item":"a%d"}`, i)); code != http.StatusOK {
			t.Fatalf("add %d refused: corrupt pushes consumed the budget", i)
		}
	}
	var clients service.ClientsReport
	doJSON(t, "GET", base+"/clients", nil, &clients)
	if len(clients.Clients) != 1 || clients.Clients[0].Allowed != 2 {
		t.Errorf("refund accounting: %+v (want 2 allowed — the failed pushes refunded)", clients.Clients)
	}
}
