package httpapi

import (
	"bytes"
	"encoding/json"
	"evilbloom/internal/service"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newRegistryTestServer spins up an empty multi-filter server.
func newRegistryTestServer(t *testing.T) (*httptest.Server, *service.Registry) {
	t.Helper()
	reg := service.NewRegistry()
	ts := httptest.NewServer(NewRegistryServer(reg))
	t.Cleanup(ts.Close)
	return ts, reg
}

// doJSON issues method path with body and decodes the response into out.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestV2FilterLifecycle(t *testing.T) {
	ts, reg := newRegistryTestServer(t)

	// Create a counting filter.
	var created FilterInfo
	code := doJSON(t, "PUT", ts.URL+"/v2/filters/blocklist",
		FilterSpec{Variant: "counting", Mode: "naive", Shards: 2, ShardBits: 3200, HashCount: 4, Seed: 9}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if created.Name != "blocklist" || created.Variant != "counting" || created.CounterWidth != 4 ||
		created.Overflow != "wrap" || created.Seed == nil || *created.Seed != 9 {
		t.Errorf("created info %+v", created)
	}
	if reg.Len() != 1 {
		t.Errorf("registry holds %d filters", reg.Len())
	}

	// Re-creating the name conflicts.
	if code := doJSON(t, "PUT", ts.URL+"/v2/filters/blocklist", FilterSpec{}, nil); code != http.StatusConflict {
		t.Errorf("duplicate create status %d, want 409", code)
	}

	// A second, hardened bloom filter; list returns both, sorted.
	if code := doJSON(t, "PUT", ts.URL+"/v2/filters/seen", FilterSpec{Mode: "hardened"}, nil); code != http.StatusCreated {
		t.Fatalf("second create status %d", code)
	}
	var list listResponse
	if code := doJSON(t, "GET", ts.URL+"/v2/filters", nil, &list); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if len(list.Filters) != 2 || list.Filters[0].Name != "blocklist" || list.Filters[1].Name != "seen" {
		t.Errorf("list %+v", list)
	}
	if list.Filters[1].Seed != nil {
		t.Errorf("hardened filter leaks a seed in the listing: %+v", list.Filters[1])
	}

	// Get one filter; info op answers the same document.
	var byName, byOp FilterInfo
	doJSON(t, "GET", ts.URL+"/v2/filters/blocklist", nil, &byName)
	doJSON(t, "GET", ts.URL+"/v2/filters/blocklist/info", nil, &byOp)
	a, _ := json.Marshal(byName)
	b, _ := json.Marshal(byOp)
	if !bytes.Equal(a, b) {
		t.Errorf("GET filter %s != GET filter/info %s", a, b)
	}

	// Delete; the name becomes free, operations on it 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/filters/blocklist", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if code := doJSON(t, "POST", ts.URL+"/v2/filters/blocklist/add", itemRequest{Item: "x"}, nil); code != http.StatusNotFound {
		t.Errorf("op on deleted filter status %d, want 404", code)
	}
	if code := doJSON(t, "PUT", ts.URL+"/v2/filters/blocklist", FilterSpec{}, nil); code != http.StatusCreated {
		t.Errorf("re-create after delete status %d, want 201", code)
	}
}

func TestV2ItemOpsAndCapabilities(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/counts",
		FilterSpec{Variant: "counting", Shards: 1, ShardBits: 4096, HashCount: 4, Overflow: "saturate", CounterWidth: 8}, nil)
	doJSON(t, "PUT", ts.URL+"/v2/filters/plain", FilterSpec{Shards: 1, ShardBits: 4096, HashCount: 4}, nil)

	base := ts.URL + "/v2/filters/counts"
	var add addResponse
	if code := doJSON(t, "POST", base+"/add", itemRequest{Item: "a"}, &add); code != 200 || add.Count != 1 {
		t.Fatalf("add: code %d resp %+v", code, add)
	}
	var tr testResponse
	doJSON(t, "POST", base+"/test", itemRequest{Item: "a"}, &tr)
	if !tr.Present {
		t.Error("inserted item absent")
	}

	// Remove round trip: present → removed; absent → 409; test now false.
	var rm removeResponse
	if code := doJSON(t, "POST", base+"/remove", itemRequest{Item: "a"}, &rm); code != 200 || rm.Removed != 1 || rm.Count != 0 {
		t.Fatalf("remove: code %d resp %+v", code, rm)
	}
	var er errorResponse
	if code := doJSON(t, "POST", base+"/remove", itemRequest{Item: "a"}, &er); code != http.StatusConflict {
		t.Errorf("second remove: code %d (%+v), want 409", code, er)
	}
	doJSON(t, "POST", base+"/test", itemRequest{Item: "a"}, &tr)
	if tr.Present {
		t.Error("removed item still present")
	}

	// Batch remove with per-item outcomes.
	doJSON(t, "POST", base+"/add-batch", batchRequest{Items: []string{"a", "b"}}, nil)
	var rb removeBatchResponse
	if code := doJSON(t, "POST", base+"/remove-batch", batchRequest{Items: []string{"a", "zzz-absent"}}, &rb); code != 200 {
		t.Fatalf("remove-batch status %d", code)
	}
	if len(rb.Removed) != 2 || !rb.Removed[0] || rb.Removed[1] {
		t.Errorf("remove-batch outcomes %v, want [true false]", rb.Removed)
	}

	// Stats carry the variant and counting parameters.
	var st service.Stats
	doJSON(t, "GET", base+"/stats", nil, &st)
	if st.Variant != "counting" || st.Count != 1 {
		t.Errorf("stats %+v", st)
	}

	// The bloom filter answers removes with a 405 capability error.
	for _, op := range []string{"/remove", "/remove-batch"} {
		var er errorResponse
		body := any(itemRequest{Item: "a"})
		if op == "/remove-batch" {
			body = batchRequest{Items: []string{"a"}}
		}
		code := doJSON(t, "POST", ts.URL+"/v2/filters/plain"+op, body, &er)
		if code != http.StatusMethodNotAllowed {
			t.Errorf("%s on bloom: status %d, want 405", op, code)
		}
		if !strings.Contains(er.Error, "variant=counting") {
			t.Errorf("%s capability error %q does not name the fix", op, er.Error)
		}
	}
}

func TestV2Validation(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	cases := []struct {
		name string
		do   func() int
		want int
	}{
		{"bad variant", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{Variant: "cuckoo"}, nil)
		}, 400},
		{"bad mode", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{Mode: "evil"}, nil)
		}, 400},
		{"bad overflow", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{Variant: "counting", Overflow: "explode"}, nil)
		}, 400},
		{"counter width on bloom", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{CounterWidth: 4}, nil)
		}, 400},
		{"seed on hardened", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{Mode: "hardened", Seed: 7}, nil)
		}, 400},
		{"oversized geometry", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{Shards: 1, ShardBits: service.MaxFilterBits + 1, HashCount: 4}, nil)
		}, 400},
		{"geometry whose bit product wraps mod 2^64", func() int {
			// 8 × 2^61 wraps to 0: must be rejected, not allocated.
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{Shards: 8, ShardBits: 1 << 61, HashCount: 4}, nil)
		}, 400},
		{"shard count beyond service.MaxShards", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", FilterSpec{Shards: service.MaxShards * 2, ShardBits: 64, HashCount: 2}, nil)
		}, 400},
		{"bad name", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/.hidden", FilterSpec{}, nil)
		}, 400},
		{"unknown spec field", func() int {
			return doJSON(t, "PUT", ts.URL+"/v2/filters/x", map[string]any{"key": "deadbeef"}, nil)
		}, 400},
		{"unknown filter op", func() int {
			doJSON(t, "PUT", ts.URL+"/v2/filters/ok", FilterSpec{}, nil)
			return doJSON(t, "POST", ts.URL+"/v2/filters/ok/explode", itemRequest{Item: "x"}, nil)
		}, 404},
		{"op on unknown filter", func() int {
			return doJSON(t, "POST", ts.URL+"/v2/filters/ghost/add", itemRequest{Item: "x"}, nil)
		}, 404},
		{"get unknown filter", func() int {
			return doJSON(t, "GET", ts.URL+"/v2/filters/ghost", nil, nil)
		}, 404},
		{"delete unknown filter", func() int {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/filters/ghost", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode
		}, 404},
		{"post on list", func() int {
			return doJSON(t, "POST", ts.URL+"/v2/filters", FilterSpec{}, nil)
		}, 405},
		{"post on v2 stats", func() int {
			return doJSON(t, "POST", ts.URL+"/v2/filters/ok/stats", itemRequest{Item: "x"}, nil)
		}, 405},
	}
	for _, tc := range cases {
		if got := tc.do(); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}

// The v1 shim routes to the registry's default filter and 404s when no
// default exists.
func TestV1ShimRequiresDefault(t *testing.T) {
	ts, reg := newRegistryTestServer(t)
	if code := doJSON(t, "POST", ts.URL+"/v1/add", itemRequest{Item: "x"}, nil); code != http.StatusNotFound {
		t.Errorf("v1 without default: status %d, want 404", code)
	}
	if _, err := reg.Create(service.DefaultFilterName, service.Config{Shards: 1, ShardBits: 4096, HashCount: 4}); err != nil {
		t.Fatal(err)
	}
	var add addResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/add", itemRequest{Item: "x"}, &add); code != 200 || add.Count != 1 {
		t.Errorf("v1 with default: code %d resp %+v", code, add)
	}
	// The same filter is reachable under its v2 name.
	var tr testResponse
	doJSON(t, "POST", ts.URL+"/v2/filters/default/test", itemRequest{Item: "x"}, &tr)
	if !tr.Present {
		t.Error("v1 insertion invisible through v2")
	}
}

// Snapshots export every shard's state and reflect the occupancy.
func TestV2Snapshot(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/snap",
		FilterSpec{Variant: "counting", Shards: 2, ShardBits: 1024, HashCount: 4}, nil)
	fetch := func() []byte {
		resp, err := http.Get(ts.URL + "/v2/filters/snap/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("snapshot status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
			t.Fatalf("snapshot content type %q", ct)
		}
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	empty := fetch()
	// The export travels in the versioned, checksummed envelope: magic,
	// geometry header, CRC — round-tripping it through create-from-snapshot
	// validates all three and proves the geometry survived.
	rt := service.NewRegistry()
	f, err := rt.CreateFromSnapshot("rt", bytes.NewReader(empty))
	if err != nil {
		t.Fatalf("snapshot envelope does not restore: %v", err)
	}
	if st := f.Store(); st.Shards() != 2 || st.ShardBits() != 1024 || st.K() != 4 || st.Variant() != service.VariantCounting {
		t.Errorf("restored %d×%d k=%d %v, want 2×1024 k=4 counting",
			st.Shards(), st.ShardBits(), st.K(), st.Variant())
	}
	doJSON(t, "POST", ts.URL+"/v2/filters/snap/add", itemRequest{Item: "x"}, nil)
	after := fetch()
	if len(after) != len(empty) {
		t.Errorf("snapshot size changed %d -> %d; geometry is fixed", len(empty), len(after))
	}
	if bytes.Equal(empty, after) {
		t.Error("snapshot unchanged by an insertion")
	}
	if _, err := rt.CreateFromSnapshot("rt2", bytes.NewReader(after)); err != nil {
		t.Fatalf("post-insertion envelope does not restore: %v", err)
	}
	// Corrupting any byte must be detected by the checksum.
	after[len(after)/2] ^= 0xff
	if _, err := rt.CreateFromSnapshot("rt3", bytes.NewReader(after)); err == nil {
		t.Error("corrupted envelope restored cleanly")
	}
}
