// Package httpapi is the HTTP/JSON codec over the command engine: it
// decodes requests into engine commands, renders typed results as the
// frozen v1/v2 wire shapes, and maps engine error kinds to status codes.
// No validation, identity resolution, rate-limit charge or store access
// happens here — that is the engine's pipeline, shared with the RESP
// plane, so the two surfaces cannot drift apart.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/core"
	"evilbloom/internal/engine"
	"evilbloom/internal/service"
)

// ---------------------------------------------------------------------------
// Wire structs. The v1 shapes are frozen — /v1/* promises byte-identical
// responses to the original single-filter API, so these structs must not
// grow fields. /v2 has its own shapes below.

// itemRequest is the body of the add, test and remove item endpoints.
type itemRequest struct {
	Item string `json:"item"`
}

// batchRequest is the body of the batch endpoints.
type batchRequest struct {
	Items []string `json:"items"`
}

// addResponse answers add and add-batch.
type addResponse struct {
	Added int    `json:"added"`
	Count uint64 `json:"count"`
}

// testResponse answers test.
type testResponse struct {
	Present bool `json:"present"`
}

// testBatchResponse answers test-batch, Present in input order.
type testBatchResponse struct {
	Present []bool `json:"present"`
}

// removeResponse answers /v2/.../remove (no v1 equivalent).
type removeResponse struct {
	Removed int    `json:"removed"`
	Count   uint64 `json:"count"`
}

// removeBatchResponse answers /v2/.../remove-batch, Removed in input order
// (false marks items the filter believed absent and refused to remove).
type removeBatchResponse struct {
	Removed []bool `json:"removed"`
	Count   uint64 `json:"count"`
}

// compactResponse answers /v2/.../compact with the new snapshot generation.
type compactResponse struct {
	Compacted  bool   `json:"compacted"`
	Generation uint64 `json:"generation"`
}

// RouteResponse answers /v2/.../route: the §7 routing decision for one item
// — serve locally, probe a sibling whose digest claims it, or go to the
// origin. A probe sent because of a polluted or merely unlucky digest is
// the wasted round trip the paper's attack inflates.
type RouteResponse struct {
	// Local reports whether this node's own filter claims the item.
	Local bool `json:"local"`
	// Verdict is "local", "peer" or "origin".
	Verdict string `json:"verdict"`
	// Peer names the first claiming sibling when Verdict is "peer".
	Peer string `json:"peer,omitempty"`
	// Peers holds every sibling's individual answer, in peer order.
	Peers []service.PeerClaim `json:"peers"`
	// Claiming is how many siblings claim the item; Quorum is how many it
	// takes for a "peer" verdict (-route-quorum, default 1).
	Claiming int `json:"claiming"`
	Quorum   int `json:"quorum"`
}

// peersResponse answers GET /v2/.../peers and POST /v2/.../peers/refresh.
type peersResponse struct {
	Peers []service.PeerStatus `json:"peers"`
}

// digestPushResponse answers POST /v2/.../digest with the stored peer entry.
type digestPushResponse struct {
	Imported bool               `json:"imported"`
	Peer     service.PeerStatus `json:"peer"`
}

// peerTokenRevokeResponse answers DELETE /v2/peer-tokens/{name}.
type peerTokenRevokeResponse struct {
	Revoked        string `json:"revoked"`
	DigestsEvicted int    `json:"digests_evicted"`
}

// InfoResponse answers /v1/info: the public parameters of the serving
// filter. In naive mode that includes the index seed — the paper's threat
// model ("the implementation of the Bloom filter is public and known") made
// concrete. In hardened mode Seed is omitted and Algorithm names the keyed
// scheme; the keys themselves never leave the server. Frozen v1 shape; the
// v2 equivalent is FilterInfo.
type InfoResponse struct {
	Mode      string  `json:"mode"`
	Shards    int     `json:"shards"`
	K         int     `json:"k"`
	ShardBits uint64  `json:"shard_bits"`
	Algorithm string  `json:"algorithm"`
	Seed      *uint64 `json:"seed,omitempty"`
}

// statsV1 and shardStatsV1 freeze the /v1/stats wire shape (no variant or
// overflow fields, which post-date v1).
type statsV1 struct {
	Mode      string         `json:"mode"`
	Shards    int            `json:"shards"`
	K         int            `json:"k"`
	ShardBits uint64         `json:"shard_bits"`
	Count     uint64         `json:"count"`
	Weight    uint64         `json:"weight"`
	Fill      float64        `json:"fill"`
	FPR       float64        `json:"estimated_fpr"`
	PerShard  []shardStatsV1 `json:"per_shard"`
}

type shardStatsV1 struct {
	Shard  int     `json:"shard"`
	Count  uint64  `json:"count"`
	Weight uint64  `json:"weight"`
	Fill   float64 `json:"fill"`
	FPR    float64 `json:"estimated_fpr"`
}

// statsToV1 projects a Stats snapshot onto the frozen v1 shape.
func statsToV1(st service.Stats) statsV1 {
	out := statsV1{
		Mode:      st.Mode,
		Shards:    st.Shards,
		K:         st.K,
		ShardBits: st.ShardBits,
		Count:     st.Count,
		Weight:    st.Weight,
		Fill:      st.Fill,
		FPR:       st.FPR,
		PerShard:  make([]shardStatsV1, len(st.PerShard)),
	}
	for i, ss := range st.PerShard {
		out.PerShard[i] = shardStatsV1{
			Shard: ss.Shard, Count: ss.Count, Weight: ss.Weight, Fill: ss.Fill, FPR: ss.FPR,
		}
	}
	return out
}

// FilterSpec is the body of PUT /v2/filters/{name}: the per-filter
// configuration, all fields optional (zero values take the Config defaults).
// Index and routing keys are deliberately absent — secrets never cross the
// wire; hardened filters draw fresh random keys server-side.
type FilterSpec struct {
	Variant      string  `json:"variant,omitempty"`
	Mode         string  `json:"mode,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	Capacity     uint64  `json:"capacity,omitempty"`
	TargetFPR    float64 `json:"target_fpr,omitempty"`
	ShardBits    uint64  `json:"shard_bits,omitempty"`
	HashCount    int     `json:"hash_count,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	CounterWidth int     `json:"counter_width,omitempty"`
	Overflow     string  `json:"overflow,omitempty"`
}

// Config resolves the wire spec into a service Config.
func (sp FilterSpec) Config() (service.Config, error) {
	variant, err := service.ParseVariant(sp.Variant)
	if err != nil {
		return service.Config{}, err
	}
	mode, err := service.ParseMode(sp.Mode)
	if err != nil {
		return service.Config{}, err
	}
	overflow, err := core.ParseOverflowPolicy(sp.Overflow)
	if err != nil {
		return service.Config{}, err
	}
	// Like the serve flags, contradictory fields are an error, not
	// something to silently ignore: a client pinning a seed on a hardened
	// filter would otherwise get random server-side keys and no hint that
	// its seed was discarded. (Counting fields on a bloom variant are
	// rejected by the Config validation itself.)
	if mode == service.ModeHardened && sp.Seed != 0 {
		return service.Config{}, fmt.Errorf("service: seed is meaningless for a hardened filter: the keyed family has no public seed")
	}
	return service.Config{
		Variant:      variant,
		Shards:       sp.Shards,
		Capacity:     sp.Capacity,
		TargetFPR:    sp.TargetFPR,
		ShardBits:    sp.ShardBits,
		HashCount:    sp.HashCount,
		Mode:         mode,
		Seed:         sp.Seed,
		CounterWidth: sp.CounterWidth,
		Overflow:     overflow,
	}, nil
}

// FilterInfo answers GET /v2/filters/{name} (and .../info): one filter's
// public parameters plus its capability set, so a client can discover
// whether remove or snapshot will be accepted before trying. Naive filters
// publish their seed (the threat model's public implementation); hardened
// filters do not.
type FilterInfo struct {
	Name         string   `json:"name"`
	Variant      string   `json:"variant"`
	Mode         string   `json:"mode"`
	Shards       int      `json:"shards"`
	K            int      `json:"k"`
	ShardBits    uint64   `json:"shard_bits"`
	Algorithm    string   `json:"algorithm"`
	Seed         *uint64  `json:"seed,omitempty"`
	CounterWidth int      `json:"counter_width,omitempty"`
	Overflow     string   `json:"overflow,omitempty"`
	Capabilities []string `json:"capabilities"`
}

// listResponse answers GET /v2/filters.
type listResponse struct {
	Filters []FilterInfo `json:"filters"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// filterInfo renders an engine description as the v2 wire shape.
func filterInfo(d engine.FilterDescription) FilterInfo {
	return FilterInfo{
		Name:         d.Name,
		Variant:      d.Variant,
		Mode:         d.Mode,
		Shards:       d.Shards,
		K:            d.K,
		ShardBits:    d.ShardBits,
		Algorithm:    d.Algorithm,
		Seed:         d.Seed,
		CounterWidth: d.CounterWidth,
		Overflow:     d.Overflow,
		Capabilities: d.Capabilities,
	}
}

// ---------------------------------------------------------------------------
// Server.

// Server exposes the command engine over HTTP/JSON.
//
// The versioned v2 surface manages named filters and routes item traffic to
// them:
//
//	PUT    /v2/filters/{name}              FilterSpec -> FilterInfo (201); with
//	                                       Content-Type: application/octet-stream the
//	                                       body is a snapshot envelope instead and the
//	                                       filter is created from it (naive snapshots
//	                                       only; mismatches answer 409)
//	GET    /v2/filters/{name}              -> FilterInfo
//	DELETE /v2/filters/{name}              -> 204 (also deletes the durable directory)
//	GET    /v2/filters                     -> {"filters": [FilterInfo...]}
//	POST   /v2/filters/{name}/add          {"item": s}       -> {"added": 1, "count": n}
//	POST   /v2/filters/{name}/test         {"item": s}       -> {"present": bool}
//	POST   /v2/filters/{name}/add-batch    {"items": [s...]} -> {"added": len, "count": n}
//	POST   /v2/filters/{name}/test-batch   {"items": [s...]} -> {"present": [bool...]}
//	POST   /v2/filters/{name}/remove       {"item": s}       -> {"removed": 1, "count": n}
//	POST   /v2/filters/{name}/remove-batch {"items": [s...]} -> {"removed": [bool...], "count": n}
//	GET    /v2/filters/{name}/stats        -> Stats
//	GET    /v2/filters/{name}/info         -> FilterInfo
//	GET    /v2/filters/{name}/snapshot     -> versioned, checksummed snapshot envelope
//	POST   /v2/filters/{name}/compact      -> {"compacted": true, "generation": g}
//	GET    /v2/filters/{name}/digest       -> cache-digest envelope (ETag = generation;
//	                                          If-None-Match short-circuits to 304)
//	POST   /v2/filters/{name}/digest?peer=p   push-import a sibling's digest envelope
//	POST   /v2/filters/{name}/route        {"item": s} -> RouteResponse
//	GET    /v2/filters/{name}/peers        -> {"peers": [PeerStatus...]}
//	POST   /v2/filters/{name}/peers/refresh   fetch every configured peer now
//	GET    /v2/filters/{name}/clients      -> ClientsReport (per-client mutation accounting)
//
// Every mutation (add, add-batch, remove, remove-batch, digest push) is
// charged to the requesting principal's per-filter budget; batches charge
// per item. With rate limiting configured (Registry.ConfigureRateLimit,
// `evilbloom serve -rate-mutations`) an exhausted budget answers 429 with a
// Retry-After header and nothing is applied. Accounting runs even without a
// budget, so the clients endpoint attributes pollution on every server; the
// stats endpoint carries the aggregate under "rate_limit".
//
// Identity: anonymously, mutations charge to the transport peer host (or a
// trusted proxy claim). With auth tokens configured (`evilbloom serve
// -auth-token name:secret`), a client may send `Authorization: Bearer
// name:secret`; its budget then follows the authenticated name across
// every connection and plane (HTTP and RESP alike) instead of the NAT. A
// presented-but-invalid credential answers 401 — never a silent
// fall-through to the anonymous bucket.
//
// remove/remove-batch need the Remover capability (variant=counting) and
// answer 405 with a capability error otherwise; a single remove of an item
// the filter believes absent answers 409. compact needs a durable registry
// (`evilbloom serve -data-dir`) and answers 409 otherwise. digest export
// needs a naive-mode filter (a hardened filter's keyed family never
// travels) and answers 409 otherwise; a pushed digest that is structurally
// corrupt answers 400, one naming a family no peer can evaluate answers
// 409. peers/refresh on a registry with no configured peer URLs answers
// 409.
//
// The unversioned-era v1 surface survives as a shim over the registry's
// "default" filter, byte-identical to the original single-filter server:
//
//	POST /v1/add         {"item": s}            -> {"added": 1, "count": n}
//	POST /v1/test        {"item": s}            -> {"present": bool}
//	POST /v1/add-batch   {"items": [s...]}      -> {"added": len, "count": n}
//	POST /v1/test-batch  {"items": [s...]}      -> {"present": [bool...]}
//	GET  /v1/stats                              -> statsV1
//	GET  /v1/info                               -> InfoResponse
type Server struct {
	eng *engine.Engine
	mux *http.ServeMux
}

// NewEngineServer wraps a command engine in the full v1+v2 HTTP API — the
// constructor a process sharing one engine across planes uses.
func NewEngineServer(eng *engine.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/add", s.v1(s.handleAdd))
	s.mux.HandleFunc("/v1/test", s.v1(s.handleTest))
	s.mux.HandleFunc("/v1/add-batch", s.v1(s.handleAddBatch))
	s.mux.HandleFunc("/v1/test-batch", s.v1(s.handleTestBatch))
	s.mux.HandleFunc("/v1/stats", s.handleStatsV1)
	s.mux.HandleFunc("/v1/info", s.handleInfoV1)
	s.mux.HandleFunc("/v2/filters", s.handleFilters)
	s.mux.HandleFunc("/v2/filters/{name}", s.handleFilter)
	s.mux.HandleFunc("/v2/filters/{name}/{op}", s.handleFilterOp)
	s.mux.HandleFunc("/v2/filters/{name}/peers/refresh", s.handlePeersRefresh)
	s.mux.HandleFunc("/v2/peer-tokens/{name}", s.handlePeerToken)
	return s
}

// NewRegistryServer wraps a filter registry in the HTTP API over a fresh,
// unauthenticated engine — the compatibility constructor for embedders
// that never touch the RESP plane.
func NewRegistryServer(reg *service.Registry) *Server {
	return NewEngineServer(engine.New(reg))
}

// NewServer wraps a single store in the HTTP API, registered as the
// registry's default filter — the original single-filter constructor, kept
// so embedders (tests, examples) need no registry ceremony.
func NewServer(store *service.Sharded) *Server {
	reg := service.NewRegistry()
	if _, err := reg.Adopt(service.DefaultFilterName, store); err != nil {
		panic(err) // fresh registry, constant valid name: unreachable
	}
	return NewRegistryServer(reg)
}

// Engine returns the command engine this server fronts.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Registry returns the underlying filter registry.
func (s *Server) Registry() *service.Registry { return s.eng.Registry() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// principal resolves the request's identity, answering 401 itself when a
// presented credential is invalid.
func (s *Server) principal(w http.ResponseWriter, r *http.Request) (engine.Principal, bool) {
	p, err := s.eng.HTTPPrincipal(r)
	if err != nil {
		writeEngineError(w, err)
		return engine.Principal{}, false
	}
	return p, true
}

// defaultFilter resolves the v1 shim's target, answering the error itself.
func (s *Server) defaultFilter(w http.ResponseWriter) (engine.FilterRef, bool) {
	ref, err := s.eng.Lookup(service.DefaultFilterName)
	if err != nil {
		writeError(w, http.StatusNotFound, "no default filter registered; use /v2/filters")
		return engine.FilterRef{}, false
	}
	return ref, true
}

// v1 adapts an item handler to the /v1 shim. The resolved ref rides along
// so the shim's mutations charge the same per-client budgets as the
// default filter's /v2 endpoints — legacy clients get no side door around
// rate limiting.
func (s *Server) v1(h func(http.ResponseWriter, *http.Request, engine.FilterRef)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ref, ok := s.defaultFilter(w)
		if !ok {
			return
		}
		h(w, r, ref)
	}
}

func (s *Server) handleStatsV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ref, ok := s.defaultFilter(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, statsToV1(s.eng.Stats(ref).Stats))
}

func (s *Server) handleInfoV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ref, ok := s.defaultFilter(w)
	if !ok {
		return
	}
	d := s.eng.Describe(ref)
	writeJSON(w, http.StatusOK, InfoResponse{
		Mode:      d.Mode,
		Shards:    d.Shards,
		K:         d.K,
		ShardBits: d.ShardBits,
		Algorithm: d.Algorithm,
		Seed:      d.Seed,
	})
}

// ---------------------------------------------------------------------------
// v2: filter lifecycle.

func (s *Server) handleFilters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only; create filters with PUT /v2/filters/{name}")
		return
	}
	descs := s.eng.List()
	resp := listResponse{Filters: make([]FilterInfo, len(descs))}
	for i, d := range descs {
		resp.Filters[i] = filterInfo(d)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFilter(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodPut:
		s.handleCreate(w, r, name)
	case http.MethodGet:
		ref, err := s.eng.Lookup(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, filterInfo(s.eng.Describe(ref)))
	case http.MethodDelete:
		if err := s.eng.DeleteFilter(name); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, "PUT, GET or DELETE only")
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request, name string) {
	// A binary body (Content-Type: application/octet-stream) is a snapshot
	// envelope — create-from-snapshot; anything else is a JSON FilterSpec.
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		d, err := s.eng.CreateFromSnapshot(name, http.MaxBytesReader(w, r.Body, int64(service.MaxSnapshotBytes)))
		if err != nil {
			writeEngineError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, filterInfo(d))
		return
	}
	var spec FilterSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad filter spec: %v", err))
		return
	}
	cfg, err := spec.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	d, err := s.eng.CreateFilter(name, cfg)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, filterInfo(d))
}

// ---------------------------------------------------------------------------
// v2: item operations on a named filter.

func (s *Server) handleFilterOp(w http.ResponseWriter, r *http.Request) {
	ref, err := s.eng.Lookup(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	switch op := r.PathValue("op"); op {
	case "add":
		s.handleAdd(w, r, ref)
	case "test":
		s.handleTest(w, r, ref)
	case "add-batch":
		s.handleAddBatch(w, r, ref)
	case "test-batch":
		s.handleTestBatch(w, r, ref)
	case "remove":
		s.handleRemove(w, r, ref)
	case "remove-batch":
		s.handleRemoveBatch(w, r, ref)
	case "stats":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		// The filter's own statistics plus the rate-limit aggregate, so one
		// scrape shows both the damage and who was allowed to do it.
		res := s.eng.Stats(ref)
		writeJSON(w, http.StatusOK, struct {
			service.Stats
			RateLimit service.RateLimitStats `json:"rate_limit"`
		}{res.Stats, res.RateLimit})
	case "clients":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, s.eng.Clients(ref))
	case "info":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, filterInfo(s.eng.Describe(ref)))
	case "snapshot":
		s.handleSnapshot(w, r, ref)
	case "compact":
		s.handleCompact(w, r, ref)
	case "digest":
		s.handleDigest(w, r, ref)
	case "route":
		s.handleRoute(w, r, ref)
	case "peers":
		s.handlePeers(w, r, ref)
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown filter operation %q", op))
	}
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	p, ok := s.principal(w, r)
	if !ok {
		return
	}
	res, err := s.eng.Add(p, ref, []byte(req.Item))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, addResponse{Added: res.Added, Count: res.Count})
}

func (s *Server) handleTest(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	present, err := s.eng.Test(ref, []byte(req.Item))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, testResponse{Present: present})
}

func (s *Server) handleAddBatch(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	p, ok := s.principal(w, r)
	if !ok {
		return
	}
	res, err := s.eng.AddBatch(p, ref, toBytes(req.Items))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, addResponse{Added: res.Added, Count: res.Count})
}

func (s *Server) handleTestBatch(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	items := toBytes(req.Items)
	present, err := s.eng.TestBatch(ref, make([]bool, 0, len(items)), items)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, testBatchResponse{Present: present})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	p, ok := s.principal(w, r)
	if !ok {
		return
	}
	res, err := s.eng.Remove(p, ref, []byte(req.Item))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, removeResponse{Removed: res.Removed, Count: res.Count})
}

func (s *Server) handleRemoveBatch(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	p, ok := s.principal(w, r)
	if !ok {
		return
	}
	res, err := s.eng.RemoveBatch(p, ref, toBytes(req.Items))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, removeBatchResponse{Removed: res.Removed, Count: res.Count})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	blob, err := s.eng.Snapshot(ref)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Evilbloom-Snapshot-Version", fmt.Sprint(service.SnapshotVersion))
	w.WriteHeader(http.StatusOK)
	w.Write(blob) //nolint:errcheck // client gone; nothing to do
}

// handleCompact forces a durable filter's snapshot+log rotation; a
// memory-only filter answers 409 so operators notice the missing -data-dir
// instead of trusting a no-op.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	gen, err := s.eng.Compact(ref)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, compactResponse{Compacted: true, Generation: gen})
}

// ---------------------------------------------------------------------------
// v2: cache-digest exchange (§7 between nodes).

// handleDigest serves a filter's cache digest (GET, with a generation ETag
// so unchanged digests cost a peer one conditional request and no transfer)
// and accepts push-imported sibling digests (POST with ?peer=<label>).
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	switch r.Method {
	case http.MethodGet:
		s.handleDigestGet(w, r, ref)
	case http.MethodPost:
		s.handleDigestPush(w, r, ref)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET exports the digest; POST ?peer=<label> imports one")
	}
}

func (s *Server) handleDigestGet(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	// The conditional check reads only the O(shards) generation counter;
	// an unchanged filter never pays for digest serialization. Matching is
	// RFC 9110 If-None-Match semantics, not string equality: intermediaries
	// legitimately send `*`, weak `W/"..."` forms and comma-joined lists of
	// every tag they hold, and all of them must be able to earn the 304.
	// Only If-None-Match can earn it: the delta-path Digest-Have header
	// names what the peer holds, not what it would accept unchanged, and
	// must never short-circuit a transfer of content the peer lacks.
	if match := r.Header.Get("If-None-Match"); match != "" {
		if current := s.eng.DigestETag(ref); etagMatch(match, current) {
			w.Header().Set("ETag", current)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	res, err := s.eng.DigestExchange(ref,
		r.Header.Get(service.HeaderDigestHave),
		r.Header.Get(service.HeaderDigestDelta) == "1",
		r.Header.Get(service.HeaderPeerToken))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", res.ETag)
	w.Header().Set("X-Evilbloom-Digest-Version", fmt.Sprint(cachedigest.EnvelopeVersion))
	frame := "full"
	if res.Delta {
		frame = "delta"
	}
	w.Header().Set(service.HeaderDigestFrame, frame)
	if res.Sealer != "" {
		w.Header().Set(service.HeaderPeer, res.Sealer)
	}
	w.WriteHeader(http.StatusOK)
	w.Write(res.Blob) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) handleDigestPush(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	label := r.URL.Query().Get("peer")
	if label == "" {
		writeError(w, http.StatusBadRequest, "peer query parameter required: which sibling does this digest describe?")
		return
	}
	p, ok := s.principal(w, r)
	if !ok {
		return
	}
	status, err := s.eng.DigestPush(p, ref, label,
		http.MaxBytesReader(w, r.Body, int64(service.MaxSnapshotBytes)),
		r.Header.Get(service.HeaderPeerToken))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, digestPushResponse{Imported: true, Peer: status})
}

// handlePeerToken revokes one mesh credential (DELETE /v2/peer-tokens/{name})
// — ejecting an evil sibling live: its pushes stop authenticating, its
// sealed digests stop verifying, and everything it already landed is
// scrubbed. Like the rest of this demonstration server's management surface
// the endpoint is open; a production deployment would gate it behind an
// operator credential.
func (s *Server) handlePeerToken(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "DELETE revokes a peer credential")
		return
	}
	name := r.PathValue("name")
	evicted, found := s.eng.RevokePeerToken(name)
	if !found {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no peer credential named %q", name))
		return
	}
	writeJSON(w, http.StatusOK, peerTokenRevokeResponse{Revoked: name, DigestsEvicted: evicted})
}

// handleRoute answers the §7 routing question for one item: local cache,
// sibling whose digest claims it, or origin.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	res, err := s.eng.Route(ref, []byte(req.Item))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RouteResponse{
		Local:    res.Local,
		Verdict:  res.Verdict,
		Peer:     res.Peer,
		Peers:    res.Claims,
		Claiming: res.ClaimCount,
		Quorum:   res.Quorum,
	})
}

// handlePeers reports one filter's per-peer digest accounting.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request, ref engine.FilterRef) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only; force a fetch with POST .../peers/refresh")
		return
	}
	status, err := s.eng.PeerStatus(ref)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if status == nil {
		status = []service.PeerStatus{}
	}
	writeJSON(w, http.StatusOK, peersResponse{Peers: status})
}

// handlePeersRefresh synchronously fetches every configured peer's digest
// for one filter — the deterministic alternative to waiting out the
// jittered refresh interval (tests, smoke scripts, operators mid-incident).
func (s *Server) handlePeersRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ref, err := s.eng.Lookup(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	status, err := s.eng.RefreshPeers(ref)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, peersResponse{Peers: status})
}

// ---------------------------------------------------------------------------
// Shared plumbing.

// decode parses a POST JSON body into dst, answering the error itself when
// the request is malformed.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes; split the batch", service.MaxBodyBytes))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// toBytes converts wire strings to the byte slices the engine consumes;
// validation is the engine's job, not the codec's.
func toBytes(items []string) [][]byte {
	out := make([][]byte, len(items))
	for i, it := range items {
		out[i] = []byte(it)
	}
	return out
}

// writeEngineError renders an engine failure: kinds map to status codes,
// busy errors additionally carry Retry-After, and validation errors keep
// this plane's frozen phrasings.
func writeEngineError(w http.ResponseWriter, err error) {
	// The switch is exhaustive over engine.Kind — evillint's errmap
	// analyzer fails the build if a kind is missing an arm, so a new
	// engine kind cannot silently fall through to 500. That fallthrough
	// was real: before the analyzer, a KindBusy-classified error that was
	// not a *engine.BusyError answered 500 ("server broken") instead of
	// 429 ("back off").
	status := http.StatusInternalServerError
	switch engine.Classify(err) {
	case engine.KindInvalid:
		status = http.StatusBadRequest
	case engine.KindNotFound:
		status = http.StatusNotFound
	case engine.KindCapability:
		status = http.StatusMethodNotAllowed
	case engine.KindConflict:
		status = http.StatusConflict
	case engine.KindBusy:
		status = http.StatusTooManyRequests
		var busy *engine.BusyError
		if errors.As(err, &busy) {
			w.Header().Set("Retry-After", strconv.FormatInt(busy.RetrySecs, 10))
		}
	case engine.KindUnauthorized:
		status = http.StatusUnauthorized
	case engine.KindTooLarge:
		status = http.StatusRequestEntityTooLarge
	case engine.KindInternal:
		status = http.StatusInternalServerError
	}
	writeError(w, status, httpErrorMessage(err))
}

// httpErrorMessage keeps this plane's historical validation phrasings: the
// engine reports a typed item/batch violation, and the HTTP surface has
// always worded those messages this way — changing them would break
// clients that match on body text.
func httpErrorMessage(err error) string {
	var item *engine.ItemError
	if errors.As(err, &item) {
		switch {
		case item.Index >= 0:
			return fmt.Sprintf("item %d empty or exceeds %d bytes", item.Index, service.MaxItemLen)
		case item.Len == 0:
			return "empty item"
		default:
			return fmt.Sprintf("item exceeds %d bytes", service.MaxItemLen)
		}
	}
	var batch *engine.BatchTooLargeError
	if errors.As(err, &batch) {
		return fmt.Sprintf("batch exceeds %d items", service.MaxBatch)
	}
	return err.Error()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
