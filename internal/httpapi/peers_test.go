package httpapi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// naiveSpec is a small deterministic naive filter for digest tests.
func naiveSpec(shards int) FilterSpec {
	return FilterSpec{Shards: shards, ShardBits: 512, HashCount: 4, Seed: 11}
}

// getDigest fetches a filter's digest envelope, returning body, ETag and
// status.
func getDigest(t *testing.T, base, name, ifNoneMatch string) ([]byte, string, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v2/filters/"+name+"/digest", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header.Get("ETag"), resp.StatusCode
}

// The digest endpoint must serve an envelope that answers membership
// exactly like the live filter, for both variants — including across the
// keyed shard routing — and short-circuit unchanged state via the ETag.
func TestDigestEndpointRoundTrip(t *testing.T) {
	for _, variant := range []string{"bloom", "counting"} {
		t.Run(variant, func(t *testing.T) {
			ts, reg := newRegistryTestServer(t)
			spec := naiveSpec(4)
			spec.Variant = variant
			if code := doJSON(t, "PUT", ts.URL+"/v2/filters/d", spec, nil); code != http.StatusCreated {
				t.Fatalf("create status %d", code)
			}
			f, err := reg.Get("d")
			if err != nil {
				t.Fatal(err)
			}
			gen := urlgen.New(3)
			inserted := make([][]byte, 50)
			for i := range inserted {
				inserted[i] = gen.Next()
				f.Store().Add(inserted[i])
			}

			env, etag, code := getDigest(t, ts.URL, "d", "")
			if code != http.StatusOK || etag == "" {
				t.Fatalf("digest status %d etag %q", code, etag)
			}
			d, err := cachedigest.OpenEnvelope(env)
			if err != nil {
				t.Fatal(err)
			}
			if d.Count() != 50 || d.Weight() == 0 {
				t.Errorf("digest header: count=%d weight=%d", d.Count(), d.Weight())
			}
			for _, item := range inserted {
				if !d.Test(item) {
					t.Fatalf("digest denies inserted item %q", item)
				}
			}
			agree := 0
			for i := 0; i < 300; i++ {
				probe := gen.Next()
				if d.Test(probe) == f.Store().Test(probe) {
					agree++
				}
			}
			if agree != 300 {
				t.Errorf("digest disagreed with the filter on %d/300 probes", 300-agree)
			}

			// Unchanged filter: the conditional fetch short-circuits.
			if _, _, code := getDigest(t, ts.URL, "d", etag); code != http.StatusNotModified {
				t.Errorf("If-None-Match on unchanged filter: status %d, want 304", code)
			}
			// A mutation must invalidate the ETag.
			f.Store().Add([]byte("one-more"))
			env2, etag2, code := getDigest(t, ts.URL, "d", etag)
			if code != http.StatusOK || etag2 == etag {
				t.Errorf("post-mutation fetch: status %d etag %q (was %q)", code, etag2, etag)
			}
			if bytes.Equal(env, env2) {
				t.Error("digest unchanged after a mutation")
			}
		})
	}
}

// Hardened filters must refuse digest export: their keyed family never
// travels, so the envelope would be unusable (and a statistics leak).
func TestDigestHardenedRefused(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/h", FilterSpec{Mode: "hardened", Shards: 1, ShardBits: 512, HashCount: 4}, nil)
	if _, _, code := getDigest(t, ts.URL, "h", ""); code != http.StatusConflict {
		t.Errorf("hardened digest status %d, want 409", code)
	}
	var info FilterInfo
	doJSON(t, "GET", ts.URL+"/v2/filters/h", nil, &info)
	for _, c := range info.Capabilities {
		if c == "digest" {
			t.Error("hardened filter advertises the digest capability")
		}
	}
}

// resealEnvelope recomputes a digest envelope's trailing CRC after a header
// mutation, so the mutation under test is the envelope's only defect.
func resealEnvelope(env []byte) []byte {
	body := env[:len(env)-4]
	binary.LittleEndian.PutUint32(env[len(body):], crc32.ChecksumIEEE(body))
	return env
}

// pushDigest POSTs an envelope to the digest import endpoint.
func pushDigest(t *testing.T, base, name, peer string, env []byte) (int, string) {
	t.Helper()
	u := base + "/v2/filters/" + name + "/digest"
	if peer != "" {
		u += "?peer=" + peer
	}
	resp, err := http.Post(u, "application/octet-stream", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	return resp.StatusCode, string(body)
}

// The push-import path's corruption/mismatch table, mirroring the snapshot
// endpoint's: structural damage answers 400, a family no peer can evaluate
// answers 409, and only intact envelopes are stored.
func TestDigestPushStatusTable(t *testing.T) {
	ts, reg := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(2), nil)
	f, err := reg.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("x"))
	env, _, _ := getDigest(t, ts.URL, "d", "")

	cases := []struct {
		name   string
		peer   string
		mutate func([]byte) []byte
		want   int
	}{
		{"valid", "sibling-a", func(e []byte) []byte { return e }, http.StatusOK},
		{"missing peer label", "", func(e []byte) []byte { return e }, http.StatusBadRequest},
		{"truncated", "p", func(e []byte) []byte { return e[:len(e)-7] }, http.StatusBadRequest},
		{"crc flipped", "p", func(e []byte) []byte { e[len(e)-2] ^= 1; return e }, http.StatusBadRequest},
		{"bad magic", "p", func(e []byte) []byte { e[3] ^= 0xff; return e }, http.StatusBadRequest},
		{"wrong variant", "p", func(e []byte) []byte { e[11] = 5; return resealEnvelope(e) }, http.StatusBadRequest},
		{"impossible geometry", "p", func(e []byte) []byte {
			binary.LittleEndian.PutUint64(e[40:], 1<<40)
			return resealEnvelope(e)
		}, http.StatusBadRequest},
		{"unknown keyed family", "p", func(e []byte) []byte { e[10] = 9; return resealEnvelope(e) }, http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := pushDigest(t, ts.URL, "d", tc.peer, tc.mutate(append([]byte(nil), env...)))
			if code != tc.want {
				t.Fatalf("status %d (%s), want %d", code, body, tc.want)
			}
		})
	}

	if code, _ := pushDigest(t, ts.URL, "nope", "p", env); code != http.StatusNotFound {
		t.Errorf("push to unknown filter: want 404")
	}

	// The one valid push above must now answer routing queries.
	var rt RouteResponse
	doJSON(t, "POST", ts.URL+"/v2/filters/d/route", itemRequest{Item: "x"}, &rt)
	if !rt.Local {
		t.Error("route misses the local item")
	}
	claimed := false
	for _, pc := range rt.Peers {
		if pc.Peer == "sibling-a" && pc.Claims {
			claimed = true
		}
	}
	if !claimed {
		t.Errorf("pushed digest not consulted: %+v", rt.Peers)
	}
}

// twoServers wires B into A's mesh: both carry the same-named filter, and B
// fetches A's digest. Returns both base URLs and B's registry.
func twoServers(t *testing.T, name string, refresh time.Duration) (a, b *httptest.Server, regA, regB *service.Registry) {
	t.Helper()
	regA = service.NewRegistry()
	a = httptest.NewServer(NewRegistryServer(regA))
	t.Cleanup(a.Close)
	regB = service.NewRegistry()
	b = httptest.NewServer(NewRegistryServer(regB))
	t.Cleanup(b.Close)
	if err := regB.ConfigurePeers(service.PeerConfig{Peers: []string{a.URL}, Refresh: refresh}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { regB.Close(); regA.Close() }) //nolint:errcheck // test teardown
	if code := doJSON(t, "PUT", a.URL+"/v2/filters/"+name, naiveSpec(2), nil); code != http.StatusCreated {
		t.Fatal("create on A failed")
	}
	if code := doJSON(t, "PUT", b.URL+"/v2/filters/"+name, naiveSpec(2), nil); code != http.StatusCreated {
		t.Fatal("create on B failed")
	}
	return a, b, regA, regB
}

// Two live servers: B pulls A's digest and routes by it — local beats peer,
// peer beats origin — and the conditional refresh path counts a 304 when
// A's filter has not changed.
func TestPeerExchangeAndRouting(t *testing.T) {
	a, b, _, _ := twoServers(t, "mesh", time.Hour)

	// A caches an item; B refreshes and must route to the peer.
	doJSON(t, "POST", a.URL+"/v2/filters/mesh/add", itemRequest{Item: "cached-on-a"}, nil)
	var ps peersResponse
	if code := doJSON(t, "POST", b.URL+"/v2/filters/mesh/peers/refresh", nil, &ps); code != http.StatusOK {
		t.Fatalf("refresh status %d", code)
	}
	if len(ps.Peers) != 1 || !ps.Peers[0].HasDigest || ps.Peers[0].Fetches == 0 {
		t.Fatalf("peer status after refresh: %+v", ps.Peers)
	}

	var rt RouteResponse
	doJSON(t, "POST", b.URL+"/v2/filters/mesh/route", itemRequest{Item: "cached-on-a"}, &rt)
	if rt.Verdict != "peer" || rt.Peer != a.URL || rt.Local {
		t.Errorf("route for A's item: %+v, want peer verdict naming %s", rt, a.URL)
	}
	doJSON(t, "POST", b.URL+"/v2/filters/mesh/route", itemRequest{Item: "nowhere-item"}, &rt)
	if rt.Verdict != "origin" {
		t.Errorf("route for uncached item: %+v, want origin", rt)
	}
	// Local cache wins over a claiming peer.
	doJSON(t, "POST", b.URL+"/v2/filters/mesh/add", itemRequest{Item: "cached-on-a"}, nil)
	doJSON(t, "POST", b.URL+"/v2/filters/mesh/route", itemRequest{Item: "cached-on-a"}, &rt)
	if rt.Verdict != "local" || !rt.Local {
		t.Errorf("route for locally cached item: %+v, want local", rt)
	}

	// Unchanged A: the second refresh must short-circuit on the ETag.
	doJSON(t, "POST", b.URL+"/v2/filters/mesh/peers/refresh", nil, &ps)
	if ps.Peers[0].NotModified == 0 {
		t.Errorf("second refresh did not short-circuit: %+v", ps.Peers[0])
	}
	fetchesBefore := ps.Peers[0].Fetches
	// A mutation on A must defeat the short-circuit.
	doJSON(t, "POST", a.URL+"/v2/filters/mesh/add", itemRequest{Item: "another"}, nil)
	doJSON(t, "POST", b.URL+"/v2/filters/mesh/peers/refresh", nil, &ps)
	if ps.Peers[0].Fetches != fetchesBefore+1 {
		t.Errorf("refresh after mutation: %+v, want a full fetch", ps.Peers[0])
	}

	// GET .../peers mirrors the refresh response.
	var ps2 peersResponse
	if code := doJSON(t, "GET", b.URL+"/v2/filters/mesh/peers", nil, &ps2); code != http.StatusOK || len(ps2.Peers) != 1 {
		t.Fatalf("peers status: %d %+v", code, ps2)
	}
}

// A dead peer must be accounted, not crash anything: failures and
// consecutive counters rise, the last error is reported, and routing keeps
// answering from what is held (nothing, here).
func TestPeerFailureAccounting(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	reg := service.NewRegistry()
	ts := httptest.NewServer(NewRegistryServer(reg))
	t.Cleanup(ts.Close)
	if err := reg.ConfigurePeers(service.PeerConfig{Peers: []string{deadURL}, Refresh: time.Hour}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() }) //nolint:errcheck // test teardown
	doJSON(t, "PUT", ts.URL+"/v2/filters/m", naiveSpec(1), nil)

	var ps peersResponse
	doJSON(t, "POST", ts.URL+"/v2/filters/m/peers/refresh", nil, &ps)
	st := ps.Peers[0]
	if st.HasDigest || st.Failures == 0 || st.ConsecutiveFailures == 0 || st.LastError == "" {
		t.Errorf("dead peer accounting: %+v", st)
	}
	var rt RouteResponse
	doJSON(t, "POST", ts.URL+"/v2/filters/m/route", itemRequest{Item: "x"}, &rt)
	if rt.Verdict != "origin" || len(rt.Peers) != 1 || rt.Peers[0].Claims {
		t.Errorf("route with dead peer: %+v", rt)
	}
}

// Refreshing a mesh that was never configured is a 409, not a silent no-op
// pretending an exchange happened.
func TestPeersRefreshWithoutMesh(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/m", naiveSpec(1), nil)
	var er errorResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/filters/m/peers/refresh", nil, &er); code != http.StatusConflict {
		t.Errorf("refresh without peers: status %d (%+v), want 409", code, er)
	}
	// The passive surfaces still answer.
	var ps peersResponse
	if code := doJSON(t, "GET", ts.URL+"/v2/filters/m/peers", nil, &ps); code != http.StatusOK || len(ps.Peers) != 0 {
		t.Errorf("peers without mesh: %d %+v", code, ps)
	}
	var rt RouteResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/filters/m/route", itemRequest{Item: "x"}, &rt); code != http.StatusOK {
		t.Errorf("route without mesh: status %d", code)
	}
}

// refreshLoopCount counts live peer-refresh goroutines by stack inspection.
func refreshLoopCount() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "(*Peers).refreshLoop")
}

// waitNoRefreshLoops asserts every refresh goroutine exits within deadline.
func waitNoRefreshLoops(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for refreshLoopCount() != 0 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("peer refresh goroutine leaked:\n%s", buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Delete and Close must stop a filter's refresh work: no goroutine may
// outlive its filter (run under -race in CI, where a leaked loop would also
// race with test teardown).
func TestDeleteAndCloseStopPeerRefresh(t *testing.T) {
	if n := refreshLoopCount(); n != 0 {
		t.Fatalf("%d refresh loops running before the test", n)
	}
	a := httptest.NewServer(NewRegistryServer(service.NewRegistry()))
	t.Cleanup(a.Close)
	reg := service.NewRegistry()
	if err := reg.ConfigurePeers(service.PeerConfig{Peers: []string{a.URL}, Refresh: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := reg.Create(fmt.Sprintf("f%d", i), service.Config{Shards: 1, ShardBits: 64, HashCount: 2}); err != nil {
			t.Fatal(err)
		}
	}
	// A freshly spawned goroutine takes a beat to appear in stack dumps.
	waitForCount := func(want int) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for refreshLoopCount() != want {
			if time.Now().After(deadline) {
				t.Fatalf("refresh loops = %d, want %d", refreshLoopCount(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitForCount(3)
	// Deleting one filter stops exactly its loop, synchronously.
	if err := reg.Delete("f1"); err != nil {
		t.Fatal(err)
	}
	waitForCount(2)
	// Close stops the rest — the shutdown path's guarantee.
	reg.Close() //nolint:errcheck // memory-only registry
	waitNoRefreshLoops(t)
	// A closed mesh refuses new watches rather than leaking them.
	if _, err := reg.Create("late", service.Config{Shards: 1, ShardBits: 64, HashCount: 2}); err != nil {
		t.Fatal(err)
	}
	waitNoRefreshLoops(t)
}

// Push is unauthenticated, so it must enforce its retention budget from
// the envelope header BEFORE buffering any payload: a header claiming a
// 2^33-bit digest (1 GiB — valid per the envelope format) is refused with
// 409 even though no payload bytes were ever sent, and the label count is
// capped like the registry caps filter creation.
func TestDigestPushBudget(t *testing.T) {
	ts, reg := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(1), nil)
	f, err := reg.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("x"))
	env, _, _ := getDigest(t, ts.URL, "d", "")

	// Header-only request claiming shards=2^16 × shard_bits=2^17 = 2^33
	// bits: within the envelope format's limit, far over the push budget.
	huge := make([]byte, cachedigest.EnvelopeHeaderLen)
	copy(huge, env[:cachedigest.EnvelopeHeaderLen])
	binary.LittleEndian.PutUint64(huge[32:], 1<<16) // shards
	binary.LittleEndian.PutUint64(huge[40:], 1<<17) // shard bits
	words := uint64(1<<17) / 64
	binary.LittleEndian.PutUint64(huge[80:], (1<<16)*(8+8*words)) // implied payload
	code, body := pushDigest(t, ts.URL, "d", "fat", huge)
	if code != http.StatusConflict {
		t.Fatalf("oversized push: status %d (%s), want 409 before any payload", code, body)
	}
	if !strings.Contains(body, "budget") {
		t.Errorf("oversized push error does not name the budget: %s", body)
	}

	// Label cap: service.MaxPushedPeers distinct labels fit, the next is refused;
	// re-pushing an existing label is a replacement, not a new entry.
	for i := 0; i < service.MaxPushedPeers; i++ {
		if code, body := pushDigest(t, ts.URL, "d", fmt.Sprintf("sib-%d", i), env); code != http.StatusOK {
			t.Fatalf("push %d: status %d (%s)", i, code, body)
		}
	}
	if code, _ := pushDigest(t, ts.URL, "d", "one-too-many", env); code != http.StatusConflict {
		t.Errorf("push beyond service.MaxPushedPeers: status %d, want 409", code)
	}
	if code, _ := pushDigest(t, ts.URL, "d", "sib-0", env); code != http.StatusOK {
		t.Errorf("replacing an existing label refused at the cap")
	}
}
