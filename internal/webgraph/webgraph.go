package webgraph

import (
	"fmt"

	"evilbloom/internal/urlgen"
)

// Page is one web page: its URL and the URLs it links to.
type Page struct {
	URL   string
	Links []string
}

// Web is a set of pages. Not safe for concurrent mutation.
type Web struct {
	pages map[string]*Page
}

// New returns an empty web.
func New() *Web {
	return &Web{pages: make(map[string]*Page)}
}

// AddPage inserts (or replaces) a page with the given outgoing links.
func (w *Web) AddPage(url string, links ...string) *Page {
	p := &Page{URL: url, Links: append([]string(nil), links...)}
	w.pages[url] = p
	return p
}

// Fetch returns the page at url. A missing page yields an error, modelling
// a 404 — crawlers hit plenty of those on adversarial link farms.
func (w *Web) Fetch(url string) (*Page, error) {
	p, ok := w.pages[url]
	if !ok {
		return nil, fmt.Errorf("webgraph: 404 %s", url)
	}
	return p, nil
}

// Has reports whether the page exists.
func (w *Web) Has(url string) bool {
	_, ok := w.pages[url]
	return ok
}

// Len returns the number of pages.
func (w *Web) Len() int { return len(w.pages) }

// URLs returns every page URL (order unspecified).
func (w *Web) URLs() []string {
	out := make([]string, 0, len(w.pages))
	for u := range w.pages {
		out = append(out, u)
	}
	return out
}

// BuildSite adds a realistic honest site: root linking into a tree of pages
// drawn from gen, fanout links per page, totalling ≈pages pages. It returns
// the root URL.
func BuildSite(w *Web, gen *urlgen.Generator, pages, fanout int) string {
	if pages < 1 {
		pages = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	root := gen.URL()
	frontier := []string{root}
	created := map[string]bool{root: true}
	for len(created) < pages && len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		var links []string
		for i := 0; i < fanout && len(created)+len(links) < pages+1; i++ {
			u := gen.URL()
			links = append(links, u)
		}
		w.AddPage(cur, links...)
		for _, u := range links {
			if !created[u] {
				created[u] = true
				frontier = append(frontier, u)
			}
		}
	}
	// Remaining frontier entries become leaf pages.
	for _, u := range frontier {
		if !w.Has(u) {
			w.AddPage(u)
		}
	}
	return root
}

// BuildLinkFarm adds the §5.2 pollution page: a single entry page whose
// links are the adversary's crafted URLs (the linked pages themselves exist
// as empty leaves so the crawl proceeds quietly). It returns the entry URL.
func BuildLinkFarm(w *Web, entry string, craftedURLs []string) string {
	w.AddPage(entry, craftedURLs...)
	for _, u := range craftedURLs {
		w.AddPage(u)
	}
	return entry
}

// BuildDecoyChain adds the Fig 7 structure: a chain of decoy pages
// root → d₁ → … → dₙ, with the final decoy linking to the ghost page. The
// ghost page exists but its URL is crafted to look already-visited to the
// crawler's polluted-or-probed filter, so it is never fetched.
func BuildDecoyChain(w *Web, root string, decoys []string, ghost string) {
	chain := append([]string{root}, decoys...)
	for i := 0; i < len(chain)-1; i++ {
		w.AddPage(chain[i], chain[i+1])
	}
	w.AddPage(chain[len(chain)-1], ghost)
	w.AddPage(ghost)
}
