package webgraph

import (
	"testing"

	"evilbloom/internal/urlgen"
)

func TestAddFetch(t *testing.T) {
	w := New()
	w.AddPage("http://a.test/", "http://b.test/")
	p, err := w.Fetch("http://a.test/")
	if err != nil || p.URL != "http://a.test/" || len(p.Links) != 1 {
		t.Fatalf("Fetch: %+v, %v", p, err)
	}
	if _, err := w.Fetch("http://missing.test/"); err == nil {
		t.Error("missing page fetched")
	}
	if !w.Has("http://a.test/") || w.Has("http://missing.test/") {
		t.Error("Has wrong")
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
	if len(w.URLs()) != 1 {
		t.Errorf("URLs = %v", w.URLs())
	}
}

func TestAddPageCopiesLinks(t *testing.T) {
	w := New()
	links := []string{"http://x.test/"}
	w.AddPage("http://a.test/", links...)
	links[0] = "mutated"
	p, _ := w.Fetch("http://a.test/")
	if p.Links[0] != "http://x.test/" {
		t.Error("AddPage aliased the caller's slice")
	}
}

func TestBuildSite(t *testing.T) {
	w := New()
	root := BuildSite(w, urlgen.New(1), 100, 4)
	if !w.Has(root) {
		t.Fatal("root missing")
	}
	if w.Len() < 100 {
		t.Errorf("site has %d pages, want ≥ 100", w.Len())
	}
	// Every link must resolve (no dangling 404s in an honest site).
	for _, u := range w.URLs() {
		p, _ := w.Fetch(u)
		for _, l := range p.Links {
			if !w.Has(l) {
				t.Fatalf("dangling link %s on %s", l, u)
			}
		}
	}
	// Degenerate inputs clamp.
	w2 := New()
	BuildSite(w2, urlgen.New(2), 0, 0)
	if w2.Len() == 0 {
		t.Error("degenerate site empty")
	}
}

func TestBuildLinkFarm(t *testing.T) {
	w := New()
	crafted := []string{"http://evil.test/a", "http://evil.test/b"}
	entry := BuildLinkFarm(w, "http://evil.test/", crafted)
	p, err := w.Fetch(entry)
	if err != nil || len(p.Links) != 2 {
		t.Fatalf("entry: %+v, %v", p, err)
	}
	for _, u := range crafted {
		if !w.Has(u) {
			t.Errorf("crafted leaf %s missing", u)
		}
	}
}

func TestBuildDecoyChain(t *testing.T) {
	w := New()
	decoys := []string{"http://r.test/main", "http://r.test/main/tags"}
	BuildDecoyChain(w, "http://r.test/", decoys, "http://r.test/ghost")
	// root → d1 → d2 → ghost
	p, _ := w.Fetch("http://r.test/")
	if len(p.Links) != 1 || p.Links[0] != decoys[0] {
		t.Errorf("root links: %v", p.Links)
	}
	p, _ = w.Fetch(decoys[1])
	if len(p.Links) != 1 || p.Links[0] != "http://r.test/ghost" {
		t.Errorf("last decoy links: %v", p.Links)
	}
	if !w.Has("http://r.test/ghost") {
		t.Error("ghost page missing")
	}
}
