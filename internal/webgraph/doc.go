// Package webgraph models an in-memory world-wide web: pages identified by
// URL with outgoing links. It is the substrate the Scrapy-style crawler
// (§5) runs against — the attacks target the crawler's dedup filter, not
// its networking, so an in-memory graph preserves the relevant behaviour
// while keeping crawls fast and reproducible. Graphs are built
// deterministically from a seed, and the blinding experiment grafts the
// adversary's link-farm pages onto an honest graph.
package webgraph
