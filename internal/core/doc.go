// Package core implements the Bloom-filter variants studied in the paper —
// classic, counting, scalable, partitioned (pyBloom layout) and Dablooms
// (Bitly's scaling counting filter) — together with the parameter
// mathematics of §3 (average case), §4 (adversarial case, eq 7) and §8.1
// (worst-case parameters, eq 9–12).
//
// The filter types:
//
//   - Bloom: the classic m-bit vector with k indexes from a
//     hashes.IndexFamily (§3). Construct directly over a family or with
//     NewBloomOptimal for the (m, k) the equations pick.
//   - Counting: 4-bit counters instead of bits, supporting Remove — and the
//     §6.2 overflow attack, governed by an explicit OverflowPolicy.
//   - Partitioned: pyBloom's layout, index i scoped to slice i.
//   - Scalable / Dablooms: capacity-doubling stacks of filters whose
//     compound false-positive rate Fig 8 studies under pollution.
//   - Nyberg: the accumulator §9 compares against.
//   - TwoChoice: the "power of two choices" variant the conclusion plays on.
//
// Every variant exposes its internal state (Weight, Occupied, Bits) because
// the paper's threat model hands that state to the adversary; package attack
// builds its Views on exactly these accessors.
//
// Concurrency: filters are not safe for concurrent use. Synced wraps any
// Filter in one global mutex — the baseline primitive; the service package
// builds the sharded, striped-lock store that replaces it for serving.
package core
