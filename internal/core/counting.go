package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"evilbloom/internal/bitset"
	"evilbloom/internal/hashes"
)

// OverflowPolicy selects what a counting filter does when a counter hits its
// maximum. Dablooms-style wrapping is what the §6.2 overflow attack exploits;
// saturating counters neutralize it at the cost of losing deletability for
// hot counters.
type OverflowPolicy int

const (
	// Wrap lets the counter roll over to zero, silently erasing membership
	// evidence — faithful to 4-bit counter implementations like dablooms.
	Wrap OverflowPolicy = iota + 1
	// Saturate pins the counter at its maximum; such counters are never
	// decremented again.
	Saturate
)

func (p OverflowPolicy) String() string {
	switch p {
	case Wrap:
		return "wrap"
	case Saturate:
		return "saturate"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParseOverflowPolicy resolves "wrap" or "saturate"; the empty string parses
// to the zero policy so callers can treat it as "use the default".
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "":
		return 0, nil
	case "wrap":
		return Wrap, nil
	case "saturate":
		return Saturate, nil
	default:
		return 0, fmt.Errorf("core: unknown overflow policy %q (want wrap or saturate)", s)
	}
}

// Counting is the counting Bloom filter of §4.3/§6.1: an array of small
// counters instead of bits, supporting deletion at the price of false
// negatives when counters are wrapped or wrongly decremented.
type Counting struct {
	counters packedCounters
	fam      hashes.IndexFamily
	policy   OverflowPolicy
	n        uint64
	overflow uint64 // counter-overflow events observed
	scratch  []uint64
}

var _ Filter = (*Counting)(nil)

// NewCounting builds a counting filter with width-bit counters (dablooms
// uses 4) over the family's geometry.
func NewCounting(fam hashes.IndexFamily, width int, policy OverflowPolicy) (*Counting, error) {
	pc, err := newPackedCounters(fam.M(), width)
	if err != nil {
		return nil, err
	}
	if policy != Wrap && policy != Saturate {
		return nil, fmt.Errorf("core: invalid overflow policy %d", int(policy))
	}
	return &Counting{
		counters: pc,
		fam:      fam,
		policy:   policy,
		scratch:  make([]uint64, 0, fam.K()),
	}, nil
}

// Add implements Filter.
func (c *Counting) Add(item []byte) {
	c.scratch = c.fam.Indexes(c.scratch[:0], item)
	c.AddIndexes(c.scratch)
}

// AddIndexes increments the counters at idx; it returns how many counters
// were previously zero and how many overflowed during this insertion.
func (c *Counting) AddIndexes(idx []uint64) (fresh, overflowed int) {
	for _, i := range idx {
		v := c.counters.get(i)
		if v == 0 {
			fresh++
		}
		if v == c.counters.max() {
			overflowed++
			c.overflow++
			if c.policy == Saturate {
				continue
			}
			c.counters.set(i, 0) // wrap: roll over, erasing evidence
			continue
		}
		c.counters.set(i, v+1)
	}
	c.n++
	return fresh, overflowed
}

// AddIndexesAtomic is AddIndexes with atomic counter stores: for callers
// that serialize writers under a lock but serve TestIndexesAtomic readers
// with no lock at all. The writer's own reads stay plain (writes are
// single-writer by contract); only the stores racing lock-free loads are
// atomic. Insertion and overflow counts are not read on the lock-free path.
func (c *Counting) AddIndexesAtomic(idx []uint64) (fresh, overflowed int) {
	for _, i := range idx {
		v := c.counters.get(i)
		if v == 0 {
			fresh++
		}
		if v == c.counters.max() {
			overflowed++
			c.overflow++
			if c.policy == Saturate {
				continue
			}
			c.counters.setAtomic(i, 0) // wrap: roll over, erasing evidence
			continue
		}
		c.counters.setAtomic(i, v+1)
	}
	c.n++
	return fresh, overflowed
}

// Remove decrements the counters of item. It returns an error (leaving any
// already-decremented counters modified, as real implementations do) if some
// counter is already zero — the footprint of a false-negative-inducing
// deletion. Saturated counters under the Saturate policy are left pinned.
func (c *Counting) Remove(item []byte) error {
	c.scratch = c.fam.Indexes(c.scratch[:0], item)
	_, err := c.RemoveIndexes(c.scratch)
	return err
}

// CanRemoveIndexes reports whether RemoveIndexes(idx) would complete
// without hitting a zero counter: every position's counter covers its
// multiplicity in idx (an index set may repeat a position, and each
// occurrence decrements once). Pinned counters under the Saturate policy
// always pass — they are never decremented. A caller that guards removals
// with this check (under the same lock) can never be driven into the
// partial-removal footprint.
func (c *Counting) CanRemoveIndexes(idx []uint64) bool {
	for i, p := range idx {
		v := c.counters.get(p)
		if v == c.counters.max() && c.policy == Saturate {
			continue
		}
		mult := uint64(1)
		for _, q := range idx[:i] {
			if q == p {
				mult++
			}
		}
		if mult > v {
			return false
		}
	}
	return true
}

// RemoveIndexes decrements a pre-computed index set. It returns how many
// counters this removal drove to zero — the mirror of AddIndexes' fresh
// count, which lets a wrapper track the non-zero weight incrementally. The
// zeroed count stays valid on error: counters decremented before the failing
// position remain decremented, exactly like the partial-removal footprint
// real implementations leave behind.
func (c *Counting) RemoveIndexes(idx []uint64) (zeroed int, err error) {
	if c.n > 0 {
		c.n--
	}
	for pos, i := range idx {
		v := c.counters.get(i)
		switch {
		case v == 0:
			return zeroed, fmt.Errorf("core: removing item whose counter %d (position %d) is already zero", i, pos)
		case v == c.counters.max() && c.policy == Saturate:
			// Pinned: cannot safely decrement.
		default:
			c.counters.set(i, v-1)
			if v == 1 {
				zeroed++
			}
		}
	}
	return zeroed, nil
}

// RemoveIndexesAtomic is RemoveIndexes with atomic counter stores; see
// AddIndexesAtomic for the locking contract.
func (c *Counting) RemoveIndexesAtomic(idx []uint64) (zeroed int, err error) {
	if c.n > 0 {
		c.n--
	}
	for pos, i := range idx {
		v := c.counters.get(i)
		switch {
		case v == 0:
			return zeroed, fmt.Errorf("core: removing item whose counter %d (position %d) is already zero", i, pos)
		case v == c.counters.max() && c.policy == Saturate:
			// Pinned: cannot safely decrement.
		default:
			c.counters.setAtomic(i, v-1)
			if v == 1 {
				zeroed++
			}
		}
	}
	return zeroed, nil
}

// Test implements Filter.
func (c *Counting) Test(item []byte) bool {
	c.scratch = c.fam.Indexes(c.scratch[:0], item)
	return c.TestIndexes(c.scratch)
}

// TestIndexes reports whether every counter at idx is non-zero.
func (c *Counting) TestIndexes(idx []uint64) bool {
	for _, i := range idx {
		if c.counters.get(i) == 0 {
			return false
		}
	}
	return true
}

// AtomicReads reports whether this filter's counters can be read torn-free
// with single atomic word loads: true exactly when the width divides the
// word size, so no counter ever straddles two words. Widths 1, 2, 4, 8 and
// 16 qualify; a straddling width would let a lock-free reader observe half
// of a two-word counter update.
func (c *Counting) AtomicReads() bool { return 64%c.counters.width == 0 }

// TestIndexesAtomic is TestIndexes with atomic counter loads — callable with
// no lock held while a serialized writer mutates through the atomic paths.
// Only valid when AtomicReads() is true.
func (c *Counting) TestIndexesAtomic(idx []uint64) bool {
	for _, i := range idx {
		if c.counters.getAtomic(i) == 0 {
			return false
		}
	}
	return true
}

// Count implements Filter.
func (c *Counting) Count() uint64 { return c.n }

// M returns the number of counters.
func (c *Counting) M() uint64 { return c.fam.M() }

// K returns the number of hash functions.
func (c *Counting) K() int { return c.fam.K() }

// Counter returns the value of counter i (for attack drivers and tests).
func (c *Counting) Counter(i uint64) uint64 { return c.counters.get(i) }

// Occupied reports whether counter i is non-zero — the adversary's
// per-position view of a known filter (§4).
func (c *Counting) Occupied(i uint64) bool { return c.counters.get(i) != 0 }

// CounterMax returns the maximum representable counter value (2^width − 1).
func (c *Counting) CounterMax() uint64 { return c.counters.max() }

// OccupancyBits projects the counters down to a plain bit vector: position i
// is set iff counter i is non-zero. This is the shape a Squid-style cache
// digest of a counting filter travels in — membership answers are identical
// to the source filter's, at one bit per position instead of the counter
// width. Callers export digests under a lock, so zero storage words are
// skipped a whole word at a time: a sparse filter is scanned in ~m·width/64
// word reads, not m counter extractions.
func (c *Counting) OccupancyBits() *bitset.BitSet {
	m := c.M()
	bits := bitset.New(m)
	w := uint64(c.counters.width)
	for i := uint64(0); i < m; {
		bit := i * w
		word := bit / 64
		if c.counters.words[word] == 0 {
			if end := (word + 1) * 64; bit+w <= end {
				// Counter i lies wholly inside a zero word, as does every
				// later counter ending at or before the word boundary; jump
				// to the first counter extending past it. (Counters may
				// straddle words, so the straddler is re-checked normally.)
				next := (end-w)/w + 1
				if next > m {
					next = m
				}
				i = next
				continue
			}
		}
		if c.counters.get(i) != 0 {
			bits.Set(i)
		}
		i++
	}
	return bits
}

// Weight returns the number of non-zero counters.
func (c *Counting) Weight() uint64 {
	var w uint64
	for i := uint64(0); i < c.M(); i++ {
		if c.counters.get(i) != 0 {
			w++
		}
	}
	return w
}

// Fill returns Weight/m.
func (c *Counting) Fill() float64 {
	if c.M() == 0 {
		return 0
	}
	return float64(c.Weight()) / float64(c.M())
}

// Overflows returns the number of overflow events observed since creation —
// the §6.2 attack's signature.
func (c *Counting) Overflows() uint64 { return c.overflow }

// EstimatedFPR returns (W/m)^k from the current non-zero pattern.
func (c *Counting) EstimatedFPR() float64 {
	return FPForgeryProbability(c.M(), c.K(), c.Weight())
}

// Family returns the index family.
func (c *Counting) Family() hashes.IndexFamily { return c.fam }

// Policy returns the overflow policy.
func (c *Counting) Policy() OverflowPolicy { return c.policy }

// countingSnapshotHeader is the fixed prefix of a Counting snapshot: width,
// policy, m, n and the overflow count, followed by the packed counter words.
const countingSnapshotHeader = 1 + 1 + 8 + 8 + 8

// MarshalBinary encodes the counter state (width, policy, insertion and
// overflow counts, packed counters). The index family is NOT serialized —
// like a cache digest, a snapshot is only meaningful to a party that already
// knows the filter's public geometry (and, for keyed families, its secret).
func (c *Counting) MarshalBinary() ([]byte, error) {
	out := make([]byte, countingSnapshotHeader+8*len(c.counters.words))
	out[0] = byte(c.counters.width)
	out[1] = byte(c.policy)
	binary.LittleEndian.PutUint64(out[2:], c.counters.m)
	binary.LittleEndian.PutUint64(out[10:], c.n)
	binary.LittleEndian.PutUint64(out[18:], c.overflow)
	for i, w := range c.counters.words {
		binary.LittleEndian.PutUint64(out[countingSnapshotHeader+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary restores state written by MarshalBinary into a filter that
// must already have the same geometry (m and counter width).
func (c *Counting) UnmarshalBinary(data []byte) error {
	if len(data) < countingSnapshotHeader {
		return fmt.Errorf("core: truncated counting snapshot: %d bytes", len(data))
	}
	width, policy := int(data[0]), OverflowPolicy(data[1])
	m := binary.LittleEndian.Uint64(data[2:])
	if width != c.counters.width || m != c.counters.m {
		return fmt.Errorf("core: snapshot geometry (m=%d, width=%d) does not match filter (m=%d, width=%d)",
			m, width, c.counters.m, c.counters.width)
	}
	if policy != Wrap && policy != Saturate {
		return fmt.Errorf("core: snapshot carries invalid overflow policy %d", int(policy))
	}
	if want := countingSnapshotHeader + 8*len(c.counters.words); len(data) != want {
		return fmt.Errorf("core: counting snapshot needs %d bytes, have %d", want, len(data))
	}
	c.policy = policy
	c.n = binary.LittleEndian.Uint64(data[10:])
	c.overflow = binary.LittleEndian.Uint64(data[18:])
	// Atomic in-place stores: a restore runs under the caller's write
	// exclusion, but lock-free readers may be loading these words with no
	// lock at all.
	for i := range c.counters.words {
		atomic.StoreUint64(&c.counters.words[i], binary.LittleEndian.Uint64(data[countingSnapshotHeader+8*i:]))
	}
	return nil
}

// packedCounters stores m counters of `width` bits each, packed into words.
type packedCounters struct {
	width int
	m     uint64
	words []uint64
}

func newPackedCounters(m uint64, width int) (packedCounters, error) {
	if width < 1 || width > 16 {
		return packedCounters{}, fmt.Errorf("core: counter width %d outside [1,16]", width)
	}
	if m == 0 {
		return packedCounters{}, fmt.Errorf("core: zero-size counter array")
	}
	totalBits := m * uint64(width)
	return packedCounters{
		width: width,
		m:     m,
		words: make([]uint64, (totalBits+63)/64),
	}, nil
}

func (p *packedCounters) max() uint64 { return 1<<uint(p.width) - 1 }

// get returns counter i. Counters may straddle a word boundary.
func (p *packedCounters) get(i uint64) uint64 {
	if i >= p.m {
		return 0
	}
	bit := i * uint64(p.width)
	word, off := bit/64, bit%64
	v := p.words[word] >> off
	if off+uint64(p.width) > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	return v & p.max()
}

// set is the plain-write twin of setAtomic, for counters no lock-free
// reader can observe (construction, snapshot restore under all locks).
//
//lint:allow atomicpublish plain-write twin of setAtomic: callers serialize externally with no lock-free readers
func (p *packedCounters) set(i uint64, v uint64) {
	if i >= p.m {
		return
	}
	v &= p.max()
	bit := i * uint64(p.width)
	word, off := bit/64, bit%64
	p.words[word] = p.words[word]&^(p.max()<<off) | v<<off
	if off+uint64(p.width) > 64 {
		rem := off + uint64(p.width) - 64
		loMask := uint64(1)<<rem - 1
		p.words[word+1] = p.words[word+1]&^loMask | v>>(uint64(p.width)-rem)
	}
}

// getAtomic is get with atomic word loads. Torn-free only for widths that
// divide 64 (the counter then lives in one word); a straddling counter is
// read with two loads that a concurrent setAtomic could interleave, which is
// why Counting.AtomicReads gates the lock-free path on the width.
func (p *packedCounters) getAtomic(i uint64) uint64 {
	if i >= p.m {
		return 0
	}
	bit := i * uint64(p.width)
	word, off := bit/64, bit%64
	v := atomic.LoadUint64(&p.words[word]) >> off
	if off+uint64(p.width) > 64 {
		v |= atomic.LoadUint64(&p.words[word+1]) << (64 - off)
	}
	return v & p.max()
}

// setAtomic is set with atomic word stores: the read-modify-write stays a
// plain read (writers are serialized by the caller), only the store racing
// lock-free atomic loads is atomic.
func (p *packedCounters) setAtomic(i uint64, v uint64) {
	if i >= p.m {
		return
	}
	v &= p.max()
	bit := i * uint64(p.width)
	word, off := bit/64, bit%64
	atomic.StoreUint64(&p.words[word], p.words[word]&^(p.max()<<off)|v<<off)
	if off+uint64(p.width) > 64 {
		rem := off + uint64(p.width) - 64
		loMask := uint64(1)<<rem - 1
		atomic.StoreUint64(&p.words[word+1], p.words[word+1]&^loMask|v>>(uint64(p.width)-rem))
	}
}
