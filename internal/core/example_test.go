package core_test

import (
	"fmt"
	"log"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// ExampleNewBloomOptimal builds the paper's Fig 3 filter the way a designer
// would: pick a capacity and an acceptable false-positive probability and
// let equations 2–3 choose the geometry.
func ExampleNewBloomOptimal() {
	// 600 anticipated items at f ≈ 0.077 → m ≈ 3200 bits, k = 4 (the paper
	// rounds eq 3's 3201.6 down; OptimalM rounds up).
	filter, err := core.NewBloomOptimal(600, 0.077, hashes.SHA256, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m=%d bits, k=%d\n", filter.M(), filter.K())

	filter.Add([]byte("http://example.com/a"))
	filter.Add([]byte("http://example.com/b"))
	fmt.Println(filter.Test([]byte("http://example.com/a")))
	fmt.Println(filter.Test([]byte("http://example.com/nope")))
	fmt.Printf("insertions=%d weight=%d\n", filter.Count(), filter.Weight())
	// Output:
	// m=3202 bits, k=4
	// true
	// false
	// insertions=2 weight=8
}
