package core

import (
	"bytes"
	"testing"

	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

func newBlockedFilter(t *testing.T, k int, m uint64) *Blocked {
	t.Helper()
	fam, err := hashes.NewDoubleHashing(k, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlocked(fam)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBlockedRejectsBadGeometry(t *testing.T) {
	for _, m := range []uint64{1, 100, BlockBits - 1, BlockBits + 1, 3 * BlockBits / 2} {
		fam, err := hashes.NewDoubleHashing(4, m, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewBlocked(fam); err == nil {
			t.Errorf("m=%d: expected a geometry error, got none", m)
		}
	}
	if b := newBlockedFilter(t, 4, BlockBits); b.Blocks() != 1 {
		t.Errorf("m=%d: %d blocks, want 1", uint64(BlockBits), b.Blocks())
	}
}

func TestBlockedPositionConfinesToOneBlock(t *testing.T) {
	for _, first := range []uint64{0, 1, 511, 512, 513, 4095, 70000} {
		block := first / BlockBits
		for _, idx := range []uint64{0, 5, 511, 512, 999999} {
			p := BlockedPosition(first, idx)
			if p/BlockBits != block {
				t.Fatalf("BlockedPosition(%d, %d) = %d: outside block %d", first, idx, p, block)
			}
			if idx == first && p != first {
				t.Fatalf("BlockedPosition(%d, %d) = %d, want identity on the first index", first, idx, p)
			}
		}
		if p := BlockedPosition(first, first); p != first {
			t.Fatalf("BlockedPosition(%d, %d) = %d, want identity", first, first, p)
		}
	}
}

func TestBlockedAddTestRoundTrip(t *testing.T) {
	b := newBlockedFilter(t, 4, 16*BlockBits)
	gen := urlgen.New(3)
	items := make([][]byte, 300)
	for i := range items {
		items[i] = gen.Next()
		b.Add(items[i])
	}
	if b.Count() != uint64(len(items)) {
		t.Fatalf("count %d, want %d", b.Count(), len(items))
	}
	for _, it := range items {
		if !b.Test(it) {
			t.Fatalf("added item %q tests negative", it)
		}
	}
	// Every set bit must live inside some item's first-index block — probe
	// the raw storage: set bits may only appear in blocks that received an
	// item. Collect the touched blocks and check the complement is empty.
	touched := map[uint64]bool{}
	scratch := make([]uint64, 0, b.K())
	for _, it := range items {
		idx := b.Family().Indexes(scratch[:0], it)
		touched[idx[0]/BlockBits] = true
	}
	for i := uint64(0); i < b.M(); i++ {
		if b.Occupied(i) && !touched[i/BlockBits] {
			t.Fatalf("bit %d set in untouched block %d", i, i/BlockBits)
		}
	}
}

func TestBlockedAtomicPathsMatchPlain(t *testing.T) {
	plain := newBlockedFilter(t, 5, 8*BlockBits)
	atomicF := newBlockedFilter(t, 5, 8*BlockBits)
	gen := urlgen.New(9)
	scratch := make([]uint64, 0, plain.K())
	for i := 0; i < 200; i++ {
		it := gen.Next()
		idx := plain.Family().Indexes(scratch[:0], it)
		if p, a := plain.AddIndexes(idx), atomicF.AddIndexesAtomic(idx); p != a {
			t.Fatalf("AddIndexes fresh=%d, AddIndexesAtomic fresh=%d for %q", p, a, it)
		}
		if p, a := plain.TestIndexes(idx), atomicF.TestIndexesAtomic(idx); p != a {
			t.Fatalf("TestIndexes=%v, TestIndexesAtomic=%v for %q", p, a, it)
		}
	}
	if plain.Weight() != atomicF.Weight() {
		t.Fatalf("weights diverge: plain %d, atomic %d", plain.Weight(), atomicF.Weight())
	}
}

func TestBlockedSnapshotRoundTrip(t *testing.T) {
	a := newBlockedFilter(t, 4, 16*BlockBits)
	gen := urlgen.New(5)
	items := make([][]byte, 400)
	for i := range items {
		items[i] = gen.Next()
		a.Add(items[i])
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b := newBlockedFilter(t, 4, 16*BlockBits)
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	again, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Error("restored filter re-serializes differently")
	}
	if a.Count() != b.Count() || a.Weight() != b.Weight() {
		t.Errorf("state diverges: count %d/%d, weight %d/%d", a.Count(), b.Count(), a.Weight(), b.Weight())
	}
	for _, it := range items {
		if !b.Test(it) {
			t.Fatalf("restored filter lost %q", it)
		}
	}

	// Geometry mismatch must be refused, and refusal must leave the target
	// untouched (restore validates before it stores).
	other := newBlockedFilter(t, 4, 8*BlockBits)
	other.Add([]byte("sentinel"))
	w := other.Weight()
	if err := other.UnmarshalBinary(blob); err == nil {
		t.Fatal("geometry-mismatched snapshot accepted")
	}
	if other.Weight() != w || !other.Test([]byte("sentinel")) {
		t.Fatal("failed restore disturbed the target filter")
	}
	if err := other.UnmarshalBinary(blob[:4]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestBlockedOccupancyBitsIsPrivateCopy(t *testing.T) {
	b := newBlockedFilter(t, 4, 4*BlockBits)
	b.Add([]byte("x"))
	bits := b.OccupancyBits()
	if bits.Weight() != b.Weight() {
		t.Fatalf("occupancy weight %d, filter weight %d", bits.Weight(), b.Weight())
	}
	bits.SetAll()
	if b.Weight() == b.M() {
		t.Fatal("mutating the occupancy copy leaked into the filter")
	}
}
