package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"evilbloom/internal/hashes"
)

func TestPyBloomAlgorithmChoice(t *testing.T) {
	cases := []struct {
		k    int
		want hashes.Algorithm
	}{
		{1, hashes.MD5},    // 32 bits
		{4, hashes.MD5},    // 128 bits
		{5, hashes.SHA1},   // 160 bits
		{8, hashes.SHA256}, // 256
		{10, hashes.SHA384},
		{13, hashes.SHA512},
		{20, hashes.SHA512},
	}
	for _, c := range cases {
		if got := PyBloomAlgorithm(c.k); got != c.want {
			t.Errorf("PyBloomAlgorithm(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestNewPyBloomGeometry(t *testing.T) {
	// capacity 10^6, f = 2^-10 → k = 10 slices of ≈1.44·10^6/... bits:
	// sliceBits = n·|ln f|/(k·(ln2)²) = 10^6·6.931/(10·0.4805) ≈ 1442695.
	p, err := NewPyBloom(1000000, math.Pow(2, -10))
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 10 {
		t.Errorf("K = %d, want 10", p.K())
	}
	if p.SliceBits() < 1442000 || p.SliceBits() > 1443500 {
		t.Errorf("SliceBits = %d, want ≈1442695", p.SliceBits())
	}
	if p.M() != uint64(p.K())*p.SliceBits() {
		t.Errorf("M = %d, want k·s", p.M())
	}
	if p.Algorithm() != hashes.SHA384 {
		t.Errorf("Algorithm = %v, want SHA-384 (320 bits needed)", p.Algorithm())
	}
}

func TestNewPyBloomValidation(t *testing.T) {
	if _, err := NewPyBloom(0, 0.01); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewPyBloom(100, 0); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := NewPartitioned(0, 100, hashes.MD5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewPartitioned(4, 0, hashes.MD5); err == nil {
		t.Error("sliceBits=0 accepted")
	}
}

func TestPartitionedNoFalseNegatives(t *testing.T) {
	p, err := NewPyBloom(1000, 1.0/32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p.Add([]byte(fmt.Sprintf("http://site-%d.test/", i)))
	}
	for i := 0; i < 1000; i++ {
		if !p.Test([]byte(fmt.Sprintf("http://site-%d.test/", i))) {
			t.Fatalf("false negative for item %d", i)
		}
	}
	if p.Count() != 1000 {
		t.Errorf("Count = %d", p.Count())
	}
}

func TestPartitionedEmpiricalFPR(t *testing.T) {
	const capacity = 2000
	target := 1.0 / 32
	p, err := NewPyBloom(capacity, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < capacity; i++ {
		p.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if p.Test([]byte(fmt.Sprintf("probe-%d", i))) {
			fp++
		}
	}
	got := float64(fp) / probes
	if got > target*1.5 {
		t.Errorf("empirical FPR = %v, want ≤ %v", got, target*1.5)
	}
	if est := p.EstimatedFPR(); math.Abs(est-got) > target {
		t.Errorf("EstimatedFPR = %v, empirical = %v", est, got)
	}
}

func TestPartitionedIndexesPerSlice(t *testing.T) {
	p, err := NewPartitioned(6, 1000, hashes.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	idx := p.Indexes(nil, []byte("x"))
	if len(idx) != 6 {
		t.Fatalf("got %d indexes", len(idx))
	}
	for i, v := range idx {
		if v >= 1000 {
			t.Errorf("index %d = %d out of slice range", i, v)
		}
	}
	// OccupiedAt view matches inserted bits.
	p.AddIndexes(idx)
	for i, v := range idx {
		if !p.OccupiedAt(i, v) {
			t.Errorf("slice %d bit %d not set", i, v)
		}
	}
}

func TestPartitionedAddIndexesFresh(t *testing.T) {
	p, err := NewPartitioned(3, 100, hashes.MD5)
	if err != nil {
		t.Fatal(err)
	}
	if fresh := p.AddIndexes([]uint64{1, 2, 3}); fresh != 3 {
		t.Errorf("fresh = %d, want 3", fresh)
	}
	// Same index value in a different slice is a different bit.
	if fresh := p.AddIndexes([]uint64{2, 2, 2}); fresh != 2 {
		t.Errorf("fresh = %d, want 2 (slice 1 already has bit 2)", fresh)
	}
	if p.Weight() != 5 {
		t.Errorf("Weight = %d, want 5", p.Weight())
	}
	if p.Fill() != 5.0/300 {
		t.Errorf("Fill = %v", p.Fill())
	}
}

// Property: no false negatives for arbitrary byte items.
func TestPartitionedNoFalseNegativesProperty(t *testing.T) {
	p, err := NewPyBloom(5000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f := func(items [][]byte) bool {
		for _, it := range items {
			p.Add(it)
		}
		for _, it := range items {
			if !p.Test(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
