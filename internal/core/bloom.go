package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"evilbloom/internal/bitset"
	"evilbloom/internal/hashes"
)

// Filter is the set-membership interface shared by every variant.
type Filter interface {
	// Add inserts item into the filter.
	Add(item []byte)
	// Test reports whether item may be in the filter (false positives are
	// possible; false negatives are not, except for damaged counting filters).
	Test(item []byte) bool
	// Count returns the number of insertions performed.
	Count() uint64
}

// Bloom is the classic filter of §3: an m-bit vector and k hash functions
// supplied by an IndexFamily. Not safe for concurrent use; wrap in Synced.
type Bloom struct {
	bits    *bitset.BitSet
	fam     hashes.IndexFamily
	n       uint64
	scratch []uint64
}

var _ Filter = (*Bloom)(nil)

// NewBloom builds a filter over the family's (m, k) geometry.
func NewBloom(fam hashes.IndexFamily) *Bloom {
	return &Bloom{
		bits:    bitset.New(fam.M()),
		fam:     fam,
		scratch: make([]uint64, 0, fam.K()),
	}
}

// NewBloomOptimal sizes a classic filter for capacity items at target
// false-positive probability f (eq 2–3) using salted digests of alg.
func NewBloomOptimal(capacity uint64, f float64, alg hashes.Algorithm, key []byte) (*Bloom, error) {
	m := OptimalM(capacity, f)
	if m == 0 {
		return nil, fmt.Errorf("core: invalid capacity %d or false-positive target %v", capacity, f)
	}
	k := KForFPR(f)
	d, err := hashes.NewDigester(alg, key)
	if err != nil {
		return nil, err
	}
	fam, err := hashes.NewSalted(d, k, m)
	if err != nil {
		return nil, err
	}
	return NewBloom(fam), nil
}

// Add implements Filter.
func (b *Bloom) Add(item []byte) {
	b.scratch = b.fam.Indexes(b.scratch[:0], item)
	b.AddIndexes(b.scratch)
}

// AddIndexes inserts a pre-computed index set and returns the number of
// previously-unset bits it set. Chosen-insertion adversaries drive the
// filter through this to account for exactly which bits their forged items
// touch.
func (b *Bloom) AddIndexes(idx []uint64) int {
	fresh := 0
	for _, i := range idx {
		if b.bits.Set(i) {
			fresh++
		}
	}
	b.n++
	return fresh
}

// AddIndexesAtomic is AddIndexes with atomic bit stores: for callers that
// serialize writers under a lock but serve TestIndexesAtomic readers with no
// lock at all. The insertion count is not read on that lock-free path, so it
// stays a plain increment under the writer's lock.
func (b *Bloom) AddIndexesAtomic(idx []uint64) int {
	fresh := 0
	for _, i := range idx {
		if b.bits.SetAtomic(i) {
			fresh++
		}
	}
	b.n++
	return fresh
}

// Test implements Filter.
func (b *Bloom) Test(item []byte) bool {
	b.scratch = b.fam.Indexes(b.scratch[:0], item)
	return b.TestIndexes(b.scratch)
}

// TestIndexes reports whether every index in idx is set.
func (b *Bloom) TestIndexes(idx []uint64) bool {
	for _, i := range idx {
		if !b.bits.Test(i) {
			return false
		}
	}
	return true
}

// TestIndexesAtomic is TestIndexes with atomic bit loads — callable with no
// lock held while a serialized writer mutates through the atomic paths.
func (b *Bloom) TestIndexesAtomic(idx []uint64) bool {
	for _, i := range idx {
		if !b.bits.TestAtomic(i) {
			return false
		}
	}
	return true
}

// Count implements Filter.
func (b *Bloom) Count() uint64 { return b.n }

// M returns the filter size in bits.
func (b *Bloom) M() uint64 { return b.fam.M() }

// K returns the number of hash functions.
func (b *Bloom) K() int { return b.fam.K() }

// Weight returns the Hamming weight w_H(z).
func (b *Bloom) Weight() uint64 { return b.bits.Weight() }

// Fill returns W/m.
func (b *Bloom) Fill() float64 { return b.bits.Fill() }

// EstimatedFPR returns (W/m)^k, the probability that a uniformly random
// query is a false positive given the current bit pattern.
func (b *Bloom) EstimatedFPR() float64 {
	return FPForgeryProbability(b.M(), b.K(), b.Weight())
}

// Occupied reports whether bit i is set — the adversary's per-position view
// of a known filter (§4).
func (b *Bloom) Occupied(i uint64) bool { return b.bits.Test(i) }

// Bits exposes a read-only snapshot view of the underlying bit vector. The
// query-only adversary of §4.2 is assumed to know it. Callers must not
// mutate filter state through it; use Clone for a private copy.
func (b *Bloom) Bits() *bitset.BitSet { return b.bits }

// OccupancyBits returns a private copy of the occupancy pattern — the bit
// vector a Squid-style cache digest of this filter consists of. For a plain
// Bloom filter the digest IS the filter, so this is simply a clone of the
// bits; the counting variant projects its counters down to the same shape.
func (b *Bloom) OccupancyBits() *bitset.BitSet { return b.bits.Clone() }

// Family returns the index family (public knowledge in the threat model:
// "the implementation of the Bloom filter is public and known").
func (b *Bloom) Family() hashes.IndexFamily { return b.fam }

// Clone returns an independent deep copy sharing no state.
func (b *Bloom) Clone() *Bloom {
	return &Bloom{
		bits:    b.bits.Clone(),
		fam:     b.fam.Clone(),
		n:       b.n,
		scratch: make([]uint64, 0, b.fam.K()),
	}
}

// Reset clears all bits and the insertion count.
func (b *Bloom) Reset() {
	b.bits.Reset()
	b.n = 0
}

// MarshalBinary encodes the filter state (insertion count plus the bit
// vector). Like the Counting snapshot, the index family is NOT serialized —
// a snapshot is only meaningful to a party that already knows the filter's
// public geometry (and, for keyed families, its secret).
func (b *Bloom) MarshalBinary() ([]byte, error) {
	bits, err := b.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(bits))
	binary.LittleEndian.PutUint64(out, b.n)
	return append(out, bits...), nil
}

// UnmarshalBinary restores state written by MarshalBinary into a filter that
// must already have the same geometry (m). The filter is only modified on
// success. The existing bit vector is overwritten in place with atomic word
// stores rather than swapped for a new allocation: lock-free readers hold a
// reference to the vector, so its identity must survive a restore.
func (b *Bloom) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("core: truncated bloom snapshot: %d bytes", len(data))
	}
	bits := bitset.New(0)
	if err := bits.UnmarshalBinary(data[8:]); err != nil {
		return err
	}
	if bits.Size() != b.fam.M() {
		return fmt.Errorf("core: snapshot geometry (m=%d) does not match filter (m=%d)", bits.Size(), b.fam.M())
	}
	b.n = binary.LittleEndian.Uint64(data)
	return b.bits.StoreFrom(bits)
}

// Synced wraps a Filter with a mutex for concurrent use (the crawler's dedup
// filter is shared between worker goroutines).
type Synced struct {
	mu    sync.Mutex
	inner Filter
}

var _ Filter = (*Synced)(nil)

// NewSynced wraps inner. The wrapper owns inner afterwards.
func NewSynced(inner Filter) *Synced {
	return &Synced{inner: inner}
}

// Add implements Filter.
func (s *Synced) Add(item []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Add(item)
}

// Test implements Filter.
func (s *Synced) Test(item []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Test(item)
}

// Count implements Filter.
func (s *Synced) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Count()
}
