package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"evilbloom/internal/hashes"
)

// ---------------------------------------------------------------------------
// TwoChoice (Lumetta–Mitzenmacher).

func newTwoChoice(t testing.TB, k int, m uint64) *TwoChoice {
	t.Helper()
	tc, err := NewTwoChoiceMurmur(k, m, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestTwoChoiceValidation(t *testing.T) {
	if _, err := NewTwoChoiceMurmur(4, 1000, 7, 7); err == nil {
		t.Error("equal seeds accepted")
	}
	a, err := hashes.NewDoubleHashing(4, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hashes.NewDoubleHashing(4, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTwoChoice(a, b); err == nil {
		t.Error("mismatched geometry accepted")
	}
}

func TestTwoChoiceNoFalseNegatives(t *testing.T) {
	tc := newTwoChoice(t, 4, 3200)
	items := make([][]byte, 400)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("item-%d", i))
		tc.Add(items[i])
	}
	for _, it := range items {
		if !tc.Test(it) {
			t.Fatalf("false negative for %q", it)
		}
	}
	if tc.Count() != 400 {
		t.Errorf("Count = %d", tc.Count())
	}
}

// The headline of Lumetta–Mitzenmacher: two choices set fewer bits than one.
func TestTwoChoiceSetsFewerBits(t *testing.T) {
	const m, k, n = 3200, 4, 600
	tc := newTwoChoice(t, k, m)
	fam, err := hashes.NewDoubleHashing(k, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	classic := NewBloom(fam)
	for i := 0; i < n; i++ {
		item := []byte(fmt.Sprintf("item-%d", i))
		tc.Add(item)
		classic.Add(item)
	}
	if tc.Weight() >= classic.Weight() {
		t.Errorf("two-choice weight %d not below classic %d", tc.Weight(), classic.Weight())
	}
}

// The adversarial flip side (conclusion of the paper): the query-only
// forger's success roughly doubles because either group may match.
func TestTwoChoiceDoublesForgerySurface(t *testing.T) {
	const m, k, n = 3200, 4, 600
	tc := newTwoChoice(t, k, m)
	for i := 0; i < n; i++ {
		tc.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	w := tc.Weight()
	single := FPForgeryProbability(m, k, w)
	hits := 0
	const probes = 400000
	for i := 0; i < probes; i++ {
		if tc.Test([]byte(fmt.Sprintf("probe-%d", i))) {
			hits++
		}
	}
	got := float64(hits) / probes
	want := 2*single - single*single
	if math.Abs(got-want) > want/3 {
		t.Errorf("two-choice FPR = %v, want ≈ 2p−p² = %v (single group p = %v)", got, want, single)
	}
	if est := tc.EstimatedFPR(); math.Abs(est-want) > 1e-12 {
		t.Errorf("EstimatedFPR = %v, want %v", est, want)
	}
}

// Chosen-insertion against TwoChoice: the adversary crafts items where both
// groups are fully fresh, so the "min fresh" defence changes nothing —
// weight still grows by k per item.
func TestTwoChoicePollutionUnimpeded(t *testing.T) {
	const m, k = 3200, 4
	tc := newTwoChoice(t, k, m)
	famA, famB := tc.Families()
	fa, fb := famA.Clone(), famB.Clone()
	var idxA, idxB []uint64
	crafted := 0
	for serial := 0; crafted < 100; serial++ {
		item := []byte(fmt.Sprintf("crafted-%d", serial))
		idxA = fa.Indexes(idxA[:0], item)
		idxB = fb.Indexes(idxB[:0], item)
		if !allFreshDistinct(tc, idxA) || !allFreshDistinct(tc, idxB) {
			continue
		}
		before := tc.Weight()
		tc.Add(item)
		if tc.Weight()-before != k {
			t.Fatalf("crafted insert %d set %d bits, want %d", crafted, tc.Weight()-before, k)
		}
		crafted++
	}
}

func allFreshDistinct(tc *TwoChoice, idx []uint64) bool {
	for i, x := range idx {
		if tc.Occupied(x) {
			return false
		}
		for j := 0; j < i; j++ {
			if idx[j] == x {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Nyberg accumulator.

func TestNybergValidation(t *testing.T) {
	if _, err := NewNyberg(0, 4); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewNyberg(10, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewNyberg(10, 33); err == nil {
		t.Error("d=33 accepted")
	}
	if _, err := NewNybergForCapacity(0, 0.01); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewNybergForCapacity(100, 0); err == nil {
		t.Error("f=0 accepted")
	}
}

func TestNybergNoFalseNegatives(t *testing.T) {
	a, err := NewNybergForCapacity(200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	items := make([][]byte, 200)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("item-%d", i))
		a.Add(items[i])
	}
	for _, it := range items {
		if !a.Test(it) {
			t.Fatalf("false negative for %q", it)
		}
	}
	if a.Count() != 200 {
		t.Errorf("Count = %d", a.Count())
	}
}

func TestNybergEmpiricalFPR(t *testing.T) {
	const n = 200
	target := 0.02
	a, err := NewNybergForCapacity(n, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	const probes = 3000
	for i := 0; i < probes; i++ {
		if a.Test([]byte(fmt.Sprintf("stranger-%d", i))) {
			fp++
		}
	}
	got := float64(fp) / probes
	if got > target*3 {
		t.Errorf("empirical FPR = %v, want ≲ %v", got, target)
	}
	if est := a.EstimatedFPR(); math.Abs(est-got) > 0.05 {
		t.Errorf("EstimatedFPR = %v vs empirical %v", est, got)
	}
}

// §9's claim: the accumulator is bigger than a Bloom filter (the log n
// price) and consumes enormously more hash material per operation.
func TestNybergSizeAndCostPenalty(t *testing.T) {
	const n = 1000
	f := 0.01
	a, err := NewNybergForCapacity(n, f)
	if err != nil {
		t.Fatal(err)
	}
	bloomBits := OptimalM(n, f)
	if a.M() <= bloomBits {
		t.Errorf("nyberg cells %d not above bloom bits %d", a.M(), bloomBits)
	}
	// Hash bits per operation: Bloom with recycling needs k·⌈log₂m⌉ ≈ 100;
	// the accumulator needs m·d — four orders of magnitude more.
	bloomHashBits := uint64(hashes.RequiredBits(KForFPR(f), bloomBits))
	if a.HashBitsPerOperation() < bloomHashBits*100 {
		t.Errorf("nyberg hash bits %d not ≫ bloom %d", a.HashBitsPerOperation(), bloomHashBits)
	}
}

// §9's security claim: brute-force false-positive forgery against the
// accumulator stalls where the Bloom filter yields — the adversary gains
// nothing over the baseline FPR because patterns derive from full digests.
func TestNybergResistsForgeryShortcut(t *testing.T) {
	const n = 100
	a, err := NewNybergForCapacity(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	// The best generic attack is random search; success per candidate must
	// match the baseline FPR (no structural shortcut exists — compare the
	// Bloom filter, where knowing supp(z) lifts success to (W/m)^k ≫ f and
	// inversion makes it free).
	hits := 0
	const tries = 2000
	for i := 0; i < tries; i++ {
		if a.Test([]byte(fmt.Sprintf("forgery-%d", i))) {
			hits++
		}
	}
	rate := float64(hits) / tries
	if rate > 5*a.EstimatedFPR()+0.01 {
		t.Errorf("random forgery rate %v far above baseline %v", rate, a.EstimatedFPR())
	}
}

// Property: accumulator membership is monotone — adding items never
// removes anyone.
func TestNybergMonotoneProperty(t *testing.T) {
	a, err := NewNyberg(512, 6)
	if err != nil {
		t.Fatal(err)
	}
	f := func(items [][]byte) bool {
		for _, it := range items {
			a.Add(it)
			if !a.Test(it) {
				return false
			}
		}
		for _, it := range items {
			if !a.Test(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTwoChoiceAdd(b *testing.B) {
	tc, err := NewTwoChoiceMurmur(7, 1<<24, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	item := []byte("http://example.com/page")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.Add(item)
	}
}

func BenchmarkNybergTest(b *testing.B) {
	a, err := NewNybergForCapacity(1000, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	a.Add([]byte("member"))
	item := []byte("http://example.com/page")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Test(item)
	}
}
