package core

import (
	"math"
)

// Ln2Sq is (ln 2)², the constant of the classic sizing rule m = n·|ln f|/(ln 2)².
var Ln2Sq = math.Ln2 * math.Ln2

// FPR returns the standard approximate false-positive probability of eq (1):
// f ≈ (1 − e^(−kn/m))^k, after n random insertions into an m-bit filter
// using k hash functions.
func FPR(m, n uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// FPRExact returns the un-approximated form (1 − (1 − 1/m)^(kn))^k.
func FPRExact(m, n uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 1
	}
	// (1-1/m)^(kn) = exp(kn·ln(1-1/m)); Log1p keeps precision for large m.
	p := math.Exp(float64(k) * float64(n) * math.Log1p(-1/float64(m)))
	return math.Pow(1-p, float64(k))
}

// AdversarialFPR returns eq (7): f_adv = (nk/m)^k, the false-positive
// probability after n chosen insertions that each set k previously-unset
// bits. Saturation (nk ≥ m) yields 1.
func AdversarialFPR(m, n uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 1
	}
	frac := float64(n) * float64(k) / float64(m)
	if frac >= 1 {
		return 1
	}
	return math.Pow(frac, float64(k))
}

// OptimalK returns eq (2): k_opt = (m/n)·ln 2, the real-valued number of hash
// functions minimizing the average-case false-positive probability.
func OptimalK(m, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(m) / float64(n) * math.Ln2
}

// OptimalKInt returns k_opt rounded to the nearest usable integer (≥1).
func OptimalKInt(m, n uint64) int {
	k := int(math.Round(OptimalK(m, n)))
	if k < 1 {
		k = 1
	}
	return k
}

// OptimalFPR returns eq (3): ln f_opt = −(m/n)(ln 2)², the false-positive
// probability at the optimal k.
func OptimalFPR(m, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return math.Exp(-float64(m) / float64(n) * Ln2Sq)
}

// OptimalM returns the filter size for n items at target false-positive
// probability f under optimal k: m = n·|ln f|/(ln 2)², rounded up.
func OptimalM(n uint64, f float64) uint64 {
	if f <= 0 || f >= 1 || n == 0 {
		return 0
	}
	return uint64(math.Ceil(float64(n) * -math.Log(f) / Ln2Sq))
}

// KForFPR returns the optimal integer k for a target false-positive
// probability under optimal sizing: k = ⌈log₂(1/f)⌉ (pyBloom's choice).
func KForFPR(f float64) int {
	if f <= 0 || f >= 1 {
		return 1
	}
	k := int(math.Ceil(-math.Log2(f)))
	if k < 1 {
		k = 1
	}
	return k
}

// WorstCaseK returns eq (9): k_adv_opt = m/(e·n), the number of hash
// functions minimizing the adversary's achievable false-positive probability
// (§8.1) rather than the honest one.
func WorstCaseK(m, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(m) / (math.E * float64(n))
}

// WorstCaseKInt returns k_adv_opt rounded to the nearest usable integer (≥1).
func WorstCaseKInt(m, n uint64) int {
	k := int(math.Round(WorstCaseK(m, n)))
	if k < 1 {
		k = 1
	}
	return k
}

// WorstCaseAdvFPR returns eq (10): f_adv_opt = e^(−m/(e·n)), the adversarial
// false-positive probability when the filter uses k = k_adv_opt.
func WorstCaseAdvFPR(m, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return math.Exp(-float64(m) / (math.E * float64(n)))
}

// WorstCaseHonestFPR returns eq (11)/(12): the honest (uniform-input)
// false-positive probability when k = k_adv_opt is deployed:
// f = (1 − e^(−1/e))^(m/(n·e)), i.e. ln f = −0.433·m/n.
func WorstCaseHonestFPR(m, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-1/math.E), float64(m)/(float64(n)*math.E))
}

// PaperSizeFactor is the m′/m ≈ 4.8 figure the paper states in §8.1 when
// comparing the worst-case design against a classically-sized filter at the
// same false-positive probability. Note that solving eq (12) against eq (3)
// directly yields 0.433/(ln 2)² ≈ 0.90 (see SizeFactorSameHonestFPR); the
// paper's 4.8 corresponds to 1/(0.433·(ln 2)²), i.e. the reciprocal pairing.
// Both are exposed so EXPERIMENTS.md can report the discrepancy.
const PaperSizeFactor = 4.8

// SizeFactorSameHonestFPR returns m′/m such that a classically-designed
// filter (eq 2–3) reaches the same honest false-positive probability as the
// worst-case design of eq (9): solving −(m′/n)(ln 2)² = −0.433·m/n gives
// m′/m = 0.433/(ln 2)² ≈ 0.90.
func SizeFactorSameHonestFPR() float64 {
	// ln f_adv = −0.433·m/n must equal −(m′/n)(ln 2)² ⇒ m′/m = 0.433/(ln 2)².
	return -math.Log(1-math.Exp(-1/math.E)) / math.E / Ln2Sq
}

// SizeFactorPaperReading returns 1/(0.433·(ln 2)²) ≈ 4.8, the closed form
// that reproduces the paper's stated factor of "almost 5".
func SizeFactorPaperReading() float64 {
	return 1 / (-math.Log(1-math.Exp(-1/math.E)) / math.E * Ln2Sq)
}

// KRatio returns k_opt/k_adv_opt = e·ln 2 ≈ 1.88 (§8.1).
func KRatio() float64 { return math.E * math.Ln2 }

// ExpectedZeros returns eq (4): E(X) = m·p with p = (1 − 1/m)^(kn), the
// expected number of unset bits after n uniform insertions.
func ExpectedZeros(m, n uint64, k int) float64 {
	if m == 0 {
		return 0
	}
	p := math.Exp(float64(k) * float64(n) * math.Log1p(-1/float64(m)))
	return float64(m) * p
}

// ExpectedWeight returns m − E(X): the expected Hamming weight after n
// uniform insertions.
func ExpectedWeight(m, n uint64, k int) float64 {
	return float64(m) - ExpectedZeros(m, n, k)
}

// ConcentrationBound returns eq (5), the Azuma–Hoeffding tail
// P(|X − mp| ≥ εm) ≤ 2·e^(−2m²ε²/(nk)): the fraction of zeros is extremely
// concentrated, so adversarial deviations are detectable (§8).
func ConcentrationBound(m, n uint64, k int, eps float64) float64 {
	if n == 0 || k <= 0 {
		return 0
	}
	b := 2 * math.Exp(-2*float64(m)*float64(m)*eps*eps/(float64(n)*float64(k)))
	if b > 1 {
		return 1
	}
	return b
}

// SaturationRandomItems returns ⌊m·ln(m)/k⌋: the expected number of uniform
// insertions needed to saturate the filter (coupon collector, k coupons per
// draw, §4.1).
func SaturationRandomItems(m uint64, k int) uint64 {
	if m == 0 || k <= 0 {
		return 0
	}
	return uint64(float64(m) * math.Log(float64(m)) / float64(k))
}

// SaturationAdversarialItems returns ⌊m/k⌋: the chosen insertions needed to
// saturate — a log(m) factor cheaper than honest traffic (§4.1).
func SaturationAdversarialItems(m uint64, k int) uint64 {
	if k <= 0 {
		return 0
	}
	return m / uint64(k)
}

// PollutionProbability returns the probability that a uniformly random item
// sets k previously-unset, pairwise-distinct bits when the filter has
// Hamming weight W: the k ordered uniform indexes must land on distinct free
// positions, i.e. (m−W)(m−W−1)…(m−W−k+1)/m^k. Table 1 prints this entry as
// C(m−W,k)/m^k, which omits the k! orderings of the index tuple; the Monte-
// Carlo tests confirm the ordered form (see PollutionProbabilityPaper for
// the literal one). Computed in log space so huge filters do not overflow.
func PollutionProbability(m uint64, k int, w uint64) float64 {
	if m == 0 || k <= 0 || w > m {
		return 0
	}
	free := m - w
	if uint64(k) > free {
		return 0
	}
	var ln float64
	for i := 0; i < k; i++ {
		ln += math.Log(float64(free-uint64(i))) - math.Log(float64(m))
	}
	return math.Exp(ln)
}

// PollutionProbabilityPaper evaluates Table 1's pollution row exactly as
// printed: C(m−W, k)/m^k — smaller than the true success probability by k!
// because it counts unordered index sets against an ordered sample space.
func PollutionProbabilityPaper(m uint64, k int, w uint64) float64 {
	if m == 0 || k <= 0 || w > m {
		return 0
	}
	free := m - w
	if uint64(k) > free {
		return 0
	}
	var ln float64
	for i := 0; i < k; i++ {
		ln += math.Log(float64(free - uint64(i)))
		ln -= math.Log(float64(i + 1))
		ln -= math.Log(float64(m))
	}
	return math.Exp(ln)
}

// FPForgeryProbability returns Table 1's forgery entry: (W/m)^k — the
// probability that a uniformly random item is a false positive against a
// filter of Hamming weight W (eq 8's success rate).
func FPForgeryProbability(m uint64, k int, w uint64) float64 {
	if m == 0 || k <= 0 {
		return 0
	}
	return math.Pow(float64(w)/float64(m), float64(k))
}

// SecondPreimageBloomProbability returns Table 1's "second pre-image
// (Bloom)" entry 1/m^k: the chance a random item reproduces a specific index
// set I_y.
func SecondPreimageBloomProbability(m uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 0
	}
	return math.Exp(-float64(k) * math.Log(float64(m)))
}

// DeletionProbability returns the probability that a uniformly random item
// shares at least one index with a target item whose k indexes are distinct:
// 1 − (1 − k/m)^k. This is the exact form of Table 1's deletion entry (the
// paper prints the union bound Σ C(k,i)(m−i)^k/m^k; see
// DeletionProbabilityPaper).
func DeletionProbability(m uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 0
	}
	if uint64(k) >= m {
		return 1
	}
	return 1 - math.Pow(1-float64(k)/float64(m), float64(k))
}

// DeletionProbabilityPaper evaluates Table 1's deletion row exactly as
// printed: Σ_{i=1..k} C(k,i)·(m−i)^k / m^k. The printed expression is a
// (loose) inclusion–exclusion expansion without alternating signs and can
// exceed 1; it is provided for fidelity with the paper, capped at 1 when
// reported as a probability.
func DeletionProbabilityPaper(m uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 0
	}
	var sum float64
	choose := 1.0
	for i := 1; i <= k; i++ {
		choose = choose * float64(k-i+1) / float64(i)
		sum += choose * math.Exp(float64(k)*(math.Log(float64(m)-float64(i))-math.Log(float64(m))))
	}
	return sum
}
