package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"evilbloom/internal/hashes"
)

func newTestCounting(t *testing.T, k int, m uint64, width int, policy OverflowPolicy) *Counting {
	t.Helper()
	fam, err := hashes.NewDoubleHashing(k, m, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounting(fam, width, policy)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCountingAddTestRemove(t *testing.T) {
	c := newTestCounting(t, 4, 4096, 4, Wrap)
	items := make([][]byte, 100)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("url-%d", i))
		c.Add(items[i])
	}
	for _, it := range items {
		if !c.Test(it) {
			t.Fatalf("false negative for %q", it)
		}
	}
	// Removing an inserted item makes it disappear (no other collisions at
	// this load, overwhelmingly likely with fixed seed).
	if err := c.Remove(items[0]); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if c.Test(items[0]) && c.Counter(0) == 0 {
		t.Log("item still visible after removal due to collisions (acceptable)")
	}
	if c.Count() != 99 {
		t.Errorf("Count = %d, want 99", c.Count())
	}
}

func TestCountingRemoveAbsentErrors(t *testing.T) {
	c := newTestCounting(t, 4, 4096, 4, Wrap)
	if err := c.Remove([]byte("never inserted")); err == nil {
		t.Error("removing an absent item succeeded")
	}
}

func TestCountingValidation(t *testing.T) {
	fam, err := hashes.NewDoubleHashing(4, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCounting(fam, 0, Wrap); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewCounting(fam, 17, Wrap); err == nil {
		t.Error("width 17 accepted")
	}
	if _, err := NewCounting(fam, 4, OverflowPolicy(0)); err == nil {
		t.Error("invalid policy accepted")
	}
}

// §6.2: 4-bit counters wrap after 16 increments, erasing membership — the
// overflow attack's mechanism.
func TestCountingOverflowWrap(t *testing.T) {
	c := newTestCounting(t, 2, 64, 4, Wrap)
	item := []byte("hot item")
	for i := 0; i < 15; i++ {
		c.Add(item)
	}
	if !c.Test(item) {
		t.Fatal("item vanished before overflow")
	}
	if c.Overflows() != 0 {
		t.Fatalf("premature overflow count %d", c.Overflows())
	}
	c.Add(item) // 16th increment wraps both counters to 0
	if c.Test(item) {
		t.Error("wrapped counters still report membership")
	}
	if c.Overflows() != 2 {
		t.Errorf("Overflows = %d, want 2", c.Overflows())
	}
}

func TestCountingOverflowSaturate(t *testing.T) {
	c := newTestCounting(t, 2, 64, 4, Saturate)
	item := []byte("hot item")
	for i := 0; i < 40; i++ {
		c.Add(item)
	}
	if !c.Test(item) {
		t.Error("saturating counters lost membership")
	}
	if c.Overflows() == 0 {
		t.Error("saturation events not counted")
	}
	// Pinned counters are not decremented: removing repeatedly never drives
	// them to zero.
	for i := 0; i < 40; i++ {
		if err := c.Remove(item); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}
	if !c.Test(item) {
		t.Error("pinned counters were decremented to zero")
	}
}

// The deletion adversary of §4.3: removing a crafted colliding item creates
// a false negative for the victim.
func TestCountingDeletionCreatesFalseNegative(t *testing.T) {
	c := newTestCounting(t, 4, 4096, 4, Wrap)
	victim := []byte("http://honest.example.com/")
	c.Add(victim)
	victimIdx := c.Family().Clone().Indexes(nil, victim)
	// The adversary "removes" an item with the same index set (a Bloom
	// second pre-image) without it ever being inserted.
	zeroed, err := c.RemoveIndexes(victimIdx)
	if err != nil {
		t.Fatalf("RemoveIndexes: %v", err)
	}
	if zeroed != len(victimIdx) {
		t.Errorf("zeroed %d counters, want %d (victim stood alone)", zeroed, len(victimIdx))
	}
	if c.Test(victim) {
		t.Error("victim still present after adversarial deletion")
	}
}

// A snapshot must round-trip counters, counts and the overflow tally into a
// same-geometry filter, and refuse a mismatched one.
func TestCountingSnapshotRoundTrip(t *testing.T) {
	c := newTestCounting(t, 4, 512, 4, Saturate)
	gen := func(i int) []byte { return []byte(fmt.Sprintf("http://a.example/%d", i)) }
	for i := 0; i < 300; i++ {
		c.Add(gen(i))
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := newTestCounting(t, 4, 512, 4, Wrap) // policy comes from the snapshot
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != c.Count() || restored.Weight() != c.Weight() || restored.Overflows() != c.Overflows() {
		t.Errorf("restored (n=%d w=%d o=%d) != original (n=%d w=%d o=%d)",
			restored.Count(), restored.Weight(), restored.Overflows(), c.Count(), c.Weight(), c.Overflows())
	}
	for i := 0; i < 300; i++ {
		if !restored.Test(gen(i)) {
			t.Fatalf("item %d lost through the snapshot", i)
		}
	}
	wrongGeometry := newTestCounting(t, 4, 512, 8, Wrap)
	if err := wrongGeometry.UnmarshalBinary(blob); err == nil {
		t.Error("snapshot accepted into a filter with a different counter width")
	}
	if err := restored.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestCountingWeightAndFPR(t *testing.T) {
	c := newTestCounting(t, 4, 4096, 4, Wrap)
	if c.Weight() != 0 || c.EstimatedFPR() != 0 {
		t.Error("fresh filter not empty")
	}
	c.AddIndexes([]uint64{1, 2, 3, 4})
	if c.Weight() != 4 {
		t.Errorf("Weight = %d, want 4", c.Weight())
	}
	if c.Fill() != 4.0/4096 {
		t.Errorf("Fill = %v", c.Fill())
	}
	if c.CounterMax() != 15 {
		t.Errorf("CounterMax = %d, want 15", c.CounterMax())
	}
}

func TestCountingAddIndexesReturns(t *testing.T) {
	c := newTestCounting(t, 4, 64, 4, Wrap)
	fresh, over := c.AddIndexes([]uint64{1, 2, 3})
	if fresh != 3 || over != 0 {
		t.Errorf("first insert: fresh=%d over=%d", fresh, over)
	}
	fresh, over = c.AddIndexes([]uint64{3, 4, 5})
	if fresh != 2 || over != 0 {
		t.Errorf("second insert: fresh=%d over=%d", fresh, over)
	}
	for i := 0; i < 14; i++ {
		c.AddIndexes([]uint64{1})
	}
	_, over = c.AddIndexes([]uint64{1}) // 16th increment of counter 1
	if over != 1 {
		t.Errorf("overflow not reported: over=%d", over)
	}
}

// Property: packed counters at any width behave like a plain uint array.
func TestPackedCountersProperty(t *testing.T) {
	f := func(width8 uint8, ops []uint16) bool {
		width := int(width8%16) + 1
		const m = 257 // prime, forces straddling at many widths
		pc, err := newPackedCounters(m, width)
		if err != nil {
			return false
		}
		ref := make([]uint64, m)
		maxVal := uint64(1)<<uint(width) - 1
		for _, op := range ops {
			i := uint64(op) % m
			v := uint64(op>>8) & maxVal
			pc.set(i, v)
			ref[i] = v
		}
		for i := uint64(0); i < m; i++ {
			if pc.get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: counting filters have no false negatives below overflow load.
func TestCountingNoFalseNegativesProperty(t *testing.T) {
	c := newTestCounting(t, 4, 1<<16, 8, Saturate)
	f := func(items [][]byte) bool {
		for _, it := range items {
			c.Add(it)
		}
		for _, it := range items {
			if !c.Test(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: add-then-remove returns the filter to its previous state for
// fresh items (counting filters are reversible below overflow).
func TestCountingAddRemoveInverseProperty(t *testing.T) {
	f := func(seed int64, items [][]byte) bool {
		fam, err := hashes.NewDoubleHashing(4, 8192, uint64(seed))
		if err != nil {
			return false
		}
		c, err := NewCounting(fam, 8, Wrap)
		if err != nil {
			return false
		}
		for _, it := range items {
			c.Add(it)
		}
		before := c.Weight()
		probe := []byte("probe item added then removed")
		c.Add(probe)
		if err := c.Remove(probe); err != nil {
			return false
		}
		return c.Weight() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// OccupancyBits must agree with Occupied at every position — including
// counter widths that straddle word boundaries and the zero-word skip path
// — since it is what a cache digest of the filter is built from.
func TestCountingOccupancyBits(t *testing.T) {
	for _, width := range []int{1, 3, 4, 5, 12, 16} {
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			// 517 positions: not word-aligned, several all-zero words.
			c := newTestCounting(t, 3, 517, width, Saturate)
			for i := 0; i < 40; i++ {
				c.Add([]byte(fmt.Sprintf("item-%d", i)))
			}
			bits := c.OccupancyBits()
			if bits.Size() != c.M() {
				t.Fatalf("occupancy size %d, want %d", bits.Size(), c.M())
			}
			for i := uint64(0); i < c.M(); i++ {
				if bits.Test(i) != c.Occupied(i) {
					t.Fatalf("width %d: position %d: occupancy bit %v, counter says %v",
						width, i, bits.Test(i), c.Occupied(i))
				}
			}
			if bits.Weight() != c.Weight() {
				t.Fatalf("occupancy weight %d, filter weight %d", bits.Weight(), c.Weight())
			}
			// An empty filter projects to all zeros via the skip path alone.
			empty := newTestCounting(t, 3, 517, width, Saturate).OccupancyBits()
			if empty.Weight() != 0 {
				t.Fatalf("empty filter occupancy weight %d", empty.Weight())
			}
		})
	}
}
