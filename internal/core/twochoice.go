package core

import (
	"fmt"

	"evilbloom/internal/bitset"
	"evilbloom/internal/hashes"
)

// TwoChoice is the power-of-two-choices Bloom filter of Lumetta &
// Mitzenmacher (the paper's conclusion contrasts its "power of two choices"
// with the adversary's "power of evil choices"). Insertion evaluates two
// independent index groups and commits the one that sets fewer new bits;
// queries accept when either group is fully set.
//
// Measured behaviour (tests and BenchmarkExtensionTwoChoice): insertion does
// set fewer bits, but queries must accept either group, so the false-
// positive probability becomes ≈ 2p − p² for the per-group p — at many load
// points a net loss even before any adversary. Adversarially the design is
// strictly weaker: a chosen-insertion adversary crafts items with both
// groups fresh (condition 6 twice) and still plants k bits per item, while
// a query-only forger needs only ONE group all-set, roughly doubling her
// success rate. Evil choices beat two choices.
type TwoChoice struct {
	bits     *bitset.BitSet
	famA     hashes.IndexFamily
	famB     hashes.IndexFamily
	n        uint64
	scratchA []uint64
	scratchB []uint64
}

var _ Filter = (*TwoChoice)(nil)

// NewTwoChoice builds a filter over two index families that must share the
// same geometry.
func NewTwoChoice(famA, famB hashes.IndexFamily) (*TwoChoice, error) {
	if famA.M() != famB.M() || famA.K() != famB.K() {
		return nil, fmt.Errorf("core: mismatched two-choice geometries (%d,%d) vs (%d,%d)",
			famA.M(), famA.K(), famB.M(), famB.K())
	}
	return &TwoChoice{
		bits:     bitset.New(famA.M()),
		famA:     famA,
		famB:     famB,
		scratchA: make([]uint64, 0, famA.K()),
		scratchB: make([]uint64, 0, famB.K()),
	}, nil
}

// NewTwoChoiceMurmur builds a two-choice filter over two seeded
// Kirsch–Mitzenmacher groups.
func NewTwoChoiceMurmur(k int, m uint64, seedA, seedB uint64) (*TwoChoice, error) {
	if seedA == seedB {
		return nil, fmt.Errorf("core: two-choice groups need distinct seeds")
	}
	famA, err := hashes.NewDoubleHashing(k, m, seedA)
	if err != nil {
		return nil, err
	}
	famB, err := hashes.NewDoubleHashing(k, m, seedB)
	if err != nil {
		return nil, err
	}
	return NewTwoChoice(famA, famB)
}

func (t *TwoChoice) fresh(idx []uint64) int {
	fresh := 0
	for i, x := range idx {
		dup := false
		for j := 0; j < i; j++ {
			if idx[j] == x {
				dup = true
				break
			}
		}
		if !dup && !t.bits.Test(x) {
			fresh++
		}
	}
	return fresh
}

// Add implements Filter: the group that would set fewer new bits wins.
func (t *TwoChoice) Add(item []byte) {
	t.scratchA = t.famA.Indexes(t.scratchA[:0], item)
	t.scratchB = t.famB.Indexes(t.scratchB[:0], item)
	chosen := t.scratchA
	if t.fresh(t.scratchB) < t.fresh(t.scratchA) {
		chosen = t.scratchB
	}
	for _, x := range chosen {
		t.bits.Set(x)
	}
	t.n++
}

// Test implements Filter: present when either group is fully set (the
// inserter could have chosen either).
func (t *TwoChoice) Test(item []byte) bool {
	t.scratchA = t.famA.Indexes(t.scratchA[:0], item)
	if t.allSet(t.scratchA) {
		return true
	}
	t.scratchB = t.famB.Indexes(t.scratchB[:0], item)
	return t.allSet(t.scratchB)
}

func (t *TwoChoice) allSet(idx []uint64) bool {
	for _, x := range idx {
		if !t.bits.Test(x) {
			return false
		}
	}
	return true
}

// Count implements Filter.
func (t *TwoChoice) Count() uint64 { return t.n }

// M returns the filter size.
func (t *TwoChoice) M() uint64 { return t.bits.Size() }

// K returns the per-group hash count.
func (t *TwoChoice) K() int { return t.famA.K() }

// Weight returns the Hamming weight.
func (t *TwoChoice) Weight() uint64 { return t.bits.Weight() }

// EstimatedFPR returns ≈ 2(W/m)^k − (W/m)^2k: either group may match.
func (t *TwoChoice) EstimatedFPR() float64 {
	p := FPForgeryProbability(t.M(), t.K(), t.Weight())
	return 2*p - p*p
}

// Families returns both index groups (public in the threat model).
func (t *TwoChoice) Families() (hashes.IndexFamily, hashes.IndexFamily) {
	return t.famA, t.famB
}

// Occupied reports whether bit i is set.
func (t *TwoChoice) Occupied(i uint64) bool { return t.bits.Test(i) }
