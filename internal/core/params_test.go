package core

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// The paper's running example (§4.1, Fig 3): m = 3200, n = 600 gives
// k_opt ≈ 4 and f_opt ≈ 0.077.
func TestPaperFig3Parameters(t *testing.T) {
	approx(t, "OptimalK(3200,600)", OptimalK(3200, 600), 3.7, 0.05)
	if k := OptimalKInt(3200, 600); k != 4 {
		t.Errorf("OptimalKInt = %d, want 4", k)
	}
	approx(t, "OptimalFPR(3200,600)", OptimalFPR(3200, 600), 0.077, 0.002)
	// After 600 chosen insertions with k=4: f_adv = (600·4/3200)^4 = 0.75^4.
	approx(t, "AdversarialFPR", AdversarialFPR(3200, 600, 4), 0.3164, 0.0001)
	// The paper: an adversary reaches the f_opt=0.077 threshold at ~422
	// chosen insertions: (422·4/3200)^4 = 0.527^4 ≈ 0.0776.
	approx(t, "AdversarialFPR(422)", AdversarialFPR(3200, 422, 4), 0.077, 0.002)
}

func TestFPRBasics(t *testing.T) {
	// Empty filter never false-positives; saturated one always does.
	if got := FPR(1000, 0, 4); got != 0 {
		t.Errorf("FPR with n=0 = %v", got)
	}
	if got := AdversarialFPR(100, 25, 4); got != 1 {
		t.Errorf("saturating adversarial FPR = %v, want 1", got)
	}
	if got := FPR(0, 5, 4); got != 1 {
		t.Errorf("FPR with m=0 = %v, want 1", got)
	}
	// Approximation tracks the exact form for large m.
	a, b := FPR(1<<20, 100000, 7), FPRExact(1<<20, 100000, 7)
	approx(t, "FPR vs FPRExact", a, b, 1e-6)
}

// §4.1: the adversary sets nk bits against the honest expectation of
// m(1−e^(−kn/m)); at optimal parameters the gain is ≈38%.
func TestAdversaryWeightGain(t *testing.T) {
	const m, n = 3200, 600
	k := OptimalKInt(m, n)
	honest := ExpectedWeight(m, n, k)
	adversarial := float64(n * uint64(k))
	gain := adversarial/honest - 1
	if gain < 0.30 || gain > 0.45 {
		t.Errorf("adversarial weight gain = %.3f, want ≈0.38", gain)
	}
}

func TestWorstCaseParameters(t *testing.T) {
	const m, n = 3200, 600
	// eq (9): k_adv = m/(en).
	approx(t, "WorstCaseK", WorstCaseK(m, n), float64(m)/(math.E*float64(n)), 1e-12)
	if k := WorstCaseKInt(m, n); k != 2 {
		t.Errorf("WorstCaseKInt = %d, want 2", k)
	}
	// eq (10): f_adv_opt = e^(−m/(en)).
	approx(t, "WorstCaseAdvFPR", WorstCaseAdvFPR(m, n), math.Exp(-float64(m)/(math.E*float64(n))), 1e-12)
	// eq (12): ln f = −0.433 m/n.
	approx(t, "WorstCaseHonestFPR", math.Log(WorstCaseHonestFPR(m, n)), -0.433*float64(m)/float64(n), 0.01)
	// §8.1 ratios.
	approx(t, "KRatio", KRatio(), 1.88, 0.01)
	approx(t, "SizeFactorSameHonestFPR", SizeFactorSameHonestFPR(), 0.90, 0.01)
	approx(t, "SizeFactorPaperReading", SizeFactorPaperReading(), 4.8, 0.01)
}

// The defining property of eq (9): k_adv minimizes the adversarial FPR.
func TestWorstCaseKMinimizesAdvFPR(t *testing.T) {
	const m, n = 100000, 2000
	kAdv := WorstCaseK(m, n)
	fAt := func(k float64) float64 {
		return math.Pow(float64(n)*k/float64(m), k)
	}
	best := fAt(kAdv)
	for _, k := range []float64{kAdv * 0.5, kAdv * 0.9, kAdv * 1.1, kAdv * 2} {
		if fAt(k) < best {
			t.Errorf("f_adv(k=%v) = %v < f_adv(k_adv) = %v", k, fAt(k), best)
		}
	}
}

// The defining property of eq (2): k_opt minimizes the honest FPR.
func TestOptimalKMinimizesFPR(t *testing.T) {
	const m, n = 100000, 10000
	kOpt := OptimalK(m, n)
	fAt := func(k float64) float64 {
		return math.Pow(1-math.Exp(-k*float64(n)/float64(m)), k)
	}
	best := fAt(kOpt)
	for _, k := range []float64{kOpt * 0.5, kOpt * 0.8, kOpt * 1.2, kOpt * 2} {
		if fAt(k) < best {
			t.Errorf("f(k=%v) = %v < f(k_opt) = %v", k, fAt(k), best)
		}
	}
}

func TestOptimalMRoundTrip(t *testing.T) {
	// Sizing for (n, f) and evaluating the FPR must come back ≈ f.
	for _, f := range []float64{1.0 / 32, 1.0 / 1024, 1e-5} {
		n := uint64(10000)
		m := OptimalM(n, f)
		k := KForFPR(f)
		got := FPR(m, n, k)
		if got > f*1.15 {
			t.Errorf("FPR(OptimalM) = %v, want ≤ %v·1.15", got, f)
		}
	}
	if OptimalM(0, 0.01) != 0 || OptimalM(10, 0) != 0 || OptimalM(10, 1) != 0 {
		t.Error("OptimalM accepted invalid input")
	}
}

func TestKForFPR(t *testing.T) {
	cases := []struct {
		f    float64
		want int
	}{
		{0.5, 1}, {1.0 / 32, 5}, {1.0 / 1024, 10}, {math.Pow(2, -15), 15}, {math.Pow(2, -20), 20},
	}
	for _, c := range cases {
		if got := KForFPR(c.f); got != c.want {
			t.Errorf("KForFPR(%v) = %d, want %d", c.f, got, c.want)
		}
	}
	if KForFPR(0) != 1 || KForFPR(1) != 1 {
		t.Error("KForFPR out-of-range not clamped")
	}
}

func TestExpectedZerosAndWeight(t *testing.T) {
	// Optimal case: half the filter remains zero (§3).
	const n = 600
	m := OptimalM(n, 0.077)
	k := OptimalKInt(m, n)
	zeros := ExpectedZeros(m, n, k)
	ratio := zeros / float64(m)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("expected zero fraction = %.3f, want ≈0.5", ratio)
	}
	approx(t, "zeros+weight", ExpectedZeros(m, n, k)+ExpectedWeight(m, n, k), float64(m), 1e-6)
}

func TestConcentrationBound(t *testing.T) {
	// eq (5) is a probability, decreasing in ε and m.
	b1 := ConcentrationBound(3200, 600, 4, 0.01)
	b2 := ConcentrationBound(3200, 600, 4, 0.05)
	if b1 > 1 || b2 > b1 {
		t.Errorf("bound not decreasing in ε: %v then %v", b1, b2)
	}
	if big := ConcentrationBound(1<<20, 600, 4, 0.01); big > 1e-9 {
		t.Errorf("bound for huge m = %v, want ≈0", big)
	}
	if z := ConcentrationBound(100, 0, 4, 0.1); z != 0 {
		t.Errorf("bound with n=0 = %v", z)
	}
}

// §4.1: adversarial saturation needs m/k items, a log(m) factor fewer than
// the coupon-collector expectation for honest traffic.
func TestSaturationCounts(t *testing.T) {
	const m, k = 3200, 4
	adv := SaturationAdversarialItems(m, k)
	if adv != 800 {
		t.Errorf("adversarial saturation = %d, want 800", adv)
	}
	rnd := SaturationRandomItems(m, k)
	if rnd <= adv*5 {
		t.Errorf("random saturation = %d, want ≫ %d", rnd, adv)
	}
	ratio := float64(rnd) / float64(adv)
	approx(t, "saturation ratio", ratio, math.Log(m), 1)
}

func TestPollutionProbability(t *testing.T) {
	// Empty filter, k=1: every item pollutes.
	approx(t, "pollution empty k=1", PollutionProbability(100, 1, 0), 1, 1e-12)
	// Full filter: nothing pollutes.
	if p := PollutionProbability(100, 2, 100); p != 0 {
		t.Errorf("pollution of full filter = %v", p)
	}
	// Fewer free bits than k: impossible.
	if p := PollutionProbability(100, 5, 97); p != 0 {
		t.Errorf("pollution with 3 free bits, k=5 = %v", p)
	}
	// Exact small case: m=4, k=2, W=2 → ordered distinct free pairs: 2·1/4² = 1/8.
	approx(t, "pollution m=4", PollutionProbability(4, 2, 2), 1.0/8, 1e-12)
	// The paper's unordered form is smaller by k!.
	approx(t, "paper pollution m=4", PollutionProbabilityPaper(4, 2, 2), 1.0/16, 1e-12)
	approx(t, "paper vs exact factor", PollutionProbability(3200, 4, 1600)/PollutionProbabilityPaper(3200, 4, 1600), 24, 1e-6)
	// Monotone decreasing in W.
	prev := 1.0
	for w := uint64(0); w <= 3000; w += 500 {
		p := PollutionProbability(3200, 4, w)
		if p > prev {
			t.Errorf("pollution probability increased at W=%d", w)
		}
		prev = p
	}
}

func TestFPForgeryProbability(t *testing.T) {
	// Table 1 bracket: (k/m)^k ≤ (W/m)^k ≤ (1/2)^k for W between k and m/2.
	const m, k = 3200, 4
	lo := FPForgeryProbability(m, k, k)
	mid := FPForgeryProbability(m, k, 1600)
	if lo > mid || mid > math.Pow(0.5, k)+1e-12 {
		t.Errorf("bracket violated: lo=%v mid=%v", lo, mid)
	}
	approx(t, "forgery W=m/2", mid, 1.0/16, 1e-9)
}

func TestSecondPreimageBloomProbability(t *testing.T) {
	approx(t, "1/m^k", SecondPreimageBloomProbability(10, 3), 1e-3, 1e-12)
	if p := SecondPreimageBloomProbability(0, 3); p != 0 {
		t.Errorf("m=0 probability = %v", p)
	}
}

func TestDeletionProbability(t *testing.T) {
	// Exact form 1−(1−k/m)^k, between 0 and 1, increasing in k.
	p2 := DeletionProbability(1000, 2)
	p8 := DeletionProbability(1000, 8)
	if !(0 < p2 && p2 < p8 && p8 < 1) {
		t.Errorf("deletion probabilities not ordered: %v, %v", p2, p8)
	}
	if DeletionProbability(5, 5) != 1 {
		t.Error("k≥m should make sharing certain")
	}
	// The paper's printed union-bound form is an upper bound of the exact
	// probability for small k/m, and can exceed 1.
	paper := DeletionProbabilityPaper(1000, 4)
	exact := DeletionProbability(1000, 4)
	if paper < exact {
		t.Errorf("paper bound %v below exact %v", paper, exact)
	}
}

// Property: all probability functions stay in [0,1] (paper form excepted)
// over arbitrary geometries.
func TestProbabilityRangesProperty(t *testing.T) {
	f := func(mRaw uint32, kRaw uint8, wRaw uint32) bool {
		m := uint64(mRaw%100000) + 1
		k := int(kRaw%32) + 1
		w := uint64(wRaw) % (m + 1)
		probs := []float64{
			FPR(m, w, k), FPRExact(m, w, k), AdversarialFPR(m, w, k),
			PollutionProbability(m, k, w), FPForgeryProbability(m, k, w),
			SecondPreimageBloomProbability(m, k), DeletionProbability(m, k),
			OptimalFPR(m, w+1), WorstCaseAdvFPR(m, w+1), WorstCaseHonestFPR(m, w+1),
		}
		for _, p := range probs {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// fadv/fopt = 1.05^(m/n) (§8.1): the price of worst-case parameters.
func TestWorstCaseFPRRatio(t *testing.T) {
	const m, n = 32000, 2000
	ratio := WorstCaseHonestFPR(m, n) / OptimalFPR(m, n)
	want := math.Pow(1.0488, float64(m)/float64(n)) // e^(0.4805−0.4335) per m/n unit
	if math.Abs(math.Log(ratio)-math.Log(want)) > 0.05 {
		t.Errorf("f ratio = %v, want ≈ %v", ratio, want)
	}
}
