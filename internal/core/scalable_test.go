package core

import (
	"fmt"
	"math"
	"testing"
)

func TestScalableConfigValidation(t *testing.T) {
	base := ScalableConfig{InitialFPR: 0.01, TighteningRatio: 0.9, StageCapacity: 100}
	bad := []ScalableConfig{
		{InitialFPR: 0, TighteningRatio: 0.9, StageCapacity: 100},
		{InitialFPR: 1, TighteningRatio: 0.9, StageCapacity: 100},
		{InitialFPR: 0.01, TighteningRatio: 0, StageCapacity: 100},
		{InitialFPR: 0.01, TighteningRatio: 1.1, StageCapacity: 100},
		{InitialFPR: 0.01, TighteningRatio: 0.9, StageCapacity: 0},
		{InitialFPR: 0.01, TighteningRatio: 0.9, StageCapacity: 100, MaxStages: -1},
	}
	for i, cfg := range bad {
		if _, err := NewScalable(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewScalable(base); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestScalableGrowth(t *testing.T) {
	s, err := NewScalable(ScalableConfig{
		InitialFPR:      0.01,
		TighteningRatio: 0.9,
		StageCapacity:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stages()) != 1 {
		t.Fatalf("fresh scalable has %d stages", len(s.Stages()))
	}
	for i := 0; i < 450; i++ {
		s.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	if got := len(s.Stages()); got != 5 {
		t.Errorf("after 450 inserts: %d stages, want 5", got)
	}
	if s.Count() != 450 {
		t.Errorf("Count = %d", s.Count())
	}
	// No false negatives across stages.
	for i := 0; i < 450; i++ {
		if !s.Test([]byte(fmt.Sprintf("item-%d", i))) {
			t.Fatalf("false negative for item-%d", i)
		}
	}
}

func TestScalableMaxStages(t *testing.T) {
	s, err := NewScalable(ScalableConfig{
		InitialFPR:      0.01,
		TighteningRatio: 0.9,
		StageCapacity:   50,
		MaxStages:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	if got := len(s.Stages()); got != 2 {
		t.Errorf("stage cap ignored: %d stages", got)
	}
	// Overfilled last stage still has no false negatives.
	for i := 0; i < 500; i++ {
		if !s.Test([]byte(fmt.Sprintf("item-%d", i))) {
			t.Fatalf("false negative for item-%d", i)
		}
	}
}

func TestStageFPRGeometricSequence(t *testing.T) {
	s, err := NewScalable(ScalableConfig{
		InitialFPR:      0.01,
		TighteningRatio: 0.9,
		StageCapacity:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := 0.01 * math.Pow(0.9, float64(i))
		if got := s.StageFPR(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("StageFPR(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestAnalyticCompoundFPR(t *testing.T) {
	// Fig 8's "no attack" level: λ=10, f0=0.01, r=0.9 →
	// F = 1 − ∏(1 − 0.01·0.9^i) ≈ 0.063.
	got := AnalyticCompoundFPR(0.01, 0.9, 10)
	if math.Abs(got-0.0634) > 0.002 {
		t.Errorf("analytic compound F = %v, want ≈0.063", got)
	}
	if AnalyticCompoundFPR(0.01, 0.9, 0) != 0 {
		t.Error("zero stages should give F=0")
	}
}

func TestScalableCompoundFPRTracksAnalytic(t *testing.T) {
	s, err := NewScalable(ScalableConfig{
		InitialFPR:      0.02,
		TighteningRatio: 0.9,
		StageCapacity:   2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 6000 // three full stages
	for i := 0; i < total; i++ {
		s.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	got := s.CompoundFPR()
	want := AnalyticCompoundFPR(0.02, 0.9, 3)
	if math.Abs(got-want) > want*0.5 {
		t.Errorf("CompoundFPR = %v, want ≈%v", got, want)
	}
	// Empirical check.
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if s.Test([]byte(fmt.Sprintf("probe-%d", i))) {
			fp++
		}
	}
	emp := float64(fp) / probes
	if math.Abs(emp-want) > want {
		t.Errorf("empirical compound FPR = %v, analytic %v", emp, want)
	}
}

func TestDabloomsDefaults(t *testing.T) {
	cfg := DefaultDabloomsConfig()
	if cfg.InitialFPR != 0.01 || cfg.TighteningRatio != 0.9 ||
		cfg.StageCapacity != 10000 || cfg.MaxStages != 10 ||
		cfg.CounterWidth != 4 || cfg.Overflow != Wrap {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

func TestDabloomsAddTestRemove(t *testing.T) {
	cfg := DefaultDabloomsConfig()
	cfg.StageCapacity = 500
	cfg.MaxStages = 4
	d, err := NewDablooms(cfg)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([][]byte, 1200)
	for i := range urls {
		urls[i] = []byte(fmt.Sprintf("http://malware-%d.example.com/", i))
		d.Add(urls[i])
	}
	if got := len(d.Stages()); got != 3 {
		t.Errorf("stages = %d, want 3", got)
	}
	for _, u := range urls {
		if !d.Test(u) {
			t.Fatalf("false negative for %q", u)
		}
	}
	if err := d.Remove(urls[0]); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := d.Remove([]byte("never seen, never a false positive — hopefully absent")); err == nil {
		t.Log("removal of absent item succeeded: it was a false positive (acceptable)")
	}
	if len(d.CountingStages()) != len(d.Stages()) {
		t.Error("CountingStages lost stages")
	}
}

func TestDabloomsStageGeometry(t *testing.T) {
	d, err := NewDablooms(DefaultDabloomsConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stages()[0]
	// f0=0.01 → k=7, m = 10000·ln(100)/(ln2)² ≈ 95851.
	if st.K() != 7 {
		t.Errorf("stage k = %d, want 7", st.K())
	}
	if st.M() < 95000 || st.M() > 97000 {
		t.Errorf("stage m = %d, want ≈95851", st.M())
	}
}
