package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"evilbloom/internal/bitset"
	"evilbloom/internal/hashes"
)

// Partitioned is the pyBloom layout (§5.2): k slices of s bits, item i sets
// one bit per slice. pyBloom is the filter the paper plugs into Scrapy, so
// this type is the substrate of the Fig 5/Fig 6 experiments.
type Partitioned struct {
	slices    []*bitset.BitSet
	sliceBits uint64
	d         *hashes.Digester
	n         uint64
	buf       []byte
	scratch   []uint64
}

var _ Filter = (*Partitioned)(nil)

// PyBloomAlgorithm mirrors pyBloom's make_hashfuncs choice: the smallest
// hash whose digest covers the k 32-bit chunks one item consumes.
func PyBloomAlgorithm(k int) hashes.Algorithm {
	totalBits := 32 * k
	switch {
	case totalBits > 384:
		return hashes.SHA512
	case totalBits > 256:
		return hashes.SHA384
	case totalBits > 160:
		return hashes.SHA256
	case totalBits > 128:
		return hashes.SHA1
	default:
		return hashes.MD5
	}
}

// NewPyBloom sizes a partitioned filter for capacity items at target
// false-positive probability f, exactly like pyBloom's BloomFilter(capacity,
// error_rate): k = ⌈log₂(1/f)⌉ slices of ⌈capacity·|ln f|/(k·(ln 2)²)⌉ bits,
// over salted digests of the automatically chosen hash.
func NewPyBloom(capacity uint64, f float64) (*Partitioned, error) {
	if f <= 0 || f >= 1 || capacity == 0 {
		return nil, fmt.Errorf("core: invalid capacity %d or false-positive target %v", capacity, f)
	}
	k := KForFPR(f)
	sliceBits := uint64(math.Ceil(float64(capacity) * -math.Log(f) / (float64(k) * Ln2Sq)))
	return NewPartitioned(k, sliceBits, PyBloomAlgorithm(k))
}

// NewPartitioned builds a partitioned filter with explicit geometry.
func NewPartitioned(k int, sliceBits uint64, alg hashes.Algorithm) (*Partitioned, error) {
	if k <= 0 || sliceBits == 0 {
		return nil, fmt.Errorf("core: invalid partitioned geometry k=%d slice=%d", k, sliceBits)
	}
	d, err := hashes.NewDigester(alg, nil)
	if err != nil {
		return nil, err
	}
	slices := make([]*bitset.BitSet, k)
	for i := range slices {
		slices[i] = bitset.New(sliceBits)
	}
	return &Partitioned{
		slices:    slices,
		sliceBits: sliceBits,
		d:         d,
		scratch:   make([]uint64, 0, k),
	}, nil
}

// Indexes appends item's k per-slice indexes (index i belongs to slice i):
// consecutive 32-bit big-endian chunks of salted digests, reduced modulo the
// slice size — pyBloom's unpack-and-mod loop.
func (p *Partitioned) Indexes(dst []uint64, item []byte) []uint64 {
	perDigest := p.d.Bits() / 32
	var salt uint32
	for produced := 0; produced < len(p.slices); {
		p.buf = p.d.Sum(p.buf[:0], item, salt)
		salt++
		for c := 0; c < perDigest && produced < len(p.slices); c++ {
			w := binary.BigEndian.Uint32(p.buf[4*c:])
			dst = append(dst, uint64(w)%p.sliceBits)
			produced++
		}
	}
	return dst
}

// Add implements Filter.
func (p *Partitioned) Add(item []byte) {
	p.scratch = p.Indexes(p.scratch[:0], item)
	p.AddIndexes(p.scratch)
}

// AddIndexes inserts a pre-computed per-slice index set, returning how many
// bits were previously unset.
func (p *Partitioned) AddIndexes(idx []uint64) int {
	fresh := 0
	for i, v := range idx {
		if p.slices[i].Set(v) {
			fresh++
		}
	}
	p.n++
	return fresh
}

// Test implements Filter.
func (p *Partitioned) Test(item []byte) bool {
	p.scratch = p.Indexes(p.scratch[:0], item)
	return p.TestIndexes(p.scratch)
}

// TestIndexes reports whether each slice has its index bit set.
func (p *Partitioned) TestIndexes(idx []uint64) bool {
	for i, v := range idx {
		if !p.slices[i].Test(v) {
			return false
		}
	}
	return true
}

// OccupiedAt reports whether bit idx of slice slice is set — the adversary's
// view when forging items against a known filter.
func (p *Partitioned) OccupiedAt(slice int, idx uint64) bool {
	return p.slices[slice].Test(idx)
}

// Count implements Filter.
func (p *Partitioned) Count() uint64 { return p.n }

// K returns the number of slices (hash functions).
func (p *Partitioned) K() int { return len(p.slices) }

// SliceBits returns the size of one slice.
func (p *Partitioned) SliceBits() uint64 { return p.sliceBits }

// M returns the total filter size k·s.
func (p *Partitioned) M() uint64 { return uint64(len(p.slices)) * p.sliceBits }

// Weight returns the total number of set bits across slices.
func (p *Partitioned) Weight() uint64 {
	var w uint64
	for _, s := range p.slices {
		w += s.Weight()
	}
	return w
}

// Fill returns Weight/M.
func (p *Partitioned) Fill() float64 {
	if p.M() == 0 {
		return 0
	}
	return float64(p.Weight()) / float64(p.M())
}

// EstimatedFPR returns ∏ᵢ(Wᵢ/s): a query is a false positive when every
// slice hits a set bit.
func (p *Partitioned) EstimatedFPR() float64 {
	f := 1.0
	for _, s := range p.slices {
		f *= s.Fill()
	}
	return f
}

// Algorithm returns the digest algorithm in use (pyBloom's automatic pick).
func (p *Partitioned) Algorithm() hashes.Algorithm { return p.d.Algorithm() }
