package core

import (
	"encoding/binary"
	"fmt"

	"evilbloom/internal/bitset"
	"evilbloom/internal/hashes"
)

// BlockBits is the block size of the blocked Bloom filter: 512 bits = 64
// bytes, one cache line on every mainstream CPU.
const BlockBits = 512

// BlockedPosition maps probe index idx into the block selected by the item's
// first index: the block is first's, the in-block offset is idx's low bits.
// For j = 0 this is the identity (first selects both its block and its own
// offset), so a blocked filter and a plain one agree on the first probe.
// Every party evaluating a blocked filter's bit pattern — the filter itself,
// a restored snapshot, a peer holding its cache digest — must apply this
// same mapping, which is why it lives here rather than inside the filter.
func BlockedPosition(first, idx uint64) uint64 {
	return first&^(BlockBits-1) | idx&(BlockBits-1)
}

// Blocked is a register-blocked (cache-line-local) Bloom filter: the m-bit
// vector is split into 512-bit blocks, an item's first index selects one
// block, and all k probe bits land inside it. Where a classic filter costs
// up to k cache misses per operation, a blocked one costs exactly one — the
// construction of "Blocked Bloom Filters" (Putze–Sanders–Singler; see also
// "Blocked Bloom Filters with Choices" in PAPERS.md), traded against a
// slightly higher false-positive rate because the k bits are confined to
// 512 positions instead of m. Not safe for concurrent use on its own; the
// service layer serializes writers and uses the atomic read path.
type Blocked struct {
	bits    *bitset.BitSet
	fam     hashes.IndexFamily
	n       uint64
	scratch []uint64
}

var _ Filter = (*Blocked)(nil)

// NewBlocked builds a blocked filter over the family's (m, k) geometry. The
// size must be a positive multiple of BlockBits so every block is a whole
// cache line; callers (the service's config normalization) round up.
func NewBlocked(fam hashes.IndexFamily) (*Blocked, error) {
	m := fam.M()
	if m == 0 || m%BlockBits != 0 {
		return nil, fmt.Errorf("core: blocked filter size %d is not a positive multiple of %d", m, BlockBits)
	}
	return &Blocked{
		bits:    bitset.New(m),
		fam:     fam,
		scratch: make([]uint64, 0, fam.K()),
	}, nil
}

// Add implements Filter.
func (b *Blocked) Add(item []byte) {
	b.scratch = b.fam.Indexes(b.scratch[:0], item)
	b.AddIndexes(b.scratch)
}

// AddIndexes inserts a pre-computed index set, mapped into the first index's
// block, and returns the number of previously-unset bits it set.
func (b *Blocked) AddIndexes(idx []uint64) int {
	fresh := 0
	for _, i := range idx {
		if b.bits.Set(BlockedPosition(idx[0], i)) {
			fresh++
		}
	}
	b.n++
	return fresh
}

// AddIndexesAtomic is AddIndexes with atomic bit stores; see
// Bloom.AddIndexesAtomic for the locking contract.
func (b *Blocked) AddIndexesAtomic(idx []uint64) int {
	fresh := 0
	for _, i := range idx {
		if b.bits.SetAtomic(BlockedPosition(idx[0], i)) {
			fresh++
		}
	}
	b.n++
	return fresh
}

// Test implements Filter.
func (b *Blocked) Test(item []byte) bool {
	b.scratch = b.fam.Indexes(b.scratch[:0], item)
	return b.TestIndexes(b.scratch)
}

// TestIndexes reports whether every block-mapped position of idx is set.
func (b *Blocked) TestIndexes(idx []uint64) bool {
	for _, i := range idx {
		if !b.bits.Test(BlockedPosition(idx[0], i)) {
			return false
		}
	}
	return true
}

// TestIndexesAtomic is TestIndexes with atomic bit loads — callable with no
// lock held while a serialized writer mutates through the atomic paths.
func (b *Blocked) TestIndexesAtomic(idx []uint64) bool {
	for _, i := range idx {
		if !b.bits.TestAtomic(BlockedPosition(idx[0], i)) {
			return false
		}
	}
	return true
}

// Count implements Filter.
func (b *Blocked) Count() uint64 { return b.n }

// M returns the filter size in bits.
func (b *Blocked) M() uint64 { return b.fam.M() }

// K returns the number of hash functions.
func (b *Blocked) K() int { return b.fam.K() }

// Blocks returns the number of 512-bit blocks.
func (b *Blocked) Blocks() uint64 { return b.M() / BlockBits }

// Weight returns the Hamming weight w_H(z).
func (b *Blocked) Weight() uint64 { return b.bits.Weight() }

// Fill returns W/m.
func (b *Blocked) Fill() float64 { return b.bits.Fill() }

// EstimatedFPR returns (W/m)^k — the same global-fill estimate the other
// variants report. It slightly underestimates a blocked filter's true rate
// (bits cluster within blocks), but keeps the stats comparable across
// variants; the designed-rate penalty of blocking is a property of the
// construction, not of one filter's state.
func (b *Blocked) EstimatedFPR() float64 {
	return FPForgeryProbability(b.M(), b.K(), b.Weight())
}

// Occupied reports whether raw bit i is set — the adversary's per-position
// view of the storage (§4). Note the argument is a storage position, not an
// index-family output; apply BlockedPosition to map the latter.
func (b *Blocked) Occupied(i uint64) bool { return b.bits.Test(i) }

// OccupancyBits returns a private copy of the occupancy pattern — for a
// blocked filter, like a plain one, the digest IS the bit vector. A party
// evaluating membership against it must apply BlockedPosition to each
// index-family output, exactly as the filter itself does.
func (b *Blocked) OccupancyBits() *bitset.BitSet { return b.bits.Clone() }

// Family returns the index family.
func (b *Blocked) Family() hashes.IndexFamily { return b.fam }

// MarshalBinary encodes the filter state (insertion count plus the bit
// vector) in exactly the Bloom framing — the geometry field distinguishes
// nothing; the enclosing snapshot envelope carries the variant.
func (b *Blocked) MarshalBinary() ([]byte, error) {
	bits, err := b.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(bits))
	binary.LittleEndian.PutUint64(out, b.n)
	return append(out, bits...), nil
}

// UnmarshalBinary restores state written by MarshalBinary into a filter that
// must already have the same geometry (m). Like Bloom, the bit vector is
// overwritten in place with atomic stores so lock-free readers survive a
// restore.
func (b *Blocked) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("core: truncated blocked snapshot: %d bytes", len(data))
	}
	bits := bitset.New(0)
	if err := bits.UnmarshalBinary(data[8:]); err != nil {
		return err
	}
	if bits.Size() != b.fam.M() {
		return fmt.Errorf("core: snapshot geometry (m=%d) does not match filter (m=%d)", bits.Size(), b.fam.M())
	}
	b.n = binary.LittleEndian.Uint64(data)
	return b.bits.StoreFrom(bits)
}
