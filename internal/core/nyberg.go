package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"evilbloom/internal/bitset"
)

// Nyberg is Nyberg's fast accumulated hashing (FSE 1996), the structure the
// paper's related work (§9) credits with resisting its attacks: every
// membership bit derives from a "long hash" — the full digest stream — so
// forging an item with a chosen bit pattern requires pre-images of the
// complete cryptographic digest, not of a truncation. The price is size
// (a log n factor over Bloom filters) and hashing cost, which is why
// developers pick Bloom filters — and why the paper instead recycles digest
// bits (§8.2) to get the same resistance cheaply.
//
// Construction: an accumulator of m cells, initially all one. An item's
// characteristic pattern marks cell i when the i-th d-bit block of its long
// hash is all-zero (probability 2^−d per cell). Insertion zeroes the
// pattern cells; a query is accepted when every pattern cell is already
// zero. There are no false negatives; false positives occur when a
// stranger's pattern happens to be covered by the accumulated zeros.
type Nyberg struct {
	zeroed *bitset.BitSet // cells driven to zero
	m      uint64
	d      int
	n      uint64
	buf    []byte
	pat    []uint64
}

var _ Filter = (*Nyberg)(nil)

// NewNyberg builds an accumulator with m cells and d-bit blocks.
func NewNyberg(m uint64, d int) (*Nyberg, error) {
	if m == 0 {
		return nil, fmt.Errorf("core: nyberg accumulator needs at least one cell")
	}
	if d < 1 || d > 32 {
		return nil, fmt.Errorf("core: nyberg block width %d outside [1,32]", d)
	}
	return &Nyberg{zeroed: bitset.New(m), m: m, d: d}, nil
}

// NewNybergForCapacity sizes an accumulator for n items at roughly the
// given false-positive probability, following Nyberg's d ≈ log₂(n) rule:
// with d = ⌈log₂n⌉+1 the zero fraction after n insertions stays ≈ 1−e^(−½),
// and the pattern length λ = m/2^d is chosen so e^(−λ·e^(−½)) ≤ f.
func NewNybergForCapacity(n uint64, f float64) (*Nyberg, error) {
	if n == 0 || f <= 0 || f >= 1 {
		return nil, fmt.Errorf("core: invalid nyberg capacity %d or target %v", n, f)
	}
	d := int(math.Ceil(math.Log2(float64(n)))) + 1
	if d < 2 {
		d = 2
	}
	if d > 32 {
		return nil, fmt.Errorf("core: capacity %d needs block width beyond 32 bits", n)
	}
	zeroFrac := 1 - math.Exp(-float64(n)/math.Exp2(float64(d)))
	lambda := -math.Log(f) / (1 - zeroFrac)
	m := uint64(math.Ceil(lambda * math.Exp2(float64(d))))
	return NewNyberg(m, d)
}

// pattern appends the indexes of item's all-zero blocks. The long hash is
// SHA-256 in counter mode — a full-width digest stream with no truncation
// to attack.
func (a *Nyberg) pattern(dst []uint64, item []byte) []uint64 {
	needBits := a.m * uint64(a.d)
	needBytes := int((needBits + 7) / 8)
	if cap(a.buf) < needBytes {
		a.buf = make([]byte, 0, needBytes)
	}
	a.buf = a.buf[:0]
	var ctr [4]byte
	h := sha256.New()
	for i := uint32(0); len(a.buf) < needBytes; i++ {
		h.Reset()
		binary.BigEndian.PutUint32(ctr[:], i)
		h.Write(item)   //nolint:errcheck // hash writes never fail
		h.Write(ctr[:]) //nolint:errcheck
		a.buf = h.Sum(a.buf)
	}
	// Walk d-bit blocks; cell i marked when its block is all zero.
	bitPos := uint64(0)
	for i := uint64(0); i < a.m; i++ {
		allZero := true
		for b := 0; b < a.d; b++ {
			p := bitPos + uint64(b)
			if a.buf[p/8]>>(7-p%8)&1 != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			dst = append(dst, i)
		}
		bitPos += uint64(a.d)
	}
	return dst
}

// Add implements Filter.
func (a *Nyberg) Add(item []byte) {
	a.pat = a.pattern(a.pat[:0], item)
	for _, i := range a.pat {
		a.zeroed.Set(i)
	}
	a.n++
}

// Test implements Filter.
func (a *Nyberg) Test(item []byte) bool {
	a.pat = a.pattern(a.pat[:0], item)
	for _, i := range a.pat {
		if !a.zeroed.Test(i) {
			return false
		}
	}
	return true
}

// Count implements Filter.
func (a *Nyberg) Count() uint64 { return a.n }

// M returns the number of accumulator cells.
func (a *Nyberg) M() uint64 { return a.m }

// D returns the block width.
func (a *Nyberg) D() int { return a.d }

// ZeroFraction returns the fraction of accumulated (zeroed) cells.
func (a *Nyberg) ZeroFraction() float64 { return a.zeroed.Fill() }

// ExpectedPatternLen returns m/2^d, the mean pattern length λ.
func (a *Nyberg) ExpectedPatternLen() float64 {
	return float64(a.m) / math.Exp2(float64(a.d))
}

// EstimatedFPR returns E[z^P] for P ~ Poisson(λ): e^(−λ(1−z)) with z the
// current zero fraction — the accumulator's analogue of (W/m)^k.
func (a *Nyberg) EstimatedFPR() float64 {
	z := a.ZeroFraction()
	return math.Exp(-a.ExpectedPatternLen() * (1 - z))
}

// HashBitsPerOperation returns the long-hash width m·d each Add/Test
// consumes — the cost that makes the accumulator "less attractive to
// developers" (§9) and motivates recycling instead.
func (a *Nyberg) HashBitsPerOperation() uint64 { return a.m * uint64(a.d) }
