package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"evilbloom/internal/hashes"
)

func newTestBloom(t *testing.T, k int, m uint64) *Bloom {
	t.Helper()
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, k, m)
	if err != nil {
		t.Fatal(err)
	}
	return NewBloom(fam)
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newTestBloom(t, 4, 3200)
	items := make([][]byte, 300)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("http://site%d.example.com/page", i))
		b.Add(items[i])
	}
	for _, it := range items {
		if !b.Test(it) {
			t.Fatalf("false negative for %q", it)
		}
	}
	if b.Count() != 300 {
		t.Errorf("Count = %d, want 300", b.Count())
	}
}

func TestBloomEmptyRejectsEverything(t *testing.T) {
	b := newTestBloom(t, 4, 3200)
	for i := 0; i < 100; i++ {
		if b.Test([]byte(fmt.Sprintf("probe-%d", i))) {
			t.Fatal("empty filter reported membership")
		}
	}
	if b.EstimatedFPR() != 0 {
		t.Errorf("empty filter FPR = %v", b.EstimatedFPR())
	}
}

// The empirical false-positive rate of a filter at its design load must be
// close to eq (1) — the average-case baseline the paper's attacks beat.
func TestBloomEmpiricalFPRMatchesEquation1(t *testing.T) {
	const m, n, k = 3200, 600, 4
	b := newTestBloom(t, k, m)
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	const probes = 200000
	fp := 0
	for i := 0; i < probes; i++ {
		if b.Test([]byte(fmt.Sprintf("nonmember-%d", i))) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := FPR(m, n, k)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical FPR = %.4f, eq (1) predicts %.4f", got, want)
	}
}

func TestBloomWeightTracksExpectation(t *testing.T) {
	const m, n, k = 3200, 600, 4
	b := newTestBloom(t, k, m)
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	want := ExpectedWeight(m, n, k)
	got := float64(b.Weight())
	// eq (5): the weight is extremely concentrated; 5% slack is generous.
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("weight = %v, expectation %v", got, want)
	}
}

func TestNewBloomOptimal(t *testing.T) {
	b, err := NewBloomOptimal(600, 0.077, hashes.SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.K() != 4 {
		t.Errorf("K = %d, want 4", b.K())
	}
	if b.M() < 3100 || b.M() > 3300 {
		t.Errorf("M = %d, want ≈3200", b.M())
	}
	if _, err := NewBloomOptimal(0, 0.077, hashes.SHA256, nil); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewBloomOptimal(10, 0.077, hashes.HMACSHA1, nil); err == nil {
		t.Error("keyed algorithm without key accepted")
	}
}

func TestBloomAddIndexesFreshCount(t *testing.T) {
	b := newTestBloom(t, 4, 100)
	if fresh := b.AddIndexes([]uint64{1, 2, 3, 4}); fresh != 4 {
		t.Errorf("fresh = %d, want 4", fresh)
	}
	if fresh := b.AddIndexes([]uint64{3, 4, 5, 6}); fresh != 2 {
		t.Errorf("fresh = %d, want 2", fresh)
	}
	if !b.TestIndexes([]uint64{1, 2, 3, 4, 5, 6}) {
		t.Error("inserted indexes not set")
	}
	if b.TestIndexes([]uint64{1, 2, 7}) {
		t.Error("unset index reported set")
	}
	if b.Weight() != 6 {
		t.Errorf("Weight = %d, want 6", b.Weight())
	}
}

func TestBloomCloneAndReset(t *testing.T) {
	b := newTestBloom(t, 4, 3200)
	b.Add([]byte("x"))
	c := b.Clone()
	c.Add([]byte("y"))
	if b.Test([]byte("y")) {
		t.Error("clone mutation leaked into original")
	}
	if !c.Test([]byte("x")) {
		t.Error("clone lost original contents")
	}
	b.Reset()
	if b.Weight() != 0 || b.Count() != 0 || b.Test([]byte("x")) {
		t.Error("Reset left state behind")
	}
}

// Property: anything added is always found (no false negatives), for every
// index family type.
func TestNoFalseNegativesProperty(t *testing.T) {
	d, err := hashes.NewDigester(hashes.SHA512, nil)
	if err != nil {
		t.Fatal(err)
	}
	salted, err := hashes.NewSalted(d.Clone(), 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	recycling, err := hashes.NewRecycling(d.Clone(), 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	double, err := hashes.NewDoubleHashing(5, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []hashes.IndexFamily{salted, recycling, double} {
		b := NewBloom(fam)
		f := func(items [][]byte) bool {
			for _, it := range items {
				b.Add(it)
			}
			for _, it := range items {
				if !b.Test(it) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Error(err)
		}
	}
}

func TestSyncedConcurrentUse(t *testing.T) {
	s := NewSynced(newTestBloom(t, 4, 1<<16))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				item := []byte(fmt.Sprintf("g%d-i%d", g, i))
				s.Add(item)
				if !s.Test(item) {
					t.Errorf("false negative under concurrency for %s", item)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != 8*500 {
		t.Errorf("Count = %d, want 4000", s.Count())
	}
}

// A keyed filter (HMAC) behaves identically for honest use.
func TestKeyedBloomHonestBehaviour(t *testing.T) {
	b, err := NewBloomOptimal(600, 0.077, hashes.HMACSHA256, []byte("server-secret"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		b.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	for i := 0; i < 600; i++ {
		if !b.Test([]byte(fmt.Sprintf("item-%d", i))) {
			t.Fatal("keyed filter false negative")
		}
	}
	fp := 0
	for i := 0; i < 50000; i++ {
		if b.Test([]byte(fmt.Sprintf("probe-%d", i))) {
			fp++
		}
	}
	got := float64(fp) / 50000
	if math.Abs(got-0.077) > 0.02 {
		t.Errorf("keyed empirical FPR = %v, want ≈0.077", got)
	}
}

func BenchmarkBloomAdd(b *testing.B) {
	d, _ := hashes.NewDigester(hashes.SHA256, nil)
	fam, _ := hashes.NewSalted(d, 7, 1<<24)
	bl := NewBloom(fam)
	item := []byte("http://example.com/some/long/path/page.html")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl.Add(item)
	}
}

func BenchmarkBloomTest(b *testing.B) {
	d, _ := hashes.NewDigester(hashes.SHA256, nil)
	fam, _ := hashes.NewSalted(d, 7, 1<<24)
	bl := NewBloom(fam)
	bl.Add([]byte("member"))
	item := []byte("http://example.com/some/long/path/page.html")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Test(item)
	}
}

// Snapshots round-trip: a restored filter answers identically and
// re-serializes to the same bytes; mismatched geometry is refused.
func TestBloomSnapshotRoundTrip(t *testing.T) {
	a := newTestBloom(t, 4, 3200)
	items := make([][]byte, 200)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("http://snap%d.example.com/", i))
		a.Add(items[i])
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b := newTestBloom(t, 4, 3200)
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if b.Count() != a.Count() || b.Weight() != a.Weight() {
		t.Errorf("restored count=%d weight=%d, want %d and %d", b.Count(), b.Weight(), a.Count(), a.Weight())
	}
	for _, it := range items {
		if !b.Test(it) {
			t.Fatalf("restored filter lost %q", it)
		}
	}
	again, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(blob) {
		t.Error("restored filter re-serializes differently")
	}
	// Geometry mismatch and truncation are refused without mutating state.
	small := newTestBloom(t, 4, 64)
	if err := small.UnmarshalBinary(blob); err == nil {
		t.Error("snapshot restored into a filter of different m")
	}
	if err := b.UnmarshalBinary(blob[:5]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if b.Count() != a.Count() {
		t.Error("failed restore mutated the filter")
	}
}
