package core

import (
	"fmt"

	"evilbloom/internal/hashes"
)

// Stage is one filter of a scalable sequence, exposing enough state for the
// compound false-positive estimate and for attack drivers.
type Stage interface {
	Filter
	M() uint64
	K() int
	Weight() uint64
	EstimatedFPR() float64
	Family() hashes.IndexFamily
}

// StageFactory builds stage number idx with the given capacity and target
// false-positive probability.
type StageFactory func(idx int, capacity uint64, fpr float64) (Stage, error)

// ScalableConfig parameterizes a scalable Bloom filter (§6.1, Almeida et al.).
type ScalableConfig struct {
	// InitialFPR is f₀, the error budget of the first stage.
	InitialFPR float64
	// TighteningRatio is r ∈ (0,1]: stage i targets fᵢ = f₀·rⁱ.
	// Dablooms uses 0.9.
	TighteningRatio float64
	// StageCapacity is δ, the insertions after which a new stage is created.
	StageCapacity uint64
	// MaxStages caps growth; 0 means unbounded. Inserts beyond the cap keep
	// landing in the last stage (overfilling it, as dablooms does).
	MaxStages int
	// Factory builds stages; defaults to classic Bloom stages over salted
	// SHA-256 when nil.
	Factory StageFactory
}

func (c *ScalableConfig) validate() error {
	if c.InitialFPR <= 0 || c.InitialFPR >= 1 {
		return fmt.Errorf("core: initial false-positive probability %v outside (0,1)", c.InitialFPR)
	}
	if c.TighteningRatio <= 0 || c.TighteningRatio > 1 {
		return fmt.Errorf("core: tightening ratio %v outside (0,1]", c.TighteningRatio)
	}
	if c.StageCapacity == 0 {
		return fmt.Errorf("core: stage capacity must be positive")
	}
	if c.MaxStages < 0 {
		return fmt.Errorf("core: negative stage cap %d", c.MaxStages)
	}
	return nil
}

// Scalable grows a sequence of stages so the compound false-positive
// probability F = 1 − ∏(1 − fᵢ) stays bounded while capacity is unbounded.
type Scalable struct {
	cfg    ScalableConfig
	stages []Stage
	n      uint64
}

var _ Filter = (*Scalable)(nil)

// NewScalable builds an empty scalable filter (the first stage is created
// eagerly so geometry is inspectable).
func NewScalable(cfg ScalableConfig) (*Scalable, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Factory == nil {
		cfg.Factory = func(idx int, capacity uint64, fpr float64) (Stage, error) {
			return NewBloomOptimal(capacity, fpr, hashes.SHA256, nil)
		}
	}
	s := &Scalable{cfg: cfg}
	if err := s.grow(); err != nil {
		return nil, err
	}
	return s, nil
}

// StageFPR returns fᵢ = f₀·rⁱ, the error budget of stage idx.
func (s *Scalable) StageFPR(idx int) float64 {
	f := s.cfg.InitialFPR
	for i := 0; i < idx; i++ {
		f *= s.cfg.TighteningRatio
	}
	return f
}

func (s *Scalable) grow() error {
	idx := len(s.stages)
	st, err := s.cfg.Factory(idx, s.cfg.StageCapacity, s.StageFPR(idx))
	if err != nil {
		return fmt.Errorf("core: growing scalable filter to stage %d: %w", idx, err)
	}
	s.stages = append(s.stages, st)
	return nil
}

// Add implements Filter. A new stage is created eagerly the moment the
// current one reaches capacity, so Stages() always exposes the next
// insertion target — adversaries (and honest planners) can inspect the
// geometry their items will land in. Growth errors cannot occur after
// construction with a factory that succeeded once; if the factory fails
// later, inserts keep landing in the last stage (overfilling it, as
// dablooms does), keeping Add infallible like dablooms' API.
func (s *Scalable) Add(item []byte) {
	last := s.stages[len(s.stages)-1]
	last.Add(item)
	s.n++
	if last.Count() >= s.cfg.StageCapacity &&
		(s.cfg.MaxStages == 0 || len(s.stages) < s.cfg.MaxStages) {
		_ = s.grow() // error: stay on the overfilled last stage
	}
}

// Test implements Filter: membership in any stage.
func (s *Scalable) Test(item []byte) bool {
	for _, st := range s.stages {
		if st.Test(item) {
			return true
		}
	}
	return false
}

// Count implements Filter.
func (s *Scalable) Count() uint64 { return s.n }

// Stages returns the live stages, oldest first. Callers must not grow the
// slice; mutating stages through it is how attack drivers model a
// chosen-insertion adversary whose items land in known stages.
func (s *Scalable) Stages() []Stage { return s.stages }

// CompoundFPR returns F = 1 − ∏(1 − f̂ᵢ) where f̂ᵢ is each stage's
// current estimated false-positive probability — the quantity plotted in
// Fig 8.
func (s *Scalable) CompoundFPR() float64 {
	pass := 1.0
	for _, st := range s.stages {
		pass *= 1 - st.EstimatedFPR()
	}
	return 1 - pass
}

// AnalyticCompoundFPR returns the design-time bound 1 − ∏(1 − f₀rⁱ) over
// λ stages.
func AnalyticCompoundFPR(f0, r float64, stages int) float64 {
	pass := 1.0
	f := f0
	for i := 0; i < stages; i++ {
		pass *= 1 - f
		f *= r
	}
	return 1 - pass
}

// ---------------------------------------------------------------------------
// Dablooms: Bitly's scaling counting Bloom filter (§6).

// DabloomsConfig mirrors the constants of §6: ten 4-bit-counter stages of
// δ = 10000 items, f₀ = 0.01, r = 0.9, MurmurHash3 with the
// Kirsch–Mitzenmacher index derivation.
type DabloomsConfig struct {
	InitialFPR      float64
	TighteningRatio float64
	StageCapacity   uint64
	MaxStages       int
	CounterWidth    int
	Overflow        OverflowPolicy
	Seed            uint64
}

// DefaultDabloomsConfig returns the paper's Fig 8 parameters.
func DefaultDabloomsConfig() DabloomsConfig {
	return DabloomsConfig{
		InitialFPR:      0.01,
		TighteningRatio: 0.9,
		StageCapacity:   10000,
		MaxStages:       10,
		CounterWidth:    4,
		Overflow:        Wrap,
	}
}

// Dablooms combines scalable growth with counting stages, supporting Remove.
type Dablooms struct {
	Scalable
	cfg DabloomsConfig
}

// NewDablooms builds a dablooms filter.
func NewDablooms(cfg DabloomsConfig) (*Dablooms, error) {
	if cfg.CounterWidth == 0 {
		cfg.CounterWidth = 4
	}
	if cfg.Overflow == 0 {
		cfg.Overflow = Wrap
	}
	factory := func(idx int, capacity uint64, fpr float64) (Stage, error) {
		m := OptimalM(capacity, fpr)
		if m == 0 {
			return nil, fmt.Errorf("core: cannot size dablooms stage %d (capacity %d, fpr %v)", idx, capacity, fpr)
		}
		fam, err := hashes.NewDoubleHashing(KForFPR(fpr), m, cfg.Seed+uint64(idx))
		if err != nil {
			return nil, err
		}
		return NewCounting(fam, cfg.CounterWidth, cfg.Overflow)
	}
	inner, err := NewScalable(ScalableConfig{
		InitialFPR:      cfg.InitialFPR,
		TighteningRatio: cfg.TighteningRatio,
		StageCapacity:   cfg.StageCapacity,
		MaxStages:       cfg.MaxStages,
		Factory:         factory,
	})
	if err != nil {
		return nil, err
	}
	return &Dablooms{Scalable: *inner, cfg: cfg}, nil
}

// Remove deletes item from the newest stage that reports it present,
// mirroring dablooms' behaviour of decrementing whichever filter holds the
// item. Removing a never-inserted (but false-positive) item is exactly the
// §6.2 deletion attack: it may create false negatives for other items.
func (d *Dablooms) Remove(item []byte) error {
	for i := len(d.stages) - 1; i >= 0; i-- {
		st := d.stages[i]
		if !st.Test(item) {
			continue
		}
		counting, ok := st.(*Counting)
		if !ok {
			return fmt.Errorf("core: dablooms stage %d is not a counting filter", i)
		}
		return counting.Remove(item)
	}
	return fmt.Errorf("core: item not present in any stage")
}

// CountingStages returns the stages with their concrete counting type for
// attack drivers.
func (d *Dablooms) CountingStages() []*Counting {
	out := make([]*Counting, 0, len(d.stages))
	for _, st := range d.stages {
		if c, ok := st.(*Counting); ok {
			out = append(out, c)
		}
	}
	return out
}
