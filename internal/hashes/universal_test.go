package hashes

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newUniversal(t testing.TB, k int, m uint64) *Universal {
	t.Helper()
	key, err := NewUniversalKey(k)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniversal(key, k, m)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniversalValidation(t *testing.T) {
	if _, err := NewUniversalKey(0); err == nil {
		t.Error("k=0 key accepted")
	}
	key, err := NewUniversalKey(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUniversal(key, 4, 100); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewUniversal(nil, 1, 100); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := NewUniversal(key, 2, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestUniversalFamilyContract(t *testing.T) {
	u := newUniversal(t, 4, 3200)
	checkFamily(t, u, 4, 3200)
	if u.DigestCalls() != 1 {
		t.Errorf("DigestCalls = %d", u.DigestCalls())
	}
}

func TestMulMod61(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 5, 0},
		{1, mersenne61 - 1, mersenne61 - 1},
		{2, mersenne61 - 1, mersenne61 - 2}, // 2(p−1) = 2p−2 ≡ p−2
		{mersenne61 - 1, mersenne61 - 1, 1}, // (p−1)² ≡ 1
	}
	for _, c := range cases {
		if got := mulMod61(c.a, c.b); got != c.want {
			t.Errorf("mulMod61(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: mulMod61 agrees with big-integer arithmetic via the double-and-
// add identity a·b = a·(b−1) + a.
func TestMulMod61Property(t *testing.T) {
	f := func(aRaw, bRaw uint64) bool {
		a, b := aRaw&mersenne61, bRaw&mersenne61
		if a == mersenne61 || b == mersenne61 {
			return true
		}
		if b == 0 {
			return mulMod61(a, b) == 0
		}
		return mulMod61(a, b) == addMod61(mulMod61(a, b-1), a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUniversalDistinctKeysDisagree(t *testing.T) {
	a := newUniversal(t, 4, 1<<20)
	b := newUniversal(t, 4, 1<<20)
	same := 0
	for i := 0; i < 100; i++ {
		item := []byte(fmt.Sprintf("item-%d", i))
		ia := a.Indexes(nil, item)
		ib := b.Indexes(nil, item)
		match := true
		for j := range ia {
			if ia[j] != ib[j] {
				match = false
				break
			}
		}
		if match {
			same++
		}
	}
	if same > 1 {
		t.Errorf("%d/100 items had identical index sets under independent keys", same)
	}
}

// The ε-almost-universal guarantee, empirically: random item pairs collide
// on the fingerprint with probability ≈ len/p ≈ 0 at this scale.
func TestUniversalFingerprintCollisions(t *testing.T) {
	u := newUniversal(t, 1, 1000)
	seen := map[uint64][]byte{}
	for i := 0; i < 200000; i++ {
		item := []byte(fmt.Sprintf("http://site-%d.example.com/", i))
		fp := u.Fingerprint(item)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision: %q vs %q", prev, item)
		}
		seen[fp] = item
	}
}

// Length-extension and prefix structure must not leak: items that are
// prefixes of each other, or differ only in trailing zeros, get distinct
// fingerprints.
func TestUniversalFingerprintStructure(t *testing.T) {
	u := newUniversal(t, 1, 1000)
	items := [][]byte{
		{}, {0}, {0, 0}, {0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0},
		[]byte("abc"), []byte("abc\x00"), []byte("abcdefg"), []byte("abcdefgh"),
	}
	seen := map[uint64]int{}
	for i, item := range items {
		fp := u.Fingerprint(item)
		if prev, ok := seen[fp]; ok {
			t.Errorf("items %d and %d share a fingerprint", prev, i)
		}
		seen[fp] = i
	}
}

// Index distribution stays near-uniform on generic (unstructured) inputs.
// Sequential strings like "item-N" are deliberately NOT used here: their
// fingerprints form arithmetic progressions (the trailing chunk walks the
// digit values), and a progression can alias badly modulo a power-of-two m
// under an unlucky key — a genuine property of ε-almost-universal families,
// which promise pairwise collision bounds, not k-wise equidistribution of
// structured sets. The key is random per run, so a majority vote over
// independent keys keeps the residual χ² tail from flaking the suite.
func TestUniversalDistribution(t *testing.T) {
	const m = 512
	chi2For := func(u *Universal, rng *rand.Rand) float64 {
		counts := make([]float64, m)
		var idx []uint64
		item := make([]byte, 16)
		for i := 0; i < 20000; i++ {
			rng.Read(item) //nolint:errcheck // math/rand Read never fails
			idx = u.Indexes(idx[:0], item)
			for _, v := range idx {
				counts[v]++
			}
		}
		expected := float64(20000*4) / m
		var chi2 float64
		for _, c := range counts {
			d := c - expected
			chi2 += d * d / expected
		}
		return chi2
	}
	failures := 0
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		if chi2 := chi2For(newUniversal(t, 4, m), rng); chi2 > 511+6*32 {
			failures++
			t.Logf("trial %d: chi-squared = %.1f", trial, chi2)
		}
	}
	if failures >= 2 {
		t.Errorf("%d of 3 independent keys produced skewed index distributions", failures)
	}
}

func BenchmarkUniversalIndexes(b *testing.B) {
	key, err := NewUniversalKey(7)
	if err != nil {
		b.Fatal(err)
	}
	u, err := NewUniversal(key, 7, 1<<24)
	if err != nil {
		b.Fatal(err)
	}
	item := []byte("http://example.com/some/long/path/page.html")
	var idx []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx = u.Indexes(idx[:0], item)
	}
}
