package hashes

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
)

// Algorithm identifies one of the hash functions studied in the paper.
type Algorithm int

// The supported algorithms. Keyed algorithms require a key at Digester
// construction; the others ignore it.
const (
	MD5 Algorithm = iota + 1
	SHA1
	SHA256
	SHA384
	SHA512
	HMACSHA1
	HMACSHA256
	HMACSHA512
	MurmurHash32
	MurmurHash128
	JenkinsOAAT
	FNV1a64
	SipHash24Alg
)

// Algorithms lists every supported algorithm in Table 2 order followed by
// the remaining ones; used by benchmarks and the CLI.
var Algorithms = []Algorithm{
	MurmurHash32, MD5, SHA1, SHA256, SHA384, SHA512, HMACSHA1, SipHash24Alg,
	HMACSHA256, HMACSHA512, MurmurHash128, JenkinsOAAT, FNV1a64,
}

var algNames = map[Algorithm]string{
	MD5:           "MD5",
	SHA1:          "SHA-1",
	SHA256:        "SHA-256",
	SHA384:        "SHA-384",
	SHA512:        "SHA-512",
	HMACSHA1:      "HMAC-SHA-1",
	HMACSHA256:    "HMAC-SHA-256",
	HMACSHA512:    "HMAC-SHA-512",
	MurmurHash32:  "MurmurHash-32",
	MurmurHash128: "MurmurHash-128",
	JenkinsOAAT:   "Jenkins-OAAT",
	FNV1a64:       "FNV-1a-64",
	SipHash24Alg:  "SipHash-2-4",
}

func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves a case-sensitive name as printed by String.
func ParseAlgorithm(name string) (Algorithm, error) {
	for a, s := range algNames {
		if s == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("hashes: unknown algorithm %q", name)
}

// DigestBits returns the digest length ℓ in bits.
func (a Algorithm) DigestBits() int {
	switch a {
	case MD5:
		return 128
	case SHA1, HMACSHA1:
		return 160
	case SHA256, HMACSHA256:
		return 256
	case SHA384:
		return 384
	case SHA512, HMACSHA512:
		return 512
	case MurmurHash32, JenkinsOAAT:
		return 32
	case MurmurHash128:
		return 128
	case FNV1a64, SipHash24Alg:
		return 64
	default:
		return 0
	}
}

// Cryptographic reports whether the algorithm is designed to resist
// pre-image, second pre-image and collision attacks (§2).
func (a Algorithm) Cryptographic() bool {
	switch a {
	case MD5, SHA1, SHA256, SHA384, SHA512, HMACSHA1, HMACSHA256, HMACSHA512:
		return true
	default:
		return false
	}
}

// Keyed reports whether the algorithm takes a secret key, the property that
// defeats every adversary of §4 when the key stays server-side (§8.2).
func (a Algorithm) Keyed() bool {
	switch a {
	case HMACSHA1, HMACSHA256, HMACSHA512, SipHash24Alg:
		return true
	default:
		return false
	}
}

// A Digester computes salted digests of items under one Algorithm. The salt
// plays pyBloom's role: deriving the k "independent" hash functions from one
// primitive. Digesters are not safe for concurrent use; Clone one per
// goroutine.
type Digester struct {
	alg    Algorithm
	key    []byte
	sipKey SipKey
	h      hash.Hash // reused between Sum calls for stateful algorithms
	salt   [4]byte   // scratch for the big-endian salt prefix
	buf    []byte    // reused digest scratch for Sum64
}

// NewDigester returns a Digester for alg. Keyed algorithms require a
// non-empty key (16 bytes exactly for SipHash); unkeyed ones reject a key to
// catch configuration mistakes.
func NewDigester(alg Algorithm, key []byte) (*Digester, error) {
	d := &Digester{alg: alg}
	if alg.Keyed() {
		if len(key) == 0 {
			return nil, fmt.Errorf("hashes: %v requires a key", alg)
		}
		d.key = make([]byte, len(key))
		copy(d.key, key)
	} else if len(key) != 0 {
		return nil, fmt.Errorf("hashes: %v does not take a key", alg)
	}
	switch alg {
	case MD5:
		d.h = md5.New()
	case SHA1:
		d.h = sha1.New()
	case SHA256:
		d.h = sha256.New()
	case SHA384:
		d.h = sha512.New384()
	case SHA512:
		d.h = sha512.New()
	case HMACSHA1:
		d.h = hmac.New(sha1.New, d.key)
	case HMACSHA256:
		d.h = hmac.New(sha256.New, d.key)
	case HMACSHA512:
		d.h = hmac.New(sha512.New, d.key)
	case SipHash24Alg:
		if len(key) != 16 {
			return nil, fmt.Errorf("hashes: SipHash needs a 16-byte key, got %d", len(key))
		}
		var kb [16]byte
		copy(kb[:], key)
		d.sipKey = SipKeyFromBytes(kb)
	case MurmurHash32, MurmurHash128, JenkinsOAAT, FNV1a64:
		// Stateless; nothing to construct.
	default:
		return nil, fmt.Errorf("hashes: unsupported algorithm %v", alg)
	}
	return d, nil
}

// Algorithm returns the algorithm this Digester computes.
func (d *Digester) Algorithm() Algorithm { return d.alg }

// Bits returns the digest length in bits.
func (d *Digester) Bits() int { return d.alg.DigestBits() }

// Clone returns an independent Digester with the same algorithm and key,
// for concurrent use.
func (d *Digester) Clone() *Digester {
	nd, err := NewDigester(d.alg, d.key)
	if err != nil {
		// Construction already succeeded once with identical inputs.
		panic("hashes: clone of valid digester failed: " + err.Error())
	}
	return nd
}

// Sum appends the salted digest of item to dst and returns the extended
// slice. For stateful (crypto) algorithms the salt is hashed as a 4-byte
// big-endian prefix, mirroring pyBloom's salted-copies construction; for
// seeded algorithms the salt is the seed.
func (d *Digester) Sum(dst, item []byte, salt uint32) []byte {
	switch d.alg {
	case MurmurHash32:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], Murmur32(item, salt))
		return append(dst, b[:]...)
	case MurmurHash128:
		var b [16]byte
		h1, h2 := Murmur128(item, uint64(salt))
		binary.BigEndian.PutUint64(b[0:8], h1)
		binary.BigEndian.PutUint64(b[8:16], h2)
		return append(dst, b[:]...)
	case JenkinsOAAT:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], Jenkins32(item, salt))
		return append(dst, b[:]...)
	case FNV1a64:
		f := fnv.New64a()
		var sb [4]byte
		binary.BigEndian.PutUint32(sb[:], salt)
		f.Write(sb[:]) //nolint:errcheck // hash.Hash writes never fail
		f.Write(item)  //nolint:errcheck
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], f.Sum64())
		return append(dst, b[:]...)
	case SipHash24Alg:
		key := d.sipKey
		key.K1 ^= uint64(salt) // salted variants share the secret, differ in K1
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], SipHash24(key, item))
		return append(dst, b[:]...)
	default:
		d.h.Reset()
		binary.BigEndian.PutUint32(d.salt[:], salt)
		d.h.Write(d.salt[:]) //nolint:errcheck
		d.h.Write(item)      //nolint:errcheck
		return d.h.Sum(dst)
	}
}

// Sum64 returns the first 64 bits (big-endian) of the salted digest, the
// quantity reduced modulo m for one filter index. Shorter digests are used
// in full.
func (d *Digester) Sum64(item []byte, salt uint32) uint64 {
	d.buf = d.Sum(d.buf[:0], item, salt)
	if len(d.buf) >= 8 {
		return binary.BigEndian.Uint64(d.buf[:8])
	}
	var v uint64
	for _, b := range d.buf {
		v = v<<8 | uint64(b)
	}
	return v
}
