package hashes

import (
	"testing"
	"testing/quick"
)

func TestInvertFmix64(t *testing.T) {
	for _, h := range []uint64{0, 1, 0xdeadbeefcafebabe, ^uint64(0)} {
		if got := fmix64(InvertFmix64(h)); got != h {
			t.Errorf("fmix64(InvertFmix64(%#x)) = %#x", h, got)
		}
		if got := InvertFmix64(fmix64(h)); got != h {
			t.Errorf("InvertFmix64(fmix64(%#x)) = %#x", h, got)
		}
	}
}

func TestInvertFmix64Property(t *testing.T) {
	f := func(h uint64) bool { return fmix64(InvertFmix64(h)) == h }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMulInverse64(t *testing.T) {
	for _, a := range []uint64{1, 3, 5, murmur64C1, murmur64C2, 0xff51afd7ed558ccd, 0xc4ceb9fe1a85ec53} {
		if a*mulInverse64(a) != 1 {
			t.Errorf("a·inv(a) ≠ 1 for a=%#x", a)
		}
	}
}

func TestMurmur128Preimage(t *testing.T) {
	prefixes := [][]byte{
		nil,
		[]byte("http://evil.com/"), // exactly 16 bytes
		[]byte("http://phishing-site.example.org"), // 32 bytes
	}
	targets := [][2]uint64{
		{0, 0},
		{1, 2},
		{0xdeadbeefcafebabe, 0x0123456789abcdef},
		{^uint64(0), ^uint64(0)},
	}
	for _, p := range prefixes {
		for _, tgt := range targets {
			for _, seed := range []uint64{0, 42, 1 << 40} {
				msg, err := Murmur128Preimage(p, tgt[0], tgt[1], seed)
				if err != nil {
					t.Fatalf("preimage(%q, %v, seed=%d): %v", p, tgt, seed, err)
				}
				h1, h2 := Murmur128(msg, seed)
				if h1 != tgt[0] || h2 != tgt[1] {
					t.Errorf("Murmur128(preimage) = (%#x, %#x), want (%#x, %#x)", h1, h2, tgt[0], tgt[1])
				}
				if string(msg[:len(p)]) != string(p) {
					t.Error("prefix not preserved")
				}
			}
		}
	}
}

func TestMurmur128PreimageRejectsBadPrefix(t *testing.T) {
	if _, err := Murmur128Preimage([]byte("short"), 0, 0, 0); err == nil {
		t.Error("prefix length 5 accepted")
	}
}

func TestMurmur128PreimageProperty(t *testing.T) {
	f := func(t1, t2, seed uint64, prefixRaw []byte) bool {
		prefix := prefixRaw[:len(prefixRaw)-len(prefixRaw)%16]
		msg, err := Murmur128Preimage(prefix, t1, t2, seed)
		if err != nil {
			return false
		}
		h1, h2 := Murmur128(msg, seed)
		return h1 == t1 && h2 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The dablooms-killer: forging an item that lands on an exact chosen index
// set of the Kirsch–Mitzenmacher family.
func TestMurmur128PreimageIndexes(t *testing.T) {
	const m, k, seed = 95851, 7, 3
	fam, err := NewDoubleHashing(k, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ base, stride uint64 }{
		{0, 0},         // all k indexes collapse onto counter 0
		{100, 0},       // all onto counter 100 (overflow attack shape)
		{5, 17},        // arithmetic progression
		{95850, 95850}, // maximal values
	} {
		item, err := Murmur128PreimageIndexes([]byte("http://evil.com/"), tc.base, tc.stride, m, seed)
		if err != nil {
			t.Fatalf("forge(%d, %d): %v", tc.base, tc.stride, err)
		}
		idx := fam.Indexes(nil, item)
		for i, v := range idx {
			want := (tc.base + uint64(i)*tc.stride) % m
			if v != want {
				t.Errorf("base=%d stride=%d: g_%d = %d, want %d", tc.base, tc.stride, i, v, want)
			}
		}
	}
}

func TestMurmur128PreimageIndexesValidation(t *testing.T) {
	if _, err := Murmur128PreimageIndexes(nil, 0, 0, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Murmur128PreimageIndexes(nil, 10, 0, 10, 0); err == nil {
		t.Error("base==m accepted")
	}
	if _, err := Murmur128PreimageIndexes(nil, 0, 10, 10, 0); err == nil {
		t.Error("stride==m accepted")
	}
}
