package hashes

import (
	"testing"
	"testing/quick"
)

// Official SipHash-2-4 test vectors from the reference implementation
// (Aumasson & Bernstein): key 000102…0f, messages 00, 0001, 000102, … of
// increasing length; expected 64-bit outputs (little-endian in the paper's
// vectors.h, given here as integers).
var sipVectors = []uint64{
	0x726fdb47dd0e0e31, 0x74f839c593dc67fd, 0x0d6c8009d9a94f5a, 0x85676696d7fb7e2d,
	0xcf2794e0277187b7, 0x18765564cd99a68d, 0xcbc9466e58fee3ce, 0xab0200f58b01d137,
	0x93f5f5799a932462, 0x9e0082df0ba9e4b0, 0x7a5dbbc594ddb9f3, 0xf4b32f46226bada7,
	0x751e8fbc860ee5fb, 0x14ea5627c0843d90, 0xf723ca908e7af2ee, 0xa129ca6149be45e5,
	0x3f2acc7f57c29bdb, 0x699ae9f52cbe4794, 0x4bc1b3f0968dd39c, 0xbb6dc91da77961bd,
	0xbed65cf21aa2ee98, 0xd0f2cbb02e3b67c7, 0x93536795e3a33e88, 0xa80c038ccd5ccec8,
	0xb8ad50c6f649af94, 0xbce192de8a85b8ea, 0x17d835b85bbb15f3, 0x2f2e6163076bcfad,
	0xde4daaaca71dc9a5, 0xa6a2506687956571, 0xad87a3535c49ef28, 0x32d892fad841c342,
}

func TestSipHash24Vectors(t *testing.T) {
	var keyBytes [16]byte
	for i := range keyBytes {
		keyBytes[i] = byte(i)
	}
	key := SipKeyFromBytes(keyBytes)
	msg := make([]byte, 0, len(sipVectors))
	for i, want := range sipVectors {
		if got := SipHash24(key, msg); got != want {
			t.Errorf("vector %d: SipHash24 = %#x, want %#x", i, got, want)
		}
		msg = append(msg, byte(i))
	}
}

func TestSipKeyFromBytes(t *testing.T) {
	var b [16]byte
	b[0] = 1
	b[8] = 2
	key := SipKeyFromBytes(b)
	if key.K0 != 1 || key.K1 != 2 {
		t.Errorf("key = %+v, want K0=1 K1=2", key)
	}
}

// Property: different keys produce different digests for the same message
// (with overwhelming probability) — the unpredictability that defeats the
// paper's adversaries.
func TestSipHashKeySensitivity(t *testing.T) {
	f := func(k0a, k1a, k0b, k1b uint64, msg []byte) bool {
		if k0a == k0b && k1a == k1b {
			return true
		}
		a := SipHash24(SipKey{K0: k0a, K1: k1a}, msg)
		b := SipHash24(SipKey{K0: k0b, K1: k1b}, msg)
		return a != b // a 2^-64 false-failure chance, negligible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJenkins32Vectors(t *testing.T) {
	// Known one-at-a-time values (seed 0).
	cases := []struct {
		data string
		want uint32
	}{
		{"", 0},
		{"a", 0xca2e9442},
		{"The quick brown fox jumps over the lazy dog", 0x519e91f5},
	}
	for _, c := range cases {
		if got := Jenkins32([]byte(c.data), 0); got != c.want {
			t.Errorf("Jenkins32(%q, 0) = %#x, want %#x", c.data, got, c.want)
		}
	}
	// Seed changes the digest.
	if Jenkins32([]byte("x"), 1) == Jenkins32([]byte("x"), 2) {
		t.Error("Jenkins32 ignores the seed")
	}
}
