package hashes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x86 32-bit, cross-checked against the
// canonical C++ implementation and the widely published verification set.
func TestMurmur32Vectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint32
		want uint32
	}{
		{"", 0, 0x00000000},
		{"", 1, 0x514E28B7},
		{"", 0xffffffff, 0x81F16F39},
		{"\xff\xff\xff\xff", 0, 0x76293B50},
		{"\x21\x43\x65\x87", 0, 0xF55B516B},
		{"\x21\x43\x65\x87", 0x5082EDEE, 0x2362F9DE},
		{"\x21\x43\x65", 0, 0x7E4A8634},
		{"\x21\x43", 0, 0xA0F7B07A},
		{"\x21", 0, 0x72661CF4},
		{"\x00\x00\x00\x00", 0, 0x2362F9DE},
		{"\x00\x00\x00", 0, 0x85F0B427},
		{"\x00\x00", 0, 0x30F4C306},
		{"\x00", 0, 0x514E28B7},
		{"aaaa", 0x9747b28c, 0x5A97808A},
		{"aaa", 0x9747b28c, 0x283E0130},
		{"aa", 0x9747b28c, 0x5D211726},
		{"a", 0x9747b28c, 0x7FA09EA6},
		{"abcd", 0x9747b28c, 0xF0478627},
		{"abc", 0x9747b28c, 0xC84A62DD},
		{"ab", 0x9747b28c, 0x74875592},
		{"Hello, world!", 0x9747b28c, 0x24884CBA},
	}
	for _, c := range cases {
		if got := Murmur32([]byte(c.data), c.seed); got != c.want {
			t.Errorf("Murmur32(%q, %#x) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestMurmur128Basics(t *testing.T) {
	// Empty input with zero seed collapses to (0, 0) by construction.
	h1, h2 := Murmur128(nil, 0)
	if h1 != 0 || h2 != 0 {
		t.Errorf("Murmur128(nil, 0) = (%#x, %#x), want (0, 0)", h1, h2)
	}
	// Determinism and seed sensitivity.
	a1, a2 := Murmur128([]byte("http://example.com/"), 42)
	b1, b2 := Murmur128([]byte("http://example.com/"), 42)
	if a1 != b1 || a2 != b2 {
		t.Error("Murmur128 not deterministic")
	}
	c1, c2 := Murmur128([]byte("http://example.com/"), 43)
	if a1 == c1 && a2 == c2 {
		t.Error("Murmur128 ignores the seed")
	}
}

// Every tail length 0..16 must be exercised without panics and produce
// distinct digests for distinct inputs (with overwhelming probability).
func TestMurmur128TailLengths(t *testing.T) {
	seen := map[uint64]int{}
	base := []byte("0123456789abcdef0123456789abcdef")
	for n := 0; n <= len(base); n++ {
		h1, _ := Murmur128(base[:n], 0)
		if prev, dup := seen[h1]; dup {
			t.Errorf("length %d collides with length %d", n, prev)
		}
		seen[h1] = n
	}
}

func TestMurmur32AvalancheSmoke(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	data := []byte("The quick brown fox jumps over the lazy dog")
	h := Murmur32(data, 0)
	var totalFlips, trials int
	for i := range data {
		for b := 0; b < 8; b++ {
			mutated := make([]byte, len(data))
			copy(mutated, data)
			mutated[i] ^= 1 << b
			diff := h ^ Murmur32(mutated, 0)
			totalFlips += popcount32(diff)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 12 || avg > 20 {
		t.Errorf("average flipped output bits = %.2f, want ≈16", avg)
	}
}

func popcount32(v uint32) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func TestInvertFmix32(t *testing.T) {
	for _, h := range []uint32{0, 1, 0xdeadbeef, 0xffffffff, 12345} {
		if got := fmix32(InvertFmix32(h)); got != h {
			t.Errorf("fmix32(InvertFmix32(%#x)) = %#x", h, got)
		}
		if got := InvertFmix32(fmix32(h)); got != h {
			t.Errorf("InvertFmix32(fmix32(%#x)) = %#x", h, got)
		}
	}
}

// Property: the finalizer inversion is the exact inverse on random values.
func TestInvertFmix32Property(t *testing.T) {
	f := func(h uint32) bool { return fmix32(InvertFmix32(h)) == h && InvertFmix32(fmix32(h)) == h }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMulInverse32(t *testing.T) {
	for _, a := range []uint32{1, 3, 5, murmur32C1, murmur32C2, 0x85ebca6b, 0xc2b2ae35, 0xffffffff} {
		if got := a * mulInverse32(a); got != 1 {
			t.Errorf("a*inv(a) = %d for a=%#x", got, a)
		}
	}
}

// The headline §6.2 capability: constant-time pre-images for MurmurHash3-32.
func TestMurmur32Preimage(t *testing.T) {
	prefixes := [][]byte{
		nil,
		[]byte("http"),
		[]byte("http://evil.example.com/"), // 24 bytes, multiple of 4
	}
	targets := []uint32{0, 1, 0xdeadbeef, 0x12345678, 0xffffffff}
	seeds := []uint32{0, 1, 0x9747b28c}
	for _, p := range prefixes {
		for _, target := range targets {
			for _, seed := range seeds {
				msg, err := Murmur32Preimage(p, target, seed)
				if err != nil {
					t.Fatalf("preimage(%q, %#x, %#x): %v", p, target, seed, err)
				}
				if got := Murmur32(msg, seed); got != target {
					t.Errorf("Murmur32(preimage) = %#x, want %#x", got, target)
				}
				if string(msg[:len(p)]) != string(p) {
					t.Errorf("preimage does not keep prefix %q", p)
				}
			}
		}
	}
}

func TestMurmur32PreimageRejectsBadPrefix(t *testing.T) {
	if _, err := Murmur32Preimage([]byte("abc"), 0, 0); err == nil {
		t.Error("prefix of length 3 accepted")
	}
}

// Property: for random prefixes (padded to 4-byte multiples), targets and
// seeds, the forged message always hashes to the target.
func TestMurmur32PreimageProperty(t *testing.T) {
	f := func(prefixRaw []byte, target, seed uint32) bool {
		prefix := prefixRaw[:len(prefixRaw)-len(prefixRaw)%4]
		msg, err := Murmur32Preimage(prefix, target, seed)
		if err != nil {
			return false
		}
		return Murmur32(msg, seed) == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMurmur32PreimageIndex(t *testing.T) {
	const m = 3200
	for index := uint64(0); index < m; index += 321 {
		for offset := uint64(0); offset < 3; offset++ {
			msg, err := Murmur32PreimageIndex([]byte("evil"), index, m, offset, 0)
			if err != nil {
				t.Fatalf("index %d offset %d: %v", index, offset, err)
			}
			if got := uint64(Murmur32(msg, 0)) % m; got != index {
				t.Errorf("digest mod m = %d, want %d", got, index)
			}
		}
	}
	// Distinct offsets must give distinct messages: multiple pre-images.
	a, _ := Murmur32PreimageIndex(nil, 7, m, 0, 0)
	b, _ := Murmur32PreimageIndex(nil, 7, m, 1, 0)
	if string(a) == string(b) {
		t.Error("offsets 0 and 1 produced identical pre-images")
	}
}

func TestMurmur32PreimageIndexErrors(t *testing.T) {
	if _, err := Murmur32PreimageIndex(nil, 0, 0, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Murmur32PreimageIndex(nil, 10, 10, 0, 0); err == nil {
		t.Error("index == m accepted")
	}
	if _, err := Murmur32PreimageIndex(nil, 1, 1<<31, 4, 0); err == nil {
		t.Error("offset overflowing 32-bit digest space accepted")
	}
}

func TestMurmur64MatchesFirstHalf(t *testing.T) {
	data := []byte("consistency")
	h1, _ := Murmur128(data, 99)
	if got := Murmur64(data, 99); got != h1 {
		t.Errorf("Murmur64 = %#x, want first half %#x", got, h1)
	}
}

// Uniformity smoke test: reduced digests of sequential URLs should fill a
// small filter close to the binomial expectation.
func TestMurmur32DistributionSmoke(t *testing.T) {
	const m, n = 1024, 10000
	counts := make([]int, m)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		item := []byte{byte(rng.Int()), byte(rng.Int()), byte(rng.Int()), byte(i), byte(i >> 8), byte(i >> 16)}
		counts[Murmur32(item, 0)%m]++
	}
	// Chi-squared against uniform; dof=1023, generous bound ≈ dof+5·sqrt(2·dof).
	expected := float64(n) / float64(m)
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 1023+5*45.2 {
		t.Errorf("chi-squared = %.1f, too far from uniform", chi2)
	}
}
