package hashes

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Inversion of the 128-bit x64 MurmurHash3 variant. For inputs whose length
// is a multiple of the 16-byte block size, every step of the algorithm is a
// bijection on (uint64, uint64), so a full 128-bit digest can be hit with a
// single constant-time computation. Because dablooms derives all k filter
// indexes from one Murmur128 digest via g_i = h1 + i·h2 (Kirsch–
// Mitzenmacher), this gives the adversary direct write access to index sets:
// she picks (h1, h2), inverts, and obtains a 16-byte suffix for any chosen
// prefix — the strongest form of the paper's "MurmurHash can be inverted in
// constant time" (§6.2).

var (
	invFmix64C1   = mulInverse64(0xff51afd7ed558ccd)
	invFmix64C2   = mulInverse64(0xc4ceb9fe1a85ec53)
	invMurmur64C1 = mulInverse64(murmur64C1)
	invMurmur64C2 = mulInverse64(murmur64C2)
	invFive64     = mulInverse64(5)
)

// mulInverse64 returns x with a·x ≡ 1 (mod 2^64) for odd a.
func mulInverse64(a uint64) uint64 {
	x := a
	for i := 0; i < 6; i++ {
		x *= 2 - a*x
	}
	return x
}

// unxorshiftRight64 inverts h ^= h >> s for 0 < s < 64.
func unxorshiftRight64(h uint64, s uint) uint64 {
	res := h
	for i := s; i < 64; i += s {
		res = h ^ (res >> s)
	}
	return res
}

// InvertFmix64 inverts MurmurHash3's 64-bit finalizer.
func InvertFmix64(h uint64) uint64 {
	h = unxorshiftRight64(h, 33)
	h *= invFmix64C2
	h = unxorshiftRight64(h, 33)
	h *= invFmix64C1
	h = unxorshiftRight64(h, 33)
	return h
}

// murmur128State returns (h1, h2) after absorbing data (length must be a
// multiple of 16) from seed, before length-xor and finalization.
func murmur128State(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data)
		k2 := binary.LittleEndian.Uint64(data[8:])
		data = data[16:]

		k1 *= murmur64C1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= murmur64C2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= murmur64C2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= murmur64C1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}
	return h1, h2
}

// Murmur128Preimage returns prefix‖suffix with a computed 16-byte suffix such
// that Murmur128(message, seed) == (target1, target2). The prefix length
// must be a multiple of 16 bytes.
func Murmur128Preimage(prefix []byte, target1, target2, seed uint64) ([]byte, error) {
	if len(prefix)%16 != 0 {
		return nil, fmt.Errorf("hashes: prefix length %d is not a multiple of the 16-byte block size", len(prefix))
	}
	n := uint64(len(prefix) + 16)

	// Invert the finalization: h1 += h2; h2 += h1; fmix both; h1 += h2; h2 += h1.
	h1, h2 := target1, target2
	h2 -= h1
	h1 -= h2
	h1 = InvertFmix64(h1)
	h2 = InvertFmix64(h2)
	h2 -= h1
	h1 -= h2
	// Invert the length xor.
	h1 ^= n
	h2 ^= n

	// h1, h2 are now the post-body states. Compute the pre-block states from
	// the prefix, then solve the final block (k1, k2).
	p1, p2 := murmur128State(prefix, seed)

	// Step 1 (h1 update) depends only on k1 and (p1, p2):
	//   h1 = (rotl27(p1 ^ scr1(k1)) + p2)·5 + 0x52dce729
	t1 := (h1 - 0x52dce729) * invFive64
	t1 -= p2
	t1 = bits.RotateLeft64(t1, -27)
	k1 := t1 ^ p1
	k1 *= invMurmur64C2
	k1 = bits.RotateLeft64(k1, -31)
	k1 *= invMurmur64C1

	// Step 2 (h2 update) uses the already-final h1:
	//   h2 = (rotl31(p2 ^ scr2(k2)) + h1)·5 + 0x38495ab5
	t2 := (h2 - 0x38495ab5) * invFive64
	t2 -= h1
	t2 = bits.RotateLeft64(t2, -31)
	k2 := t2 ^ p2
	k2 *= invMurmur64C1
	k2 = bits.RotateLeft64(k2, -33)
	k2 *= invMurmur64C2

	out := make([]byte, len(prefix)+16)
	copy(out, prefix)
	binary.LittleEndian.PutUint64(out[len(prefix):], k1)
	binary.LittleEndian.PutUint64(out[len(prefix)+8:], k2)
	return out, nil
}

// Murmur128PreimageIndexes forges an item whose Kirsch–Mitzenmacher index
// set under (k, m, seed) is exactly {base + i·stride mod m}: it selects
// digest halves h1 = base and h2 = stride and inverts. Combined with a
// search over (base, stride) pairs — pure arithmetic, no hashing — this
// makes pollution, forgery and deletion against dablooms-style filters
// effectively free.
func Murmur128PreimageIndexes(prefix []byte, base, stride, m uint64, seed uint64) ([]byte, error) {
	if m == 0 {
		return nil, fmt.Errorf("hashes: filter size must be positive")
	}
	if base >= m || stride >= m {
		return nil, fmt.Errorf("hashes: base %d or stride %d out of range for m=%d", base, stride, m)
	}
	return Murmur128Preimage(prefix, base, stride, seed)
}
