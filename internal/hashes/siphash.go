package hashes

import (
	"encoding/binary"
	"math/bits"
)

// SipHash-2-4 (Aumasson & Bernstein), the keyed short-input PRF the paper
// benchmarks in Table 2 as the fast, secure alternative to both raw
// MurmurHash and full HMAC constructions. Implemented from the reference
// specification; 128-bit key, 64-bit output.

// SipKey is a 128-bit SipHash key.
type SipKey struct {
	K0, K1 uint64
}

// SipKeyFromBytes builds a key from the first 16 bytes of b, little-endian,
// matching the reference implementation's key layout.
func SipKeyFromBytes(b [16]byte) SipKey {
	return SipKey{
		K0: binary.LittleEndian.Uint64(b[0:8]),
		K1: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// SipHash24 computes SipHash-2-4 of data under key.
func SipHash24(key SipKey, data []byte) uint64 {
	v0 := key.K0 ^ 0x736f6d6570736575
	v1 := key.K1 ^ 0x646f72616e646f6d
	v2 := key.K0 ^ 0x6c7967656e657261
	v3 := key.K1 ^ 0x7465646279746573

	n := len(data)
	for len(data) >= 8 {
		m := binary.LittleEndian.Uint64(data)
		data = data[8:]
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
	}

	// Final block: remaining bytes, zero padding, length in the top byte.
	m := uint64(n) << 56
	for i, b := range data {
		m |= uint64(b) << (8 * uint(i))
	}
	v3 ^= m
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= m

	v2 ^= 0xff
	for i := 0; i < 4; i++ {
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	}
	return v0 ^ v1 ^ v2 ^ v3
}

func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = bits.RotateLeft64(v1, 13)
	v1 ^= v0
	v0 = bits.RotateLeft64(v0, 32)
	v2 += v3
	v3 = bits.RotateLeft64(v3, 16)
	v3 ^= v2
	v0 += v3
	v3 = bits.RotateLeft64(v3, 21)
	v3 ^= v0
	v2 += v1
	v1 = bits.RotateLeft64(v1, 17)
	v1 ^= v2
	v2 = bits.RotateLeft64(v2, 32)
	return v0, v1, v2, v3
}
