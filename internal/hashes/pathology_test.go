package hashes

import (
	"testing"
)

// The Kirsch–Mitzenmacher derivation has a structural pathology the §6.2
// attacks exploit: when h2 ≡ 0 (mod m) all k indexes collapse onto a single
// position, so the item effectively uses k = 1 — and with an invertible
// hash the adversary mints such items at will (the overflow attack's
// mechanism). A salted family has no such degenerate class.
func TestDoubleHashingStrideZeroPathology(t *testing.T) {
	const m, k, seed = 9585, 7, 3
	fam, err := NewDoubleHashing(k, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	item, err := Murmur128PreimageIndexes([]byte("http://evil.com/"), 1234, 0, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	idx := fam.Indexes(nil, item)
	for i, v := range idx {
		if v != 1234 {
			t.Fatalf("index %d = %d, want full collapse onto 1234", i, v)
		}
	}

	// Honest items essentially never collapse (probability 1/m per item).
	collapsed := 0
	for i := 0; i < 5000; i++ {
		idx = fam.Indexes(idx[:0], []byte{byte(i), byte(i >> 8), 'x'})
		allSame := true
		for _, v := range idx[1:] {
			if v != idx[0] {
				allSame = false
				break
			}
		}
		if allSame {
			collapsed++
		}
	}
	if collapsed > 2 {
		t.Errorf("%d/5000 honest items collapsed", collapsed)
	}
}

// A second KM pathology: stride m/gcd patterns make indexes revisit few
// distinct positions. The adversary controls the number of distinct
// positions an item touches — anywhere from 1 to k.
func TestDoubleHashingChosenDistinctPositions(t *testing.T) {
	const m, k, seed = 9585, 7, 9
	fam, err := NewDoubleHashing(k, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, stride := range []uint64{0, 1, 5} {
		item, err := Murmur128PreimageIndexes([]byte("http://evil.com/"), 100, stride, m, seed)
		if err != nil {
			t.Fatal(err)
		}
		idx := fam.Indexes(nil, item)
		distinct := map[uint64]bool{}
		for _, v := range idx {
			distinct[v] = true
		}
		want := k
		if stride == 0 {
			want = 1
		}
		if len(distinct) != want {
			t.Errorf("stride %d: %d distinct positions, want %d", stride, len(distinct), want)
		}
	}
}
