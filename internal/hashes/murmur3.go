package hashes

import (
	"encoding/binary"
	"math/bits"
)

// MurmurHash3 constants (Austin Appleby's reference implementation).
const (
	murmur32C1 = 0xcc9e2d51
	murmur32C2 = 0x1b873593
	murmur64C1 = 0x87c37b91114253d5
	murmur64C2 = 0x4cf5ad432745937f
)

// Murmur32 computes the 32-bit x86 variant of MurmurHash3 with the given
// seed. This is the function dablooms feeds to its Kirsch–Mitzenmacher index
// derivation and the one whose inversion (see Invert functions) the paper
// uses to claim constant-time pre-image forgery.
func Murmur32(data []byte, seed uint32) uint32 {
	h := seed
	n := uint32(len(data))
	for len(data) >= 4 {
		k := binary.LittleEndian.Uint32(data)
		data = data[4:]
		h ^= murmur32Scramble(k)
		h = bits.RotateLeft32(h, 13)
		h = h*5 + 0xe6546b64
	}
	var k uint32
	switch len(data) {
	case 3:
		k ^= uint32(data[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(data[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(data[0])
		h ^= murmur32Scramble(k)
	}
	h ^= n
	return fmix32(h)
}

// murmur32Scramble applies the per-block mixing of the 32-bit variant.
func murmur32Scramble(k uint32) uint32 {
	k *= murmur32C1
	k = bits.RotateLeft32(k, 15)
	k *= murmur32C2
	return k
}

// fmix32 is MurmurHash3's 32-bit finalizer. Every step is a bijection on
// uint32, which is what makes the digest invertible (see InvertFmix32).
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// fmix64 is MurmurHash3's 64-bit finalizer.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Murmur128 computes the 128-bit x64 variant of MurmurHash3, returning the
// two 64-bit halves. Bloom filters use the halves as the h1/h2 pair of the
// Kirsch–Mitzenmacher derivation ("less hashing, same performance").
func Murmur128(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	n := uint64(len(data))
	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data)
		k2 := binary.LittleEndian.Uint64(data[8:])
		data = data[16:]

		k1 *= murmur64C1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= murmur64C2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= murmur64C2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= murmur64C1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	switch len(data) & 15 {
	case 15:
		k2 ^= uint64(data[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(data[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(data[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(data[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(data[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(data[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(data[8])
		k2 *= murmur64C2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= murmur64C1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(data[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(data[0])
		k1 *= murmur64C1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= murmur64C2
		h1 ^= k1
	}

	h1 ^= n
	h2 ^= n
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Murmur64 returns the first 64-bit half of Murmur128; a convenient 64-bit
// non-cryptographic hash for salted index derivation.
func Murmur64(data []byte, seed uint64) uint64 {
	h1, _ := Murmur128(data, seed)
	return h1
}
