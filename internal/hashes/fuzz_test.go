package hashes

import (
	"bytes"
	"testing"
)

// Fuzz targets exercise the inversion machinery and index families against
// arbitrary inputs. `go test` runs the seed corpus; `go test -fuzz=Fuzz…`
// explores further.

func FuzzMurmur32PreimageRoundTrip(f *testing.F) {
	f.Add([]byte("http"), uint32(0xdeadbeef), uint32(0))
	f.Add([]byte(""), uint32(0), uint32(1))
	f.Add([]byte("http://evil.example.com/"), uint32(0xffffffff), uint32(0x9747b28c))
	f.Fuzz(func(t *testing.T, prefixRaw []byte, target, seed uint32) {
		prefix := prefixRaw[:len(prefixRaw)-len(prefixRaw)%4]
		msg, err := Murmur32Preimage(prefix, target, seed)
		if err != nil {
			t.Fatalf("preimage: %v", err)
		}
		if got := Murmur32(msg, seed); got != target {
			t.Fatalf("Murmur32(preimage) = %#x, want %#x", got, target)
		}
		if !bytes.HasPrefix(msg, prefix) {
			t.Fatal("prefix lost")
		}
	})
}

func FuzzMurmur128PreimageRoundTrip(f *testing.F) {
	f.Add([]byte("http://evil.com/"), uint64(1), uint64(2), uint64(3))
	f.Add([]byte(""), uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, prefixRaw []byte, t1, t2, seed uint64) {
		prefix := prefixRaw[:len(prefixRaw)-len(prefixRaw)%16]
		msg, err := Murmur128Preimage(prefix, t1, t2, seed)
		if err != nil {
			t.Fatalf("preimage: %v", err)
		}
		h1, h2 := Murmur128(msg, seed)
		if h1 != t1 || h2 != t2 {
			t.Fatalf("Murmur128(preimage) = (%#x, %#x), want (%#x, %#x)", h1, h2, t1, t2)
		}
	})
}

func FuzzFamiliesStayInRange(f *testing.F) {
	f.Add([]byte("item"), uint16(1000))
	f.Add([]byte{}, uint16(1))
	f.Fuzz(func(t *testing.T, item []byte, mRaw uint16) {
		m := uint64(mRaw) + 1
		d, err := NewDigester(SHA256, nil)
		if err != nil {
			t.Fatal(err)
		}
		salted, err := NewSalted(d.Clone(), 5, m)
		if err != nil {
			t.Fatal(err)
		}
		recycling, err := NewRecycling(d.Clone(), 5, m)
		if err != nil {
			t.Fatal(err)
		}
		double, err := NewDoubleHashing(5, m, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, fam := range []IndexFamily{salted, recycling, double} {
			for _, v := range fam.Indexes(nil, item) {
				if v >= m {
					t.Fatalf("index %d ≥ m=%d", v, m)
				}
			}
		}
	})
}

func FuzzSipHashNoPanics(f *testing.F) {
	f.Add([]byte("data"), uint64(1), uint64(2))
	f.Fuzz(func(t *testing.T, data []byte, k0, k1 uint64) {
		a := SipHash24(SipKey{K0: k0, K1: k1}, data)
		b := SipHash24(SipKey{K0: k0, K1: k1}, data)
		if a != b {
			t.Fatal("SipHash not deterministic")
		}
	})
}
