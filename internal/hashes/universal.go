package hashes

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Carter–Wegman universal hashing (§8.2: "The first countermeasure proposed
// to defeat algorithmic complexity attack was to use universal hash
// functions"; Crosby & Wallach's recommendation, used by the Heritrix
// spider). The item is absorbed as the coefficients of a polynomial over
// GF(2^61−1) evaluated at a secret point r (an ε-almost-universal family —
// collision probability ≤ len/p over the random key), then each of the k
// indexes applies an independent secret affine map. Without the key an
// adversary cannot evaluate — let alone invert — the index function, so
// chosen-insertion, query-only and deletion searches all degrade to blind
// guessing, exactly like the MAC constructions but with cheaper arithmetic.

// mersenne61 is the prime 2^61 − 1 used as the field modulus.
const mersenne61 = 1<<61 - 1

// UniversalKey is the secret of a Universal family: the evaluation point and
// k affine pairs.
type UniversalKey struct {
	// R is the polynomial evaluation point, in [2, p−1).
	R uint64
	// A and B are the per-index affine coefficients; A_i ∈ [1, p), B_i ∈ [0, p).
	A []uint64
	B []uint64
}

// NewUniversalKey draws a fresh secret for k indexes from crypto/rand.
func NewUniversalKey(k int) (*UniversalKey, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hashes: universal key needs k ≥ 1, got %d", k)
	}
	key := &UniversalKey{A: make([]uint64, k), B: make([]uint64, k)}
	var err error
	if key.R, err = randField(2); err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		if key.A[i], err = randField(1); err != nil {
			return nil, err
		}
		if key.B[i], err = randField(0); err != nil {
			return nil, err
		}
	}
	return key, nil
}

// randField draws a uniform field element ≥ lo.
func randField(lo uint64) (uint64, error) {
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("hashes: drawing universal key: %w", err)
		}
		v := binary.LittleEndian.Uint64(buf[:]) & mersenne61
		if v >= lo && v < mersenne61 {
			return v, nil
		}
	}
}

// Universal is an IndexFamily over the keyed polynomial hash.
type Universal struct {
	key *UniversalKey
	k   int
	m   uint64
}

var _ IndexFamily = (*Universal)(nil)

// NewUniversal builds the family; the key's k must cover the requested k.
func NewUniversal(key *UniversalKey, k int, m uint64) (*Universal, error) {
	if err := checkKM(k, m); err != nil {
		return nil, err
	}
	if key == nil || len(key.A) < k || len(key.B) < k {
		return nil, fmt.Errorf("hashes: universal key covers %d indexes, need %d", keyLen(key), k)
	}
	return &Universal{key: key, k: k, m: m}, nil
}

func keyLen(key *UniversalKey) int {
	if key == nil {
		return 0
	}
	return len(key.A)
}

// mulMod61 multiplies modulo 2^61−1 using a 128-bit intermediate.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Fold the 128-bit product: x mod (2^61−1) = (x >> 61) + (x & p) folded.
	sum := (lo & mersenne61) + (lo>>61 | hi<<3)
	sum = (sum & mersenne61) + (sum >> 61)
	if sum >= mersenne61 {
		sum -= mersenne61
	}
	return sum
}

func addMod61(a, b uint64) uint64 {
	s := a + b // both < 2^61, no overflow in uint64
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// Fingerprint evaluates the item polynomial at the secret point: an
// ε-almost-universal 61-bit fingerprint. The length is absorbed first so
// distinct-length prefixes cannot collide trivially.
func (u *Universal) Fingerprint(item []byte) uint64 {
	h := mulMod61(uint64(len(item))+1, u.key.R)
	for len(item) >= 7 {
		// 7 bytes < 2^61 keeps every coefficient a valid field element.
		chunk := uint64(item[0]) | uint64(item[1])<<8 | uint64(item[2])<<16 |
			uint64(item[3])<<24 | uint64(item[4])<<32 | uint64(item[5])<<40 |
			uint64(item[6])<<48
		h = mulMod61(addMod61(h, chunk), u.key.R)
		item = item[7:]
	}
	if len(item) > 0 {
		var chunk uint64
		for i, b := range item {
			chunk |= uint64(b) << (8 * uint(i))
		}
		h = mulMod61(addMod61(h, chunk+1), u.key.R)
	}
	return h
}

// Indexes implements IndexFamily: index_i = (A_i·fp + B_i mod p) mod m.
func (u *Universal) Indexes(dst []uint64, item []byte) []uint64 {
	fp := u.Fingerprint(item)
	for i := 0; i < u.k; i++ {
		v := addMod61(mulMod61(u.key.A[i], fp), u.key.B[i])
		dst = append(dst, v%u.m)
	}
	return dst
}

// K implements IndexFamily.
func (u *Universal) K() int { return u.k }

// M implements IndexFamily.
func (u *Universal) M() uint64 { return u.m }

// DigestCalls implements DigestCounter: one polynomial pass per item.
func (u *Universal) DigestCalls() int { return 1 }

// Clone implements IndexFamily. The key is shared (it is read-only after
// construction); scratch state does not exist, so the receiver itself is
// safe to share across goroutines for Indexes calls.
func (u *Universal) Clone() IndexFamily {
	cp := *u
	return &cp
}
