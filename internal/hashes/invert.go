package hashes

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// This file implements the inversion of MurmurHash3-32 that underpins the
// paper's remark (§6.2): "The forgery of the required URLs is straightforward
// since MurmurHash can be inverted in constant time." Every step of the hash
// is a bijection on uint32 for inputs whose length is a multiple of the block
// size, so given a target digest we can run the algorithm backwards and
// recover the final 4-byte block — yielding pre-images with any chosen prefix.

// Modular inverses of the odd finalizer/body constants modulo 2^32.
var (
	invFmixC1     = mulInverse32(0x85ebca6b)
	invFmixC2     = mulInverse32(0xc2b2ae35)
	invMurmur32C1 = mulInverse32(murmur32C1)
	invMurmur32C2 = mulInverse32(murmur32C2)
	invFive       = mulInverse32(5)
)

// mulInverse32 returns x such that a*x ≡ 1 (mod 2^32). a must be odd.
// Newton–Hensel iteration doubles the number of correct bits each round.
func mulInverse32(a uint32) uint32 {
	x := a // correct to 3 bits for odd a
	for i := 0; i < 5; i++ {
		x *= 2 - a*x
	}
	return x
}

// unxorshiftRight inverts h ^= h >> s for 0 < s < 32.
func unxorshiftRight(h uint32, s uint) uint32 {
	// Recover the bits top-down: each block of s bits depends only on the
	// block above it, so iterating the forward op enough times converges.
	res := h
	for i := s; i < 32; i += s {
		res = h ^ (res >> s)
	}
	return res
}

// InvertFmix32 inverts MurmurHash3's 32-bit finalizer: fmix32(InvertFmix32(d)) == d.
func InvertFmix32(h uint32) uint32 {
	h = unxorshiftRight(h, 16)
	h *= invFmixC2
	h = unxorshiftRight(h, 13)
	h *= invFmixC1
	h = unxorshiftRight(h, 16)
	return h
}

// unscramble32 inverts murmur32Scramble.
func unscramble32(k uint32) uint32 {
	k *= invMurmur32C2
	k = bits.RotateLeft32(k, -15)
	k *= invMurmur32C1
	return k
}

// murmur32State returns the internal state h after hashing data (whose length
// must be a multiple of 4) starting from seed, before tail and finalization.
func murmur32State(data []byte, seed uint32) uint32 {
	h := seed
	for len(data) >= 4 {
		k := binary.LittleEndian.Uint32(data)
		data = data[4:]
		h ^= murmur32Scramble(k)
		h = bits.RotateLeft32(h, 13)
		h = h*5 + 0xe6546b64
	}
	return h
}

// Murmur32Preimage returns a message prefix‖suffix, with the given prefix
// (whose length must be a multiple of 4 bytes) and a computed 4-byte suffix,
// such that Murmur32(message, seed) == target. This is the constant-time
// pre-image forgery of §6.2: an adversary picks a plausible URL prefix and
// appends 4 bytes to hit any digest — and therefore any filter index — she
// wants.
func Murmur32Preimage(prefix []byte, target, seed uint32) ([]byte, error) {
	if len(prefix)%4 != 0 {
		return nil, fmt.Errorf("hashes: prefix length %d is not a multiple of the 4-byte block size", len(prefix))
	}
	n := uint32(len(prefix) + 4)

	// Walk backwards from the digest to the state after the final block.
	h := InvertFmix32(target)
	h ^= n
	// Invert h = rotl(h', 13)*5 + 0xe6546b64.
	h = (h - 0xe6546b64) * invFive
	h = bits.RotateLeft32(h, -13)
	// h == stateBeforeFinalBlock ^ scramble(lastWord).
	state := murmur32State(prefix, seed)
	lastWord := unscramble32(h ^ state)

	out := make([]byte, len(prefix)+4)
	copy(out, prefix)
	binary.LittleEndian.PutUint32(out[len(prefix):], lastWord)
	return out, nil
}

// Murmur32PreimageIndex returns a message prefix‖suffix mapping to the given
// Bloom-filter index under digest-mod-m reduction. Among the ⌊2^32/m⌋ digests
// that reduce to index, the one selected is offset·m + index, letting callers
// enumerate distinct pre-images (multiple pre-images in the paper's terms).
func Murmur32PreimageIndex(prefix []byte, index, m uint64, offset uint64, seed uint32) ([]byte, error) {
	if m == 0 || m > 1<<32 {
		return nil, fmt.Errorf("hashes: filter size %d not addressable by a 32-bit digest", m)
	}
	if index >= m {
		return nil, fmt.Errorf("hashes: index %d out of range for m=%d", index, m)
	}
	target := offset*m + index
	if target > 0xffffffff {
		return nil, fmt.Errorf("hashes: offset %d overflows the 32-bit digest space for m=%d", offset, m)
	}
	return Murmur32Preimage(prefix, uint32(target), seed)
}
