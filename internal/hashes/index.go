package hashes

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// An IndexFamily turns an item into its k Bloom-filter indexes
// I_x = {h_1(x) mod m, …, h_k(x) mod m}. Implementations are not safe for
// concurrent use (they reuse digest state); Clone one per goroutine.
type IndexFamily interface {
	// Indexes appends the k indexes of item, each in [0, m), to dst.
	Indexes(dst []uint64, item []byte) []uint64
	// K returns the number of indexes produced per item.
	K() int
	// M returns the filter size the indexes are reduced against.
	M() uint64
	// Clone returns an independent family with identical behaviour.
	Clone() IndexFamily
}

// DigestCounter is implemented by families that count underlying digest
// computations; Table 2 compares naive vs recycling by exactly this number.
type DigestCounter interface {
	// DigestCalls returns how many base-hash invocations one Indexes call costs.
	DigestCalls() int
}

// ---------------------------------------------------------------------------
// Salted: the pyBloom layout — k independent salted digests.

// Salted derives index i from a digest salted with i. This is the "naive"
// scheme of Table 2: k full hash computations per item.
type Salted struct {
	d *Digester
	k int
	m uint64
}

// NewSalted builds a salted family of k indexes over a filter of m bits.
func NewSalted(d *Digester, k int, m uint64) (*Salted, error) {
	if err := checkKM(k, m); err != nil {
		return nil, err
	}
	return &Salted{d: d, k: k, m: m}, nil
}

// Indexes implements IndexFamily.
func (s *Salted) Indexes(dst []uint64, item []byte) []uint64 {
	for i := 0; i < s.k; i++ {
		dst = append(dst, s.d.Sum64(item, uint32(i))%s.m)
	}
	return dst
}

// K implements IndexFamily.
func (s *Salted) K() int { return s.k }

// M implements IndexFamily.
func (s *Salted) M() uint64 { return s.m }

// DigestCalls implements DigestCounter.
func (s *Salted) DigestCalls() int { return s.k }

// Clone implements IndexFamily.
func (s *Salted) Clone() IndexFamily {
	return &Salted{d: s.d.Clone(), k: s.k, m: s.m}
}

// ---------------------------------------------------------------------------
// DoubleHashing: the Kirsch–Mitzenmacher derivation used by dablooms.

// DoubleHashing computes g_i(x) = h1(x) + i·h2(x) mod m from a single
// 128-bit MurmurHash3 call ("less hashing, same performance", §6.1). Keeping
// h2 odd relative to even m would be needed for full cycle coverage; like
// dablooms we use the raw form the paper attacks.
type DoubleHashing struct {
	k    int
	m    uint64
	seed uint64
}

// NewDoubleHashing builds a Kirsch–Mitzenmacher family with the given seed.
func NewDoubleHashing(k int, m uint64, seed uint64) (*DoubleHashing, error) {
	if err := checkKM(k, m); err != nil {
		return nil, err
	}
	return &DoubleHashing{k: k, m: m, seed: seed}, nil
}

// Indexes implements IndexFamily. The digest halves are reduced modulo m
// first and the progression accumulated in reduced space, so the index set
// is a true arithmetic progression g_i = (h1 + i·h2) mod m — raw uint64
// accumulation would wrap modulo 2^64 and break the structure.
func (d *DoubleHashing) Indexes(dst []uint64, item []byte) []uint64 {
	h1, h2 := Murmur128(item, d.seed)
	g := h1 % d.m
	step := h2 % d.m
	for i := 0; i < d.k; i++ {
		dst = append(dst, g)
		g += step
		if g >= d.m {
			g -= d.m
		}
	}
	return dst
}

// K implements IndexFamily.
func (d *DoubleHashing) K() int { return d.k }

// M implements IndexFamily.
func (d *DoubleHashing) M() uint64 { return d.m }

// Seed returns the MurmurHash3 seed. The threat model treats it as public
// (it is a compile-time constant in dablooms), which is what lets the
// instant pre-image attacks work.
func (d *DoubleHashing) Seed() uint64 { return d.seed }

// DigestCalls implements DigestCounter.
func (d *DoubleHashing) DigestCalls() int { return 1 }

// Clone implements IndexFamily.
func (d *DoubleHashing) Clone() IndexFamily {
	cp := *d
	return &cp
}

// ---------------------------------------------------------------------------
// Recycling: §8.2 — slice k·⌈log₂m⌉ bits out of as few digests as possible.

// Recycling consumes ⌈log₂m⌉ bits per index from the digest stream
// digest(0‖x), digest(1‖x), …, calling the base hash only when bits run out.
// With SHA-512 one call covers any optimal filter with f ≥ 2⁻¹⁵ and m below
// a GByte (Fig 9), which is what makes cryptographic hashing affordable
// (Table 2).
type Recycling struct {
	d       *Digester
	k       int
	m       uint64
	bitsPer int
	buf     []byte // digest scratch, reused across calls
}

// NewRecycling builds a recycling family over a filter of m bits.
func NewRecycling(d *Digester, k int, m uint64) (*Recycling, error) {
	if err := checkKM(k, m); err != nil {
		return nil, err
	}
	bp := BitsPerIndex(m)
	if bp > d.Bits() {
		return nil, fmt.Errorf("hashes: one index needs %d bits but %v yields only %d", bp, d.Algorithm(), d.Bits())
	}
	return &Recycling{d: d, k: k, m: m, bitsPer: bp}, nil
}

// BitsPerIndex returns ⌈log₂ m⌉, the digest bits one index consumes (§8.2).
func BitsPerIndex(m uint64) int {
	if m <= 1 {
		return 1
	}
	return bits.Len64(m - 1)
}

// RequiredBits returns k·⌈log₂m⌉, the total digest bits one item consumes —
// the y-axis of Fig 9.
func RequiredBits(k int, m uint64) int { return k * BitsPerIndex(m) }

// DigestCallsFor returns how many invocations of alg one item costs under
// recycling: ⌈k·⌈log₂m⌉ / ℓ⌉ where ℓ is the digest length. Partial indexes
// never straddle two digests (each digest yields ⌊ℓ/⌈log₂m⌉⌋ whole indexes),
// matching the salt-and-recycle construction in the paper.
func DigestCallsFor(alg Algorithm, k int, m uint64) int {
	per := alg.DigestBits() / BitsPerIndex(m)
	if per == 0 {
		return 0 // digest too short for even one index
	}
	return (k + per - 1) / per
}

// Indexes implements IndexFamily.
func (r *Recycling) Indexes(dst []uint64, item []byte) []uint64 {
	perDigest := r.d.Bits() / r.bitsPer
	var salt uint32
	produced := 0
	for produced < r.k {
		r.buf = r.d.Sum(r.buf[:0], item, salt)
		salt++
		br := bitReader{data: r.buf}
		for i := 0; i < perDigest && produced < r.k; i++ {
			v := br.take(r.bitsPer)
			dst = append(dst, v%r.m)
			produced++
		}
	}
	return dst
}

// K implements IndexFamily.
func (r *Recycling) K() int { return r.k }

// M implements IndexFamily.
func (r *Recycling) M() uint64 { return r.m }

// DigestCalls implements DigestCounter.
func (r *Recycling) DigestCalls() int { return DigestCallsFor(r.d.Algorithm(), r.k, r.m) }

// Clone implements IndexFamily.
func (r *Recycling) Clone() IndexFamily {
	return &Recycling{d: r.d.Clone(), k: r.k, m: r.m, bitsPer: r.bitsPer}
}

// bitReader consumes big-endian bit chunks from a digest.
type bitReader struct {
	data []byte
	pos  int // bit offset
}

func (b *bitReader) take(n int) uint64 {
	var v uint64
	for n > 0 {
		byteIdx := b.pos / 8
		avail := 8 - b.pos%8
		use := avail
		if use > n {
			use = n
		}
		chunk := uint64(b.data[byteIdx]>>(avail-use)) & (1<<uint(use) - 1)
		v = v<<uint(use) | chunk
		b.pos += use
		n -= use
	}
	return v
}

// ---------------------------------------------------------------------------
// MD5Split: Squid's cache-digest derivation (§7).

// MD5Split hashes the item once with unsalted MD5 and splits the 128-bit
// digest into four 32-bit words, each reduced mod m — exactly how Squid
// derives its four cache-digest indexes from the store key.
type MD5Split struct {
	m uint64
}

// NewMD5Split builds the Squid family; k is fixed at 4.
func NewMD5Split(m uint64) (*MD5Split, error) {
	if err := checkKM(4, m); err != nil {
		return nil, err
	}
	return &MD5Split{m: m}, nil
}

// Indexes implements IndexFamily.
func (s *MD5Split) Indexes(dst []uint64, item []byte) []uint64 {
	sum := md5.Sum(item)
	for i := 0; i < 4; i++ {
		w := binary.BigEndian.Uint32(sum[4*i:])
		dst = append(dst, uint64(w)%s.m)
	}
	return dst
}

// K implements IndexFamily.
func (s *MD5Split) K() int { return 4 }

// M implements IndexFamily.
func (s *MD5Split) M() uint64 { return s.m }

// DigestCalls implements DigestCounter.
func (s *MD5Split) DigestCalls() int { return 1 }

// Clone implements IndexFamily.
func (s *MD5Split) Clone() IndexFamily {
	cp := *s
	return &cp
}

func checkKM(k int, m uint64) error {
	if k <= 0 {
		return fmt.Errorf("hashes: k must be positive, got %d", k)
	}
	if m == 0 {
		return fmt.Errorf("hashes: filter size m must be positive")
	}
	return nil
}
