package hashes

import (
	"testing"
	"testing/quick"
)

func mustDigester(t *testing.T, alg Algorithm, key []byte) *Digester {
	t.Helper()
	d, err := NewDigester(alg, key)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func checkFamily(t *testing.T, fam IndexFamily, wantK int, wantM uint64) {
	t.Helper()
	if fam.K() != wantK {
		t.Errorf("K = %d, want %d", fam.K(), wantK)
	}
	if fam.M() != wantM {
		t.Errorf("M = %d, want %d", fam.M(), wantM)
	}
	item := []byte("http://example.com/page")
	idx := fam.Indexes(nil, item)
	if len(idx) != wantK {
		t.Fatalf("Indexes produced %d values, want %d", len(idx), wantK)
	}
	for i, v := range idx {
		if v >= wantM {
			t.Errorf("index[%d] = %d out of range m=%d", i, v, wantM)
		}
	}
	// Determinism.
	idx2 := fam.Indexes(nil, item)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatal("indexes not deterministic")
		}
	}
	// Clone agrees.
	idx3 := fam.Clone().Indexes(nil, item)
	for i := range idx {
		if idx[i] != idx3[i] {
			t.Fatal("clone disagrees with original")
		}
	}
	// Append semantics.
	pre := []uint64{99}
	out := fam.Indexes(pre, item)
	if out[0] != 99 || len(out) != 1+wantK {
		t.Error("Indexes did not append to dst")
	}
}

func TestSaltedFamily(t *testing.T) {
	fam, err := NewSalted(mustDigester(t, SHA256, nil), 4, 3200)
	if err != nil {
		t.Fatal(err)
	}
	checkFamily(t, fam, 4, 3200)
	if fam.DigestCalls() != 4 {
		t.Errorf("DigestCalls = %d, want 4", fam.DigestCalls())
	}
}

func TestSaltedValidation(t *testing.T) {
	d := mustDigester(t, MD5, nil)
	if _, err := NewSalted(d, 0, 100); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSalted(d, 4, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestDoubleHashingFamily(t *testing.T) {
	fam, err := NewDoubleHashing(4, 3200, 42)
	if err != nil {
		t.Fatal(err)
	}
	checkFamily(t, fam, 4, 3200)
	if fam.DigestCalls() != 1 {
		t.Errorf("DigestCalls = %d, want 1", fam.DigestCalls())
	}
	// The defining structure g_i = (h1 + i·h2) mod m, accumulated in
	// reduced space.
	item := []byte("structured")
	idx := fam.Indexes(nil, item)
	h1, h2 := Murmur128(item, 42)
	g, step := h1%3200, h2%3200
	for i, v := range idx {
		if v != g {
			t.Errorf("g_%d = %d, want %d", i, v, g)
		}
		g = (g + step) % 3200
	}
}

// The arithmetic-progression structure must hold for every item — it is
// what the §6.2 instant second pre-image relies on.
func TestDoubleHashingProgressionProperty(t *testing.T) {
	fam, err := NewDoubleHashing(7, 95851, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(item []byte) bool {
		idx := fam.Indexes(nil, item)
		stride := (idx[1] + 95851 - idx[0]) % 95851
		for i, v := range idx {
			if (idx[0]+uint64(i)*stride)%95851 != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRecyclingFamily(t *testing.T) {
	fam, err := NewRecycling(mustDigester(t, SHA512, nil), 10, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	checkFamily(t, fam, 10, 1<<24)
	// 10 indexes × 24 bits = 240 bits ≤ 512: exactly one digest call.
	if fam.DigestCalls() != 1 {
		t.Errorf("DigestCalls = %d, want 1", fam.DigestCalls())
	}
}

func TestRecyclingNeedsMultipleCalls(t *testing.T) {
	// k=20, m=2^30 → 20 indexes × 30 bits = 600 bits > 512: SHA-512 must be
	// called twice (17 whole indexes per digest).
	fam, err := NewRecycling(mustDigester(t, SHA512, nil), 20, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	checkFamily(t, fam, 20, 1<<30)
	if fam.DigestCalls() != 2 {
		t.Errorf("DigestCalls = %d, want 2", fam.DigestCalls())
	}
}

func TestRecyclingRejectsTooSmallDigest(t *testing.T) {
	// One index needs 33 bits but Murmur32 yields 32.
	if _, err := NewRecycling(mustDigester(t, MurmurHash32, nil), 2, 1<<33); err == nil {
		t.Error("digest shorter than one index accepted")
	}
}

func TestBitsPerIndex(t *testing.T) {
	cases := []struct {
		m    uint64
		want int
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {762, 10}, {1024, 10}, {1025, 11}, {3200, 12},
	}
	for _, c := range cases {
		if got := BitsPerIndex(c.m); got != c.want {
			t.Errorf("BitsPerIndex(%d) = %d, want %d", c.m, got, c.want)
		}
	}
	if got := RequiredBits(4, 3200); got != 48 {
		t.Errorf("RequiredBits(4, 3200) = %d, want 48", got)
	}
}

func TestDigestCallsFor(t *testing.T) {
	// Fig 9 sanity: one SHA-512 call suffices for f ≥ 2^-15 (k=15) with
	// m = 2^30 bits (128 MB): 15×30=450 ≤ 512 and 512/30=17 ≥ 15.
	if got := DigestCallsFor(SHA512, 15, 1<<30); got != 1 {
		t.Errorf("SHA-512 calls for k=15, m=2^30 = %d, want 1", got)
	}
	// SHA-1 (160 bits) with 30-bit indexes fits 5 per call: k=15 → 3 calls.
	if got := DigestCallsFor(SHA1, 15, 1<<30); got != 3 {
		t.Errorf("SHA-1 calls = %d, want 3", got)
	}
	// Digest shorter than one index.
	if got := DigestCallsFor(MurmurHash32, 2, 1<<33); got != 0 {
		t.Errorf("impossible recycling = %d, want 0", got)
	}
}

// The recycling and salted families must produce well-distributed indexes:
// filling a filter-like histogram should be near-uniform.
func TestFamilyDistribution(t *testing.T) {
	const m, n = 512, 20000
	fams := map[string]IndexFamily{}
	s, err := NewSalted(mustDigester(t, SHA1, nil), 4, m)
	if err != nil {
		t.Fatal(err)
	}
	fams["salted"] = s
	r, err := NewRecycling(mustDigester(t, SHA512, nil), 4, m)
	if err != nil {
		t.Fatal(err)
	}
	fams["recycling"] = r
	dh, err := NewDoubleHashing(4, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	fams["double"] = dh
	md, err := NewMD5Split(m)
	if err != nil {
		t.Fatal(err)
	}
	fams["md5split"] = md

	for name, fam := range fams {
		counts := make([]float64, m)
		var idx []uint64
		var buf [16]byte
		for i := 0; i < n; i++ {
			buf[0], buf[1], buf[2] = byte(i), byte(i>>8), byte(i>>16)
			idx = fam.Indexes(idx[:0], buf[:])
			for _, v := range idx {
				counts[v]++
			}
		}
		expected := float64(n*4) / float64(m)
		var chi2 float64
		for _, c := range counts {
			d := c - expected
			chi2 += d * d / expected
		}
		// dof = 511; allow a very generous 6-sigma band. Note double hashing's
		// indexes within one item are correlated but marginals stay uniform.
		if chi2 > 511+6*32 {
			t.Errorf("%s: chi-squared = %.1f, far from uniform", name, chi2)
		}
	}
}

func TestMD5SplitFamily(t *testing.T) {
	fam, err := NewMD5Split(762)
	if err != nil {
		t.Fatal(err)
	}
	checkFamily(t, fam, 4, 762)
	if fam.DigestCalls() != 1 {
		t.Errorf("DigestCalls = %d, want 1", fam.DigestCalls())
	}
	if _, err := NewMD5Split(0); err == nil {
		t.Error("m=0 accepted")
	}
}

// Property: salted and recycling over the same digester agree on k and m and
// always produce in-range indexes for arbitrary items.
func TestFamiliesInRangeProperty(t *testing.T) {
	s, err := NewSalted(mustDigester(t, SHA256, nil), 6, 999)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecycling(mustDigester(t, SHA256, nil), 6, 999)
	if err != nil {
		t.Fatal(err)
	}
	f := func(item []byte) bool {
		for _, fam := range []IndexFamily{s, r} {
			for _, v := range fam.Indexes(nil, item) {
				if v >= 999 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSaltedSHA1K4(b *testing.B) {
	d, _ := NewDigester(SHA1, nil)
	fam, _ := NewSalted(d, 4, 1<<24)
	item := []byte("http://example.com/some/page.html")
	var idx []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx = fam.Indexes(idx[:0], item)
	}
}

func BenchmarkRecyclingSHA512K10(b *testing.B) {
	d, _ := NewDigester(SHA512, nil)
	fam, _ := NewRecycling(d, 10, 1<<24)
	item := []byte("http://example.com/some/page.html")
	var idx []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx = fam.Indexes(idx[:0], item)
	}
}

func BenchmarkDoubleHashingK4(b *testing.B) {
	fam, _ := NewDoubleHashing(4, 1<<24, 0)
	item := []byte("http://example.com/some/page.html")
	var idx []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx = fam.Indexes(idx[:0], item)
	}
}
