// Package hashes implements every hash primitive the paper touches and the
// index-derivation strategies that turn digests into the k Bloom-filter
// indexes I_x = {h_1(x) mod m, …, h_k(x) mod m}.
//
// Non-cryptographic functions (§2 of the paper): MurmurHash3 (32-bit x86 and
// 128-bit x64 variants, as used by Bitly's dablooms), Jenkins one-at-a-time,
// FNV-1a (via the standard library) and SipHash-2-4 (keyed).
//
// Cryptographic functions: MD5, SHA-1, SHA-256/384/512 and HMAC built from
// the standard library. The package also provides digest truncation — the
// "security sin" the paper exploits — and MurmurHash3 inversion, which makes
// pre-image forgery constant time exactly as §6.2 claims.
//
// Index derivation strategies (§3, §5.2, §6.1, §7, §8.2):
//
//   - Salted: k independent calls h(salt_i ‖ x), the pyBloom layout.
//   - DoubleHashing: Kirsch–Mitzenmacher g_i = h1 + i·h2, the dablooms trick.
//   - Recycling: one long digest sliced into k·⌈log₂m⌉ bits (§8.2, Table 2).
//   - MD5Split: one 128-bit MD5 split into four 32-bit indexes (Squid, §7).
//
// Any strategy can be keyed (HMAC or SipHash) to obtain the countermeasure
// of §8.2: an adversary who cannot predict indexes cannot forge items.
package hashes
