package hashes

import (
	"strings"
	"testing"
)

func TestAlgorithmMetadata(t *testing.T) {
	cases := []struct {
		alg    Algorithm
		name   string
		bits   int
		crypto bool
		keyed  bool
	}{
		{MD5, "MD5", 128, true, false},
		{SHA1, "SHA-1", 160, true, false},
		{SHA256, "SHA-256", 256, true, false},
		{SHA384, "SHA-384", 384, true, false},
		{SHA512, "SHA-512", 512, true, false},
		{HMACSHA1, "HMAC-SHA-1", 160, true, true},
		{HMACSHA256, "HMAC-SHA-256", 256, true, true},
		{HMACSHA512, "HMAC-SHA-512", 512, true, true},
		{MurmurHash32, "MurmurHash-32", 32, false, false},
		{MurmurHash128, "MurmurHash-128", 128, false, false},
		{JenkinsOAAT, "Jenkins-OAAT", 32, false, false},
		{FNV1a64, "FNV-1a-64", 64, false, false},
		{SipHash24Alg, "SipHash-2-4", 64, false, true},
	}
	for _, c := range cases {
		if got := c.alg.String(); got != c.name {
			t.Errorf("%v String = %q, want %q", c.alg, got, c.name)
		}
		if got := c.alg.DigestBits(); got != c.bits {
			t.Errorf("%v DigestBits = %d, want %d", c.alg, got, c.bits)
		}
		if got := c.alg.Cryptographic(); got != c.crypto {
			t.Errorf("%v Cryptographic = %v, want %v", c.alg, got, c.crypto)
		}
		if got := c.alg.Keyed(); got != c.keyed {
			t.Errorf("%v Keyed = %v, want %v", c.alg, got, c.keyed)
		}
		parsed, err := ParseAlgorithm(c.name)
		if err != nil || parsed != c.alg {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", c.name, parsed, err)
		}
	}
	if Algorithm(999).String() == "" || !strings.Contains(Algorithm(999).String(), "999") {
		t.Error("unknown algorithm String not descriptive")
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm accepted junk")
	}
}

func TestNewDigesterValidation(t *testing.T) {
	if _, err := NewDigester(HMACSHA1, nil); err == nil {
		t.Error("keyed algorithm without key accepted")
	}
	if _, err := NewDigester(MD5, []byte("key")); err == nil {
		t.Error("unkeyed algorithm with key accepted")
	}
	if _, err := NewDigester(SipHash24Alg, []byte("short")); err == nil {
		t.Error("SipHash with 5-byte key accepted")
	}
	if _, err := NewDigester(Algorithm(0), nil); err == nil {
		t.Error("zero algorithm accepted")
	}
}

func TestDigesterSumLengthsAndDeterminism(t *testing.T) {
	key16 := []byte("0123456789abcdef")
	for _, alg := range Algorithms {
		var key []byte
		if alg.Keyed() {
			key = key16
		}
		d, err := NewDigester(alg, key)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		sum := d.Sum(nil, []byte("item"), 7)
		if len(sum)*8 != alg.DigestBits() {
			t.Errorf("%v: digest is %d bits, want %d", alg, len(sum)*8, alg.DigestBits())
		}
		sum2 := d.Sum(nil, []byte("item"), 7)
		if string(sum) != string(sum2) {
			t.Errorf("%v: digest not deterministic", alg)
		}
		other := d.Sum(nil, []byte("item"), 8)
		if string(sum) == string(other) {
			t.Errorf("%v: salt does not change the digest", alg)
		}
		otherItem := d.Sum(nil, []byte("item2"), 7)
		if string(sum) == string(otherItem) {
			t.Errorf("%v: item does not change the digest", alg)
		}
		// Sum64 must agree with the digest prefix.
		v := d.Sum64([]byte("item"), 7)
		var fromSum uint64
		take := len(sum)
		if take > 8 {
			take = 8
		}
		for _, b := range sum[:take] {
			fromSum = fromSum<<8 | uint64(b)
		}
		if v != fromSum {
			t.Errorf("%v: Sum64 = %#x, digest prefix = %#x", alg, v, fromSum)
		}
	}
}

func TestDigesterAppendSemantics(t *testing.T) {
	d, err := NewDigester(SHA256, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix")
	out := d.Sum(prefix, []byte("x"), 0)
	if string(out[:6]) != "prefix" {
		t.Error("Sum did not append to dst")
	}
	if len(out) != 6+32 {
		t.Errorf("appended length = %d, want 38", len(out))
	}
}

func TestDigesterClone(t *testing.T) {
	d, err := NewDigester(HMACSHA256, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	a := d.Sum(nil, []byte("x"), 3)
	b := c.Sum(nil, []byte("x"), 3)
	if string(a) != string(b) {
		t.Error("clone digests differ from original")
	}
}

func TestKeyedDigestsDependOnKey(t *testing.T) {
	for _, alg := range []Algorithm{HMACSHA1, HMACSHA256, HMACSHA512, SipHash24Alg} {
		d1, err := NewDigester(alg, []byte("0123456789abcdef"))
		if err != nil {
			t.Fatal(err)
		}
		d2, err := NewDigester(alg, []byte("fedcba9876543210"))
		if err != nil {
			t.Fatal(err)
		}
		if string(d1.Sum(nil, []byte("x"), 0)) == string(d2.Sum(nil, []byte("x"), 0)) {
			t.Errorf("%v: digest independent of key", alg)
		}
	}
}
