package hashes

// Jenkins32 computes Bob Jenkins' one-at-a-time hash, one of the
// non-cryptographic functions the paper cites (§2) as "designed to be fast"
// but trivially forgeable. A seed is folded in up front so filters can derive
// k salted variants.
func Jenkins32(data []byte, seed uint32) uint32 {
	h := seed
	for _, b := range data {
		h += uint32(b)
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}
