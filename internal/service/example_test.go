package service_test

import (
	"fmt"
	"log"

	"evilbloom/internal/service"
)

// ExampleSharded stands up the hardened sharded store — the configuration a
// deployment that cares about the paper's attacks would run — and drives
// the batch API a server round trip maps onto.
func ExampleSharded() {
	store, err := service.NewSharded(service.Config{
		Shards:    4,
		Capacity:  10000,
		TargetFPR: 1.0 / 1024,
		Mode:      service.ModeHardened,
		Key:       []byte("0123456789abcdef"), // server-side secret
		RouteKey:  []byte("fedcba9876543210"), // shard-routing secret
	})
	if err != nil {
		log.Fatal(err)
	}

	store.AddBatch([][]byte{
		[]byte("http://example.com/a"),
		[]byte("http://example.com/b"),
		[]byte("http://example.com/c"),
	})
	present := store.TestBatch(nil, [][]byte{
		[]byte("http://example.com/a"),
		[]byte("http://example.com/never-inserted"),
	})
	fmt.Println(present)

	st := store.Stats()
	fmt.Printf("mode=%s shards=%d count=%d weight=%d\n", st.Mode, st.Shards, st.Count, st.Weight)
	// Output:
	// [true false]
	// mode=hardened shards=4 count=3 weight=30
}
