package service_test

import (
	"fmt"
	"log"

	"evilbloom/internal/service"
)

// ExampleSharded stands up the hardened sharded store — the configuration a
// deployment that cares about the paper's attacks would run — and drives
// the batch API a server round trip maps onto.
func ExampleSharded() {
	store, err := service.NewSharded(service.Config{
		Shards:    4,
		Capacity:  10000,
		TargetFPR: 1.0 / 1024,
		Mode:      service.ModeHardened,
		Key:       []byte("0123456789abcdef"), // server-side secret
		RouteKey:  []byte("fedcba9876543210"), // shard-routing secret
	})
	if err != nil {
		log.Fatal(err)
	}

	store.AddBatch([][]byte{
		[]byte("http://example.com/a"),
		[]byte("http://example.com/b"),
		[]byte("http://example.com/c"),
	})
	present := store.TestBatch(nil, [][]byte{
		[]byte("http://example.com/a"),
		[]byte("http://example.com/never-inserted"),
	})
	fmt.Println(present)

	st := store.Stats()
	fmt.Printf("mode=%s shards=%d count=%d weight=%d\n", st.Mode, st.Shards, st.Count, st.Weight)
	// Output:
	// [true false]
	// mode=hardened shards=4 count=3 weight=30
}

// ExampleRegistry manages named filters of different variants side by side:
// a deletable counting blocklist next to a plain bloom dedup set, the
// multi-tenant layout `evilbloom serve` exposes over /v2.
func ExampleRegistry() {
	reg := service.NewRegistry()
	_, err := reg.Create("blocklist", service.Config{
		Variant:   service.VariantCounting,
		Shards:    1,
		ShardBits: 3200,
		HashCount: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := reg.Create("seen-urls", service.Config{Shards: 4, Capacity: 10000}); err != nil {
		log.Fatal(err)
	}

	blocklist, err := reg.Get("blocklist")
	if err != nil {
		log.Fatal(err)
	}
	store := blocklist.Store()
	store.Add([]byte("http://evil.example/malware"))
	removed, err := store.Remove([]byte("http://evil.example/malware"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("removed:", removed, "still present:", store.Test([]byte("http://evil.example/malware")))

	for _, f := range reg.List() {
		fmt.Printf("%s: variant=%s removable=%v\n", f.Name(), f.Store().Variant(), f.Store().Removable())
	}
	// Output:
	// removed: true still present: false
	// blocklist: variant=counting removable=true
	// seen-urls: variant=bloom removable=false
}
