package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/core"
)

// Wire format limits, all enforced independently: a request must satisfy
// every one of them. Batch sizes are bounded so one request cannot hold a
// shard lock for an unbounded stretch; item length is bounded because every
// byte is hashed k times; the body cap bounds the server's JSON-decoding
// memory, so a full MaxBatch of maximum-length items does not fit in one
// request — split such batches.
const (
	// MaxBatch is the largest accepted add-batch/test-batch size.
	MaxBatch = 10000
	// MaxItemLen is the largest accepted item length in bytes.
	MaxItemLen = 4096
	// MaxBodyBytes caps request bodies. Exceeding it answers 413 with a
	// message naming this limit.
	MaxBodyBytes = 8 << 20
	// MaxSnapshotBytes caps a PUT-with-snapshot-body request: the largest
	// permissible filter (MaxFilterBits of storage) serialized, plus framing
	// slack. The registry additionally reserves the decoded filter's budget
	// before buffering the payload, so this is transport-level belt and
	// braces, not the real control.
	MaxSnapshotBytes = MaxFilterBits/8 + MaxBodyBytes
)

// ---------------------------------------------------------------------------
// Wire structs. The v1 shapes are frozen — /v1/* promises byte-identical
// responses to the original single-filter API, so these structs must not
// grow fields. /v2 has its own shapes below.

// itemRequest is the body of the add, test and remove item endpoints.
type itemRequest struct {
	Item string `json:"item"`
}

// batchRequest is the body of the batch endpoints.
type batchRequest struct {
	Items []string `json:"items"`
}

// addResponse answers add and add-batch.
type addResponse struct {
	Added int    `json:"added"`
	Count uint64 `json:"count"`
}

// testResponse answers test.
type testResponse struct {
	Present bool `json:"present"`
}

// testBatchResponse answers test-batch, Present in input order.
type testBatchResponse struct {
	Present []bool `json:"present"`
}

// removeResponse answers /v2/.../remove (no v1 equivalent).
type removeResponse struct {
	Removed int    `json:"removed"`
	Count   uint64 `json:"count"`
}

// removeBatchResponse answers /v2/.../remove-batch, Removed in input order
// (false marks items the filter believed absent and refused to remove).
type removeBatchResponse struct {
	Removed []bool `json:"removed"`
	Count   uint64 `json:"count"`
}

// compactResponse answers /v2/.../compact with the new snapshot generation.
type compactResponse struct {
	Compacted  bool   `json:"compacted"`
	Generation uint64 `json:"generation"`
}

// RouteResponse answers /v2/.../route: the §7 routing decision for one item
// — serve locally, probe a sibling whose digest claims it, or go to the
// origin. A probe sent because of a polluted or merely unlucky digest is
// the wasted round trip the paper's attack inflates.
type RouteResponse struct {
	// Local reports whether this node's own filter claims the item.
	Local bool `json:"local"`
	// Verdict is "local", "peer" or "origin".
	Verdict string `json:"verdict"`
	// Peer names the first claiming sibling when Verdict is "peer".
	Peer string `json:"peer,omitempty"`
	// Peers holds every sibling's individual answer, in peer order.
	Peers []PeerClaim `json:"peers"`
}

// peersResponse answers GET /v2/.../peers and POST /v2/.../peers/refresh.
type peersResponse struct {
	Peers []PeerStatus `json:"peers"`
}

// digestPushResponse answers POST /v2/.../digest with the stored peer entry.
type digestPushResponse struct {
	Imported bool       `json:"imported"`
	Peer     PeerStatus `json:"peer"`
}

// InfoResponse answers /v1/info: the public parameters of the serving
// filter. In naive mode that includes the index seed — the paper's threat
// model ("the implementation of the Bloom filter is public and known") made
// concrete. In hardened mode Seed is omitted and Algorithm names the keyed
// scheme; the keys themselves never leave the server. Frozen v1 shape; the
// v2 equivalent is FilterInfo.
type InfoResponse struct {
	Mode      string  `json:"mode"`
	Shards    int     `json:"shards"`
	K         int     `json:"k"`
	ShardBits uint64  `json:"shard_bits"`
	Algorithm string  `json:"algorithm"`
	Seed      *uint64 `json:"seed,omitempty"`
}

// statsV1 and shardStatsV1 freeze the /v1/stats wire shape (no variant or
// overflow fields, which post-date v1).
type statsV1 struct {
	Mode      string         `json:"mode"`
	Shards    int            `json:"shards"`
	K         int            `json:"k"`
	ShardBits uint64         `json:"shard_bits"`
	Count     uint64         `json:"count"`
	Weight    uint64         `json:"weight"`
	Fill      float64        `json:"fill"`
	FPR       float64        `json:"estimated_fpr"`
	PerShard  []shardStatsV1 `json:"per_shard"`
}

type shardStatsV1 struct {
	Shard  int     `json:"shard"`
	Count  uint64  `json:"count"`
	Weight uint64  `json:"weight"`
	Fill   float64 `json:"fill"`
	FPR    float64 `json:"estimated_fpr"`
}

// statsToV1 projects a Stats snapshot onto the frozen v1 shape.
func statsToV1(st Stats) statsV1 {
	out := statsV1{
		Mode:      st.Mode,
		Shards:    st.Shards,
		K:         st.K,
		ShardBits: st.ShardBits,
		Count:     st.Count,
		Weight:    st.Weight,
		Fill:      st.Fill,
		FPR:       st.FPR,
		PerShard:  make([]shardStatsV1, len(st.PerShard)),
	}
	for i, ss := range st.PerShard {
		out.PerShard[i] = shardStatsV1{
			Shard: ss.Shard, Count: ss.Count, Weight: ss.Weight, Fill: ss.Fill, FPR: ss.FPR,
		}
	}
	return out
}

// FilterSpec is the body of PUT /v2/filters/{name}: the per-filter
// configuration, all fields optional (zero values take the Config defaults).
// Index and routing keys are deliberately absent — secrets never cross the
// wire; hardened filters draw fresh random keys server-side.
type FilterSpec struct {
	Variant      string  `json:"variant,omitempty"`
	Mode         string  `json:"mode,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	Capacity     uint64  `json:"capacity,omitempty"`
	TargetFPR    float64 `json:"target_fpr,omitempty"`
	ShardBits    uint64  `json:"shard_bits,omitempty"`
	HashCount    int     `json:"hash_count,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	CounterWidth int     `json:"counter_width,omitempty"`
	Overflow     string  `json:"overflow,omitempty"`
}

// Config resolves the wire spec into a service Config.
func (sp FilterSpec) Config() (Config, error) {
	variant, err := ParseVariant(sp.Variant)
	if err != nil {
		return Config{}, err
	}
	mode, err := ParseMode(sp.Mode)
	if err != nil {
		return Config{}, err
	}
	overflow, err := core.ParseOverflowPolicy(sp.Overflow)
	if err != nil {
		return Config{}, err
	}
	// Like the serve flags, contradictory fields are an error, not
	// something to silently ignore: a client pinning a seed on a hardened
	// filter would otherwise get random server-side keys and no hint that
	// its seed was discarded. (Counting fields on a bloom variant are
	// rejected by the Config validation itself.)
	if mode == ModeHardened && sp.Seed != 0 {
		return Config{}, fmt.Errorf("service: seed is meaningless for a hardened filter: the keyed family has no public seed")
	}
	return Config{
		Variant:      variant,
		Shards:       sp.Shards,
		Capacity:     sp.Capacity,
		TargetFPR:    sp.TargetFPR,
		ShardBits:    sp.ShardBits,
		HashCount:    sp.HashCount,
		Mode:         mode,
		Seed:         sp.Seed,
		CounterWidth: sp.CounterWidth,
		Overflow:     overflow,
	}, nil
}

// FilterInfo answers GET /v2/filters/{name} (and .../info): one filter's
// public parameters plus its capability set, so a client can discover
// whether remove or snapshot will be accepted before trying. Naive filters
// publish their seed (the threat model's public implementation); hardened
// filters do not.
type FilterInfo struct {
	Name         string   `json:"name"`
	Variant      string   `json:"variant"`
	Mode         string   `json:"mode"`
	Shards       int      `json:"shards"`
	K            int      `json:"k"`
	ShardBits    uint64   `json:"shard_bits"`
	Algorithm    string   `json:"algorithm"`
	Seed         *uint64  `json:"seed,omitempty"`
	CounterWidth int      `json:"counter_width,omitempty"`
	Overflow     string   `json:"overflow,omitempty"`
	Capabilities []string `json:"capabilities"`
}

// listResponse answers GET /v2/filters.
type listResponse struct {
	Filters []FilterInfo `json:"filters"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// filterInfo assembles a filter's public self-description.
func filterInfo(f *Filter) FilterInfo {
	st := f.Store()
	info := FilterInfo{
		Name:         f.Name(),
		Variant:      st.Variant().String(),
		Mode:         st.Mode().String(),
		Shards:       st.Shards(),
		K:            st.K(),
		ShardBits:    st.ShardBits(),
		Capabilities: []string{"add", "test"},
	}
	switch st.Mode() {
	case ModeNaive:
		info.Algorithm = "murmur3-double-hashing"
		seed := st.Seed()
		info.Seed = &seed
	case ModeHardened:
		info.Algorithm = "siphash-2-4-recycling"
	}
	if st.Variant() == VariantCounting {
		info.CounterWidth = st.CounterWidth()
		info.Overflow = st.OverflowPolicy().String()
	}
	if st.Snapshotable() {
		info.Capabilities = append(info.Capabilities, "snapshot")
	}
	if st.Removable() {
		info.Capabilities = append(info.Capabilities, "remove")
	}
	if f.Durable() {
		info.Capabilities = append(info.Capabilities, "compact")
	}
	if st.Mode() == ModeNaive {
		// Digest export needs a family a peer can reproduce; hardened
		// filters answer 409 on the digest endpoint instead.
		info.Capabilities = append(info.Capabilities, "digest")
	}
	return info
}

// ---------------------------------------------------------------------------
// Server.

// Server exposes a filter Registry over HTTP/JSON.
//
// The versioned v2 surface manages named filters and routes item traffic to
// them:
//
//	PUT    /v2/filters/{name}              FilterSpec -> FilterInfo (201); with
//	                                       Content-Type: application/octet-stream the
//	                                       body is a snapshot envelope instead and the
//	                                       filter is created from it (naive snapshots
//	                                       only; mismatches answer 409)
//	GET    /v2/filters/{name}              -> FilterInfo
//	DELETE /v2/filters/{name}              -> 204 (also deletes the durable directory)
//	GET    /v2/filters                     -> {"filters": [FilterInfo...]}
//	POST   /v2/filters/{name}/add          {"item": s}       -> {"added": 1, "count": n}
//	POST   /v2/filters/{name}/test         {"item": s}       -> {"present": bool}
//	POST   /v2/filters/{name}/add-batch    {"items": [s...]} -> {"added": len, "count": n}
//	POST   /v2/filters/{name}/test-batch   {"items": [s...]} -> {"present": [bool...]}
//	POST   /v2/filters/{name}/remove       {"item": s}       -> {"removed": 1, "count": n}
//	POST   /v2/filters/{name}/remove-batch {"items": [s...]} -> {"removed": [bool...], "count": n}
//	GET    /v2/filters/{name}/stats        -> Stats
//	GET    /v2/filters/{name}/info         -> FilterInfo
//	GET    /v2/filters/{name}/snapshot     -> versioned, checksummed snapshot envelope
//	POST   /v2/filters/{name}/compact      -> {"compacted": true, "generation": g}
//	GET    /v2/filters/{name}/digest       -> cache-digest envelope (ETag = generation;
//	                                          If-None-Match short-circuits to 304)
//	POST   /v2/filters/{name}/digest?peer=p   push-import a sibling's digest envelope
//	POST   /v2/filters/{name}/route        {"item": s} -> RouteResponse
//	GET    /v2/filters/{name}/peers        -> {"peers": [PeerStatus...]}
//	POST   /v2/filters/{name}/peers/refresh   fetch every configured peer now
//	GET    /v2/filters/{name}/clients      -> ClientsReport (per-client mutation accounting)
//
// Every mutation (add, add-batch, remove, remove-batch, digest push) is
// charged to the requesting client's per-filter budget; batches charge per
// item. With rate limiting configured (Registry.ConfigureRateLimit,
// `evilbloom serve -rate-mutations`) an exhausted budget answers 429 with a
// Retry-After header and nothing is applied. Accounting runs even without a
// budget, so the clients endpoint attributes pollution on every server; the
// stats endpoint carries the aggregate under "rate_limit".
//
// remove/remove-batch need the Remover capability (variant=counting) and
// answer 405 with a capability error otherwise; a single remove of an item
// the filter believes absent answers 409. compact needs a durable registry
// (`evilbloom serve -data-dir`) and answers 409 otherwise. digest export
// needs a naive-mode filter (a hardened filter's keyed family never
// travels) and answers 409 otherwise; a pushed digest that is structurally
// corrupt answers 400, one naming a family no peer can evaluate answers
// 409. peers/refresh on a registry with no configured peer URLs answers
// 409.
//
// Compatibility note: until this revision the snapshot endpoint returned
// the raw per-shard blobs behind a bare shard-count header. That format
// was unverifiable (no version, variant or checksum) and unreplayable; it
// is gone, replaced by the envelope documented in snapshot.go.
//
// The unversioned-era v1 surface survives as a shim over the registry's
// "default" filter, byte-identical to the original single-filter server:
//
//	POST /v1/add         {"item": s}            -> {"added": 1, "count": n}
//	POST /v1/test        {"item": s}            -> {"present": bool}
//	POST /v1/add-batch   {"items": [s...]}      -> {"added": len, "count": n}
//	POST /v1/test-batch  {"items": [s...]}      -> {"present": [bool...]}
//	GET  /v1/stats                              -> statsV1
//	GET  /v1/info                               -> InfoResponse
type Server struct {
	reg *Registry
	mux *http.ServeMux
}

// NewRegistryServer wraps a filter registry in the full v1+v2 HTTP API.
func NewRegistryServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/add", s.v1(s.handleAdd))
	s.mux.HandleFunc("/v1/test", s.v1(s.handleTest))
	s.mux.HandleFunc("/v1/add-batch", s.v1(s.handleAddBatch))
	s.mux.HandleFunc("/v1/test-batch", s.v1(s.handleTestBatch))
	s.mux.HandleFunc("/v1/stats", s.handleStatsV1)
	s.mux.HandleFunc("/v1/info", s.handleInfoV1)
	s.mux.HandleFunc("/v2/filters", s.handleFilters)
	s.mux.HandleFunc("/v2/filters/{name}", s.handleFilter)
	s.mux.HandleFunc("/v2/filters/{name}/{op}", s.handleFilterOp)
	s.mux.HandleFunc("/v2/filters/{name}/peers/refresh", s.handlePeersRefresh)
	return s
}

// NewServer wraps a single store in the HTTP API, registered as the
// registry's default filter — the original single-filter constructor, kept
// so embedders (tests, examples) need no registry ceremony.
func NewServer(store *Sharded) *Server {
	reg := NewRegistry()
	if _, err := reg.Adopt(DefaultFilterName, store); err != nil {
		panic(err) // fresh registry, constant valid name: unreachable
	}
	return NewRegistryServer(reg)
}

// Registry returns the underlying filter registry.
func (s *Server) Registry() *Registry { return s.reg }

// Store returns the default filter's store, or nil when none is registered.
func (s *Server) Store() *Sharded {
	f, err := s.reg.Get(DefaultFilterName)
	if err != nil {
		return nil
	}
	return f.Store()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// defaultStore resolves the v1 shim's target, answering the error itself.
func (s *Server) defaultStore(w http.ResponseWriter) (*Sharded, bool) {
	f, err := s.reg.Get(DefaultFilterName)
	if err != nil {
		writeError(w, http.StatusNotFound, "no default filter registered; use /v2/filters")
		return nil, false
	}
	return f.Store(), true
}

// v1 adapts an item handler to the /v1 shim. The filter name rides along
// so the shim's mutations charge the same per-client budgets as the
// default filter's /v2 endpoints — legacy clients get no side door around
// rate limiting.
func (s *Server) v1(h func(http.ResponseWriter, *http.Request, string, *Sharded)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.defaultStore(w)
		if !ok {
			return
		}
		h(w, r, DefaultFilterName, st)
	}
}

func (s *Server) handleStatsV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st, ok := s.defaultStore(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, statsToV1(st.Stats()))
}

func (s *Server) handleInfoV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st, ok := s.defaultStore(w)
	if !ok {
		return
	}
	info := InfoResponse{
		Mode:      st.Mode().String(),
		Shards:    st.Shards(),
		K:         st.K(),
		ShardBits: st.ShardBits(),
	}
	switch st.Mode() {
	case ModeNaive:
		info.Algorithm = "murmur3-double-hashing"
		seed := st.Seed()
		info.Seed = &seed
	case ModeHardened:
		info.Algorithm = "siphash-2-4-recycling"
	}
	writeJSON(w, http.StatusOK, info)
}

// ---------------------------------------------------------------------------
// v2: filter lifecycle.

func (s *Server) handleFilters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only; create filters with PUT /v2/filters/{name}")
		return
	}
	filters := s.reg.List()
	resp := listResponse{Filters: make([]FilterInfo, len(filters))}
	for i, f := range filters {
		resp.Filters[i] = filterInfo(f)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFilter(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodPut:
		s.handleCreate(w, r, name)
	case http.MethodGet:
		f, err := s.reg.Get(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, filterInfo(f))
	case http.MethodDelete:
		if err := s.reg.Delete(name); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, "PUT, GET or DELETE only")
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request, name string) {
	// A binary body (Content-Type: application/octet-stream) is a snapshot
	// envelope — create-from-snapshot; anything else is a JSON FilterSpec.
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		f, err := s.reg.CreateFromSnapshot(name, http.MaxBytesReader(w, r.Body, int64(MaxSnapshotBytes)))
		if !checkCreateErr(w, err) {
			return
		}
		writeJSON(w, http.StatusCreated, filterInfo(f))
		return
	}
	var spec FilterSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad filter spec: %v", err))
		return
	}
	cfg, err := spec.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	f, err := s.reg.Create(name, cfg)
	if !checkCreateErr(w, err) {
		return
	}
	writeJSON(w, http.StatusCreated, filterInfo(f))
}

// checkCreateErr maps filter-creation errors to statuses: 409 for conflicts
// with existing state or limits (name taken, registry full, budget
// exhausted, snapshot disagreeing with the configuration it implies), 400
// for malformed requests.
func checkCreateErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrFilterExists), errors.Is(err, ErrRegistryFull),
		errors.Is(err, ErrBudgetExhausted), errors.Is(err, ErrSnapshotMismatch):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
	return false
}

// ---------------------------------------------------------------------------
// v2: item operations on a named filter.

func (s *Server) handleFilterOp(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	st := f.Store()
	switch op := r.PathValue("op"); op {
	case "add":
		s.handleAdd(w, r, f.Name(), st)
	case "test":
		s.handleTest(w, r, f.Name(), st)
	case "add-batch":
		s.handleAddBatch(w, r, f.Name(), st)
	case "test-batch":
		s.handleTestBatch(w, r, f.Name(), st)
	case "remove":
		s.handleRemove(w, r, f.Name(), st)
	case "remove-batch":
		s.handleRemoveBatch(w, r, f.Name(), st)
	case "stats":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		// The filter's own statistics plus the rate-limit aggregate, so one
		// scrape shows both the damage and who was allowed to do it.
		writeJSON(w, http.StatusOK, struct {
			Stats
			RateLimit RateLimitStats `json:"rate_limit"`
		}{st.Stats(), s.reg.Limiter().FilterStats(f.Name())})
	case "clients":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, s.reg.Limiter().Clients(f.Name()))
	case "info":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, filterInfo(f))
	case "snapshot":
		handleSnapshot(w, r, st)
	case "compact":
		handleCompact(w, r, f)
	case "digest":
		s.handleDigest(w, r, f)
	case "route":
		s.handleRoute(w, r, f)
	case "peers":
		s.handlePeers(w, r, f)
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown filter operation %q", op))
	}
}

// allowMutation charges n mutations on filter to the requesting client,
// answering 429 with a Retry-After itself when the budget is exhausted.
// The charge happens after the request is validated (malformed requests
// cost nothing) and before any state changes.
func (s *Server) allowMutation(w http.ResponseWriter, r *http.Request, filter string, n int) bool {
	lim := s.reg.Limiter()
	ok, retry := lim.Allow(filter, clientIdentity(r, lim.TrustProxy()), n)
	if !ok {
		writeThrottled(w, filter, n, retry)
	}
	return ok
}

// writeThrottled answers an exhausted mutation budget: 429 plus the
// Retry-After the limiter computed, floored at one second.
func writeThrottled(w http.ResponseWriter, filter string, n int, retry time.Duration) {
	secs := int64(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusTooManyRequests,
		fmt.Sprintf("mutation budget exhausted for filter %q (%d mutation(s) requested); retry after %ds", filter, n, secs))
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request, name string, st *Sharded) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	if !checkItem(w, req.Item) {
		return
	}
	if !s.allowMutation(w, r, name, 1) {
		return
	}
	st.Add([]byte(req.Item))
	writeJSON(w, http.StatusOK, addResponse{Added: 1, Count: st.Count()})
}

func (s *Server) handleTest(w http.ResponseWriter, r *http.Request, _ string, st *Sharded) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	if !checkItem(w, req.Item) {
		return
	}
	writeJSON(w, http.StatusOK, testResponse{Present: st.Test([]byte(req.Item))})
}

func (s *Server) handleAddBatch(w http.ResponseWriter, r *http.Request, name string, st *Sharded) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	items, ok := checkBatch(w, req.Items)
	if !ok {
		return
	}
	// Batches charge per item: the pollution a batch can do scales with its
	// size, so a 10000-item batch must not cost what a single add does.
	if !s.allowMutation(w, r, name, len(items)) {
		return
	}
	st.AddBatch(items)
	writeJSON(w, http.StatusOK, addResponse{Added: len(items), Count: st.Count()})
}

func (s *Server) handleTestBatch(w http.ResponseWriter, r *http.Request, _ string, st *Sharded) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	items, ok := checkBatch(w, req.Items)
	if !ok {
		return
	}
	present := st.TestBatch(make([]bool, 0, len(items)), items)
	writeJSON(w, http.StatusOK, testBatchResponse{Present: present})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request, name string, st *Sharded) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	if !checkItem(w, req.Item) {
		return
	}
	if !s.allowMutation(w, r, name, 1) {
		return
	}
	removed, err := st.Remove([]byte(req.Item))
	if !checkRemoveErr(w, err) {
		return
	}
	if !removed {
		writeError(w, http.StatusConflict, "item not in filter; removal refused")
		return
	}
	writeJSON(w, http.StatusOK, removeResponse{Removed: 1, Count: st.Count()})
}

func (s *Server) handleRemoveBatch(w http.ResponseWriter, r *http.Request, name string, st *Sharded) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	items, ok := checkBatch(w, req.Items)
	if !ok {
		return
	}
	if !s.allowMutation(w, r, name, len(items)) {
		return
	}
	removed, err := st.RemoveBatch(items)
	if !checkRemoveErr(w, err) {
		return
	}
	writeJSON(w, http.StatusOK, removeBatchResponse{Removed: removed, Count: st.Count()})
}

// checkRemoveErr maps removal errors to statuses: 405 for the missing
// capability (the filter exists but its backend cannot delete), 500 for
// anything else.
func checkRemoveErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrNotRemovable):
		writeError(w, http.StatusMethodNotAllowed, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
	return false
}

func handleSnapshot(w http.ResponseWriter, r *http.Request, st *Sharded) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	blob, err := st.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Evilbloom-Snapshot-Version", fmt.Sprint(snapshotVersion))
	w.WriteHeader(http.StatusOK)
	w.Write(blob) //nolint:errcheck // client gone; nothing to do
}

// handleCompact forces a durable filter's snapshot+log rotation; a
// memory-only filter answers 409 so operators notice the missing -data-dir
// instead of trusting a no-op.
func handleCompact(w http.ResponseWriter, r *http.Request, f *Filter) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	err := f.Compact()
	switch {
	case errors.Is(err, ErrNotDurable):
		writeError(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, compactResponse{Compacted: true, Generation: f.Generation()})
}

// ---------------------------------------------------------------------------
// v2: cache-digest exchange (§7 between nodes).

// handleDigest serves a filter's cache digest (GET, with a generation ETag
// so unchanged digests cost a peer one conditional request and no transfer)
// and accepts push-imported sibling digests (POST with ?peer=<label>).
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request, f *Filter) {
	switch r.Method {
	case http.MethodGet:
		s.handleDigestGet(w, r, f.Store())
	case http.MethodPost:
		s.handleDigestPush(w, r, f)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET exports the digest; POST ?peer=<label> imports one")
	}
}

// digestETag renders a store generation as the digest endpoint's ETag. The
// store's per-boot salt is folded in because the generation counter resets
// on restart: without it, a restarted filter's generation would re-pass
// through values a peer already holds and earn a spurious 304 for
// different content.
func digestETag(st *Sharded, gen uint64) string {
	return fmt.Sprintf("%q", fmt.Sprintf("evb-digest-%x-%d", st.etagSalt, gen))
}

func (s *Server) handleDigestGet(w http.ResponseWriter, r *http.Request, st *Sharded) {
	// The conditional check reads only the O(shards) generation counter;
	// an unchanged filter never pays for digest serialization. Matching is
	// RFC 9110 If-None-Match semantics, not string equality: intermediaries
	// legitimately send `*`, weak `W/"..."` forms and comma-joined lists of
	// every tag they hold, and all of them must be able to earn the 304.
	if match := r.Header.Get("If-None-Match"); match != "" {
		if current := digestETag(st, st.Generation()); etagMatch(match, current) {
			w.Header().Set("ETag", current)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	blob, gen, err := st.DigestEnvelope()
	switch {
	case errors.Is(err, ErrDigestUnexportable):
		writeError(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", digestETag(st, gen))
	w.Header().Set("X-Evilbloom-Digest-Version", fmt.Sprint(cachedigest.EnvelopeVersion))
	w.WriteHeader(http.StatusOK)
	w.Write(blob) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) handleDigestPush(w http.ResponseWriter, r *http.Request, f *Filter) {
	label := r.URL.Query().Get("peer")
	if label == "" {
		writeError(w, http.StatusBadRequest, "peer query parameter required: which sibling does this digest describe?")
		return
	}
	// Labels become map keys echoed back through the peers JSON, so they
	// obey the same length/charset rule as filter names — an arbitrary
	// control-character label is 400, not a stored key.
	if !ValidFilterName(label) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("invalid peer label %q: labels follow the filter-name rule (%s)", label, filterName))
		return
	}
	// A pushed digest mutates this node's routing state, so it spends from
	// the pusher's mutation budget like any other write. Unlike add/remove,
	// the envelope can only be validated inside Push, so the charge is
	// taken up front and refunded on any failure — a rejected push must not
	// have cost the pusher budget or shown up as an allowed mutation.
	// (One mutation per push, whatever the digest's size: a digest's
	// routing leverage is bounded by the separate MaxPushedPeers /
	// MaxPushedDigestBits retention budget, and pricing the §7 poison out
	// of reach is the per-peer-authentication rung above this one.)
	lim := s.reg.Limiter()
	client := clientIdentity(r, lim.TrustProxy())
	if ok, retry := lim.Allow(f.Name(), client, 1); !ok {
		writeThrottled(w, f.Name(), 1, retry)
		return
	}
	status, err := s.reg.Peers().Push(f.Name(), label,
		http.MaxBytesReader(w, r.Body, int64(MaxSnapshotBytes)))
	if err != nil {
		lim.Refund(f.Name(), client, 1)
	}
	switch {
	case errors.Is(err, cachedigest.ErrEnvelopeUnusable), errors.Is(err, ErrPushedDigestLimit):
		writeError(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, cachedigest.ErrEnvelopeCorrupt):
		writeError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, digestPushResponse{Imported: true, Peer: status})
}

// handleRoute answers the §7 routing question for one item: local cache,
// sibling whose digest claims it, or origin.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request, f *Filter) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	if !checkItem(w, req.Item) {
		return
	}
	item := []byte(req.Item)
	resp := RouteResponse{
		Local: f.Store().Test(item),
		Peers: s.reg.Peers().claims(f.Name(), item),
	}
	if resp.Peers == nil {
		resp.Peers = []PeerClaim{}
	}
	switch {
	case resp.Local:
		resp.Verdict = "local"
	default:
		resp.Verdict = "origin"
		for _, pc := range resp.Peers {
			// Squid semantics: a digest routes until replaced, stale or not
			// — the Stale flag in the claim lets stricter callers opt out.
			if pc.Claims {
				resp.Verdict, resp.Peer = "peer", pc.Peer
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePeers reports one filter's per-peer digest accounting.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request, f *Filter) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only; force a fetch with POST .../peers/refresh")
		return
	}
	status, err := s.reg.Peers().status(f.Name())
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if status == nil {
		status = []PeerStatus{}
	}
	writeJSON(w, http.StatusOK, peersResponse{Peers: status})
}

// handlePeersRefresh synchronously fetches every configured peer's digest
// for one filter — the deterministic alternative to waiting out the
// jittered refresh interval (tests, smoke scripts, operators mid-incident).
func (s *Server) handlePeersRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	f, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	status, err := s.reg.Peers().RefreshNow(f.Name())
	switch {
	case errors.Is(err, ErrNoPeers):
		writeError(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, ErrFilterNotFound):
		writeError(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, peersResponse{Peers: status})
}

// ---------------------------------------------------------------------------
// Shared plumbing.

// decode parses a POST JSON body into dst, answering the error itself when
// the request is malformed.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes; split the batch", MaxBodyBytes))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// checkItem validates a single item, answering the error itself.
func checkItem(w http.ResponseWriter, item string) bool {
	if item == "" {
		writeError(w, http.StatusBadRequest, "empty item")
		return false
	}
	if len(item) > MaxItemLen {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("item exceeds %d bytes", MaxItemLen))
		return false
	}
	return true
}

// checkBatch validates a batch and converts it to byte slices.
func checkBatch(w http.ResponseWriter, items []string) ([][]byte, bool) {
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return nil, false
	}
	if len(items) > MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch exceeds %d items", MaxBatch))
		return nil, false
	}
	out := make([][]byte, len(items))
	for i, it := range items {
		if it == "" || len(it) > MaxItemLen {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("item %d empty or exceeds %d bytes", i, MaxItemLen))
			return nil, false
		}
		out[i] = []byte(it)
	}
	return out, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
