package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Wire format limits, all enforced independently: a request must satisfy
// every one of them. Batch sizes are bounded so one request cannot hold a
// shard lock for an unbounded stretch; item length is bounded because every
// byte is hashed k times; the body cap bounds the server's JSON-decoding
// memory, so a full MaxBatch of maximum-length items does not fit in one
// request — split such batches.
const (
	// MaxBatch is the largest accepted add-batch/test-batch size.
	MaxBatch = 10000
	// MaxItemLen is the largest accepted item length in bytes.
	MaxItemLen = 4096
	// MaxBodyBytes caps request bodies. Exceeding it answers 413 with a
	// message naming this limit.
	MaxBodyBytes = 8 << 20
)

// itemRequest is the body of /v1/add and /v1/test.
type itemRequest struct {
	Item string `json:"item"`
}

// batchRequest is the body of /v1/add-batch and /v1/test-batch.
type batchRequest struct {
	Items []string `json:"items"`
}

// addResponse answers /v1/add and /v1/add-batch.
type addResponse struct {
	Added int    `json:"added"`
	Count uint64 `json:"count"`
}

// testResponse answers /v1/test.
type testResponse struct {
	Present bool `json:"present"`
}

// testBatchResponse answers /v1/test-batch, Present in input order.
type testBatchResponse struct {
	Present []bool `json:"present"`
}

// InfoResponse answers /v1/info: the public parameters of the serving
// filter. In naive mode that includes the index seed — the paper's threat
// model ("the implementation of the Bloom filter is public and known") made
// concrete. In hardened mode Seed is omitted and Algorithm names the keyed
// scheme; the keys themselves never leave the server.
type InfoResponse struct {
	Mode      string  `json:"mode"`
	Shards    int     `json:"shards"`
	K         int     `json:"k"`
	ShardBits uint64  `json:"shard_bits"`
	Algorithm string  `json:"algorithm"`
	Seed      *uint64 `json:"seed,omitempty"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Server exposes a Sharded store over HTTP/JSON:
//
//	POST /v1/add         {"item": s}            -> {"added": 1, "count": n}
//	POST /v1/test        {"item": s}            -> {"present": bool}
//	POST /v1/add-batch   {"items": [s...]}      -> {"added": len, "count": n}
//	POST /v1/test-batch  {"items": [s...]}      -> {"present": [bool...]}
//	GET  /v1/stats                              -> Stats
//	GET  /v1/info                               -> InfoResponse
type Server struct {
	store *Sharded
	mux   *http.ServeMux
}

// NewServer wraps store in an HTTP API.
func NewServer(store *Sharded) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/add", s.handleAdd)
	s.mux.HandleFunc("/v1/test", s.handleTest)
	s.mux.HandleFunc("/v1/add-batch", s.handleAddBatch)
	s.mux.HandleFunc("/v1/test-batch", s.handleTestBatch)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/info", s.handleInfo)
	return s
}

// Store returns the underlying Sharded filter.
func (s *Server) Store() *Sharded { return s.store }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	if !checkItem(w, req.Item) {
		return
	}
	s.store.Add([]byte(req.Item))
	writeJSON(w, http.StatusOK, addResponse{Added: 1, Count: s.store.Count()})
}

func (s *Server) handleTest(w http.ResponseWriter, r *http.Request) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	if !checkItem(w, req.Item) {
		return
	}
	writeJSON(w, http.StatusOK, testResponse{Present: s.store.Test([]byte(req.Item))})
}

func (s *Server) handleAddBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	items, ok := checkBatch(w, req.Items)
	if !ok {
		return
	}
	s.store.AddBatch(items)
	writeJSON(w, http.StatusOK, addResponse{Added: len(items), Count: s.store.Count()})
}

func (s *Server) handleTestBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	items, ok := checkBatch(w, req.Items)
	if !ok {
		return
	}
	present := s.store.TestBatch(make([]bool, 0, len(items)), items)
	writeJSON(w, http.StatusOK, testBatchResponse{Present: present})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	info := InfoResponse{
		Mode:      s.store.Mode().String(),
		Shards:    s.store.Shards(),
		K:         s.store.K(),
		ShardBits: s.store.ShardBits(),
	}
	switch s.store.Mode() {
	case ModeNaive:
		info.Algorithm = "murmur3-double-hashing"
		seed := s.store.Seed()
		info.Seed = &seed
	case ModeHardened:
		info.Algorithm = "siphash-2-4-recycling"
	}
	writeJSON(w, http.StatusOK, info)
}

// decode parses a POST JSON body into dst, answering the error itself when
// the request is malformed.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes; split the batch", MaxBodyBytes))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// checkItem validates a single item, answering the error itself.
func checkItem(w http.ResponseWriter, item string) bool {
	if item == "" {
		writeError(w, http.StatusBadRequest, "empty item")
		return false
	}
	if len(item) > MaxItemLen {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("item exceeds %d bytes", MaxItemLen))
		return false
	}
	return true
}

// checkBatch validates a batch and converts it to byte slices.
func checkBatch(w http.ResponseWriter, items []string) ([][]byte, bool) {
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return nil, false
	}
	if len(items) > MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch exceeds %d items", MaxBatch))
		return nil, false
	}
	out := make([][]byte, len(items))
	for i, it := range items {
		if it == "" || len(it) > MaxItemLen {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("item %d empty or exceeds %d bytes", i, MaxItemLen))
			return nil, false
		}
		out[i] = []byte(it)
	}
	return out, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
