package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
	"evilbloom/internal/urlgen"
)

// benchItems pre-generates a working set so the generator is off the
// measured path.
func benchItems(n int) [][]byte {
	gen := urlgen.New(42)
	items := make([][]byte, n)
	for i := range items {
		items[i] = gen.Next()
	}
	return items
}

// syncedBaseline is the seed repo's concurrency story made monitorable: one
// global mutex around one filter, stats by scanning the bit vector under
// that same mutex (the filter exposes no cheaper way).
type syncedBaseline struct {
	mu     sync.Mutex
	filter *core.Bloom
}

func newSyncedBaseline(b *testing.B, fam hashes.IndexFamily) *syncedBaseline {
	b.Helper()
	return &syncedBaseline{filter: core.NewBloom(fam)}
}

func (s *syncedBaseline) Add(item []byte) {
	s.mu.Lock()
	s.filter.Add(item)
	s.mu.Unlock()
}

func (s *syncedBaseline) Test(item []byte) bool {
	s.mu.Lock()
	ok := s.filter.Test(item)
	s.mu.Unlock()
	return ok
}

func (s *syncedBaseline) Stats() (weight uint64, fpr float64) {
	s.mu.Lock()
	weight = s.filter.Weight() // O(m) popcount while all traffic waits
	fpr = core.FPForgeryProbability(s.filter.M(), s.filter.K(), weight)
	s.mu.Unlock()
	return weight, fpr
}

func newMurmurFamily(b *testing.B, totalBits uint64, k int) hashes.IndexFamily {
	b.Helper()
	fam, err := hashes.NewDoubleHashing(k, totalBits, 3)
	if err != nil {
		b.Fatal(err)
	}
	return fam
}

func newRecyclingFamily(b *testing.B, totalBits uint64, k int) hashes.IndexFamily {
	b.Helper()
	d, err := hashes.NewDigester(hashes.SipHash24Alg, []byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	fam, err := hashes.NewRecycling(d, k, totalBits)
	if err != nil {
		b.Fatal(err)
	}
	return fam
}

func newShardedBench(b *testing.B, shards int, totalBits uint64, k int, mode Mode) *Sharded {
	b.Helper()
	s, err := NewSharded(Config{
		Shards:    shards,
		ShardBits: totalBits / uint64(shards),
		HashCount: k,
		Mode:      mode,
		Seed:      3,
		Key:       []byte("0123456789abcdef"),
		RouteKey:  []byte("fedcba9876543210"),
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func newBlockedBench(b *testing.B, shards int, totalBits uint64, k int) *Sharded {
	b.Helper()
	s, err := NewSharded(Config{
		Variant:   VariantBlocked,
		Shards:    shards,
		ShardBits: totalBits / uint64(shards),
		HashCount: k,
		Mode:      ModeNaive,
		Seed:      3,
		RouteKey:  []byte("fedcba9876543210"),
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// runMixed drives 90% membership tests / 10% adds across all procs, with an
// optional stats poll every statsEvery ops (0 = never) — the monitoring
// traffic a live service actually serves.
func runMixed(b *testing.B, add func([]byte), test func([]byte) bool, stats func(), statsEvery int, items [][]byte) {
	for _, it := range items[:len(items)/2] {
		add(it)
	}
	var ctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 7919 // decorrelate goroutine walks
		var sink bool
		for pb.Next() {
			it := items[i&(len(items)-1)]
			switch {
			case statsEvery > 0 && i%statsEvery == 0:
				stats()
			case i%10 == 0:
				add(it)
			default:
				sink = sink != test(it)
			}
			i++
		}
		_ = sink
	})
}

// BenchmarkParallelMixed compares the single-mutex Synced wrapper against
// Sharded at several stripe counts under parallel mixed load, with the same
// Murmur double-hashing family and identical total geometry, so the delta is
// purely the locking architecture plus the keyed shard router. On a
// single-core host Sharded pays its ~45 ns routing overhead with no
// parallelism to recoup it; with GOMAXPROCS > 1 the stripes win.
func BenchmarkParallelMixed(b *testing.B) {
	const totalBits, k = 1 << 24, 5
	items := benchItems(1 << 16)
	b.Run("synced", func(b *testing.B) {
		f := newSyncedBaseline(b, newMurmurFamily(b, totalBits, k))
		runMixed(b, f.Add, f.Test, nil, 0, items)
	})
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			s := newShardedBench(b, shards, totalBits, k, ModeNaive)
			runMixed(b, s.Add, s.Test, nil, 0, items)
		})
	}
}

// BenchmarkParallelMixedHardened is the same comparison with the §8.2 keyed
// SipHash-recycling family — the configuration a deployment that cares
// about the paper's attacks would actually run. Hashing dominates, so the
// routing overhead vanishes even on one core, and Synced serializes the
// whole hash computation inside its lock while Sharded keeps it outside.
func BenchmarkParallelMixedHardened(b *testing.B) {
	const totalBits, k = 1 << 24, 10
	items := benchItems(1 << 14)
	b.Run("synced", func(b *testing.B) {
		f := newSyncedBaseline(b, newRecyclingFamily(b, totalBits, k))
		runMixed(b, f.Add, f.Test, nil, 0, items)
	})
	b.Run("sharded-16", func(b *testing.B) {
		s := newShardedBench(b, 16, totalBits, k, ModeHardened)
		runMixed(b, s.Add, s.Test, nil, 0, items)
	})
}

// BenchmarkParallelMixedMonitored adds what every live deployment has:
// periodic stats polling (1 in 512 ops, a modest scrape rate under load).
// The Synced baseline answers by popcounting the whole bit vector under the
// global mutex; Sharded tracks weights incrementally and answers in
// O(shards) — a hardware-independent win.
func BenchmarkParallelMixedMonitored(b *testing.B) {
	const totalBits, k, statsEvery = 1 << 24, 5, 512
	items := benchItems(1 << 16)
	b.Run("synced", func(b *testing.B) {
		f := newSyncedBaseline(b, newMurmurFamily(b, totalBits, k))
		runMixed(b, f.Add, f.Test, func() { f.Stats() }, statsEvery, items)
	})
	b.Run("sharded-16", func(b *testing.B) {
		s := newShardedBench(b, 16, totalBits, k, ModeNaive)
		runMixed(b, s.Add, s.Test, func() { s.Stats() }, statsEvery, items)
	})
}

// BenchmarkLoggedMixed prices the write-ahead log next to
// BenchmarkParallelMixed: the identical parallel mixed load on a 16-shard
// store with no journal (the baseline — must match sharded-16 above within
// noise), with the buffered journal under each flush policy, and with
// synchronous per-operation fsync. The buffered policies pay one in-memory
// record append inside the shard critical section; "always" pays a disk
// round-trip per mutation and is listed to make that price visible.
func BenchmarkLoggedMixed(b *testing.B) {
	const totalBits, k = 1 << 24, 5
	items := benchItems(1 << 16)
	b.Run("unlogged", func(b *testing.B) {
		s := newShardedBench(b, 16, totalBits, k, ModeNaive)
		runMixed(b, s.Add, s.Test, nil, 0, items)
	})
	for _, policy := range []SyncPolicy{SyncNever, SyncInterval, SyncAlways} {
		b.Run("wal-"+policy.String(), func(b *testing.B) {
			s := newShardedBench(b, 16, totalBits, k, ModeNaive)
			p, err := createPersister(b.TempDir(), s.config(), policy, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close() //nolint:errcheck
			s.SetJournal(p)
			runMixed(b, s.Add, s.Test, nil, 0, items)
			if err := p.Err(); err != nil {
				b.Fatalf("journal failed during bench: %v", err)
			}
		})
	}
}

// BenchmarkBatchAdd measures the lock-once-per-shard batch path against
// looping over singleton adds.
func BenchmarkBatchAdd(b *testing.B) {
	const totalBits, k, batch = 1 << 24, 5, 256
	items := benchItems(batch)
	b.Run("singleton-loop", func(b *testing.B) {
		s := newShardedBench(b, 16, totalBits, k, ModeNaive)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				s.Add(it)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		s := newShardedBench(b, 16, totalBits, k, ModeNaive)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AddBatch(items)
		}
	})
}

// BenchmarkHardenedOverhead prices the §8.2 countermeasure at the service
// layer: naive Murmur double hashing vs keyed SipHash recycling, single
// goroutine so the hash cost dominates.
func BenchmarkHardenedOverhead(b *testing.B) {
	for _, mode := range []Mode{ModeNaive, ModeHardened} {
		b.Run(mode.String(), func(b *testing.B) {
			s := newShardedBench(b, 8, 1<<24, 5, mode)
			items := benchItems(1 << 12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(items[i&(len(items)-1)])
			}
		})
	}
}

// newCountingBench builds a counting-variant store with the same geometry
// conventions as newShardedBench.
func newCountingBench(b *testing.B, shards int, totalBits uint64, k int, policy core.OverflowPolicy) *Sharded {
	b.Helper()
	s, err := NewSharded(Config{
		Variant:   VariantCounting,
		Shards:    shards,
		ShardBits: totalBits / uint64(shards),
		HashCount: k,
		Mode:      ModeNaive,
		Seed:      3,
		RouteKey:  []byte("fedcba9876543210"),
		Overflow:  policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkVariantMixed prices the backend abstraction across variants:
// the identical parallel mixed load through bloom shards (one bit per
// position) and counting shards (4-bit packed counters). The delta is the
// packed-counter arithmetic, not the service layer — routing, locking and
// index derivation are shared code.
func BenchmarkVariantMixed(b *testing.B) {
	const totalBits, k = 1 << 22, 5
	items := benchItems(1 << 16)
	b.Run("bloom", func(b *testing.B) {
		s := newShardedBench(b, 16, totalBits, k, ModeNaive)
		runMixed(b, s.Add, s.Test, nil, 0, items)
	})
	b.Run("blocked", func(b *testing.B) {
		s := newBlockedBench(b, 16, totalBits, k)
		runMixed(b, s.Add, s.Test, nil, 0, items)
	})
	for _, policy := range []core.OverflowPolicy{core.Wrap, core.Saturate} {
		b.Run("counting-"+policy.String(), func(b *testing.B) {
			s := newCountingBench(b, 16, totalBits, k, policy)
			runMixed(b, s.Add, s.Test, nil, 0, items)
		})
	}
}

// BenchmarkLockFreeReads prices the striped RLock on the read path: the
// identical parallel mixed load with Test going through bare atomic loads
// (the default) versus forced through the shard RLock. The delta is two
// atomic RMWs on the lock word per membership test — the read path's entire
// synchronization cost, since the loads themselves are plain word reads on
// amd64/arm64.
func BenchmarkLockFreeReads(b *testing.B) {
	const totalBits, k = 1 << 22, 5
	items := benchItems(1 << 16)
	for _, lockFree := range []bool{true, false} {
		name := "rlock"
		if lockFree {
			name = "lockfree"
		}
		b.Run(name, func(b *testing.B) {
			s := newShardedBench(b, 16, totalBits, k, ModeNaive)
			s.SetLockFreeReads(lockFree)
			runMixed(b, s.Add, s.Test, nil, 0, items)
		})
	}
}

// BenchmarkRemove measures the test-and-remove path (one shard lock per
// item, add first so removals mostly succeed) against plain adds on the
// same counting store.
func BenchmarkRemove(b *testing.B) {
	const totalBits, k = 1 << 22, 5
	items := benchItems(1 << 14)
	b.Run("add", func(b *testing.B) {
		s := newCountingBench(b, 16, totalBits, k, core.Saturate)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Add(items[i&(len(items)-1)])
		}
	})
	b.Run("add-remove", func(b *testing.B) {
		s := newCountingBench(b, 16, totalBits, k, core.Saturate)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := items[i&(len(items)-1)]
			s.Add(it)
			if _, err := s.Remove(it); err != nil {
				b.Fatal(err)
			}
		}
	})
}
