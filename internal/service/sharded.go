// Package service turns the paper's offline filter experiments into an
// online, serving system: a sharded, striped-lock filter store (Sharded)
// behind an HTTP/JSON API (Server), started by `evilbloom serve`.
//
// The store splits one logical Bloom filter into N power-of-two shards,
// each an independent core.Bloom with its own index family and its own
// read-write lock, so adds and membership tests on different shards never
// contend. Shard selection uses a separate keyed SipHash over the item, so
// an adversary who can predict the per-shard index families still cannot
// aim her insertions at a single shard and saturate it ahead of the others.
//
// Two modes mirror §8 of the paper:
//
//   - ModeNaive: unkeyed MurmurHash3 double hashing with a public seed, the
//     dablooms configuration of §6. A chosen-insertion adversary who clones
//     the family can pollute the filter through the public add endpoint —
//     package attack's RemoteView does exactly that.
//   - ModeHardened: keyed SipHash-2-4 with digest recycling (§8.2), one key
//     per shard derived from a server secret. The same adversary's crafted
//     items land on unpredictable positions and degrade into random
//     insertions.
//
// The HTTP server exposes add, test, batch add/test, stats (fill ratio,
// estimated false-positive rate, per-shard weights) and info endpoints; see
// Server for the wire format.
package service

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sync"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// Mode selects the index-derivation scheme served by a Sharded store.
type Mode int

const (
	// ModeNaive is the attackable configuration of §6: unkeyed MurmurHash3
	// double hashing with a public seed shared by every shard, exactly like
	// dablooms' compile-time seed constant.
	ModeNaive Mode = iota
	// ModeHardened is the §8.2 countermeasure: keyed SipHash-2-4 with digest
	// recycling, one derived key per shard, all keys server-side secrets.
	ModeHardened
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeHardened:
		return "hardened"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves "naive" or "hardened".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "naive":
		return ModeNaive, nil
	case "hardened":
		return ModeHardened, nil
	default:
		return 0, fmt.Errorf("service: unknown mode %q (want naive or hardened)", s)
	}
}

// Config sizes and keys a Sharded store.
type Config struct {
	// Shards is the shard count; it must be a power of two. Default 8.
	Shards int
	// Capacity is the total anticipated insertions across all shards.
	// Default 1<<20. Ignored when ShardBits is set.
	Capacity uint64
	// TargetFPR is the designed false-positive probability. Default 2^-10.
	// Ignored (for sizing) when both ShardBits and HashCount are set.
	TargetFPR float64
	// ShardBits optionally fixes each shard's size in bits instead of
	// deriving it from Capacity and TargetFPR — experiments reproducing a
	// paper geometry (m=3200, k=4) set this together with HashCount.
	ShardBits uint64
	// HashCount optionally fixes k instead of deriving it from TargetFPR.
	HashCount int
	// Mode selects naive or hardened index derivation. Default ModeNaive.
	Mode Mode
	// Seed is the public MurmurHash3 seed used in ModeNaive.
	Seed uint64
	// Key is the 16-byte server secret used in ModeHardened; per-shard keys
	// are derived from it. Drawn from crypto/rand when nil.
	Key []byte
	// RouteKey is the 16-byte secret keying shard selection. Drawn from
	// crypto/rand when nil. Kept separate from Key so that even a leaked
	// index key does not let an adversary target one shard.
	RouteKey []byte
}

// withDefaults fills zero fields and validates the result.
func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards < 1 || c.Shards&(c.Shards-1) != 0 {
		return c, fmt.Errorf("service: shard count %d is not a power of two", c.Shards)
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 20
	}
	if c.TargetFPR == 0 {
		c.TargetFPR = 1.0 / 1024
	}
	if c.TargetFPR <= 0 || c.TargetFPR >= 1 {
		return c, fmt.Errorf("service: target FPR %v out of (0, 1)", c.TargetFPR)
	}
	if c.ShardBits == 0 {
		perShard := (c.Capacity + uint64(c.Shards) - 1) / uint64(c.Shards)
		c.ShardBits = core.OptimalM(perShard, c.TargetFPR)
		if c.ShardBits == 0 {
			return c, fmt.Errorf("service: capacity %d and FPR %v yield an empty shard", c.Capacity, c.TargetFPR)
		}
	}
	if c.HashCount == 0 {
		c.HashCount = core.KForFPR(c.TargetFPR)
	}
	if c.HashCount < 1 {
		return c, fmt.Errorf("service: hash count %d must be positive", c.HashCount)
	}
	var err error
	if c.RouteKey, err = ensureKey(c.RouteKey); err != nil {
		return c, err
	}
	if c.Mode == ModeHardened {
		if c.Key, err = ensureKey(c.Key); err != nil {
			return c, err
		}
	}
	return c, nil
}

// ensureKey returns key when it is already 16 bytes, a fresh random key when
// it is nil, and an error otherwise.
func ensureKey(key []byte) ([]byte, error) {
	if key == nil {
		key = make([]byte, 16)
		if _, err := rand.Read(key); err != nil {
			return nil, fmt.Errorf("service: drawing key: %w", err)
		}
		return key, nil
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("service: keys must be 16 bytes, got %d", len(key))
	}
	return key, nil
}

// shard pairs one filter with its lock and a pool of per-goroutine index
// families (IndexFamily instances reuse digest state and must not be shared;
// pooling clones keeps index derivation out of the critical section).
type shard struct {
	mu     sync.RWMutex
	filter *core.Bloom
	// weight tracks the filter's Hamming weight incrementally from the
	// fresh-bit counts AddIndexes reports, so Stats is O(shards) instead of
	// an O(m) popcount scan under the lock.
	weight uint64
	pool   sync.Pool // of *scratch
}

// scratch is the per-goroutine working set checked out of a shard's pool.
type scratch struct {
	fam hashes.IndexFamily
	idx []uint64
}

// Sharded is a striped-lock filter store: N independent core.Bloom shards,
// shard selection by a keyed hash. It implements core.Filter; unlike
// core.Synced it scales with parallel load because operations on different
// shards proceed concurrently and membership tests on the same shard share a
// read lock.
type Sharded struct {
	shards []shard
	mask   uint64
	route  hashes.SipKey
	mode   Mode
	seed   uint64
	k      int
	mShard uint64
}

var _ core.Filter = (*Sharded)(nil)

// NewSharded builds a store from cfg (zero fields take defaults).
func NewSharded(cfg Config) (*Sharded, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var rk [16]byte
	copy(rk[:], cfg.RouteKey)
	s := &Sharded{
		shards: make([]shard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
		route:  hashes.SipKeyFromBytes(rk),
		mode:   cfg.Mode,
		seed:   cfg.Seed,
		k:      cfg.HashCount,
		mShard: cfg.ShardBits,
	}
	for i := range s.shards {
		fam, err := newShardFamily(cfg, i)
		if err != nil {
			return nil, err
		}
		sh := &s.shards[i]
		sh.filter = core.NewBloom(fam)
		proto := fam // each clone source is the shard's own family
		k := cfg.HashCount
		sh.pool.New = func() any {
			return &scratch{fam: proto.Clone(), idx: make([]uint64, 0, k)}
		}
	}
	return s, nil
}

// newShardFamily builds shard i's index family under cfg's mode.
func newShardFamily(cfg Config, i int) (hashes.IndexFamily, error) {
	switch cfg.Mode {
	case ModeNaive:
		// Every shard shares the one public seed, mirroring how deployed
		// filters (dablooms, Squid) bake a constant into the binary — the
		// property the §6 attacks rely on.
		return hashes.NewDoubleHashing(cfg.HashCount, cfg.ShardBits, cfg.Seed)
	case ModeHardened:
		d, err := hashes.NewDigester(hashes.SipHash24Alg, deriveShardKey(cfg.Key, i))
		if err != nil {
			return nil, err
		}
		return hashes.NewRecycling(d, cfg.HashCount, cfg.ShardBits)
	default:
		return nil, fmt.Errorf("service: unknown mode %v", cfg.Mode)
	}
}

// deriveShardKey expands the server secret into shard i's 16-byte SipHash
// key: SHA-256(secret ‖ i) truncated. Shards must not share an index key or
// one shard's forged false positives would replay against every other.
func deriveShardKey(secret []byte, i int) []byte {
	h := sha256.New()
	h.Write(secret)                                                      //nolint:errcheck // hash writes never fail
	h.Write([]byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}) //nolint:errcheck
	return h.Sum(nil)[:16]
}

// shardFor routes item to its shard index via the keyed routing hash.
func (s *Sharded) shardFor(item []byte) int {
	return int(hashes.SipHash24(s.route, item) & s.mask)
}

// Add implements core.Filter. Index derivation happens outside the shard
// lock on a pooled family clone; only the bit writes are serialized.
func (s *Sharded) Add(item []byte) {
	sh := &s.shards[s.shardFor(item)]
	sc := sh.pool.Get().(*scratch)
	sc.idx = sc.fam.Indexes(sc.idx[:0], item)
	sh.mu.Lock()
	sh.weight += uint64(sh.filter.AddIndexes(sc.idx))
	sh.mu.Unlock()
	sh.pool.Put(sc)
}

// Test implements core.Filter. Concurrent tests on one shard share its read
// lock.
func (s *Sharded) Test(item []byte) bool {
	sh := &s.shards[s.shardFor(item)]
	sc := sh.pool.Get().(*scratch)
	sc.idx = sc.fam.Indexes(sc.idx[:0], item)
	sh.mu.RLock()
	ok := sh.filter.TestIndexes(sc.idx)
	sh.mu.RUnlock()
	sh.pool.Put(sc)
	return ok
}

// AddBatch inserts every item, grouping by shard so each shard's lock is
// taken once per batch instead of once per item.
func (s *Sharded) AddBatch(items [][]byte) {
	groups := s.group(items)
	for si := range s.shards {
		g := groups[si]
		if len(g) == 0 {
			continue
		}
		sh := &s.shards[si]
		sc := sh.pool.Get().(*scratch)
		sc.idx = sc.idx[:0]
		for _, ii := range g {
			sc.idx = sc.fam.Indexes(sc.idx, items[ii])
		}
		sh.mu.Lock()
		for j := 0; j < len(g); j++ {
			sh.weight += uint64(sh.filter.AddIndexes(sc.idx[j*s.k : (j+1)*s.k]))
		}
		sh.mu.Unlock()
		sh.pool.Put(sc)
	}
}

// TestBatch reports membership for every item, in input order, grouping by
// shard like AddBatch. The result is appended to dst.
func (s *Sharded) TestBatch(dst []bool, items [][]byte) []bool {
	base := len(dst)
	dst = append(dst, make([]bool, len(items))...)
	groups := s.group(items)
	for si := range s.shards {
		g := groups[si]
		if len(g) == 0 {
			continue
		}
		sh := &s.shards[si]
		sc := sh.pool.Get().(*scratch)
		sc.idx = sc.idx[:0]
		for _, ii := range g {
			sc.idx = sc.fam.Indexes(sc.idx, items[ii])
		}
		sh.mu.RLock()
		for j, ii := range g {
			dst[base+ii] = sh.filter.TestIndexes(sc.idx[j*s.k : (j+1)*s.k])
		}
		sh.mu.RUnlock()
		sh.pool.Put(sc)
	}
	return dst
}

// group partitions item positions by destination shard.
func (s *Sharded) group(items [][]byte) [][]int {
	groups := make([][]int, len(s.shards))
	for i, it := range items {
		si := s.shardFor(it)
		groups[si] = append(groups[si], i)
	}
	return groups
}

// Count implements core.Filter: total insertions across shards.
func (s *Sharded) Count() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.filter.Count()
		sh.mu.RUnlock()
	}
	return n
}

// Mode returns the serving mode.
func (s *Sharded) Mode() Mode { return s.mode }

// Seed returns the public naive-mode seed (meaningless in hardened mode).
func (s *Sharded) Seed() uint64 { return s.seed }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// K returns the per-item index count.
func (s *Sharded) K() int { return s.k }

// ShardBits returns each shard's size in bits.
func (s *Sharded) ShardBits() uint64 { return s.mShard }

// ShardStats is one shard's snapshot inside Stats.
type ShardStats struct {
	Shard  int     `json:"shard"`
	Count  uint64  `json:"count"`
	Weight uint64  `json:"weight"`
	Fill   float64 `json:"fill"`
	FPR    float64 `json:"estimated_fpr"`
}

// Stats is a point-in-time snapshot of the whole store. FPR is the mean of
// the per-shard estimates: the keyed router spreads uniform queries evenly,
// so a random query's false-positive probability is the shard average.
type Stats struct {
	Mode      string       `json:"mode"`
	Shards    int          `json:"shards"`
	K         int          `json:"k"`
	ShardBits uint64       `json:"shard_bits"`
	Count     uint64       `json:"count"`
	Weight    uint64       `json:"weight"`
	Fill      float64      `json:"fill"`
	FPR       float64      `json:"estimated_fpr"`
	PerShard  []ShardStats `json:"per_shard"`
}

// Stats snapshots every shard in O(shards): weights are tracked
// incrementally at insertion time, so no shard holds its lock for an O(m)
// bit-vector scan. Shards are locked one at a time, so the snapshot is
// per-shard consistent but not a global atomic cut — fine for monitoring,
// which is its purpose.
func (s *Sharded) Stats() Stats {
	st := Stats{
		Mode:      s.mode.String(),
		Shards:    len(s.shards),
		K:         s.k,
		ShardBits: s.mShard,
		PerShard:  make([]ShardStats, len(s.shards)),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		count, weight := sh.filter.Count(), sh.weight
		sh.mu.RUnlock()
		ss := ShardStats{
			Shard:  i,
			Count:  count,
			Weight: weight,
			Fill:   float64(weight) / float64(s.mShard),
			FPR:    core.FPForgeryProbability(s.mShard, s.k, weight),
		}
		st.PerShard[i] = ss
		st.Count += ss.Count
		st.Weight += ss.Weight
		st.FPR += ss.FPR
	}
	total := float64(s.mShard) * float64(len(s.shards))
	st.Fill = float64(st.Weight) / total
	st.FPR /= float64(len(s.shards))
	return st
}
