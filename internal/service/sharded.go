package service

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// Mode selects the index-derivation scheme served by a Sharded store.
type Mode int

const (
	// ModeNaive is the attackable configuration of §6: unkeyed MurmurHash3
	// double hashing with a public seed shared by every shard, exactly like
	// dablooms' compile-time seed constant.
	ModeNaive Mode = iota
	// ModeHardened is the §8.2 countermeasure: keyed SipHash-2-4 with digest
	// recycling, one derived key per shard, all keys server-side secrets.
	ModeHardened
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeHardened:
		return "hardened"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves "naive" or "hardened"; the empty string is the naive
// default so wire specs may omit it.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "naive":
		return ModeNaive, nil
	case "hardened":
		return ModeHardened, nil
	default:
		return 0, fmt.Errorf("service: unknown mode %q (want naive or hardened)", s)
	}
}

// Structural limits enforced by Config.withDefaults. Unlike the registry's
// storage-bits caps these bound allocations that happen *before* any bit of
// filter storage exists: the []shard array, per-shard pools, index families
// and per-item index buffers all scale with these factors, so an
// unauthenticated filter spec must not pick them freely.
const (
	// MaxShards caps the shard count (must also be a power of two).
	MaxShards = 1 << 16
	// MaxHashCount caps k: every pooled scratch and every batch request
	// buffers k uint64 indexes per item.
	MaxHashCount = 512
)

// Config sizes and keys a Sharded store.
type Config struct {
	// Variant selects the per-shard backend: VariantBloom (default, no
	// deletion), VariantCounting (§4.3 deletion, configurable overflow) or
	// VariantBlocked (cache-line-local probes, no deletion; ShardBits rounds
	// up to a multiple of 512).
	Variant Variant
	// Shards is the shard count; it must be a power of two. Default 8.
	Shards int
	// Capacity is the total anticipated insertions across all shards.
	// Default 1<<20. Ignored when ShardBits is set.
	Capacity uint64
	// TargetFPR is the designed false-positive probability. Default 2^-10.
	// Ignored (for sizing) when both ShardBits and HashCount are set.
	TargetFPR float64
	// ShardBits optionally fixes each shard's size in bits instead of
	// deriving it from Capacity and TargetFPR — experiments reproducing a
	// paper geometry (m=3200, k=4) set this together with HashCount.
	ShardBits uint64
	// HashCount optionally fixes k instead of deriving it from TargetFPR.
	HashCount int
	// Mode selects naive or hardened index derivation. Default ModeNaive.
	Mode Mode
	// Seed is the public MurmurHash3 seed used in ModeNaive.
	Seed uint64
	// Key is the 16-byte server secret used in ModeHardened; per-shard keys
	// are derived from it. Drawn from crypto/rand when nil.
	Key []byte
	// RouteKey is the 16-byte secret keying shard selection. Drawn from
	// crypto/rand when nil. Kept separate from Key so that even a leaked
	// index key does not let an adversary target one shard.
	RouteKey []byte
	// CounterWidth is the counter size in bits for VariantCounting (default
	// 4, the dablooms width). It must be zero for VariantBloom.
	CounterWidth int
	// Overflow selects what a counting shard does when a counter saturates
	// (default core.Wrap, faithful to dablooms and what the §6.2 attack
	// exploits; core.Saturate is the countermeasure). Zero for VariantBloom.
	Overflow core.OverflowPolicy
}

// withDefaults fills zero fields and validates the result.
func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards < 1 || c.Shards&(c.Shards-1) != 0 {
		return c, fmt.Errorf("service: shard count %d is not a power of two", c.Shards)
	}
	if c.Shards > MaxShards {
		return c, fmt.Errorf("service: shard count %d exceeds %d", c.Shards, MaxShards)
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 20
	}
	if c.TargetFPR == 0 {
		c.TargetFPR = 1.0 / 1024
	}
	if c.TargetFPR <= 0 || c.TargetFPR >= 1 {
		return c, fmt.Errorf("service: target FPR %v out of (0, 1)", c.TargetFPR)
	}
	if c.ShardBits == 0 {
		perShard := (c.Capacity + uint64(c.Shards) - 1) / uint64(c.Shards)
		c.ShardBits = core.OptimalM(perShard, c.TargetFPR)
		if c.ShardBits == 0 {
			return c, fmt.Errorf("service: capacity %d and FPR %v yield an empty shard", c.Capacity, c.TargetFPR)
		}
	}
	if c.HashCount == 0 {
		c.HashCount = core.KForFPR(c.TargetFPR)
	}
	if c.HashCount < 1 {
		return c, fmt.Errorf("service: hash count %d must be positive", c.HashCount)
	}
	if c.HashCount > MaxHashCount {
		return c, fmt.Errorf("service: hash count %d exceeds %d", c.HashCount, MaxHashCount)
	}
	switch c.Variant {
	case VariantBloom, VariantBlocked:
		if c.CounterWidth != 0 {
			return c, fmt.Errorf("service: counter width %d set on a %v filter (counters need variant=counting)", c.CounterWidth, c.Variant)
		}
		if c.Overflow != 0 {
			return c, fmt.Errorf("service: overflow policy %v set on a %v filter (counters need variant=counting)", c.Overflow, c.Variant)
		}
		if c.Variant == VariantBlocked {
			// Every block is one whole cache line; round the shard size up to
			// a block multiple so no partial block exists. The rounded size is
			// what the registry charges, the snapshot envelope records, and
			// the info endpoints report.
			rounded := (c.ShardBits + core.BlockBits - 1) / core.BlockBits * core.BlockBits
			if rounded < c.ShardBits { // arithmetic wrapped: absurd size
				return c, fmt.Errorf("service: shard size %d overflows block rounding", c.ShardBits)
			}
			c.ShardBits = rounded
		}
	case VariantCounting:
		if c.CounterWidth == 0 {
			c.CounterWidth = 4
		}
		// Mirror core's packed-counter bound here so the width entering the
		// registry's storage arithmetic is never negative or absurd.
		if c.CounterWidth < 1 || c.CounterWidth > 16 {
			return c, fmt.Errorf("service: counter width %d outside [1,16]", c.CounterWidth)
		}
		if c.Overflow == 0 {
			c.Overflow = core.Wrap
		}
	default:
		return c, fmt.Errorf("service: unknown variant %v", c.Variant)
	}
	var err error
	if c.RouteKey, err = ensureKey(c.RouteKey); err != nil {
		return c, err
	}
	if c.Mode == ModeHardened {
		if c.Key, err = ensureKey(c.Key); err != nil {
			return c, err
		}
	}
	return c, nil
}

// ensureKey returns key when it is already 16 bytes, a fresh random key when
// it is nil, and an error otherwise.
func ensureKey(key []byte) ([]byte, error) {
	if key == nil {
		key = make([]byte, 16)
		if _, err := rand.Read(key); err != nil {
			return nil, fmt.Errorf("service: drawing key: %w", err)
		}
		return key, nil
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("service: keys must be 16 bytes, got %d", len(key))
	}
	return key, nil
}

// shard pairs one backend with its lock and a pool of per-goroutine index
// families (IndexFamily instances reuse digest state and must not be shared;
// pooling clones keeps index derivation out of the critical section).
type shard struct {
	mu      sync.RWMutex
	backend Backend
	// remover caches the backend's Remover capability (nil when absent) so
	// the remove hot path skips a per-call type assertion.
	remover Remover
	// atomic caches the backend's atomicReader capability when its geometry
	// supports torn-free atomic reads (nil otherwise): the lock-free Test
	// path. Membership tests through it take no lock at all; mutations still
	// serialize under mu and store words atomically, so readers never see a
	// torn word and the weight/generation/journal accounting — all of it on
	// the write side — is untouched.
	atomic atomicReader
	// weight tracks the backend's occupied-position count incrementally
	// from the fresh/zeroed deltas AddIndexes and RemoveIndexes report, so
	// Stats is O(shards) instead of an O(m) scan under the lock.
	weight uint64
	// muts counts effective mutations (adds, accepted removals, restores),
	// maintained under the write lock the mutation already holds. The sum
	// across shards is the store's Generation — the cheap monotone version
	// number the digest exchange uses for its ETag short-circuit.
	muts uint64
	pool sync.Pool // of *scratch
}

// scratch is the per-goroutine working set checked out of a shard's pool.
type scratch struct {
	fam hashes.IndexFamily
	idx []uint64
}

// Sharded is a striped-lock filter store: N independent backend shards,
// shard selection by a keyed hash. It implements core.Filter; unlike
// core.Synced it scales with parallel load because operations on different
// shards proceed concurrently and membership tests on the same shard share a
// read lock. The shards are variant-generic: any Backend (plain bloom,
// counting under either overflow policy, or a future hardened construction)
// reuses the same routing, locking, batching and incremental-stats code.
type Sharded struct {
	shards  []shard
	mask    uint64
	route   hashes.SipKey
	variant Variant
	mode    Mode
	seed    uint64
	k       int
	mShard  uint64
	width   int
	policy  core.OverflowPolicy
	// etagSalt makes digest ETags unique per store instance. The mutation
	// counter behind Generation resets on restart, so a bare generation
	// could re-pass through an ETag value a peer already holds and earn a
	// spurious 304 for different content; a fresh random salt per boot
	// makes pre-restart ETags never match again.
	etagSalt uint64
	// cfg is the normalized configuration the store was built from,
	// including its secrets — retained so the persistence layer can rebuild
	// an identical store at boot. Never exposed through the public API.
	cfg Config
	// journal, when non-nil, receives every effective mutation from inside
	// the owning shard's critical section, so the journal order of
	// operations on one shard matches their application order (operations on
	// different shards touch disjoint state and commute under replay). Set
	// once via SetJournal before the store serves traffic.
	journal Journal
	// deltaMu serializes digest-delta exchanges and guards deltaBase, the
	// occupancy snapshot of the last digest served to a delta-capable peer.
	// Only DigestExchange touches either; the membership hot path never
	// sees this lock.
	deltaMu   sync.Mutex
	deltaBase *digestBaseline
}

// Journal receives the store's effective mutations — the append-only
// operation log of the persistence layer. Calls arrive under a shard's write
// lock and must not block on anything that could itself wait on a shard lock
// (a buffered in-memory append is the intended implementation).
type Journal interface {
	// JournalAdd records an insertion. Item aliases caller memory; copy it.
	JournalAdd(item []byte)
	// JournalRemove records an accepted removal (refused removals never
	// mutate state and are not journaled). Item aliases caller memory.
	JournalRemove(item []byte)
}

// SetJournal attaches the mutation journal. It must be called before the
// store serves concurrent traffic (the registry attaches it between replay
// and publication at boot).
func (s *Sharded) SetJournal(j Journal) { s.journal = j }

// config returns the store's normalized build configuration, secrets
// included — for the persistence layer only.
func (s *Sharded) config() Config { return s.cfg }

var _ core.Filter = (*Sharded)(nil)

// NewSharded builds a store from cfg (zero fields take defaults).
func NewSharded(cfg Config) (*Sharded, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var salt [8]byte
	if _, err := rand.Read(salt[:]); err != nil {
		return nil, fmt.Errorf("service: drawing etag salt: %w", err)
	}
	var rk [16]byte
	copy(rk[:], cfg.RouteKey)
	s := &Sharded{
		shards:   make([]shard, cfg.Shards),
		mask:     uint64(cfg.Shards - 1),
		route:    hashes.SipKeyFromBytes(rk),
		variant:  cfg.Variant,
		mode:     cfg.Mode,
		seed:     cfg.Seed,
		k:        cfg.HashCount,
		mShard:   cfg.ShardBits,
		width:    cfg.CounterWidth,
		policy:   cfg.Overflow,
		etagSalt: binary.LittleEndian.Uint64(salt[:]),
		cfg:      cfg,
	}
	for i := range s.shards {
		fam, err := newShardFamily(cfg, i)
		if err != nil {
			return nil, err
		}
		sh := &s.shards[i]
		if sh.backend, err = newBackend(cfg, fam); err != nil {
			return nil, err
		}
		sh.remover, _ = sh.backend.(Remover)
		if ar, ok := sh.backend.(atomicReader); ok && ar.LockFreeReads() {
			sh.atomic = ar
		}
		proto := fam // each clone source is the shard's own family
		k := cfg.HashCount
		sh.pool.New = func() any {
			return &scratch{fam: proto.Clone(), idx: make([]uint64, 0, k)}
		}
	}
	return s, nil
}

// newShardFamily builds shard i's index family under cfg's mode.
func newShardFamily(cfg Config, i int) (hashes.IndexFamily, error) {
	switch cfg.Mode {
	case ModeNaive:
		// Every shard shares the one public seed, mirroring how deployed
		// filters (dablooms, Squid) bake a constant into the binary — the
		// property the §6 attacks rely on.
		return hashes.NewDoubleHashing(cfg.HashCount, cfg.ShardBits, cfg.Seed)
	case ModeHardened:
		d, err := hashes.NewDigester(hashes.SipHash24Alg, deriveShardKey(cfg.Key, i))
		if err != nil {
			return nil, err
		}
		return hashes.NewRecycling(d, cfg.HashCount, cfg.ShardBits)
	default:
		return nil, fmt.Errorf("service: unknown mode %v", cfg.Mode)
	}
}

// deriveShardKey expands the server secret into shard i's 16-byte SipHash
// key: SHA-256(secret ‖ i) truncated. Shards must not share an index key or
// one shard's forged false positives would replay against every other.
func deriveShardKey(secret []byte, i int) []byte {
	h := sha256.New()
	h.Write(secret)                                                      //nolint:errcheck // hash writes never fail
	h.Write([]byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}) //nolint:errcheck
	return h.Sum(nil)[:16]
}

// shardFor routes item to its shard index via the keyed routing hash.
func (s *Sharded) shardFor(item []byte) int {
	return int(hashes.SipHash24(s.route, item) & s.mask)
}

// Add implements core.Filter. Index derivation happens outside the shard
// lock on a pooled family clone; only the position writes are serialized.
func (s *Sharded) Add(item []byte) {
	sh := &s.shards[s.shardFor(item)]
	sc := sh.pool.Get().(*scratch)
	sc.idx = sc.fam.Indexes(sc.idx[:0], item)
	sh.mu.Lock()
	sh.weight = applyDelta(sh.weight, sh.backend.AddIndexes(sc.idx))
	sh.muts++
	if s.journal != nil {
		s.journal.JournalAdd(item)
	}
	sh.mu.Unlock()
	sh.pool.Put(sc)
}

// applyDelta shifts an unsigned weight by a signed occupancy change (wrap
// overflows make add deltas negative).
func applyDelta(w uint64, d int) uint64 { return uint64(int64(w) + int64(d)) }

// Test implements core.Filter. When the backend supports torn-free atomic
// reads (every shipped variant except straddling-width counters), the test
// is pure atomic word loads with no lock at all — a test racing a mutation
// returns an answer from some state the shard passed through, the same
// guarantee the RLock gave, minus two atomic RMWs of lock traffic per call.
// Other backends fall back to sharing the shard's read lock.
func (s *Sharded) Test(item []byte) bool {
	sh := &s.shards[s.shardFor(item)]
	sc := sh.pool.Get().(*scratch)
	sc.idx = sc.fam.Indexes(sc.idx[:0], item)
	var ok bool
	if sh.atomic != nil {
		ok = sh.atomic.TestIndexesAtomic(sc.idx)
	} else {
		sh.mu.RLock()
		ok = sh.backend.TestIndexes(sc.idx)
		sh.mu.RUnlock()
	}
	sh.pool.Put(sc)
	return ok
}

// SetLockFreeReads enables or disables the lock-free read path on every
// shard whose backend supports it. It exists for benchmarking — measuring
// the striped-RLock baseline against the atomic path on identical stores —
// and must only be called before the store serves concurrent traffic.
func (s *Sharded) SetLockFreeReads(enabled bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.atomic = nil
		if !enabled {
			continue
		}
		if ar, ok := sh.backend.(atomicReader); ok && ar.LockFreeReads() {
			sh.atomic = ar
		}
	}
}

// Removable reports whether the store's backends support deletion.
func (s *Sharded) Removable() bool { return s.shards[0].remover != nil }

// Snapshotable reports whether the store's backends support snapshots.
func (s *Sharded) Snapshotable() bool {
	_, ok := s.shards[0].backend.(Snapshotter)
	return ok
}

// Remove deletes item if the filter currently believes it present,
// reporting whether a removal happened. The membership check and the
// decrements run under one shard lock, so a concurrent storm of removals
// can never drive a counter below zero — each removal only decrements
// counters the check just saw non-zero. It returns ErrNotRemovable when the
// backend has no Remover capability (plain bloom shards).
//
// The check guards the *filter's belief*, not the truth: a crafted item the
// filter wrongly believes present (a §4.3 Bloom second pre-image) passes it
// and its removal silently damages every honest item sharing its counters.
// That asymmetry is the paper's deletion attack, and the reason hardened
// mode keeps index positions unpredictable.
func (s *Sharded) Remove(item []byte) (bool, error) {
	if !s.Removable() {
		return false, ErrNotRemovable
	}
	sh := &s.shards[s.shardFor(item)]
	sc := sh.pool.Get().(*scratch)
	sc.idx = sc.fam.Indexes(sc.idx[:0], item)
	sh.mu.Lock()
	removed, err := sh.removeLocked(sc.idx)
	if removed {
		sh.muts++
		if s.journal != nil {
			s.journal.JournalRemove(item)
		}
	}
	sh.mu.Unlock()
	sh.pool.Put(sc)
	return removed, err
}

// removeLocked test-and-removes one index set; the caller holds the shard's
// write lock. The membership check refuses items the filter believes
// absent; the CanRemoveIndexes check additionally refuses crafted
// duplicate-position items that would underflow mid-removal, so the
// partial-removal footprint is unreachable through the service.
func (sh *shard) removeLocked(idx []uint64) (bool, error) {
	if !sh.backend.TestIndexes(idx) || !sh.remover.CanRemoveIndexes(idx) {
		return false, nil
	}
	zeroed, err := sh.remover.RemoveIndexes(idx)
	sh.weight -= uint64(zeroed)
	if err != nil {
		// Unreachable while the lock pairs both checks with the decrements,
		// but a future backend could fail differently; surface it.
		return true, fmt.Errorf("service: removal failed mid-way: %w", err)
	}
	return true, nil
}

// RemoveBatch deletes every item the filter believes present, reporting
// per-item outcomes in input order. Like AddBatch it groups by shard and
// takes each shard's lock once. It returns ErrNotRemovable for backends
// without the capability.
func (s *Sharded) RemoveBatch(items [][]byte) ([]bool, error) {
	if !s.Removable() {
		return nil, ErrNotRemovable
	}
	removed := make([]bool, len(items))
	groups := s.group(items)
	for si := range s.shards {
		g := groups[si]
		if len(g) == 0 {
			continue
		}
		sh := &s.shards[si]
		sc := sh.pool.Get().(*scratch)
		sc.idx = sc.idx[:0]
		for _, ii := range g {
			sc.idx = sc.fam.Indexes(sc.idx, items[ii])
		}
		sh.mu.Lock()
		for j, ii := range g {
			ok, err := sh.removeLocked(sc.idx[j*s.k : (j+1)*s.k])
			if err != nil {
				sh.mu.Unlock()
				sh.pool.Put(sc)
				return removed, err
			}
			if ok {
				sh.muts++
				if s.journal != nil {
					s.journal.JournalRemove(items[ii])
				}
			}
			removed[ii] = ok
		}
		sh.mu.Unlock()
		sh.pool.Put(sc)
	}
	return removed, nil
}

// AddBatch inserts every item, grouping by shard so each shard's lock is
// taken once per batch instead of once per item.
func (s *Sharded) AddBatch(items [][]byte) {
	groups := s.group(items)
	for si := range s.shards {
		g := groups[si]
		if len(g) == 0 {
			continue
		}
		sh := &s.shards[si]
		sc := sh.pool.Get().(*scratch)
		sc.idx = sc.idx[:0]
		for _, ii := range g {
			sc.idx = sc.fam.Indexes(sc.idx, items[ii])
		}
		sh.mu.Lock()
		for j := 0; j < len(g); j++ {
			sh.weight = applyDelta(sh.weight, sh.backend.AddIndexes(sc.idx[j*s.k:(j+1)*s.k]))
			sh.muts++
			if s.journal != nil {
				s.journal.JournalAdd(items[g[j]])
			}
		}
		sh.mu.Unlock()
		sh.pool.Put(sc)
	}
}

// TestBatch reports membership for every item, in input order, grouping by
// shard like AddBatch. The result is appended to dst.
func (s *Sharded) TestBatch(dst []bool, items [][]byte) []bool {
	base := len(dst)
	dst = append(dst, make([]bool, len(items))...)
	groups := s.group(items)
	for si := range s.shards {
		g := groups[si]
		if len(g) == 0 {
			continue
		}
		sh := &s.shards[si]
		sc := sh.pool.Get().(*scratch)
		sc.idx = sc.idx[:0]
		for _, ii := range g {
			sc.idx = sc.fam.Indexes(sc.idx, items[ii])
		}
		if sh.atomic != nil {
			for j, ii := range g {
				dst[base+ii] = sh.atomic.TestIndexesAtomic(sc.idx[j*s.k : (j+1)*s.k])
			}
		} else {
			sh.mu.RLock()
			for j, ii := range g {
				dst[base+ii] = sh.backend.TestIndexes(sc.idx[j*s.k : (j+1)*s.k])
			}
			sh.mu.RUnlock()
		}
		sh.pool.Put(sc)
	}
	return dst
}

// group partitions item positions by destination shard.
func (s *Sharded) group(items [][]byte) [][]int {
	groups := make([][]int, len(s.shards))
	for i, it := range items {
		si := s.shardFor(it)
		groups[si] = append(groups[si], i)
	}
	return groups
}

// Generation returns the store's mutation counter: the sum of effective
// adds, accepted removals and restores across shards. It is monotone under
// serving traffic, so equal generations mean an unchanged filter — the
// digest endpoint's ETag basis, letting peers skip refetching an unchanged
// digest. It resets on restart (a recovered store recounts from its
// replay), which is why the ETag folds in the per-boot etagSalt. (Shards
// are read one at a time, so a racing mutation may or may not be counted;
// either answer is a generation the store passed through.)
func (s *Sharded) Generation() uint64 {
	var g uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		g += sh.muts
		sh.mu.RUnlock()
	}
	return g
}

// Count implements core.Filter: net insertions across shards.
func (s *Sharded) Count() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.backend.Count()
		sh.mu.RUnlock()
	}
	return n
}

// lockAll write-locks every shard in index order — the stop-the-world
// moment compaction and restore use to get a true atomic cut (no mutation
// can be between "applied" and "journaled" while all locks are held).
func (s *Sharded) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

// unlockAll releases lockAll.
func (s *Sharded) unlockAll() {
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// Variant returns the backend variant.
func (s *Sharded) Variant() Variant { return s.variant }

// Mode returns the serving mode.
func (s *Sharded) Mode() Mode { return s.mode }

// Seed returns the public naive-mode seed (meaningless in hardened mode).
func (s *Sharded) Seed() uint64 { return s.seed }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// K returns the per-item index count.
func (s *Sharded) K() int { return s.k }

// ShardBits returns each shard's size in positions (bits or counters).
func (s *Sharded) ShardBits() uint64 { return s.mShard }

// CounterWidth returns the counter width in bits (0 for bloom shards).
func (s *Sharded) CounterWidth() int { return s.width }

// OverflowPolicy returns the counting overflow policy (0 for bloom shards).
func (s *Sharded) OverflowPolicy() core.OverflowPolicy { return s.policy }

// storageBits returns the store's total filter storage in bits
// (shards × shard_bits × counter width) — what the registry charges against
// its aggregate budget. A live store's product cannot wrap: memory that
// large could never have been allocated.
func (s *Sharded) storageBits() uint64 {
	width := uint64(1)
	if s.width > 0 {
		width = uint64(s.width)
	}
	return uint64(len(s.shards)) * s.mShard * width
}

// ShardStats is one shard's snapshot inside Stats.
type ShardStats struct {
	Shard  int     `json:"shard"`
	Count  uint64  `json:"count"`
	Weight uint64  `json:"weight"`
	Fill   float64 `json:"fill"`
	FPR    float64 `json:"estimated_fpr"`
	// Overflows counts counter-overflow events (counting shards only).
	Overflows uint64 `json:"overflows,omitempty"`
}

// Stats is a point-in-time snapshot of the whole store. FPR is the mean of
// the per-shard estimates: the keyed router spreads uniform queries evenly,
// so a random query's false-positive probability is the shard average.
type Stats struct {
	Variant   string       `json:"variant"`
	Mode      string       `json:"mode"`
	Shards    int          `json:"shards"`
	K         int          `json:"k"`
	ShardBits uint64       `json:"shard_bits"`
	Count     uint64       `json:"count"`
	Weight    uint64       `json:"weight"`
	Fill      float64      `json:"fill"`
	FPR       float64      `json:"estimated_fpr"`
	Overflows uint64       `json:"overflows,omitempty"`
	PerShard  []ShardStats `json:"per_shard"`
}

// Stats snapshots every shard in O(shards): weights are tracked
// incrementally at insertion/removal time, so no shard holds its lock for an
// O(m) scan. Shards are locked one at a time, so the snapshot is per-shard
// consistent but not a global atomic cut — fine for monitoring, which is its
// purpose.
func (s *Sharded) Stats() Stats {
	st := Stats{
		Variant:   s.variant.String(),
		Mode:      s.mode.String(),
		Shards:    len(s.shards),
		K:         s.k,
		ShardBits: s.mShard,
		PerShard:  make([]ShardStats, len(s.shards)),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		count, weight := sh.backend.Count(), sh.weight
		var overflows uint64
		if or, ok := sh.backend.(overflowReporter); ok {
			overflows = or.Overflows()
		}
		sh.mu.RUnlock()
		ss := ShardStats{
			Shard:     i,
			Count:     count,
			Weight:    weight,
			Fill:      float64(weight) / float64(s.mShard),
			FPR:       core.FPForgeryProbability(s.mShard, s.k, weight),
			Overflows: overflows,
		}
		st.PerShard[i] = ss
		st.Count += ss.Count
		st.Weight += ss.Weight
		st.Overflows += ss.Overflows
	}
	total := float64(s.mShard) * float64(len(s.shards))
	st.Fill = float64(st.Weight) / total
	for _, ss := range st.PerShard {
		st.FPR += ss.FPR
	}
	st.FPR /= float64(len(s.shards))
	return st
}
