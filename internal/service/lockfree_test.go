package service

import (
	"fmt"
	"sync"
	"testing"

	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
)

// lockfreeCfg builds a store geometry for the concurrency tests: large
// enough (32k positions at k=4) that a few hundred insertions leave the fill
// low and false positives vanishingly rare, so the tests' membership
// assertions are deterministic in practice.
func lockfreeCfg(variant Variant) Config {
	cfg := Config{
		Variant:   variant,
		Shards:    4,
		ShardBits: 8192,
		HashCount: 4,
		Mode:      ModeNaive,
		Seed:      11,
		RouteKey:  []byte("fedcba9876543210"),
	}
	if variant == VariantCounting {
		// Width 8 gives counters headroom to 255; the tests' bounded
		// insertion counts keep every counter far below it, so neither
		// overflow policy can disturb occupancy.
		cfg.CounterWidth = 8
		cfg.Overflow = core.Wrap
	}
	return cfg
}

// TestLockFreeReadsNoTornState is the -race regression for the lock-free
// read path: while writer goroutines add (and, on counting, add-then-remove)
// under the shard write locks, reader goroutines run Test with no lock at
// all. Two things must hold throughout: the race detector stays silent
// (every word the readers touch is accessed atomically on both sides), and
// a set of permanently-inserted items never once tests negative — a torn
// or stale read of a half-written word would surface as exactly that.
func TestLockFreeReadsNoTornState(t *testing.T) {
	for _, variant := range []Variant{VariantBloom, VariantBlocked, VariantCounting} {
		for _, lockFree := range []bool{true, false} {
			t.Run(fmt.Sprintf("%v/lockfree=%v", variant, lockFree), func(t *testing.T) {
				s, err := NewSharded(lockfreeCfg(variant))
				if err != nil {
					t.Fatal(err)
				}
				s.SetLockFreeReads(lockFree)

				gen := urlgen.New(1)
				permanent := make([][]byte, 200)
				for i := range permanent {
					permanent[i] = gen.Next()
				}
				s.AddBatch(permanent)

				const (
					writers = 4
					readers = 4
					iters   = 1500
				)
				var wg sync.WaitGroup
				errs := make(chan error, writers+readers)
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						// Distinct serial ranges per writer keep the streams
						// disjoint from each other and from the permanents.
						g := urlgen.New(int64(100 + id))
						for i := 0; i < iters; i++ {
							item := g.Next()
							s.Add(item)
							if s.Removable() {
								// Balanced add-then-remove: exercises the
								// remove path against concurrent readers
								// while leaving every shared counter's net
								// reference count untouched.
								if ok, err := s.Remove(item); err != nil {
									errs <- fmt.Errorf("writer %d: remove: %w", id, err)
									return
								} else if !ok {
									errs <- fmt.Errorf("writer %d: removal of just-added item refused", id)
									return
								}
							}
						}
					}(w)
				}
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							it := permanent[(i*7919+id)%len(permanent)]
							if !s.Test(it) {
								errs <- fmt.Errorf("reader %d: permanent item %q tested negative (torn read?)", id, it)
								return
							}
						}
					}(r)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
				for _, it := range permanent {
					if !s.Test(it) {
						t.Fatalf("permanent item %q lost after concurrent run", it)
					}
				}
			})
		}
	}
}

// TestLockFreeReadsRefusedRemovalInvisible pins the refused-removal
// invariant on the lock-free path: a removal the filter refuses (the item
// tests absent, or a counter would underflow) must mutate nothing — in
// particular it must never wrap a zero counter up to max, which would SET a
// position. Remover goroutines hammer removals of never-inserted items
// while lock-free readers watch both those items (must stay absent — a
// position set by a refused removal would flip one present) and the
// permanently-inserted items (must stay present). No writers add during the
// run, so any membership change at all is a mutation leaked by a refusal.
func TestLockFreeReadsRefusedRemovalInvisible(t *testing.T) {
	s, err := NewSharded(lockfreeCfg(VariantCounting))
	if err != nil {
		t.Fatal(err)
	}

	gen := urlgen.New(2)
	permanent := make([][]byte, 200)
	for i := range permanent {
		permanent[i] = gen.Next()
	}
	s.AddBatch(permanent)

	// Candidate never-items are screened up front: at ~2.4% fill a false
	// positive is ~3e-7 per item, but screening makes the assertion exact
	// rather than probabilistic.
	never := make([][]byte, 0, 200)
	ngen := urlgen.New(500)
	for len(never) < 200 {
		it := ngen.Next()
		if !s.Test(it) {
			never = append(never, it)
		}
	}
	weightBefore := s.Stats().Weight

	const (
		removers = 4
		readers  = 4
		iters    = 1500
	)
	var wg sync.WaitGroup
	errs := make(chan error, removers+readers)
	for w := 0; w < removers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				it := never[(i*31+id*7)%len(never)]
				ok, err := s.Remove(it)
				if err != nil {
					errs <- fmt.Errorf("remover %d: %w", id, err)
					return
				}
				if ok {
					errs <- fmt.Errorf("remover %d: removal of never-added item %q accepted", id, it)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if it := never[(i*13+id)%len(never)]; s.Test(it) {
					errs <- fmt.Errorf("reader %d: never-added item %q tested positive — a refused removal set a position", id, it)
					return
				}
				if it := permanent[(i*17+id)%len(permanent)]; !s.Test(it) {
					errs <- fmt.Errorf("reader %d: permanent item %q tested negative — a refused removal cleared a position", id, it)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Stats().Weight; got != weightBefore {
		t.Fatalf("weight changed %d -> %d across refused removals", weightBefore, got)
	}
}
