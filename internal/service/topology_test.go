package service

import (
	"reflect"
	"testing"
)

func TestParseTopology(t *testing.T) {
	for s, want := range map[string]Topology{
		"": TopologyPairs, "pairs": TopologyPairs, "ring": TopologyRing, "hub": TopologyHub,
	} {
		got, err := ParseTopology(s)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTopology("mesh"); err == nil {
		t.Error("unknown topology accepted")
	}
}

// The fetch-edge table: who polls whom under each topology, for every
// position a node can hold in the roster.
func TestResolveTargets(t *testing.T) {
	roster := []string{"http://a", "http://b", "http://c", "http://d"}
	cases := []struct {
		name    string
		topo    Topology
		self    string
		want    []string
		wantErr bool
	}{
		// Pairs: everyone but self; with no self, the roster verbatim (the
		// PR 4 "list the others" configuration).
		{"pairs/no-self", TopologyPairs, "", roster, false},
		{"pairs/first", TopologyPairs, "http://a", []string{"http://b", "http://c", "http://d"}, false},
		{"pairs/middle", TopologyPairs, "http://c", []string{"http://a", "http://b", "http://d"}, false},
		// Ring: successor only, wrapping at the end.
		{"ring/first", TopologyRing, "http://a", []string{"http://b"}, false},
		{"ring/last-wraps", TopologyRing, "http://d", []string{"http://a"}, false},
		{"ring/no-self", TopologyRing, "", nil, true},
		{"ring/self-not-in-roster", TopologyRing, "http://zz", nil, true},
		// Hub: the roster's first member fetches every spoke; spokes fetch
		// only the hub.
		{"hub/is-hub", TopologyHub, "http://a", []string{"http://b", "http://c", "http://d"}, false},
		{"hub/spoke", TopologyHub, "http://c", []string{"http://a"}, false},
		{"hub/no-self", TopologyHub, "", nil, true},
		{"hub/unknown", Topology("mesh"), "http://a", nil, true},
	}
	for _, tc := range cases {
		got, err := resolveTargets(roster, tc.topo, tc.self)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: no error, got %v", tc.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: targets %v, want %v", tc.name, got, tc.want)
		}
	}
	// Two-member degenerate rings and hubs still resolve; singletons refuse.
	if got, err := resolveTargets([]string{"http://a", "http://b"}, TopologyRing, "http://b"); err != nil || !reflect.DeepEqual(got, []string{"http://a"}) {
		t.Errorf("two-member ring: %v, %v", got, err)
	}
	if _, err := resolveTargets([]string{"http://a"}, TopologyRing, "http://a"); err == nil {
		t.Error("single-member ring accepted")
	}
	if _, err := resolveTargets([]string{"http://a"}, TopologyHub, "http://a"); err == nil {
		t.Error("single-member hub accepted")
	}
}

// claims builds a claim slice with the given claim pattern; "1" claims.
func claims(pattern string) []PeerClaim {
	out := make([]PeerClaim, len(pattern))
	for i, c := range pattern {
		out[i] = PeerClaim{Peer: string(rune('a' + i)), Claims: c == '1'}
	}
	return out
}

// The quorum arithmetic table, including the scenario the mesh defends
// against: one poisoned sibling claiming everything amid honest deniers.
func TestQuorumVerdict(t *testing.T) {
	cases := []struct {
		name         string
		pattern      string
		quorum       int
		wantClaiming int
		wantPeer     bool
	}{
		{"no-claims", "000", 1, 0, false},
		{"pr4-first-claim", "100", 1, 1, true},
		{"all-claim-q1", "111", 1, 3, true},
		// One poisoned peer saturates its digest: under q=1 it swings the
		// verdict alone; under q=2 it needs an honest accomplice.
		{"poisoned-alone-q1", "100", 1, 1, true},
		{"poisoned-alone-q2", "100", 2, 1, false},
		{"poisoned-corroborated-q2", "110", 2, 2, true},
		{"poisoned-alone-of-4-q2", "1000", 2, 1, false},
		{"exact-quorum", "1100", 2, 2, true},
		{"above-quorum", "1110", 2, 3, true},
		{"quorum-above-mesh", "111", 4, 3, false},
		{"no-siblings", "", 1, 0, false},
		// Quorum below 1 is treated as 1, never "free peer verdicts".
		{"zero-quorum", "100", 0, 1, true},
		{"zero-quorum-no-claims", "000", 0, 0, false},
		{"negative-quorum", "010", -3, 1, true},
	}
	for _, tc := range cases {
		claiming, peer := QuorumVerdict(claims(tc.pattern), tc.quorum)
		if claiming != tc.wantClaiming || peer != tc.wantPeer {
			t.Errorf("%s: QuorumVerdict(%q, %d) = (%d, %v), want (%d, %v)",
				tc.name, tc.pattern, tc.quorum, claiming, peer, tc.wantClaiming, tc.wantPeer)
		}
	}
}
