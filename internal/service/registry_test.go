package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	if reg.Len() != 0 {
		t.Fatalf("fresh registry holds %d filters", reg.Len())
	}
	f, err := reg.Create("blocklist", Config{Variant: VariantCounting, Shards: 1, ShardBits: 3200, HashCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "blocklist" || f.Store() == nil {
		t.Errorf("created filter %q with store %v", f.Name(), f.Store())
	}
	if _, err := reg.Create("blocklist", Config{}); !errors.Is(err, ErrFilterExists) {
		t.Errorf("duplicate create: %v, want ErrFilterExists", err)
	}
	got, err := reg.Get("blocklist")
	if err != nil || got != f {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := reg.Get("nope"); !errors.Is(err, ErrFilterNotFound) {
		t.Errorf("Get(unknown): %v, want ErrFilterNotFound", err)
	}
	if _, err := reg.Create("seen-urls", Config{}); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, f := range reg.List() {
		names = append(names, f.Name())
	}
	if strings.Join(names, ",") != "blocklist,seen-urls" {
		t.Errorf("List = %v, want sorted [blocklist seen-urls]", names)
	}
	if err := reg.Delete("blocklist"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("blocklist"); !errors.Is(err, ErrFilterNotFound) {
		t.Errorf("double delete: %v, want ErrFilterNotFound", err)
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d after delete, want 1", reg.Len())
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"", ".hidden", "-dash", "a/b", "a b", "ü", strings.Repeat("x", 65)} {
		if _, err := reg.Create(name, Config{}); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	for _, name := range []string{"a", "A-b_c.9", strings.Repeat("x", 64), "default"} {
		if !ValidFilterName(name) {
			t.Errorf("name %q rejected", name)
		}
	}
}

func TestRegistryRejectsBadConfig(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("x", Config{Shards: 3}); err == nil {
		t.Error("bad shard count accepted")
	}
	if _, err := reg.Create("x", Config{CounterWidth: 4}); err == nil {
		t.Error("counter width on bloom variant accepted")
	}
	if reg.Len() != 0 {
		t.Errorf("failed creates left %d filters behind", reg.Len())
	}
}

// The unauthenticated control plane must not be drivable into memory
// exhaustion: oversized geometries are rejected before allocation and the
// filter count is capped.
func TestRegistryResourceLimits(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("huge", Config{Shards: 1, ShardBits: MaxFilterBits + 1, HashCount: 4}); err == nil {
		t.Error("oversized bloom filter accepted")
	}
	// Counter width multiplies storage: a quarter of the bit budget in
	// positions already exceeds it at 4 bits each.
	if _, err := reg.Create("huge", Config{Variant: VariantCounting, Shards: 1, ShardBits: MaxFilterBits/4 + 1, HashCount: 4}); err == nil {
		t.Error("oversized counting filter accepted")
	}
	// Capacity-derived sizing is capped too, not just explicit shard_bits.
	if _, err := reg.Create("huge", Config{Capacity: 1 << 40}); err == nil {
		t.Error("oversized capacity-derived filter accepted")
	}
	if reg.Len() != 0 {
		t.Fatalf("rejected creates left %d filters", reg.Len())
	}
	small := Config{Shards: 1, ShardBits: 64, HashCount: 2}
	for i := 0; i < MaxFilters; i++ {
		if _, err := reg.Create(fmt.Sprintf("f%d", i), small); err != nil {
			t.Fatalf("filter %d: %v", i, err)
		}
	}
	if _, err := reg.Create("one-too-many", small); !errors.Is(err, ErrRegistryFull) {
		t.Errorf("create beyond MaxFilters: %v, want ErrRegistryFull", err)
	}
	if err := reg.Delete("f0"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("one-too-many", small); err != nil {
		t.Errorf("create after delete: %v", err)
	}
}

// Concurrent create/get/delete/list churn must be race-clean (run under
// -race) and never observe a half-registered filter.
func TestRegistryConcurrentChurn(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("filter-%d", w)
			for i := 0; i < 30; i++ {
				f, err := reg.Create(name, Config{Shards: 1, ShardBits: 256, HashCount: 2})
				if err != nil {
					t.Errorf("worker %d: create: %v", w, err)
					return
				}
				f.Store().Add([]byte("x"))
				got, err := reg.Get(name)
				if err != nil || got.Store() == nil {
					t.Errorf("worker %d: get after create: %v", w, err)
					return
				}
				reg.List()
				if err := reg.Delete(name); err != nil {
					t.Errorf("worker %d: delete: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if reg.Len() != 0 {
		t.Errorf("churn left %d filters registered", reg.Len())
	}
}
