package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	if reg.Len() != 0 {
		t.Fatalf("fresh registry holds %d filters", reg.Len())
	}
	f, err := reg.Create("blocklist", Config{Variant: VariantCounting, Shards: 1, ShardBits: 3200, HashCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "blocklist" || f.Store() == nil {
		t.Errorf("created filter %q with store %v", f.Name(), f.Store())
	}
	if _, err := reg.Create("blocklist", Config{}); !errors.Is(err, ErrFilterExists) {
		t.Errorf("duplicate create: %v, want ErrFilterExists", err)
	}
	got, err := reg.Get("blocklist")
	if err != nil || got != f {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := reg.Get("nope"); !errors.Is(err, ErrFilterNotFound) {
		t.Errorf("Get(unknown): %v, want ErrFilterNotFound", err)
	}
	if _, err := reg.Create("seen-urls", Config{}); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, f := range reg.List() {
		names = append(names, f.Name())
	}
	if strings.Join(names, ",") != "blocklist,seen-urls" {
		t.Errorf("List = %v, want sorted [blocklist seen-urls]", names)
	}
	if err := reg.Delete("blocklist"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("blocklist"); !errors.Is(err, ErrFilterNotFound) {
		t.Errorf("double delete: %v, want ErrFilterNotFound", err)
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d after delete, want 1", reg.Len())
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"", ".hidden", "-dash", "a/b", "a b", "ü", strings.Repeat("x", 65)} {
		if _, err := reg.Create(name, Config{}); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	for _, name := range []string{"a", "A-b_c.9", strings.Repeat("x", 64), "default"} {
		if !ValidFilterName(name) {
			t.Errorf("name %q rejected", name)
		}
	}
}

func TestRegistryRejectsBadConfig(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("x", Config{Shards: 3}); err == nil {
		t.Error("bad shard count accepted")
	}
	if _, err := reg.Create("x", Config{CounterWidth: 4}); err == nil {
		t.Error("counter width on bloom variant accepted")
	}
	if reg.Len() != 0 {
		t.Errorf("failed creates left %d filters behind", reg.Len())
	}
}

// The unauthenticated control plane must not be drivable into memory
// exhaustion: oversized geometries are rejected before allocation and the
// filter count is capped.
func TestRegistryResourceLimits(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("huge", Config{Shards: 1, ShardBits: MaxFilterBits + 1, HashCount: 4}); err == nil {
		t.Error("oversized bloom filter accepted")
	}
	// Counter width multiplies storage: a quarter of the bit budget in
	// positions already exceeds it at 4 bits each.
	if _, err := reg.Create("huge", Config{Variant: VariantCounting, Shards: 1, ShardBits: MaxFilterBits/4 + 1, HashCount: 4}); err == nil {
		t.Error("oversized counting filter accepted")
	}
	// Capacity-derived sizing is capped too, not just explicit shard_bits.
	if _, err := reg.Create("huge", Config{Capacity: 1 << 40}); err == nil {
		t.Error("oversized capacity-derived filter accepted")
	}
	if reg.Len() != 0 {
		t.Fatalf("rejected creates left %d filters", reg.Len())
	}
	small := Config{Shards: 1, ShardBits: 64, HashCount: 2}
	for i := 0; i < MaxFilters; i++ {
		if _, err := reg.Create(fmt.Sprintf("f%d", i), small); err != nil {
			t.Fatalf("filter %d: %v", i, err)
		}
	}
	if _, err := reg.Create("one-too-many", small); !errors.Is(err, ErrRegistryFull) {
		t.Errorf("create beyond MaxFilters: %v, want ErrRegistryFull", err)
	}
	if err := reg.Delete("f0"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("one-too-many", small); err != nil {
		t.Errorf("create after delete: %v", err)
	}
}

// Regression: the storage-bits cap must be checked without multiplying, or
// a crafted shard_bits near 2^61 wraps the product mod 2^64 under the cap
// and reaches allocation (makeslice panic or a fatal real OOM).
func TestRegistryRejectsOverflowingGeometry(t *testing.T) {
	reg := NewRegistry()
	cases := []Config{
		// 8 × 2^61 = 2^64 wraps to exactly 0, the original exploit.
		{Shards: 8, ShardBits: 1 << 61, HashCount: 4},
		{Shards: 1, ShardBits: 1 << 61, HashCount: 4},
		// Counting width is the third factor: 4 × 2^60 × 4 wraps to 0 too.
		{Variant: VariantCounting, Shards: 4, ShardBits: 1 << 60, HashCount: 4},
		// Wraps to a small non-zero value: 8 × (2^61 + 1) = 2^64 + 8 ≡ 8.
		{Shards: 8, ShardBits: 1<<61 + 1, HashCount: 4},
	}
	for _, cfg := range cases {
		if _, err := reg.Create("wrap", cfg); err == nil {
			t.Errorf("config %+v accepted; product wraps mod 2^64", cfg)
		}
	}
	if reg.Len() != 0 || reg.bits != 0 {
		t.Fatalf("rejected creates left %d filters, %d budget bits", reg.Len(), reg.bits)
	}
}

// Structural factors are bounded individually: a huge shard count allocates
// the []shard array, pools and families before any bits cap applies, and a
// huge hash count sizes every per-item index buffer.
func TestRegistryRejectsOversizedFactors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("x", Config{Shards: MaxShards * 2, ShardBits: 1, HashCount: 1}); err == nil {
		t.Error("shard count beyond MaxShards accepted")
	}
	if _, err := reg.Create("x", Config{Shards: 1, ShardBits: 64, HashCount: MaxHashCount + 1}); err == nil {
		t.Error("hash count beyond MaxHashCount accepted")
	}
	if _, err := reg.Create("x", Config{Variant: VariantCounting, Shards: 1, ShardBits: 64, HashCount: 2, CounterWidth: -1}); err == nil {
		t.Error("negative counter width accepted")
	}
	if reg.Len() != 0 {
		t.Fatalf("rejected creates left %d filters", reg.Len())
	}
}

// The per-filter caps must not compose past the aggregate budget: the
// registry refuses creation once live + reserved storage reaches
// MaxTotalBits, and refunds the budget on delete. Exercised through the
// reservation layer so the test never allocates gigabytes for real.
func TestRegistryAggregateBudget(t *testing.T) {
	reg := NewRegistry()
	if err := reg.reserve("a", MaxTotalBits-64); err != nil {
		t.Fatal(err)
	}
	if err := reg.reserve("b", 128); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("reserve past budget: %v, want ErrBudgetExhausted", err)
	}
	if err := reg.reserve("b", 64); err != nil {
		t.Errorf("reserve of exact remainder: %v", err)
	}
	reg.unreserve("a", MaxTotalBits-64)
	reg.unreserve("b", 64)
	if reg.bits != 0 {
		t.Fatalf("rollback left %d budget bits charged", reg.bits)
	}
	// End to end with real (small) filters: create, delete, budget refunded.
	cfg := Config{Variant: VariantCounting, Shards: 2, ShardBits: 512, HashCount: 2}
	bits := uint64(2 * 512 * 4)
	if _, err := reg.Create("real", cfg); err != nil {
		t.Fatal(err)
	}
	if reg.bits != bits {
		t.Errorf("budget holds %d bits after create, want %d", reg.bits, bits)
	}
	if err := reg.Delete("real"); err != nil {
		t.Fatal(err)
	}
	if reg.bits != 0 {
		t.Errorf("budget holds %d bits after delete, want 0", reg.bits)
	}
	// Adopt is the trusted operator path: it charges the budget for honest
	// accounting but never refuses — the store already exists, so failing
	// startup after the allocation would protect nothing. With the budget
	// (artificially) exhausted, Adopt still lands while Create is refused.
	reg.bits = MaxTotalBits
	store, err := NewSharded(Config{Shards: 1, ShardBits: 256, HashCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Adopt("operator", store); err != nil {
		t.Errorf("Adopt over budget: %v, want success", err)
	}
	if _, err := reg.Create("client", cfg); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("Create over budget: %v, want ErrBudgetExhausted", err)
	}
	if err := reg.Delete("operator"); err != nil {
		t.Fatal(err)
	}
	if reg.bits != MaxTotalBits {
		t.Errorf("deleting the adopted filter refunded wrongly: %d bits, want %d", reg.bits, MaxTotalBits)
	}
}

// Racing creates for one name must admit exactly one winner, and the losers
// must be turned away before they build a store — afterwards the budget
// holds exactly one filter's bits.
func TestRegistryConcurrentCreateSameName(t *testing.T) {
	reg := NewRegistry()
	cfg := Config{Shards: 1, ShardBits: 256, HashCount: 2}
	const racers = 8
	var wg sync.WaitGroup
	var wins, losses int32
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := reg.Create("contested", cfg)
			switch {
			case err == nil:
				atomic.AddInt32(&wins, 1)
			case errors.Is(err, ErrFilterExists):
				atomic.AddInt32(&losses, 1)
			default:
				t.Errorf("unexpected create error: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins != 1 || losses != racers-1 {
		t.Errorf("%d winners, %d losers; want 1 and %d", wins, losses, racers-1)
	}
	if reg.bits != 256 {
		t.Errorf("budget holds %d bits, want 256 (one filter)", reg.bits)
	}
}

// Concurrent create/get/delete/list churn must be race-clean (run under
// -race) and never observe a half-registered filter.
func TestRegistryConcurrentChurn(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("filter-%d", w)
			for i := 0; i < 30; i++ {
				f, err := reg.Create(name, Config{Shards: 1, ShardBits: 256, HashCount: 2})
				if err != nil {
					t.Errorf("worker %d: create: %v", w, err)
					return
				}
				f.Store().Add([]byte("x"))
				got, err := reg.Get(name)
				if err != nil || got.Store() == nil {
					t.Errorf("worker %d: get after create: %v", w, err)
					return
				}
				reg.List()
				if err := reg.Delete(name); err != nil {
					t.Errorf("worker %d: delete: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if reg.Len() != 0 {
		t.Errorf("churn left %d filters registered", reg.Len())
	}
	if reg.bits != 0 {
		t.Errorf("churn left %d budget bits charged", reg.bits)
	}
}
