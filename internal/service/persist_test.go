package service

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
)

// persistCfg pins every secret so stores built from it are deterministic
// and rebuildable — what meta.json does for a real durable filter.
func persistCfg(variant Variant, mode Mode, width int, policy core.OverflowPolicy) Config {
	cfg := Config{
		Variant:   variant,
		Shards:    4,
		ShardBits: 2048,
		HashCount: 4,
		Mode:      mode,
		RouteKey:  []byte("fedcba9876543210"),
	}
	if mode == ModeNaive {
		cfg.Seed = 7
	} else {
		cfg.Key = []byte("0123456789abcdef")
	}
	if variant == VariantCounting {
		cfg.CounterWidth = width
		cfg.Overflow = policy
	}
	return cfg
}

// TestSnapshotRoundTripProperty: for every variant × counter width ×
// overflow policy × mode, a snapshot restored into a fresh store of the
// same configuration reproduces the exact state — byte-identical
// re-serialization, identical stats, identical membership.
func TestSnapshotRoundTripProperty(t *testing.T) {
	cases := []Config{
		persistCfg(VariantBloom, ModeNaive, 0, 0),
		persistCfg(VariantBloom, ModeHardened, 0, 0),
		persistCfg(VariantBlocked, ModeNaive, 0, 0),
		persistCfg(VariantBlocked, ModeHardened, 0, 0),
		persistCfg(VariantCounting, ModeNaive, 1, core.Saturate),
		persistCfg(VariantCounting, ModeNaive, 2, core.Wrap),
		persistCfg(VariantCounting, ModeNaive, 4, core.Wrap),
		persistCfg(VariantCounting, ModeNaive, 4, core.Saturate),
		persistCfg(VariantCounting, ModeNaive, 16, core.Wrap),
		persistCfg(VariantCounting, ModeHardened, 4, core.Saturate),
	}
	for _, cfg := range cases {
		name := fmt.Sprintf("%v-%v-w%d-%v", cfg.Variant, cfg.Mode, cfg.CounterWidth, cfg.Overflow)
		t.Run(name, func(t *testing.T) {
			a, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			gen := urlgen.New(99)
			items := make([][]byte, 400)
			for i := range items {
				items[i] = gen.Next()
			}
			a.AddBatch(items)
			// Duplicate adds push small counters toward (and past, for
			// width 1 and 2) overflow, exercising both policies' snapshots.
			a.AddBatch(items[:100])
			if a.Removable() {
				for _, it := range items[:50] {
					a.Remove(it) //nolint:errcheck // refusals are part of the state
				}
			}
			snap, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Restore(snap); err != nil {
				t.Fatal(err)
			}
			again, err := b.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, again) {
				t.Error("restored store re-serializes differently")
			}
			if !reflect.DeepEqual(a.Stats(), b.Stats()) {
				t.Errorf("stats diverge:\n  a=%+v\n  b=%+v", a.Stats(), b.Stats())
			}
			for _, it := range items {
				if a.Test(it) != b.Test(it) {
					t.Fatalf("membership of %q diverges", it)
				}
			}
		})
	}
}

// A snapshot must be refused — with the right error class — when it is
// corrupt or disagrees with the target filter's immutable configuration:
// wrong variant (a counting blob fed to a bloom filter), width, seed.
func TestSnapshotRestoreRejections(t *testing.T) {
	counting := persistCfg(VariantCounting, ModeNaive, 4, core.Wrap)
	src, err := NewSharded(counting)
	if err != nil {
		t.Fatal(err)
	}
	src.Add([]byte("x"))
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restoreInto := func(cfg Config) error {
		dst, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return dst.Restore(snap)
	}
	bloomCfg := persistCfg(VariantBloom, ModeNaive, 0, 0)
	if err := restoreInto(bloomCfg); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("counting blob into bloom filter: %v, want ErrSnapshotMismatch", err)
	}
	width8 := counting
	width8.CounterWidth = 8
	if err := restoreInto(width8); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("width mismatch: %v, want ErrSnapshotMismatch", err)
	}
	otherSeed := counting
	otherSeed.Seed = 8
	if err := restoreInto(otherSeed); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("seed mismatch: %v, want ErrSnapshotMismatch", err)
	}
	saturate := counting
	saturate.Overflow = core.Saturate
	if err := restoreInto(saturate); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("overflow mismatch: %v, want ErrSnapshotMismatch", err)
	}

	// Corruption: any flipped byte fails the checksum; truncation fails the
	// size check.
	dst, err := NewSharded(counting)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(snap)
	bad[len(bad)/3] ^= 0x01
	if err := dst.Restore(bad); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("bit flip: %v, want ErrSnapshotCorrupt", err)
	}
	if err := dst.Restore(snap[:len(snap)-3]); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("truncation: %v, want ErrSnapshotCorrupt", err)
	}

	// Hardened snapshots resolve no wire configuration: the keys stay home.
	hard, err := NewSharded(persistCfg(VariantBloom, ModeHardened, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	hsnap, err := hard.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SnapshotConfig(hsnap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("SnapshotConfig on hardened envelope: %v, want ErrSnapshotMismatch", err)
	}
}

// A registry reopened from its data dir serves byte-identical filter state
// for both variants, and keeps journaling correctly across generations of
// restarts (the reopened log segment is appended to, not truncated).
func TestRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if _, err := reg.OpenDataDir(dir, SyncNever); err != nil {
		t.Fatal(err)
	}
	bloomF, err := reg.Create("pages", persistCfg(VariantBloom, ModeNaive, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	countF, err := reg.Create("blocklist", persistCfg(VariantCounting, ModeNaive, 4, core.Wrap))
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(5)
	items := make([][]byte, 300)
	for i := range items {
		items[i] = gen.Next()
	}
	bloomF.Store().AddBatch(items)
	countF.Store().AddBatch(items[:200])
	for _, it := range items[:40] {
		countF.Store().Remove(it) //nolint:errcheck
	}
	wantBloom, err := bloomF.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := countF.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	n, err := reg2.OpenDataDir(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d filters, want 2", n)
	}
	check := func(name string, want []byte) {
		t.Helper()
		f, err := reg2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Store().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("filter %q restored to different bytes (got %d, want %d)", name, len(got), len(want))
		}
	}
	check("pages", wantBloom)
	check("blocklist", wantCount)

	// Post-restart mutations land in the reopened segment and survive a
	// second restart.
	f2, err := reg2.Get("blocklist")
	if err != nil {
		t.Fatal(err)
	}
	extra := []byte("post-restart-item")
	f2.Store().Add(extra)
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}
	reg3 := NewRegistry()
	if _, err := reg3.OpenDataDir(dir, SyncNever); err != nil {
		t.Fatal(err)
	}
	f3, err := reg3.Get("blocklist")
	if err != nil {
		t.Fatal(err)
	}
	if !f3.Store().Test(extra) {
		t.Error("second restart lost a post-restart insertion")
	}
	if err := reg3.Close(); err != nil {
		t.Fatal(err)
	}
}

// tornOp is one effective mutation of the torn-write scenario.
type tornOp struct {
	remove bool
	item   []byte
}

// applyOps replays a recorded op sequence onto a fresh store of cfg and
// returns its snapshot — the reference state for crash-recovery checks.
func applyOps(t *testing.T, cfg Config, ops []tornOp) []byte {
	t.Helper()
	st, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.remove {
			if ok, err := st.Remove(op.item); err != nil || !ok {
				t.Fatalf("reference replay: remove %q refused (err=%v)", op.item, err)
			}
		} else {
			st.Add(op.item)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestTornWriteRecoversLongestPrefix truncates the operation log at every
// byte offset of its final record and asserts replay recovers exactly the
// pre-crash prefix: all records before the torn one, nothing of it.
func TestTornWriteRecoversLongestPrefix(t *testing.T) {
	cfg := persistCfg(VariantCounting, ModeNaive, 4, core.Saturate)
	dir := t.TempDir()
	reg := NewRegistry()
	if _, err := reg.OpenDataDir(dir, SyncNever); err != nil {
		t.Fatal(err)
	}
	f, err := reg.Create("torn", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ops []tornOp
	for i := 0; i < 40; i++ {
		it := []byte(fmt.Sprintf("torn-item-%d", i))
		f.Store().Add(it)
		ops = append(ops, tornOp{item: it})
	}
	// End the log with an accepted removal, so the torn record exercises
	// the remove path too.
	last := []byte("torn-item-7")
	if ok, err := f.Store().Remove(last); err != nil || !ok {
		t.Fatalf("final remove refused (err=%v)", err)
	}
	ops = append(ops, tornOp{remove: true, item: last})
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "torn", walName(0))
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the record boundaries to find where the final record begins.
	off, lastStart := 0, 0
	for off < len(wal) {
		_, n := decodeRecord(wal[off:])
		if n == 0 {
			t.Fatalf("intact log does not parse at offset %d", off)
		}
		lastStart = off
		off += n
	}
	if off != len(wal) {
		t.Fatalf("log has %d trailing bytes", len(wal)-off)
	}

	prefixSnap := applyOps(t, cfg, ops[:len(ops)-1])
	fullSnap := applyOps(t, cfg, ops)
	meta, err := os.ReadFile(filepath.Join(dir, "torn", metaFileName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := lastStart; cut <= len(wal); cut++ {
		crashDir := filepath.Join(t.TempDir(), "data")
		if err := os.MkdirAll(filepath.Join(crashDir, "torn"), 0o700); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, "torn", metaFileName), meta, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, "torn", walName(0)), wal[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		reg2 := NewRegistry()
		if _, err := reg2.OpenDataDir(crashDir, SyncNever); err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		f2, err := reg2.Get("torn")
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		got, err := f2.Store().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		want := prefixSnap
		if cut == len(wal) {
			want = fullSnap
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut at %d of %d: recovered state is not the pre-crash prefix", cut, len(wal))
		}
		if err := reg2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// Compaction installs a new snapshot generation and rotates the log; a
// corrupted newest snapshot falls back to the previous generation's chain
// with no data loss.
func TestCompactAndCorruptSnapshotFallback(t *testing.T) {
	cfg := persistCfg(VariantCounting, ModeNaive, 4, core.Wrap)
	dir := t.TempDir()
	reg := NewRegistry()
	if _, err := reg.OpenDataDir(dir, SyncNever); err != nil {
		t.Fatal(err)
	}
	f, err := reg.Create("c", cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(17)
	first := make([][]byte, 120)
	for i := range first {
		first[i] = gen.Next()
	}
	f.Store().AddBatch(first)
	if err := f.Compact(); err != nil {
		t.Fatal(err)
	}
	if g := f.Generation(); g != 1 {
		t.Fatalf("generation %d after first compact, want 1", g)
	}
	second := make([][]byte, 80)
	for i := range second {
		second[i] = gen.Next()
	}
	f.Store().AddBatch(second)
	want, err := f.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reopen := func() []byte {
		t.Helper()
		reg2 := NewRegistry()
		if _, err := reg2.OpenDataDir(dir, SyncNever); err != nil {
			t.Fatal(err)
		}
		f2, err := reg2.Get("c")
		if err != nil {
			t.Fatal(err)
		}
		got, err := f2.Store().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := reg2.Close(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := reopen(); !bytes.Equal(got, want) {
		t.Fatal("clean reopen diverged from pre-shutdown state")
	}

	// Corrupt the newest snapshot: recovery must fall back to the log
	// chain from the previous generation and still reach the same state.
	snapPath := filepath.Join(dir, "c", snapName(1))
	blob, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(snapPath, blob, 0o600); err != nil {
		t.Fatal(err)
	}
	if got := reopen(); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery after snapshot corruption diverged")
	}
}

// A failed or oversized restore must refund its budget reservation — the
// fill-or-rollback pattern of the PR 2 create-race test, applied to boot.
func TestRestoreBudgetRollback(t *testing.T) {
	writeMeta := func(t *testing.T, dir, name string, m persistedMeta) {
		t.Helper()
		if err := os.MkdirAll(filepath.Join(dir, name), 0o700); err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name, metaFileName), blob, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	routeKey := hex.EncodeToString([]byte("fedcba9876543210"))

	// Corrupt beyond recovery: a snapshot that fails its checksum and no
	// generation-0 log to rebuild from. The open fails; nothing stays
	// reserved or charged.
	t.Run("corrupt", func(t *testing.T) {
		dir := t.TempDir()
		writeMeta(t, dir, "broken", persistedMeta{
			Version: 1, Variant: "counting", Mode: "naive", Shards: 2,
			ShardBits: 512, HashCount: 4, Seed: 7, CounterWidth: 4,
			Overflow: "wrap", RouteKeyHex: routeKey,
		})
		if err := os.WriteFile(filepath.Join(dir, "broken", snapName(0)), []byte("not a snapshot"), 0o600); err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry()
		if _, err := reg.OpenDataDir(dir, SyncNever); err == nil {
			t.Fatal("unrecoverable filter opened cleanly")
		}
		if reg.bits != 0 || len(reg.reserved) != 0 {
			t.Errorf("failed restore left %d bits charged, %d reservations", reg.bits, len(reg.reserved))
		}
		// The registry remains usable: the name is free again.
		if _, err := reg.Get("broken"); !errors.Is(err, ErrFilterNotFound) {
			t.Errorf("half-recovered filter is visible: %v", err)
		}
	})

	// Oversized geometry in the meta file: rejected before any reservation
	// or allocation, like a crafted PUT.
	t.Run("oversized", func(t *testing.T) {
		dir := t.TempDir()
		writeMeta(t, dir, "huge", persistedMeta{
			Version: 1, Variant: "bloom", Mode: "naive", Shards: 1,
			ShardBits: MaxFilterBits + 1, HashCount: 4, Seed: 7, RouteKeyHex: routeKey,
		})
		reg := NewRegistry()
		if _, err := reg.OpenDataDir(dir, SyncNever); err == nil {
			t.Fatal("oversized persisted filter opened cleanly")
		}
		if reg.bits != 0 || len(reg.reserved) != 0 {
			t.Errorf("oversized restore left %d bits charged, %d reservations", reg.bits, len(reg.reserved))
		}
	})

	// Budget exhausted at boot: the reservation is refused and rolled back,
	// exactly like a racing create.
	t.Run("budget", func(t *testing.T) {
		dir := t.TempDir()
		seed := NewRegistry()
		if _, err := seed.OpenDataDir(dir, SyncNever); err != nil {
			t.Fatal(err)
		}
		if _, err := seed.Create("ok", persistCfg(VariantBloom, ModeNaive, 0, 0)); err != nil {
			t.Fatal(err)
		}
		if err := seed.Close(); err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry()
		reg.bits = MaxTotalBits // pre-charged: no budget left
		_, err := reg.OpenDataDir(dir, SyncNever)
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("open with exhausted budget: %v, want ErrBudgetExhausted", err)
		}
		if reg.bits != MaxTotalBits || len(reg.reserved) != 0 {
			t.Errorf("failed boot reservation not rolled back: %d bits, %d reservations", reg.bits, len(reg.reserved))
		}
	})
}

// Deleting a durable filter removes its directory; the name is free for a
// fresh (empty) filter, also after a restart.
func TestDurableDeleteRemovesState(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if _, err := reg.OpenDataDir(dir, SyncNever); err != nil {
		t.Fatal(err)
	}
	f, err := reg.Create("d", persistCfg(VariantBloom, ModeNaive, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("x"))
	if err := reg.Delete("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "d")); !os.IsNotExist(err) {
		t.Errorf("filter directory survives delete: %v", err)
	}
	f2, err := reg.Create("d", persistCfg(VariantBloom, ModeNaive, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Store().Test([]byte("x")) {
		t.Error("re-created filter inherited deleted state")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	n, err := reg2.OpenDataDir(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("recovered %d filters, want 1 (the re-created one)", n)
	}
}

// A crafted snapshot header with an enormous (but self-consistent) geometry
// must be rejected by the size checks before the payload buffer is
// allocated or a byte of payload is read — the control-plane OOM guard
// extended to the create-from-snapshot path.
func TestCreateFromSnapshotRejectsOversizedHeaderEarly(t *testing.T) {
	h := snapshotHeader{
		variant:   VariantBloom,
		mode:      ModeNaive,
		seed:      1,
		shards:    1,
		shardBits: 1 << 40, // ~137 GB of payload if believed
		k:         4,
	}
	want, err := h.expectedPayloadLen()
	if err != nil {
		t.Fatal(err)
	}
	h.payloadLen = want
	hdr := make([]byte, snapshotHeaderLen)
	h.encode(hdr)

	reg := NewRegistry()
	// The reader holds ONLY the header: if the implementation tried to
	// buffer the payload it would fail with a corrupt-read error instead of
	// the storage-limit rejection we demand here.
	_, err = reg.CreateFromSnapshot("huge", bytes.NewReader(hdr))
	if err == nil {
		t.Fatal("oversized snapshot header accepted")
	}
	if errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("oversized header reached the payload read: %v", err)
	}
	if reg.bits != 0 || len(reg.reserved) != 0 {
		t.Errorf("rejected snapshot left %d bits charged, %d reservations", reg.bits, len(reg.reserved))
	}
}

// Adopting onto a taken name must refuse WITHOUT touching the existing
// filter's durable directory — the rollback path owns only what it created.
func TestAdoptTakenNameLeavesDurableStateAlone(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if _, err := reg.OpenDataDir(dir, SyncNever); err != nil {
		t.Fatal(err)
	}
	f, err := reg.Create("x", persistCfg(VariantCounting, ModeNaive, 4, core.Wrap))
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("precious"))

	other, err := NewSharded(persistCfg(VariantBloom, ModeNaive, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Adopt("x", other); !errors.Is(err, ErrFilterExists) {
		t.Fatalf("Adopt onto taken name: %v, want ErrFilterExists", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "x", metaFileName)); err != nil {
		t.Fatalf("failed Adopt damaged the live filter's directory: %v", err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	if _, err := reg2.OpenDataDir(dir, SyncNever); err != nil {
		t.Fatal(err)
	}
	f2, err := reg2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Store().Test([]byte("precious")) {
		t.Error("filter state lost after refused Adopt + restart")
	}
}
