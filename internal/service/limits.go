package service

// Wire format limits, all enforced independently: a request must satisfy
// every one of them. Batch sizes are bounded so one request cannot hold a
// shard lock for an unbounded stretch; item length is bounded because every
// byte is hashed k times; the body cap bounds the server's JSON-decoding
// memory, so a full MaxBatch of maximum-length items does not fit in one
// request — split such batches. The limits live in service (not in a wire
// package) because they protect the store itself: every ingress plane —
// HTTP, RESP, or whatever comes next — enforces the same numbers through
// the engine's validation pass.
const (
	// MaxBatch is the largest accepted add-batch/test-batch size.
	MaxBatch = 10000
	// MaxItemLen is the largest accepted item length in bytes.
	MaxItemLen = 4096
	// MaxBodyBytes caps request bodies. Exceeding it answers 413 with a
	// message naming this limit.
	MaxBodyBytes = 8 << 20
	// MaxSnapshotBytes caps a PUT-with-snapshot-body request: the largest
	// permissible filter (MaxFilterBits of storage) serialized, plus framing
	// slack. The registry additionally reserves the decoded filter's budget
	// before buffering the payload, so this is transport-level belt and
	// braces, not the real control.
	MaxSnapshotBytes = MaxFilterBits/8 + MaxBodyBytes
)
