package service

import "testing"

// Digest ETags must not repeat across store instances: the generation
// counter restarts at zero on recovery, so without a per-boot salt a
// restarted filter would re-issue ETags peers already hold and earn
// spurious 304s for different content.
func TestDigestETagUniqueAcrossBoots(t *testing.T) {
	cfg := Config{Shards: 1, ShardBits: 128, HashCount: 4, Seed: 3, RouteKey: []byte("0123456789abcdef")}
	a, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSharded(cfg) // the "restarted" instance: same config, same generation
	if err != nil {
		t.Fatal(err)
	}
	if a.Generation() != b.Generation() {
		t.Fatalf("fresh stores disagree on generation: %d vs %d", a.Generation(), b.Generation())
	}
	if a.DigestETag(a.Generation()) == b.DigestETag(b.Generation()) {
		t.Error("identical ETags from two store instances; a restart would earn spurious 304s")
	}
}
