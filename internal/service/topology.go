package service

import "fmt"

// Mesh topology and quorum: who fetches whose digest, and how many sibling
// claims it takes to route an item away from origin.
//
// PR 4's mesh was implicit full-pairs: every node lists every other node and
// fetches all of them. With N≥3 that stops being the only sensible shape, so
// the roster (the -peer list) now names the whole mesh — including this
// node, identified by -self — and a topology decides which members this
// node actually polls:
//
//	pairs               ring                    hub
//	A ←──→ B            A ──→ B                 A(hub) ←── B
//	 ↖     ↑            ↑     │                 ↑ │ ↘
//	   ↘   ↓            │     ↓                 │ ↓   ↘
//	     ↘ C            C ←── D                 C       D
//
//	every member        each member fetches     spokes fetch only the
//	fetches every       only its successor;     hub; the hub fetches
//	other member        digests still reach     every spoke and re-
//	                    everyone in ≤N−1        exports what it learned
//	                    refresh ticks           through its own digest
//
// Topology shapes only the *fetch* edges; pushes (POST .../digest?peer=)
// and quorum evaluation work identically under all three.
type Topology string

const (
	// TopologyPairs is the PR 4 default: fetch every roster member but self.
	TopologyPairs Topology = "pairs"
	// TopologyRing fetches only this node's successor in roster order.
	TopologyRing Topology = "ring"
	// TopologyHub fetches only the roster's first member (the hub) — unless
	// this node IS the hub, which fetches every spoke.
	TopologyHub Topology = "hub"
)

// ParseTopology maps the -topology flag to a Topology; empty means pairs.
func ParseTopology(s string) (Topology, error) {
	switch Topology(s) {
	case "", TopologyPairs:
		return TopologyPairs, nil
	case TopologyRing:
		return TopologyRing, nil
	case TopologyHub:
		return TopologyHub, nil
	default:
		return "", fmt.Errorf("service: unknown topology %q (want pairs, ring or hub)", s)
	}
}

// resolveTargets reduces a mesh roster to the base URLs this node fetches
// under topo. self is this node's own roster entry ("" is allowed only for
// pairs, where the roster is then taken as "everyone else" verbatim — the
// PR 4 configuration).
func resolveTargets(roster []string, topo Topology, self string) ([]string, error) {
	selfAt := -1
	for i, u := range roster {
		if u == self && self != "" {
			selfAt = i
			break
		}
	}
	switch topo {
	case TopologyPairs:
		out := make([]string, 0, len(roster))
		for i, u := range roster {
			if i != selfAt {
				out = append(out, u)
			}
		}
		return out, nil
	case TopologyRing:
		if selfAt < 0 {
			return nil, fmt.Errorf("service: ring topology needs -self to name this node's own roster entry")
		}
		if len(roster) < 2 {
			return nil, fmt.Errorf("service: ring topology needs at least 2 roster members, have %d", len(roster))
		}
		return []string{roster[(selfAt+1)%len(roster)]}, nil
	case TopologyHub:
		if self == "" {
			return nil, fmt.Errorf("service: hub topology needs -self (the hub is the roster's first member)")
		}
		if len(roster) < 2 {
			return nil, fmt.Errorf("service: hub topology needs at least 2 roster members, have %d", len(roster))
		}
		if selfAt == 0 {
			return append([]string(nil), roster[1:]...), nil
		}
		return []string{roster[0]}, nil
	default:
		return nil, fmt.Errorf("service: unknown topology %q", topo)
	}
}

// QuorumVerdict counts how many sibling claims an item drew and whether
// that clears the routing quorum. With q=1 this is PR 4's first-claiming-
// peer rule; with q≥2 a single poisoned digest cannot swing the verdict —
// the §7 committee vote. A quorum of 0 or less is treated as 1.
func QuorumVerdict(claims []PeerClaim, quorum int) (claiming int, peer bool) {
	for _, c := range claims {
		if c.Claims {
			claiming++
		}
	}
	if quorum < 1 {
		quorum = 1
	}
	return claiming, claiming >= quorum
}

// PeerAuthority is the engine-side credential store the peer subsystem
// consults during exchanges. The indirection keeps the layering one-way
// (engine imports service, never the reverse): the engine owns the mesh
// credentials and registers itself here via Peers.SetAuthority.
type PeerAuthority interface {
	// SelfToken returns this node's own mesh credential ("name:secret") to
	// present when fetching, and whether peer auth is configured at all.
	SelfToken() (string, bool)
	// Unseal verifies data's MAC trailer against the named peer's secret
	// and returns the bare frame. Unknown or revoked names fail.
	Unseal(name string, data []byte) ([]byte, error)
	// Authorized reports whether the named peer's credential is currently
	// valid — re-checked at digest store time, so a peer revoked mid-fetch
	// never lands its in-flight digest.
	Authorized(name string) bool
}
