package service

import (
	"errors"
	"fmt"

	"evilbloom/internal/bitset"
	"evilbloom/internal/core"
	"evilbloom/internal/hashes"
)

// Backend is the filter one shard serves. The Sharded layer owns index
// derivation (on pooled per-goroutine family clones, outside the shard lock)
// and hands each backend pre-computed index sets, so any index-addressable
// filter variant — plain bit vectors, counting arrays, or a future hardened
// construction — plugs in without touching the locking, routing, or stats
// machinery. Implementations need not be concurrency-safe; the shard lock
// serializes every call.
type Backend interface {
	// AddIndexes inserts a pre-derived index set and returns the net change
	// in occupied positions, which keeps the shard's incremental weight
	// (and therefore O(shards) stats) exact. The change is negative when an
	// insertion erases occupancy — a wrap-policy counter rolling over to
	// zero, the §6.2 overflow attack's effect.
	AddIndexes(idx []uint64) int
	// TestIndexes reports whether every position in idx is occupied.
	TestIndexes(idx []uint64) bool
	// Count returns the net number of insertions.
	Count() uint64
	// Weight returns the number of occupied positions (O(m); the shard layer
	// tracks weight incrementally and uses this only for verification).
	Weight() uint64
	// M returns the number of positions.
	M() uint64
	// K returns the per-item index count.
	K() int
}

// Remover is the optional deletion capability: backends built on counters
// (§4.3) implement it, plain bit vectors cannot. The service answers remove
// requests against a non-Remover backend with a capability error.
type Remover interface {
	// CanRemoveIndexes reports whether RemoveIndexes(idx) would complete
	// without underflowing any position. TestIndexes is not a sufficient
	// guard: an index set repeating a position decrements it once per
	// occurrence, so a crafted duplicate can pass the membership check and
	// still underflow mid-removal.
	CanRemoveIndexes(idx []uint64) bool
	// RemoveIndexes decrements a pre-derived index set and returns how many
	// positions went unoccupied. A non-nil error means a position was
	// already unoccupied; decrements applied before the failure stick, and
	// zeroed stays accurate for them.
	RemoveIndexes(idx []uint64) (zeroed int, err error)
}

// Snapshotter is the optional persistence capability: a backend that can
// serialize its occupancy state and rebuild itself from such a blob. The
// index family is never part of a snapshot — geometry and secrets travel out
// of band.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	// Restore overwrites the backend's occupancy state with a blob written
	// by Snapshot on a backend of identical geometry. A failed restore may
	// leave the backend half-written; callers must discard it.
	Restore(data []byte) error
}

// overflowReporter is the stats-only capability of counter-based backends:
// how many counter-overflow events (the §6.2 attack signature) occurred.
type overflowReporter interface {
	Overflows() uint64
}

// digestSource is the capability behind the §7 cache-digest exchange: a
// backend that can project its occupancy down to a plain bit vector, the
// shape a digest travels in. Every shipped variant implements it (bloom and
// blocked backends clone their bits, a counting backend masks its non-zero
// counters), so a digest can be exported from any live filter variant.
type digestSource interface {
	// OccupancyBits returns a private copy of the occupancy pattern:
	// position i set iff the backend counts position i occupied.
	OccupancyBits() *bitset.BitSet
}

// atomicReader is the lock-free membership capability: a backend whose
// occupancy is readable with bare atomic word loads, no shard lock held,
// while serialized writers mutate through atomic stores. The shard layer
// routes Test through it when LockFreeReads reports true, skipping the
// striped RLock entirely — membership tests are pure loads, so the read
// path's only synchronization becomes the cache-coherence traffic of the
// loads themselves. Mutations keep the shard write lock regardless: weight,
// generation and journal accounting all live there.
type atomicReader interface {
	// LockFreeReads reports whether the backend's geometry permits torn-free
	// atomic reads (a packed counter straddling a word boundary does not).
	LockFreeReads() bool
	// TestIndexesAtomic is TestIndexes with atomic loads, callable with no
	// lock held.
	TestIndexesAtomic(idx []uint64) bool
}

// ErrNotRemovable answers removal requests against a backend without the
// Remover capability.
var ErrNotRemovable = errors.New("service: filter backend does not support removal (create it with variant=counting)")

// Variant selects the per-shard backend a store is built from.
type Variant int

const (
	// VariantBloom is the classic §3 bit-vector filter: no deletion.
	VariantBloom Variant = iota
	// VariantCounting is the §4.3/§6 counting filter: small counters per
	// position, deletion supported, overflow policy configurable.
	VariantCounting
	// VariantBlocked is the cache-line-local blocked Bloom filter: all k
	// probe bits of an item land in one 512-bit block, so an operation costs
	// one cache miss instead of up to k. No deletion; shard size rounds up
	// to a whole number of blocks.
	VariantBlocked
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantBloom:
		return "bloom"
	case VariantCounting:
		return "counting"
	case VariantBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant resolves "bloom", "counting" or "blocked"; the empty string
// is the bloom default so wire specs may omit it.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "", "bloom":
		return VariantBloom, nil
	case "counting":
		return VariantCounting, nil
	case "blocked":
		return VariantBlocked, nil
	default:
		return 0, fmt.Errorf("service: unknown variant %q (want bloom, counting or blocked)", s)
	}
}

// bloomBackend adapts *core.Bloom to Backend + Snapshotter + atomicReader.
// TestIndexes, Count, Weight, M and K promote straight through; AddIndexes
// is pinned to the atomic-store path because the shard layer serves
// lock-free readers against these bits — a plain store racing an atomic
// load is a data race, so every service-side mutation goes through core's
// atomic variants.
type bloomBackend struct {
	*core.Bloom
}

func (b bloomBackend) AddIndexes(idx []uint64) int {
	return b.Bloom.AddIndexesAtomic(idx)
}

// LockFreeReads implements atomicReader: a bit vector always reads torn-free
// one word at a time.
func (b bloomBackend) LockFreeReads() bool { return true }

func (b bloomBackend) Snapshot() ([]byte, error) {
	return b.Bloom.MarshalBinary()
}

func (b bloomBackend) Restore(data []byte) error {
	//lint:allow atomicpublish unpublished receiver: Restore runs at boot replay or on a store built but not yet published
	return b.Bloom.UnmarshalBinary(data)
}

// blockedBackend adapts *core.Blocked the same way; the block-local index
// mapping is core's concern, invisible to the shard layer.
type blockedBackend struct {
	*core.Blocked
}

func (b blockedBackend) AddIndexes(idx []uint64) int {
	return b.Blocked.AddIndexesAtomic(idx)
}

// LockFreeReads implements atomicReader.
func (b blockedBackend) LockFreeReads() bool { return true }

func (b blockedBackend) Snapshot() ([]byte, error) {
	return b.Blocked.MarshalBinary()
}

func (b blockedBackend) Restore(data []byte) error {
	//lint:allow atomicpublish unpublished receiver: Restore runs at boot replay or on a store built but not yet published
	return b.Blocked.UnmarshalBinary(data)
}

// countingBackend adapts *core.Counting to Backend + Remover + Snapshotter;
// only AddIndexes needs an adapter (core reports fresh and overflowed
// counters separately, the Backend contract wants the net occupancy change).
type countingBackend struct {
	*core.Counting
}

func (c countingBackend) AddIndexes(idx []uint64) int {
	fresh, overflowed := c.Counting.AddIndexesAtomic(idx)
	if c.Policy() == core.Wrap {
		// Every wrap event rolls an occupied (max-valued) counter over to
		// zero, erasing one occupied position.
		return fresh - overflowed
	}
	return fresh // saturated counters stay occupied
}

func (c countingBackend) RemoveIndexes(idx []uint64) (int, error) {
	return c.Counting.RemoveIndexesAtomic(idx)
}

// LockFreeReads implements atomicReader: true exactly when no counter
// straddles a word boundary (width divides 64), so a single atomic load
// reads a counter torn-free.
func (c countingBackend) LockFreeReads() bool { return c.AtomicReads() }

func (c countingBackend) Snapshot() ([]byte, error) {
	return c.MarshalBinary()
}

func (c countingBackend) Restore(data []byte) error {
	// core restores the overflow policy from the blob; the service pins the
	// policy at creation, so a blob smuggling a different one (the envelope
	// cannot catch it: the inner blob has its own policy byte) is rejected
	// rather than silently flipping the shard's overflow behaviour.
	want := c.Policy()
	if err := c.UnmarshalBinary(data); err != nil {
		return err
	}
	if got := c.Policy(); got != want {
		return fmt.Errorf("service: snapshot carries overflow policy %v, filter uses %v", got, want)
	}
	return nil
}

var (
	_ Backend      = bloomBackend{}
	_ Snapshotter  = bloomBackend{}
	_ digestSource = bloomBackend{}
	_ atomicReader = bloomBackend{}
	_ Backend      = blockedBackend{}
	_ Snapshotter  = blockedBackend{}
	_ digestSource = blockedBackend{}
	_ atomicReader = blockedBackend{}
	_ Backend      = countingBackend{}
	_ Remover      = countingBackend{}
	_ Snapshotter  = countingBackend{}
	_ digestSource = countingBackend{}
	_ atomicReader = countingBackend{}
	_              = overflowReporter(countingBackend{})
)

// newBackend builds one shard's backend for cfg (already defaulted) over the
// shard's index family.
func newBackend(cfg Config, fam hashes.IndexFamily) (Backend, error) {
	switch cfg.Variant {
	case VariantBloom:
		return bloomBackend{core.NewBloom(fam)}, nil
	case VariantCounting:
		c, err := core.NewCounting(fam, cfg.CounterWidth, cfg.Overflow)
		if err != nil {
			return nil, err
		}
		return countingBackend{c}, nil
	case VariantBlocked:
		b, err := core.NewBlocked(fam)
		if err != nil {
			return nil, err
		}
		return blockedBackend{b}, nil
	default:
		return nil, fmt.Errorf("service: unknown variant %v", cfg.Variant)
	}
}
