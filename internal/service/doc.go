// Package service turns the paper's offline filter experiments into an
// online, serving system: a registry of named, independently configured
// filter instances (Registry), each a sharded striped-lock store (Sharded)
// over a pluggable per-shard backend (Backend), behind a versioned HTTP/JSON
// API (Server), started by `evilbloom serve`.
//
// # Store architecture
//
// A store splits one logical filter into N power-of-two shards, each an
// independent backend with its own index family and its own read-write
// lock, so adds, membership tests and removals on different shards never
// contend. Shard selection uses a separate keyed SipHash over the item, so
// an adversary who can predict the per-shard index families still cannot
// aim her insertions at a single shard and saturate it ahead of the others.
//
// The shards are variant-generic: the Backend interface carries the
// index-level operations (AddIndexes/TestIndexes/Count/Weight/M/K), and the
// optional Remover and Snapshotter capability interfaces mark what a
// particular backend can additionally do. Two variants ship today:
//
//   - VariantBloom: the classic §3 bit vector. No deletion; requests for it
//     are answered with a capability error.
//   - VariantCounting: the §4.3/§6 counting filter — small counters per
//     position, deletion supported, overflow policy selectable (wrap, the
//     dablooms behaviour the §6.2 attack exploits, or saturate, the
//     countermeasure).
//
// Index derivation runs outside the shard locks on pooled per-goroutine
// family clones, and every backend reports occupancy deltas so statistics
// are O(shards) instead of O(m) — no shard ever holds its lock for a scan.
//
// Two index-derivation modes mirror §8 of the paper:
//
//   - ModeNaive: unkeyed MurmurHash3 double hashing with a public seed, the
//     dablooms configuration of §6. A chosen-insertion adversary who clones
//     the family can pollute the filter through the public add endpoint,
//     and against a naive counting filter the §4.3 deletion adversary can
//     evict targeted honest items — package attack's RemoteView and
//     RemoteDeletion do exactly that.
//   - ModeHardened: keyed SipHash-2-4 with digest recycling (§8.2), one key
//     per shard derived from a server secret. The same campaigns degrade
//     into random insertions and refused removals.
//
// # Filter lifecycle
//
// Filters are created under a name (PUT /v2/filters/{name}), are immutable
// once created, and are deleted by name; to change a filter's
// configuration, delete and re-create it. The registry entry named
// "default" backs the unversioned-era /v1/* shim, byte-identical to the
// original single-filter wire format.
//
// # HTTP surface
//
//	PUT    /v2/filters/{name}              create (FilterSpec -> FilterInfo, 201; 409 if taken)
//	GET    /v2/filters/{name}              public parameters + capabilities
//	DELETE /v2/filters/{name}              delete (204; 404 if unknown)
//	GET    /v2/filters                     list all filters
//	POST   /v2/filters/{name}/add          insert one item
//	POST   /v2/filters/{name}/test         membership query
//	POST   /v2/filters/{name}/add-batch    insert up to MaxBatch items
//	POST   /v2/filters/{name}/test-batch   query up to MaxBatch items
//	POST   /v2/filters/{name}/remove       delete one item (counting only; 405 capability error otherwise, 409 when the filter believes the item absent)
//	POST   /v2/filters/{name}/remove-batch delete a batch, per-item outcomes
//	GET    /v2/filters/{name}/stats        fill, weight, FPR, overflow events, per shard
//	GET    /v2/filters/{name}/info         same document as GET /v2/filters/{name}
//	GET    /v2/filters/{name}/snapshot     binary occupancy snapshot of every shard
//	POST   /v1/{add,test,add-batch,test-batch}  shim over the "default" filter
//	GET    /v1/{stats,info}                     shim over the "default" filter
//
// See Server for the exact wire formats.
package service
