// Package service turns the paper's offline filter experiments into an
// online, serving system: a registry of named, independently configured
// filter instances (Registry), each a sharded striped-lock store (Sharded)
// over a pluggable per-shard backend (Backend), behind a versioned HTTP/JSON
// API (Server), started by `evilbloom serve` — durable across restarts when
// given a data directory (Persister).
//
// # Store architecture
//
// A store splits one logical filter into N power-of-two shards, each an
// independent backend with its own index family and its own read-write
// lock, so adds, membership tests and removals on different shards never
// contend. Shard selection uses a separate keyed SipHash over the item, so
// an adversary who can predict the per-shard index families still cannot
// aim her insertions at a single shard and saturate it ahead of the others.
//
// The shards are variant-generic: the Backend interface carries the
// index-level operations (AddIndexes/TestIndexes/Count/Weight/M/K), and the
// optional Remover and Snapshotter capability interfaces mark what a
// particular backend can additionally do. Two variants ship today:
//
//   - VariantBloom: the classic §3 bit vector. No deletion; requests for it
//     are answered with a capability error.
//   - VariantCounting: the §4.3/§6 counting filter — small counters per
//     position, deletion supported, overflow policy selectable (wrap, the
//     dablooms behaviour the §6.2 attack exploits, or saturate, the
//     countermeasure).
//
// Index derivation runs outside the shard locks on pooled per-goroutine
// family clones, and every backend reports occupancy deltas so statistics
// are O(shards) instead of O(m) — no shard ever holds its lock for a scan.
//
// Two index-derivation modes mirror §8 of the paper:
//
//   - ModeNaive: unkeyed MurmurHash3 double hashing with a public seed, the
//     dablooms configuration of §6. A chosen-insertion adversary who clones
//     the family can pollute the filter through the public add endpoint,
//     and against a naive counting filter the §4.3 deletion adversary can
//     evict targeted honest items — package attack's RemoteView and
//     RemoteDeletion do exactly that.
//   - ModeHardened: keyed SipHash-2-4 with digest recycling (§8.2), one key
//     per shard derived from a server secret. The same campaigns degrade
//     into random insertions and refused removals.
//
// # Filter lifecycle
//
// Filters are created under a name (PUT /v2/filters/{name}), are immutable
// once created, and are deleted by name; to change a filter's
// configuration, delete and re-create it. The registry entry named
// "default" backs the unversioned-era /v1/* shim, byte-identical to the
// original single-filter wire format.
//
// # Durability model
//
// With `evilbloom serve -data-dir`, every filter owns a directory holding
// its full configuration (meta.json, secrets included — the data dir is the
// server's trusted storage), versioned + checksummed snapshot envelopes
// written via temp-file + rename, and an append-only operation log with
// length-prefixed, per-record-CRC framing. Mutations are journaled from
// inside the shard critical section into a buffered, batched writer whose
// durability is the -fsync policy: always (fsync per mutation), interval
// (flush+fsync every ~100ms, the default) or never (the OS decides).
// Restart restores the newest restorable snapshot — a corrupt one falls
// back a generation — and replays the log chain on top, truncating a torn
// tail to the longest valid record prefix, so a recovered filter is
// bit-identical to the pre-crash state up to the configured loss window.
// POST .../compact forces a snapshot and starts a fresh log segment;
// SIGTERM/SIGINT drain in-flight requests and flush before exit. Restored
// filters pass through the same MaxTotalBits accounting as fresh creations,
// with failed restores rolling their reservation back.
//
// Why it matters for the paper: the §4/§6 campaigns are only an
// operational threat because filter state is long-lived. A polluted or
// deletion-damaged filter that survives restart bit-identically (see the
// restart-preserves-attack test) is the adversarial-environment setting of
// Naor–Yogev made concrete — bouncing the process does not heal the filter.
//
// # HTTP surface
//
//	PUT    /v2/filters/{name}              create (FilterSpec -> FilterInfo, 201; 409 if taken);
//	                                       with Content-Type: application/octet-stream the body
//	                                       is a snapshot envelope and the filter is created from
//	                                       it (naive envelopes only; hardened or mismatched 409)
//	GET    /v2/filters/{name}              public parameters + capabilities
//	DELETE /v2/filters/{name}              delete, including durable state (204; 404 if unknown)
//	GET    /v2/filters                     list all filters
//	POST   /v2/filters/{name}/add          insert one item
//	POST   /v2/filters/{name}/test         membership query
//	POST   /v2/filters/{name}/add-batch    insert up to MaxBatch items
//	POST   /v2/filters/{name}/test-batch   query up to MaxBatch items
//	POST   /v2/filters/{name}/remove       delete one item (counting only; 405 capability error otherwise, 409 when the filter believes the item absent)
//	POST   /v2/filters/{name}/remove-batch delete a batch, per-item outcomes
//	GET    /v2/filters/{name}/stats        fill, weight, FPR, overflow events, per shard
//	GET    /v2/filters/{name}/info         same document as GET /v2/filters/{name}
//	GET    /v2/filters/{name}/snapshot     versioned, checksummed snapshot envelope
//	POST   /v2/filters/{name}/compact      force snapshot + log rotation (durable filters only; 409 otherwise)
//	POST   /v1/{add,test,add-batch,test-batch}  shim over the "default" filter
//	GET    /v1/{stats,info}                     shim over the "default" filter
//
// See Server for the exact wire formats and snapshot.go for the envelope
// layout (compatibility note: the former raw snapshot format, a bare
// shard-count header with unversioned blobs, is gone).
package service
