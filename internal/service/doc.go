// Package service turns the paper's offline filter experiments into an
// online, serving system: a registry of named, independently configured
// filter instances (Registry), each a sharded striped-lock store (Sharded)
// over a pluggable per-shard backend (Backend), behind a versioned HTTP/JSON
// API (Server), started by `evilbloom serve` — durable across restarts when
// given a data directory (Persister), and exchanging Squid-style cache
// digests with sibling servers when given peer URLs (Peers).
//
// # Store architecture
//
// A store splits one logical filter into N power-of-two shards, each an
// independent backend with its own index family and its own read-write
// lock, so adds, membership tests and removals on different shards never
// contend. Shard selection uses a separate keyed SipHash over the item, so
// an adversary who can predict the per-shard index families still cannot
// aim her insertions at a single shard and saturate it ahead of the others.
//
// The shards are variant-generic: the Backend interface carries the
// index-level operations (AddIndexes/TestIndexes/Count/Weight/M/K), and the
// optional Remover and Snapshotter capability interfaces mark what a
// particular backend can additionally do. Two variants ship today:
//
//   - VariantBloom: the classic §3 bit vector. No deletion; requests for it
//     are answered with a capability error.
//   - VariantCounting: the §4.3/§6 counting filter — small counters per
//     position, deletion supported, overflow policy selectable (wrap, the
//     dablooms behaviour the §6.2 attack exploits, or saturate, the
//     countermeasure).
//
// Index derivation runs outside the shard locks on pooled per-goroutine
// family clones, and every backend reports occupancy deltas so statistics
// are O(shards) instead of O(m) — no shard ever holds its lock for a scan.
//
// Two index-derivation modes mirror §8 of the paper:
//
//   - ModeNaive: unkeyed MurmurHash3 double hashing with a public seed, the
//     dablooms configuration of §6. A chosen-insertion adversary who clones
//     the family can pollute the filter through the public add endpoint,
//     and against a naive counting filter the §4.3 deletion adversary can
//     evict targeted honest items — package attack's RemoteView and
//     RemoteDeletion do exactly that.
//   - ModeHardened: keyed SipHash-2-4 with digest recycling (§8.2), one key
//     per shard derived from a server secret. The same campaigns degrade
//     into random insertions and refused removals.
//
// # Filter lifecycle
//
// Filters are created under a name (PUT /v2/filters/{name}), are immutable
// once created, and are deleted by name; to change a filter's
// configuration, delete and re-create it. The registry entry named
// "default" backs the unversioned-era /v1/* shim, byte-identical to the
// original single-filter wire format.
//
// # Durability model
//
// With `evilbloom serve -data-dir`, every filter owns a directory holding
// its full configuration (meta.json, secrets included — the data dir is the
// server's trusted storage), versioned + checksummed snapshot envelopes
// written via temp-file + rename, and an append-only operation log with
// length-prefixed, per-record-CRC framing. Mutations are journaled from
// inside the shard critical section into a buffered, batched writer whose
// durability is the -fsync policy: always (fsync per mutation), interval
// (flush+fsync every ~100ms, the default) or never (the OS decides).
// Restart restores the newest restorable snapshot — a corrupt one falls
// back a generation — and replays the log chain on top, truncating a torn
// tail to the longest valid record prefix, so a recovered filter is
// bit-identical to the pre-crash state up to the configured loss window.
// POST .../compact forces a snapshot and starts a fresh log segment;
// SIGTERM/SIGINT drain in-flight requests and flush before exit. Restored
// filters pass through the same MaxTotalBits accounting as fresh creations,
// with failed restores rolling their reservation back.
//
// Why it matters for the paper: the §4/§6 campaigns are only an
// operational threat because filter state is long-lived. A polluted or
// deletion-damaged filter that survives restart bit-identically (see the
// restart-preserves-attack test) is the adversarial-environment setting of
// Naor–Yogev made concrete — bouncing the process does not heal the filter.
//
// # Peer digest exchange
//
// With `evilbloom serve -peer <url>` (repeatable) the node joins a §7-style
// mesh: every local filter runs one refresh loop that fetches each peer's
// same-named filter's cache digest (GET /v2/filters/{name}/digest) on a
// jittered interval. Digests travel in package cachedigest's versioned,
// checksummed envelope — the occupancy pattern plus the public index
// family, geometry and shard-routing key, so the receiver evaluates
// membership locally; a counting filter's digest is its non-zero mask, one
// bit per position. The digest endpoint's ETag is the store's Generation (a
// per-shard mutation counter summed in O(shards)), so an unchanged filter
// answers a conditional fetch with 304 and no serialization at all.
// Hardened filters export no digest: their keyed family never travels, and
// the endpoint answers 409.
//
// POST /v2/filters/{name}/route answers the routing question the exchange
// exists for — "local", "peer" (naming the first sibling whose digest
// claims the item) or "origin" — with every peer's individual claim, age
// and staleness attached. GET .../peers reports per-peer accounting
// (generation, age, staleness, fetch/304/failure counters, last error);
// POST .../peers/refresh forces a synchronous fetch, the deterministic
// stand-in for the interval that tests and smoke scripts use. Digests can
// also be pushed (POST .../digest?peer=<label>) for topologies where only
// one side can dial; corrupt envelopes answer 400, envelopes naming a
// family no peer can evaluate answer 409, and — push being unauthenticated
// — retention is budgeted like filter creation (MaxPushedPeers labels,
// MaxPushedDigestBits total, reserved from the header before the payload
// is buffered; 409 when exhausted).
//
// A filter's refresh loop starts when the filter is published and is
// stopped — synchronously, no goroutine outlives its filter — by
// Registry.Delete and Registry.Close.
//
// # Rate limiting and pollution accounting
//
// Every registry carries a Limiter charging each mutation — add,
// add-batch, remove, remove-batch, digest push — against a token bucket
// keyed by (filter, client identity); batch operations charge per item,
// because adversarial damage scales with insertions, not requests. With a
// budget configured (Registry.ConfigureRateLimit, `evilbloom serve
// -rate-mutations`/`-rate-burst`), exhaustion answers 429 with a
// Retry-After naming the exact refill time and applies nothing; the /v1
// shim spends from the default filter's buckets, so the legacy surface is
// no side door. Client identity is the transport peer address unless
// -trust-proxy makes the X-Evilbloom-Client and X-Forwarded-For headers
// count. Reads are never charged.
//
// Accounting runs even unthrottled: GET /v2/filters/{name}/clients is the
// O(clients) attribution table (worst offenders first) and the stats
// document carries the aggregate, so "who polluted this filter" has an
// answer on every server. The table is bounded per filter
// (-rate-clients-max, default DefaultRateClientsMax) with LRU eviction
// folding evicted identities' counts into preserved aggregates — identity
// churn cannot memory-exhaust the server through its own defense.
//
// Why it matters for the paper: §8 names restricting who may update the
// filter as the operational mitigation below keyed hashing, and Naor–Yogev
// formalize adversarial power as a query/insertion budget. Rate limiting
// implements exactly that budget: attack.RemoteThrottledPollution runs the
// same chosen-insertion campaign against an unthrottled server (saturation)
// and a rate-limited one (damage capped at the burst, attacker named),
// completing the naive → rate-limited → hardened mitigation ladder the
// registry can A/B per filter.
//
// Why it matters for the paper: digest exchange is the first place filter
// damage crosses a trust boundary. §7 shows an adversary who pollutes one
// proxy's cache makes the *sibling* waste a round trip per false hit
// (79% vs 40% of probe queries); attack.RemoteDigestPollution reproduces
// exactly that across two live `evilbloom serve` processes, and the
// Retouched-Bloom-filter literature (Donnet et al.) shows the same
// trade-off propagation in honest meshes.
//
// # HTTP surface
//
//	PUT    /v2/filters/{name}              create (FilterSpec -> FilterInfo, 201; 409 if taken);
//	                                       with Content-Type: application/octet-stream the body
//	                                       is a snapshot envelope and the filter is created from
//	                                       it (naive envelopes only; hardened or mismatched 409)
//	GET    /v2/filters/{name}              public parameters + capabilities
//	DELETE /v2/filters/{name}              delete, including durable state (204; 404 if unknown)
//	GET    /v2/filters                     list all filters
//	POST   /v2/filters/{name}/add          insert one item
//	POST   /v2/filters/{name}/test         membership query
//	POST   /v2/filters/{name}/add-batch    insert up to MaxBatch items
//	POST   /v2/filters/{name}/test-batch   query up to MaxBatch items
//	POST   /v2/filters/{name}/remove       delete one item (counting only; 405 capability error otherwise, 409 when the filter believes the item absent)
//	POST   /v2/filters/{name}/remove-batch delete a batch, per-item outcomes
//	GET    /v2/filters/{name}/stats        fill, weight, FPR, overflow events, per shard
//	GET    /v2/filters/{name}/info         same document as GET /v2/filters/{name}
//	GET    /v2/filters/{name}/snapshot     versioned, checksummed snapshot envelope
//	POST   /v2/filters/{name}/compact      force snapshot + log rotation (durable filters only; 409 otherwise)
//	GET    /v2/filters/{name}/digest       cache-digest envelope (naive filters only; ETag/304)
//	POST   /v2/filters/{name}/digest       push-import a sibling digest (?peer=<label>; 400 corrupt, 409 unusable)
//	POST   /v2/filters/{name}/route        routing verdict: local, peer or origin
//	GET    /v2/filters/{name}/peers        per-peer digest accounting
//	POST   /v2/filters/{name}/peers/refresh  fetch every configured peer's digest now
//	GET    /v2/filters/{name}/clients      per-client mutation accounting (ClientsReport)
//	POST   /v1/{add,test,add-batch,test-batch}  shim over the "default" filter
//	GET    /v1/{stats,info}                     shim over the "default" filter
//
// See Server for the exact wire formats and snapshot.go for the envelope
// layout (compatibility note: the former raw snapshot format, a bare
// shard-count header with unversioned blobs, is gone).
package service
